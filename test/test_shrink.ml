(* The counterexample shrinking engine: seeded known-bad transform
   pairs buried in noise must reduce to tiny witnesses; every candidate
   the oracle sees must be valid SSA; reduction is deterministic; and a
   minimized counterexample re-checks to the same verdict as its
   unshrunk original in all five semantics modes. *)

open Ub_ir
open Ub_sem

let f = Parser.parse_func_string

(* ------------------------------------------------------------------ *)
(* Seeded pairs: a Section 3 core bug inside a pile of noise           *)
(* ------------------------------------------------------------------ *)

(* select c, true, x -> or c, x (Section 3.4), with an i1 noise chain
   over %c mixed into the return.  At the witness input (c=true,
   x=poison) the chain evaluates to false, so the or-mix preserves the
   core's divergence. *)
let select_noise_src =
  f
    {|define i1 @f(i1 %c, i1 %x) {
entry:
  %n0 = xor i1 %c, true
  %n1 = and i1 %n0, %c
  %n2 = or i1 %n1, %c
  %n3 = xor i1 %n2, %n0
  %n4 = and i1 %n3, %n1
  %n5 = or i1 %n4, %n2
  %n6 = xor i1 %n5, %n3
  %n7 = and i1 %n6, %n4
  %n8 = or i1 %n7, %n5
  %n9 = xor i1 %n8, %n8
  %r = select i1 %c, i1 true, i1 %x
  %o = or i1 %n9, %r
  ret i1 %o
}|}

let select_noise_tgt =
  f
    {|define i1 @f(i1 %c, i1 %x) {
entry:
  %n0 = xor i1 %c, true
  %n1 = and i1 %n0, %c
  %n2 = or i1 %n1, %c
  %n3 = xor i1 %n2, %n0
  %n4 = and i1 %n3, %n1
  %n5 = or i1 %n4, %n2
  %n6 = xor i1 %n5, %n3
  %n7 = and i1 %n6, %n4
  %n8 = or i1 %n7, %n5
  %n9 = xor i1 %n8, %n8
  %r = or i1 %c, %x
  %o = or i1 %n9, %r
  ret i1 %o
}|}

(* mul x,2 -> add x,x (Section 3.1), with an i2 noise chain over both
   arguments mixed into the return. *)
let mul2_noise_src =
  f
    {|define i2 @f(i2 %a, i2 %b) {
entry:
  %n0 = xor i2 %a, %b
  %n1 = add i2 %n0, 1
  %n2 = and i2 %n1, %b
  %n3 = add i2 %n2, %n0
  %n4 = xor i2 %n3, 1
  %n5 = add i2 %n4, %n2
  %n6 = and i2 %n5, %n1
  %n7 = add i2 %n6, %n3
  %n8 = xor i2 %n7, %n5
  %n9 = add i2 %n8, 1
  %m = mul i2 %a, 2
  %r = add i2 %m, %n9
  ret i2 %r
}|}

let mul2_noise_tgt =
  f
    {|define i2 @f(i2 %a, i2 %b) {
entry:
  %n0 = xor i2 %a, %b
  %n1 = add i2 %n0, 1
  %n2 = and i2 %n1, %b
  %n3 = add i2 %n2, %n0
  %n4 = xor i2 %n3, 1
  %n5 = add i2 %n4, %n2
  %n6 = and i2 %n5, %n1
  %n7 = add i2 %n6, %n3
  %n8 = xor i2 %n7, %n5
  %n9 = add i2 %n8, 1
  %m = add i2 %a, %a
  %r = add i2 %m, %n9
  ret i2 %r
}|}

let verdict_class = function
  | Ub_refine.Checker.Refines -> "refines"
  | Ub_refine.Checker.Counterexample _ -> "counterexample"
  | Ub_refine.Checker.Unknown _ -> "unknown"

(* Run a reduction and return it, asserting the basic contract. *)
let reduce_checked ?preserve mode ~src ~tgt =
  match Ub_refine.Reduce.minimize_cex ?preserve mode ~src ~tgt with
  | None -> Alcotest.failf "seeded pair is not a counterexample under %s" mode.Mode.name
  | Some r -> r

let shrink_tests =
  [ Alcotest.test_case "select->or noise pair reduces to a tiny witness" `Quick (fun () ->
        let r =
          reduce_checked Mode.old_simplifycfg ~src:select_noise_src ~tgt:select_noise_tgt
        in
        let orig = Func.num_insns select_noise_src in
        let final = Func.num_insns r.Ub_refine.Reduce.red_src in
        Alcotest.(check bool) "witness <= 5 instructions" true (final <= 5);
        Alcotest.(check bool)
          (Printf.sprintf "witness (%d) <= 20%% of original (%d)" final orig)
          true
          (float_of_int final <= 0.2 *. float_of_int orig);
        (* the minimized pair still fails the original oracle *)
        Alcotest.(check string)
          "minimized pair is still a counterexample" "counterexample"
          (verdict_class r.Ub_refine.Reduce.verdict));
    Alcotest.test_case "mul2->add noise pair reduces to a tiny witness" `Quick (fun () ->
        let r = reduce_checked Mode.old_unswitch ~src:mul2_noise_src ~tgt:mul2_noise_tgt in
        let orig = Func.num_insns mul2_noise_src in
        let final = Func.num_insns r.Ub_refine.Reduce.red_src in
        Alcotest.(check bool) "witness <= 5 instructions" true (final <= 5);
        Alcotest.(check bool)
          (Printf.sprintf "witness (%d) <= 20%% of original (%d)" final orig)
          true
          (float_of_int final <= 0.2 *. float_of_int orig);
        Alcotest.(check string)
          "minimized pair is still a counterexample" "counterexample"
          (verdict_class r.Ub_refine.Reduce.verdict));
    Alcotest.test_case "every candidate the oracle sees is valid SSA" `Quick (fun () ->
        let invalid = ref 0 and seen = ref 0 in
        let oracle s t =
          incr seen;
          if Validate.check_func s <> [] || Validate.check_func t <> [] then incr invalid;
          Ub_refine.Reduce.not_refined Mode.old_unswitch ~src:s ~tgt:t
        in
        let _ =
          Ub_shrink.Reduce.minimize_pair ~oracle (mul2_noise_src, mul2_noise_tgt)
        in
        Alcotest.(check bool) "oracle was consulted" true (!seen > 0);
        Alcotest.(check int) "no invalid candidate reached the oracle" 0 !invalid);
    Alcotest.test_case "reduction is deterministic" `Quick (fun () ->
        let run () =
          let r =
            reduce_checked Mode.old_simplifycfg ~src:select_noise_src
              ~tgt:select_noise_tgt
          in
          Printer.func_to_string r.Ub_refine.Reduce.red_src
          ^ Printer.func_to_string r.Ub_refine.Reduce.red_tgt
        in
        Alcotest.(check string) "two runs agree" (run ()) (run ()));
  ]

let oracle_consistency =
  Alcotest.test_case "minimized pair re-checks like the original in all 5 modes" `Quick
    (fun () ->
      let r =
        reduce_checked ~preserve:Mode.all Mode.old_unswitch ~src:mul2_noise_src
          ~tgt:mul2_noise_tgt
      in
      List.iter
        (fun (mode : Mode.t) ->
          let orig =
            Ub_refine.Checker.check mode ~src:mul2_noise_src ~tgt:mul2_noise_tgt
          in
          let red =
            Ub_refine.Checker.check mode ~src:r.Ub_refine.Reduce.red_src
              ~tgt:r.Ub_refine.Reduce.red_tgt
          in
          Alcotest.(check string)
            (Printf.sprintf "verdict class under %s" mode.Mode.name)
            (verdict_class orig) (verdict_class red))
        Mode.all)

(* The reducer must refuse to "reduce" a sound pair: minimize_cex is
   None when there is nothing to witness. *)
let nothing_to_reduce =
  Alcotest.test_case "sound pair yields no reduction" `Quick (fun () ->
      match
        Ub_refine.Reduce.minimize_cex Mode.proposed ~src:mul2_noise_src
          ~tgt:mul2_noise_tgt
      with
      | None -> ()
      | Some _ -> Alcotest.fail "reduced a pair that refines")

let () =
  Alcotest.run "shrink"
    [ ("reduce", shrink_tests);
      ("oracle-consistency", [ oracle_consistency; nothing_to_reduce ]);
    ]
