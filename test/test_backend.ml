(* Backend: instruction selection, register allocation, emission, cost
   model — including the freeze-is-a-copy lowering and the LEA/r13
   machinery behind the Queens anomaly. *)

open Ub_ir
open Ub_backend

let parse = Parser.parse_func_string

let compile src = Compile.compile_func (parse src)

let all_insts (mf : Mir.func) = List.concat_map (fun b -> b.Mir.insts) mf.Mir.blocks

let no_vregs (mf : Mir.func) =
  List.for_all
    (fun i ->
      List.for_all
        (function Mir.Vreg _ -> false | Mir.Preg _ -> true)
        (Mir.uses i @ Mir.defs i))
    (all_insts mf)

let isel_tests =
  [ Alcotest.test_case "freeze lowers to a register copy" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i8 @f(i8 %x) {
e:
  %y = freeze i8 %x
  ret i8 %y
}|}) in
        Alcotest.(check bool) "has a Copy" true
          (List.exists (function Mir.Copy _ -> true | _ -> false) (all_insts mf)));
    Alcotest.test_case "poison lowers to a pinned undef register" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i8 @f() {
e:
  %y = freeze i8 poison
  ret i8 %y
}|}) in
        Alcotest.(check bool) "has Undef_def" true
          (List.exists (function Mir.Undef_def _ -> true | _ -> false) (all_insts mf)));
    Alcotest.test_case "cmp fuses with branch when last" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i8 @f(i8 %a, i8 %b) {
e:
  %c = icmp slt i8 %a, %b
  br i1 %c, label %t, label %u
t:
  ret i8 1
u:
  ret i8 2
}|}) in
        let entry = List.hd mf.Mir.blocks in
        let rec adjacent = function
          | Mir.Cmp _ :: Mir.Jcc _ :: _ -> true
          | _ :: rest -> adjacent rest
          | [] -> false
        in
        Alcotest.(check bool) "Cmp immediately before Jcc" true (adjacent entry.Mir.insts);
        Alcotest.(check bool) "no setcc" true
          (not (List.exists (function Mir.Setcc _ -> true | _ -> false) entry.Mir.insts)));
    Alcotest.test_case "non-sunk compare does not fuse" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i8 @f(i8 %a, i8 %b) {
e:
  %c = icmp slt i8 %a, %b
  %z = add i8 %a, %b
  br i1 %c, label %t, label %u
t:
  ret i8 %z
u:
  ret i8 2
}|}) in
        let entry = List.hd mf.Mir.blocks in
        Alcotest.(check bool) "setcc used" true
          (List.exists (function Mir.Setcc _ -> true | _ -> false) entry.Mir.insts));
    Alcotest.test_case "gep selects to lea with scale" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i32 @f(i32* %p, i32 %i) {
e:
  %q = getelementptr inbounds i32, i32* %p, i32 %i
  %v = load i32, i32* %q
  ret i32 %v
}|}) in
        Alcotest.(check bool) "lea with scale 4" true
          (List.exists
             (function Mir.Lea { addr = { Mir.scale = 4; index = Some _; _ }; _ } -> true | _ -> false)
             (all_insts mf)));
    Alcotest.test_case "vector ops legalize to scalar lanes" `Quick (fun () ->
        let mf = Isel.lower_func (parse {|define i16 @f(i16* %p) {
e:
  %pv = bitcast i16* %p to <2 x i16>*
  %v = load <2 x i16>, <2 x i16>* %pv
  %e = extractelement <2 x i16> %v, i32 0
  ret i16 %e
}|}) in
        let loads = List.filter (function Mir.Load _ -> true | _ -> false) (all_insts mf) in
        Alcotest.(check int) "two scalar loads" 2 (List.length loads));
  ]

let regalloc_tests =
  [ Alcotest.test_case "allocation eliminates all vregs" `Quick (fun () ->
        let c = compile {|define i32 @sum(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %s = phi i32 [ 0, %entry ], [ %s1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %s1 = add nsw i32 %s, %i
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i32 %s
}|} in
        Alcotest.(check bool) "no vregs" true (no_vregs c.Compile.mir));
    Alcotest.test_case "high pressure forces spills, still no vregs" `Quick (fun () ->
        (* 20 simultaneously-live values > 14 registers *)
        let buf = Buffer.create 512 in
        Buffer.add_string buf "define i32 @p(i32 %a) {\ne:\n";
        for i = 0 to 19 do
          Buffer.add_string buf (Printf.sprintf "  %%v%d = add nsw i32 %%a, %d\n" i i)
        done;
        let rec chain i acc =
          if i > 19 then acc
          else begin
            Buffer.add_string buf (Printf.sprintf "  %%s%d = add i32 %s, %%v%d\n" i acc i);
            chain (i + 1) (Printf.sprintf "%%s%d" i)
          end
        in
        let last = chain 0 "%a" in
        Buffer.add_string buf (Printf.sprintf "  ret i32 %s\n}" last);
        let c = compile (Buffer.contents buf) in
        Alcotest.(check bool) "no vregs" true (no_vregs c.Compile.mir));
  ]

let cost_tests =
  [ Alcotest.test_case "LEA r13 penalty (the Queens effect)" `Quick (fun () ->
        let lea base =
          Mir.Lea { dst = Mir.Preg 0; addr = { Mir.base; index = None; scale = 1; disp = 0 } }
        in
        let fast = Cost.inst_cost Target.machine1 None (lea (Mir.Preg 12 (* r14 *))) in
        let slow = Cost.inst_cost Target.machine1 None (lea (Mir.Preg Target.r13)) in
        Alcotest.(check bool) "r13 slower" true (slow > fast);
        Alcotest.(check bool) "machine2 penalty larger" true
          (Cost.inst_cost Target.machine2 None (lea (Mir.Preg Target.r13)) -. Target.machine2.Target.lat_lea
           > slow -. fast));
    Alcotest.test_case "macro-fusion makes cmp+jcc cheap" `Quick (fun () ->
        let jcc = Mir.Jcc (Mir.CEq, "x") in
        let fused = Cost.inst_cost Target.machine1 (Some (Mir.Cmp (Mir.W32, Mir.Preg 0, Mir.Imm 0L))) jcc in
        let lone = Cost.inst_cost Target.machine1 (Some (Mir.Mov (Mir.W32, Mir.Preg 0, Mir.Imm 0L))) jcc in
        Alcotest.(check bool) "fused cheaper" true (fused < lone));
    Alcotest.test_case "freeze costs one copy at runtime" `Quick (fun () ->
        let with_freeze = compile {|define i8 @f(i8 %x) {
e:
  %y = freeze i8 %x
  ret i8 %y
}|} in
        let without = compile {|define i8 @f(i8 %x) {
e:
  ret i8 %x
}|} in
        let profile = [ ("e", 1) ] in
        let cw = Compile.simulate_cycles Target.machine1 with_freeze ~profile in
        let co = Compile.simulate_cycles Target.machine1 without ~profile in
        Alcotest.(check bool) "costs a bit more" true (cw > co);
        Alcotest.(check bool) "but at most a couple cycles" true (cw -. co <= 2.0));
    Alcotest.test_case "pinned undef register costs nothing" `Quick (fun () ->
        Alcotest.(check (float 0.0)) "zero" 0.0
          (Cost.inst_cost Target.machine1 None (Mir.Undef_def (Mir.Preg 3))));
  ]

let emit_tests =
  [ Alcotest.test_case "object size positive and REX-sensitive" `Quick (fun () ->
        let small = Mir.Mov (Mir.W32, Mir.Preg 0, Mir.Imm 1L) in
        let rex = Mir.Mov (Mir.W32, Mir.Preg 12, Mir.Imm 1L) in
        Alcotest.(check bool) "rex costs a byte" true (Emit.inst_size rex > Emit.inst_size small));
    Alcotest.test_case "r13 base forces a displacement byte" `Quick (fun () ->
        let mk base =
          Mir.Load (Mir.W32, Mir.Preg 0, { Mir.base; index = None; scale = 1; disp = 0 })
        in
        Alcotest.(check bool) "r13 load bigger" true
          (Emit.inst_size (mk (Mir.Preg Target.r13)) > Emit.inst_size (mk (Mir.Preg 0))));
    Alcotest.test_case "undef register emits no bytes" `Quick (fun () ->
        Alcotest.(check int) "zero" 0 (Emit.inst_size (Mir.Undef_def (Mir.Preg 1))));
    Alcotest.test_case "asm text is generated" `Quick (fun () ->
        let c = compile {|define i8 @f(i8 %x) {
e:
  %y = add nsw i8 %x, 1
  ret i8 %y
}|} in
        Alcotest.(check bool) "mentions add" true
          (Ub_support.Util.string_contains ~needle:"add" c.Compile.asm);
        Alcotest.(check bool) "size positive" true (c.Compile.obj_size > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Parallel moves and spills, executed end to end: compile a phi cycle *)
(* and run the allocated MIR under [Mir_sem] — the machine result must  *)
(* match the IR interpreter.  The swap shape needs an odd number of     *)
(* back edges to observe a broken cycle; the lost-copy shape keeps the  *)
(* phi destination live out of the loop.                                *)
(* ------------------------------------------------------------------ *)

let widths = [ ("i8", 8); ("i16", 16); ("i32", 32); ("i64", 64) ]

let conc w n = Ub_sem.Value.Scalar (Ub_sem.Value.Conc (Ub_support.Bitvec.of_int ~width:w n))

let ret_equals ?(args = []) ~w ~expect src =
  let fn = parse src in
  let c = Compile.compile_func fn in
  (match (Ub_sem.Interp.run ~fuel:1_000_000 fn args).Ub_sem.Interp.outcome with
  | Ub_sem.Interp.Returned (Some (Ub_sem.Value.Scalar (Ub_sem.Value.Conc bv))) ->
    Alcotest.(check int64) "IR result" (Int64.of_int expect) (Ub_support.Bitvec.to_uint64 bv)
  | o -> Alcotest.failf "IR run: %s" (Ub_sem.Interp.outcome_to_string o));
  match
    (Mir_sem.run ~form:(Mir_sem.Physical c.Compile.arg_locs) c.Compile.mir args)
      .Mir_sem.outcome
  with
  | Mir_sem.Returned (Some bv) ->
    Alcotest.(check int64) "MIR result" (Int64.of_int expect)
      (Ub_support.Bitvec.to_uint64 (Ub_support.Bitvec.trunc bv ~width:w))
  | o -> Alcotest.failf "MIR run: %s" (Mir_sem.outcome_to_string o)

(* x and y trade places on every back edge; trip=4 runs the back edge 3
   times (odd), so a sequentialized-without-temp or dropped copy is
   observable *)
let swap_src ty =
  Printf.sprintf
    {|define %s @swap(%s %%a, %s %%b) {
entry:
  br label %%loop
loop:
  %%i = phi i4 [ 0, %%entry ], [ %%i1, %%loop ]
  %%x = phi %s [ %%a, %%entry ], [ %%y, %%loop ]
  %%y = phi %s [ %%b, %%entry ], [ %%x, %%loop ]
  %%i1 = add i4 %%i, 1
  %%c = icmp ult i4 %%i1, 4
  br i1 %%c, label %%loop, label %%after
after:
  %%d = sub %s %%x, %%y
  ret %s %%d
}|}
    ty ty ty ty ty ty ty

(* the classic lost-copy shape: the phi destination x is live out of the
   loop, so the back-edge copy must not clobber it early *)
let lost_copy_src ty =
  Printf.sprintf
    {|define %s @lost(%s %%a) {
entry:
  br label %%loop
loop:
  %%i = phi i4 [ 0, %%entry ], [ %%i1, %%loop ]
  %%x = phi %s [ %%a, %%entry ], [ %%y, %%loop ]
  %%y = add %s %%x, 1
  %%i1 = add i4 %%i, 1
  %%c = icmp ult i4 %%i1, 4
  br i1 %%c, label %%loop, label %%after
after:
  ret %s %%x
}|}
    ty ty ty ty ty

let parallel_move_tests =
  List.concat_map
    (fun (ty, w) ->
      [ Alcotest.test_case (Printf.sprintf "swap cycle round-trips at %s" ty) `Quick
          (fun () ->
            (* 3 swaps: x=b, y=a; d = b - a = 11 - 2 = 9 *)
            ret_equals ~args:[ conc w 2; conc w 11 ] ~w ~expect:9 (swap_src ty));
        Alcotest.test_case (Printf.sprintf "lost-copy cycle round-trips at %s" ty) `Quick
          (fun () ->
            (* x advances a+0, a+1, a+2, a+3 across 3 back edges *)
            ret_equals ~args:[ conc w 5 ] ~w ~expect:8 (lost_copy_src ty));
      ])
    widths
  @ [ Alcotest.test_case "spill pressure round-trips (15-deep sum chain)" `Quick
        (fun () ->
          (* more simultaneously-live values than allocatable registers:
             the allocator must spill, and the spill code must preserve
             every value (this shape caught the victim-reuse clobber) *)
          let buf = Buffer.create 512 in
          Buffer.add_string buf "define i8 @p(i2 %a, i2 %b) {\ne:\n";
          Buffer.add_string buf "  %xa = zext i2 %a to i8\n";
          Buffer.add_string buf "  %xb = zext i2 %b to i8\n";
          for i = 0 to 14 do
            Buffer.add_string buf
              (Printf.sprintf "  %%v%d = add i8 %%x%c, %d\n" i
                 (if i mod 2 = 0 then 'a' else 'b')
                 i)
          done;
          let rec chain i acc =
            if i > 14 then acc
            else begin
              Buffer.add_string buf (Printf.sprintf "  %%s%d = add i8 %s, %%v%d\n" i acc i);
              chain (i + 1) (Printf.sprintf "%%s%d" i)
            end
          in
          let last = chain 0 "%xa" in
          Buffer.add_string buf (Printf.sprintf "  ret i8 %s\n}" last);
          (* a=1, b=2: xa=1, xb=2; v_i = (i even ? 1 : 2) + i;
             sum = xa + sum v_i = 1 + (8*1 + 7*2 + 105) = 128 *)
          ret_equals ~args:[ conc 2 1; conc 2 2 ] ~w:8 ~expect:128 (Buffer.contents buf));
    ]

(* ------------------------------------------------------------------ *)
(* Translation validation: clean triggers refine, each injected bug is  *)
(* caught on its verified trigger shape.                                *)
(* ------------------------------------------------------------------ *)

let tv_check ?bug src = Tv.check_func ?bug ~fuel:1_000 ~max_runs:2_000 (parse src)

let trigger_swap =
  {|define i8 @t() {
entry:
  br label %loop
loop:
  %i = phi i4 [ 0, %entry ], [ %i1, %loop ]
  %x = phi i8 [ 1, %entry ], [ %y, %loop ]
  %y = phi i8 [ 9, %entry ], [ %x, %loop ]
  %i1 = add i4 %i, 1
  %c = icmp ult i4 %i1, 4
  br i1 %c, label %loop, label %after
after:
  %d = sub i8 %x, %y
  ret i8 %d
}|}

let trigger_select =
  {|define i2 @t(i2 %a, i2 %b) {
e:
  %c = icmp slt i2 %a, %b
  %s = select i1 %c, i2 %a, i2 %b
  ret i2 %s
}|}

let trigger_diamond =
  {|define i2 @t(i2 %a) {
e:
  %z = zext i2 %a to i8
  %c = icmp eq i8 %z, 2
  br i1 %c, label %t, label %f
t:
  %u = add i8 %z, 3
  br label %m
f:
  %v = add i8 %z, 5
  br label %m
m:
  %p = phi i8 [ %u, %t ], [ %v, %f ]
  %r = trunc i8 %p to i2
  ret i2 %r
}|}

(* the generator's verified pressure shape: 14 live i8 values over
   zext'd i2 arguments, enough to spill *)
let trigger_pressure =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "define i8 @t(i2 %a, i2 %b) {\ne:\n";
  Buffer.add_string buf "  %xa = zext i2 %a to i8\n  %xb = zext i2 %b to i8\n";
  for i = 0 to 13 do
    Buffer.add_string buf
      (Printf.sprintf "  %%v%d = add i8 %%x%c, %d\n" i
         (if i mod 2 = 0 then 'a' else 'b')
         i)
  done;
  let rec chain i acc =
    if i > 13 then acc
    else begin
      Buffer.add_string buf (Printf.sprintf "  %%s%d = add i8 %s, %%v%d\n" i acc i);
      chain (i + 1) (Printf.sprintf "%%s%d" i)
    end
  in
  let last = chain 0 "%xa" in
  Buffer.add_string buf (Printf.sprintf "  ret i8 %s\n}" last);
  Buffer.contents buf

let tv_tests =
  let clean name src =
    Alcotest.test_case ("clean backend refines: " ^ name) `Quick (fun () ->
        match tv_check src with
        | Tv.Refined -> ()
        | v -> Alcotest.failf "expected refined, got: %s" (Tv.verdict_to_string v))
  in
  let caught bug src =
    Alcotest.test_case ("TV catches " ^ bug) `Quick (fun () ->
        match tv_check ~bug:(Mir_inject.find_exn bug) src with
        | Tv.Not_refined _ -> ()
        | v -> Alcotest.failf "expected NOT refined, got: %s" (Tv.verdict_to_string v))
  in
  [ clean "swap loop" trigger_swap;
    clean "select chain" trigger_select;
    clean "diamond" trigger_diamond;
    clean "spill pressure" trigger_pressure;
    caught "drop-parallel-move-copy" trigger_swap;
    caught "swap-without-temp" trigger_swap;
    caught "cmov-stale-flags" trigger_select;
    caught "spill-slot-alias" trigger_pressure;
    caught "const-prop-bad-arm" trigger_diamond;
    Alcotest.test_case "unmodeled calls classify as unsupported" `Quick (fun () ->
        match
          tv_check
            {|define i8 @t(i8 %x) {
e:
  %r = call i8 @mystery(i8 %x)
  ret i8 %r
}|}
        with
        | Tv.Unsupported _ -> ()
        | v -> Alcotest.failf "expected unsupported, got: %s" (Tv.verdict_to_string v));
  ]

(* property: compiling the whole corpus succeeds, with no vregs left and
   positive sizes *)
let corpus_compiles =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random corpus compiles cleanly" ~count:40
       QCheck2.Gen.(int_range 0 5_000)
       (fun seed ->
         let fns = Ub_fuzz.Gen.random_corpus ~seed ~size:2 in
         List.for_all
           (fun fn ->
             let c = Compile.compile_func fn in
             no_vregs c.Compile.mir && c.Compile.obj_size > 0)
           fns))

let () =
  Alcotest.run "backend"
    [ ("isel", isel_tests);
      ("regalloc", regalloc_tests);
      ("parallel-move", parallel_move_tests);
      ("tv", tv_tests);
      ("cost", cost_tests);
      ("emit", emit_tests);
      ("properties", [ corpus_compiles ]);
    ]
