(* The refinement checker: known-verdict pairs from the paper, agreement
   between the SAT path and the enumeration path, and self-refinement. *)

open Ub_ir
open Ub_sem
open Ub_refine

let f = Parser.parse_func_string

let expect_refines name mode src tgt =
  Alcotest.test_case name `Quick (fun () ->
      match Checker.check mode ~src:(f src) ~tgt:(f tgt) with
      | Checker.Refines -> ()
      | v -> Alcotest.failf "%s: expected refines, got %s" name (Checker.verdict_to_string v))

let expect_cex name mode src tgt =
  Alcotest.test_case name `Quick (fun () ->
      match Checker.check mode ~src:(f src) ~tgt:(f tgt) with
      | Checker.Counterexample _ -> ()
      | v -> Alcotest.failf "%s: expected cex, got %s" name (Checker.verdict_to_string v))

let id2 = {|define i2 @f(i2 %x) {
e:
  ret i2 %x
}|}

let known_pairs =
  [ expect_refines "identity refines itself" Mode.proposed id2 id2;
    expect_refines "x+0 -> x" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  %y = add i2 %x, 0
  ret i2 %y
}|}
      id2;
    expect_cex "x -> x+1 is not refinement" Mode.proposed id2
      {|define i2 @f(i2 %x) {
e:
  %y = add i2 %x, 1
  ret i2 %y
}|};
    expect_refines "anything refines UB source" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  %y = udiv i2 1, 0
  ret i2 %y
}|}
      {|define i2 @f(i2 %x) {
e:
  ret i2 3
}|};
    expect_cex "introducing UB is not refinement" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  ret i2 0
}|}
      {|define i2 @f(i2 %x) {
e:
  %y = udiv i2 1, 0
  ret i2 0
}|};
    expect_refines "poison source covers any value" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  %y = add nsw i2 2, 2
  ret i2 %y
}|}
      {|define i2 @f(i2 %x) {
e:
  ret i2 1
}|};
    expect_cex "concrete does not cover poison" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  ret i2 1
}|}
      {|define i2 @f(i2 %x) {
e:
  %y = add nsw i2 2, 2
  ret i2 %y
}|};
    expect_refines "freeze removal when input can't be poison" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  %f = freeze i2 %x
  %a = and i2 %f, 1
  %y = freeze i2 %a
  ret i2 %y
}|}
      {|define i2 @f(i2 %x) {
e:
  %f = freeze i2 %x
  %a = and i2 %f, 1
  ret i2 %a
}|};
    expect_cex "freeze removal is wrong when input may be poison" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  %a = and i2 %x, 1
  %y = freeze i2 %a
  ret i2 %y
}|}
      {|define i2 @f(i2 %x) {
e:
  %a = and i2 %x, 1
  ret i2 %a
}|};
    (* and/or are strict in poison, unlike undef *)
    expect_cex "0 does not cover and x,0 (x may be poison)" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  ret i2 0
}|}
      {|define i2 @f(i2 %x) {
e:
  %y = and i2 %x, 0
  ret i2 %y
}|};
    expect_refines "and x,0 -> 0 forward direction" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  %y = and i2 %x, 0
  ret i2 %y
}|}
      {|define i2 @f(i2 %x) {
e:
  ret i2 0
}|};
    (* undef-specific: x -> undef is legal (undef covers), undef -> x not *)
    expect_refines "freeze poison refines poison source" Mode.proposed
      {|define i2 @f() {
e:
  ret i2 poison
}|}
      {|define i2 @f() {
e:
  %y = freeze i2 poison
  ret i2 %y
}|};
    expect_cex "unfreezing is not refinement" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  %y = freeze i2 %x
  ret i2 %y
}|}
      id2;
    (* control flow *)
    expect_refines "branch simplification on constant" Mode.proposed
      {|define i2 @f(i2 %x) {
e:
  br i1 true, label %t, label %u
t:
  ret i2 %x
u:
  ret i2 0
}|}
      id2;
    expect_refines "dead arm removal keeps UB profile" Mode.old_gvn
      {|define i2 @f(i1 %c, i2 %x) {
e:
  br i1 %c, label %t, label %u
t:
  ret i2 %x
u:
  ret i2 %x
}|}
      {|define i2 @f(i1 %c, i2 %x) {
e:
  br i1 %c, label %t, label %u
t:
  ret i2 %x
u:
  ret i2 %x
}|};
    expect_cex "dropping a branch drops its UB (old-gvn, reversed)" Mode.old_gvn
      {|define i2 @f(i1 %c, i2 %x) {
e:
  ret i2 %x
}|}
      {|define i2 @f(i1 %c, i2 %x) {
e:
  br i1 %c, label %t, label %t
t:
  ret i2 %x
}|};
  ]

(* agreement between the SAT checker and the enumeration checker over the
   opt-fuzz space with random pass-like mutations *)
let mutate (rng : Ub_support.Prng.t) (fn : Func.t) : Func.t =
  (* a crude random rewrite: replace a random instruction's result with
     one of its operands, or drop an attribute, or swap operands *)
  let blocks =
    List.map
      (fun (b : Func.block) ->
        { b with
          Func.insns =
            List.map
              (fun n ->
                if Ub_support.Prng.chance rng ~num:1 ~den:3 then
                  match n.Instr.ins with
                  | Instr.Binop (op, attrs, ty, a, b') when Ub_support.Prng.bool rng ->
                    { n with Instr.ins = Instr.Binop (op, attrs, ty, b', a) }
                  | Instr.Binop (op, _, ty, a, b') ->
                    { n with Instr.ins = Instr.Binop (op, Instr.no_attrs, ty, a, b') }
                  | ins -> { n with Instr.ins }
                else n)
              b.Func.insns;
        })
      fn.Func.blocks
  in
  { fn with Func.blocks }

let checkers_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"SAT and enumeration checkers agree" ~count:60
       QCheck2.Gen.(int_range 0 100_000)
       (fun seed ->
         let rng = Ub_support.Prng.create ~seed in
         (* build a tiny random straight-line function over i2 *)
         let params = { Ub_fuzz.Gen.default_params with Ub_fuzz.Gen.n_insns = 2 } in
         let fns = ref [] in
         let _ = Ub_fuzz.Gen.enumerate ~limit:400 params (fun f -> fns := f :: !fns) in
         let fns = Array.of_list !fns in
         let src = fns.(Ub_support.Prng.int rng (Array.length fns)) in
         let tgt = mutate rng src in
         List.for_all
           (fun mode ->
             let sat = Checker.check_sat mode ~src ~tgt in
             match sat with
             | Checker.Unknown _ -> true
             | _ -> (
               match
                 Enum_check.check ~mode ~src ~tgt ()
               with
               | Enum_check.Refines -> sat = Checker.Refines
               | Enum_check.Counterexample _ -> (
                 match sat with Checker.Counterexample _ -> true | _ -> false)
               | Enum_check.Unknown _ -> true))
           [ Mode.proposed; Mode.old_unswitch; Mode.old_gvn ]))

(* ------------------------------------------------------------------ *)
(* Verdict-cache keying (ISSUE 4 satellite: budget collision)          *)
(* ------------------------------------------------------------------ *)

let with_tmp_cache k =
  let dir = Filename.temp_file "ub_refine_cache" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> k (Ub_exec.Cache.open_dir dir))

let cache_tests =
  [ Alcotest.test_case "budget-limited verdicts never alias full-budget ones" `Quick
      (fun () ->
        (* the shrink oracles run with reduced SAT budgets through the
           same persistent cache as full-budget sweeps: the key must
           keep the two populations apart *)
        with_tmp_cache (fun c ->
            let src = f id2 and tgt = f id2 in
            let v1 =
              Reduce.check_cached ~cache:c ~max_universal_bits:Reduce.reduce_universal_bits
                ~max_conflicts:Reduce.reduce_conflicts Mode.proposed ~src ~tgt
            in
            let v2 = Reduce.check_cached ~cache:c Mode.proposed ~src ~tgt in
            Alcotest.(check bool) "both calls refine" true
              (v1 = Checker.Refines && v2 = Checker.Refines);
            Alcotest.(check int) "full-budget call misses the small-budget entry" 0
              (Ub_exec.Cache.hits c);
            Alcotest.(check int) "two distinct entries stored" 2
              (Ub_exec.Cache.stores c);
            (* same budget twice is still a hit *)
            let v3 =
              Reduce.check_cached ~cache:c ~max_universal_bits:Reduce.reduce_universal_bits
                ~max_conflicts:Reduce.reduce_conflicts Mode.proposed ~src ~tgt
            in
            Alcotest.(check bool) "replay hits" true
              (v3 = Checker.Refines && Ub_exec.Cache.hits c = 1)));
    Alcotest.test_case "kind tags carry the v2 bump" `Quick (fun () ->
        (* stale v1 entries must be unreachable: the kind strings are
           part of the hashed key, so the bump is the invalidation *)
        List.iter
          (fun tag ->
            Alcotest.(check bool)
              (Printf.sprintf "%s ends in -v2" tag)
              true
              (String.length tag > 3
              && String.sub tag (String.length tag - 3) 3 = "-v2"))
          [ Verdict_cache.combined_kind; Verdict_cache.sat_kind; Verdict_cache.enum_kind ]);
  ]

let () =
  Alcotest.run "refine"
    [ ("known-pairs", known_pairs); ("cross-validation", [ checkers_agree ]);
      ("verdict-cache", cache_tests) ]
