(* Bit-blaster: circuit construction, Tseitin + solver integration, and
   agreement with Bitvec on random inputs for every operation. *)

open Ub_support
open Ub_smt

let unit_tests =
  [ Alcotest.test_case "constant folding in smart constructors" `Quick (fun () ->
        let ctx = Circuit.create_ctx () in
        Alcotest.(check bool) "and false" true
          (Circuit.is_false (Circuit.band ctx Circuit.btrue Circuit.bfalse));
        Alcotest.(check bool) "x and not x" true
          (let x = Circuit.fresh ctx in
           Circuit.is_false (Circuit.band ctx x (Circuit.bnot ctx x)));
        Alcotest.(check bool) "x xor x" true
          (let x = Circuit.fresh ctx in
           Circuit.is_false (Circuit.bxor ctx x x)));
    Alcotest.test_case "cnf: simple equivalence" `Quick (fun () ->
        let ctx = Circuit.create_ctx () in
        let x = Circuit.fresh ctx and y = Circuit.fresh ctx in
        (* (x and y) and (not x) is unsat *)
        let root = Circuit.band ctx (Circuit.band ctx x y) (Circuit.bnot ctx x) in
        (match Circuit.Cnf.solve ctx root with
        | Circuit.Cnf.Unsat_r -> ()
        | Circuit.Cnf.Sat_model _ -> Alcotest.fail "should be unsat"));
    Alcotest.test_case "cnf: model extraction" `Quick (fun () ->
        let ctx = Circuit.create_ctx () in
        let a = Bvterm.fresh ctx ~width:8 in
        (* a + 1 == 0 forces a = 255 *)
        let sum = Bvterm.add ctx a (Bvterm.const ctx (Bitvec.of_int ~width:8 1)) in
        let root = Bvterm.eq ctx sum (Bvterm.const ctx (Bitvec.zero 8)) in
        match Circuit.Cnf.solve ctx root with
        | Circuit.Cnf.Sat_model m ->
          let v = ref 0 in
          Array.iteri (fun i bit -> if Circuit.eval m.Circuit.Cnf.bool_of_input bit then v := !v lor (1 lsl i)) a;
          Alcotest.(check int) "a = 255" 255 !v
        | Circuit.Cnf.Unsat_r -> Alcotest.fail "should be sat");
    Alcotest.test_case "hash-consing shrinks the Tseitin CNF by >= 30%" `Quick (fun () ->
        (* A checker-style query that mentions the same product twice,
           built once with structural sharing and once without.  The
           shared build must encode the multiplier circuit a single time,
           cutting CNF variables and clauses well past the 30% bar. *)
        let build ctx =
          let a = Bvterm.fresh ctx ~width:6 and b = Bvterm.fresh ctx ~width:6 in
          let m1 = Bvterm.mul ctx a b in
          let m2 = Bvterm.mul ctx a b in
          let c5 = Bvterm.const ctx (Bitvec.of_int ~width:6 5) in
          let c9 = Bvterm.const ctx (Bitvec.of_int ~width:6 9) in
          Circuit.band ctx (Bvterm.ult ctx c5 m1) (Bvterm.ult ctx m2 c9)
        in
        let solve_stats ctx =
          let stats = ref Circuit.Cnf.no_stats in
          let root = build ctx in
          let sat =
            match Circuit.Cnf.solve ~stats ctx root with
            | Circuit.Cnf.Sat_model _ -> true
            | Circuit.Cnf.Unsat_r -> false
          in
          (sat, !stats)
        in
        let sat_shared, shared = solve_stats (Circuit.create_ctx ()) in
        let sat_plain, plain = solve_stats (Circuit.create_ctx ~sharing:false ()) in
        Alcotest.(check bool) "verdicts agree" sat_plain sat_shared;
        Alcotest.(check bool) "5 < a*b < 9 is satisfiable" true sat_shared;
        let shrunk part s p =
          Alcotest.(check bool)
            (Printf.sprintf "%s shrink >= 30%% (%d vs %d)" part s p)
            true
            (s * 10 <= p * 7)
        in
        shrunk "cnf vars" shared.Circuit.Cnf.cnf_vars plain.Circuit.Cnf.cnf_vars;
        shrunk "cnf clauses" shared.Circuit.Cnf.cnf_clauses plain.Circuit.Cnf.cnf_clauses);
    Alcotest.test_case "udiv circuit guards against zero later" `Quick (fun () ->
        let ctx = Circuit.create_ctx () in
        let a = Bvterm.const ctx (Bitvec.of_int ~width:4 13) in
        let b = Bvterm.const ctx (Bitvec.of_int ~width:4 3) in
        let q, r = Bvterm.udiv_urem ctx a b in
        let qv = ref 0 and rv = ref 0 in
        Array.iteri (fun i bit -> if Circuit.eval (fun _ -> false) bit then qv := !qv lor (1 lsl i)) q;
        Array.iteri (fun i bit -> if Circuit.eval (fun _ -> false) bit then rv := !rv lor (1 lsl i)) r;
        Alcotest.(check int) "13/3" 4 !qv;
        Alcotest.(check int) "13%3" 1 !rv);
  ]

(* exhaustive agreement with Bitvec for every op at small widths, plus
   random checks at larger widths *)
let eval_bv assign (sym : Bvterm.t) : int =
  let v = ref 0 in
  Array.iteri (fun i bit -> if Circuit.eval assign bit then v := !v lor (1 lsl i)) sym;
  !v

let agreement_test ~w name symf concf =
  Alcotest.test_case (Printf.sprintf "%s agrees @ i%d (exhaustive)" name w) `Slow (fun () ->
      for a = 0 to (1 lsl w) - 1 do
        for b = 0 to (1 lsl w) - 1 do
          let ctx = Circuit.create_ctx () in
          let sa = Bvterm.fresh ctx ~width:w and sb = Bvterm.fresh ctx ~width:w in
          let assign i = if i < w then (a lsr i) land 1 = 1 else (b lsr (i - w)) land 1 = 1 in
          let sym = symf ctx sa sb in
          let conc = concf (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b) in
          if eval_bv assign sym <> Bitvec.to_uint_exn conc then
            Alcotest.failf "%s(%d,%d) mismatch" name a b
        done
      done)

let bool_agreement_test ~w name symf concf =
  Alcotest.test_case (Printf.sprintf "%s agrees @ i%d (exhaustive)" name w) `Slow (fun () ->
      for a = 0 to (1 lsl w) - 1 do
        for b = 0 to (1 lsl w) - 1 do
          let ctx = Circuit.create_ctx () in
          let sa = Bvterm.fresh ctx ~width:w and sb = Bvterm.fresh ctx ~width:w in
          let assign i = if i < w then (a lsr i) land 1 = 1 else (b lsr (i - w)) land 1 = 1 in
          let sym = symf ctx sa sb in
          let conc = concf (Bitvec.of_int ~width:w a) (Bitvec.of_int ~width:w b) in
          if Circuit.eval assign sym <> conc then Alcotest.failf "%s(%d,%d) mismatch" name a b
        done
      done)

let exhaustive_tests =
  [ agreement_test ~w:3 "add" Bvterm.add Bitvec.add;
    agreement_test ~w:3 "sub" Bvterm.sub Bitvec.sub;
    agreement_test ~w:3 "mul" Bvterm.mul Bitvec.mul;
    bool_agreement_test ~w:3 "ult" Bvterm.ult Bitvec.ult;
    bool_agreement_test ~w:3 "slt" Bvterm.slt Bitvec.slt;
    bool_agreement_test ~w:3 "eq" Bvterm.eq Bitvec.eq;
    bool_agreement_test ~w:3 "add_nsw_ovf" Bvterm.add_nsw_overflows Bitvec.add_nsw_overflows;
    bool_agreement_test ~w:3 "mul_nsw_ovf" Bvterm.mul_nsw_overflows Bitvec.mul_nsw_overflows;
    bool_agreement_test ~w:3 "sub_nuw_ovf" Bvterm.sub_nuw_overflows Bitvec.sub_nuw_overflows;
  ]

(* the udiv test above needs b!=0 guarding: rewrite as explicit loop *)
let div_tests =
  [ Alcotest.test_case "udiv/sdiv/urem/srem exhaustive @ i4 (b != 0)" `Slow (fun () ->
        let w = 4 in
        for a = 0 to 15 do
          for b = 1 to 15 do
            let ctx = Circuit.create_ctx () in
            let sa = Bvterm.const ctx (Bitvec.of_int ~width:w a) in
            let sb = Bvterm.const ctx (Bitvec.of_int ~width:w b) in
            let ba = Bitvec.of_int ~width:w a and bb = Bitvec.of_int ~width:w b in
            let chk name sym conc =
              if eval_bv (fun _ -> false) sym <> Bitvec.to_uint_exn conc then
                Alcotest.failf "%s(%d,%d)" name a b
            in
            chk "udiv" (Bvterm.udiv ctx sa sb) (Bitvec.udiv ba bb);
            chk "urem" (Bvterm.urem ctx sa sb) (Bitvec.urem ba bb);
            chk "sdiv" (Bvterm.sdiv ctx sa sb) (Bitvec.sdiv ba bb);
            chk "srem" (Bvterm.srem ctx sa sb) (Bitvec.srem ba bb)
          done
        done);
    Alcotest.test_case "shifts exhaustive @ i4" `Slow (fun () ->
        let w = 4 in
        for a = 0 to 15 do
          for n = 0 to 3 do
            let ctx = Circuit.create_ctx () in
            let sa = Bvterm.const ctx (Bitvec.of_int ~width:w a) in
            let sn = Bvterm.const ctx (Bitvec.of_int ~width:w n) in
            let ba = Bitvec.of_int ~width:w a in
            let chk name sym conc =
              if eval_bv (fun _ -> false) sym <> Bitvec.to_uint_exn conc then
                Alcotest.failf "%s(%d,%d)" name a n
            in
            chk "shl" (Bvterm.shl ctx sa sn) (Bitvec.shl ba n);
            chk "lshr" (Bvterm.lshr ctx sa sn) (Bitvec.lshr ba n);
            chk "ashr" (Bvterm.ashr ctx sa sn) (Bitvec.ashr ba n)
          done
        done);
  ]

(* random agreement at width 16 through the SAT solver: assert the
   circuit `op(a,b) != conc` is UNSAT for fixed a,b *)
let solver_agreement =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"solver-checked agreement @ i16" ~count:40
       QCheck2.Gen.(pair (int_bound 65535) (int_bound 65535))
       (fun (a, b) ->
         let ctx = Circuit.create_ctx () in
         let sa = Bvterm.const ctx (Bitvec.of_int ~width:16 a) in
         let sb = Bvterm.const ctx (Bitvec.of_int ~width:16 b) in
         let sum = Bvterm.mul ctx sa sb in
         let conc = Bitvec.mul (Bitvec.of_int ~width:16 a) (Bitvec.of_int ~width:16 b) in
         let neq = Bvterm.ne ctx sum (Bvterm.const ctx conc) in
         match Circuit.Cnf.solve ctx neq with
         | Circuit.Cnf.Unsat_r -> true
         | Circuit.Cnf.Sat_model _ -> false))

let () =
  Alcotest.run "smt"
    [ ("unit", unit_tests);
      ("exhaustive", exhaustive_tests @ div_tests);
      ("solver", [ solver_agreement ]);
    ]
