(* Incremental solver sessions: the differential harness.

   A [Session.t] must be *verdict-identical* to scratch solving — every
   query answered through the persistent solver (activation literals,
   shared Tseitin encodings, inprocessing, cone eviction, watermark
   resets) must agree with a fresh [Circuit.Cnf.solve] of the same
   circuit, and every SAT model must actually satisfy the circuit.
   The property tests replay randomized multi-query streams through
   both paths, including deliberately hostile session configurations
   (watermark resets on every query, eviction on every retire); the
   regression test replays the full `bench solver` corpus and one
   `ubc hunt` recall entry through [Checker.check_sat] both ways, and a
   divergence fails with the offending query dumped as a replayable
   module. *)

open Ub_sem
open Ub_smt

(* ---------- helpers ---------- *)

let solve_scratch ?max_conflicts ctx c = Circuit.Cnf.solve ?max_conflicts ctx c

(* One differential step: session verdict = scratch verdict, and both
   models (when SAT) evaluate the circuit to true. *)
let check_one ?max_conflicts (s : Session.t) (ctx : Circuit.ctx) (c : Circuit.t) : bool =
  let rs = Session.solve ?max_conflicts s c in
  let rc = solve_scratch ?max_conflicts ctx c in
  match (rs, rc) with
  | Circuit.Cnf.Unsat_r, Circuit.Cnf.Unsat_r -> true
  | Circuit.Cnf.Sat_model m, Circuit.Cnf.Sat_model m' ->
    Circuit.eval m.Circuit.Cnf.bool_of_input c && Circuit.eval m'.Circuit.Cnf.bool_of_input c
  | _ -> false

(* Pigeonhole (4 pigeons, 3 holes) as a circuit: unsatisfiable, and any
   refutation needs at least one conflict — so it deterministically
   exhausts a zero-conflict budget. *)
let pigeonhole ctx : Circuit.t =
  let x = Array.init 4 (fun _ -> Array.init 3 (fun _ -> Circuit.fresh ctx)) in
  let somewhere =
    Circuit.big_and ctx (Array.to_list x |> List.map (fun row -> Circuit.big_or ctx (Array.to_list row)))
  in
  let no_sharing = ref Circuit.btrue in
  for j = 0 to 2 do
    for i = 0 to 3 do
      for i' = i + 1 to 3 do
        no_sharing :=
          Circuit.band ctx !no_sharing
            (Circuit.bnot ctx (Circuit.band ctx x.(i).(j) x.(i').(j)))
      done
    done
  done;
  Circuit.band ctx somewhere !no_sharing

(* ---------- unit tests: session lifecycle ---------- *)

let unit_tests =
  [ Alcotest.test_case "constant-false root is unsat; the session survives" `Quick (fun () ->
        let s = Session.create () in
        let ctx = Session.ctx s in
        (match Session.solve s Circuit.bfalse with
        | Circuit.Cnf.Unsat_r -> ()
        | Circuit.Cnf.Sat_model _ -> Alcotest.fail "false is not satisfiable");
        let x = Circuit.fresh ctx in
        match Session.solve s x with
        | Circuit.Cnf.Sat_model m ->
          Alcotest.(check bool) "model sets x" true (Circuit.eval m.Circuit.Cnf.bool_of_input x)
        | Circuit.Cnf.Unsat_r -> Alcotest.fail "a free input is satisfiable");
    Alcotest.test_case "retraction: an unsat query doesn't poison later ones" `Quick (fun () ->
        let s = Session.create () in
        let ctx = Session.ctx s in
        let x = Circuit.fresh ctx in
        (match Session.solve s (Circuit.band ctx x (Circuit.bnot ctx x)) with
        | Circuit.Cnf.Unsat_r -> ()
        | Circuit.Cnf.Sat_model _ -> Alcotest.fail "x && !x is unsat");
        Alcotest.(check int) "no reset: activation isolates the refuted root" 0
          (Session.resets s);
        (* if the dead query's root constraint leaked, one of these
           directions would now be unsat *)
        (match Session.solve s x with
        | Circuit.Cnf.Sat_model _ -> ()
        | Circuit.Cnf.Unsat_r -> Alcotest.fail "x must still be satisfiable");
        match Session.solve s (Circuit.bnot ctx x) with
        | Circuit.Cnf.Sat_model _ -> ()
        | Circuit.Cnf.Unsat_r -> Alcotest.fail "!x must still be satisfiable");
    Alcotest.test_case "budget exhaustion reports Too_hard and recovers" `Quick (fun () ->
        let s = Session.create () in
        let ctx = Session.ctx s in
        let hard = pigeonhole ctx in
        (match Session.solve ~max_conflicts:0 s hard with
        | exception Circuit.Cnf.Too_hard -> ()
        | Circuit.Cnf.Unsat_r -> Alcotest.fail "cannot refute pigeonhole without conflicts"
        | Circuit.Cnf.Sat_model _ -> Alcotest.fail "pigeonhole is unsat");
        (* the session is still live: an easy query succeeds, and the
           hard one finishes under a real budget, matching scratch *)
        let x = Circuit.fresh ctx in
        (match Session.solve s x with
        | Circuit.Cnf.Sat_model _ -> ()
        | Circuit.Cnf.Unsat_r -> Alcotest.fail "a free input is satisfiable");
        Alcotest.(check bool) "differential on the hard query" true
          (check_one s ctx hard));
    Alcotest.test_case "repeat query: zero new clauses, zero new vars" `Quick (fun () ->
        let s = Session.create () in
        let ctx = Session.ctx s in
        let a = Circuit.fresh ctx and b = Circuit.fresh ctx in
        let c = Circuit.bor ctx (Circuit.band ctx a b) (Circuit.bxor ctx a b) in
        let stats = ref Circuit.Cnf.no_stats in
        (match Session.solve ~stats s c with
        | Circuit.Cnf.Sat_model _ -> ()
        | Circuit.Cnf.Unsat_r -> Alcotest.fail "satisfiable");
        let fresh_vars = !stats.Circuit.Cnf.vars_new in
        Alcotest.(check bool) "first encode allocates" true (fresh_vars > 0);
        (match Session.solve ~stats s c with
        | Circuit.Cnf.Sat_model _ -> ()
        | Circuit.Cnf.Unsat_r -> Alcotest.fail "still satisfiable");
        Alcotest.(check int) "no new vars on re-query" 0 !stats.Circuit.Cnf.vars_new;
        Alcotest.(check int) "no new clauses on re-query" 0 !stats.Circuit.Cnf.clauses_new);
    Alcotest.test_case "distinct circuit shares common subterms" `Quick (fun () ->
        let s = Session.create () in
        let ctx = Session.ctx s in
        let a = Circuit.fresh ctx and b = Circuit.fresh ctx in
        let shared = Circuit.bxor ctx (Circuit.band ctx a b) (Circuit.bor ctx a b) in
        let stats = ref Circuit.Cnf.no_stats in
        ignore (Session.solve ~stats s shared);
        let first_vars = !stats.Circuit.Cnf.vars_new in
        (* a structurally different root over the same subterm: only the
           new top gate (and the fresh input) may allocate *)
        let c2 = Circuit.band ctx shared (Circuit.fresh ctx) in
        ignore (Session.solve ~stats s c2);
        Alcotest.(check bool) "hash-consed hits on the shared cone" true
          (!stats.Circuit.Cnf.shared_hits >= 1);
        Alcotest.(check bool) "allocates at most the new gate and input" true
          (!stats.Circuit.Cnf.vars_new <= 2 && !stats.Circuit.Cnf.vars_new < first_vars));
    Alcotest.test_case "watermark trips a soft reset; verdicts unaffected" `Quick (fun () ->
        let s = Session.create ~max_vars:4 () in
        let ctx = Session.ctx s in
        let ok = ref true in
        for _ = 1 to 5 do
          let a = Circuit.fresh ctx and b = Circuit.fresh ctx in
          ok := !ok && check_one s ctx (Circuit.bxor ctx a (Circuit.bnot ctx b))
        done;
        Alcotest.(check bool) "differential holds across resets" true !ok;
        Alcotest.(check bool) "the tiny watermark actually reset" true (Session.resets s >= 1));
    Alcotest.test_case "cone eviction keeps verdicts intact" `Quick (fun () ->
        let s = Session.create ~max_live_vars:2 ~simplify_every:1 () in
        let ctx = Session.ctx s in
        let inputs = Array.init 4 (fun _ -> Circuit.fresh ctx) in
        let ok = ref true in
        (* distinct overlapping cones so each retire evicts the previous
           one, and earlier roots get re-queried after eviction dropped
           their memos *)
        let queries =
          [ Circuit.band ctx inputs.(0) inputs.(1);
            Circuit.bor ctx inputs.(1) inputs.(2);
            Circuit.bxor ctx inputs.(2) inputs.(3);
            Circuit.band ctx inputs.(0) inputs.(1);
            Circuit.bor ctx inputs.(1) inputs.(2);
          ]
        in
        List.iter (fun c -> ok := !ok && check_one s ctx c) queries;
        Alcotest.(check bool) "differential holds across evictions" true !ok;
        Alcotest.(check bool) "eviction actually ran" true (Session.evictions s >= 1));
  ]

(* ---------- property tests: randomized differential streams ---------- *)

(* Abstract circuit shapes, realized against the session's context so
   scratch and session solving see the same hash-consed nodes. *)
type gc =
  | GIn of int
  | GNot of gc
  | GAnd of gc * gc
  | GOr of gc * gc
  | GXor of gc * gc
  | GIte of gc * gc * gc

let gen_gc : gc QCheck2.Gen.t =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then map (fun i -> GIn i) (int_bound 7)
           else
             let sub = self (n / 2) in
             frequency
               [ (1, map (fun i -> GIn i) (int_bound 7));
                 (2, map (fun g -> GNot g) (self (n - 1)));
                 (3, map2 (fun a b -> GAnd (a, b)) sub sub);
                 (3, map2 (fun a b -> GOr (a, b)) sub sub);
                 (2, map2 (fun a b -> GXor (a, b)) sub sub);
                 (1, map3 (fun c a b -> GIte (c, a, b)) sub sub sub);
               ]))

let realize ctx (inputs : Circuit.t array) (g : gc) : Circuit.t =
  let rec go = function
    | GIn i -> inputs.(i mod Array.length inputs)
    | GNot a -> Circuit.bnot ctx (go a)
    | GAnd (a, b) -> Circuit.band ctx (go a) (go b)
    | GOr (a, b) -> Circuit.bor ctx (go a) (go b)
    | GXor (a, b) -> Circuit.bxor ctx (go a) (go b)
    | GIte (c, a, b) -> Circuit.bite ctx (go c) (go a) (go b)
  in
  go g

(* A stream: a session configuration index plus a list of queries; the
   bool asks for the negated root right after (retraction pressure:
   both directions must stay satisfiable unless the root is constant). *)
let gen_stream =
  QCheck2.Gen.(pair (int_bound 2) (list_size (int_range 1 10) (pair gen_gc bool)))

let session_of_config = function
  | 0 -> Session.create ()
  | 1 -> Session.create ~max_vars:16 () (* watermark reset on nearly every query *)
  | _ -> Session.create ~max_live_vars:2 ~simplify_every:1 () (* evict on every retire *)

let stream_prop (config, queries) =
  let s = session_of_config config in
  let ctx = Session.ctx s in
  let inputs = Array.init 8 (fun _ -> Circuit.fresh ctx) in
  List.for_all
    (fun (g, also_neg) ->
      let c = realize ctx inputs g in
      check_one s ctx c && (not also_neg || check_one s ctx (Circuit.bnot ctx c)))
    queries

let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"session streams are verdict-identical to scratch" ~count:400
         gen_stream stream_prop);
  ]

(* ---------- regression: the bench corpus and a hunt recall entry ---------- *)

let verdict_class = function
  | Ub_refine.Checker.Refines -> "refines"
  | Ub_refine.Checker.Counterexample _ -> "counterexample"
  | Ub_refine.Checker.Unknown _ -> "unknown"

(* Dump a diverging query as a replayable module: paste into a .ll file,
   run both checker paths, debug. *)
let replayable (q : Ub_corpus.query) : string =
  Fmt.str "; mode: %s  query: %s@.%a@.%a" q.Ub_corpus.qmode q.Ub_corpus.qname
    Ub_ir.Printer.pp_func q.Ub_corpus.qsrc Ub_ir.Printer.pp_func q.Ub_corpus.qtgt

let replay_differential (name : string) (queries : Ub_corpus.query list) =
  let session = Ub_refine.Checker.create_session () in
  List.iter
    (fun (q : Ub_corpus.query) ->
      let mode =
        match Mode.find q.Ub_corpus.qmode with
        | Some m -> m
        | None -> Alcotest.failf "unknown mode %s" q.Ub_corpus.qmode
      in
      let scratch =
        Ub_refine.Checker.check_sat ~max_conflicts:200_000 mode ~src:q.Ub_corpus.qsrc
          ~tgt:q.Ub_corpus.qtgt
      in
      let through_session =
        Ub_refine.Checker.check_sat ~max_conflicts:200_000 ~session mode ~src:q.Ub_corpus.qsrc
          ~tgt:q.Ub_corpus.qtgt
      in
      if verdict_class scratch <> verdict_class through_session then
        Alcotest.failf
          "%s: session diverges from scratch on %s (%s vs %s)\nreplayable module:\n%s" name
          q.Ub_corpus.qname (verdict_class scratch)
          (verdict_class through_session)
          (replayable q))
    queries

let regression_tests =
  [ Alcotest.test_case "90-query bench corpus, session vs scratch" `Slow (fun () ->
        replay_differential "corpus" (Ub_corpus.corpus ()));
    Alcotest.test_case "hunt recall stream, session vs scratch" `Slow (fun () ->
        let stream = Ub_corpus.hunt_stream ~entry:"mul2-add-dup" () in
        replay_differential stream.Ub_corpus.s_name stream.Ub_corpus.s_queries);
  ]

let () =
  Alcotest.run "session"
    [ ("unit", unit_tests); ("properties", props); ("regression", regression_tests) ]
