(* Bitvec: unit tests for every operation plus qcheck properties against
   a native-int reference model (widths <= 30 so native arithmetic is
   exact). *)

open Ub_support

let bv ~w i = Bitvec.of_int ~width:w i

let check_i name expected got = Alcotest.(check string) name expected (Bitvec.to_string got)

let unit_tests =
  [ Alcotest.test_case "add wraps" `Quick (fun () ->
        check_i "255+1 @ i8" "0" (Bitvec.add (bv ~w:8 255) (bv ~w:8 1)));
    Alcotest.test_case "sub wraps" `Quick (fun () ->
        check_i "0-1 @ i8" "-1" (Bitvec.sub (bv ~w:8 0) (bv ~w:8 1)));
    Alcotest.test_case "mul wraps" `Quick (fun () ->
        check_i "16*16 @ i8" "0" (Bitvec.mul (bv ~w:8 16) (bv ~w:8 16)));
    Alcotest.test_case "signed print" `Quick (fun () ->
        check_i "128 @ i8 prints signed" "-128" (bv ~w:8 128));
    Alcotest.test_case "udiv" `Quick (fun () ->
        check_i "200/3" "66" (Bitvec.udiv (bv ~w:8 200) (bv ~w:8 3)));
    Alcotest.test_case "sdiv trunc toward zero" `Quick (fun () ->
        check_i "-7/2" "-3" (Bitvec.sdiv (bv ~w:8 (-7)) (bv ~w:8 2)));
    Alcotest.test_case "srem sign" `Quick (fun () ->
        check_i "-7%2" "-1" (Bitvec.srem (bv ~w:8 (-7)) (bv ~w:8 2)));
    Alcotest.test_case "div by zero raises" `Quick (fun () ->
        Alcotest.check_raises "udiv0" Bitvec.Division_by_zero (fun () ->
            ignore (Bitvec.udiv (bv ~w:8 1) (bv ~w:8 0))));
    Alcotest.test_case "sdiv overflow predicate" `Quick (fun () ->
        Alcotest.(check bool) "INT_MIN/-1" true
          (Bitvec.sdiv_overflows (Bitvec.min_signed 8) (Bitvec.all_ones 8));
        Alcotest.(check bool) "1/-1 fine" false
          (Bitvec.sdiv_overflows (bv ~w:8 1) (Bitvec.all_ones 8)));
    Alcotest.test_case "shifts" `Quick (fun () ->
        check_i "1<<7 @ i8" "-128" (Bitvec.shl (bv ~w:8 1) 7);
        check_i "0x80 lshr 7" "1" (Bitvec.lshr (bv ~w:8 128) 7);
        check_i "0x80 ashr 7" "-1" (Bitvec.ashr (bv ~w:8 128) 7));
    Alcotest.test_case "shift oob rejected" `Quick (fun () ->
        Alcotest.(check bool) "in range" true
          (Bitvec.shift_in_range (bv ~w:8 1) (bv ~w:8 7));
        Alcotest.(check bool) "out of range" false
          (Bitvec.shift_in_range (bv ~w:8 1) (bv ~w:8 8)));
    Alcotest.test_case "zext/sext/trunc" `Quick (fun () ->
        check_i "zext 0xff" "255" (Bitvec.zext (bv ~w:8 255) ~width:16);
        check_i "sext 0xff" "-1" (Bitvec.sext (bv ~w:8 255) ~width:16);
        check_i "trunc 0x1ff" "-1" (Bitvec.trunc (bv ~w:16 511) ~width:8));
    Alcotest.test_case "nsw/nuw add" `Quick (fun () ->
        Alcotest.(check bool) "127+1 nsw" true (Bitvec.add_nsw_overflows (bv ~w:8 127) (bv ~w:8 1));
        Alcotest.(check bool) "126+1 ok" false (Bitvec.add_nsw_overflows (bv ~w:8 126) (bv ~w:8 1));
        Alcotest.(check bool) "255+1 nuw" true (Bitvec.add_nuw_overflows (bv ~w:8 255) (bv ~w:8 1));
        Alcotest.(check bool) "-1 + -1 nsw ok" false
          (Bitvec.add_nsw_overflows (bv ~w:8 (-1)) (bv ~w:8 (-1))));
    Alcotest.test_case "nsw/nuw mul" `Quick (fun () ->
        Alcotest.(check bool) "16*8 i8 nsw" true (Bitvec.mul_nsw_overflows (bv ~w:8 16) (bv ~w:8 8));
        Alcotest.(check bool) "11*11 i8 nsw ok" false
          (Bitvec.mul_nsw_overflows (bv ~w:8 11) (bv ~w:8 11));
        Alcotest.(check bool) "16*16 i8 nuw" true (Bitvec.mul_nuw_overflows (bv ~w:8 16) (bv ~w:8 16)));
    Alcotest.test_case "width-64 edge cases" `Quick (fun () ->
        let m = Bitvec.max_signed 64 in
        Alcotest.(check bool) "max+1 nsw ovf" true (Bitvec.add_nsw_overflows m (Bitvec.one 64));
        Alcotest.(check bool) "max*2 nsw ovf" true
          (Bitvec.mul_nsw_overflows m (Bitvec.of_int ~width:64 2));
        Alcotest.(check bool) "umax*1 nuw ok" false
          (Bitvec.mul_nuw_overflows (Bitvec.max_unsigned 64) (Bitvec.one 64)));
    Alcotest.test_case "popcount / power of two" `Quick (fun () ->
        Alcotest.(check int) "popcount 0xaa" 4 (Bitvec.popcount (bv ~w:8 0xaa));
        Alcotest.(check bool) "64 is pow2" true (Bitvec.is_power_of_two (bv ~w:8 64));
        Alcotest.(check bool) "65 not" false (Bitvec.is_power_of_two (bv ~w:8 65)));
    Alcotest.test_case "leading/trailing zeros" `Quick (fun () ->
        Alcotest.(check int) "clz 1 @ i8" 7 (Bitvec.count_leading_zeros (bv ~w:8 1));
        Alcotest.(check int) "ctz 8 @ i8" 3 (Bitvec.count_trailing_zeros (bv ~w:8 8));
        Alcotest.(check int) "ctz 0 = width" 8 (Bitvec.count_trailing_zeros (bv ~w:8 0)));
    Alcotest.test_case "extract / concat" `Quick (fun () ->
        let x = bv ~w:8 0b10110100 in
        check_i "bits 2..5 (13 prints as -3 @ i4)" "-3" (Bitvec.extract x ~hi:5 ~lo:2);
        let hi = bv ~w:4 0b1011 and lo = bv ~w:4 0b0100 in
        check_i "concat" "-76" (Bitvec.concat hi lo));
    Alcotest.test_case "of_bits / to_bits roundtrip" `Quick (fun () ->
        let x = bv ~w:8 0b10110100 in
        Alcotest.(check bool) "roundtrip" true (Bitvec.equal x (Bitvec.of_bits (Bitvec.to_bits x))));
    Alcotest.test_case "of_string" `Quick (fun () ->
        check_i "decimal" "42" (Bitvec.of_string ~width:8 "42");
        check_i "negative" "-1" (Bitvec.of_string ~width:8 "-1");
        check_i "hex" "-86" (Bitvec.of_string ~width:8 "0xaa"));
    Alcotest.test_case "exact predicates" `Quick (fun () ->
        Alcotest.(check bool) "8/2 exact" true (Bitvec.udiv_exact (bv ~w:8 8) (bv ~w:8 2));
        Alcotest.(check bool) "9/2 not" false (Bitvec.udiv_exact (bv ~w:8 9) (bv ~w:8 2));
        Alcotest.(check bool) "lshr exact" true (Bitvec.lshr_exact (bv ~w:8 8) 3);
        Alcotest.(check bool) "lshr inexact" false (Bitvec.lshr_exact (bv ~w:8 9) 3));
  ]

(* reference-model properties *)
let genw = QCheck2.Gen.(int_range 1 30)

let gen_pair =
  QCheck2.Gen.(
    genw >>= fun w ->
    let bound = 1 lsl w in
    pair (return w) (pair (int_bound (bound - 1)) (int_bound (bound - 1))))

let mask w v = v land ((1 lsl w) - 1)

let prop name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:500 gen_pair (fun (w, (a, b)) -> f w a b))

let props =
  [ prop "add = native add mod 2^w" (fun w a b ->
        Bitvec.to_uint_exn (Bitvec.add (bv ~w a) (bv ~w b)) = mask w (a + b));
    prop "sub = native sub mod 2^w" (fun w a b ->
        Bitvec.to_uint_exn (Bitvec.sub (bv ~w a) (bv ~w b)) = mask w (a - b));
    prop "mul = native mul mod 2^w" (fun w a b ->
        Bitvec.to_uint_exn (Bitvec.mul (bv ~w a) (bv ~w b)) = mask w (a * b));
    prop "udiv = native" (fun w a b ->
        b = 0 || Bitvec.to_uint_exn (Bitvec.udiv (bv ~w a) (bv ~w b)) = a / b);
    prop "urem = native" (fun w a b ->
        b = 0 || Bitvec.to_uint_exn (Bitvec.urem (bv ~w a) (bv ~w b)) = a mod b);
    prop "and/or/xor = native" (fun w a b ->
        Bitvec.to_uint_exn (Bitvec.logand (bv ~w a) (bv ~w b)) = a land b
        && Bitvec.to_uint_exn (Bitvec.logor (bv ~w a) (bv ~w b)) = a lor b
        && Bitvec.to_uint_exn (Bitvec.logxor (bv ~w a) (bv ~w b)) = a lxor b);
    prop "ult = native unsigned" (fun w a b -> Bitvec.ult (bv ~w a) (bv ~w b) = (a < b));
    prop "slt = native signed" (fun w a b ->
        let s v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        Bitvec.slt (bv ~w a) (bv ~w b) = (s a < s b));
    prop "add_nsw_overflows = native" (fun w a b ->
        let s v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        let sum = s a + s b in
        Bitvec.add_nsw_overflows (bv ~w a) (bv ~w b)
        = (sum > (1 lsl (w - 1)) - 1 || sum < -(1 lsl (w - 1))));
    prop "mul_nsw_overflows = native" (fun w a b ->
        let s v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
        let p = s a * s b in
        Bitvec.mul_nsw_overflows (bv ~w a) (bv ~w b)
        = (p > (1 lsl (w - 1)) - 1 || p < -(1 lsl (w - 1))));
    prop "mul_nuw_overflows = native" (fun w a b ->
        Bitvec.mul_nuw_overflows (bv ~w a) (bv ~w b) = (a * b >= 1 lsl w));
    prop "concat/extract inverse" (fun w a b ->
        if 2 * w > 64 then true
        else begin
          let c = Bitvec.concat (bv ~w a) (bv ~w b) in
          Bitvec.to_uint_exn (Bitvec.extract c ~hi:(w - 1) ~lo:0) = b
          && Bitvec.to_uint_exn (Bitvec.extract c ~hi:((2 * w) - 1) ~lo:w) = a
        end);
    prop "sext preserves signed value" (fun w a _ ->
        if w >= 60 then true
        else begin
          let s v = if v >= 1 lsl (w - 1) then v - (1 lsl w) else v in
          Int64.to_int (Bitvec.to_sint64 (Bitvec.sext (bv ~w a) ~width:(w + 4))) = s a
        end);
  ]

(* ------------------------------------------------------------------ *)
(* Edge widths (1, 2, 63, 64) vs a wide-arithmetic reference model     *)
(* ------------------------------------------------------------------ *)

(* The native-int reference above stops at width 30; the nsw/nuw/exact
   predicates have their own 128-bit limb tricks inside [Bitvec], so at
   widths 63/64 they need an INDEPENDENT oracle.  This one is a tiny
   schoolbook bignum over 16-bit limbs: sums and products are computed
   exactly and compared against the 2^(w-1)/2^w bounds, with signed
   values modelled as (sign, magnitude). *)
module Wide = struct
  let limbs = 12 (* 192 bits: plenty for 64x64 products *)
  let base = 1 lsl 16

  type nat = int array (* little-endian 16-bit limbs, fixed length *)

  let zero () : nat = Array.make limbs 0

  let of_u64 (x : int64) : nat =
    let a = zero () in
    for i = 0 to 3 do
      a.(i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical x (16 * i)) 0xFFFFL)
    done;
    a

  let pow2 k : nat =
    let a = zero () in
    a.(k / 16) <- 1 lsl (k mod 16);
    a

  let cmp (a : nat) (b : nat) : int =
    let r = ref 0 in
    for i = limbs - 1 downto 0 do
      if !r = 0 then r := compare a.(i) b.(i)
    done;
    !r

  let is_zero_n (a : nat) = Array.for_all (fun l -> l = 0) a

  let add (a : nat) (b : nat) : nat =
    let r = zero () and carry = ref 0 in
    for i = 0 to limbs - 1 do
      let s = a.(i) + b.(i) + !carry in
      r.(i) <- s mod base;
      carry := s / base
    done;
    assert (!carry = 0);
    r

  (* a - b, requires a >= b *)
  let sub (a : nat) (b : nat) : nat =
    assert (cmp a b >= 0);
    let r = zero () and borrow = ref 0 in
    for i = 0 to limbs - 1 do
      let d = a.(i) - b.(i) - !borrow in
      if d < 0 then begin
        r.(i) <- d + base;
        borrow := 1
      end
      else begin
        r.(i) <- d;
        borrow := 0
      end
    done;
    r

  let mul (a : nat) (b : nat) : nat =
    let r = zero () in
    for i = 0 to limbs - 1 do
      if a.(i) <> 0 then begin
        let carry = ref 0 in
        for j = 0 to limbs - 1 - i do
          let p = (a.(i) * b.(j)) + r.(i + j) + !carry in
          r.(i + j) <- p mod base;
          carry := p / base
        done;
        assert (!carry = 0)
      end
    done;
    r

  (* signed values as (sign, magnitude); sign of zero is +1 *)
  type sint = { sg : int; mag : nat }

  let s_of_bv bv =
    let s = Bitvec.to_sint64 bv in
    if Int64.compare s 0L >= 0 then { sg = 1; mag = of_u64 s }
    else { sg = -1; mag = of_u64 (Int64.neg s) }
    (* Int64.neg min_int is min_int, whose UNSIGNED reading is 2^63:
       exactly the magnitude we want *)

  let u_of_bv bv = of_u64 (Bitvec.to_uint64 bv)

  let s_add x y =
    if x.sg = y.sg then { sg = x.sg; mag = add x.mag y.mag }
    else begin
      let c = cmp x.mag y.mag in
      if c = 0 then { sg = 1; mag = zero () }
      else if c > 0 then { sg = x.sg; mag = sub x.mag y.mag }
      else { sg = y.sg; mag = sub y.mag x.mag }
    end

  let s_neg x = if is_zero_n x.mag then x else { x with sg = -x.sg }
  let s_mul x y =
    let mag = mul x.mag y.mag in
    { sg = (if is_zero_n mag then 1 else x.sg * y.sg); mag }

  (* does a signed value fit in [-2^(w-1), 2^(w-1)-1]? *)
  let s_fits ~w x =
    if is_zero_n x.mag then true
    else if x.sg > 0 then cmp x.mag (pow2 (w - 1)) < 0
    else cmp x.mag (pow2 (w - 1)) <= 0

  (* does an unsigned value fit in [0, 2^w-1]? *)
  let u_fits ~w x = cmp x (pow2 w) < 0
end

let edge_widths = [ 1; 2; 63; 64 ]

let edge_values w =
  let open Bitvec in
  let base =
    [ zero w; one w; all_ones w; max_signed w; min_signed w;
      sub (max_signed w) (one w); add (min_signed w) (one w); sub (all_ones w) (one w);
    ]
  in
  let extra = if w >= 3 then [ of_int ~width:w 2; of_int ~width:w (-2) ] else [] in
  List.sort_uniq Bitvec.compare_raw (base @ extra)

let random_values w n =
  let rng = Ub_support.Prng.create ~seed:(0xb17 + w) in
  List.init n (fun _ -> Ub_support.Prng.bitvec rng ~width:w)

let pairs_for w =
  let edges = edge_values w in
  let edge_pairs = List.concat_map (fun a -> List.map (fun b -> (a, b)) edges) edges in
  let rng = Ub_support.Prng.create ~seed:(0xcafe + w) in
  let rand_pairs =
    List.init 200 (fun _ ->
        (Ub_support.Prng.bitvec rng ~width:w, Ub_support.Prng.bitvec rng ~width:w))
  in
  edge_pairs @ rand_pairs

let edge_pair_case w =
  Alcotest.test_case (Printf.sprintf "nsw/nuw/exact vs wide model @ i%d" w) `Quick
    (fun () ->
      List.iter
        (fun (a, b) ->
          let ctx name =
            Printf.sprintf "%s @ i%d with a=%s b=%s" name w (Bitvec.to_string a)
              (Bitvec.to_string b)
          in
          let sa = Wide.s_of_bv a and sb = Wide.s_of_bv b in
          let ua = Wide.u_of_bv a and ub = Wide.u_of_bv b in
          Alcotest.(check bool) (ctx "add nsw")
            (not (Wide.s_fits ~w (Wide.s_add sa sb)))
            (Bitvec.add_nsw_overflows a b);
          Alcotest.(check bool) (ctx "add nuw")
            (not (Wide.u_fits ~w (Wide.add ua ub)))
            (Bitvec.add_nuw_overflows a b);
          Alcotest.(check bool) (ctx "sub nsw")
            (not (Wide.s_fits ~w (Wide.s_add sa (Wide.s_neg sb))))
            (Bitvec.sub_nsw_overflows a b);
          Alcotest.(check bool) (ctx "sub nuw") (Wide.cmp ua ub < 0)
            (Bitvec.sub_nuw_overflows a b);
          Alcotest.(check bool) (ctx "mul nsw")
            (not (Wide.s_fits ~w (Wide.s_mul sa sb)))
            (Bitvec.mul_nsw_overflows a b);
          Alcotest.(check bool) (ctx "mul nuw")
            (not (Wide.u_fits ~w (Wide.mul ua ub)))
            (Bitvec.mul_nuw_overflows a b);
          Alcotest.(check bool) (ctx "sdiv overflow")
            (Bitvec.is_min_signed a && Bitvec.is_all_ones b)
            (Bitvec.sdiv_overflows a b);
          if not (Bitvec.is_zero b) then begin
            (* exact division: b divides a with no remainder *)
            Alcotest.(check bool) (ctx "udiv exact")
              (Int64.equal (Int64.unsigned_rem (Bitvec.to_uint64 a) (Bitvec.to_uint64 b)) 0L)
              (Bitvec.udiv_exact a b);
            let sdiv_exact_ref =
              if Bitvec.is_min_signed a && Bitvec.is_all_ones b then false
              else Int64.equal (Int64.rem (Bitvec.to_sint64 a) (Bitvec.to_sint64 b)) 0L
            in
            Alcotest.(check bool) (ctx "sdiv exact") sdiv_exact_ref (Bitvec.sdiv_exact a b)
          end)
        (pairs_for w))

let edge_shift_case w =
  Alcotest.test_case (Printf.sprintf "shl nsw/nuw + shr exact vs wide model @ i%d" w)
    `Quick (fun () ->
      let shifts =
        List.sort_uniq compare [ 0; 1; w / 2; w - 1 ]
        |> List.filter (fun n -> n >= 0 && n < w)
      in
      List.iter
        (fun a ->
          List.iter
            (fun n ->
              let ctx name =
                Printf.sprintf "%s @ i%d with a=%s n=%d" name w (Bitvec.to_string a) n
              in
              let sa = Wide.s_of_bv a and ua = Wide.u_of_bv a in
              let p2n = Wide.pow2 n in
              Alcotest.(check bool) (ctx "shl nsw")
                (not (Wide.s_fits ~w (Wide.s_mul sa { Wide.sg = 1; mag = p2n })))
                (Bitvec.shl_nsw_overflows a n);
              Alcotest.(check bool) (ctx "shl nuw")
                (not (Wide.u_fits ~w (Wide.mul ua p2n)))
                (Bitvec.shl_nuw_overflows a n);
              (* lshr/ashr exact: no one-bits shifted out, i.e. 2^n | a *)
              let divisible =
                n = 0
                || Int64.equal
                     (Int64.logand (Bitvec.to_uint64 a)
                        (Int64.sub (Int64.shift_left 1L n) 1L))
                     0L
              in
              Alcotest.(check bool) (ctx "lshr exact") divisible (Bitvec.lshr_exact a n);
              Alcotest.(check bool) (ctx "ashr exact") divisible (Bitvec.ashr_exact a n))
            shifts)
        (edge_values w @ random_values w 100))

let edge_tests =
  List.concat_map (fun w -> [ edge_pair_case w; edge_shift_case w ]) edge_widths

(* ------------------------------------------------------------------ *)
(* Boundary regressions (ISSUE 4 satellite: to_int fast path, sign     *)
(* handling at widths 62/63/64, and the umul128 mid-carry bug)         *)
(* ------------------------------------------------------------------ *)

let bv64 s = Bitvec.of_string ~width:64 s

(* umul128 computes the mid partial-sum p01 + p10 + (p00 >> 32) with
   TWO 64-bit additions, and either one can carry.  The original code
   checked only the first, so operands whose p01 + p10 lands within
   2^32 of 2^64 (without wrapping) lost the high bit of the product:
   e.g. 0xFFFFFFFFFFFFFFFF * 0x00000002FFFFFFFF.  At i64 that turned
   (-1) * 0x2FFFFFFFF — which trivially fits — into a false nsw
   overflow.  Sweep the carry window against the wide-limb model. *)
let umul128_carry_window =
  Alcotest.test_case "umul128 mid-carry window @ i64" `Quick (fun () ->
      let w = 64 in
      let a = Bitvec.all_ones w in
      let sa = Wide.s_of_bv a and ua = Wide.u_of_bv a in
      for b1 = 1 to 64 do
        let b =
          Bitvec.of_int64 ~width:w
            (Int64.logor (Int64.shift_left (Int64.of_int b1) 32) 0xFFFFFFFFL)
        in
        let ctx name = Printf.sprintf "%s with b=%s" name (Bitvec.to_string b) in
        let sb = Wide.s_of_bv b and ub = Wide.u_of_bv b in
        Alcotest.(check bool) (ctx "mul nsw")
          (not (Wide.s_fits ~w (Wide.s_mul sa sb)))
          (Bitvec.mul_nsw_overflows a b);
        Alcotest.(check bool) (ctx "mul nuw")
          (not (Wide.u_fits ~w (Wide.mul ua ub)))
          (Bitvec.mul_nuw_overflows a b)
      done;
      (* the concrete pre-fix counterexample: -1 * 0x2FFFFFFFF fits i64 *)
      Alcotest.(check bool) "-1 * 0x2FFFFFFFF no nsw ovf" false
        (Bitvec.mul_nsw_overflows (bv64 "-1") (bv64 "0x2FFFFFFFF")))

(* The native-int fast path in to_uint_opt: width <= 62 values always
   fit (max 2^62 - 1 = OCaml max_int); at 63/64 only [0, max_int]. *)
let to_uint_boundaries =
  Alcotest.test_case "to_uint_opt fast path @ 62/63/64" `Quick (fun () ->
      let some = Alcotest.(check (option int)) in
      some "i62 all-ones = max_int" (Some max_int)
        (Bitvec.to_uint_opt (Bitvec.all_ones 62));
      some "i63 max_signed = max_int" (Some max_int)
        (Bitvec.to_uint_opt (Bitvec.max_signed 63));
      some "i63 2^62 does not fit" None
        (Bitvec.to_uint_opt (Bitvec.min_signed 63));
      some "i63 all-ones does not fit" None (Bitvec.to_uint_opt (Bitvec.all_ones 63));
      some "i64 max_int fits" (Some max_int)
        (Bitvec.to_uint_opt (Bitvec.of_int ~width:64 max_int));
      some "i64 2^62 does not fit" None
        (Bitvec.to_uint_opt (bv64 "0x4000000000000000"));
      some "i64 min_signed does not fit" None
        (Bitvec.to_uint_opt (Bitvec.min_signed 64)))

let signed_boundaries =
  Alcotest.test_case "min/max_signed sign handling @ 62/63/64" `Quick (fun () ->
      let i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal in
      Alcotest.check i64 "i64 min_signed = Int64.min_int" Int64.min_int
        (Bitvec.to_sint64 (Bitvec.min_signed 64));
      Alcotest.check i64 "i63 min_signed = -2^62" (Int64.neg 0x4000000000000000L)
        (Bitvec.to_sint64 (Bitvec.min_signed 63));
      Alcotest.check i64 "i62 min_signed = -2^61" (Int64.neg 0x2000000000000000L)
        (Bitvec.to_sint64 (Bitvec.min_signed 62));
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "is_min_signed(min_signed %d)" w)
            true
            (Bitvec.is_min_signed (Bitvec.min_signed w));
          Alcotest.(check bool)
            (Printf.sprintf "is_min_signed(max_signed %d)" w)
            false
            (Bitvec.is_min_signed (Bitvec.max_signed w));
          Alcotest.check i64
            (Printf.sprintf "max + 1 = min @ i%d" w)
            (Bitvec.to_sint64 (Bitvec.min_signed w))
            (Bitvec.to_sint64 (Bitvec.add (Bitvec.max_signed w) (Bitvec.one w))))
        [ 62; 63; 64 ];
      (* of_string accepts Int64.min_int spelled in decimal *)
      Alcotest.(check bool) "parse i64 min_int" true
        (Bitvec.is_min_signed (bv64 "-9223372036854775808")))

let regression_tests = [ umul128_carry_window; to_uint_boundaries; signed_boundaries ]

let () =
  Alcotest.run "bitvec"
    [ ("unit", unit_tests); ("properties", props); ("edge-widths", edge_tests);
      ("regressions", regression_tests) ]
