(* The exec layer: worker-pool determinism, crash isolation, per-task
   timeouts, and the persistent cache's key/store/find contract. *)

open Ub_exec

let int_results = Array.init 50 (fun i -> i)

let pool_tests =
  [ Alcotest.test_case "parallel map matches sequential" `Quick (fun () ->
        let f x = (x * x) + 1 in
        let seq = Pool.map ~jobs:1 f int_results in
        let par = Pool.map ~jobs:4 f int_results in
        Alcotest.(check bool) "same results" true (seq = par);
        Array.iteri
          (fun i r ->
            match r with
            | Pool.Done v -> Alcotest.(check int) "value" (f i) v
            | _ -> Alcotest.fail "expected Done")
          par);
    Alcotest.test_case "an exception crashes only its own task" `Quick (fun () ->
        let f x = if x = 17 then failwith "boom" else x in
        let rs = Pool.map ~jobs:3 f int_results in
        Array.iteri
          (fun i r ->
            match (i, r) with
            | 17, Pool.Crashed msg ->
              Alcotest.(check bool) "message mentions boom" true
                (Ub_support.Util.string_contains ~needle:"boom" msg)
            | 17, _ -> Alcotest.fail "task 17 should have crashed"
            | _, Pool.Done v -> Alcotest.(check int) "value" i v
            | _, _ -> Alcotest.fail "healthy task lost")
          rs);
    Alcotest.test_case "a dying worker loses only the task it was on" `Quick (fun () ->
        (* SIGKILL is not catchable: this is the segfault/OOM-kill case.
           The pool must respawn and finish the rest of the shard. *)
        let f x =
          if x = 5 then begin
            Unix.kill (Unix.getpid ()) Sys.sigkill;
            x
          end
          else x
        in
        let rs = Pool.map ~jobs:2 f (Array.init 20 (fun i -> i)) in
        Array.iteri
          (fun i r ->
            match (i, r) with
            | 5, Pool.Crashed msg ->
              Alcotest.(check bool) "killed by signal" true
                (Ub_support.Util.string_contains ~needle:"signal" msg)
            | 5, _ -> Alcotest.fail "task 5 should have crashed"
            | _, Pool.Done v -> Alcotest.(check int) "value" i v
            | _, _ -> Alcotest.failf "task %d lost to the crash" i)
          rs);
    Alcotest.test_case "a slow task times out without killing the worker" `Quick (fun () ->
        let f x = if x = 2 then Unix.sleepf 5.0 else () in
        let rs = Pool.map ~jobs:2 ~timeout_s:0.2 f (Array.init 6 (fun i -> i)) in
        Array.iteri
          (fun i r ->
            match (i, r) with
            | 2, Pool.Timed_out -> ()
            | 2, _ -> Alcotest.fail "task 2 should have timed out"
            | _, Pool.Done () -> ()
            | _, _ -> Alcotest.failf "task %d affected by the timeout" i)
          rs);
    Alcotest.test_case "a worker exiting non-zero surfaces as a crash" `Quick (fun () ->
        (* _exit bypasses every OCaml exception net: the parent must read
           the wait status and pin the crash on the in-flight task. *)
        let f x =
          if x = 7 then Unix._exit 3;
          x
        in
        let rs = Pool.map ~jobs:2 f (Array.init 16 (fun i -> i)) in
        Array.iteri
          (fun i r ->
            match (i, r) with
            | 7, Pool.Crashed msg ->
              Alcotest.(check bool) "message names exit code 3" true
                (Ub_support.Util.string_contains ~needle:"code 3" msg)
            | 7, _ -> Alcotest.fail "task 7 should have crashed"
            | _, Pool.Done v -> Alcotest.(check int) "value" i v
            | _, _ -> Alcotest.failf "task %d lost to the exit" i)
          rs);
    Alcotest.test_case "nested timeouts do not cancel the outer deadline" `Quick (fun () ->
        (* an inner run_task used to zero ITIMER_REAL on its way out,
           silently disarming the enclosing task's timeout *)
        let inner () =
          Pool.map ~jobs:1 ~timeout_s:0.05 (fun x -> x + 1) (Array.init 3 (fun i -> i))
        in
        let outer _ =
          let rs = inner () in
          Array.iter
            (function Pool.Done _ -> () | _ -> Alcotest.fail "inner task failed")
            rs;
          Unix.sleepf 5.0
        in
        let rs = Pool.map ~jobs:1 ~timeout_s:0.4 outer (Array.make 1 ()) in
        (match rs.(0) with
        | Pool.Timed_out -> ()
        | Pool.Done _ -> Alcotest.fail "outer deadline was disarmed by the inner pool"
        | Pool.Crashed m -> Alcotest.failf "outer task crashed: %s" m));
    Alcotest.test_case "stats account for every task" `Quick (fun () ->
        let rs, stats = Pool.map_stats ~jobs:3 (fun x -> x) int_results in
        Alcotest.(check int) "task_count" (Array.length int_results) stats.Pool.task_count;
        Alcotest.(check int) "shards cover all tasks" (Array.length rs)
          (List.fold_left (fun a s -> a + s.Pool.tasks) 0 stats.Pool.shards);
        Alcotest.(check bool) "utilization sane" true
          (stats.Pool.utilization >= 0.0 && stats.Pool.utilization <= 1.01));
    Alcotest.test_case "worker telemetry is forwarded to the parent" `Quick (fun () ->
        let module Obs = Ub_obs.Obs in
        Obs.reset ();
        ignore (Pool.map ~jobs:3 (fun x -> x * 2) (Array.init 30 (fun i -> i)));
        Alcotest.(check int) "task_done aggregated across workers" 30
          (Obs.counter_value "pool.task_done");
        Alcotest.(check int) "dispatch events counted" 30
          (Obs.counter_value "pool.task_dispatch");
        Obs.reset ();
        let g x =
          if x = 5 then Unix.kill (Unix.getpid ()) Sys.sigkill;
          x
        in
        ignore (Pool.map ~jobs:2 g (Array.init 10 (fun i -> i)));
        Alcotest.(check int) "worker_crash event emitted" 1
          (Obs.counter_value "pool.worker_crash");
        Alcotest.(check int) "crashed task counted by the parent" 1
          (Obs.counter_value "pool.task_crashed");
        Obs.reset ());
  ]

let with_tmp_cache k =
  let dir = Filename.temp_file "ub_cache_test" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> k (Cache.open_dir dir))

let cache_tests =
  [ Alcotest.test_case "store/find roundtrip" `Quick (fun () ->
        with_tmp_cache (fun c ->
            let k = Cache.key ~parts:[ "src"; "tgt"; "mode"; "kind" ] in
            Alcotest.(check (option string)) "miss before store" None (Cache.find c k);
            Cache.store c k "verdict-bytes";
            Alcotest.(check (option string)) "hit after store" (Some "verdict-bytes")
              (Cache.find c k);
            Alcotest.(check int) "one hit" 1 (Cache.hits c);
            Alcotest.(check int) "one miss" 1 (Cache.misses c)));
    Alcotest.test_case "keys are injective on part boundaries" `Quick (fun () ->
        Alcotest.(check bool) "ab|c vs a|bc" false
          (Cache.key ~parts:[ "ab"; "c" ] = Cache.key ~parts:[ "a"; "bc" ]);
        Alcotest.(check bool) "same parts same key" true
          (Cache.key ~parts:[ "x"; "y" ] = Cache.key ~parts:[ "x"; "y" ]));
    Alcotest.test_case "cache persists across handles" `Quick (fun () ->
        with_tmp_cache (fun c ->
            let k = Cache.key ~parts:[ "persistent" ] in
            Cache.store c k "v1";
            let reopened = Cache.open_dir c.Cache.dir in
            Alcotest.(check (option string)) "visible to a fresh handle" (Some "v1")
              (Cache.find reopened k)));
  ]

(* the journal backend: single-file append log, fcntl-locked appends,
   compaction behind an atomic rename, safe under concurrent writers
   from several processes *)

let with_tmp_journal k =
  let dir = Filename.temp_file "ub_journal_test" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> k dir)

let rec waitpid_retry pid =
  try ignore (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let journal_tests =
  [ Alcotest.test_case "store/find roundtrip and persistence" `Quick (fun () ->
        with_tmp_journal (fun dir ->
            let c = Cache.open_journal dir in
            let k = Cache.key ~parts:[ "a"; "b" ] in
            Alcotest.(check (option string)) "miss first" None (Cache.find c k);
            Cache.store c k "v1";
            Cache.store c k "v2" (* overwrite: last append wins *);
            Alcotest.(check (option string)) "overwritten" (Some "v2") (Cache.find c k);
            Cache.close c;
            let c2 = Cache.open_journal dir in
            Alcotest.(check (option string)) "fresh handle replays" (Some "v2")
              (Cache.find c2 k);
            Cache.close c2));
    Alcotest.test_case "another process's appends become visible" `Quick (fun () ->
        with_tmp_journal (fun dir ->
            let c = Cache.open_journal dir in
            Cache.store c (Cache.key ~parts:[ "mine" ]) "here";
            flush stdout;
            flush stderr;
            (match Unix.fork () with
            | 0 ->
              let child = Cache.open_journal dir in
              Cache.store child (Cache.key ~parts:[ "theirs" ]) "there";
              Cache.close child;
              Unix._exit 0
            | pid -> waitpid_retry pid);
            (* a miss triggers a tail refresh of the shared journal *)
            Alcotest.(check (option string)) "foreign append visible" (Some "there")
              (Cache.find c (Cache.key ~parts:[ "theirs" ]));
            Cache.close c));
    Alcotest.test_case "concurrent multi-process writers lose nothing" `Quick (fun () ->
        with_tmp_journal (fun dir ->
            let n_procs = 4 and n_keys = 50 in
            flush stdout;
            flush stderr;
            let pids =
              List.init n_procs (fun p ->
                  match Unix.fork () with
                  | 0 ->
                    let c = Cache.open_journal dir in
                    for i = 0 to n_keys - 1 do
                      Cache.store c
                        (Cache.key ~parts:[ string_of_int p; string_of_int i ])
                        (Printf.sprintf "%d-%d" p i)
                    done;
                    Cache.close c;
                    Unix._exit 0
                  | pid -> pid)
            in
            List.iter waitpid_retry pids;
            let c = Cache.open_journal dir in
            for p = 0 to n_procs - 1 do
              for i = 0 to n_keys - 1 do
                Alcotest.(check (option string))
                  (Printf.sprintf "key %d-%d survived the races" p i)
                  (Some (Printf.sprintf "%d-%d" p i))
                  (Cache.find c (Cache.key ~parts:[ string_of_int p; string_of_int i ]))
              done
            done;
            Cache.close c));
    Alcotest.test_case "compaction drops dead bytes, keeps every live entry" `Quick
      (fun () ->
        with_tmp_journal (fun dir ->
            let c = Cache.open_journal dir in
            let k = Cache.key ~parts:[ "hot" ] in
            for i = 0 to 99 do
              Cache.store c k (string_of_int i)
            done;
            Cache.store c (Cache.key ~parts:[ "cold" ]) "kept";
            let before = Cache.journal_size c in
            Cache.compact c;
            let after = Cache.journal_size c in
            Alcotest.(check bool) "journal shrank" true (after < before);
            Alcotest.(check (option string)) "hot key survives" (Some "99") (Cache.find c k);
            Alcotest.(check (option string)) "cold key survives" (Some "kept")
              (Cache.find c (Cache.key ~parts:[ "cold" ]));
            Cache.close c;
            let c2 = Cache.open_journal dir in
            Alcotest.(check (option string)) "compacted file replays" (Some "99")
              (Cache.find c2 k);
            Cache.close c2));
    Alcotest.test_case "compaction races a live writer without losing appends" `Quick
      (fun () ->
        with_tmp_journal (fun dir ->
            let n_keys = 100 in
            flush stdout;
            flush stderr;
            let writer =
              match Unix.fork () with
              | 0 ->
                let c = Cache.open_journal dir in
                for i = 0 to n_keys - 1 do
                  Cache.store c (Cache.key ~parts:[ "w"; string_of_int i ]) (string_of_int i)
                done;
                Cache.close c;
                Unix._exit 0
              | pid -> pid
            in
            let c = Cache.open_journal dir in
            for _ = 1 to 25 do
              Cache.store c (Cache.key ~parts:[ "churn" ]) "x";
              Cache.compact c
            done;
            waitpid_retry writer;
            let fresh = Cache.open_journal dir in
            for i = 0 to n_keys - 1 do
              Alcotest.(check (option string))
                (Printf.sprintf "writer key %d survived compaction" i)
                (Some (string_of_int i))
                (Cache.find fresh (Cache.key ~parts:[ "w"; string_of_int i ]))
            done;
            Cache.close c;
            Cache.close fresh));
    Alcotest.test_case "a torn tail is tolerated, intact prefix survives" `Quick (fun () ->
        with_tmp_journal (fun dir ->
            let c = Cache.open_journal dir in
            Cache.store c (Cache.key ~parts:[ "ok" ]) "fine";
            Cache.close c;
            (* simulate a crash mid-append: half a record at the tail *)
            let jpath = Filename.concat dir "journal.bin" in
            let fd = Unix.openfile jpath [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
            ignore (Unix.write fd (Bytes.of_string "\x00\x00\x00\x10par") 0 7);
            Unix.close fd;
            let c2 = Cache.open_journal dir in
            Alcotest.(check (option string)) "prefix intact" (Some "fine")
              (Cache.find c2 (Cache.key ~parts:[ "ok" ]));
            Cache.close c2));
  ]

(* cross-journal merge: the fleet replication primitive.  Missing keys
   copy over; keys the destination already holds are left alone (first
   value wins -- verdicts are deterministic per key, so re-appending
   would only create dead weight and merge ping-pong). *)
let merge_tests =
  [ Alcotest.test_case "merge copies missing keys, never overwrites" `Quick (fun () ->
        with_tmp_journal (fun dir_a ->
            with_tmp_journal (fun dir_b ->
                let ka = Cache.key ~parts:[ "a" ]
                and kb = Cache.key ~parts:[ "b" ]
                and shared = Cache.key ~parts:[ "shared" ] in
                let a = Cache.open_journal dir_a in
                Cache.store a ka "from-a";
                Cache.store a shared "a-value";
                let b = Cache.open_journal dir_b in
                Cache.store b kb "from-b";
                Cache.store b shared "b-value";
                Cache.close b;
                let copied = Cache.merge_from a dir_b in
                Alcotest.(check int) "only the missing key copied" 1 copied;
                Alcotest.(check (option string)) "own key intact" (Some "from-a")
                  (Cache.find a ka);
                Alcotest.(check (option string)) "foreign key arrived" (Some "from-b")
                  (Cache.find a kb);
                Alcotest.(check (option string)) "shared key kept the first value"
                  (Some "a-value") (Cache.find a shared);
                (* idempotent: a second round copies nothing *)
                Alcotest.(check int) "re-merge is a no-op" 0 (Cache.merge_from a dir_b);
                Cache.close a)));
    Alcotest.test_case "merge+compact under 4 concurrent cross-journal writers" `Quick
      (fun () ->
        with_tmp_journal (fun dir_a ->
            with_tmp_journal (fun dir_b ->
                with_tmp_journal (fun dir_all ->
                    (* the PR-5 writer stress, split across two journals:
                       writers 0/1 append to A, 2/3 to B, racing the
                       parent's replication rounds into the aggregate *)
                    let n_procs = 4 and n_keys = 50 in
                    flush stdout;
                    flush stderr;
                    let pids =
                      List.init n_procs (fun p ->
                          match Unix.fork () with
                          | 0 ->
                            let c =
                              Cache.open_journal (if p < 2 then dir_a else dir_b)
                            in
                            for i = 0 to n_keys - 1 do
                              Cache.store c
                                (Cache.key ~parts:[ string_of_int p; string_of_int i ])
                                (Printf.sprintf "%d-%d" p i)
                            done;
                            Cache.close c;
                            Unix._exit 0
                          | pid -> pid)
                    in
                    (* replication rounds race the live writers *)
                    let agg = Cache.open_journal dir_all in
                    for _ = 1 to 10 do
                      ignore (Cache.merge_from agg dir_a);
                      ignore (Cache.merge_from agg dir_b)
                    done;
                    List.iter waitpid_retry pids;
                    (* final round after the writers exit: nothing may be
                       missing afterwards *)
                    ignore (Cache.merge_from agg dir_a);
                    ignore (Cache.merge_from agg dir_b);
                    Cache.compact agg;
                    for p = 0 to n_procs - 1 do
                      for i = 0 to n_keys - 1 do
                        Alcotest.(check (option string))
                          (Printf.sprintf "key %d-%d reached the aggregate" p i)
                          (Some (Printf.sprintf "%d-%d" p i))
                          (Cache.find agg
                             (Cache.key ~parts:[ string_of_int p; string_of_int i ]))
                      done
                    done;
                    (* no duplicate keys: every record in the compacted file
                       is live, so size equals one record per unique key --
                       re-merging both sources must copy nothing and leave
                       the file byte-identical *)
                    let size_after = Cache.journal_size agg in
                    Alcotest.(check int) "re-merge A is a no-op" 0
                      (Cache.merge_from agg dir_a);
                    Alcotest.(check int) "re-merge B is a no-op" 0
                      (Cache.merge_from agg dir_b);
                    Alcotest.(check bool) "no bytes appended by the no-op rounds" true
                      (Cache.journal_size agg = size_after);
                    (* merge back: both shard journals end up answering
                       every key (the fleet's warm-restart guarantee) *)
                    let a = Cache.open_journal dir_a in
                    ignore (Cache.merge_from a dir_all);
                    for p = 0 to n_procs - 1 do
                      for i = 0 to n_keys - 1 do
                        Alcotest.(check (option string))
                          (Printf.sprintf "key %d-%d replicated back to A" p i)
                          (Some (Printf.sprintf "%d-%d" p i))
                          (Cache.find a
                             (Cache.key ~parts:[ string_of_int p; string_of_int i ]))
                      done
                    done;
                    Cache.close a;
                    Cache.close agg))));
    Alcotest.test_case "merge tolerates a torn source tail" `Quick (fun () ->
        with_tmp_journal (fun dir_src ->
            with_tmp_journal (fun dir_dst ->
                let s = Cache.open_journal dir_src in
                Cache.store s (Cache.key ~parts:[ "one" ]) "1";
                Cache.store s (Cache.key ~parts:[ "two" ]) "2";
                Cache.close s;
                (* crash mid-append in the source shard *)
                let jpath = Filename.concat dir_src "journal.bin" in
                let fd = Unix.openfile jpath [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
                ignore (Unix.write fd (Bytes.of_string "\x00\x00\x00\x20torn") 0 8);
                Unix.close fd;
                let d = Cache.open_journal dir_dst in
                Alcotest.(check int) "both intact records copied" 2
                  (Cache.merge_from d dir_src);
                Alcotest.(check (option string)) "first survives" (Some "1")
                  (Cache.find d (Cache.key ~parts:[ "one" ]));
                Alcotest.(check (option string)) "second survives" (Some "2")
                  (Cache.find d (Cache.key ~parts:[ "two" ]));
                Cache.close d)));
  ]

(* the verdict cache: decisive verdicts roundtrip, unknowns are skipped *)
let verdict_tests =
  [ Alcotest.test_case "decisive verdicts roundtrip, unknown is not cached" `Quick (fun () ->
        with_tmp_cache (fun c ->
            let open Ub_refine in
            let k1 = Cache.key ~parts:[ "1" ] and k2 = Cache.key ~parts:[ "2" ] in
            Verdict_cache.store c k1 Checker.Refines;
            Alcotest.(check bool) "refines roundtrips" true
              (Verdict_cache.find c k1 = Some Checker.Refines);
            Verdict_cache.store c k2 (Checker.Unknown "budget");
            Alcotest.(check bool) "unknown not cached" true (Verdict_cache.find c k2 = None)));
  ]

let () =
  Alcotest.run "exec"
    [ ("pool", pool_tests); ("cache", cache_tests); ("journal", journal_tests);
      ("journal-merge", merge_tests); ("verdict-cache", verdict_tests);
    ]
