(* The fleet layer: consistent-hash ring properties, fleet spec
   parsing, cross-shard stats aggregation, and a live 2-shard fleet
   driven through the failover client -- including a SIGKILL of one
   shard mid-burst, after which every query must still be answered (or
   error-accounted), never hung, and never answered differently. *)

module Ring = Ub_serve.Ring
module Fleet = Ub_serve.Fleet
module Client = Ub_serve.Client
module Wire = Ub_serve.Wire
module Json = Ub_serve.Json

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let keys n = List.init n (fun i -> Printf.sprintf "key-%d" i)

let ring_tests =
  [ Alcotest.test_case "routing is deterministic across ring instances" `Quick (fun () ->
        let names = [ "a"; "b"; "c"; "d" ] in
        let r1 = Ring.make names and r2 = Ring.make names in
        List.iter
          (fun k ->
            Alcotest.(check int) (k ^ " routes identically") (Ring.route r1 k)
              (Ring.route r2 k))
          (keys 200));
    Alcotest.test_case "virtual nodes balance the load" `Quick (fun () ->
        let shards = 4 and n = 4000 in
        let r = Ring.make [ "a"; "b"; "c"; "d" ] in
        let counts = Array.make shards 0 in
        List.iter (fun k -> counts.(Ring.route r k) <- counts.(Ring.route r k) + 1) (keys n);
        Array.iteri
          (fun i c ->
            (* fair share is 1000; 64 vnodes keeps every shard within a
               loose 2x band -- this guards against gross imbalance
               (e.g. modular hashing of a constant prefix), not variance *)
            Alcotest.(check bool)
              (Printf.sprintf "shard %d within [500,2000], got %d" i c)
              true
              (c >= n / 8 && c <= n / 2))
          counts);
    Alcotest.test_case "adding a shard only captures keys, never reshuffles" `Quick
      (fun () ->
        let before = Ring.make [ "a"; "b"; "c"; "d" ] in
        let after = Ring.make [ "a"; "b"; "c"; "d"; "e" ] in
        let moved = ref 0 and total = 500 in
        List.iter
          (fun k ->
            let o = Ring.route before k and n = Ring.route after k in
            if Ring.name before o <> Ring.name after n then begin
              incr moved;
              (* a key may only move to the NEW shard: existing shards
                 never trade keys among themselves *)
              Alcotest.(check string) (k ^ " moved to the added shard") "e"
                (Ring.name after n)
            end)
          (keys total);
        (* ~1/5 of keys should move; anything over half means the ring
           is reshuffling, which would cold-start every shard journal *)
        Alcotest.(check bool)
          (Printf.sprintf "disruption bounded, %d/%d moved" !moved total)
          true
          (!moved > 0 && !moved < total / 2));
    Alcotest.test_case "successors start at the owner and cover all shards" `Quick
      (fun () ->
        let r = Ring.make [ "a"; "b"; "c" ] in
        List.iter
          (fun k ->
            let succ = Ring.successors r k in
            Alcotest.(check int) "covers every shard" 3 (List.length succ);
            Alcotest.(check int) "head is the owner" (Ring.route r k) (List.hd succ);
            let sorted = List.sort_uniq compare succ in
            Alcotest.(check int) "all distinct" 3 (List.length sorted))
          (keys 50));
  ]

(* ------------------------------------------------------------------ *)
(* Fleet spec parsing                                                  *)
(* ------------------------------------------------------------------ *)

let spec_tests =
  [ Alcotest.test_case "comma-separated socket lists parse" `Quick (fun () ->
        match Fleet.sockets_of_spec "/tmp/a.sock,/tmp/b.sock" with
        | Ok s -> Alcotest.(check (list string)) "both sockets" [ "/tmp/a.sock"; "/tmp/b.sock" ] s
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "empty specs are rejected" `Quick (fun () ->
        match Fleet.sockets_of_spec "," with
        | Ok _ -> Alcotest.fail "empty spec accepted"
        | Error _ -> ());
    Alcotest.test_case "fleet.json specs parse" `Quick (fun () ->
        let dir = Filename.temp_file "ub_fleet_spec" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o755;
        Fun.protect
          ~finally:(fun () ->
            ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
          (fun () ->
            let oc = open_out (Filename.concat dir "fleet.json") in
            output_string oc
              {|{"schema":"ubc-fleet-v1","shards":[{"name":"shard-0","socket":"/x/shard-0.sock"},{"name":"shard-1","socket":"/x/shard-1.sock"}]}|};
            close_out oc;
            (* by directory *)
            (match Fleet.sockets_of_spec dir with
            | Ok s ->
              Alcotest.(check (list string)) "dir spec" [ "/x/shard-0.sock"; "/x/shard-1.sock" ] s
            | Error e -> Alcotest.fail e);
            (* by explicit .json path *)
            match Fleet.sockets_of_spec (Filename.concat dir "fleet.json") with
            | Ok s ->
              Alcotest.(check (list string)) "json spec" [ "/x/shard-0.sock"; "/x/shard-1.sock" ] s
            | Error e -> Alcotest.fail e));
  ]

(* ------------------------------------------------------------------ *)
(* Stats aggregation                                                   *)
(* ------------------------------------------------------------------ *)

let mk_stats ~served ~hits ~misses ~verdicts report : Wire.stats_reply =
  { Wire.queue_depth = 0;
    queue_limit = 64;
    uptime_s = 1.0;
    served;
    coalesced_total = 2;
    rejected = 1;
    timeouts = 0;
    cache_hit_rate = 0.0;
    cache_hits = hits;
    cache_misses = misses;
    server = "s";
    verdicts;
    report;
  }

let report_of_counters kvs =
  Json.Obj
    [ ("schema", Json.Str "ubc-obs-report-v1");
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) kvs));
      ( "spans",
        Json.Obj
          [ ( "serve.batch",
              Json.Obj
                [ ("count", Json.Num 2.0); ("total_s", Json.Num 1.0); ("max_s", Json.Num 0.75) ]
            );
          ] );
    ]

let num_of j path =
  match Option.bind (Json.member path j) Json.to_num with
  | Some v -> v
  | None -> Alcotest.fail ("missing field " ^ path)

let stats_tests =
  [ Alcotest.test_case "merge_stats sums load metrics and verdict tallies" `Quick (fun () ->
        let a =
          mk_stats ~served:10 ~hits:4 ~misses:6 ~verdicts:[ ("refines", 8); ("unknown", 2) ]
            (report_of_counters [ ("serve.requests", 12.0) ])
        in
        let b =
          mk_stats ~served:5 ~hits:1 ~misses:4
            ~verdicts:[ ("refines", 3); ("counterexample", 2) ]
            (report_of_counters [ ("serve.requests", 7.0) ])
        in
        let j = Fleet.merge_stats [ ("shard-0", a); ("shard-1", b) ] in
        Alcotest.(check string) "schema" "ubc-fleet-stats-v1"
          (Option.value ~default:"" (Json.str_field j "schema"));
        Alcotest.(check (float 0.001)) "served sums" 15.0 (num_of j "served");
        Alcotest.(check (float 0.001)) "coalesced sums" 4.0 (num_of j "coalesced");
        Alcotest.(check (float 0.001)) "cache_hits sums" 5.0 (num_of j "cache_hits");
        Alcotest.(check (float 0.001)) "hit rate derived from sums" (5.0 /. 15.0)
          (num_of j "cache_hit_rate");
        let verdicts = Option.get (Json.member "verdicts" j) in
        Alcotest.(check (float 0.001)) "refines tally" 11.0 (num_of verdicts "refines");
        Alcotest.(check (float 0.001)) "counterexample tally" 2.0
          (num_of verdicts "counterexample");
        (* the merged obs report sums counters and keeps span maxima *)
        let report = Option.get (Json.member "report" j) in
        Alcotest.(check string) "merged report schema" "ubc-obs-report-fleet-v1"
          (Option.value ~default:"" (Json.str_field report "schema"));
        let counters = Option.get (Json.member "counters" report) in
        Alcotest.(check (float 0.001)) "counters sum" 19.0 (num_of counters "serve.requests");
        let spans = Option.get (Json.member "spans" report) in
        let batch = Option.get (Json.member "serve.batch" spans) in
        Alcotest.(check (float 0.001)) "span count sums" 4.0 (num_of batch "count");
        Alcotest.(check (float 0.001)) "span max is max" 0.75 (num_of batch "max_s");
        (* per-shard blocks survive aggregation *)
        let shards = Option.get (Json.member "shards" j) in
        Alcotest.(check bool) "per-shard blocks present" true
          (Json.member "shard-0" shards <> None && Json.member "shard-1" shards <> None));
  ]

(* ------------------------------------------------------------------ *)
(* Live 2-shard fleet                                                  *)
(* ------------------------------------------------------------------ *)

let with_fleet ?(shards = 2) ?(jobs = 1) ?(queue_limit = 64) k =
  let dir = Filename.temp_file "ub_fleet_test" "" in
  Sys.remove dir;
  let cfg =
    { (Fleet.default_config ~dir) with Fleet.shards; jobs; queue_limit; batch_max = 16 }
  in
  let h = Fleet.spawn_local cfg in
  Fun.protect
    ~finally:(fun () ->
      Fleet.stop_local h;
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> k h)

let src_fn i = Printf.sprintf "define i8 @q%03d(i8 %%x) {\ne:\n  ret i8 %%x\n}" i
let tgt_zero i = Printf.sprintf "define i8 @q%03d(i8 %%x) {\ne:\n  ret i8 0\n}" i

let expect_verdict label want = function
  | Wire.Verdict v, _ -> Alcotest.(check string) label want v.Wire.verdict
  | Wire.Error_r { message; _ }, _ -> Alcotest.fail (label ^ ": error " ^ message)
  | _ -> Alcotest.fail (label ^ ": unexpected reply")

let fleet_tests =
  [ Alcotest.test_case "hello handshake echoes the shard tuning" `Quick (fun () ->
        with_fleet ~jobs:2 ~queue_limit:48 (fun h ->
            List.iter
              (fun socket_path ->
                let cl = Client.connect ~socket_path () in
                Fun.protect
                  ~finally:(fun () -> Client.close cl)
                  (fun () ->
                    Alcotest.(check int) "jobs echoed" 2 cl.Client.jobs;
                    Alcotest.(check int) "queue limit echoed" 48 cl.Client.queue_limit;
                    Alcotest.(check bool) "shard name in server string" true
                      (String.length cl.Client.server > 0)))
              (Fleet.handle_sockets h)));
    Alcotest.test_case "batch routes across shards with correct verdicts" `Quick (fun () ->
        with_fleet (fun h ->
            let fl = Client.Fleet.make (Fleet.handle_sockets h) in
            Fun.protect
              ~finally:(fun () -> Client.Fleet.close fl)
              (fun () ->
                (* mixed corpus: even = identity (refines), odd = zeroing
                   (counterexample); distinct names spread over the ring *)
                let n = 24 in
                let pairs =
                  Array.init n (fun i ->
                      if i mod 2 = 0 then (src_fn i, src_fn i) else (src_fn i, tgt_zero i))
                in
                let replies =
                  Client.Fleet.check_batch_tagged fl ~mode:"proposed" pairs
                in
                Array.iteri
                  (fun i rt ->
                    expect_verdict
                      (Printf.sprintf "query %d" i)
                      (if i mod 2 = 0 then "refines" else "counterexample")
                      rt)
                  replies;
                (* both shards served work: the tags name >1 shard *)
                let tags =
                  Array.to_list replies |> List.map snd |> List.sort_uniq compare
                in
                Alcotest.(check bool)
                  ("both shards answered: " ^ String.concat "," tags)
                  true
                  (List.length tags >= 2);
                (* routing is stable: the same query re-routes to the
                   same shard *)
                let s1 =
                  Client.Fleet.shard_of fl ~mode:"proposed" ~src:(src_fn 0) ~tgt:(src_fn 0) ()
                in
                let s2 =
                  Client.Fleet.shard_of fl ~mode:"proposed" ~src:(src_fn 0) ~tgt:(src_fn 0) ()
                in
                Alcotest.(check int) "stable routing" s1 s2)));
    Alcotest.test_case "SIGKILL of a shard mid-burst: failover answers everything" `Quick
      (fun () ->
        with_fleet (fun h ->
            let sockets = Fleet.handle_sockets h in
            let fl = Client.Fleet.make sockets in
            Fun.protect
              ~finally:(fun () -> Client.Fleet.close fl)
              (fun () ->
                let n = 40 in
                let pairs = Array.init n (fun i -> (src_fn (100 + i), src_fn (100 + i))) in
                (* killer child: murder shard 0 shortly after the burst
                   starts, while its window is full of in-flight work *)
                flush stdout;
                flush stderr;
                let killer =
                  match Unix.fork () with
                  | 0 ->
                    (* raw SIGKILL only: the shard is the *parent's*
                       child, so reaping (Fleet.kill_shard) is the
                       parent's job; any exception here must not leak
                       the test framework out of the fork *)
                    (try
                       Unix.sleepf 0.15;
                       Unix.kill h.Fleet.h_pids.(0) Sys.sigkill
                     with _ -> ());
                    Unix._exit 0
                  | pid -> pid
                in
                let replies =
                  Client.Fleet.check_batch_tagged fl ~deadline_s:30.0 ~mode:"proposed" pairs
                in
                (let rec reap () =
                   try ignore (Unix.waitpid [] killer)
                   with Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
                 in
                 reap ());
                (* completed-or-accounted: every slot holds a reply, and
                   any verdict that did arrive is the right one -- a
                   failover must never flip a verdict *)
                Alcotest.(check int) "every query has a reply" n (Array.length replies);
                let answered = ref 0 and errored = ref 0 in
                Array.iteri
                  (fun i rt ->
                    match rt with
                    | Wire.Verdict v, _ ->
                      incr answered;
                      Alcotest.(check string)
                        (Printf.sprintf "query %d verdict" i)
                        "refines" v.Wire.verdict
                    | Wire.Error_r _, tag ->
                      (* accounted, with the failing side named *)
                      incr errored;
                      Alcotest.(check bool) "error carries a tag" true (String.length tag > 0)
                    | _ -> Alcotest.fail (Printf.sprintf "query %d: unexpected reply" i))
                  replies;
                Alcotest.(check int) "answered + accounted = all" n (!answered + !errored);
                (* the surviving shard must have absorbed the reroutes:
                   a kill mid-burst may strand at most the queries that
                   exhausted their attempts during the window, never the
                   majority *)
                Alcotest.(check bool)
                  (Printf.sprintf "most queries answered (%d/%d)" !answered n)
                  true
                  (!answered >= n / 2))));
    Alcotest.test_case "journals replicate: any shard answers every key" `Quick (fun () ->
        with_fleet (fun h ->
            let sockets = Fleet.handle_sockets h in
            (* seed distinct work through the router so each shard
               journals its own slice *)
            let fl = Client.Fleet.make sockets in
            let n = 12 in
            let pairs = Array.init n (fun i -> (src_fn (200 + i), src_fn (200 + i))) in
            let replies = Client.Fleet.check_batch_tagged fl ~mode:"proposed" pairs in
            Array.iteri
              (fun i rt -> expect_verdict (Printf.sprintf "seed %d" i) "refines" rt)
              replies;
            Client.Fleet.close fl;
            (* one manual replication round (the front runs this on a
               timer; spawn_local leaves it to the caller) *)
            let copied = Fleet.replicate h.Fleet.h_cfg in
            Alcotest.(check bool) (Printf.sprintf "replication copied %d" copied) true
              (copied > 0);
            (* now every key must be answerable by EVERY shard straight
               from its journal: ask each shard directly, bypassing the
               ring *)
            List.iter
              (fun socket_path ->
                let cl = Client.connect ~socket_path () in
                Fun.protect
                  ~finally:(fun () -> Client.close cl)
                  (fun () ->
                    for i = 0 to n - 1 do
                      let src, tgt = pairs.(i) in
                      match Client.check cl ~mode:"proposed" ~src ~tgt () with
                      | Wire.Verdict v ->
                        Alcotest.(check string)
                          (Printf.sprintf "%s answers key %d" socket_path i)
                          "refines" v.Wire.verdict;
                        Alcotest.(check bool)
                          (Printf.sprintf "%s served key %d from the journal" socket_path i)
                          true v.Wire.cached
                      | _ -> Alcotest.fail "unexpected reply"
                    done))
              sockets));
  ]

let () =
  Alcotest.run "fleet"
    [ ("ring", ring_tests); ("spec", spec_tests); ("stats", stats_tests);
      ("fleet", fleet_tests);
    ]
