(* The memory model: the three memory.ml bugfix regressions (overflow in
   valid_range, freed bytes in the fingerprint, invalid free crashing
   instead of UB), the integer/pointer casts, the two-phase
   infinite/finite semantics, and a byte-level edge-case suite — each
   edge case checked differentially (the SAT path must never contradict
   the enumeration path on memory programs; it answers Unknown and the
   enumeration checker is authoritative). *)

open Ub_support
open Ub_ir
open Ub_sem
module Checker = Ub_refine.Checker
module Enum_check = Ub_refine.Enum_check

let parse = Parser.parse_func_string

let run ?(mode = Mode.proposed) ?phase src args =
  let fn = parse src in
  (Interp.run ~mode ?phase fn args).Interp.outcome

let check_ret name expected outcome =
  Alcotest.(check string) name expected (Interp.outcome_to_string outcome)

(* Differential harness for a (src, tgt) pair: the enumeration verdict
   must be [expected], and the SAT path must not contradict it (on
   memory programs it answers Unknown). *)
let differential name expected ~src ~tgt =
  let src = parse src and tgt = parse tgt in
  let enum =
    match Enum_check.check ~src ~tgt () with
    | Enum_check.Refines -> "refines"
    | Enum_check.Counterexample _ -> "counterexample"
    | Enum_check.Unknown r -> "unknown: " ^ r
  in
  Alcotest.(check string) (name ^ ": enumeration verdict") expected enum;
  match Checker.check_sat Mode.proposed ~src ~tgt with
  | Checker.Unknown _ -> ()
  | Checker.Refines ->
    if expected <> "refines" then
      Alcotest.failf "%s: SAT says refines, enumeration says %s" name enum
  | Checker.Counterexample _ ->
    if expected <> "counterexample" then
      Alcotest.failf "%s: SAT says counterexample, enumeration says %s" name enum

(* ------------------------------------------------------------------ *)
(* Bugfix regressions                                                  *)
(* ------------------------------------------------------------------ *)

(* Bugfix 1: valid_range used a wrapping Int64.add, so an address near
   2^64 wrapped past zero and the unsigned bounds check passed
   spuriously.  (Pre-fix this test fails: the range was "valid".) *)
let valid_range_no_wrap () =
  let mem = Memory.create () in
  let _p = Option.get (Memory.alloc mem ~size:4) in
  let near_top = Bitvec.of_int64 ~width:64 0xFFFF_FFFF_FFFF_FFFFL in
  Alcotest.(check bool) "range wrapping past zero is out of bounds" false
    (Memory.valid_range mem near_top 2);
  Alcotest.(check bool) "negative length is out of bounds" false
    (Memory.valid_range mem (Bitvec.of_int64 ~width:64 0x1000L) (-1))

(* Bugfix 2: the fingerprint folded over every byte in the table,
   including freed allocations, so two executions that diverge only in
   dead bytes compared unequal.  (Pre-fix: the fingerprints differ.) *)
let fingerprint_ignores_freed () =
  let with_byte v =
    let mem = Memory.create () in
    let p = Option.get (Memory.alloc mem ~size:1) in
    assert (Memory.store_bits mem p (Value.ty_down (Types.Int 8) (Value.of_int ~width:8 v)));
    ignore (Memory.free mem p);
    Memory.fingerprint mem
  in
  Alcotest.(check string) "freed bytes do not show" (with_byte 1) (with_byte 2);
  (* the same divergence through the interpreter: free, then nothing
     live differs, so the pair refines in both directions *)
  let prog v =
    Printf.sprintf
      {|define i8 @f() {
e:
  %%p = call i8* @malloc(i32 1)
  store i8 %d, i8* %%p
  call void @free(i8* %%p)
  ret i8 0
}|}
      v
  in
  differential "free-then-diverge-in-dead-bytes" "refines" ~src:(prog 1) ~tgt:(prog 2);
  differential "free-then-diverge (other direction)" "refines" ~src:(prog 2) ~tgt:(prog 1)

(* Bugfix 3: Memory.free raised [failwith] on a non-base or freed
   address; the interpreter crashed, and the pool recorded the program
   as a crash instead of a UB verdict.  (Pre-fix these tests fail with
   an escaping Failure exception.) *)
let invalid_free_is_ub () =
  check_ret "double free" "UB: double free"
    (run {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 4)
  call void @free(i8* %p)
  call void @free(i8* %p)
  ret i8 0
}|} []);
  check_ret "free of an interior pointer" "UB: free of non-allocation address"
    (run {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 4)
  %q = getelementptr i8, i8* %p, i32 1
  call void @free(i8* %q)
  ret i8 0
}|} []);
  check_ret "free of a never-allocated address" "UB: free of non-allocation address"
    (run {|define i8 @f() {
e:
  %p = inttoptr i32 64 to i8*
  call void @free(i8* %p)
  ret i8 0
}|} []);
  check_ret "free(null) is a no-op" "ret 0"
    (run {|define i8 @f() {
e:
  %p = inttoptr i32 0 to i8*
  call void @free(i8* %p)
  ret i8 0
}|} []);
  check_ret "free of poison pointer" "UB: free of poison pointer"
    (run {|define i8 @f() {
e:
  call void @free(i8* poison)
  ret i8 0
}|} []);
  check_ret "use after free" "UB: load from invalid address"
    (run {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  call void @free(i8* %p)
  %x = load i8, i8* %p
  ret i8 %x
}|} [])

(* ------------------------------------------------------------------ *)
(* Integer/pointer casts                                               *)
(* ------------------------------------------------------------------ *)

let cast_roundtrip_parses () =
  let src = {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  %i = ptrtoint i8* %p to i32
  %q = inttoptr i32 %i to i8*
  store i8 7, i8* %q
  %x = load i8, i8* %p
  ret i8 %x
}|} in
  let fn = parse src in
  Alcotest.(check (list string)) "validates" [] (Validate.check_func fn);
  let fn2 = parse (Printer.func_to_string fn) in
  Alcotest.(check bool) "print/parse roundtrip" true (Func.equal fn fn2);
  check_ret "store through the round-tripped alias is visible" "ret 7" (run src [])

let cast_validation () =
  let bad = parse {|define i32 @f(i32 %x) {
e:
  %p = ptrtoint i32 %x to i32
  ret i32 %p
}|} in
  Alcotest.(check bool) "ptrtoint from integer is rejected" true
    (Validate.check_func bad <> []);
  let bad2 = parse {|define i8* @f(i8* %x) {
e:
  %p = inttoptr i8* %x to i8*
  ret i8* %p
}|} in
  Alcotest.(check bool) "inttoptr from pointer is rejected" true
    (Validate.check_func bad2 <> [])

let cast_widths () =
  (* ptrtoint truncates to narrower, zero-extends to wider; the first
     allocation sits at 0x1000, so i8 sees 0 and i64 sees 0x1000 *)
  check_ret "ptrtoint to i8 truncates" "ret 0"
    (run {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  %i = ptrtoint i8* %p to i8
  ret i8 %i
}|} []);
  check_ret "ptrtoint to i64 zero-extends" "ret 4096"
    (run {|define i64 @f() {
e:
  %p = call i8* @malloc(i32 1)
  %i = ptrtoint i8* %p to i64
  ret i64 %i
}|} [])

(* ------------------------------------------------------------------ *)
(* Two-phase memory                                                    *)
(* ------------------------------------------------------------------ *)

let finite_phase_alloc () =
  let mem = Memory.create ~phase:(Memory.Finite 0) () in
  Alcotest.(check bool) "finite(0): allocation fails" true (Memory.alloc mem ~size:1 = None);
  let mem4 = Memory.create ~phase:(Memory.Finite 4) () in
  Alcotest.(check bool) "finite(4): first 4 bytes fit" true
    (Memory.alloc mem4 ~size:4 <> None);
  Alcotest.(check bool) "finite(4): the fifth byte does not" true
    (Memory.alloc mem4 ~size:1 = None)

let finite_phase_interp () =
  let exhausted_malloc = {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  store i8 1, i8* %p
  ret i8 0
}|} in
  check_ret "exhausted malloc returns null (store traps)" "UB: store to invalid address"
    (run ~phase:(Memory.Finite 0) exhausted_malloc []);
  check_ret "infinite phase is unaffected" "ret 0" (run exhausted_malloc []);
  check_ret "exhausted alloca is UB" "UB: alloca: out of memory"
    (run ~phase:(Memory.Finite 0) {|define i8 @f() {
e:
  %p = call i8* @alloca(i32 1)
  ret i8 0
}|} [])

let malloc_to_alloca_refuted () =
  (* heap-to-stack promotion: indistinguishable in the infinite phase,
     refuted by the finite phase where malloc yields null but alloca is
     UB — the enumeration checker runs both sides under each phase *)
  let src = {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  ret i8 0
}|} in
  let tgt = {|define i8 @f() {
e:
  %p = call i8* @alloca(i32 1)
  ret i8 0
}|} in
  differential "malloc => alloca" "counterexample" ~src ~tgt;
  differential "malloc refines itself" "refines" ~src ~tgt:src

(* ------------------------------------------------------------------ *)
(* Provenance                                                          *)
(* ------------------------------------------------------------------ *)

let provenance_in_fingerprint () =
  (* storing a pointer as a ptrtoint'd integer leaves identical bits
     but erases the bytes' provenance: observable in the final memory *)
  let src = {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  %pp = call i8** @malloc(i32 4)
  store i8* %p, i8** %pp
  ret i8 0
}|} in
  let tgt = {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  %pp = call i8** @malloc(i32 4)
  %i = ptrtoint i8* %p to i32
  %c = bitcast i8** %pp to i32*
  store i32 %i, i32* %c
  ret i8 0
}|} in
  differential "pointer store demoted to integer store" "counterexample" ~src ~tgt;
  differential "pointer store refines itself" "refines" ~src ~tgt:src;
  (* a wildcard pointer (inttoptr with no live target) covers any
     provenance, so re-deriving a pointer from a forged integer on both
     sides still refines *)
  let wild = {|define i8 @f() {
e:
  %pp = call i8** @malloc(i32 4)
  %q = inttoptr i32 64 to i8*
  store i8* %q, i8** %pp
  ret i8 0
}|} in
  differential "wild pointer store refines itself" "refines" ~src:wild ~tgt:wild

(* ------------------------------------------------------------------ *)
(* Edge cases                                                          *)
(* ------------------------------------------------------------------ *)

let zero_size_alloc () =
  check_ret "malloc(0) is UB" "UB: malloc of zero bytes"
    (run {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 0)
  ret i8 0
}|} []);
  let mem = Memory.create () in
  Alcotest.check_raises "Memory.alloc rejects size 0"
    (Invalid_argument "Memory.alloc: non-positive size") (fun () ->
      ignore (Memory.alloc mem ~size:0));
  Alcotest.check_raises "Memory.alloc rejects negative size"
    (Invalid_argument "Memory.alloc: non-positive size") (fun () ->
      ignore (Memory.alloc mem ~size:(-3)))

let exact_end_access () =
  (* a 2-byte allocation: a full-width i16 access is fine, the same
     access shifted one byte spans the exact end and is UB *)
  let at_base = {|define i16 @f() {
e:
  %p = call i16* @malloc(i32 2)
  store i16 513, i16* %p
  %x = load i16, i16* %p
  ret i16 %x
}|} in
  check_ret "access up to the exact end is valid" "ret 513" (run at_base []);
  let off_end = {|define i16 @f() {
e:
  %p = call i8* @malloc(i32 2)
  %q = getelementptr i8, i8* %p, i32 1
  %c = bitcast i8* %q to i16*
  %x = load i16, i16* %c
  ret i16 %x
}|} in
  check_ret "access spanning the end is UB" "UB: load from invalid address" (run off_end []);
  differential "in-bounds load refines itself" "refines" ~src:at_base ~tgt:at_base;
  differential "oob load refines itself" "refines" ~src:off_end ~tgt:off_end;
  differential "oob is not covered by in-bounds" "counterexample" ~src:at_base ~tgt:off_end

let straddling_store_padding_undef () =
  (* an unaligned i16 store into the middle of a 4-byte buffer: the
     stored bytes read back exactly, the two untouched padding bytes
     stay uninitialized and load as poison (proposed mode) *)
  let src = {|define i16 @f() {
e:
  %p = call i8* @malloc(i32 4)
  %q = getelementptr i8, i8* %p, i32 1
  %c = bitcast i8* %q to i16*
  store i16 258, i16* %c
  %x = load i16, i16* %c
  ret i16 %x
}|} in
  check_ret "unaligned store reads back" "ret 258" (run src []);
  let pad = {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 4)
  %q = getelementptr i8, i8* %p, i32 1
  %c = bitcast i8* %q to i16*
  store i16 258, i16* %c
  %x = load i8, i8* %p
  ret i8 %x
}|} in
  check_ret "the byte below the store stays uninitialized" "ret poison" (run pad []);
  differential "straddling store refines itself" "refines" ~src ~tgt:src

let partial_overlapping_store () =
  (* store i16 0x1234, overwrite its high byte with 0x2B, read i16 back:
     the load combines the two stores byte-wise -> 0x2B34 = 11060 *)
  let src = {|define i16 @f() {
e:
  %p = call i16* @malloc(i32 2)
  store i16 4660, i16* %p
  %b = bitcast i16* %p to i8*
  %q = getelementptr i8, i8* %b, i32 1
  store i8 43, i8* %q
  %x = load i16, i16* %p
  ret i16 %x
}|} in
  check_ret "overlapping store combines byte-wise" "ret 11060" (run src []);
  differential "overlapping store refines itself" "refines" ~src ~tgt:src

(* ------------------------------------------------------------------ *)
(* The new catalog entries fire and are refuted                        *)
(* ------------------------------------------------------------------ *)

let entry_cex name src_text =
  let e = Ub_opt.Inject.find_exn name in
  let src = parse src_text in
  let tgt = e.Ub_opt.Inject.apply src in
  if Func.equal src tgt then Alcotest.failf "%s: entry did not fire" name;
  (match Validate.check_func tgt with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s: rewritten function is invalid: %s" name (String.concat "; " errs));
  match Checker.check Mode.proposed ~src ~tgt with
  | Checker.Counterexample _ -> ()
  | v -> Alcotest.failf "%s: expected counterexample, got %s" name (Checker.verdict_to_string v)

let store_forward_alias_refuted () =
  entry_cex "store-forward-alias"
    {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  store i8 1, i8* %p
  %i = ptrtoint i8* %p to i32
  %q = inttoptr i32 %i to i8*
  store i8 2, i8* %q
  %x = load i8, i8* %p
  ret i8 %x
}|}

let load_widen_oob_refuted () =
  entry_cex "load-widen-oob"
    {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  %x = load i8, i8* %p
  ret i8 %x
}|}

let malloc_to_alloca_entry_refuted () =
  entry_cex "malloc-to-alloca" {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  ret i8 0
}|}

let store_ptr_int_refuted () =
  entry_cex "store-ptr-int"
    {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 1)
  %pp = call i8** @malloc(i32 4)
  store i8* %p, i8** %pp
  ret i8 0
}|}

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mem"
    [ ( "regressions",
        [ Alcotest.test_case "valid_range does not wrap" `Quick valid_range_no_wrap;
          Alcotest.test_case "fingerprint ignores freed allocations" `Quick
            fingerprint_ignores_freed;
          Alcotest.test_case "invalid free is UB, not a crash" `Quick invalid_free_is_ub;
        ] );
      ( "casts",
        [ Alcotest.test_case "ptrtoint/inttoptr roundtrip" `Quick cast_roundtrip_parses;
          Alcotest.test_case "cast type validation" `Quick cast_validation;
          Alcotest.test_case "cast widths" `Quick cast_widths;
        ] );
      ( "two-phase",
        [ Alcotest.test_case "finite-phase allocation" `Quick finite_phase_alloc;
          Alcotest.test_case "finite-phase interpretation" `Quick finite_phase_interp;
          Alcotest.test_case "malloc=>alloca is refuted" `Quick malloc_to_alloca_refuted;
        ] );
      ( "provenance",
        [ Alcotest.test_case "provenance is observable" `Quick provenance_in_fingerprint ]
      );
      ( "edge-cases",
        [ Alcotest.test_case "zero/negative-size alloc" `Quick zero_size_alloc;
          Alcotest.test_case "access at the exact end" `Quick exact_end_access;
          Alcotest.test_case "straddling store, padding undef" `Quick
            straddling_store_padding_undef;
          Alcotest.test_case "partial overlapping store" `Quick partial_overlapping_store;
        ] );
      ( "catalog",
        [ Alcotest.test_case "store-forward-alias refuted" `Quick store_forward_alias_refuted;
          Alcotest.test_case "load-widen-oob refuted" `Quick load_widen_oob_refuted;
          Alcotest.test_case "malloc-to-alloca refuted" `Quick malloc_to_alloca_entry_refuted;
          Alcotest.test_case "store-ptr-int refuted" `Quick store_ptr_int_refuted;
        ] );
    ]
