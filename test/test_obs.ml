(* Tests for the observability layer (lib/obs): span aggregation and
   nesting, counters, histograms, the JSONL trace sink, the fork-safe
   drain/absorb round-trip, and a smoke check that the default Null sink
   stays cheap. *)

module Obs = Ub_obs.Obs

let with_clean_registry f =
  Obs.reset ();
  Obs.set_sink Obs.Null;
  Fun.protect ~finally:(fun () -> Obs.reset (); Obs.set_sink Obs.Null) f

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  with_clean_registry @@ fun () ->
  let buf = ref [] in
  Obs.set_sink (Obs.Memory buf);
  let r =
    Obs.with_span "outer" (fun () ->
        Obs.with_span "inner" (fun () -> Unix.sleepf 0.002);
        Obs.with_span "inner" (fun () -> ());
        42)
  in
  Alcotest.(check int) "with_span returns the body's result" 42 r;
  (* Memory sinks record newest-first; completion order is inner, inner,
     outer. *)
  let events = List.rev !buf in
  let names = List.map (fun e -> e.Obs.name) events in
  Alcotest.(check (list string)) "completion order" [ "inner"; "inner"; "outer" ] names;
  let depth_of n =
    (List.find (fun e -> e.Obs.name = n) events).Obs.depth
  in
  Alcotest.(check int) "outer depth" 0 (depth_of "outer");
  Alcotest.(check int) "inner depth" 1 (depth_of "inner");
  List.iter
    (fun e -> Alcotest.(check bool) ("duration recorded: " ^ e.Obs.name) true (e.Obs.dur_ns >= 0))
    events

let test_span_aggregation () =
  with_clean_registry @@ fun () ->
  for _ = 1 to 5 do
    Obs.with_span "agg" (fun () -> ())
  done;
  let json = Obs.report_json () in
  (* count appears in the aggregated report *)
  let has sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "span in report" true (has "\"agg\":{\"count\":5")

let test_span_survives_raise () =
  with_clean_registry @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "no") with Failure _ -> ());
  Obs.with_span "after" (fun () -> ());
  (* depth must be back to 0: the "after" span records depth 0 events *)
  let buf = ref [] in
  Obs.set_sink (Obs.Memory buf);
  Obs.with_span "probe" (fun () -> ());
  match !buf with
  | [ e ] -> Alcotest.(check int) "depth restored after raise" 0 e.Obs.depth
  | _ -> Alcotest.fail "expected exactly one probe event"

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                             *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  with_clean_registry @@ fun () ->
  Obs.count "c";
  Obs.count ~by:4 "c";
  Obs.count "other";
  Alcotest.(check int) "accumulated" 5 (Obs.counter_value "c");
  Alcotest.(check int) "independent" 1 (Obs.counter_value "other");
  Alcotest.(check int) "absent reads 0" 0 (Obs.counter_value "nope")

let test_histograms () =
  with_clean_registry @@ fun () ->
  List.iter (Obs.observe "h") [ 1.0; 2.0; 4.0; 8.0; 1024.0 ];
  let json = Obs.report_json () in
  let has sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "count=5" true (has "\"count\":5");
  Alcotest.(check bool) "sum" true (has "\"sum\":1039");
  Alcotest.(check bool) "min" true (has "\"min\":1");
  Alcotest.(check bool) "max" true (has "\"max\":1024")

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

(* A tiny structural check that every trace line is an object with the
   required fields — not a full JSON parser, but enough to catch broken
   escaping or truncated lines. *)
let looks_like_json_object line =
  String.length line > 2
  && line.[0] = '{'
  && line.[String.length line - 1] = '}'

let test_jsonl_roundtrip () =
  with_clean_registry @@ fun () ->
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs.set_trace path;
  Obs.with_span "s" ~attrs:[ ("mode", Obs.S "weird \"name\"\n"); ("n", Obs.I 3) ] (fun () -> ());
  Obs.event "e" ~attrs:[ ("ok", Obs.B true); ("x", Obs.F 1.5) ];
  Obs.close ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "two trace lines" 2 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check bool) ("object: " ^ l) true (looks_like_json_object l))
    lines;
  let has sub l =
    let n = String.length sub and m = String.length l in
    let rec go i = i + n <= m && (String.sub l i n = sub || go (i + 1)) in
    go 0
  in
  let span_line = List.nth lines 0 and event_line = List.nth lines 1 in
  Alcotest.(check bool) "span kind" true (has "\"ev\":\"span\"" span_line);
  Alcotest.(check bool) "escaped attr" true (has "weird \\\"name\\\"\\n" span_line);
  Alcotest.(check bool) "int attr" true (has "\"n\":3" span_line);
  Alcotest.(check bool) "event kind" true (has "\"ev\":\"event\"" event_line);
  Alcotest.(check bool) "bool attr" true (has "\"ok\":true" event_line);
  Alcotest.(check bool) "no dur on events" false (has "dur_ns" event_line)

(* ------------------------------------------------------------------ *)
(* drain/absorb (the fork-forwarding path, without the fork)           *)
(* ------------------------------------------------------------------ *)

let test_drain_absorb () =
  with_clean_registry @@ fun () ->
  (* simulate the child *)
  Obs.child_begin ();
  Obs.count ~by:3 "pool.task_done";
  Obs.observe "lat" 2.0;
  Obs.observe "lat" 8.0;
  Obs.with_span "work" (fun () -> ());
  Obs.event "tick";
  let p = Obs.drain () in
  Alcotest.(check int) "drain clears counters" 0 (Obs.counter_value "pool.task_done");
  (* simulate the parent *)
  Obs.reset ();
  Obs.set_sink Obs.Null;
  Obs.count "pool.task_done";
  Obs.absorb p ~attrs:[ ("shard", Obs.I 7) ];
  Alcotest.(check int) "counters folded in" 4 (Obs.counter_value "pool.task_done");
  Alcotest.(check int) "event counts folded in" 1 (Obs.counter_value "tick");
  let json = Obs.report_json () in
  let has sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "hist merged" true (has "\"lat\":{\"count\":2,\"sum\":10");
  Alcotest.(check bool) "span merged" true (has "\"work\":{\"count\":1")

(* ------------------------------------------------------------------ *)
(* Null-sink overhead smoke                                            *)
(* ------------------------------------------------------------------ *)

(* Not a benchmark — just a guard that with_span on the Null sink stays
   in the no-I/O regime (two clock reads + a hashtable bump).  A
   regression to per-span I/O or formatting would blow way past this. *)
let test_noop_overhead () =
  with_clean_registry @@ fun () ->
  let n = 100_000 in
  let t0 = Obs.Clock.now_s () in
  for _ = 1 to n do
    Obs.with_span "hot" (fun () -> ())
  done;
  let dt = Obs.Clock.elapsed_s ~since:t0 in
  Alcotest.(check bool)
    (Printf.sprintf "100k no-op spans under 250ms (took %.1fms)" (dt *. 1e3))
    true (dt < 0.25)

let test_report_parses () =
  with_clean_registry @@ fun () ->
  Obs.count "verdict_cache.hit";
  Obs.count "verdict_cache.miss";
  let json = Obs.report_json () in
  let has sub =
    let n = String.length sub and m = String.length json in
    let rec go i = i + n <= m && (String.sub json i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "schema tag" true (has "\"schema\":\"ubc-obs-report-v1\"");
  Alcotest.(check bool) "derived hit rate" true (has "\"verdict_cache_hit_rate\":0.5")

let () =
  Alcotest.run "obs"
    [ ( "spans",
        [ Alcotest.test_case "nesting depths and completion order" `Quick test_span_nesting;
          Alcotest.test_case "aggregation counts every call" `Quick test_span_aggregation;
          Alcotest.test_case "depth restored when the body raises" `Quick test_span_survives_raise;
        ] );
      ( "metrics",
        [ Alcotest.test_case "counters accumulate" `Quick test_counters;
          Alcotest.test_case "histogram summary stats" `Quick test_histograms;
        ] );
      ( "trace",
        [ Alcotest.test_case "JSONL sink round-trips events" `Quick test_jsonl_roundtrip ] );
      ( "forwarding",
        [ Alcotest.test_case "drain/absorb merges child telemetry" `Quick test_drain_absorb ] );
      ( "overhead",
        [ Alcotest.test_case "null sink stays cheap" `Quick test_noop_overhead;
          Alcotest.test_case "report is well-formed" `Quick test_report_parses;
        ] );
    ]
