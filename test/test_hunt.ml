(* The hunting farm (lib/hunt).

   - Recall gate: every injected-bug catalog entry, enabled in
     isolation, is rediscovered by a seeded mini-campaign, and the
     shrunk witness stays small.  The clean prototype pipeline under
     the proposed semantics finds nothing.
   - Fingerprints: skeletons are deterministic, invariant under
     register renaming, and distinct catalog entries never collide.
   - Accounting: crashed, timed-out and deadline-exceeded work is
     recorded as dropped, never silently lost. *)

open Ub_ir
module Hunt = Ub_hunt.Hunt
module Fingerprint = Ub_hunt.Fingerprint
module Inject = Ub_opt.Inject

let seed = 20170601
let programs = 150

(* ------------------------------------------------------------------ *)
(* Recall gate                                                         *)
(* ------------------------------------------------------------------ *)

let run_entry (e : Inject.entry) : Hunt.report =
  let cfg = Hunt.entry_config ~seed ~programs e in
  Hunt.run { cfg with Hunt.jobs = 2; stop_after = Some 1 }

(* One campaign per entry, memoized: the fingerprint tests reuse the
   recall campaigns' findings. *)
let entry_reports : (string, Hunt.report) Hashtbl.t = Hashtbl.create 16

let report_for (e : Inject.entry) : Hunt.report =
  match Hashtbl.find_opt entry_reports e.Inject.name with
  | Some r -> r
  | None ->
    let r = run_entry e in
    Hashtbl.replace entry_reports e.Inject.name r;
    r

let recall_tests =
  List.map
    (fun (e : Inject.entry) ->
      Alcotest.test_case (e.Inject.name ^ " is rediscovered") `Slow (fun () ->
          let r = report_for e in
          Alcotest.(check bool)
            (e.Inject.name ^ ": at least one unique finding")
            true (r.Hunt.r_unique > 0);
          Alcotest.(check int) (e.Inject.name ^ ": nothing dropped") 0 r.Hunt.r_dropped;
          (* backend witnesses keep their trigger shape (a swap loop, a
             spill-pressure region), so they shrink less far than a
             peephole's two-instruction core *)
          let max_insns = if e.Inject.backend <> None then 40 else 8 in
          List.iter
            (fun (f : Hunt.finding) ->
              if f.Hunt.final_insns > max_insns then
                Alcotest.failf "%s: witness has %d insns (max %d):\n%s" e.Inject.name
                  f.Hunt.final_insns max_insns
                  (Printer.func_to_string f.Hunt.red_src);
              Alcotest.(check string)
                (e.Inject.name ^ ": shrunk witness re-checks as a counterexample")
                "counterexample" f.Hunt.f_verdict)
            r.Hunt.r_uniques))
    Inject.all

let clean_pipeline_is_clean () =
  let cfg = Hunt.clean_config ~seed ~programs in
  let r = Hunt.run { cfg with Hunt.jobs = 2 } in
  Alcotest.(check int) "no findings on the clean pipeline" 0 r.Hunt.r_unique;
  Alcotest.(check int) "nothing dropped" 0 r.Hunt.r_dropped;
  Alcotest.(check int) "every program completed" programs r.Hunt.r_completed;
  Alcotest.(check bool) "the pipeline did change programs" true (r.Hunt.r_changed > 0)

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

let entry_fps (e : Inject.entry) : string list =
  List.map (fun (f : Hunt.finding) -> f.Hunt.fp) (report_for e).Hunt.r_uniques

let entries_never_collide () =
  let tagged =
    List.concat_map
      (fun (e : Inject.entry) -> List.map (fun fp -> (e.Inject.name, fp)) (entry_fps e))
      Inject.all
  in
  List.iter
    (fun (n1, fp1) ->
      List.iter
        (fun (n2, fp2) ->
          if n1 <> n2 && fp1 = fp2 then
            Alcotest.failf "entries %s and %s share fingerprint %s" n1 n2 fp1)
        tagged)
    tagged

(* The same injected bug hunted from different seeds shrinks to the
   same canonical witness: the fingerprint sets must overlap. *)
let seeds_converge () =
  let fps_at seed =
    let cfg = Hunt.entry_config ~seed ~programs (Inject.find_exn "shl-nsw") in
    let r = Hunt.run { cfg with Hunt.jobs = 2; stop_after = Some 8 } in
    List.map (fun (f : Hunt.finding) -> f.Hunt.fp) r.Hunt.r_uniques
  in
  let a = fps_at 20170601 and b = fps_at 7 and c = fps_at 42 in
  let common = List.filter (fun fp -> List.mem fp b && List.mem fp c) a in
  if common = [] then
    Alcotest.failf "no common fingerprint across seeds: {%s} {%s} {%s}"
      (String.concat "," a) (String.concat "," b) (String.concat "," c)

(* Rename every register (args and defs); labels and structure stay. *)
let rename_vars (fn : Func.t) : Func.t =
  let ren v = "zz." ^ v in
  let subst = function Instr.Var x -> Instr.Var (ren x) | op -> op in
  { fn with
    Func.args = List.map (fun (v, ty) -> (ren v, ty)) fn.Func.args;
    blocks =
      List.map
        (fun (b : Func.block) ->
          { b with
            Func.insns =
              List.map
                (fun (n : Instr.named) ->
                  { Instr.def = Option.map ren n.Instr.def;
                    ins = Instr.map_operands subst n.Instr.ins;
                  })
                b.Func.insns;
            term = Instr.map_term_operands subst b.Func.term;
          })
        fn.Func.blocks;
  }

let gen_fn seed =
  let rng = Ub_support.Prng.create ~seed in
  Ub_fuzz.Gen.hunt_func rng ~name:"p"
    { Ub_fuzz.Gen.default_hunt with Ub_fuzz.Gen.h_undef = true; h_cfg = seed mod 2 = 0 }

let skeleton_deterministic =
  QCheck.Test.make ~count:200 ~name:"skeleton is a function of the program"
    QCheck.small_int (fun seed ->
      Fingerprint.skeleton (gen_fn seed) = Fingerprint.skeleton (gen_fn seed))

let skeleton_rename_invariant =
  QCheck.Test.make ~count:200 ~name:"skeleton is invariant under register renaming"
    QCheck.small_int (fun seed ->
      let fn = gen_fn seed in
      Fingerprint.skeleton fn = Fingerprint.skeleton (rename_vars fn))

(* ------------------------------------------------------------------ *)
(* Accounting: nothing is silently lost                                *)
(* ------------------------------------------------------------------ *)

(* A campaign whose pass crashes the worker on every program: every
   unit of work must come back as a pool_crash drop. *)
let crashes_are_dropped () =
  let boom =
    { Ub_opt.Pass.name = "boom"; run = (fun _ _ -> failwith "injected worker crash") }
  in
  let lane =
    { Hunt.lane_name = "boom/proposed";
      lane_cfg = Ub_opt.Pass.prototype;
      lane_passes = [ boom ];
      lane_mode = Ub_sem.Mode.proposed;
      lane_backend = None;
    }
  in
  let cfg = Hunt.default_config ~seed ~programs:5 ~lanes:[ lane ] in
  let r = Hunt.run { cfg with Hunt.jobs = 2 } in
  Alcotest.(check int) "all dropped" 5 r.Hunt.r_dropped;
  Alcotest.(check int) "none completed" 0 r.Hunt.r_completed;
  Alcotest.(check (list (pair string int)))
    "dropped as pool_crash"
    [ ("pool_crash", 5) ]
    r.Hunt.r_dropped_detail

(* A worker killed mid-program by the pool timeout is recorded as a
   pool_timeout drop. *)
let timeouts_are_dropped () =
  let stall =
    { Ub_opt.Pass.name = "stall";
      run =
        (fun _ fn ->
          Unix.sleepf 5.0;
          fn);
    }
  in
  let lane =
    { Hunt.lane_name = "stall/proposed";
      lane_cfg = Ub_opt.Pass.prototype;
      lane_passes = [ stall ];
      lane_mode = Ub_sem.Mode.proposed;
      lane_backend = None;
    }
  in
  let cfg = Hunt.default_config ~seed ~programs:2 ~lanes:[ lane ] in
  let r = Hunt.run { cfg with Hunt.jobs = 2; timeout_s = Some 0.2 } in
  Alcotest.(check int) "all dropped" 2 r.Hunt.r_dropped;
  Alcotest.(check (list (pair string int)))
    "dropped as pool_timeout"
    [ ("pool_timeout", 2) ]
    r.Hunt.r_dropped_detail;
  Alcotest.(check int) "completed + dropped covers the budget" 2
    (r.Hunt.r_completed + r.Hunt.r_dropped)

(* Daemon path: submits that exceed the request deadline come back as
   timeout verdicts and are recorded as daemon_deadline drops. *)

let rec waitpid_retry pid =
  try ignore (Unix.waitpid [] pid) with
  | Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  | Unix.Unix_error (Unix.ECHILD, _, _) -> ()

let with_server k =
  let dir = Filename.temp_file "ub_hunt_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let socket_path = Filename.concat dir "s.sock" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Ub_obs.Obs.child_begin ();
    (try Ub_serve.Server.run (Ub_serve.Server.default_config ~socket_path) with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        waitpid_retry pid;
        (try Sys.remove socket_path with Sys_error _ -> ());
        try Unix.rmdir dir with Unix.Unix_error _ | Sys_error _ -> ())
      (fun () ->
        let rec wait n =
          if Sys.file_exists socket_path then ()
          else if n > 200 then Alcotest.fail "daemon did not come up"
          else begin
            Unix.sleepf 0.05;
            wait (n + 1)
          end
        in
        wait 0;
        k socket_path)

let daemon_deadline_is_dropped () =
  with_server (fun socket ->
      let cfg = Hunt.entry_config ~seed ~programs:32 (Inject.find_exn "shl-nsw") in
      let remote =
        { (Hunt.default_remote ~socket) with Hunt.deadline_s = Some 1e-6; batch = 8 }
      in
      let r = Hunt.run ~remote cfg in
      Alcotest.(check bool) "work was submitted" true (r.Hunt.r_changed > 0);
      Alcotest.(check bool) "deadline drops recorded" true (r.Hunt.r_dropped > 0);
      Alcotest.(check int) "every check is answered or dropped" r.Hunt.r_changed
        (r.Hunt.r_checks + r.Hunt.r_dropped);
      Alcotest.(check bool) "drops are attributed to the deadline" true
        (List.mem_assoc "daemon_deadline" r.Hunt.r_dropped_detail))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "hunt"
    [ ("recall", recall_tests);
      ( "clean",
        [ Alcotest.test_case "clean pipeline finds nothing" `Slow clean_pipeline_is_clean ]
      );
      ( "fingerprint",
        [ Alcotest.test_case "distinct entries never collide" `Slow entries_never_collide;
          Alcotest.test_case "seeds converge on a common witness" `Slow seeds_converge;
          QCheck_alcotest.to_alcotest skeleton_deterministic;
          QCheck_alcotest.to_alcotest skeleton_rename_invariant;
        ] );
      ( "accounting",
        [ Alcotest.test_case "worker crashes are dropped" `Quick crashes_are_dropped;
          Alcotest.test_case "pool timeouts are dropped" `Quick timeouts_are_dropped;
          Alcotest.test_case "daemon deadline misses are dropped" `Quick
            daemon_deadline_is_dropped;
        ] );
    ]
