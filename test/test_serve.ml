(* The serve subsystem: the JSON codec, wire-protocol round-trips for
   every request/reply variant, the framing layer, and a live daemon
   driven over a Unix socket -- including the malformed-frame fuzz the
   protocol demands (truncated length prefix, oversized frame, invalid
   JSON payload), where the server must answer [error] and stay up. *)

module Json = Ub_serve.Json
module Wire = Ub_serve.Wire
module Server = Ub_serve.Server
module Client = Ub_serve.Client

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let roundtrip (v : Json.t) : Json.t =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "reparse failed: %s" e

let json_tests =
  [ Alcotest.test_case "values survive print/parse" `Quick (fun () ->
        let v =
          Json.Obj
            [ ("s", Json.Str "a\"b\\c\n\t");
              ("n", Json.Num 1.5);
              ("i", Json.Num (-3.0));
              ("b", Json.Bool true);
              ("z", Json.Null);
              ("l", Json.List [ Json.Num 0.0; Json.Str ""; Json.Obj [] ]);
            ]
        in
        Alcotest.(check bool) "equal after roundtrip" true (roundtrip v = v));
    Alcotest.test_case "unicode escapes decode to UTF-8" `Quick (fun () ->
        (match Json.of_string {|"Aé"|} with
        | Ok (Json.Str s) -> Alcotest.(check string) "A + e-acute" "A\xc3\xa9" s
        | _ -> Alcotest.fail "parse failed");
        match Json.of_string {|"😀"|} with
        | Ok (Json.Str s) ->
          Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
        | _ -> Alcotest.fail "surrogate parse failed");
    Alcotest.test_case "garbage is rejected" `Quick (fun () ->
        let bad = [ "{"; "[1,"; "\"unterminated"; "{} trailing"; "nul"; "+1"; "" ] in
        List.iter
          (fun s ->
            match Json.of_string s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error _ -> ())
          bad);
  ]

(* ------------------------------------------------------------------ *)
(* Wire protocol round-trips                                           *)
(* ------------------------------------------------------------------ *)

let req_roundtrip (r : Wire.request) =
  match Json.of_string (Json.to_string (Wire.request_to_json r)) with
  | Error e -> Alcotest.failf "request reparse: %s" e
  | Ok j -> (
    match Wire.request_of_json j with
    | Ok r' -> Alcotest.(check bool) "request equal" true (r = r')
    | Error e -> Alcotest.failf "request decode: %s" e)

let reply_roundtrip (r : Wire.reply) =
  match Json.of_string (Json.to_string (Wire.reply_to_json r)) with
  | Error e -> Alcotest.failf "reply reparse: %s" e
  | Ok j -> (
    match Wire.reply_of_json j with
    | Ok r' -> Alcotest.(check bool) "reply equal" true (r = r')
    | Error e -> Alcotest.failf "reply decode: %s" e)

let a_check : Wire.check_req =
  { Wire.id = Some 7;
    mode = "proposed";
    src = "define i8 @f(i8 %x) {\ne:\n  ret i8 %x\n}";
    tgt = "define i8 @f(i8 %x) {\ne:\n  ret i8 %x\n}";
    deadline_s = Some 1.5;
    enum_only = false;
  }

let wire_tests =
  [ Alcotest.test_case "every request variant roundtrips" `Quick (fun () ->
        req_roundtrip (Wire.Hello { v = Wire.version; client = "test" });
        req_roundtrip (Wire.Check a_check);
        req_roundtrip (Wire.Check { a_check with Wire.id = None; deadline_s = None });
        req_roundtrip (Wire.Enum_check { a_check with Wire.enum_only = true });
        req_roundtrip
          (Wire.Check_pair
             { id = Some 1; mode = "strict"; module_text = "m"; deadline_s = None });
        req_roundtrip Wire.Stats;
        req_roundtrip Wire.Shutdown);
    Alcotest.test_case "every reply variant roundtrips" `Quick (fun () ->
        reply_roundtrip (Wire.Hello_ok { v = 1; server = "s/1"; jobs = 2; queue_limit = 64 });
        reply_roundtrip
          (Wire.Verdict
             { r_id = Some 3;
               verdict = "counterexample";
               detail = "src=1 tgt=0";
               args = [ "0x7f"; "0x01" ];
               cached = true;
               coalesced = true;
               wall_s = 0.25;
             });
        reply_roundtrip
          (Wire.Verdict
             { r_id = None; verdict = "refines"; detail = ""; args = []; cached = false;
               coalesced = false; wall_s = 0.0 });
        reply_roundtrip (Wire.Overloaded { r_id = Some 9; queue_depth = 64; queue_limit = 64 });
        reply_roundtrip
          (Wire.Stats_r
             { queue_depth = 2;
               queue_limit = 64;
               uptime_s = 3.5;
               served = 10;
               coalesced_total = 4;
               rejected = 1;
               timeouts = 2;
               cache_hit_rate = 0.5;
               cache_hits = 5;
               cache_misses = 5;
               server = "s/1";
               verdicts = [ ("refines", 8); ("timeout", 2) ];
               report = Json.Obj [ ("schema", Json.Str "x") ];
             });
        reply_roundtrip (Wire.Error_r { r_id = None; message = "boom" });
        reply_roundtrip Wire.Bye);
    Alcotest.test_case "unknown op decodes to an error" `Quick (fun () ->
        (match Wire.request_of_json (Json.Obj [ ("op", Json.Str "frobnicate") ]) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown request op accepted");
        match Wire.reply_of_json (Json.Obj [ ("op", Json.Str "nonsense") ]) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "unknown reply op accepted");
  ]

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let with_socketpair k =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> k a b)

let frame_tests =
  [ Alcotest.test_case "frames carry their payload" `Quick (fun () ->
        with_socketpair (fun a b ->
            Wire.send_frame a "hello frame";
            Wire.send_frame a "";
            Alcotest.(check (option string)) "first" (Some "hello frame") (Wire.recv_frame b);
            Alcotest.(check (option string)) "empty payload" (Some "") (Wire.recv_frame b);
            Unix.close a;
            Alcotest.(check (option string)) "clean EOF" None (Wire.recv_frame b)));
    Alcotest.test_case "oversized length prefix raises" `Quick (fun () ->
        with_socketpair (fun a b ->
            let n = Wire.max_frame_bytes + 1 in
            let hdr =
              Bytes.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xFF))
            in
            ignore (Unix.write a hdr 0 4);
            match Wire.recv_frame b with
            | exception Wire.Protocol_error _ -> ()
            | _ -> Alcotest.fail "oversized frame accepted"));
    Alcotest.test_case "EOF inside a frame raises" `Quick (fun () ->
        with_socketpair (fun a b ->
            (* header claims 10 bytes, only 3 arrive *)
            ignore (Unix.write a (Bytes.of_string "\x00\x00\x00\x0aabc") 0 7);
            Unix.close a;
            match Wire.recv_frame b with
            | exception Wire.Protocol_error _ -> ()
            | _ -> Alcotest.fail "truncated frame accepted"));
  ]

(* ------------------------------------------------------------------ *)
(* A live daemon                                                       *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let rec waitpid_retry pid =
  try ignore (Unix.waitpid [] pid) with
  | Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid
  | Unix.Unix_error (Unix.ECHILD, _, _) -> ()

(* Fork a daemon on a fresh socket, run [k socket_path pid], always
   SIGTERM + reap + clean up. *)
let with_server ?(tune = fun (c : Server.config) -> c) k =
  let dir = Filename.temp_file "ub_serve_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let socket_path = Filename.concat dir "s.sock" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    Ub_obs.Obs.child_begin ();
    (try Server.run (tune (Server.default_config ~socket_path)) with _ -> ());
    Unix._exit 0
  | pid ->
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        waitpid_retry pid;
        try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ())
      (fun () ->
        let rec wait n =
          if Sys.file_exists socket_path then ()
          else if n > 200 then Alcotest.fail "daemon did not come up"
          else begin
            Unix.sleepf 0.05;
            wait (n + 1)
          end
        in
        wait 0;
        k socket_path pid)

let src_id = "define i8 @f(i8 %x) {\ne:\n  ret i8 %x\n}"
let tgt_zero = "define i8 @f(i8 %x) {\ne:\n  ret i8 0\n}"

let expect_verdict name expected = function
  | Wire.Verdict v -> Alcotest.(check string) name expected v.Wire.verdict
  | Wire.Error_r { message; _ } -> Alcotest.failf "%s: server error: %s" name message
  | _ -> Alcotest.failf "%s: unexpected reply" name

(* a raw connection that has completed the handshake, for speaking
   deliberately broken bytes at the server *)
let raw_connect socket_path : Unix.file_descr =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  Wire.send_request fd (Wire.Hello { v = Wire.version; client = "raw" });
  (match Wire.recv_reply fd with
  | Some (Wire.Hello_ok _) -> ()
  | _ -> Alcotest.fail "handshake failed");
  fd

let server_tests =
  [ Alcotest.test_case "verdicts round-trip through the daemon" `Quick (fun () ->
        with_server (fun socket_path _ ->
            Client.with_conn ~socket_path (fun cl ->
                expect_verdict "identity refines" "refines"
                  (Client.check cl ~mode:"proposed" ~src:src_id ~tgt:src_id ());
                (match Client.check cl ~mode:"proposed" ~src:src_id ~tgt:tgt_zero () with
                | Wire.Verdict v ->
                  Alcotest.(check string) "broken pair" "counterexample" v.Wire.verdict;
                  Alcotest.(check bool) "witness args present" true (v.Wire.args <> [])
                | _ -> Alcotest.fail "expected a verdict");
                expect_verdict "enum agrees" "refines"
                  (Client.check cl ~enum_only:true ~mode:"proposed" ~src:src_id ~tgt:src_id ()))));
    Alcotest.test_case "invalid JSON answers error and the connection lives" `Quick
      (fun () ->
        with_server (fun socket_path _ ->
            let fd = raw_connect socket_path in
            Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
            Wire.send_frame fd "{this is not json";
            (match Wire.recv_reply fd with
            | Some (Wire.Error_r _) -> ()
            | _ -> Alcotest.fail "malformed payload must answer error");
            (* same connection still works *)
            Wire.send_request fd
              (Wire.Check
                 { Wire.id = Some 1; mode = "proposed"; src = src_id; tgt = src_id;
                   deadline_s = None; enum_only = false });
            match Wire.recv_reply fd with
            | Some (Wire.Verdict v) ->
              Alcotest.(check string) "still serving" "refines" v.Wire.verdict
            | _ -> Alcotest.fail "connection died after a malformed payload"));
    Alcotest.test_case "unknown op / bad mode / bad IR answer error" `Quick (fun () ->
        with_server (fun socket_path _ ->
            let fd = raw_connect socket_path in
            Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
            let expect_error what =
              match Wire.recv_reply fd with
              | Some (Wire.Error_r _) -> ()
              | _ -> Alcotest.failf "%s must answer error" what
            in
            Wire.send_frame fd {|{"op":"frobnicate"}|};
            expect_error "unknown op";
            Wire.send_frame fd
              (Json.to_string
                 (Wire.request_to_json
                    (Wire.Check { a_check with Wire.mode = "no-such-mode" })));
            expect_error "unknown mode";
            Wire.send_frame fd
              (Json.to_string
                 (Wire.request_to_json (Wire.Check { a_check with Wire.src = "not ir" })));
            expect_error "unparsable src"));
    Alcotest.test_case "oversized frame gets an error, then close; server survives" `Quick
      (fun () ->
        with_server (fun socket_path _ ->
            let fd = raw_connect socket_path in
            (let n = Wire.max_frame_bytes + 1 in
             let hdr = Bytes.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xFF)) in
             ignore (Unix.write fd hdr 0 4);
             (match Wire.recv_reply fd with
             | Some (Wire.Error_r _) -> ()
             | _ -> Alcotest.fail "oversized frame must answer error");
             (* no resync is possible: the server must close *)
             (match Wire.recv_reply fd with
             | None -> ()
             | _ -> Alcotest.fail "server must close after a bad prefix"));
            Unix.close fd;
            (* the daemon itself must still be fine *)
            Client.with_conn ~socket_path (fun cl ->
                expect_verdict "fresh connection works" "refines"
                  (Client.check cl ~mode:"proposed" ~src:src_id ~tgt:src_id ()))));
    Alcotest.test_case "truncated length prefix at hangup is tolerated" `Quick (fun () ->
        with_server (fun socket_path _ ->
            let fd = raw_connect socket_path in
            ignore (Unix.write fd (Bytes.of_string "\x00\x01") 0 2);
            Unix.close fd;
            Client.with_conn ~socket_path (fun cl ->
                expect_verdict "server unharmed" "refines"
                  (Client.check cl ~mode:"proposed" ~src:src_id ~tgt:src_id ()))));
    Alcotest.test_case "hello is mandatory and versioned" `Quick (fun () ->
        with_server (fun socket_path _ ->
            (* no hello: requests are refused *)
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket_path);
            Wire.send_request fd Wire.Stats;
            (match Wire.recv_reply fd with
            | Some (Wire.Error_r _) -> ()
            | _ -> Alcotest.fail "pre-hello request must answer error");
            Unix.close fd;
            (* wrong version: error, then close *)
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX socket_path);
            Wire.send_request fd (Wire.Hello { v = 999; client = "future" });
            (match Wire.recv_reply fd with
            | Some (Wire.Error_r _) -> ()
            | _ -> Alcotest.fail "version mismatch must answer error");
            (match Wire.recv_reply fd with
            | None -> ()
            | _ -> Alcotest.fail "server must close a version-mismatched connection");
            Unix.close fd));
    Alcotest.test_case "stats reflect traffic; shutdown drains" `Quick (fun () ->
        with_server (fun socket_path pid ->
            Client.with_conn ~socket_path (fun cl ->
                expect_verdict "warmup" "refines"
                  (Client.check cl ~mode:"proposed" ~src:src_id ~tgt:src_id ());
                let s = Client.stats cl in
                Alcotest.(check bool) "served counted" true (s.Wire.served >= 1);
                Alcotest.(check bool) "uptime sane" true (s.Wire.uptime_s >= 0.0);
                Alcotest.(check bool) "report is an object" true
                  (match s.Wire.report with Json.Obj _ -> true | _ -> false));
            let cl = Client.connect ~socket_path () in
            Client.shutdown cl;
            waitpid_retry pid;
            Alcotest.(check bool) "socket removed on drain" false
              (Sys.file_exists socket_path)));
    Alcotest.test_case "coalescing fans one verdict out to every waiter" `Quick (fun () ->
        with_server (fun socket_path _ ->
            let fd = raw_connect socket_path in
            Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
            (* deliver 6 identical queries in ONE write so the server
               reads them in one pass and coalesces them into one task *)
            let frame i =
              Wire.frame_of_payload
                (Json.to_string
                   (Wire.request_to_json
                      (Wire.Check
                         { Wire.id = Some i; mode = "proposed"; src = src_id; tgt = src_id;
                           deadline_s = None; enum_only = false })))
            in
            let burst = String.concat "" (List.init 6 frame) in
            let b = Bytes.of_string burst in
            ignore (Unix.write fd b 0 (Bytes.length b));
            let coalesced = ref 0 in
            for _ = 1 to 6 do
              match Wire.recv_reply fd with
              | Some (Wire.Verdict v) ->
                Alcotest.(check string) "verdict" "refines" v.Wire.verdict;
                if v.Wire.coalesced then incr coalesced
              | _ -> Alcotest.fail "lost a coalesced reply"
            done;
            Alcotest.(check bool) "some replies were coalesced" true (!coalesced > 0)));
  ]

let () =
  Alcotest.run "serve"
    [ ("json", json_tests); ("wire", wire_tests); ("framing", frame_tests);
      ("server", server_tests);
    ]
