(* IR structure: parser/printer round-trips, the validator's acceptance
   of good IR and rejection of each class of bad IR, and Func
   utilities. *)

open Ub_ir

let parse = Parser.parse_func_string

let clean_sample =
  {|define i32 @loop(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i32 %i
}|}

let roundtrip_once src =
  let fn = parse src in
  let printed = Printer.func_to_string fn in
  let fn2 = parse printed in
  Alcotest.(check bool) "roundtrip fixpoint" true (fn = fn2)

let unit_tests =
  [ Alcotest.test_case "parse+print roundtrip (loop)" `Quick (fun () -> roundtrip_once clean_sample);
    Alcotest.test_case "clean sample validates" `Quick (fun () ->
        Alcotest.(check (list string)) "no errors" [] (Validate.check_func (parse clean_sample)));
    Alcotest.test_case "rich instruction mix parses" `Quick (fun () ->
        let fn =
          parse
            {|define i32 @g(i32 %a, i32* %p) {
entry:
  %v = load <2 x i16>, <2 x i16>* null
  %e = extractelement <2 x i16> %v, i32 0
  %z = zext i16 %e to i32
  %fr = freeze <2 x i16> %v
  store <2 x i16> %fr, <2 x i16>* null
  ret i32 %z
}|}
        in
        roundtrip_once (Printer.func_to_string fn));
    Alcotest.test_case "undef and poison constants" `Quick (fun () ->
        let fn =
          parse
            {|define i8 @h() {
e:
  %x = add i8 undef, poison
  ret i8 %x
}|}
        in
        match (List.hd fn.Func.blocks).Func.insns with
        | [ { Instr.ins = Instr.Binop (_, _, _, a, b); _ } ] ->
          Alcotest.(check bool) "undef" true (a = Instr.Const (Constant.Undef (Types.Int 8)));
          Alcotest.(check bool) "poison" true (b = Instr.Const (Constant.Poison (Types.Int 8)))
        | _ -> Alcotest.fail "unexpected shape");
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        let fn = parse "; header\ndefine i8 @c() { ; trailing\ne:\n ret i8 1 ; done\n}" in
        Alcotest.(check string) "name" "c" fn.Func.name);
    Alcotest.test_case "parse error is reported" `Quick (fun () ->
        match parse "define i8 @bad() { e: ret i9000 1 }" with
        | exception Parser.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected a parse error");
    Alcotest.test_case "i64 extreme constants round-trip" `Quick (fun () ->
        (* ISSUE 4: i64 min_int prints as -9223372036854775808, which the
           lexer must read back as a single negative literal (Int64.neg
           of 9223372036854775808 would overflow if parsed unsigned). *)
        let src =
          {|define i64 @extremes(i64 %a) {
e:
  %x = add i64 %a, -9223372036854775808
  %y = add i64 %x, 9223372036854775807
  %z = add i64 %y, -1
  ret i64 %z
}|}
        in
        roundtrip_once src;
        let fn = parse src in
        (match (List.hd fn.Func.blocks).Func.insns with
        | { Instr.ins = Instr.Binop (_, _, _, _, Instr.Const (Constant.Int bv)); _ } :: _ ->
          Alcotest.(check bool) "parses to min_signed 64" true
            (Ub_support.Bitvec.is_min_signed bv)
        | _ -> Alcotest.fail "unexpected shape");
        (* printer emits the signed spelling and parsing it is stable *)
        let printed = Printer.func_to_string fn in
        Alcotest.(check bool) "printed form contains min_int literal" true
          (let re = "-9223372036854775808" in
           let rec find i =
             i + String.length re <= String.length printed
             && (String.sub printed i (String.length re) = re || find (i + 1))
           in
           find 0));
    Alcotest.test_case "types" `Quick (fun () ->
        Alcotest.(check int) "bitwidth vec" 32 (Types.bitwidth (Types.Vec (2, Types.Int 16)));
        Alcotest.(check int) "store size i1" 1 (Types.store_size (Types.Int 1));
        Alcotest.(check int) "store size ptr" 4 (Types.store_size (Types.Ptr (Types.Int 8)));
        Alcotest.(check bool) "bitcast ok" true
          (Types.bitcast_compatible (Types.Int 32) (Types.Vec (2, Types.Int 16)));
        Alcotest.(check string) "pp" "<4 x i8>*" (Types.to_string (Types.Ptr (Types.Vec (4, Types.Int 8)))));
  ]

(* validator rejection tests: each produces at least one error *)
let rejects name src =
  Alcotest.test_case name `Quick (fun () ->
      match parse src with
      | exception Parser.Parse_error _ -> () (* also acceptable *)
      | fn ->
        Alcotest.(check bool)
          (name ^ " rejected")
          true
          (Validate.check_func fn <> []))

let validator_tests =
  [ rejects "use before def"
      {|define i8 @f() {
e:
  %x = add i8 %y, 1
  %y = add i8 1, 1
  ret i8 %x
}|};
    rejects "unknown register"
      {|define i8 @f() {
e:
  %x = add i8 %nope, 1
  ret i8 %x
}|};
    rejects "double definition"
      {|define i8 @f(i8 %a) {
e:
  %x = add i8 %a, 1
  %x = add i8 %a, 2
  ret i8 %x
}|};
    rejects "type mismatch"
      {|define i8 @f(i16 %a) {
e:
  %x = add i8 %a, 1
  ret i8 %x
}|};
    rejects "branch to unknown block"
      {|define i8 @f(i1 %c) {
e:
  br i1 %c, label %t, label %nowhere
t:
  ret i8 1
}|};
    rejects "phi after non-phi"
      {|define i8 @f(i1 %c) {
e:
  br i1 %c, label %t, label %t
t:
  %x = add i8 1, 1
  %p = phi i8 [ 1, %e ]
  ret i8 %p
}|};
    rejects "phi missing incoming"
      {|define i8 @f(i1 %c) {
e:
  br i1 %c, label %m, label %u
u:
  br label %m
m:
  %p = phi i8 [ 1, %e ]
  ret i8 %p
}|};
    rejects "ret type mismatch"
      {|define i8 @f() {
e:
  ret i16 1
}|};
    rejects "def does not dominate use"
      {|define i8 @f(i1 %c) {
e:
  br i1 %c, label %a, label %b
a:
  %x = add i8 1, 1
  br label %m
b:
  br label %m
m:
  %y = add i8 %x, 1
  ret i8 %y
}|};
    rejects "nsw on udiv"
      {|define i8 @f(i8 %a) {
e:
  %x = udiv nsw i8 %a, 2
  ret i8 %x
}|};
    rejects "zext must widen"
      {|define i8 @f(i16 %a) {
e:
  %x = zext i16 %a to i8
  ret i8 %x
}|};
    rejects "branch into entry"
      {|define i8 @f(i1 %c) {
entry:
  br label %entry
}|};
  ]

(* Func utilities *)
let func_tests =
  [ Alcotest.test_case "predecessors" `Quick (fun () ->
        let fn = parse clean_sample in
        Alcotest.(check (list string)) "head preds" [ "entry"; "body" ] (Func.preds_of fn "head"));
    Alcotest.test_case "use_count / replace_uses" `Quick (fun () ->
        let fn = parse clean_sample in
        Alcotest.(check int) "%i used thrice" 3 (Func.use_count fn "i");
        let fn' = Func.replace_uses fn ~v:"i" ~by:(Instr.Const (Constant.of_int ~width:32 7)) in
        Alcotest.(check int) "%i unused now" 0 (Func.use_count fn' "i"));
    Alcotest.test_case "num_insns and freeze count" `Quick (fun () ->
        let fn =
          parse {|define i8 @f(i8 %x) {
e:
  %a = freeze i8 %x
  %b = add i8 %a, 1
  ret i8 %b
}|}
        in
        Alcotest.(check int) "3 insns (incl. term)" 3 (Func.num_insns fn);
        Alcotest.(check int) "1 freeze" 1 (Func.num_freeze fn));
    Alcotest.test_case "fresh_var avoids collisions" `Quick (fun () ->
        let fn = parse clean_sample in
        let v = Func.fresh_var fn "i" in
        Alcotest.(check bool) "fresh" true (Func.def_ty fn v = None));
  ]

(* property: printer/parser roundtrip over the random corpus *)
let corpus_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random corpus roundtrips and validates" ~count:60
       QCheck2.Gen.(int_range 0 10_000)
       (fun seed ->
         let fns = Ub_fuzz.Gen.random_corpus ~seed ~size:3 in
         List.for_all
           (fun fn ->
             Validate.check_func fn = []
             && Parser.parse_func_string (Printer.func_to_string fn) = fn)
           fns))

(* the same property at scale, deterministic: for ~1000 fuzz-generated
   functions (loopy i32 corpus + exhaustive small i2 space), parsing the
   printed text must succeed, revalidate cleanly, and reprint to the
   exact same string — i.e. print is a fixpoint of parse . print *)
let bulk_roundtrip =
  Alcotest.test_case "1000+ fuzzed functions roundtrip exactly" `Quick (fun () ->
      let corpus = ref (Ub_fuzz.Gen.random_corpus ~seed:424242 ~size:700) in
      let params = { Ub_fuzz.Gen.default_params with Ub_fuzz.Gen.n_insns = 2 } in
      let _ =
        Ub_fuzz.Gen.enumerate ~limit:300 params (fun fn -> corpus := fn :: !corpus)
      in
      let n = ref 0 in
      List.iter
        (fun fn ->
          incr n;
          let printed = Printer.func_to_string fn in
          let reparsed =
            try Parser.parse_func_string printed
            with Parser.Parse_error e ->
              Alcotest.failf "printed IR fails to parse (%s):\n%s" e printed
          in
          (match Validate.check_func reparsed with
          | [] -> ()
          | errs ->
            Alcotest.failf "reparsed IR fails validation (%s):\n%s"
              (String.concat "; " errs) printed);
          let reprinted = Printer.func_to_string reparsed in
          if reprinted <> printed then
            Alcotest.failf "print is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s"
              printed reprinted)
        !corpus;
      Alcotest.(check bool)
        (Printf.sprintf "checked %d functions (>= 1000)" !n)
        true (!n >= 1000))

let () =
  Alcotest.run "ir"
    [ ("unit", unit_tests);
      ("validator-rejects", validator_tests);
      ("func-utils", func_tests);
      ("properties", [ corpus_roundtrip; bulk_roundtrip ]);
    ]
