(* Differential property test: the SAT-based checker must agree with the
   enumeration ground truth ([Enum_check]) on random transform pairs in
   EVERY semantics mode.  This is the repo's standing defense against
   encoder bugs: enumeration computes complete behaviour sets directly
   from the interpreter, so any divergence is a bug in the SAT encoding
   (or a genuine semantics-mode subtlety worth a matrix entry).

   Deterministic: pairs are generated from a fixed seed via the repo
   PRNG, so a failure reproduces byte-for-byte; on disagreement the
   offending IR pair is printed in full. *)

open Ub_support
open Ub_ir
open Ub_sem
open Ub_refine

let n_pairs = 500
let seed = 20170617 (* PLDI 2017, deterministic *)

(* ------------------------------------------------------------------ *)
(* Pair generation: a fuzzed function + a pass-like random mutation    *)
(* ------------------------------------------------------------------ *)

let enumerate_pool params limit =
  let fns = ref [] in
  let _ = Ub_fuzz.Gen.enumerate ~limit params (fun f -> fns := f :: !fns) in
  Array.of_list !fns

let plain_pool =
  lazy
    (enumerate_pool { Ub_fuzz.Gen.default_params with Ub_fuzz.Gen.n_insns = 2 } 2_500)

let undef_pool =
  lazy
    (enumerate_pool
       { Ub_fuzz.Gen.default_params with Ub_fuzz.Gen.n_insns = 2; include_undef = true }
       2_500)

(* Replacement operands for a width-typed slot: arguments, small
   constants, poison.  Mutating towards these is how we manufacture
   both sound rewrites (x -> x) and unsound ones (x -> 1, y -> poison). *)
let replacements (fn : Func.t) : Instr.operand list =
  let ity = Types.Int 2 in
  List.map (fun (a, _) -> Instr.Var a) fn.Func.args
  @ [ Instr.Const (Constant.of_int ~width:2 0);
      Instr.Const (Constant.of_int ~width:2 1);
      Instr.Const (Constant.Poison ity);
    ]

let mutate_insn (rng : Prng.t) (fn : Func.t) (n : Instr.named) : Instr.named =
  match n.Instr.ins with
  | Instr.Binop (op, attrs, ty, a, b) -> (
    match Prng.int rng 4 with
    | 0 -> { n with Instr.ins = Instr.Binop (op, attrs, ty, b, a) }
    | 1 -> { n with Instr.ins = Instr.Binop (op, Instr.no_attrs, ty, a, b) }
    | 2 when op = Instr.Add || op = Instr.Sub || op = Instr.Mul ->
      { n with Instr.ins = Instr.Binop (op, Instr.nsw_only, ty, a, b) }
    | _ ->
      let r = Prng.choose_list rng (replacements fn) in
      if Prng.bool rng then { n with Instr.ins = Instr.Binop (op, attrs, ty, r, b) }
      else { n with Instr.ins = Instr.Binop (op, attrs, ty, a, r) })
  | Instr.Icmp (pred, ty, a, b) ->
    if Prng.bool rng then { n with Instr.ins = Instr.Icmp (pred, ty, b, a) }
    else
      let r = Prng.choose_list rng (replacements fn) in
      { n with Instr.ins = Instr.Icmp (pred, ty, a, r) }
  | Instr.Select (c, ty, a, b) ->
    if Prng.bool rng then { n with Instr.ins = Instr.Select (c, ty, b, a) }
    else
      let r = Prng.choose_list rng (replacements fn) in
      { n with Instr.ins = Instr.Select (c, ty, r, b) }
  | Instr.Freeze (ty, _) when Prng.bool rng ->
    (* drop the freeze: forward its operand (frequently unsound) *)
    let r = Prng.choose_list rng (replacements fn) in
    { n with Instr.ins = Instr.Freeze (ty, r) }
  | _ -> n

let mutate (rng : Prng.t) (fn : Func.t) : Func.t =
  let blocks =
    List.map
      (fun (b : Func.block) ->
        { b with
          Func.insns =
            List.map
              (fun n ->
                if Prng.chance rng ~num:1 ~den:2 then mutate_insn rng fn n else n)
              b.Func.insns;
        })
      fn.Func.blocks
  in
  let fn' = { fn with Func.blocks } in
  (* a mutation that breaks well-formedness is discarded: self-refinement
     of the unmutated function is still a meaningful (sound) pair *)
  if Validate.check_func fn' = [] then fn' else fn

(* ------------------------------------------------------------------ *)
(* The differential property                                           *)
(* ------------------------------------------------------------------ *)

let show_disagreement mode src tgt sat enum =
  Printf.sprintf
    "SAT and enumeration disagree under %s\n--- source ---\n%s\n--- target ---\n%s\nSAT:  %s\nenum: %s"
    mode.Mode.name
    (Printer.func_to_string src)
    (Printer.func_to_string tgt)
    (Checker.verdict_to_string sat)
    (match enum with
    | Enum_check.Refines -> "refines"
    | Enum_check.Counterexample { witness; _ } -> "COUNTEREXAMPLE: " ^ witness
    | Enum_check.Unknown r -> "unknown: " ^ r)

let run_differential () =
  let rng = Prng.create ~seed in
  let checked = ref 0 and decisive = ref 0 in
  for _ = 1 to n_pairs do
    let pool = if Prng.chance rng ~num:1 ~den:3 then undef_pool else plain_pool in
    let src = Prng.choose_array rng (Lazy.force pool) in
    let tgt = mutate rng src in
    incr checked;
    List.iter
      (fun (mode : Mode.t) ->
        let sat = Checker.check_sat mode ~src ~tgt in
        match sat with
        | Checker.Unknown _ -> () (* outside the encodable/budget fragment *)
        | _ -> (
          let enum = Enum_check.check ~mode ~src ~tgt () in
          match (sat, enum) with
          | _, Enum_check.Unknown _ -> ()
          | Checker.Refines, Enum_check.Refines
          | Checker.Counterexample _, Enum_check.Counterexample _ ->
            incr decisive
          | _ -> Alcotest.fail (show_disagreement mode src tgt sat enum)))
      Mode.all
  done;
  Alcotest.(check bool)
    (Printf.sprintf "ran %d pairs (>= %d)" !checked n_pairs)
    true (!checked >= n_pairs);
  (* the property is vacuous if nearly everything lands in Unknown *)
  Alcotest.(check bool)
    (Printf.sprintf "%d decisive agreements out of %d pair-modes" !decisive
       (!checked * List.length Mode.all))
    true
    (!decisive * 2 >= !checked)

let () =
  Alcotest.run "differential"
    [ ( "sat-vs-enumeration",
        [ Alcotest.test_case
            (Printf.sprintf "%d random pairs agree in all %d modes" n_pairs
               (List.length Mode.all))
            `Quick run_differential;
        ] );
    ]
