(* The CDCL solver: unit cases and exhaustive cross-checking against
   brute force on random instances. *)

open Ub_sat

(* A naive DPLL reference solver: unit propagation plus chronological
   splitting, no learning, no heuristics.  Slow but obviously correct;
   the CDCL solver must agree with it on instances too large for the
   2^n brute-force check. *)
let dpll nvars clauses =
  let assign = Array.make (max 1 nvars) 0 in
  let value l =
    match assign.(Solver.var_of l) with
    | 0 -> `Unk
    | 1 -> if Solver.is_neg l then `False else `True
    | _ -> if Solver.is_neg l then `True else `False
  in
  let set l = assign.(Solver.var_of l) <- (if Solver.is_neg l then 2 else 1) in
  let rec go () =
    let trail = ref [] in
    let conflict = ref false in
    let progress = ref true in
    while !progress do
      progress := false;
      List.iter
        (fun c ->
          if not !conflict then begin
            let sat = ref false and unk = ref [] in
            List.iter
              (fun l ->
                match value l with
                | `True -> sat := true
                | `Unk -> unk := l :: !unk
                | `False -> ())
              c;
            if not !sat then
              match !unk with
              | [] -> conflict := true
              | [ l ] ->
                set l;
                trail := Solver.var_of l :: !trail;
                progress := true
              | _ -> ()
          end)
        clauses;
      if !conflict then progress := false
    done;
    let result =
      if !conflict then false
      else begin
        let next = ref (-1) in
        (try
           for v = 0 to nvars - 1 do
             if assign.(v) = 0 then begin
               next := v;
               raise Exit
             end
           done
         with Exit -> ());
        if !next < 0 then true (* total assignment, every clause satisfied *)
        else begin
          let v = !next in
          let branch b =
            assign.(v) <- b;
            let r = go () in
            assign.(v) <- 0;
            r
          in
          branch 1 || branch 2
        end
      end
    in
    List.iter (fun v -> assign.(v) <- 0) !trail;
    result
  in
  go ()

let brute nvars clauses =
  let n = 1 lsl nvars in
  let rec try_ i =
    if i >= n then None
    else begin
      let model = Array.init nvars (fun v -> (i lsr v) land 1 = 1) in
      if Solver.model_satisfies model clauses then Some model else try_ (i + 1)
    end
  in
  try_ 0

let unit_tests =
  [ Alcotest.test_case "trivially sat" `Quick (fun () ->
        match Solver.solve_clauses ~nvars:2 [ [ Solver.pos 0 ]; [ Solver.neg 1 ] ] with
        | Solver.Sat m ->
          Alcotest.(check bool) "v0" true m.(0);
          Alcotest.(check bool) "v1" false m.(1)
        | Solver.Unsat -> Alcotest.fail "should be sat");
    Alcotest.test_case "trivially unsat" `Quick (fun () ->
        match Solver.solve_clauses ~nvars:1 [ [ Solver.pos 0 ]; [ Solver.neg 0 ] ] with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "should be unsat");
    Alcotest.test_case "empty clause unsat" `Quick (fun () ->
        match Solver.solve_clauses ~nvars:1 [ [] ] with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "should be unsat");
    Alcotest.test_case "pigeonhole 3->2 unsat" `Quick (fun () ->
        (* pigeon i in hole j: var 2i+j, i<3, j<2 *)
        let v i j = Solver.pos ((2 * i) + j) in
        let nv i j = Solver.neg ((2 * i) + j) in
        let clauses =
          [ [ v 0 0; v 0 1 ]; [ v 1 0; v 1 1 ]; [ v 2 0; v 2 1 ] ]
          @ List.concat_map
              (fun j ->
                [ [ nv 0 j; nv 1 j ]; [ nv 0 j; nv 2 j ]; [ nv 1 j; nv 2 j ] ])
              [ 0; 1 ]
        in
        match Solver.solve_clauses ~nvars:6 clauses with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "pigeonhole should be unsat");
    Alcotest.test_case "watch lists survive a propagation conflict" `Quick (fun () ->
        (* Four clauses all watch ~x0.  Deciding x0 makes clause 1 unit
           (propagating x1), clause 2 a conflict, and leaves clauses 3-4
           as the unvisited tail of the watch vector — the compaction in
           [propagate] must copy that tail, not drop it. *)
        let s = Solver.create 4 in
        let ok =
          List.for_all
            (fun c -> Solver.add_clause s c)
            [ [ Solver.neg 0; Solver.pos 1 ];
              [ Solver.neg 0; Solver.neg 1 ];
              [ Solver.neg 0; Solver.pos 2 ];
              [ Solver.neg 0; Solver.pos 3 ];
            ]
        in
        Alcotest.(check bool) "clauses accepted" true ok;
        let before = Solver.watchers s (Solver.neg 0) in
        Alcotest.(check int) "four clauses watch ~x0" 4 (List.length before);
        s.Solver.trail_lim.(0) <- s.Solver.trail_len;
        s.Solver.decision_level <- 1;
        Solver.enqueue s (Solver.pos 0) None;
        (match Solver.propagate s with
        | None -> Alcotest.fail "expected a conflict"
        | Some _ -> ());
        let after = Solver.watchers s (Solver.neg 0) in
        Alcotest.(check int) "watch list intact after conflict" 4 (List.length after);
        List.iter2
          (fun a b -> Alcotest.(check bool) "same clause in the same slot" true (a == b))
          before after);
    Alcotest.test_case "phase saving reproduces the model on re-solve" `Quick (fun () ->
        let s = Solver.create 6 in
        let clauses =
          [ [ Solver.pos 0; Solver.pos 1 ];
            [ Solver.neg 0; Solver.pos 2 ];
            [ Solver.neg 2; Solver.pos 3; Solver.neg 4 ];
            [ Solver.pos 4; Solver.pos 5 ];
            [ Solver.neg 1; Solver.neg 5 ];
          ]
        in
        let ok = List.for_all (fun c -> Solver.add_clause s c) clauses in
        Alcotest.(check bool) "clauses accepted" true ok;
        (match (Solver.solve s, Solver.solve s) with
        | Solver.Sat m1, Solver.Sat m2 ->
          Alcotest.(check bool) "first model valid" true (Solver.model_satisfies m1 clauses);
          Alcotest.(check (array bool)) "saved phases reproduce the model" m1 m2
        | _ -> Alcotest.fail "instance is satisfiable"));
    Alcotest.test_case "root_unsat: solve with assumptions leaves the trail alone" `Quick
      (fun () ->
        let s = Solver.create 3 in
        ignore (Solver.add_clause s [ Solver.pos 0 ]);
        ignore (Solver.add_clause s [ Solver.neg 0 ]);
        (if not (Solver.is_root_unsat s) then
           match Solver.solve s with
           | Solver.Unsat -> ()
           | Solver.Sat _ -> Alcotest.fail "x && !x is unsat");
        Alcotest.(check bool) "the refutation latched" true (Solver.is_root_unsat s);
        let tl = Solver.trail_length s in
        (* a refuted database must answer Unsat without re-establishing
           the assumptions: enqueueing onto a poisoned trail corrupted
           sessions that retried after a root refutation *)
        (match Solver.solve ~assumptions:[ Solver.pos 1; Solver.neg 2 ] s with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "refuted database must stay unsat");
        Alcotest.(check int) "trail untouched" tl (Solver.trail_length s));
    Alcotest.test_case "per-call budget raises; the solver survives" `Quick (fun () ->
        (* pigeonhole needs at least one conflict to refute, so a
           zero-conflict budget deterministically trips *)
        let v i j = Solver.pos ((2 * i) + j) in
        let nv i j = Solver.neg ((2 * i) + j) in
        let s = Solver.create 6 in
        List.iter
          (fun c -> ignore (Solver.add_clause s c))
          ([ [ v 0 0; v 0 1 ]; [ v 1 0; v 1 1 ]; [ v 2 0; v 2 1 ] ]
          @ List.concat_map
              (fun j -> [ [ nv 0 j; nv 1 j ]; [ nv 0 j; nv 2 j ]; [ nv 1 j; nv 2 j ] ])
              [ 0; 1 ]);
        (match Solver.solve ~max_conflicts:0 s with
        | exception Solver.Budget_exceeded -> ()
        | Solver.Unsat -> Alcotest.fail "cannot refute pigeonhole with zero conflicts"
        | Solver.Sat _ -> Alcotest.fail "pigeonhole is unsat");
        match Solver.solve s with
        | Solver.Unsat -> ()
        | Solver.Sat _ -> Alcotest.fail "pigeonhole is unsat after recovery");
    Alcotest.test_case "xor chain sat" `Quick (fun () ->
        (* x0 xor x1 = 1, x1 xor x2 = 1, x0 = 1 => x2 = 1 *)
        let xor1 a b =
          [ [ Solver.pos a; Solver.pos b ]; [ Solver.neg a; Solver.neg b ] ]
        in
        match
          Solver.solve_clauses ~nvars:3 ((xor1 0 1 @ xor1 1 2) @ [ [ Solver.pos 0 ] ])
        with
        | Solver.Sat m ->
          Alcotest.(check bool) "x2 follows" true m.(2);
          Alcotest.(check bool) "x1 follows" false m.(1)
        | Solver.Unsat -> Alcotest.fail "should be sat");
  ]

let random_cnf =
  QCheck2.Gen.(
    int_range 1 9 >>= fun nvars ->
    int_range 1 40 >>= fun nclauses ->
    let lit = map2 (fun v s -> if s then Solver.pos v else Solver.neg v) (int_bound (nvars - 1)) bool in
    let clause = list_size (int_range 1 4) lit in
    pair (return nvars) (list_size (return nclauses) clause))

(* Larger instances than [random_cnf]: past brute force's comfort zone
   but fine for the DPLL reference. *)
let random_cnf_large =
  QCheck2.Gen.(
    int_range 1 12 >>= fun nvars ->
    int_range 1 60 >>= fun nclauses ->
    let lit =
      map2 (fun v s -> if s then Solver.pos v else Solver.neg v) (int_bound (nvars - 1)) bool
    in
    let clause = list_size (int_range 1 5) lit in
    pair (return nvars) (list_size (return nclauses) clause))

let random_cnf_with_assumptions =
  QCheck2.Gen.(
    random_cnf_large >>= fun (nvars, clauses) ->
    let lit =
      map2 (fun v s -> if s then Solver.pos v else Solver.neg v) (int_bound (nvars - 1)) bool
    in
    list_size (int_range 0 4) lit >>= fun assumptions ->
    return (nvars, clauses, assumptions))

(* Activation-literal protocol streams, the shape [Ub_smt.Session] plays
   against one persistent solver: each query is a clause set added under
   a fresh guard, solved assuming the guard, then retired with the unit
   [¬guard].  [permanent] clauses go in unguarded and can refute the
   shared database mid-stream; [tight] first runs the query under a
   zero-conflict budget to exercise budget-exhaustion recovery. *)
let random_protocol =
  QCheck2.Gen.(
    int_range 2 8 >>= fun nvars ->
    let lit =
      map2 (fun v s -> if s then Solver.pos v else Solver.neg v) (int_bound (nvars - 1)) bool
    in
    let clause = list_size (int_range 1 4) lit in
    let query =
      quad
        (list_size (int_range 1 8) clause)
        (list_size (int_range 0 2) lit)
        (option clause) bool
    in
    pair (return nvars) (list_size (int_range 1 8) query))

let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"agrees with brute force" ~count:800 random_cnf
         (fun (nvars, clauses) ->
           match (Solver.solve_clauses ~nvars clauses, brute nvars clauses) with
           | Solver.Sat m, Some _ -> Solver.model_satisfies m clauses
           | Solver.Unsat, None -> true
           | Solver.Sat _, None | Solver.Unsat, Some _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"learned clauses don't break repeat solving" ~count:100
         random_cnf
         (fun (nvars, clauses) ->
           let r1 = Solver.solve_clauses ~nvars clauses in
           let r2 = Solver.solve_clauses ~nvars clauses in
           match (r1, r2) with
           | Solver.Sat _, Solver.Sat _ | Solver.Unsat, Solver.Unsat -> true
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"agrees with the DPLL reference" ~count:300 random_cnf_large
         (fun (nvars, clauses) ->
           match Solver.solve_clauses ~nvars clauses with
           | Solver.Sat m -> Solver.model_satisfies m clauses && dpll nvars clauses
           | Solver.Unsat -> not (dpll nvars clauses)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"assumptions behave like unit clauses" ~count:300
         random_cnf_with_assumptions
         (fun (nvars, clauses, assumptions) ->
           let direct = Solver.solve_clauses ~nvars ~assumptions clauses in
           let as_units =
             Solver.solve_clauses ~nvars (clauses @ List.map (fun l -> [ l ]) assumptions)
           in
           match (direct, as_units) with
           | Solver.Sat m, Solver.Sat _ ->
             Solver.model_satisfies m clauses
             && List.for_all
                  (fun l ->
                    let v = Solver.var_of l in
                    if Solver.is_neg l then not m.(v) else m.(v))
                  assumptions
           | Solver.Unsat, Solver.Unsat -> true
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"every live clause is watched exactly twice after solving" ~count:200
         random_cnf_large
         (fun (nvars, clauses) ->
           let s = Solver.create nvars in
           let ok = List.for_all (fun c -> Solver.add_clause s c) clauses in
           if ok then ignore (Solver.solve s);
           let count_watches c =
             let n = ref 0 in
             Array.iter
               (Ub_support.Vec.iter (fun c' -> if c' == c then incr n))
               s.Solver.watches;
             !n
           in
           let check_clause (c : Solver.clause) =
             if c.Solver.deleted then count_watches c = 0
             else Array.length c.Solver.lits < 2 || count_watches c = 2
           in
           List.for_all check_clause s.Solver.clauses
           && List.for_all check_clause (Ub_support.Vec.to_list s.Solver.learnts)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"re-solving the same solver instance is stable" ~count:200
         random_cnf_large
         (fun (nvars, clauses) ->
           let s = Solver.create nvars in
           let ok = List.for_all (fun c -> Solver.add_clause s c) clauses in
           if not ok then Solver.solve s = Solver.Unsat
           else
             match Solver.solve s with
             | Solver.Unsat -> Solver.solve s = Solver.Unsat
             | Solver.Sat m1 -> (
               match Solver.solve s with
               | Solver.Sat m2 -> m1 = m2 (* phase saving replays the model *)
               | Solver.Unsat -> false)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"simplify preserves the verdict" ~count:200 random_cnf_large
         (fun (nvars, clauses) ->
           let sat r = match r with Solver.Sat _ -> true | Solver.Unsat -> false in
           let reference = sat (Solver.solve_clauses ~nvars clauses) in
           let s = Solver.create nvars in
           let ok = List.for_all (fun c -> Solver.add_clause s c) clauses in
           if not ok then reference = false
           else begin
             ignore (Solver.simplify s);
             let r1 = sat (Solver.solve s) in
             (* again, now with learned clauses and root units in play *)
             ignore (Solver.simplify s);
             let r2 = sat (Solver.solve s) in
             r1 = reference && r2 = reference
           end));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"simplify ~keep evicts every clause outside the kept set"
         ~print:(fun (nvars, clauses) ->
           Printf.sprintf "nvars=%d clauses=[%s]" nvars
             (String.concat "; "
                (List.map
                   (fun c ->
                     "["
                     ^ String.concat ","
                         (List.map
                            (fun l ->
                              (if Solver.is_neg l then "-" else "+")
                              ^ string_of_int (Solver.var_of l))
                            c)
                     ^ "]")
                   clauses)))
         ~count:200 random_cnf_large
         (fun (nvars, clauses) ->
           let s = Solver.create nvars in
           let ok = List.for_all (fun c -> Solver.add_clause s c) clauses in
           if not ok then true
           else begin
             let p v = v mod 2 = 0 in
             let swept = Solver.simplify ~keep:p s in
             if not swept then
               (* the database was root-unsat at the propagation fixpoint:
                  no sweep happens, the only contract is the verdict *)
               match Solver.solve s with Solver.Unsat -> true | Solver.Sat _ -> false
             else
             let live_ok =
               List.for_all
                 (fun (c : Solver.clause) ->
                   c.Solver.deleted
                   || Array.for_all (fun l -> p (Solver.var_of l)) c.Solver.lits)
                 s.Solver.clauses
             in
             let counted = (Solver.statistics s).Solver.st_evicted >= 0 in
             (* the evicted database must still solve: no dangling watches *)
             let solvable =
               match Solver.solve s with Solver.Sat _ | Solver.Unsat -> true
             in
             live_ok && counted && solvable
           end));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"cone-restricted decisions agree with unrestricted" ~count:300
         random_cnf_large
         (fun (nvars, clauses) ->
           let occurs = Array.make nvars false in
           List.iter (List.iter (fun l -> occurs.(Solver.var_of l) <- true)) clauses;
           let cone = ref [] in
           Array.iteri (fun v b -> if b then cone := v :: !cone) occurs;
           let cone = Array.of_list !cone in
           let s1 = Solver.create nvars in
           let ok1 = List.for_all (fun c -> Solver.add_clause s1 c) clauses in
           let s2 = Solver.create nvars in
           let ok2 = List.for_all (fun c -> Solver.add_clause s2 c) clauses in
           let r1 = if ok1 then Solver.solve s1 else Solver.Unsat in
           let r2 = if ok2 then Solver.solve ~decision_vars:cone s2 else Solver.Unsat in
           match (r1, r2) with
           | Solver.Sat _, Solver.Sat m -> Solver.model_satisfies m clauses
           | Solver.Unsat, Solver.Unsat -> true
           | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"activation-literal protocol matches fresh solving" ~count:200
         random_protocol
         (fun (nvars, queries) ->
           let s = Solver.create nvars in
           let perm = ref [] in
           List.for_all
             (fun (clauses, assumptions, permanent, tight) ->
               (match permanent with
               | Some c ->
                 ignore (Solver.add_clause s c);
                 perm := c :: !perm
               | None -> ());
               let a = Solver.new_var s in
               List.iter (fun c -> ignore (Solver.add_clause s (Solver.neg a :: c))) clauses;
               let guarded = Solver.pos a :: assumptions in
               if tight then (
                 match Solver.solve ~max_conflicts:0 ~assumptions:guarded s with
                 | exception Solver.Budget_exceeded -> ()
                 | Solver.Sat _ | Solver.Unsat -> ());
               let rs = Solver.solve ~assumptions:guarded s in
               let rf = Solver.solve_clauses ~nvars ~assumptions (!perm @ clauses) in
               let ok =
                 match (rs, rf) with
                 | Solver.Sat m, Solver.Sat _ ->
                   Solver.model_satisfies m clauses
                   && List.for_all
                        (fun l ->
                          let v = Solver.var_of l in
                          if Solver.is_neg l then not m.(v) else m.(v))
                        assumptions
                 | Solver.Unsat, Solver.Unsat -> true
                 | _ -> false
               in
               (* retire the guard; the next query must be unaffected *)
               ignore (Solver.add_clause s [ Solver.neg a ]);
               ok)
             queries));
  ]

let () = Alcotest.run "sat" [ ("unit", unit_tests); ("properties", props) ]
