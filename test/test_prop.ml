(* Property-test round-trip laws over the fuzzed corpus: printer/parser
   round-trip and validator invariance under every shrink pass, plus the
   behaviour of the Prop combinator layer itself (shrinking on failure,
   corpus persistence). *)

open Ub_ir
open Ub_fuzz

let corpus = lazy (Gen.random_corpus ~seed:7 ~size:500)

let roundtrips fn =
  let s = Printer.func_to_string fn in
  Printer.func_to_string (Parser.parse_func_string s) = s

let law_tests =
  [ Alcotest.test_case "printer/parser round-trip over 500 fuzzed functions" `Quick
      (fun () ->
        List.iter
          (fun fn ->
            if not (roundtrips fn) then
              Alcotest.failf "round-trip broke:\n%s" (Printer.func_to_string fn))
          (Lazy.force corpus));
    Alcotest.test_case "every fuzzed function validates" `Quick (fun () ->
        List.iter
          (fun fn ->
            match Validate.check_func fn with
            | [] -> ()
            | errs ->
              Alcotest.failf "invalid corpus function:\n%s\n%s"
                (Printer.func_to_string fn) (String.concat "; " errs))
          (Lazy.force corpus));
    Alcotest.test_case "shrink candidates validate and round-trip (500 functions)"
      `Slow
      (fun () ->
        let checked = ref 0 in
        List.iter
          (fun fn ->
            List.iter
              (fun fn' ->
                incr checked;
                (match Validate.check_func fn' with
                | [] -> ()
                | errs ->
                  Alcotest.failf "shrink produced invalid SSA:\n%s\n%s"
                    (Printer.func_to_string fn') (String.concat "; " errs));
                if not (roundtrips fn') then
                  Alcotest.failf "shrink candidate broke round-trip:\n%s"
                    (Printer.func_to_string fn'))
              (Ub_shrink.Reduce.shrink_candidates fn))
          (Lazy.force corpus);
        Alcotest.(check bool) "some candidates were produced" true (!checked > 1000));
    Alcotest.test_case "every edit family is generated" `Quick (fun () ->
        (* the catalogue on a loopy corpus function must span block-level,
           def-level, operand-level and type-level edits *)
        let fn =
          List.find
            (fun fn -> List.length fn.Func.blocks > 1)
            (Lazy.force corpus)
        in
        let edits = Ub_shrink.Reduce.candidate_edits fn in
        let has p = List.exists p edits in
        Alcotest.(check bool) "drop-block" true
          (has (function Ub_shrink.Reduce.Drop_block _ -> true | _ -> false));
        Alcotest.(check bool) "flatten-cond" true
          (has (function Ub_shrink.Reduce.Flatten_cond _ -> true | _ -> false));
        Alcotest.(check bool) "rauw" true
          (has (function Ub_shrink.Reduce.Rauw _ -> true | _ -> false));
        Alcotest.(check bool) "drop-insn" true
          (has (function Ub_shrink.Reduce.Drop_insn _ -> true | _ -> false));
        Alcotest.(check bool) "strip-flag" true
          (has (function Ub_shrink.Reduce.Strip_flag _ -> true | _ -> false));
        Alcotest.(check bool) "set-operand" true
          (has (function Ub_shrink.Reduce.Set_operand _ -> true | _ -> false));
        Alcotest.(check bool) "narrow" true
          (has (function Ub_shrink.Reduce.Narrow _ -> true | _ -> false));
        Alcotest.(check bool) "frozen-input" true
          (has (function Ub_shrink.Reduce.Rauw_frozen_input _ -> true | _ -> false)));
    Alcotest.test_case "shrink candidates are deterministic" `Quick (fun () ->
        let fn = List.hd (Lazy.force corpus) in
        let run () =
          List.map Printer.func_to_string (Ub_shrink.Reduce.shrink_candidates fn)
        in
        Alcotest.(check bool) "same" true (run () = run ()));
  ]

(* ------------------------------------------------------------------ *)
(* The Prop layer itself                                               *)
(* ------------------------------------------------------------------ *)

let prop_tests =
  [ Alcotest.test_case "passing property passes" `Quick (fun () ->
        match
          Prop.run ~count:200 ~seed:3 ~name:"int-in-range" (Prop.int_range 0 10)
            (fun n -> n >= 0 && n <= 10)
        with
        | Prop.Passed n -> Alcotest.(check int) "ran all cases" 200 n
        | Prop.Failed (_, f) -> Alcotest.failf "unexpected failure: %s" f.Prop.error);
    Alcotest.test_case "failing int property shrinks to the boundary" `Quick (fun () ->
        match
          Prop.run ~count:200 ~seed:3 ~name:"lt-50" (Prop.int_range 0 1000) (fun n ->
              n < 50)
        with
        | Prop.Passed _ -> Alcotest.fail "property should fail"
        | Prop.Failed (n, _) -> Alcotest.(check int) "minimal failing value" 50 n);
    Alcotest.test_case "failing func property persists a parsable corpus file" `Quick
      (fun () ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "ub-prop-corpus-%d" (Unix.getpid ()))
        in
        let prop fn = Func.num_insns fn < 5 in
        (match
           Prop.run ~count:50 ~seed:11 ~corpus_dir:dir ~name:"tiny-func"
             (Prop.func ()) prop
         with
        | Prop.Passed _ -> Alcotest.fail "random functions should exceed 5 insns"
        | Prop.Failed (minimized, f) ->
          Alcotest.(check bool) "minimized still fails" true (not (prop minimized));
          (* a local minimum: a few more instructions than the bound at most *)
          Alcotest.(check bool) "minimized is small" true (Func.num_insns minimized <= 12);
          let path =
            match f.Prop.corpus_file with
            | Some p -> p
            | None -> Alcotest.fail "no corpus file written"
          in
          Alcotest.(check bool) "corpus file exists" true (Sys.file_exists path);
          let ic = open_in path in
          let n = in_channel_length ic in
          let text = really_input_string ic n in
          close_in ic;
          (* the ';' header is comment-skipped by the lexer, so the file
             replays directly *)
          let replayed = Parser.parse_func_string text in
          Alcotest.(check bool) "replayed counterexample still fails" true
            (not (prop replayed));
          Sys.remove path);
        (try Unix.rmdir dir with _ -> ()));
    Alcotest.test_case "prop runs are deterministic in the seed" `Quick (fun () ->
        let run () =
          match
            Prop.run ~count:30 ~seed:42 ~name:"det" (Prop.func ()) (fun fn ->
                Func.num_insns fn < 5)
          with
          | Prop.Failed (fn, _) -> Printer.func_to_string fn
          | Prop.Passed _ -> "passed"
        in
        Alcotest.(check string) "same outcome" (run ()) (run ()));
    Alcotest.test_case "pair and list combinators shrink" `Quick (fun () ->
        match
          Prop.run ~count:100 ~seed:5 ~name:"short-lists"
            (Prop.list_of ~max_len:6 (Prop.int_range 0 100))
            (fun xs -> List.length xs < 3)
        with
        | Prop.Passed _ -> Alcotest.fail "should find a long list"
        | Prop.Failed (xs, _) -> Alcotest.(check int) "shrunk to the boundary" 3 (List.length xs));
  ]

let () = Alcotest.run "prop" [ ("laws", law_tests); ("prop", prop_tests) ]
