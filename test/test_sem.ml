(* Semantics: the Figure 5 rules, mode differences, undef/poison
   propagation, memory, ty-up/ty-down, and behaviour enumeration. *)

open Ub_support
open Ub_ir
open Ub_sem

let parse = Parser.parse_func_string
let vi ?(w = 8) i = Value.of_int ~width:w i
let poison = Value.Scalar Value.Poison
let undef = Value.Scalar Value.Undef

let run ?(mode = Mode.proposed) ?oracle src args =
  let fn = parse src in
  (Interp.run ~mode ?oracle fn args).Interp.outcome

let check_ret name expected outcome =
  Alcotest.(check string) name expected (Interp.outcome_to_string outcome)

let simple op = Printf.sprintf {|define i8 @f(i8 %%a, i8 %%b) {
e:
  %%x = %s i8 %%a, %%b
  ret i8 %%x
}|} op

let arith_tests =
  [ Alcotest.test_case "add nsw overflow is poison" `Quick (fun () ->
        check_ret "127+1" "ret poison" (run (simple "add nsw") [ vi 127; vi 1 ]);
        check_ret "126+1" "ret 127" (run (simple "add nsw") [ vi 126; vi 1 ]));
    Alcotest.test_case "plain add wraps" `Quick (fun () ->
        check_ret "127+1" "ret -128" (run (simple "add") [ vi 127; vi 1 ]));
    Alcotest.test_case "poison is strict through arithmetic" `Quick (fun () ->
        check_ret "poison+1" "ret poison" (run (simple "add") [ poison; vi 1 ]);
        check_ret "and poison" "ret poison" (run (simple "and") [ poison; vi 0 ]));
    Alcotest.test_case "division by zero is UB" `Quick (fun () ->
        check_ret "1/0" "UB: division by zero" (run (simple "udiv") [ vi 1; vi 0 ]));
    Alcotest.test_case "division by poison is UB (default modes)" `Quick (fun () ->
        check_ret "1/poison" "UB: division by poison" (run (simple "udiv") [ vi 1; poison ]));
    Alcotest.test_case "sdiv INT_MIN/-1 is UB" `Quick (fun () ->
        check_ret "min/-1" "UB: sdiv overflow (INT_MIN / -1)"
          (run (simple "sdiv") [ vi (-128); vi (-1) ]));
    Alcotest.test_case "exact violation is poison" `Quick (fun () ->
        check_ret "9 exact/ 2" "ret poison" (run (simple "udiv exact") [ vi 9; vi 2 ]);
        check_ret "8 exact/ 2" "ret 4" (run (simple "udiv exact") [ vi 8; vi 2 ]));
    Alcotest.test_case "oversized shift deferred UB" `Quick (fun () ->
        check_ret "shl by 9 (proposed: poison)" "ret poison" (run (simple "shl") [ vi 1; vi 9 ]);
        (* old modes: undef *)
        check_ret "shl by 9 (old: undef)" "ret undef"
          (run ~mode:Mode.old_unswitch (simple "shl") [ vi 1; vi 9 ]));
    Alcotest.test_case "undef constant means poison in proposed mode" `Quick (fun () ->
        check_ret "undef+1 (proposed)" "ret poison"
          (run {|define i8 @f() {
e:
  %x = add i8 undef, 1
  ret i8 %x
}|} []));
    Alcotest.test_case "undef materializes per use (old)" `Quick (fun () ->
        (* x+x with x=undef can be odd under old semantics: enumerate *)
        let fn = parse {|define i2 @f(i2 %x) {
e:
  %y = add i2 %x, %x
  ret i2 %y
}|} in
        let behs = Interp.Behaviors.enumerate ~mode:Mode.old_unswitch fn [ undef ] in
        let values =
          List.filter_map
            (fun b ->
              match b.Interp.Behaviors.b_outcome with
              | Interp.Returned (Some (Value.Scalar (Value.Conc bv))) ->
                Some (Bitvec.to_uint_exn bv)
              | _ -> None)
            behs
        in
        Alcotest.(check bool) "odd result possible" true (List.mem 1 values || List.mem 3 values));
  ]

let branch_select_tests =
  [ Alcotest.test_case "branch on poison: UB vs nondet" `Quick (fun () ->
        let src = {|define i8 @f(i1 %c) {
e:
  br i1 %c, label %t, label %u
t:
  ret i8 1
u:
  ret i8 2
}|} in
        check_ret "proposed" "UB: branch on poison" (run src [ poison ]);
        let behs = Interp.Behaviors.enumerate ~mode:Mode.old_unswitch (parse src) [ poison ] in
        Alcotest.(check int) "old-unswitch: both arms" 2 (List.length behs));
    Alcotest.test_case "select semantics per mode" `Quick (fun () ->
        let src = {|define i8 @f(i1 %c, i8 %a, i8 %b) {
e:
  %x = select i1 %c, i8 %a, i8 %b
  ret i8 %x
}|} in
        (* poison condition *)
        check_ret "conditional: poison" "ret poison" (run src [ poison; vi 1; vi 2 ]);
        check_ret "ub-cond: UB" "UB: select on poison condition"
          (run ~mode:Mode.old_gvn src [ poison; vi 1; vi 2 ]);
        (* non-chosen poison arm is ignored under conditional *)
        check_ret "conditional ignores non-chosen" "ret 1" (run src [ vi ~w:1 1; vi 1; poison ]);
        (* ...but poisons the result under arith *)
        check_ret "arith taints" "ret poison"
          (run ~mode:Mode.old_langref src [ vi ~w:1 1; vi 1; poison ]));
    Alcotest.test_case "freeze determinism within a run" `Quick (fun () ->
        let src = {|define i8 @f(i8 %x) {
e:
  %f = freeze i8 %x
  %y = sub i8 %f, %f
  ret i8 %y
}|} in
        (* freeze picks once: f - f = 0 on every path *)
        let fn = parse src in
        let behs = Interp.Behaviors.enumerate ~mode:Mode.proposed ~max_width_bits:8 fn [ poison ] in
        List.iter
          (fun b -> check_ret "f-f=0" "ret 0" b.Interp.Behaviors.b_outcome)
          behs);
    Alcotest.test_case "phi forwards poison only on the taken edge" `Quick (fun () ->
        let src = {|define i8 @f(i1 %c, i8 %a) {
e:
  br i1 %c, label %t, label %u
t:
  br label %m
u:
  br label %m
m:
  %x = phi i8 [ %a, %t ], [ 5, %u ]
  ret i8 %x
}|} in
        check_ret "poison via t" "ret poison" (run src [ vi ~w:1 1; poison ]);
        check_ret "constant via u" "ret 5" (run src [ vi ~w:1 0; poison ]));
  ]

let memory_tests =
  [ Alcotest.test_case "store/load roundtrip" `Quick (fun () ->
        let src = {|define i16 @f() {
e:
  %p = call i16* @malloc(i32 8)
  store i16 -12345, i16* %p
  %v = load i16, i16* %p
  ret i16 %v
}|} in
        check_ret "roundtrip" "ret -12345" (run src []));
    Alcotest.test_case "load of uninitialized memory" `Quick (fun () ->
        let src = {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 4)
  %v = load i8, i8* %p
  ret i8 %v
}|} in
        check_ret "proposed: poison" "ret poison" (run src []);
        check_ret "old: undef" "ret undef" (run ~mode:Mode.old_unswitch src []));
    Alcotest.test_case "out-of-bounds access is UB" `Quick (fun () ->
        let src = {|define i8 @f() {
e:
  %p = call i8* @malloc(i32 2)
  %q = getelementptr i8, i8* %p, i32 5
  %v = load i8, i8* %q
  ret i8 %v
}|} in
        check_ret "oob" "UB: load from invalid address" (run src []));
    Alcotest.test_case "load/store through poison pointer is UB" `Quick (fun () ->
        let src = {|define i8 @f(i8* %p) {
e:
  %v = load i8, i8* %p
  ret i8 %v
}|} in
        check_ret "poison ptr" "UB: load from poison pointer"
          (run src [ Value.Scalar Value.Poison ]));
    Alcotest.test_case "vector load tracks poison per lane (5.4)" `Quick (fun () ->
        let src = {|define i16 @f() {
e:
  %p = call i16* @malloc(i32 4)
  store i16 7, i16* %p
  %pv = bitcast i16* %p to <2 x i16>*
  %v = load <2 x i16>, <2 x i16>* %pv
  %e = extractelement <2 x i16> %v, i32 0
  ret i16 %e
}|} in
        (* second lane is uninitialized (poison) but lane 0 survives *)
        check_ret "lane isolation" "ret 7" (run src []));
    Alcotest.test_case "integer widened load is contaminated (the 5.4 bug)" `Quick (fun () ->
        let src = {|define i16 @f() {
e:
  %p = call i16* @malloc(i32 4)
  store i16 7, i16* %p
  %pw = bitcast i16* %p to i32*
  %w = load i32, i32* %pw
  %t = trunc i32 %w to i16
  ret i16 %t
}|} in
        check_ret "contaminated" "ret poison" (run src []));
    Alcotest.test_case "gep inbounds overflow is poison" `Quick (fun () ->
        let src = {|define i8* @f(i8* %p) {
e:
  %q = getelementptr inbounds i8, i8* %p, i32 2147483647
  %r = getelementptr inbounds i8, i8* %q, i32 2147483647
  ret i8* %r
}|} in
        let fn = parse src in
        let mem = Memory.create () in
        let base = Option.get (Memory.alloc mem ~size:4) in
        let r = Interp.run ~mem fn [ Value.Scalar (Value.Conc base) ] in
        check_ret "poison gep" "ret poison" r.Interp.outcome);
  ]

let ty_updown_tests =
  [ Alcotest.test_case "ty_down/ty_up roundtrip on concrete" `Quick (fun () ->
        let v = Value.Vector [| Value.Conc (Bitvec.of_int ~width:16 513); Value.Conc (Bitvec.of_int ~width:16 77) |] in
        let ty = Types.Vec (2, Types.Int 16) in
        let v' = Value.ty_up ~mode:Mode.proposed ty (Value.ty_down ty v) in
        Alcotest.(check bool) "roundtrip" true (Value.equal v v'));
    Alcotest.test_case "bitcast spreads lane poison (Fig 5)" `Quick (fun () ->
        let v = Value.Vector [| Value.Poison; Value.Conc (Bitvec.of_int ~width:16 3) |] in
        let r =
          Value.bitcast ~mode:Mode.proposed ~from:(Types.Vec (2, Types.Int 16))
            ~to_:(Types.Int 32) v
        in
        Alcotest.(check bool) "whole word poison" true (Value.is_poison r));
    Alcotest.test_case "bitcast keeps clean lanes" `Quick (fun () ->
        let v = Value.Scalar (Value.Conc (Bitvec.of_int ~width:32 0x00070003)) in
        match Value.bitcast ~mode:Mode.proposed ~from:(Types.Int 32) ~to_:(Types.Vec (2, Types.Int 16)) v with
        | Value.Vector [| Value.Conc a; Value.Conc b |] ->
          Alcotest.(check int) "lane0" 3 (Bitvec.to_uint_exn a);
          Alcotest.(check int) "lane1" 7 (Bitvec.to_uint_exn b)
        | _ -> Alcotest.fail "bad shape");
    Alcotest.test_case "covers order" `Quick (fun () ->
        let conc = Value.Scalar (Value.Conc (Bitvec.of_int ~width:8 3)) in
        Alcotest.(check bool) "poison covers conc" true (Value.covers ~src:poison ~tgt:conc);
        Alcotest.(check bool) "undef covers conc" true (Value.covers ~src:undef ~tgt:conc);
        Alcotest.(check bool) "undef !covers poison" false (Value.covers ~src:undef ~tgt:poison);
        Alcotest.(check bool) "conc !covers undef" false (Value.covers ~src:conc ~tgt:undef);
        Alcotest.(check bool) "conc covers self" true (Value.covers ~src:conc ~tgt:conc));
  ]

(* interpreter determinism given an oracle *)
let determinism =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"runs are deterministic given a seed" ~count:50
       QCheck2.Gen.(pair (int_range 0 1000) (int_range 0 255))
       (fun (seed, a) ->
         let fns = Ub_fuzz.Gen.random_corpus ~seed ~size:1 in
         let fn = List.hd fns in
         let args = [ vi ~w:32 a; vi ~w:32 (a * 3); vi ~w:32 (a + 17) ] in
         let r1 = Interp.run ~oracle:(Ub_sem.Oracle.of_prng (Prng.create ~seed:1)) fn args in
         let r2 = Interp.run ~oracle:(Ub_sem.Oracle.of_prng (Prng.create ~seed:1)) fn args in
         r1.Interp.outcome = r2.Interp.outcome))

let () =
  Alcotest.run "semantics"
    [ ("arithmetic", arith_tests);
      ("branch-select", branch_select_tests);
      ("memory", memory_tests);
      ("ty-up-down", ty_updown_tests);
      ("properties", [ determinism ]);
    ]
