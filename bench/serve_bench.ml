(* T-SERVE | the daemon load generator behind `bench serve`.

   Measures what the serve subsystem exists to deliver: amortizing the
   cold-start cost of the checker across a stream of small queries.
   Two runs over the *same* 200-query corpus:

   - the spawn baseline: one `ubc check` process per query, the way a
     fuzzing harness would drive the batch tool (exec, parse, warm the
     solver stack, check, exit);
   - the daemon: one `ubc serve` instance, queries pipelined over a few
     client connections, per-request latency stamped at send and reply.

   The corpus is seeded and deliberately repetitive (200 queries drawn
   from a smaller unique set) because real translation-validation
   traffic is repetitive -- that is what the daemon's coalescing and
   verdict cache are for.  Verdicts from both runs are compared against
   an in-process ground truth; any disagreement fails the run.

   Results go to BENCH_serve.json: throughput for both runs, the
   speedup, exact p50/p95/p99 latency percentiles (computed from the
   200 samples, not histogram buckets), per-reply serving-class counts
   (coalesced / journal hit / cold -- stamped from the reply flags, so
   the overload burst cannot pollute them), a warm re-pass over the
   unique pairs, and the daemon's closing stats report.

   With [fleet] set, a second experiment runs the same measurement
   shape against `ubc fleet`: a fresh 10k-query corpus (renamed
   variants of the unique pairs, so every variant is distinct cache
   work) driven through the consistent-hash fleet client, once against
   a 1-shard fleet and once against [fleet_shards].  Verdicts from both
   runs must match the in-process ground truth.  The >=[required]x
   scaling gate is core-aware: shards are processes, so on a machine
   with fewer cores than shards the aggregate QPS cannot scale and the
   gate is recorded but not enforced (gate_enforced=false in the JSON);
   CI runs the enforced variant on a multi-core runner. *)

open Ub_ir
open Ub_sem
module Json = Ub_serve.Json
module Wire = Ub_serve.Wire
module Client = Ub_serve.Client
module Fleet = Ub_serve.Fleet

let n_queries = 200
let n_conns = 4
let required_speedup = 5.0

type pair = { p_src : Func.t; p_tgt : Func.t; p_src_text : string; p_tgt_text : string }

(* ------------------------------------------------------------------ *)
(* Corpus: unique pairs from the seeded fuzz generator, filtered to    *)
(* queries the checker answers quickly (the daemon's target workload   *)
(* is streams of small queries; slow outliers measure the solver, not  *)
(* the serving overhead), then sampled with repetition to [n_queries]. *)
(* ------------------------------------------------------------------ *)

let build_corpus () : pair array * int array * Ub_refine.Checker.verdict array =
  let fns = Ub_fuzz.Gen.random_corpus ~seed:2026 ~size:60 in
  let candidates =
    List.map
      (fun fn ->
        let tgt = Ub_opt.Pass.run_pipeline Ub_opt.Pass.prototype Ub_opt.Pipeline.fuzz_passes fn in
        { p_src = fn;
          p_tgt = tgt;
          p_src_text = Printer.func_to_string fn;
          p_tgt_text = Printer.func_to_string tgt;
        })
      fns
  in
  (* ground truth + fast-filter in one pass *)
  let keep = ref [] in
  List.iter
    (fun p ->
      let t0 = Ub_obs.Obs.Clock.now_s () in
      let v = Ub_refine.Checker.check Mode.proposed ~src:p.p_src ~tgt:p.p_tgt in
      let dt = Ub_obs.Obs.Clock.elapsed_s ~since:t0 in
      if dt < 0.15 && List.length !keep < 40 then keep := (p, v) :: !keep)
    candidates;
  let unique = Array.of_list (List.rev !keep) in
  if Array.length unique = 0 then failwith "serve bench: empty corpus";
  let prng = Ub_support.Prng.create ~seed:7 in
  let picks = Array.init n_queries (fun _ -> Ub_support.Prng.int prng (Array.length unique)) in
  (Array.map fst unique, picks, Array.map snd unique)

let verdict_name = function
  | Ub_refine.Checker.Refines -> "refines"
  | Ub_refine.Checker.Counterexample _ -> "counterexample"
  | Ub_refine.Checker.Unknown _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Spawn baseline                                                      *)
(* ------------------------------------------------------------------ *)

let find_ubc () : string option =
  (* bench runs as _build/default/bench/main.exe; ubc is its sibling *)
  let guess =
    Filename.concat
      (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
      "ubc.exe"
  in
  if Sys.file_exists guess then Some guess else None

let write_tmp_pairs (dir : string) (unique : pair array) : (string * string) array =
  Array.mapi
    (fun i p ->
      let sp = Filename.concat dir (Printf.sprintf "src_%02d.ll" i) in
      let tp = Filename.concat dir (Printf.sprintf "tgt_%02d.ll" i) in
      let write path text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      write sp p.p_src_text;
      write tp p.p_tgt_text;
      (sp, tp))
    unique

(* One `ubc check` process per query, sequentially -- the cold-start
   path a harness without the daemon pays.  Returns (wall, refines?). *)
let run_spawn_baseline (ubc : string) (files : (string * string) array) (picks : int array) :
    float * bool array =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let refines = Array.make (Array.length picks) false in
  let t0 = Ub_obs.Obs.Clock.now_s () in
  Array.iteri
    (fun qi u ->
      let sp, tp = files.(u) in
      let pid =
        Unix.create_process ubc
          [| ubc; "check"; "--mode"; "proposed"; sp; tp |]
          Unix.stdin devnull devnull
      in
      let rec wait () =
        try Unix.waitpid [] pid
        with Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      match snd (wait ()) with
      | Unix.WEXITED 0 -> refines.(qi) <- true
      | _ -> refines.(qi) <- false)
    picks;
  Unix.close devnull;
  (Ub_obs.Obs.Clock.elapsed_s ~since:t0, refines)

(* Fallback when the ubc binary has not been built: fork per query and
   replay the same cold path (parse from disk, fresh check) in the
   child.  Noted in the JSON -- it under-counts exec+startup cost, so a
   speedup against it is conservative. *)
let run_fork_baseline (files : (string * string) array) (picks : int array) :
    float * bool array =
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let refines = Array.make (Array.length picks) false in
  let t0 = Ub_obs.Obs.Clock.now_s () in
  Array.iteri
    (fun qi u ->
      let sp, tp = files.(u) in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        Ub_obs.Obs.child_begin ();
        let code =
          try
            let one p = List.hd (Parser.parse_module (read p)).Func.funcs in
            match Ub_refine.Checker.check Mode.proposed ~src:(one sp) ~tgt:(one tp) with
            | Ub_refine.Checker.Refines -> 0
            | _ -> 1
          with _ -> 3
        in
        Unix._exit code
      | pid -> (
        let rec wait () =
          try Unix.waitpid [] pid with Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        match snd (wait ()) with
        | Unix.WEXITED 0 -> refines.(qi) <- true
        | _ -> refines.(qi) <- false))
    picks;
  (Ub_obs.Obs.Clock.elapsed_s ~since:t0, refines)

(* ------------------------------------------------------------------ *)
(* Daemon run                                                          *)
(* ------------------------------------------------------------------ *)

let start_daemon ~(jobs : int) ~(dir : string) : string * int =
  let socket_path = Filename.concat dir "serve.sock" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* the child must not share the parent's trace channel/registry *)
    Ub_obs.Obs.child_begin ();
    (try
       let cache = Ub_exec.Cache.open_journal (Filename.concat dir "cache") in
       let cfg =
         { (Ub_serve.Server.default_config ~socket_path) with
           Ub_serve.Server.jobs;
           queue_limit = 256;
           batch_max = 64;
           cache = Some cache;
         }
       in
       Ub_serve.Server.run cfg;
       Unix._exit 0
     with _ -> Unix._exit 3)
  | pid ->
    let rec wait_sock n =
      if n > 200 then failwith "serve bench: daemon did not come up"
      else if Sys.file_exists socket_path then ()
      else begin
        Unix.sleepf 0.05;
        wait_sock (n + 1)
      end
    in
    wait_sock 0;
    (socket_path, pid)

(* How each reply was served, stamped from the reply's own flags --
   counting at the reply (not from the daemon's cumulative counters)
   keeps the burst and probe traffic below out of these numbers. *)
type reply_classes = { mutable rc_coalesced : int; mutable rc_journal : int; mutable rc_cold : int }

(* Pipeline the corpus over [n_conns] connections and stamp per-request
   latency as replies arrive (select across the connections, so a slow
   connection cannot skew the others' timestamps). *)
let run_daemon_load (socket_path : string) (unique : pair array) (picks : int array) :
    float * float array * string array * reply_classes =
  let conns = Array.init n_conns (fun _ -> Client.connect ~socket_path ()) in
  let send_t = Array.make (Array.length picks) 0.0 in
  let recv_t = Array.make (Array.length picks) 0.0 in
  let verdicts = Array.make (Array.length picks) "" in
  let t0 = Ub_obs.Obs.Clock.now_s () in
  Array.iteri
    (fun qi u ->
      let p = unique.(u) in
      let cl = conns.(qi mod n_conns) in
      send_t.(qi) <- Ub_obs.Obs.Clock.now_s ();
      Client.send cl
        (Wire.Check
           { Wire.id = Some qi;
             mode = "proposed";
             src = p.p_src_text;
             tgt = p.p_tgt_text;
             deadline_s = None;
             enum_only = false;
           }))
    picks;
  let outstanding = ref (Array.length picks) in
  let classes = { rc_coalesced = 0; rc_journal = 0; rc_cold = 0 } in
  let fd_of i = (conns.(i) : Client.t).Client.fd in
  while !outstanding > 0 do
    let fds = List.init n_conns fd_of in
    match Unix.select fds [] [] 5.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> failwith "serve bench: daemon stalled (5s without a reply)"
    | ready, _, _ ->
      List.iter
        (fun fd ->
          match Wire.recv_reply fd with
          | Some (Wire.Verdict v) -> (
            match v.Wire.r_id with
            | Some qi when qi >= 0 && qi < Array.length picks ->
              recv_t.(qi) <- Ub_obs.Obs.Clock.now_s ();
              verdicts.(qi) <- v.Wire.verdict;
              if v.Wire.coalesced then classes.rc_coalesced <- classes.rc_coalesced + 1
              else if v.Wire.cached then classes.rc_journal <- classes.rc_journal + 1
              else classes.rc_cold <- classes.rc_cold + 1;
              decr outstanding
            | _ -> failwith "serve bench: reply without a usable id")
          | Some (Wire.Overloaded _) -> failwith "serve bench: rejected during timed run"
          | Some _ -> failwith "serve bench: unexpected reply"
          | None -> failwith "serve bench: daemon closed the connection")
        ready
  done;
  let wall = Ub_obs.Obs.Clock.elapsed_s ~since:t0 in
  Array.iter Client.close conns;
  let lat = Array.init (Array.length picks) (fun i -> recv_t.(i) -. send_t.(i)) in
  (wall, lat, verdicts, classes)

(* Re-send every unique pair once after the timed run: every pair with
   a *cacheable* verdict was journaled above, so those must all hit
   (Unknown verdicts are never cached -- they depend on the budget --
   and legitimately re-run).  Returns (journal_hits, total). *)
let run_warm_pass (socket_path : string) (unique : pair array) : int * int =
  Client.with_conn ~socket_path (fun cl ->
      let hits = ref 0 in
      Array.iter
        (fun p ->
          match
            Client.check cl ~mode:"proposed" ~src:p.p_src_text ~tgt:p.p_tgt_text ()
          with
          | Wire.Verdict v when v.Wire.cached || v.Wire.coalesced -> incr hits
          | _ -> ())
        unique;
      (!hits, Array.length unique))

(* A deliberate overload: pipeline more requests than the queue admits
   on one connection and count the rejections.  Every request is a
   *distinct* pair (the function renamed per index) so neither the
   verdict cache nor coalescing can answer it -- each one is real work
   and the queue genuinely fills. *)
let run_overload_burst (socket_path : string) (unique : pair array) : int * int =
  let p = unique.(0) in
  let cl = Client.connect ~socket_path () in
  let n = 800 in
  for i = 0 to n - 1 do
    let rename fn = Printer.func_to_string { fn with Func.name = Printf.sprintf "b%03d" i } in
    Client.send cl
      (Wire.Check
         { Wire.id = Some i;
           mode = "proposed";
           src = rename p.p_src;
           tgt = rename p.p_tgt;
           deadline_s = Some 0.1;
           enum_only = false;
         })
  done;
  let rejected = ref 0 and answered = ref 0 in
  for _ = 1 to n do
    match Client.recv cl with
    | Some (Wire.Overloaded _) -> incr rejected
    | Some (Wire.Verdict _) -> incr answered
    | Some _ | None -> failwith "serve bench: burst reply missing"
  done;
  Client.close cl;
  (!rejected, !answered)

(* ------------------------------------------------------------------ *)
(* Fleet scaling experiment                                            *)
(* ------------------------------------------------------------------ *)

(* Shards are processes: the scaling gate only means something when the
   machine can actually run them in parallel.  Counted from
   /proc/cpuinfo (portable enough for the linux runners this targets);
   1 on any failure, which keeps the gate honest -- it can only
   under-claim parallelism, never invent it. *)
let ncores () : int =
  match In_channel.with_open_text "/proc/cpuinfo" In_channel.input_all with
  | exception Sys_error _ -> 1
  | text ->
    let n =
      String.split_on_char '\n' text
      |> List.filter (fun l -> String.length l >= 9 && String.sub l 0 9 = "processor")
      |> List.length
    in
    max 1 n

(* A fresh corpus for the fleet runs: [queries] renamed copies of the
   unique pairs.  Renaming changes the verdict-cache key but not the
   verdict, so the base pair's ground truth carries over.  Every query
   is DISTINCT on purpose: repeated queries are answered by coalescing
   and the journal -- single-process client work that cannot scale with
   shards and is already measured by the daemon experiment above.  The
   fleet experiment measures checking scale-out, so every query must be
   real checker work. *)
let build_fleet_corpus (unique : pair array) (truth : Ub_refine.Checker.verdict array)
    ~(queries : int) : (string * string) array * int array * string array =
  let n = Array.length unique in
  let texts =
    Array.init queries (fun i ->
        let p = unique.(i mod n) in
        let name = Printf.sprintf "v%05d" i in
        ( Printer.func_to_string { p.p_src with Func.name },
          Printer.func_to_string { p.p_tgt with Func.name } ))
  in
  let truth_v = Array.init queries (fun i -> verdict_name truth.(i mod n)) in
  let picks = Array.init queries Fun.id in
  (texts, picks, truth_v)

(* Drive the whole pick stream through the consistent-hash fleet client
   in one batch call; the client pipelines per shard up to the window
   the hello handshake negotiated. *)
let run_fleet_load (sockets : string list) (texts : (string * string) array)
    (picks : int array) : float * string array =
  let fl = Client.Fleet.make ~client:"ubc-bench" sockets in
  Fun.protect ~finally:(fun () -> Client.Fleet.close fl) @@ fun () ->
  let pairs = Array.map (fun qi -> texts.(qi)) picks in
  let t0 = Ub_obs.Obs.Clock.now_s () in
  let replies = Client.Fleet.check_batch_tagged fl ~mode:"proposed" pairs in
  let wall = Ub_obs.Obs.Clock.elapsed_s ~since:t0 in
  let verdicts =
    Array.map
      (fun (reply, _) ->
        match reply with
        | Wire.Verdict v -> v.Wire.verdict
        | Wire.Overloaded _ -> "overloaded"
        | Wire.Error_r { message; _ } -> "error: " ^ message
        | _ -> "error: unexpected reply")
      replies
  in
  (wall, verdicts)

(* One fleet run at [nshards]: spawn, drive, collect merged stats, tear
   down.  Each run gets a fresh subdirectory (cold journals) so the
   1-shard and N-shard runs pay the same cache costs. *)
let run_fleet_once ~(nshards : int) ~(dir : string) (texts : (string * string) array)
    (picks : int array) : float * string array * Json.t =
  let cfg = { (Fleet.default_config ~dir) with Fleet.shards = nshards } in
  let h = Fleet.spawn_local cfg in
  Fun.protect ~finally:(fun () -> Fleet.stop_local h) @@ fun () ->
  let sockets = Fleet.handle_sockets h in
  let wall, verdicts = run_fleet_load sockets texts picks in
  let stats =
    let fl = Client.Fleet.make ~client:"ubc-bench-stats" sockets in
    Fun.protect
      ~finally:(fun () -> Client.Fleet.close fl)
      (fun () -> Fleet.merge_stats (Client.Fleet.stats fl))
  in
  (wall, verdicts, stats)

(* The fleet experiment: same corpus against 1 shard and [shards]
   shards; verdict agreement with ground truth is always enforced, the
   >=[required]x QPS gate only when the machine has the cores to scale
   (recorded either way).  Returns the JSON block and pass/fail. *)
let run_fleet ~(shards : int) ~(queries : int) ~(required : float) ~(dir : string)
    (unique : pair array) (truth : Ub_refine.Checker.verdict array) : Json.t * bool =
  let texts, picks, truth_v = build_fleet_corpus unique truth ~queries in
  let cores = ncores () in
  Printf.printf "fleet corpus: %d distinct queries; machine: %d core(s)\n%!" queries cores;
  let mismatches verdicts =
    let bad = ref 0 in
    Array.iteri (fun qi v -> if truth_v.(picks.(qi)) <> v then incr bad) verdicts;
    !bad
  in
  Printf.printf "fleet: 1-shard run...\n%!";
  let wall_1, verdicts_1, _ =
    run_fleet_once ~nshards:1 ~dir:(Filename.concat dir "fleet1") texts picks
  in
  let qps_1 = float_of_int queries /. wall_1 in
  Printf.printf "fleet: 1 shard: %.2fs wall, %.1f queries/s\n%!" wall_1 qps_1;
  Printf.printf "fleet: %d-shard run...\n%!" shards;
  let wall_n, verdicts_n, stats_n =
    run_fleet_once ~nshards:shards ~dir:(Filename.concat dir "fleetN") texts picks
  in
  let qps_n = float_of_int queries /. wall_n in
  let speedup = qps_n /. qps_1 in
  let bad_1 = mismatches verdicts_1 and bad_n = mismatches verdicts_n in
  let verdicts_match = bad_1 = 0 && bad_n = 0 in
  let gate_enforced = cores >= shards in
  Printf.printf "fleet: %d shards: %.2fs wall, %.1f queries/s (%.2fx the 1-shard run)\n%!"
    shards wall_n qps_n speedup;
  if not gate_enforced then
    Printf.printf
      "fleet: gate informational only: %d core(s) < %d shards, processes cannot scale here\n%!"
      cores shards;
  let num f = Json.Num f in
  let int n = Json.Num (float_of_int n) in
  let j =
    Json.Obj
      [ ("shards", int shards);
        ("queries", int queries);
        ("distinct_queries", Json.Bool true);
        ("cores", int cores);
        ("wall_1shard_s", num wall_1);
        ("qps_1shard", num qps_1);
        ("wall_nshard_s", num wall_n);
        ("qps_nshard", num qps_n);
        ("speedup", num speedup);
        ("required_speedup", num required);
        ("gate_enforced", Json.Bool gate_enforced);
        ("verdicts_match", Json.Bool verdicts_match);
        ("mismatches_1shard", int bad_1);
        ("mismatches_nshard", int bad_n);
        ("stats", stats_n);
      ]
  in
  let ok =
    if not verdicts_match then begin
      Printf.printf "FLEET-MISMATCH: %d + %d verdict disagreement(s) vs ground truth\n" bad_1
        bad_n;
      false
    end
    else if gate_enforced && speedup < required then begin
      Printf.printf "FLEET-TOO-SLOW: %.2fx < required %.1fx at %d shards on %d cores\n"
        speedup required shards cores;
      false
    end
    else begin
      Printf.printf "FLEET-OK: identical verdicts, %.2fx at %d shards%s\n" speedup shards
        (if gate_enforced then "" else " (gate not enforced: too few cores)");
      true
    end
  in
  (j, ok)

(* ------------------------------------------------------------------ *)
(* Percentiles (exact, from the recorded samples)                      *)
(* ------------------------------------------------------------------ *)

let percentile (sorted : float array) (q : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let run ~(jobs : int) ~(out : string) ?(fleet = false) ?(fleet_shards = 4)
    ?(fleet_required = 3.0) ?(fleet_queries = 10_000) () : bool =
  let dir = Filename.temp_file "ub_serve_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ())
  @@ fun () ->
  Printf.printf "building corpus (seeded, unique pairs sampled to %d queries)...\n%!" n_queries;
  let unique, picks, truth = build_corpus () in
  Printf.printf "corpus: %d unique pairs, %d queries\n%!" (Array.length unique) n_queries;
  let files = write_tmp_pairs dir unique in
  (* --- baseline --- *)
  let baseline_kind, (spawn_wall, spawn_refines) =
    match find_ubc () with
    | Some ubc ->
      Printf.printf "baseline: spawning %s per query...\n%!" ubc;
      ("spawn-ubc", run_spawn_baseline ubc files picks)
    | None ->
      Printf.printf "baseline: bin/ubc.exe not built; fork-per-query fallback\n%!";
      ("fork-self", run_fork_baseline files picks)
  in
  let spawn_qps = float_of_int n_queries /. spawn_wall in
  Printf.printf "baseline (%s): %.2fs wall, %.1f queries/s\n%!" baseline_kind spawn_wall
    spawn_qps;
  (* --- daemon --- *)
  let socket_path, daemon_pid = start_daemon ~jobs ~dir in
  let serve_wall, latencies, serve_verdicts, classes = run_daemon_load socket_path unique picks in
  let serve_qps = float_of_int n_queries /. serve_wall in
  (* snapshot the journal-cache counters *before* the warm pass and the
     burst: the burst's 800 deliberately-distinct pairs are all misses
     and used to crater the reported hit rate to a meaningless ~0.5% *)
  let stats_load = Client.with_conn ~socket_path (fun cl -> Client.stats cl) in
  let warm_hits, warm_total = run_warm_pass socket_path unique in
  let warm_expected =
    (* a pair only reaches the journal if the timed run actually picked
       it AND its verdict is cacheable (Unknowns never cache) *)
    let picked = Array.make (Array.length unique) false in
    Array.iter (fun u -> picked.(u) <- true) picks;
    let n = ref 0 in
    Array.iteri
      (fun i v ->
        match v with
        | Ub_refine.Checker.Unknown _ -> ()
        | _ -> if picked.(i) then incr n)
      truth;
    !n
  in
  let rejected, burst_answered = run_overload_burst socket_path unique in
  (* one deliberately deadline-exceeded query so the timeout path shows
     up in the stats report -- a fresh (uncached) wide-multiply pair the
     checker cannot settle in 100ms *)
  let timed_out =
    let src =
      "define i64 @hard(i64 %x, i64 %y) {\ne:\n  %m = mul i64 %x, %y\n  ret i64 %m\n}"
    and tgt =
      "define i64 @hard(i64 %x, i64 %y) {\ne:\n  %m = mul i64 %y, %x\n  ret i64 %m\n}"
    in
    Client.with_conn ~socket_path (fun cl ->
        match Client.check cl ~deadline_s:0.1 ~mode:"proposed" ~src ~tgt () with
        | Wire.Verdict { verdict = "timeout"; _ } -> true
        | _ -> false)
  in
  let stats = Client.with_conn ~socket_path (fun cl -> Client.stats cl) in
  Client.with_conn ~socket_path (fun cl ->
      Client.send cl Wire.Shutdown;
      match Client.recv cl with Some Wire.Bye | None -> () | Some _ -> ());
  let rec reap () =
    try ignore (Unix.waitpid [] daemon_pid)
    with Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
  in
  reap ();
  (* --- fleet scaling (after the single daemon is down: the shards
     should not compete with it for cores) --- *)
  let fleet_block =
    if not fleet then None
    else begin
      Printf.printf "\nfleet: %d-shard scaling run (gate: >=%.1fx)\n%!" fleet_shards
        fleet_required;
      Some
        (run_fleet ~shards:fleet_shards ~queries:fleet_queries ~required:fleet_required
           ~dir:(Filename.concat dir "fleet") unique truth)
    end
  in
  (* --- verdict agreement --- *)
  let mismatches = ref 0 in
  Array.iteri
    (fun qi u ->
      let want = verdict_name truth.(u) in
      if serve_verdicts.(qi) <> want then incr mismatches;
      let want_refines = want = "refines" in
      if spawn_refines.(qi) <> want_refines then incr mismatches)
    picks;
  let verdicts_match = !mismatches = 0 in
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and p99 = percentile sorted 0.99 in
  let speedup = serve_qps /. spawn_qps in
  let load_hit_rate =
    let h = stats_load.Wire.cache_hits and m = stats_load.Wire.cache_misses in
    if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
  in
  Printf.printf
    "daemon: %.2fs wall, %.1f queries/s (%.1fx baseline)\n\
     latency: p50 %.2fms  p95 %.2fms  p99 %.2fms\n\
     replies: %d coalesced, %d journal hit(s), %d cold (of %d)\n\
     journal during load: %d hit(s) / %d miss(es) (%.0f%% hit rate)\n\
     warm pass: %d/%d hits (%d of %d pairs are cacheable; unknowns never cache)\n\
     rejected in burst: %d/%d  deadline timeout observed: %b\n%!"
    serve_wall serve_qps speedup (1000.0 *. p50) (1000.0 *. p95) (1000.0 *. p99)
    classes.rc_coalesced classes.rc_journal classes.rc_cold n_queries
    stats_load.Wire.cache_hits stats_load.Wire.cache_misses (100.0 *. load_hit_rate)
    warm_hits warm_total warm_expected warm_total rejected (rejected + burst_answered)
    timed_out;
  (* --- the JSON record --- *)
  let num f = Json.Num f in
  let int n = Json.Num (float_of_int n) in
  let j =
    Json.Obj
      ([ ("schema", Json.Str "ubc-serve-bench-v2");
         ("queries", int n_queries);
         ("unique_pairs", int (Array.length unique));
         ("jobs", int jobs);
         ( "baseline",
           Json.Obj
             [ ("kind", Json.Str baseline_kind); ("wall_s", num spawn_wall);
               ("qps", num spawn_qps) ] );
         ( "serve",
           Json.Obj
             [ ("wall_s", num serve_wall); ("qps", num serve_qps);
               ("p50_ms", num (1000.0 *. p50)); ("p95_ms", num (1000.0 *. p95));
               ("p99_ms", num (1000.0 *. p99));
               ("coalesced", int stats.Wire.coalesced_total);
               ("rejected", int stats.Wire.rejected);
               ("timeouts", int stats.Wire.timeouts);
               (* per-reply serving classes for the timed run only --
                  the reply flags, not the daemon's cumulative counters,
                  so burst/probe traffic cannot skew them *)
               ( "replies",
                 Json.Obj
                   [ ("coalesced", int classes.rc_coalesced);
                     ("journal_hits", int classes.rc_journal);
                     ("cold", int classes.rc_cold) ] );
               ("cache_hits", int stats_load.Wire.cache_hits);
               ("cache_misses", int stats_load.Wire.cache_misses);
               ("cache_hit_rate", num load_hit_rate);
               ( "warm_pass",
                 Json.Obj
                   [ ("queries", int warm_total); ("journal_hits", int warm_hits);
                     ("cacheable", int warm_expected) ] );
               ("burst_rejected", int rejected);
               ("deadline_timeout_observed", Json.Bool timed_out) ] );
         ("speedup", num speedup);
         ("required_speedup", num required_speedup);
         ("verdicts_match", Json.Bool verdicts_match);
         ("server_report", stats.Wire.report);
       ]
      @ match fleet_block with None -> [] | Some (fj, _) -> [ ("fleet", fj) ])
  in
  let oc = open_out out in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  let warm_ok = warm_hits = warm_expected in
  let fleet_ok = match fleet_block with None -> true | Some (_, ok) -> ok in
  if not verdicts_match then begin
    Printf.printf "SERVE-MISMATCH: %d verdict disagreement(s) between daemon/baseline/direct\n"
      !mismatches;
    false
  end
  else if not warm_ok then begin
    Printf.printf
      "SERVE-COLD-CACHE: warm pass hit the journal on %d unique pairs, expected %d\n"
      warm_hits warm_expected;
    false
  end
  else if speedup < required_speedup then begin
    Printf.printf "SERVE-TOO-SLOW: %.1fx < required %.0fx over the spawn baseline\n" speedup
      required_speedup;
    false
  end
  else begin
    Printf.printf "SERVE-OK: identical verdicts, %.1fx the spawn baseline\n" speedup;
    fleet_ok
  end
