(* T-SERVE | the daemon load generator behind `bench serve`.

   Measures what the serve subsystem exists to deliver: amortizing the
   cold-start cost of the checker across a stream of small queries.
   Two runs over the *same* 200-query corpus:

   - the spawn baseline: one `ubc check` process per query, the way a
     fuzzing harness would drive the batch tool (exec, parse, warm the
     solver stack, check, exit);
   - the daemon: one `ubc serve` instance, queries pipelined over a few
     client connections, per-request latency stamped at send and reply.

   The corpus is seeded and deliberately repetitive (200 queries drawn
   from a smaller unique set) because real translation-validation
   traffic is repetitive -- that is what the daemon's coalescing and
   verdict cache are for.  Verdicts from both runs are compared against
   an in-process ground truth; any disagreement fails the run.

   Results go to BENCH_serve.json: throughput for both runs, the
   speedup, exact p50/p95/p99 latency percentiles (computed from the
   200 samples, not histogram buckets), coalesce/reject counts and the
   daemon's closing stats report. *)

open Ub_ir
open Ub_sem
module Json = Ub_serve.Json
module Wire = Ub_serve.Wire
module Client = Ub_serve.Client

let n_queries = 200
let n_conns = 4
let required_speedup = 5.0

type pair = { p_src : Func.t; p_tgt : Func.t; p_src_text : string; p_tgt_text : string }

(* ------------------------------------------------------------------ *)
(* Corpus: unique pairs from the seeded fuzz generator, filtered to    *)
(* queries the checker answers quickly (the daemon's target workload   *)
(* is streams of small queries; slow outliers measure the solver, not  *)
(* the serving overhead), then sampled with repetition to [n_queries]. *)
(* ------------------------------------------------------------------ *)

let build_corpus () : pair array * int array * Ub_refine.Checker.verdict array =
  let fns = Ub_fuzz.Gen.random_corpus ~seed:2026 ~size:60 in
  let candidates =
    List.map
      (fun fn ->
        let tgt = Ub_opt.Pass.run_pipeline Ub_opt.Pass.prototype Ub_opt.Pipeline.fuzz_passes fn in
        { p_src = fn;
          p_tgt = tgt;
          p_src_text = Printer.func_to_string fn;
          p_tgt_text = Printer.func_to_string tgt;
        })
      fns
  in
  (* ground truth + fast-filter in one pass *)
  let keep = ref [] in
  List.iter
    (fun p ->
      let t0 = Ub_obs.Obs.Clock.now_s () in
      let v = Ub_refine.Checker.check Mode.proposed ~src:p.p_src ~tgt:p.p_tgt in
      let dt = Ub_obs.Obs.Clock.elapsed_s ~since:t0 in
      if dt < 0.15 && List.length !keep < 40 then keep := (p, v) :: !keep)
    candidates;
  let unique = Array.of_list (List.rev !keep) in
  if Array.length unique = 0 then failwith "serve bench: empty corpus";
  let prng = Ub_support.Prng.create ~seed:7 in
  let picks = Array.init n_queries (fun _ -> Ub_support.Prng.int prng (Array.length unique)) in
  (Array.map fst unique, picks, Array.map snd unique)

let verdict_name = function
  | Ub_refine.Checker.Refines -> "refines"
  | Ub_refine.Checker.Counterexample _ -> "counterexample"
  | Ub_refine.Checker.Unknown _ -> "unknown"

(* ------------------------------------------------------------------ *)
(* Spawn baseline                                                      *)
(* ------------------------------------------------------------------ *)

let find_ubc () : string option =
  (* bench runs as _build/default/bench/main.exe; ubc is its sibling *)
  let guess =
    Filename.concat
      (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin")
      "ubc.exe"
  in
  if Sys.file_exists guess then Some guess else None

let write_tmp_pairs (dir : string) (unique : pair array) : (string * string) array =
  Array.mapi
    (fun i p ->
      let sp = Filename.concat dir (Printf.sprintf "src_%02d.ll" i) in
      let tp = Filename.concat dir (Printf.sprintf "tgt_%02d.ll" i) in
      let write path text =
        let oc = open_out path in
        output_string oc text;
        close_out oc
      in
      write sp p.p_src_text;
      write tp p.p_tgt_text;
      (sp, tp))
    unique

(* One `ubc check` process per query, sequentially -- the cold-start
   path a harness without the daemon pays.  Returns (wall, refines?). *)
let run_spawn_baseline (ubc : string) (files : (string * string) array) (picks : int array) :
    float * bool array =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let refines = Array.make (Array.length picks) false in
  let t0 = Ub_obs.Obs.Clock.now_s () in
  Array.iteri
    (fun qi u ->
      let sp, tp = files.(u) in
      let pid =
        Unix.create_process ubc
          [| ubc; "check"; "--mode"; "proposed"; sp; tp |]
          Unix.stdin devnull devnull
      in
      let rec wait () =
        try Unix.waitpid [] pid
        with Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      match snd (wait ()) with
      | Unix.WEXITED 0 -> refines.(qi) <- true
      | _ -> refines.(qi) <- false)
    picks;
  Unix.close devnull;
  (Ub_obs.Obs.Clock.elapsed_s ~since:t0, refines)

(* Fallback when the ubc binary has not been built: fork per query and
   replay the same cold path (parse from disk, fresh check) in the
   child.  Noted in the JSON -- it under-counts exec+startup cost, so a
   speedup against it is conservative. *)
let run_fork_baseline (files : (string * string) array) (picks : int array) :
    float * bool array =
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let refines = Array.make (Array.length picks) false in
  let t0 = Ub_obs.Obs.Clock.now_s () in
  Array.iteri
    (fun qi u ->
      let sp, tp = files.(u) in
      flush stdout;
      flush stderr;
      match Unix.fork () with
      | 0 ->
        Ub_obs.Obs.child_begin ();
        let code =
          try
            let one p = List.hd (Parser.parse_module (read p)).Func.funcs in
            match Ub_refine.Checker.check Mode.proposed ~src:(one sp) ~tgt:(one tp) with
            | Ub_refine.Checker.Refines -> 0
            | _ -> 1
          with _ -> 3
        in
        Unix._exit code
      | pid -> (
        let rec wait () =
          try Unix.waitpid [] pid with Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        in
        match snd (wait ()) with
        | Unix.WEXITED 0 -> refines.(qi) <- true
        | _ -> refines.(qi) <- false))
    picks;
  (Ub_obs.Obs.Clock.elapsed_s ~since:t0, refines)

(* ------------------------------------------------------------------ *)
(* Daemon run                                                          *)
(* ------------------------------------------------------------------ *)

let start_daemon ~(jobs : int) ~(dir : string) : string * int =
  let socket_path = Filename.concat dir "serve.sock" in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* the child must not share the parent's trace channel/registry *)
    Ub_obs.Obs.child_begin ();
    (try
       let cache = Ub_exec.Cache.open_journal (Filename.concat dir "cache") in
       let cfg =
         { (Ub_serve.Server.default_config ~socket_path) with
           Ub_serve.Server.jobs;
           queue_limit = 256;
           batch_max = 64;
           cache = Some cache;
         }
       in
       Ub_serve.Server.run cfg;
       Unix._exit 0
     with _ -> Unix._exit 3)
  | pid ->
    let rec wait_sock n =
      if n > 200 then failwith "serve bench: daemon did not come up"
      else if Sys.file_exists socket_path then ()
      else begin
        Unix.sleepf 0.05;
        wait_sock (n + 1)
      end
    in
    wait_sock 0;
    (socket_path, pid)

(* Pipeline the corpus over [n_conns] connections and stamp per-request
   latency as replies arrive (select across the connections, so a slow
   connection cannot skew the others' timestamps). *)
let run_daemon_load (socket_path : string) (unique : pair array) (picks : int array) :
    float * float array * string array =
  let conns = Array.init n_conns (fun _ -> Client.connect ~socket_path ()) in
  let send_t = Array.make (Array.length picks) 0.0 in
  let recv_t = Array.make (Array.length picks) 0.0 in
  let verdicts = Array.make (Array.length picks) "" in
  let t0 = Ub_obs.Obs.Clock.now_s () in
  Array.iteri
    (fun qi u ->
      let p = unique.(u) in
      let cl = conns.(qi mod n_conns) in
      send_t.(qi) <- Ub_obs.Obs.Clock.now_s ();
      Client.send cl
        (Wire.Check
           { Wire.id = Some qi;
             mode = "proposed";
             src = p.p_src_text;
             tgt = p.p_tgt_text;
             deadline_s = None;
             enum_only = false;
           }))
    picks;
  let outstanding = ref (Array.length picks) in
  let fd_of i = (conns.(i) : Client.t).Client.fd in
  while !outstanding > 0 do
    let fds = List.init n_conns fd_of in
    match Unix.select fds [] [] 5.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> failwith "serve bench: daemon stalled (5s without a reply)"
    | ready, _, _ ->
      List.iter
        (fun fd ->
          match Wire.recv_reply fd with
          | Some (Wire.Verdict v) -> (
            match v.Wire.r_id with
            | Some qi when qi >= 0 && qi < Array.length picks ->
              recv_t.(qi) <- Ub_obs.Obs.Clock.now_s ();
              verdicts.(qi) <- v.Wire.verdict;
              decr outstanding
            | _ -> failwith "serve bench: reply without a usable id")
          | Some (Wire.Overloaded _) -> failwith "serve bench: rejected during timed run"
          | Some _ -> failwith "serve bench: unexpected reply"
          | None -> failwith "serve bench: daemon closed the connection")
        ready
  done;
  let wall = Ub_obs.Obs.Clock.elapsed_s ~since:t0 in
  Array.iter Client.close conns;
  let lat = Array.init (Array.length picks) (fun i -> recv_t.(i) -. send_t.(i)) in
  (wall, lat, verdicts)

(* A deliberate overload: pipeline more requests than the queue admits
   on one connection and count the rejections.  Every request is a
   *distinct* pair (the function renamed per index) so neither the
   verdict cache nor coalescing can answer it -- each one is real work
   and the queue genuinely fills. *)
let run_overload_burst (socket_path : string) (unique : pair array) : int * int =
  let p = unique.(0) in
  let cl = Client.connect ~socket_path () in
  let n = 800 in
  for i = 0 to n - 1 do
    let rename fn = Printer.func_to_string { fn with Func.name = Printf.sprintf "b%03d" i } in
    Client.send cl
      (Wire.Check
         { Wire.id = Some i;
           mode = "proposed";
           src = rename p.p_src;
           tgt = rename p.p_tgt;
           deadline_s = Some 0.1;
           enum_only = false;
         })
  done;
  let rejected = ref 0 and answered = ref 0 in
  for _ = 1 to n do
    match Client.recv cl with
    | Some (Wire.Overloaded _) -> incr rejected
    | Some (Wire.Verdict _) -> incr answered
    | Some _ | None -> failwith "serve bench: burst reply missing"
  done;
  Client.close cl;
  (!rejected, !answered)

(* ------------------------------------------------------------------ *)
(* Percentiles (exact, from the recorded samples)                      *)
(* ------------------------------------------------------------------ *)

let percentile (sorted : float array) (q : float) : float =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(* ------------------------------------------------------------------ *)
(* The experiment                                                      *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let run ~(jobs : int) ~(out : string) () : bool =
  let dir = Filename.temp_file "ub_serve_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ | Unix.Unix_error _ -> ())
  @@ fun () ->
  Printf.printf "building corpus (seeded, unique pairs sampled to %d queries)...\n%!" n_queries;
  let unique, picks, truth = build_corpus () in
  Printf.printf "corpus: %d unique pairs, %d queries\n%!" (Array.length unique) n_queries;
  let files = write_tmp_pairs dir unique in
  (* --- baseline --- *)
  let baseline_kind, (spawn_wall, spawn_refines) =
    match find_ubc () with
    | Some ubc ->
      Printf.printf "baseline: spawning %s per query...\n%!" ubc;
      ("spawn-ubc", run_spawn_baseline ubc files picks)
    | None ->
      Printf.printf "baseline: bin/ubc.exe not built; fork-per-query fallback\n%!";
      ("fork-self", run_fork_baseline files picks)
  in
  let spawn_qps = float_of_int n_queries /. spawn_wall in
  Printf.printf "baseline (%s): %.2fs wall, %.1f queries/s\n%!" baseline_kind spawn_wall
    spawn_qps;
  (* --- daemon --- *)
  let socket_path, daemon_pid = start_daemon ~jobs ~dir in
  let serve_wall, latencies, serve_verdicts = run_daemon_load socket_path unique picks in
  let serve_qps = float_of_int n_queries /. serve_wall in
  let rejected, burst_answered = run_overload_burst socket_path unique in
  (* one deliberately deadline-exceeded query so the timeout path shows
     up in the stats report -- a fresh (uncached) wide-multiply pair the
     checker cannot settle in 100ms *)
  let timed_out =
    let src =
      "define i64 @hard(i64 %x, i64 %y) {\ne:\n  %m = mul i64 %x, %y\n  ret i64 %m\n}"
    and tgt =
      "define i64 @hard(i64 %x, i64 %y) {\ne:\n  %m = mul i64 %y, %x\n  ret i64 %m\n}"
    in
    Client.with_conn ~socket_path (fun cl ->
        match Client.check cl ~deadline_s:0.1 ~mode:"proposed" ~src ~tgt () with
        | Wire.Verdict { verdict = "timeout"; _ } -> true
        | _ -> false)
  in
  let stats = Client.with_conn ~socket_path (fun cl -> Client.stats cl) in
  Client.with_conn ~socket_path (fun cl ->
      Client.send cl Wire.Shutdown;
      match Client.recv cl with Some Wire.Bye | None -> () | Some _ -> ());
  let rec reap () =
    try ignore (Unix.waitpid [] daemon_pid)
    with Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
  in
  reap ();
  (* --- verdict agreement --- *)
  let mismatches = ref 0 in
  Array.iteri
    (fun qi u ->
      let want = verdict_name truth.(u) in
      if serve_verdicts.(qi) <> want then incr mismatches;
      let want_refines = want = "refines" in
      if spawn_refines.(qi) <> want_refines then incr mismatches)
    picks;
  let verdicts_match = !mismatches = 0 in
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let p50 = percentile sorted 0.50
  and p95 = percentile sorted 0.95
  and p99 = percentile sorted 0.99 in
  let speedup = serve_qps /. spawn_qps in
  Printf.printf
    "daemon: %.2fs wall, %.1f queries/s (%.1fx baseline)\n\
     latency: p50 %.2fms  p95 %.2fms  p99 %.2fms\n\
     coalesced: %d  rejected in burst: %d/%d  deadline timeout observed: %b\n%!"
    serve_wall serve_qps speedup (1000.0 *. p50) (1000.0 *. p95) (1000.0 *. p99)
    stats.Wire.coalesced_total rejected (rejected + burst_answered) timed_out;
  (* --- the JSON record --- *)
  let num f = Json.Num f in
  let int n = Json.Num (float_of_int n) in
  let j =
    Json.Obj
      [ ("schema", Json.Str "ubc-serve-bench-v1");
        ("queries", int n_queries);
        ("unique_pairs", int (Array.length unique));
        ("jobs", int jobs);
        ( "baseline",
          Json.Obj
            [ ("kind", Json.Str baseline_kind); ("wall_s", num spawn_wall);
              ("qps", num spawn_qps) ] );
        ( "serve",
          Json.Obj
            [ ("wall_s", num serve_wall); ("qps", num serve_qps);
              ("p50_ms", num (1000.0 *. p50)); ("p95_ms", num (1000.0 *. p95));
              ("p99_ms", num (1000.0 *. p99));
              ("coalesced", int stats.Wire.coalesced_total);
              ("rejected", int stats.Wire.rejected);
              ("timeouts", int stats.Wire.timeouts);
              ("cache_hit_rate", num stats.Wire.cache_hit_rate);
              ("burst_rejected", int rejected);
              ("deadline_timeout_observed", Json.Bool timed_out) ] );
        ("speedup", num speedup);
        ("required_speedup", num required_speedup);
        ("verdicts_match", Json.Bool verdicts_match);
        ("server_report", stats.Wire.report);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if not verdicts_match then begin
    Printf.printf "SERVE-MISMATCH: %d verdict disagreement(s) between daemon/baseline/direct\n"
      !mismatches;
    false
  end
  else if speedup < required_speedup then begin
    Printf.printf "SERVE-TOO-SLOW: %.1fx < required %.0fx over the spawn baseline\n" speedup
      required_speedup;
    false
  end
  else begin
    Printf.printf "SERVE-OK: identical verdicts, %.1fx the spawn baseline\n" speedup;
    true
  end
