(* T-SOLVER | the solver benchmark harness behind `bench solver`.

   Runs a fixed, seeded corpus of refinement-checker queries — the
   Section 3 matrix under two semantics modes, an enumerated opt-fuzz
   slice, and handcrafted wide-width identities (i8..i32) — straight
   through [Checker.check_sat], recording per-query wall time and the
   decision-procedure counters (conflicts / decisions / propagations,
   CNF vars / clauses, circuit nodes, peak learned-DB size).

   Results go to BENCH_solver.json.  When a baseline recording exists
   (bench/solver_baseline.tsv, captured before the PR-3 solver
   overhaul), the JSON embeds it and reports the geometric-mean
   speedup against it — this file is the perf trajectory of the
   solver stack.  Tasks run through [Ub_exec.Pool], so `-j`/`--timeout`
   apply. *)

open Ub_sem

(* The corpus lives in [Ub_corpus] so the session differential tests
   replay the exact same queries this benchmark times. *)
type query = Ub_corpus.query = {
  qname : string;
  qmode : string; (* Mode.name *)
  qsrc : Ub_ir.Func.t;
  qtgt : Ub_ir.Func.t;
}

type record = {
  rname : string;
  rmode : string;
  rverdict : string; (* "refines" | "counterexample" | "unknown" *)
  rbudget_exceeded : bool;
  rwall_s : float;
  rnodes : int;
  rvars : int;
  rclauses : int;
  rconflicts : int;
  rdecisions : int;
  rpropagations : int;
  rlearned_peak : int;
}

(* Per-query conflict ceiling: generous for the corpus, and the number
   the CI smoke asserts no query exceeds. *)
let conflict_budget = 200_000

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let run_query (q : query) : record =
  let mode =
    match Mode.find q.qmode with
    | Some m -> m
    | None -> invalid_arg ("solver bench: unknown mode " ^ q.qmode)
  in
  let stats = ref Ub_smt.Circuit.Cnf.no_stats in
  let time_once () =
    (* monotonic clock: a wall-clock step (NTP, manual adjustment) during
       a min-of-N loop would otherwise produce negative or skewed minima *)
    let t0 = Ub_obs.Obs.Clock.now_s () in
    let verdict =
      Ub_refine.Checker.check_sat ~max_conflicts:conflict_budget ~stats mode ~src:q.qsrc
        ~tgt:q.qtgt
    in
    (Ub_obs.Obs.Clock.elapsed_s ~since:t0, verdict)
  in
  (* Sub-millisecond queries are at the mercy of a single GC pause or
     scheduler hiccup; re-run those a few times and keep the minimum.
     The checker is deterministic, so verdict and counters agree across
     repetitions. *)
  let wall0, verdict = time_once () in
  let wall =
    if wall0 >= 0.005 then wall0
    else begin
      let best = ref wall0 in
      for _ = 1 to 4 do
        let w, _ = time_once () in
        if w < !best then best := w
      done;
      !best
    end
  in
  let vstr, budget_exceeded =
    match verdict with
    | Ub_refine.Checker.Refines -> ("refines", false)
    | Ub_refine.Checker.Counterexample _ -> ("counterexample", false)
    | Ub_refine.Checker.Unknown r -> ("unknown", r = "SAT budget exceeded")
  in
  let s = !stats in
  { rname = q.qname;
    rmode = q.qmode;
    rverdict = vstr;
    rbudget_exceeded = budget_exceeded;
    rwall_s = wall;
    rnodes = s.Ub_smt.Circuit.Cnf.circuit_nodes;
    rvars = s.Ub_smt.Circuit.Cnf.cnf_vars;
    rclauses = s.Ub_smt.Circuit.Cnf.cnf_clauses;
    rconflicts = s.Ub_smt.Circuit.Cnf.conflicts;
    rdecisions = s.Ub_smt.Circuit.Cnf.decisions;
    rpropagations = s.Ub_smt.Circuit.Cnf.propagations;
    rlearned_peak = s.Ub_smt.Circuit.Cnf.learned_peak;
  }

(* ------------------------------------------------------------------ *)
(* Baseline TSV (one line per query; easy to parse without a JSON dep)  *)
(* ------------------------------------------------------------------ *)

let record_to_tsv (r : record) : string =
  Printf.sprintf "%s\t%s\t%s\t%.6f\t%d\t%d\t%d\t%d\t%d\t%d\t%d" r.rname r.rmode r.rverdict
    r.rwall_s r.rnodes r.rvars r.rclauses r.rconflicts r.rdecisions r.rpropagations
    r.rlearned_peak

let record_of_tsv (line : string) : record option =
  match String.split_on_char '\t' line with
  | [ name; mode; verdict; wall; nodes; vars; clauses; confl; dec; prop; peak ] -> (
    try
      Some
        { rname = name; rmode = mode; rverdict = verdict; rbudget_exceeded = false;
          rwall_s = float_of_string wall; rnodes = int_of_string nodes;
          rvars = int_of_string vars; rclauses = int_of_string clauses;
          rconflicts = int_of_string confl; rdecisions = int_of_string dec;
          rpropagations = int_of_string prop; rlearned_peak = int_of_string peak;
        }
    with _ -> None)
  | _ -> None

let save_baseline path (records : record list) =
  let oc = open_out path in
  output_string oc "# bench solver baseline: name mode verdict wall_s circuit_nodes cnf_vars cnf_clauses conflicts decisions propagations learned_peak\n";
  List.iter (fun r -> output_string oc (record_to_tsv r ^ "\n")) records;
  close_out oc

let load_baseline path : record list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         let line = input_line ic in
         if line <> "" && line.[0] <> '#' then
           match record_of_tsv line with
           | Some r -> records := r :: !records
           | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !records
  end

(* ------------------------------------------------------------------ *)
(* Aggregation + JSON                                                   *)
(* ------------------------------------------------------------------ *)

let geomean (xs : float list) : float =
  match xs with
  | [] -> 0.0
  | _ ->
    let logs = List.map (fun x -> log (max x 1e-7)) xs in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))

type summary = {
  n : int;
  wall_total : float;
  wall_geomean : float;
  vars_total : int;
  clauses_total : int;
  conflicts_total : int;
  propagations_total : int;
  learned_peak_max : int;
  over_budget : int;
}

let summarize (records : record list) : summary =
  { n = List.length records;
    wall_total = List.fold_left (fun a r -> a +. r.rwall_s) 0.0 records;
    wall_geomean = geomean (List.map (fun r -> r.rwall_s) records);
    vars_total = List.fold_left (fun a r -> a + r.rvars) 0 records;
    clauses_total = List.fold_left (fun a r -> a + r.rclauses) 0 records;
    conflicts_total = List.fold_left (fun a r -> a + r.rconflicts) 0 records;
    propagations_total = List.fold_left (fun a r -> a + r.rpropagations) 0 records;
    learned_peak_max = List.fold_left (fun a r -> max a r.rlearned_peak) 0 records;
    over_budget = List.fold_left (fun a r -> if r.rbudget_exceeded then a + 1 else a) 0 records;
  }

let json_of_record (r : record) : string =
  Printf.sprintf
    "{\"name\":\"%s\",\"mode\":\"%s\",\"verdict\":\"%s\",\"wall_s\":%.6f,\"circuit_nodes\":%d,\"cnf_vars\":%d,\"cnf_clauses\":%d,\"conflicts\":%d,\"decisions\":%d,\"propagations\":%d,\"learned_peak\":%d}"
    r.rname r.rmode r.rverdict r.rwall_s r.rnodes r.rvars r.rclauses r.rconflicts
    r.rdecisions r.rpropagations r.rlearned_peak

let json_of_summary (s : summary) : string =
  Printf.sprintf
    "{\"queries\":%d,\"wall_s_total\":%.6f,\"wall_s_geomean\":%.6f,\"cnf_vars_total\":%d,\"cnf_clauses_total\":%d,\"conflicts_total\":%d,\"propagations_total\":%d,\"learned_peak_max\":%d,\"over_budget\":%d}"
    s.n s.wall_total s.wall_geomean s.vars_total s.clauses_total s.conflicts_total
    s.propagations_total s.learned_peak_max s.over_budget

(* Pair up current and baseline records by (name, mode) and compute the
   before/after ratios the acceptance criteria are stated in. *)
let vs_baseline (current : record list) (baseline : record list) : string option =
  let key r = (r.rname, r.rmode) in
  let base = List.map (fun r -> (key r, r)) baseline in
  let paired =
    List.filter_map
      (fun r -> Option.map (fun b -> (r, b)) (List.assoc_opt (key r) base))
      current
  in
  if paired = [] then None
  else begin
    let speedups = List.map (fun ((r : record), b) -> b.rwall_s /. max r.rwall_s 1e-7) paired in
    let sum f = List.fold_left (fun a p -> a + f p) 0 paired in
    let b_vars = sum (fun (_, b) -> b.rvars) and c_vars = sum (fun (r, _) -> r.rvars) in
    let b_cls = sum (fun (_, b) -> b.rclauses) and c_cls = sum (fun (r, _) -> r.rclauses) in
    let shrink before now =
      if before = 0 then 0.0
      else 100.0 *. (1.0 -. (float_of_int now /. float_of_int before))
    in
    Some
      (Printf.sprintf
         "{\"paired_queries\":%d,\"wall_geomean_speedup\":%.3f,\"cnf_vars_shrink_pct\":%.1f,\"cnf_clauses_shrink_pct\":%.1f}"
         (List.length paired) (geomean speedups) (shrink b_vars c_vars) (shrink b_cls c_cls))
  end

(* ------------------------------------------------------------------ *)
(* Incremental-session differential mode                               *)
(* ------------------------------------------------------------------ *)

(* Multi-query workloads through one persistent [Checker.session] vs a
   fresh solver per query.  Each stream is replayed three times
   back-to-back (re-solving near-identical queries against a warm
   session is where hash-consed sharing and verdict memoization pay;
   the serve daemon and the shrinker see exactly this shape), both
   sides are timed as min-of-reps, and the verdict *classes* must
   match query by query — counterexample models may legitimately
   differ between solvers, the verdicts may not.  The geomean of
   per-stream speedups is gated. *)

let session_gate = 1.5
let session_reps = 3

(* Sub-50ms streams are noise-dominated at 3 reps: a single scheduler
   hiccup moves the min by tens of percent.  Give them triple the reps
   so min-of-reps converges; the heavy streams keep 3. *)
let session_reps_cheap = 9
let cheap_stream_s = 0.05

type stream_result = {
  sr_name : string;
  sr_queries : int; (* per workload: stream length x 3 replays *)
  sr_reps : int;
  sr_wall_scratch : float;
  sr_wall_session : float;
  sr_speedup : float;
  sr_identical : bool;
}

let verdict_class = function
  | Ub_refine.Checker.Refines -> "refines"
  | Ub_refine.Checker.Counterexample _ -> "counterexample"
  | Ub_refine.Checker.Unknown _ -> "unknown"

let session_streams () : Ub_corpus.stream list =
  Ub_corpus.streams () @ [ Ub_corpus.hunt_stream ~entry:"mul2-add-dup" () ]

let run_stream (s : Ub_corpus.stream) : stream_result =
  let qs =
    Array.of_list (s.Ub_corpus.s_queries @ s.Ub_corpus.s_queries @ s.Ub_corpus.s_queries)
  in
  let modes =
    Array.map
      (fun (q : Ub_corpus.query) ->
        match Mode.find q.Ub_corpus.qmode with
        | Some m -> m
        | None -> invalid_arg ("solver bench: unknown mode " ^ q.Ub_corpus.qmode))
      qs
  in
  let replay ~session () =
    let t0 = Ub_obs.Obs.Clock.now_s () in
    let verdicts =
      Array.mapi
        (fun i (q : Ub_corpus.query) ->
          verdict_class
            (Ub_refine.Checker.check_sat ~max_conflicts:conflict_budget ?session modes.(i)
               ~src:q.Ub_corpus.qsrc ~tgt:q.Ub_corpus.qtgt))
        qs
    in
    (Ub_obs.Obs.Clock.elapsed_s ~since:t0, verdicts)
  in
  (* warm-up replay: warms allocator and code paths, and its wall
     estimate picks the rep count; it is not counted in the mins *)
  let estimate, _ = replay ~session:None () in
  let reps = if estimate < cheap_stream_s then session_reps_cheap else session_reps in
  let best_scratch = ref infinity and best_session = ref infinity in
  let identical = ref true in
  for _rep = 1 to reps do
    let ws, vs = replay ~session:None () in
    (* fresh session per rep: reps measure the same cold-to-warm curve *)
    let session = Ub_refine.Checker.create_session () in
    let wn, vn = replay ~session:(Some session) () in
    if ws < !best_scratch then best_scratch := ws;
    if wn < !best_session then best_session := wn;
    if vs <> vn then identical := false
  done;
  { sr_name = s.Ub_corpus.s_name;
    sr_queries = Array.length qs;
    sr_reps = reps;
    sr_wall_scratch = !best_scratch;
    sr_wall_session = !best_session;
    sr_speedup = !best_scratch /. max !best_session 1e-9;
    sr_identical = !identical;
  }

let json_of_stream_result (r : stream_result) : string =
  Printf.sprintf
    "{\"stream\":\"%s\",\"queries\":%d,\"reps\":%d,\"wall_s_scratch\":%.6f,\"wall_s_session\":%.6f,\"speedup\":%.3f,\"verdicts_identical\":%b}"
    r.sr_name r.sr_queries r.sr_reps r.sr_wall_scratch r.sr_wall_session r.sr_speedup
    r.sr_identical

(* Returns the "sessions" JSON block and whether the gate passed. *)
let run_sessions () : string * bool =
  let streams = session_streams () in
  Printf.printf
    "\nincremental sessions: %d streams, each replayed x3, min over %d-%d reps (adaptive), gate %.1fx\n%!"
    (List.length streams) session_reps session_reps_cheap session_gate;
  let results = List.map run_stream streams in
  List.iter
    (fun r ->
      Printf.printf "  %-20s %4d queries  scratch %8.1fms  session %8.1fms  %5.2fx  %s\n"
        r.sr_name r.sr_queries (1000.0 *. r.sr_wall_scratch) (1000.0 *. r.sr_wall_session)
        r.sr_speedup
        (if r.sr_identical then "verdicts-identical" else "VERDICT-DIVERGENCE"))
    results;
  let g = geomean (List.map (fun r -> r.sr_speedup) results) in
  let identical = List.for_all (fun r -> r.sr_identical) results in
  let pass = identical && g >= session_gate in
  Printf.printf "session geomean speedup: %.2fx (gate %.1fx)\n" g session_gate;
  if pass then Printf.printf "SESSIONS-OK: verdict-identical, geomean %.2fx >= %.1fx\n" g session_gate
  else if not identical then
    Printf.printf "SESSIONS-FAIL: verdict divergence between scratch and session solving\n"
  else Printf.printf "SESSIONS-FAIL: geomean %.2fx below the %.1fx gate\n" g session_gate;
  let json =
    Printf.sprintf "{\"reps\":%d,\"gate\":%.2f,\"geomean_speedup\":%.3f,\"verdicts_identical\":%b,\"pass\":%b,\"streams\":[%s]}"
      session_reps session_gate g identical pass
      (String.concat "," (List.map json_of_stream_result results))
  in
  (json, pass)

(* ------------------------------------------------------------------ *)
(* Entry point; returns false when a query blew the conflict budget     *)
(* or (with ~sessions) the incremental-session gate failed.             *)
(* ------------------------------------------------------------------ *)

let run ~(jobs : int) ?timeout_s ?(sessions = false) ~(out : string) ~(baseline : string)
    ?save_baseline_to () : bool =
  let queries = Array.of_list (Ub_corpus.corpus ()) in
  Printf.printf "corpus: %d checker queries (matrix x 2 modes, opt-fuzz slice, wide-width identities)\n%!"
    (Array.length queries);
  let results, pool = Ub_exec.Pool.map_stats ~jobs ?timeout_s run_query queries in
  let records =
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Ub_exec.Pool.Done rec_ -> rec_
           | Ub_exec.Pool.Crashed msg ->
             Printf.printf "CRASH %s: %s\n" queries.(i).qname msg;
             { rname = queries.(i).qname; rmode = queries.(i).qmode; rverdict = "crashed";
               rbudget_exceeded = true; rwall_s = 0.0; rnodes = 0; rvars = 0; rclauses = 0;
               rconflicts = 0; rdecisions = 0; rpropagations = 0; rlearned_peak = 0 }
           | Ub_exec.Pool.Timed_out ->
             { rname = queries.(i).qname; rmode = queries.(i).qmode; rverdict = "timeout";
               rbudget_exceeded = true; rwall_s = 0.0; rnodes = 0; rvars = 0; rclauses = 0;
               rconflicts = 0; rdecisions = 0; rpropagations = 0; rlearned_peak = 0 })
         results)
  in
  let s = summarize records in
  Printf.printf
    "queries: %d  wall total: %.3fs  geomean: %.2fms\n\
     cnf: %d vars, %d clauses (totals)  conflicts: %d  propagations: %d  peak learned DB: %d\n"
    s.n s.wall_total (1000.0 *. s.wall_geomean) s.vars_total s.clauses_total
    s.conflicts_total s.propagations_total s.learned_peak_max;
  (match save_baseline_to with
  | Some p ->
    save_baseline p records;
    Printf.printf "baseline recorded: %s\n" p
  | None -> ());
  let base = load_baseline baseline in
  let vs = vs_baseline records base in
  (* sessions run single-threaded in-process: the differential replay
     compares warm-vs-cold solver state, which forked pool workers
     would throw away *)
  let sess = if sessions then Some (run_sessions ()) else None in
  let oc = open_out out in
  output_string oc "{\n  \"schema\": \"ubc-solver-bench-v1\",\n";
  Printf.fprintf oc "  \"conflict_budget\": %d,\n" conflict_budget;
  Printf.fprintf oc "  \"summary\": %s,\n" (json_of_summary s);
  (* the aggregated telemetry for this run: per-query solver counters
     absorbed back from the pool workers, cache hit rate, task
     lifecycle.  See DESIGN.md section 10. *)
  Printf.fprintf oc "  \"obs_report\": %s,\n" (Ub_obs.Obs.report_json ());
  (match sess with
  | Some (j, _) -> Printf.fprintf oc "  \"sessions\": %s,\n" j
  | None -> ());
  (match vs with
  | Some j ->
    Printf.fprintf oc "  \"vs_baseline\": %s,\n" j;
    Printf.fprintf oc "  \"baseline_summary\": %s,\n" (json_of_summary (summarize base))
  | None -> ());
  output_string oc "  \"queries\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    %s%s\n" (json_of_record r)
        (if i = List.length records - 1 then "" else ","))
    records;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out;
  (match vs with
  | Some j -> Printf.printf "vs baseline: %s\n" j
  | None -> Printf.printf "(no baseline at %s; speedup not computed)\n" baseline);
  Format.printf "%a@." Ub_exec.Pool.pp_stats pool;
  let budget_ok =
    if s.over_budget > 0 then begin
      Printf.printf "BUDGET-EXCEEDED: %d quer(ies) passed the %d-conflict budget\n"
        s.over_budget conflict_budget;
      false
    end
    else begin
      Printf.printf "BUDGET-OK: no query exceeded %d conflicts\n" conflict_budget;
      true
    end
  in
  budget_ok && match sess with Some (_, ok) -> ok | None -> true
