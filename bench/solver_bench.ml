(* T-SOLVER | the solver benchmark harness behind `bench solver`.

   Runs a fixed, seeded corpus of refinement-checker queries — the
   Section 3 matrix under two semantics modes, an enumerated opt-fuzz
   slice, and handcrafted wide-width identities (i8..i32) — straight
   through [Checker.check_sat], recording per-query wall time and the
   decision-procedure counters (conflicts / decisions / propagations,
   CNF vars / clauses, circuit nodes, peak learned-DB size).

   Results go to BENCH_solver.json.  When a baseline recording exists
   (bench/solver_baseline.tsv, captured before the PR-3 solver
   overhaul), the JSON embeds it and reports the geometric-mean
   speedup against it — this file is the perf trajectory of the
   solver stack.  Tasks run through [Ub_exec.Pool], so `-j`/`--timeout`
   apply. *)

open Ub_ir
open Ub_sem

type query = {
  qname : string;
  qmode : string; (* Mode.name *)
  qsrc : Func.t;
  qtgt : Func.t;
}

type record = {
  rname : string;
  rmode : string;
  rverdict : string; (* "refines" | "counterexample" | "unknown" *)
  rbudget_exceeded : bool;
  rwall_s : float;
  rnodes : int;
  rvars : int;
  rclauses : int;
  rconflicts : int;
  rdecisions : int;
  rpropagations : int;
  rlearned_peak : int;
}

(* Per-query conflict ceiling: generous for the corpus, and the number
   the CI smoke asserts no query exceeds. *)
let conflict_budget = 200_000

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let fn = Parser.parse_func_string

let handcrafted : (string * string * string * string) list =
  (* (name, mode, src, tgt) — identities across widths; the sound ones
     make the solver produce UNSAT proofs, which is where CDCL earns
     its keep; a couple are deliberately refuted (SAT). *)
  [ ( "mul2-to-add-i16", "proposed",
      {|define i16 @f(i16 %x) {
e:
  %y = mul i16 %x, 2
  ret i16 %y
}|},
      {|define i16 @f(i16 %x) {
e:
  %y = add i16 %x, %x
  ret i16 %y
}|} );
    ( "mul-comm-i8", "proposed",
      {|define i8 @f(i8 %a, i8 %b) {
e:
  %y = mul i8 %a, %b
  ret i8 %y
}|},
      {|define i8 @f(i8 %a, i8 %b) {
e:
  %y = mul i8 %b, %a
  ret i8 %y
}|} );
    ( "mul3-to-addchain-i8", "proposed",
      {|define i8 @f(i8 %x) {
e:
  %y = mul i8 %x, 3
  ret i8 %y
}|},
      {|define i8 @f(i8 %x) {
e:
  %t = add i8 %x, %x
  %y = add i8 %t, %x
  ret i8 %y
}|} );
    ( "reassoc-i16", "proposed",
      {|define i16 @f(i16 %a, i16 %b, i16 %c) {
e:
  %t = add i16 %a, %b
  %y = add i16 %t, %c
  ret i16 %y
}|},
      {|define i16 @f(i16 %a, i16 %b, i16 %c) {
e:
  %t = add i16 %b, %c
  %y = add i16 %a, %t
  ret i16 %y
}|} );
    ( "shl1-to-mul2-i16", "proposed",
      {|define i16 @f(i16 %x) {
e:
  %y = shl i16 %x, 1
  ret i16 %y
}|},
      {|define i16 @f(i16 %x) {
e:
  %y = mul i16 %x, 2
  ret i16 %y
}|} );
    ( "xor-cancel-i32", "proposed",
      {|define i32 @f(i32 %a, i32 %b) {
e:
  %t = xor i32 %a, %b
  %y = xor i32 %t, %b
  ret i32 %y
}|},
      {|define i32 @f(i32 %a, i32 %b) {
e:
  ret i32 %a
}|} );
    ( "demorgan-i32", "proposed",
      {|define i32 @f(i32 %a, i32 %b) {
e:
  %na = xor i32 %a, -1
  %nb = xor i32 %b, -1
  %y = and i32 %na, %nb
  ret i32 %y
}|},
      {|define i32 @f(i32 %a, i32 %b) {
e:
  %o = or i32 %a, %b
  %y = xor i32 %o, -1
  ret i32 %y
}|} );
    ( "sub-to-neg-add-i16", "proposed",
      {|define i16 @f(i16 %a, i16 %x) {
e:
  %y = sub i16 %a, %x
  ret i16 %y
}|},
      {|define i16 @f(i16 %a, i16 %x) {
e:
  %n = sub i16 0, %x
  %y = add i16 %a, %n
  ret i16 %y
}|} );
    ( "select-min-flip-i16", "proposed",
      {|define i16 @f(i16 %a, i16 %b) {
e:
  %c = icmp slt i16 %a, %b
  %y = select i1 %c, i16 %a, i16 %b
  ret i16 %y
}|},
      {|define i16 @f(i16 %a, i16 %b) {
e:
  %c = icmp sge i16 %a, %b
  %y = select i1 %c, i16 %b, i16 %a
  ret i16 %y
}|} );
    ( "icmp-add-nsw-i16", "proposed",
      {|define i1 @f(i16 %x) {
e:
  %y = add nsw i16 %x, 1
  %c = icmp slt i16 %x, %y
  ret i1 %c
}|},
      {|define i1 @f(i16 %x) {
e:
  ret i1 1
}|} );
    (* refuted identities: the solver must find a model *)
    ( "icmp-add-wrapping-i16-SAT", "proposed",
      {|define i1 @f(i16 %x) {
e:
  %y = add i16 %x, 1
  %c = icmp slt i16 %x, %y
  ret i1 %c
}|},
      {|define i1 @f(i16 %x) {
e:
  ret i1 1
}|} );
    ( "mul2-to-add-undef-i8-SAT", "old-unswitch",
      {|define i8 @f(i8 %x) {
e:
  %y = mul i8 %x, 2
  ret i8 %y
}|},
      {|define i8 @f(i8 %x) {
e:
  %y = add i8 %x, %x
  ret i8 %y
}|} );
  ]

(* Enumerated opt-fuzz slice: every changed (fn, optimized fn) pair from
   the first [limit] 3-instruction i2 functions, like T-OPTFUZZ does,
   capped to keep the corpus bounded.  Enumeration order is
   deterministic, so this is a fixed corpus. *)
let fuzz_pairs () : query list =
  let params =
    { Ub_fuzz.Gen.default_params with Ub_fuzz.Gen.n_insns = 3 }
  in
  let pairs = ref [] in
  let n = ref 0 in
  let _ =
    Ub_fuzz.Gen.enumerate ~limit:1_500 params (fun f ->
        if !n < 40 then begin
          let f' = Ub_opt.Pass.run_pipeline Ub_opt.Pass.prototype Ub_opt.Pipeline.fuzz_passes f in
          if f' <> f then begin
            incr n;
            pairs :=
              { qname = Printf.sprintf "optfuzz3-%03d" !n;
                qmode = "proposed";
                qsrc = f;
                qtgt = f';
              }
              :: !pairs
          end
        end)
  in
  List.rev !pairs

let corpus () : query list =
  let matrix =
    List.concat_map
      (fun (e : Ub_refine.Matrix.entry) ->
        (* enum-only entries (explicit inputs) are outside check_sat's
           fragment; skip them rather than benchmark a constant-time
           "not encodable" bailout *)
        if e.Ub_refine.Matrix.inputs <> None then []
        else
          List.map
            (fun mode_name ->
              { qname = "matrix-" ^ e.Ub_refine.Matrix.id;
                qmode = mode_name;
                qsrc = fn e.Ub_refine.Matrix.src;
                qtgt = fn e.Ub_refine.Matrix.tgt;
              })
            [ "proposed"; "old-langref" ])
      Ub_refine.Matrix.all_entries
  in
  let hand =
    List.map
      (fun (name, mode, src, tgt) ->
        { qname = name; qmode = mode; qsrc = fn src; qtgt = fn tgt })
      handcrafted
  in
  matrix @ hand @ fuzz_pairs ()

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

let run_query (q : query) : record =
  let mode =
    match Mode.find q.qmode with
    | Some m -> m
    | None -> invalid_arg ("solver bench: unknown mode " ^ q.qmode)
  in
  let stats = ref Ub_smt.Circuit.Cnf.no_stats in
  let time_once () =
    (* monotonic clock: a wall-clock step (NTP, manual adjustment) during
       a min-of-N loop would otherwise produce negative or skewed minima *)
    let t0 = Ub_obs.Obs.Clock.now_s () in
    let verdict =
      Ub_refine.Checker.check_sat ~max_conflicts:conflict_budget ~stats mode ~src:q.qsrc
        ~tgt:q.qtgt
    in
    (Ub_obs.Obs.Clock.elapsed_s ~since:t0, verdict)
  in
  (* Sub-millisecond queries are at the mercy of a single GC pause or
     scheduler hiccup; re-run those a few times and keep the minimum.
     The checker is deterministic, so verdict and counters agree across
     repetitions. *)
  let wall0, verdict = time_once () in
  let wall =
    if wall0 >= 0.005 then wall0
    else begin
      let best = ref wall0 in
      for _ = 1 to 4 do
        let w, _ = time_once () in
        if w < !best then best := w
      done;
      !best
    end
  in
  let vstr, budget_exceeded =
    match verdict with
    | Ub_refine.Checker.Refines -> ("refines", false)
    | Ub_refine.Checker.Counterexample _ -> ("counterexample", false)
    | Ub_refine.Checker.Unknown r -> ("unknown", r = "SAT budget exceeded")
  in
  let s = !stats in
  { rname = q.qname;
    rmode = q.qmode;
    rverdict = vstr;
    rbudget_exceeded = budget_exceeded;
    rwall_s = wall;
    rnodes = s.Ub_smt.Circuit.Cnf.circuit_nodes;
    rvars = s.Ub_smt.Circuit.Cnf.cnf_vars;
    rclauses = s.Ub_smt.Circuit.Cnf.cnf_clauses;
    rconflicts = s.Ub_smt.Circuit.Cnf.conflicts;
    rdecisions = s.Ub_smt.Circuit.Cnf.decisions;
    rpropagations = s.Ub_smt.Circuit.Cnf.propagations;
    rlearned_peak = s.Ub_smt.Circuit.Cnf.learned_peak;
  }

(* ------------------------------------------------------------------ *)
(* Baseline TSV (one line per query; easy to parse without a JSON dep)  *)
(* ------------------------------------------------------------------ *)

let record_to_tsv (r : record) : string =
  Printf.sprintf "%s\t%s\t%s\t%.6f\t%d\t%d\t%d\t%d\t%d\t%d\t%d" r.rname r.rmode r.rverdict
    r.rwall_s r.rnodes r.rvars r.rclauses r.rconflicts r.rdecisions r.rpropagations
    r.rlearned_peak

let record_of_tsv (line : string) : record option =
  match String.split_on_char '\t' line with
  | [ name; mode; verdict; wall; nodes; vars; clauses; confl; dec; prop; peak ] -> (
    try
      Some
        { rname = name; rmode = mode; rverdict = verdict; rbudget_exceeded = false;
          rwall_s = float_of_string wall; rnodes = int_of_string nodes;
          rvars = int_of_string vars; rclauses = int_of_string clauses;
          rconflicts = int_of_string confl; rdecisions = int_of_string dec;
          rpropagations = int_of_string prop; rlearned_peak = int_of_string peak;
        }
    with _ -> None)
  | _ -> None

let save_baseline path (records : record list) =
  let oc = open_out path in
  output_string oc "# bench solver baseline: name mode verdict wall_s circuit_nodes cnf_vars cnf_clauses conflicts decisions propagations learned_peak\n";
  List.iter (fun r -> output_string oc (record_to_tsv r ^ "\n")) records;
  close_out oc

let load_baseline path : record list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let records = ref [] in
    (try
       while true do
         let line = input_line ic in
         if line <> "" && line.[0] <> '#' then
           match record_of_tsv line with
           | Some r -> records := r :: !records
           | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !records
  end

(* ------------------------------------------------------------------ *)
(* Aggregation + JSON                                                   *)
(* ------------------------------------------------------------------ *)

let geomean (xs : float list) : float =
  match xs with
  | [] -> 0.0
  | _ ->
    let logs = List.map (fun x -> log (max x 1e-7)) xs in
    exp (List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs))

type summary = {
  n : int;
  wall_total : float;
  wall_geomean : float;
  vars_total : int;
  clauses_total : int;
  conflicts_total : int;
  propagations_total : int;
  learned_peak_max : int;
  over_budget : int;
}

let summarize (records : record list) : summary =
  { n = List.length records;
    wall_total = List.fold_left (fun a r -> a +. r.rwall_s) 0.0 records;
    wall_geomean = geomean (List.map (fun r -> r.rwall_s) records);
    vars_total = List.fold_left (fun a r -> a + r.rvars) 0 records;
    clauses_total = List.fold_left (fun a r -> a + r.rclauses) 0 records;
    conflicts_total = List.fold_left (fun a r -> a + r.rconflicts) 0 records;
    propagations_total = List.fold_left (fun a r -> a + r.rpropagations) 0 records;
    learned_peak_max = List.fold_left (fun a r -> max a r.rlearned_peak) 0 records;
    over_budget = List.fold_left (fun a r -> if r.rbudget_exceeded then a + 1 else a) 0 records;
  }

let json_of_record (r : record) : string =
  Printf.sprintf
    "{\"name\":\"%s\",\"mode\":\"%s\",\"verdict\":\"%s\",\"wall_s\":%.6f,\"circuit_nodes\":%d,\"cnf_vars\":%d,\"cnf_clauses\":%d,\"conflicts\":%d,\"decisions\":%d,\"propagations\":%d,\"learned_peak\":%d}"
    r.rname r.rmode r.rverdict r.rwall_s r.rnodes r.rvars r.rclauses r.rconflicts
    r.rdecisions r.rpropagations r.rlearned_peak

let json_of_summary (s : summary) : string =
  Printf.sprintf
    "{\"queries\":%d,\"wall_s_total\":%.6f,\"wall_s_geomean\":%.6f,\"cnf_vars_total\":%d,\"cnf_clauses_total\":%d,\"conflicts_total\":%d,\"propagations_total\":%d,\"learned_peak_max\":%d,\"over_budget\":%d}"
    s.n s.wall_total s.wall_geomean s.vars_total s.clauses_total s.conflicts_total
    s.propagations_total s.learned_peak_max s.over_budget

(* Pair up current and baseline records by (name, mode) and compute the
   before/after ratios the acceptance criteria are stated in. *)
let vs_baseline (current : record list) (baseline : record list) : string option =
  let key r = (r.rname, r.rmode) in
  let base = List.map (fun r -> (key r, r)) baseline in
  let paired =
    List.filter_map
      (fun r -> Option.map (fun b -> (r, b)) (List.assoc_opt (key r) base))
      current
  in
  if paired = [] then None
  else begin
    let speedups = List.map (fun ((r : record), b) -> b.rwall_s /. max r.rwall_s 1e-7) paired in
    let sum f = List.fold_left (fun a p -> a + f p) 0 paired in
    let b_vars = sum (fun (_, b) -> b.rvars) and c_vars = sum (fun (r, _) -> r.rvars) in
    let b_cls = sum (fun (_, b) -> b.rclauses) and c_cls = sum (fun (r, _) -> r.rclauses) in
    let shrink before now =
      if before = 0 then 0.0
      else 100.0 *. (1.0 -. (float_of_int now /. float_of_int before))
    in
    Some
      (Printf.sprintf
         "{\"paired_queries\":%d,\"wall_geomean_speedup\":%.3f,\"cnf_vars_shrink_pct\":%.1f,\"cnf_clauses_shrink_pct\":%.1f}"
         (List.length paired) (geomean speedups) (shrink b_vars c_vars) (shrink b_cls c_cls))
  end

(* ------------------------------------------------------------------ *)
(* Entry point; returns false when a query blew the conflict budget.    *)
(* ------------------------------------------------------------------ *)

let run ~(jobs : int) ?timeout_s ~(out : string) ~(baseline : string)
    ?save_baseline_to () : bool =
  let queries = Array.of_list (corpus ()) in
  Printf.printf "corpus: %d checker queries (matrix x 2 modes, opt-fuzz slice, wide-width identities)\n%!"
    (Array.length queries);
  let results, pool = Ub_exec.Pool.map_stats ~jobs ?timeout_s run_query queries in
  let records =
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Ub_exec.Pool.Done rec_ -> rec_
           | Ub_exec.Pool.Crashed msg ->
             Printf.printf "CRASH %s: %s\n" queries.(i).qname msg;
             { rname = queries.(i).qname; rmode = queries.(i).qmode; rverdict = "crashed";
               rbudget_exceeded = true; rwall_s = 0.0; rnodes = 0; rvars = 0; rclauses = 0;
               rconflicts = 0; rdecisions = 0; rpropagations = 0; rlearned_peak = 0 }
           | Ub_exec.Pool.Timed_out ->
             { rname = queries.(i).qname; rmode = queries.(i).qmode; rverdict = "timeout";
               rbudget_exceeded = true; rwall_s = 0.0; rnodes = 0; rvars = 0; rclauses = 0;
               rconflicts = 0; rdecisions = 0; rpropagations = 0; rlearned_peak = 0 })
         results)
  in
  let s = summarize records in
  Printf.printf
    "queries: %d  wall total: %.3fs  geomean: %.2fms\n\
     cnf: %d vars, %d clauses (totals)  conflicts: %d  propagations: %d  peak learned DB: %d\n"
    s.n s.wall_total (1000.0 *. s.wall_geomean) s.vars_total s.clauses_total
    s.conflicts_total s.propagations_total s.learned_peak_max;
  (match save_baseline_to with
  | Some p ->
    save_baseline p records;
    Printf.printf "baseline recorded: %s\n" p
  | None -> ());
  let base = load_baseline baseline in
  let vs = vs_baseline records base in
  let oc = open_out out in
  output_string oc "{\n  \"schema\": \"ubc-solver-bench-v1\",\n";
  Printf.fprintf oc "  \"conflict_budget\": %d,\n" conflict_budget;
  Printf.fprintf oc "  \"summary\": %s,\n" (json_of_summary s);
  (* the aggregated telemetry for this run: per-query solver counters
     absorbed back from the pool workers, cache hit rate, task
     lifecycle.  See DESIGN.md section 10. *)
  Printf.fprintf oc "  \"obs_report\": %s,\n" (Ub_obs.Obs.report_json ());
  (match vs with
  | Some j ->
    Printf.fprintf oc "  \"vs_baseline\": %s,\n" j;
    Printf.fprintf oc "  \"baseline_summary\": %s,\n" (json_of_summary (summarize base))
  | None -> ());
  output_string oc "  \"queries\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc "    %s%s\n" (json_of_record r)
        (if i = List.length records - 1 then "" else ","))
    records;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out;
  (match vs with
  | Some j -> Printf.printf "vs baseline: %s\n" j
  | None -> Printf.printf "(no baseline at %s; speedup not computed)\n" baseline);
  Format.printf "%a@." Ub_exec.Pool.pp_stats pool;
  if s.over_budget > 0 then begin
    Printf.printf "BUDGET-EXCEEDED: %d quer(ies) passed the %d-conflict budget\n" s.over_budget
      conflict_budget;
    false
  end
  else begin
    Printf.printf "BUDGET-OK: no query exceeded %d conflicts\n" conflict_budget;
    true
  end
