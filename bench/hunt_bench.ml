(* `bench hunt`: the hunting farm's recall benchmark.

   For every entry in the injected-bug catalog, run an isolated
   mini-campaign (inject-only lanes, the entry's modes, a corpus with
   whatever the entry needs) under a committed seed and program budget,
   and require the campaign to rediscover the entry.  A final clean
   campaign runs the real prototype pipeline under the proposed
   semantics and must find nothing.

   Writes BENCH_hunt.json: per-entry recall, global dedup ratio and
   bugs/CPU-hour.  Returns false (failing the bench run) if any entry
   is missed, the clean campaign finds a bug, or any work was dropped. *)

module Hunt = Ub_hunt.Hunt
module Json = Ub_serve.Json

(* The committed seed: recall below is a deterministic number. *)
let hunt_seed = 20170601

(* Stop each per-entry campaign after this many raw findings: dedup
   statistics stay meaningful while the shrinker does not grind through
   hundreds of duplicates.  The cap is reported, never silent. *)
let findings_cap = 24

let run ~(jobs : int) ?(timeout_s : float option) ~(programs : int) ~(out : string) () :
    bool =
  Printf.printf "seed %d, %d program(s) per entry, findings capped at %d per entry\n\n"
    hunt_seed programs findings_cap;
  Printf.printf "%-18s %-6s %-6s %8s %7s %7s %8s %8s  %s\n" "entry" "paper" "found"
    "findings" "unique" "insns" "checks" "dropped" "cpu";
  let entry_results =
    List.map
      (fun (e : Ub_opt.Inject.entry) ->
        let cfg = Hunt.entry_config ~seed:hunt_seed ~programs e in
        let cfg =
          { cfg with Hunt.jobs; timeout_s; stop_after = Some findings_cap }
        in
        let rep = Hunt.run cfg in
        let witness_insns =
          List.fold_left
            (fun m (f : Hunt.finding) -> max m f.Hunt.final_insns)
            0 rep.Hunt.r_uniques
        in
        let found = rep.Hunt.r_unique > 0 in
        Printf.printf "%-18s %-6s %-6s %8d %7d %7d %8d %8d  %.2fs%s\n" e.Ub_opt.Inject.name
          e.Ub_opt.Inject.section
          (if found then "yes" else "NO")
          rep.Hunt.r_findings rep.Hunt.r_unique witness_insns rep.Hunt.r_checks
          rep.Hunt.r_dropped rep.Hunt.r_cpu_s
          (if rep.Hunt.r_completed < rep.Hunt.r_programs && found then
             Printf.sprintf " (stopped after %d/%d programs)" rep.Hunt.r_completed
               rep.Hunt.r_programs
           else "");
        (e, rep, witness_insns))
      Ub_opt.Inject.all
  in
  print_newline ();
  let clean_cfg = Hunt.clean_config ~seed:hunt_seed ~programs in
  let clean_cfg = { clean_cfg with Hunt.jobs; timeout_s } in
  let clean = Hunt.run clean_cfg in
  Format.printf "clean pipeline: %a@." Hunt.pp_report clean;
  let found = List.length (List.filter (fun (_, r, _) -> r.Hunt.r_unique > 0) entry_results) in
  let total = List.length entry_results in
  let findings = List.fold_left (fun n (_, r, _) -> n + r.Hunt.r_findings) 0 entry_results in
  let unique = List.fold_left (fun n (_, r, _) -> n + r.Hunt.r_unique) 0 entry_results in
  let cpu = List.fold_left (fun a (_, r, _) -> a +. r.Hunt.r_cpu_s) 0.0 entry_results in
  let dropped =
    clean.Hunt.r_dropped
    + List.fold_left (fun n (_, r, _) -> n + r.Hunt.r_dropped) 0 entry_results
  in
  let dedup = if unique = 0 then 1.0 else float_of_int findings /. float_of_int unique in
  let bugs_per_hour = if cpu <= 0.0 then 0.0 else float_of_int unique *. 3600.0 /. cpu in
  Printf.printf "\nrecall: %d/%d entries rediscovered\n" found total;
  Printf.printf "dedup ratio: %.2f (%d findings -> %d unique)\n" dedup findings unique;
  Printf.printf "bugs/CPU-hour: %.1f (%.2fs CPU)\n" bugs_per_hour cpu;
  if dropped > 0 then Printf.printf "DROPPED: %d work unit(s) lost\n" dropped;
  let json =
    Json.Obj
      [ ("schema", Json.Str "ubc-hunt-bench-v1");
        ("seed", Json.Num (float_of_int hunt_seed));
        ("programs_per_entry", Json.Num (float_of_int programs));
        ("findings_cap", Json.Num (float_of_int findings_cap));
        ( "recall",
          Json.Obj
            [ ("found", Json.Num (float_of_int found));
              ("total", Json.Num (float_of_int total));
              ( "entries",
                Json.Obj
                  (List.map
                     (fun ((e : Ub_opt.Inject.entry), (r : Hunt.report), insns) ->
                       ( e.Ub_opt.Inject.name,
                         Json.Obj
                           [ ("section", Json.Str e.Ub_opt.Inject.section);
                             ("found", Json.Bool (r.Hunt.r_unique > 0));
                             ("findings", Json.Num (float_of_int r.Hunt.r_findings));
                             ("unique", Json.Num (float_of_int r.Hunt.r_unique));
                             ("witness_insns", Json.Num (float_of_int insns));
                             ("checks", Json.Num (float_of_int r.Hunt.r_checks));
                             ("dropped", Json.Num (float_of_int r.Hunt.r_dropped));
                             ("cpu_s", Json.Num r.Hunt.r_cpu_s);
                           ] ))
                     entry_results) );
            ] );
        ("clean", Hunt.report_json clean);
        ("dedup_ratio", Json.Num dedup);
        ("bugs_per_cpu_hour", Json.Num bugs_per_hour);
        ("dropped", Json.Num (float_of_int dropped));
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" out;
  let ok = found = total && clean.Hunt.r_unique = 0 && dropped = 0 in
  if not ok then begin
    if found < total then Printf.printf "RECALL MISS: %d/%d\n" found total;
    if clean.Hunt.r_unique > 0 then
      Printf.printf "FALSE POSITIVE: clean pipeline produced %d finding(s)\n"
        clean.Hunt.r_unique
  end;
  ok
