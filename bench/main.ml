(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sections 6-7).  See DESIGN.md section 4 for the
   experiment index and EXPERIMENTS.md for recorded results.

   Usage:
     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe f6 ct mem size lnt optfuzz matrix widen bechamel
                                         -- run selected experiments *)

open Ub_support
open Ub_ir
open Ub_sem

let sep title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==========================================================\n%!"

(* ------------------------------------------------------------------ *)
(* Execution config (-j / --cache / --timeout), shared by the matrix,  *)
(* optfuzz and lnt experiments                                         *)
(* ------------------------------------------------------------------ *)

let jobs = ref 1
let cache_dir = ref (None : string option)
let timeout_s = ref (None : float option)
let shrink = ref false
let corpus_dir = ref (None : string option)
let inject_entry = ref (None : string option)
let hunt_out = ref "BENCH_hunt.json"
let hunt_programs = ref 400
let hunt_failed = ref false
let trace_file = ref (None : string option)
let solver_out = ref "BENCH_solver.json"
let solver_baseline = ref "bench/solver_baseline.tsv"
let solver_save_baseline = ref (None : string option)
let solver_sessions = ref false
let solver_budget_failed = ref false
let serve_out = ref "BENCH_serve.json"
let serve_failed = ref false
let serve_fleet = ref false
let serve_fleet_shards = ref 4
let serve_fleet_required = ref 3.0
let serve_fleet_queries = ref 10_000

(* no-silent-caps: every pooled task that was dropped past the --timeout
   budget (or crashed) is counted here, reported per experiment, and
   turns the whole run into a non-zero exit — a "covered" total that
   silently excluded timed-out pairs is not a covered total *)
let dropped_total = ref 0

(* one cache handle per run, shared across experiments *)
let cache =
  let handle = lazy (Option.map Ub_exec.Cache.open_dir !cache_dir) in
  fun () -> Lazy.force handle

let print_pool_stats (s : Ub_exec.Pool.stats) =
  Format.printf "%a@." Ub_exec.Pool.pp_stats s

let print_cache_stats ~hits ~misses =
  if hits + misses > 0 then
    Printf.printf "cache: %d hit(s), %d miss(es), %.1f%% hit rate\n" hits misses
      (100.0 *. float_of_int hits /. float_of_int (hits + misses))
  else if !cache_dir <> None then print_endline "cache: no lookups"

let note_dropped ~experiment (pool : Ub_exec.Pool.stats) =
  let dropped =
    List.fold_left
      (fun n (s : Ub_exec.Pool.shard_stat) ->
        n + s.Ub_exec.Pool.timed_out + s.Ub_exec.Pool.crashed)
      0 pool.Ub_exec.Pool.shards
  in
  if dropped > 0 then
    Printf.printf "DROPPED: %d task(s) in %s fell past the --timeout budget or crashed\n"
      dropped experiment;
  dropped_total := !dropped_total + dropped

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A minimized witness on disk is a re-parsable module — the source
   renamed @src, the target renamed @tgt — behind a ';' metadata header
   the lexer skips, so `ubc check <witness> src tgt` replays it. *)
let write_witness ~dir ~name ~mode_name ~(red : Ub_refine.Reduce.reduction) =
  mkdir_p dir;
  let path = Filename.concat dir (name ^ ".ll") in
  let oc = open_out path in
  Printf.fprintf oc "; minimized counterexample: %s\n" name;
  Printf.fprintf oc "; mode: %s\n" mode_name;
  Printf.fprintf oc "; %s\n\n"
    (Format.asprintf "%a" Ub_shrink.Reduce.pp_stats red.Ub_refine.Reduce.stats);
  output_string oc
    (Printer.func_to_string { red.Ub_refine.Reduce.red_src with Func.name = "src" });
  output_string oc "\n";
  output_string oc (Printer.func_to_string { red.Ub_refine.Reduce.red_tgt with Func.name = "tgt" });
  close_out oc;
  path

let report_reduction ~label (red : Ub_refine.Reduce.reduction) =
  let s = red.Ub_refine.Reduce.stats in
  Printf.printf "  shrink %-32s: %3d -> %2d insns (%.0f%%), %d oracle call(s)\n" label
    s.Ub_shrink.Reduce.initial_insns s.Ub_shrink.Reduce.final_insns
    (100.0
    *. float_of_int s.Ub_shrink.Reduce.final_insns
    /. float_of_int (max 1 s.Ub_shrink.Reduce.initial_insns))
    s.Ub_shrink.Reduce.oracle_calls

let emit_witness ~label ~mode_name red =
  report_reduction ~label red;
  match !corpus_dir with
  | None -> ()
  | Some dir ->
    let path = write_witness ~dir ~name:label ~mode_name ~red in
    Printf.printf "    witness: %s\n" path

(* ------------------------------------------------------------------ *)
(* F6: Figure 6 -- run-time change on the SPEC kernels, two machines   *)
(* ------------------------------------------------------------------ *)

let comparisons =
  lazy
    (List.map
       (fun (b : Ub_core.Spec_suite.bench) ->
         ( b,
           Ub_core.Driver.compare_pipelines ~name:b.Ub_core.Spec_suite.name ~entry:b.entry
             ~args:[] b.source ))
       Ub_core.Spec_suite.all)

let f6 () =
  sep "F6 | Figure 6: run-time change (%), baseline -> freeze prototype";
  Printf.printf "%-12s %-5s %12s %12s   (positive = prototype faster)\n" "benchmark" "group"
    "machine1" "machine2";
  List.iter
    (fun ((b : Ub_core.Spec_suite.bench), (c : Ub_core.Driver.comparison)) ->
      Printf.printf "%-12s %-5s %+11.2f%% %+11.2f%%\n" c.Ub_core.Driver.name
        (match b.group with `Cint -> "CINT" | `Cfp -> "CFP" | `Micro -> "micro")
        c.runtime_delta_m1_pct c.runtime_delta_m2_pct)
    (Lazy.force comparisons);
  let deltas =
    List.concat_map
      (fun (_, (c : Ub_core.Driver.comparison)) ->
        [ c.runtime_delta_m1_pct; c.runtime_delta_m2_pct ])
      (Lazy.force comparisons)
  in
  Printf.printf "range: %+.2f%% .. %+.2f%%   (paper: -1.6%% .. +1.6%%, one +6/8%% outlier)\n"
    (List.fold_left min infinity deltas)
    (List.fold_left max neg_infinity deltas)

(* ------------------------------------------------------------------ *)
(* T-CT: compile time                                                  *)
(* ------------------------------------------------------------------ *)

let median_compile_time pipeline src =
  let times =
    List.init 5 (fun _ ->
        let t0 = Ub_obs.Obs.Clock.now_s () in
        ignore (Ub_core.Driver.compile ~pipeline src);
        Ub_obs.Obs.Clock.elapsed_s ~since:t0)
  in
  Util.median times

let compile_time () =
  sep "T-CT | compile time change (%), median of 5 (paper: ~1%, nestedloop +19%)";
  Printf.printf "%-12s %12s %12s %9s\n" "benchmark" "base (ms)" "proto (ms)" "delta";
  List.iter
    (fun (b : Ub_core.Spec_suite.bench) ->
      let tb = median_compile_time Ub_core.Driver.Baseline b.Ub_core.Spec_suite.source in
      let tp = median_compile_time Ub_core.Driver.Prototype b.source in
      Printf.printf "%-12s %12.3f %12.3f %+8.1f%%\n" b.name (tb *. 1000.0) (tp *. 1000.0)
        (Util.percent_change ~base:tb ~now:tp))
    Ub_core.Spec_suite.all

(* ------------------------------------------------------------------ *)
(* T-MEM: peak memory during compilation                               *)
(* ------------------------------------------------------------------ *)

let memory () =
  sep "T-MEM | compiler peak allocation change (%) (paper: <= +2%)";
  Printf.printf "%-12s %14s %14s %9s\n" "benchmark" "base (words)" "proto (words)" "delta";
  List.iter
    (fun (b : Ub_core.Spec_suite.bench) ->
      let mb =
        (Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Baseline b.Ub_core.Spec_suite.source)
          .Ub_core.Driver.metrics.Ub_core.Driver.peak_heap_words
      in
      let mp =
        (Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Prototype b.source)
          .Ub_core.Driver.metrics.Ub_core.Driver.peak_heap_words
      in
      Printf.printf "%-12s %14.0f %14.0f %+8.2f%%\n" b.name mb mp
        (Util.percent_change ~base:mb ~now:mp))
    Ub_core.Spec_suite.all

(* ------------------------------------------------------------------ *)
(* T-SIZE: object code size and freeze counts                          *)
(* ------------------------------------------------------------------ *)

let size () =
  sep "T-SIZE | object size and freeze counts (paper: size 0.5%; freeze\n       0.04-0.06% of IR overall, gcc highest with 0.29%)";
  Printf.printf "%-12s %10s %10s %8s %8s %10s\n" "benchmark" "base (B)" "proto (B)" "delta"
    "freezes" "% of IR";
  List.iter
    (fun ((_ : Ub_core.Spec_suite.bench), (c : Ub_core.Driver.comparison)) ->
      Printf.printf "%-12s %10d %10d %+7.2f%% %8d %9.3f%%\n" c.Ub_core.Driver.name
        c.baseline.Ub_core.Driver.metrics.Ub_core.Driver.obj_bytes
        c.prototype.Ub_core.Driver.metrics.Ub_core.Driver.obj_bytes c.size_delta_pct
        c.freeze_count c.freeze_fraction_pct)
    (Lazy.force comparisons);
  let total_insns =
    Util.sum_int
      (List.map
         (fun (_, (c : Ub_core.Driver.comparison)) ->
           c.prototype.Ub_core.Driver.metrics.Ub_core.Driver.ir_insns)
         (Lazy.force comparisons))
  in
  let total_freeze =
    Util.sum_int
      (List.map (fun (_, (c : Ub_core.Driver.comparison)) -> c.Ub_core.Driver.freeze_count)
         (Lazy.force comparisons))
  in
  Printf.printf "suite total: %d freeze / %d IR instructions = %.3f%%\n" total_freeze
    total_insns
    (float_of_int total_freeze /. float_of_int total_insns *. 100.0)

(* ------------------------------------------------------------------ *)
(* T-LNT: fraction of the corpus whose IR / asm changed                *)
(* ------------------------------------------------------------------ *)

(* Per-function outcome of the legacy-vs-prototype diff, with a tiny
   stable encoding for the persistent cache ("n" = no IR change, "i" =
   IR changed only, "a" = IR and asm changed). *)
let lnt_diff fn =
  let base = Ub_opt.Pipeline.run_o2_func Ub_opt.Pass.legacy fn in
  let proto = Ub_opt.Pipeline.run_o2_func Ub_opt.Pass.prototype fn in
  if Printer.func_to_string base = Printer.func_to_string proto then `Unchanged
  else begin
    let ab = (Ub_backend.Compile.compile_func base).Ub_backend.Compile.asm in
    let ap = (Ub_backend.Compile.compile_func proto).Ub_backend.Compile.asm in
    if ab <> ap then `Asm_changed else `Ir_changed
  end

let lnt_encode = function `Unchanged -> "n" | `Ir_changed -> "i" | `Asm_changed -> "a"
let lnt_decode = function
  | "n" -> Some `Unchanged
  | "i" -> Some `Ir_changed
  | "a" -> Some `Asm_changed
  | _ -> None

let lnt () =
  sep "T-LNT | corpus diff fractions (paper: 26% IR changed; 82% of those\n       changed asm; 21% overall)";
  let corpus = Array.of_list (Ub_fuzz.Gen.random_corpus ~seed:2017 ~size:120) in
  let total = Array.length corpus in
  let c = cache () in
  let hits0 = match c with Some c -> Ub_exec.Cache.hits c | None -> 0 in
  let misses0 = match c with Some c -> Ub_exec.Cache.misses c | None -> 0 in
  let key_of fn =
    Ub_exec.Cache.key ~parts:[ Printer.func_to_string fn; "lnt-legacy-vs-prototype-v1" ]
  in
  let cached =
    Array.map
      (fun fn ->
        match c with
        | None -> None
        | Some cc -> Option.bind (Ub_exec.Cache.find cc (key_of fn)) lnt_decode)
      corpus
  in
  let fresh_idx =
    Array.to_list (Array.mapi (fun i v -> (i, v)) cached)
    |> List.filter_map (fun (i, v) -> if v = None then Some i else None)
    |> Array.of_list
  in
  let fresh, pool =
    Ub_exec.Pool.map_stats ~jobs:!jobs ?timeout_s:!timeout_s
      (fun i -> lnt_diff corpus.(i))
      fresh_idx
  in
  let outcomes = Array.make total `Unchanged in
  Array.iteri (fun i v -> match v with Some o -> outcomes.(i) <- o | None -> ()) cached;
  let crashed = ref 0 in
  Array.iteri
    (fun j r ->
      let i = fresh_idx.(j) in
      match r with
      | Ub_exec.Pool.Done o ->
        outcomes.(i) <- o;
        (match c with Some cc -> Ub_exec.Cache.store cc (key_of corpus.(i)) (lnt_encode o) | None -> ())
      | Ub_exec.Pool.Crashed _ | Ub_exec.Pool.Timed_out -> incr crashed)
    fresh;
  let ir_changed =
    Array.fold_left (fun n o -> if o <> `Unchanged then n + 1 else n) 0 outcomes
  in
  let asm_changed =
    Array.fold_left (fun n o -> if o = `Asm_changed then n + 1 else n) 0 outcomes
  in
  let pct a b = 100.0 *. float_of_int a /. float_of_int b in
  Printf.printf "corpus: %d functions\n" total;
  if !crashed > 0 then Printf.printf "WARNING: %d function(s) crashed or timed out\n" !crashed;
  Printf.printf "different optimized IR : %d (%.0f%%)\n" ir_changed (pct ir_changed total);
  if ir_changed > 0 then
    Printf.printf "of those, different asm: %d (%.0f%%)  -- %.0f%% overall\n" asm_changed
      (pct asm_changed ir_changed) (pct asm_changed total);
  print_pool_stats pool;
  note_dropped ~experiment:"lnt" pool;
  print_cache_stats
    ~hits:(match c with Some c -> Ub_exec.Cache.hits c - hits0 | None -> 0)
    ~misses:(match c with Some c -> Ub_exec.Cache.misses c - misses0 | None -> 0)

(* ------------------------------------------------------------------ *)
(* T-OPTFUZZ: Section 6 validation                                     *)
(* ------------------------------------------------------------------ *)

let optfuzz () =
  sep "T-OPTFUZZ | opt-fuzz + checker validation (Section 6: all i2\n          3-instruction functions vs InstCombine/GVN/Reassoc/SCCP)";
  let run_validation ~slug name cfg mode params limit =
    (* enumerate + optimize in the parent (cheap); only the changed
       pairs are real checking work, and those go through the pool and
       the verdict cache *)
    let total = ref 0 in
    let pairs = ref [] in
    let _, truncated =
      Ub_fuzz.Gen.enumerate ~limit params (fun fn ->
          incr total;
          let fn' = Ub_opt.Pass.run_pipeline cfg Ub_opt.Pipeline.fuzz_passes fn in
          if fn' <> fn then pairs := (fn, fn') :: !pairs)
    in
    let pairs = Array.of_list (List.rev !pairs) in
    let report =
      Ub_refine.Sweep.check_pairs ~jobs:!jobs ?timeout_s:!timeout_s ?cache:(cache ()) mode
        pairs
    in
    let unsound = ref 0 and unknown = ref 0 in
    Array.iter
      (function
        | Ub_refine.Checker.Counterexample _ -> incr unsound
        | Ub_refine.Checker.Unknown _ -> incr unknown
        | Ub_refine.Checker.Refines -> ())
      report.Ub_refine.Sweep.verdicts;
    Printf.printf "%-30s: %5d functions%s, %5d optimized, %3d UNSOUND, %d unknown\n" name
      !total
      (if truncated then " (truncated)" else "")
      (Array.length pairs) !unsound !unknown;
    print_pool_stats report.Ub_refine.Sweep.pool;
    note_dropped ~experiment:name report.Ub_refine.Sweep.pool;
    print_cache_stats ~hits:report.Ub_refine.Sweep.cache_hits
      ~misses:report.Ub_refine.Sweep.cache_misses;
    if !shrink && !unsound > 0 then begin
      let failing =
        Array.to_list (Array.mapi (fun i v -> (i, v)) report.Ub_refine.Sweep.verdicts)
        |> List.filter_map (fun (i, v) ->
               match v with
               | Ub_refine.Checker.Counterexample _ -> Some pairs.(i)
               | _ -> None)
        |> Array.of_list
      in
      Printf.printf "shrinking %d unsound pair(s)...\n%!" (Array.length failing);
      let reductions, pool =
        Ub_refine.Reduce.minimize_corpus ~jobs:!jobs ?timeout_s:!timeout_s
          ?cache:(cache ()) mode failing
      in
      Array.iteri
        (fun i red ->
          let label = Printf.sprintf "%s-%03d" slug i in
          match red with
          | None -> Printf.printf "  shrink %-32s: dropped (crash or timeout)\n" label
          | Some red -> emit_witness ~label ~mode_name:mode.Mode.name red)
        reductions;
      note_dropped ~experiment:(name ^ " (shrink)") pool
    end
  in
  let base_params = { Ub_fuzz.Gen.default_params with Ub_fuzz.Gen.n_insns = 2 } in
  run_validation ~slug:"proto2" "prototype / proposed (2 ins)" Ub_opt.Pass.prototype
    Mode.proposed base_params 4_000;
  run_validation ~slug:"proto3" "prototype / proposed (3 ins)" Ub_opt.Pass.prototype
    Mode.proposed
    { base_params with Ub_fuzz.Gen.n_insns = 3 }
    4_000;
  let undef_params = { base_params with Ub_fuzz.Gen.include_undef = true } in
  run_validation ~slug:"legacy" "LEGACY / old-simplifycfg" Ub_opt.Pass.legacy
    Mode.old_simplifycfg undef_params 4_000;
  (match !inject_entry with
  | None -> ()
  | Some entry ->
    Printf.printf
      "(--inject-bug %s: the deliberately unsound rewrite \"%s\" is enabled below;\n\
      \ it must report UNSOUND pairs for --shrink to minimize)\n"
      entry (Ub_opt.Inject.find_exn entry).Ub_opt.Inject.doc;
    let params =
      if (Ub_opt.Inject.find_exn entry).Ub_opt.Inject.needs_undef then
        { base_params with Ub_fuzz.Gen.include_undef = true }
      else base_params
    in
    let mode =
      match (Ub_opt.Inject.find_exn entry).Ub_opt.Inject.modes with
      | m :: _ -> Option.get (Mode.find m)
      | [] -> Mode.proposed
    in
    run_validation ~slug:"injected" ("INJECTED-BUG[" ^ entry ^ "] (2 ins)")
      { Ub_opt.Pass.prototype with Ub_opt.Pass.inject = [ entry ] }
      mode params 4_000);
  print_endline "(the legacy pipeline's unsound rewrites are the Section 3 bugs;";
  print_endline " the prototype must report zero)"

(* ------------------------------------------------------------------ *)
(* T-MATRIX: the Section 3 soundness matrix                            *)
(* ------------------------------------------------------------------ *)

let matrix () =
  sep "T-MATRIX | transformation x semantics soundness matrix (Section 3)";
  let report =
    Ub_refine.Matrix.run_all_exec ~jobs:!jobs ?timeout_s:!timeout_s ?cache:(cache ()) ()
  in
  let results = report.Ub_refine.Matrix.results in
  let mode_names = List.map (fun m -> m.Mode.name) Mode.all in
  Printf.printf "%-26s" "transformation";
  List.iter (fun m -> Printf.printf " %-14s" m) mode_names;
  print_newline ();
  List.iter
    (fun ((e : Ub_refine.Matrix.entry), cells) ->
      Printf.printf "%-26s" e.Ub_refine.Matrix.id;
      List.iter
        (fun (c : Ub_refine.Matrix.cell) ->
          let s =
            match c.Ub_refine.Matrix.verdict with
            | Ub_refine.Checker.Refines -> "sound"
            | Ub_refine.Checker.Counterexample _ -> "UNSOUND"
            | Ub_refine.Checker.Unknown _ -> "?"
          in
          let mark = match c.Ub_refine.Matrix.agrees with Some false -> "!!" | _ -> "" in
          Printf.printf " %-14s" (s ^ mark))
        cells;
      print_newline ())
    results;
  let mism =
    List.concat_map
      (fun (_, cs) -> List.filter (fun c -> c.Ub_refine.Matrix.agrees = Some false) cs)
      results
  in
  Printf.printf "\ndisagreements with the paper's expectations: %d\n" (List.length mism);
  print_pool_stats report.Ub_refine.Matrix.pool;
  note_dropped ~experiment:"matrix" report.Ub_refine.Matrix.pool;
  print_cache_stats ~hits:report.Ub_refine.Matrix.cache_hits
    ~misses:report.Ub_refine.Matrix.cache_misses;
  if !shrink then begin
    Printf.printf "\nshrinking counterexample cells...\n%!";
    List.iter
      (fun ((e : Ub_refine.Matrix.entry), cells) ->
        List.iter
          (fun (c : Ub_refine.Matrix.cell) ->
            match (c.Ub_refine.Matrix.verdict, Mode.find c.Ub_refine.Matrix.mode_name) with
            | Ub_refine.Checker.Counterexample _, Some mode -> begin
              let src = Parser.parse_func_string e.Ub_refine.Matrix.src in
              let tgt = Parser.parse_func_string e.Ub_refine.Matrix.tgt in
              let label =
                Printf.sprintf "matrix-%s-%s" e.Ub_refine.Matrix.id mode.Mode.name
              in
              match
                Ub_refine.Reduce.minimize_cex ?inputs:e.Ub_refine.Matrix.inputs
                  ?cache:(cache ()) mode ~src ~tgt
              with
              | None -> Printf.printf "  shrink %-32s: cell did not reproduce\n" label
              | Some red -> emit_witness ~label ~mode_name:mode.Mode.name red
            end
            | _ -> ())
          cells)
      results
  end

(* ------------------------------------------------------------------ *)
(* T-WIDEN: Figure 3                                                   *)
(* ------------------------------------------------------------------ *)

let widen () =
  sep "T-WIDEN | induction-variable widening (Figure 3; paper: up to 39%)";
  let src =
    Parser.parse_func_string
      {|define i64 @store_loop(i32 %n, i64 %acc) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %a = phi i64 [ %acc, %entry ], [ %a1, %body ]
  %c = icmp sle i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %iext = sext i32 %i to i64
  %a1 = add i64 %a, %iext
  %i1 = add nsw i32 %i, 1
  br label %head
exit:
  ret i64 %a
}|}
  in
  let widened =
    Ub_opt.Dce.pass.Ub_opt.Pass.run Ub_opt.Pass.prototype
      (Ub_opt.Indvar_widen.pass.Ub_opt.Pass.run Ub_opt.Pass.prototype src)
  in
  let cycles p fn =
    let c = Ub_backend.Compile.compile_func fn in
    let r = Interp.run fn [ Value.of_int ~width:32 500; Value.of_int ~width:64 0 ] in
    Ub_backend.Compile.simulate_cycles p c ~profile:r.Interp.block_counts
  in
  List.iter
    (fun p ->
      let before = cycles p src and after = cycles p widened in
      Printf.printf "%-22s: %8.0f -> %8.0f cycles  (%.1f%% faster)\n"
        p.Ub_backend.Target.prof_name before after
        ((before -. after) /. before *. 100.0))
    Ub_backend.Target.profiles

(* ------------------------------------------------------------------ *)
(* T-SOLVER: the decision-procedure benchmark (see solver_bench.ml)    *)
(* ------------------------------------------------------------------ *)

let solver () =
  sep "T-SOLVER | solver-stack benchmark (seeded checker-query corpus)";
  let ok =
    Solver_bench.run ~jobs:!jobs ?timeout_s:!timeout_s ~sessions:!solver_sessions
      ~out:!solver_out ~baseline:!solver_baseline ?save_baseline_to:!solver_save_baseline ()
  in
  if not ok then solver_budget_failed := true

(* ------------------------------------------------------------------ *)
(* T-SERVE: the daemon load generator (see serve_bench.ml)             *)
(* ------------------------------------------------------------------ *)

let serve () =
  sep "T-SERVE | serve-daemon throughput vs spawning ubc check per query";
  let ok =
    Serve_bench.run ~jobs:!jobs ~out:!serve_out ~fleet:!serve_fleet
      ~fleet_shards:!serve_fleet_shards ~fleet_required:!serve_fleet_required
      ~fleet_queries:!serve_fleet_queries ()
  in
  if not ok then serve_failed := true

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per measured table         *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  sep "BECHAMEL | micro-benchmarks of the measurement paths themselves";
  let open Bechamel in
  let find n = (List.find (fun b -> b.Ub_core.Spec_suite.name = n) Ub_core.Spec_suite.all).Ub_core.Spec_suite.source in
  let gcc_src = find "gcc" in
  let queens_src = find "queens" in
  let tests =
    [ Test.make ~name:"T-CT:compile-gcc-baseline"
        (Staged.stage (fun () ->
             ignore (Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Baseline gcc_src)));
      Test.make ~name:"T-CT:compile-gcc-prototype"
        (Staged.stage (fun () ->
             ignore (Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Prototype gcc_src)));
      Test.make ~name:"F6:simulate-queens"
        (Staged.stage
           (let cp = Ub_core.Driver.compile ~pipeline:Ub_core.Driver.Prototype queens_src in
            fun () -> ignore (Ub_core.Driver.simulate cp ~entry:"main" ~args:[])));
      Test.make ~name:"T-OPTFUZZ:checker-query"
        (Staged.stage
           (let src =
              Parser.parse_func_string
                "define i2 @f(i2 %x) {\ne:\n  %y = mul i2 %x, 2\n  ret i2 %y\n}"
            in
            let tgt =
              Parser.parse_func_string
                "define i2 @f(i2 %x) {\ne:\n  %y = add i2 %x, %x\n  ret i2 %y\n}"
            in
            fun () -> ignore (Ub_refine.Checker.check Mode.proposed ~src ~tgt)));
    ]
  in
  List.iter
    (fun t ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg instances t in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name o ->
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Printf.printf "%-30s %14.1f ns/run\n" name est
          | _ -> Printf.printf "%-30s (no estimate)\n" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let hunt () =
  sep "T-HUNT | injected-bug recall campaign (lib/hunt)";
  if
    not
      (Hunt_bench.run ~jobs:!jobs ?timeout_s:!timeout_s ~programs:!hunt_programs
         ~out:!hunt_out ())
  then hunt_failed := true

let all =
  [ ("f6", f6); ("ct", compile_time); ("mem", memory); ("size", size); ("lnt", lnt);
    ("optfuzz", optfuzz); ("matrix", matrix); ("widen", widen); ("solver", solver);
    ("serve", serve); ("hunt", hunt); ("bechamel", bechamel);
  ]

let usage () =
  Printf.eprintf
    "usage: main.exe [experiments] [-j N] [--cache DIR] [--timeout SECONDS]\n\
    \                [--shrink] [--corpus DIR] [--inject-bug ENTRY]\n\
     experiments: %s (default: all)\n\
     -j N           run matrix/optfuzz/lnt checking tasks on N forked workers\n\
     --cache DIR    persist verdicts in DIR; warm reruns only pay for new pairs\n\
     --timeout S    per-task timeout for pooled tasks (verdict: unknown);\n\
    \                dropped tasks are reported and fail the run\n\
     --shrink       minimize every counterexample matrix/optfuzz find\n\
     --corpus DIR   write minimized witnesses under DIR as re-parsable .ll files\n\
     --inject-bug ENTRY  optfuzz: also validate a deliberately unsound rewrite\n\
    \                from the catalog (lib/opt/inject.ml) so --shrink has a\n\
    \                known bug to minimize; lists valid names on a typo\n\
     --hunt-out F        hunt: write the recall/dedup JSON to F (default BENCH_hunt.json)\n\
     --hunt-programs N   hunt: per-entry program budget (default 400)\n\
     --trace FILE   stream a JSONL telemetry trace to FILE and write the\n\
    \                aggregated run report to FILE.report.json\n\
     --solver-out F          solver: write the benchmark JSON to F (default BENCH_solver.json)\n\
     --solver-baseline F     solver: compare against the recorded baseline TSV\n\
    \                         (default bench/solver_baseline.tsv)\n\
     --solver-save-baseline F  solver: also record this run as a baseline TSV\n\
     --sessions              solver: also run the incremental-session differential\n\
    \                         mode (streams through one persistent session vs\n\
    \                         scratch; gates a geomean speedup)\n\
     --serve-out F           serve: write the benchmark JSON to F (default BENCH_serve.json)\n\
     --fleet                 serve: also run the sharded-fleet scaling experiment\n\
     --fleet-shards N        serve: fleet size for the scaled run (default 4)\n\
     --fleet-required X      serve: QPS scaling gate at N shards (default 3.0; only\n\
    \                         enforced when the machine has >= N cores)\n\
     --fleet-queries N       serve: fleet corpus size (default 10000)\n"
    (String.concat " " (List.map fst all));
  exit 2

let () =
  let rec parse args names =
    match args with
    | [] -> List.rev names
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest names
      | _ -> usage ())
    | "--cache" :: dir :: rest ->
      cache_dir := Some dir;
      parse rest names
    | "--timeout" :: s :: rest -> (
      match float_of_string_opt s with
      | Some s when s > 0.0 ->
        timeout_s := Some s;
        parse rest names
      | _ -> usage ())
    | "--shrink" :: rest ->
      shrink := true;
      parse rest names
    | "--corpus" :: dir :: rest ->
      corpus_dir := Some dir;
      parse rest names
    | "--inject-bug" :: name :: rest when not (String.length name > 1 && name.[0] = '-') ->
      (match Ub_opt.Inject.find name with
      | Some _ -> inject_entry := Some name
      | None ->
        Printf.eprintf "unknown --inject-bug entry %S\nvalid entries: %s\n" name
          (String.concat ", " Ub_opt.Inject.names);
        exit 2);
      parse rest names
    | "--inject-bug" :: _ ->
      Printf.eprintf "--inject-bug needs a catalog entry name\nvalid entries: %s\n"
        (String.concat ", " Ub_opt.Inject.names);
      exit 2
    | "--hunt-out" :: f :: rest ->
      hunt_out := f;
      parse rest names
    | "--hunt-programs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        hunt_programs := n;
        parse rest names
      | _ -> usage ())
    | "--trace" :: f :: rest ->
      trace_file := Some f;
      parse rest names
    | "--solver-out" :: f :: rest ->
      solver_out := f;
      parse rest names
    | "--solver-baseline" :: f :: rest ->
      solver_baseline := f;
      parse rest names
    | "--solver-save-baseline" :: f :: rest ->
      solver_save_baseline := Some f;
      parse rest names
    | "--sessions" :: rest ->
      solver_sessions := true;
      parse rest names
    | "--serve-out" :: f :: rest ->
      serve_out := f;
      parse rest names
    | "--fleet" :: rest ->
      serve_fleet := true;
      parse rest names
    | "--fleet-shards" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        serve_fleet_shards := n;
        parse rest names
      | _ -> usage ())
    | "--fleet-required" :: x :: rest -> (
      match float_of_string_opt x with
      | Some x when x > 0.0 ->
        serve_fleet_required := x;
        parse rest names
      | _ -> usage ())
    | "--fleet-queries" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        serve_fleet_queries := n;
        parse rest names
      | _ -> usage ())
    | name :: rest when List.mem_assoc name all -> parse rest (name :: names)
    | _ -> usage ()
  in
  let requested = parse (List.tl (Array.to_list Sys.argv)) [] in
  let to_run = if requested = [] then all else List.filter (fun (n, _) -> List.mem n requested) all in
  (match !trace_file with Some f -> Ub_obs.Obs.set_trace f | None -> ());
  print_endline "Taming Undefined Behavior in LLVM -- evaluation harness";
  print_endline "(see DESIGN.md for the experiment index, EXPERIMENTS.md for analysis)";
  List.iter (fun (_, f) -> f ()) to_run;
  (match !trace_file with
  | Some f ->
    Ub_obs.Obs.close ();
    let report = f ^ ".report.json" in
    Ub_obs.Obs.write_report report;
    Printf.printf "\ntrace: %s\nrun report: %s\n" f report
  | None -> ());
  if !dropped_total > 0 then begin
    Printf.printf
      "\nFAILURE: %d task(s) dropped past the --timeout budget or crashed;\n\
       the totals above are incomplete\n"
      !dropped_total;
    exit 1
  end;
  if !solver_budget_failed then begin
    print_endline
      "\nFAILURE: solver benchmark quer(ies) exceeded the conflict budget or the \
       incremental-session gate failed";
    exit 1
  end;
  if !serve_failed then begin
    print_endline "\nFAILURE: serve benchmark missed its verdict-agreement or speedup bar";
    exit 1
  end;
  if !hunt_failed then begin
    print_endline
      "\nFAILURE: hunt campaign missed full recall, found bugs in the clean pipeline,\n\
       or dropped work";
    exit 1
  end
