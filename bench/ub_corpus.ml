(* The seeded checker-query corpus shared by `bench solver`, the
   incremental-session differential mode, and the session regression
   tests.  Everything here is deterministic: the Section-3 matrix under
   two semantics modes, handcrafted wide-width identities, an enumerated
   opt-fuzz slice, and (on demand) the replayed query stream of one
   `ubc hunt` recall entry.

   The corpus doubles as a set of *streams*: multi-query workloads
   grouped so that consecutive queries are structurally related (the
   same matrix family, the same generator seed), which is the shape the
   incremental solver sessions are built for and what the differential
   harness replays through scratch and session solving. *)

open Ub_ir
open Ub_sem

type query = {
  qname : string;
  qmode : string; (* Mode.name *)
  qsrc : Func.t;
  qtgt : Func.t;
}

let fn = Parser.parse_func_string

let handcrafted : (string * string * string * string) list =
  (* (name, mode, src, tgt) — identities across widths; the sound ones
     make the solver produce UNSAT proofs, which is where CDCL earns
     its keep; a couple are deliberately refuted (SAT). *)
  [ ( "mul2-to-add-i16", "proposed",
      {|define i16 @f(i16 %x) {
e:
  %y = mul i16 %x, 2
  ret i16 %y
}|},
      {|define i16 @f(i16 %x) {
e:
  %y = add i16 %x, %x
  ret i16 %y
}|} );
    ( "mul-comm-i8", "proposed",
      {|define i8 @f(i8 %a, i8 %b) {
e:
  %y = mul i8 %a, %b
  ret i8 %y
}|},
      {|define i8 @f(i8 %a, i8 %b) {
e:
  %y = mul i8 %b, %a
  ret i8 %y
}|} );
    ( "mul3-to-addchain-i8", "proposed",
      {|define i8 @f(i8 %x) {
e:
  %y = mul i8 %x, 3
  ret i8 %y
}|},
      {|define i8 @f(i8 %x) {
e:
  %t = add i8 %x, %x
  %y = add i8 %t, %x
  ret i8 %y
}|} );
    ( "reassoc-i16", "proposed",
      {|define i16 @f(i16 %a, i16 %b, i16 %c) {
e:
  %t = add i16 %a, %b
  %y = add i16 %t, %c
  ret i16 %y
}|},
      {|define i16 @f(i16 %a, i16 %b, i16 %c) {
e:
  %t = add i16 %b, %c
  %y = add i16 %a, %t
  ret i16 %y
}|} );
    ( "shl1-to-mul2-i16", "proposed",
      {|define i16 @f(i16 %x) {
e:
  %y = shl i16 %x, 1
  ret i16 %y
}|},
      {|define i16 @f(i16 %x) {
e:
  %y = mul i16 %x, 2
  ret i16 %y
}|} );
    ( "xor-cancel-i32", "proposed",
      {|define i32 @f(i32 %a, i32 %b) {
e:
  %t = xor i32 %a, %b
  %y = xor i32 %t, %b
  ret i32 %y
}|},
      {|define i32 @f(i32 %a, i32 %b) {
e:
  ret i32 %a
}|} );
    ( "demorgan-i32", "proposed",
      {|define i32 @f(i32 %a, i32 %b) {
e:
  %na = xor i32 %a, -1
  %nb = xor i32 %b, -1
  %y = and i32 %na, %nb
  ret i32 %y
}|},
      {|define i32 @f(i32 %a, i32 %b) {
e:
  %o = or i32 %a, %b
  %y = xor i32 %o, -1
  ret i32 %y
}|} );
    ( "sub-to-neg-add-i16", "proposed",
      {|define i16 @f(i16 %a, i16 %x) {
e:
  %y = sub i16 %a, %x
  ret i16 %y
}|},
      {|define i16 @f(i16 %a, i16 %x) {
e:
  %n = sub i16 0, %x
  %y = add i16 %a, %n
  ret i16 %y
}|} );
    ( "select-min-flip-i16", "proposed",
      {|define i16 @f(i16 %a, i16 %b) {
e:
  %c = icmp slt i16 %a, %b
  %y = select i1 %c, i16 %a, i16 %b
  ret i16 %y
}|},
      {|define i16 @f(i16 %a, i16 %b) {
e:
  %c = icmp sge i16 %a, %b
  %y = select i1 %c, i16 %b, i16 %a
  ret i16 %y
}|} );
    ( "icmp-add-nsw-i16", "proposed",
      {|define i1 @f(i16 %x) {
e:
  %y = add nsw i16 %x, 1
  %c = icmp slt i16 %x, %y
  ret i1 %c
}|},
      {|define i1 @f(i16 %x) {
e:
  ret i1 1
}|} );
    (* refuted identities: the solver must find a model *)
    ( "icmp-add-wrapping-i16-SAT", "proposed",
      {|define i1 @f(i16 %x) {
e:
  %y = add i16 %x, 1
  %c = icmp slt i16 %x, %y
  ret i1 %c
}|},
      {|define i1 @f(i16 %x) {
e:
  ret i1 1
}|} );
    ( "mul2-to-add-undef-i8-SAT", "old-unswitch",
      {|define i8 @f(i8 %x) {
e:
  %y = mul i8 %x, 2
  ret i8 %y
}|},
      {|define i8 @f(i8 %x) {
e:
  %y = add i8 %x, %x
  ret i8 %y
}|} );
  ]

(* Enumerated opt-fuzz slice: every changed (fn, optimized fn) pair from
   the first [limit] 3-instruction i2 functions, like T-OPTFUZZ does,
   capped to keep the corpus bounded.  Enumeration order is
   deterministic, so this is a fixed corpus. *)
let fuzz_pairs () : query list =
  let params = { Ub_fuzz.Gen.default_params with Ub_fuzz.Gen.n_insns = 3 } in
  let pairs = ref [] in
  let n = ref 0 in
  let _ =
    Ub_fuzz.Gen.enumerate ~limit:1_500 params (fun f ->
        if !n < 40 then begin
          let f' =
            Ub_opt.Pass.run_pipeline Ub_opt.Pass.prototype Ub_opt.Pipeline.fuzz_passes f
          in
          if f' <> f then begin
            incr n;
            pairs :=
              { qname = Printf.sprintf "optfuzz3-%03d" !n;
                qmode = "proposed";
                qsrc = f;
                qtgt = f';
              }
              :: !pairs
          end
        end)
  in
  List.rev !pairs

let matrix_queries () : query list =
  List.concat_map
    (fun (e : Ub_refine.Matrix.entry) ->
      (* enum-only entries (explicit inputs) are outside check_sat's
         fragment; skip them rather than benchmark a constant-time
         "not encodable" bailout *)
      if e.Ub_refine.Matrix.inputs <> None then []
      else
        List.map
          (fun mode_name ->
            { qname = "matrix-" ^ e.Ub_refine.Matrix.id;
              qmode = mode_name;
              qsrc = fn e.Ub_refine.Matrix.src;
              qtgt = fn e.Ub_refine.Matrix.tgt;
            })
          [ "proposed"; "old-langref" ])
    Ub_refine.Matrix.all_entries

let handcrafted_queries () : query list =
  List.map
    (fun (name, mode, src, tgt) ->
      { qname = name; qmode = mode; qsrc = fn src; qtgt = fn tgt })
    handcrafted

(* The 90-query `bench solver` corpus, in its committed order. *)
let corpus () : query list = matrix_queries () @ handcrafted_queries () @ fuzz_pairs ()

(* ------------------------------------------------------------------ *)
(* Multi-query streams                                                  *)
(* ------------------------------------------------------------------ *)

type stream = {
  s_name : string;
  s_queries : query list;
}

(* The corpus partitioned into pipeline-shaped workloads: within one
   stream the queries share structure (same matrix family and mode, the
   same generator), so a persistent session gets realistic reuse; across
   streams nothing is shared, which is what per-stream fresh sessions
   model. *)
let streams () : stream list =
  let matrix = matrix_queries () in
  let by_mode m = List.filter (fun q -> q.qmode = m) matrix in
  [ { s_name = "matrix/proposed"; s_queries = by_mode "proposed" };
    { s_name = "matrix/old-langref"; s_queries = by_mode "old-langref" };
    { s_name = "handcrafted"; s_queries = handcrafted_queries () };
    { s_name = "optfuzz3"; s_queries = fuzz_pairs () };
  ]

(* Replay one `ubc hunt` recall-catalog entry as a query stream: the
   committed-seed generator feeds the entry's inject-only lane, and
   every (program, rewritten program) pair the lane changed becomes a
   query — exactly the oracle workload of the recall campaign, minus
   the shrinking.  [seed] defaults to the hunt bench's committed seed. *)
let hunt_stream ?(seed = 20170601) ?(programs = 48) ~(entry : string) () : stream =
  match Ub_opt.Inject.find entry with
  | None -> invalid_arg ("Ub_corpus.hunt_stream: unknown catalog entry " ^ entry)
  | Some e ->
    let cfg = Ub_hunt.Hunt.entry_config ~seed ~programs e in
    let queries = ref [] in
    for idx = 0 to programs - 1 do
      let f = Ub_hunt.Hunt.generate cfg idx in
      List.iter
        (fun (lane : Ub_hunt.Hunt.lane) ->
          let f' = Ub_hunt.Hunt.optimize lane f in
          if f' <> f then
            queries :=
              { qname = Printf.sprintf "hunt-%s-%04d" entry idx;
                qmode = lane.Ub_hunt.Hunt.lane_mode.Mode.name;
                qsrc = f;
                qtgt = f';
              }
              :: !queries)
        cfg.Ub_hunt.Hunt.lanes
    done;
    { s_name = "hunt/" ^ entry; s_queries = List.rev !queries }
