(* Boolean circuits with constant-folding smart constructors, structural
   hash-consing, and a Tseitin translation to CNF for the CDCL solver.
   The refinement checker builds one circuit per verification query;
   bit-blasted bitvector arithmetic lives in [Bvterm] on top of this
   module.

   Hash-consing: [ctx] carries a table keyed on (constructor, child
   ids), so constructing a gate structurally identical to an existing
   one returns the existing node.  The checker encodes the source
   function once per universal choice assignment; shared structure
   across those encodings now collapses to shared nodes, and the
   Tseitin translation (memoized on node id) emits one CNF definition
   per distinct gate instead of one per occurrence.  Commutative gates
   are canonicalized by child id and Xor never has a negated child
   (Xor(¬x,y) = ¬Xor(x,y)), so cross-gate CSE catches reassociated and
   re-polarized duplicates too. *)

type t = { id : int; node : node }

and node =
  | True
  | False
  | Input of int (* free boolean variable, by input index *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Xor of t * t
  | Ite of t * t * t

(* hash-cons key: constructor + child ids *)
type hkey =
  | KNot of int
  | KAnd of int * int
  | KOr of int * int
  | KXor of int * int
  | KIte of int * int * int

type ctx = {
  mutable next_id : int;
  mutable next_input : int;
  mutable inputs : (int * string Lazy.t) list; (* input index -> debug name *)
  sharing : bool; (* hash-consing toggle (off only for measurement) *)
  table : (hkey, t) Hashtbl.t;
}

let create_ctx ?(sharing = true) () =
  { next_id = 2; next_input = 0; inputs = []; sharing; table = Hashtbl.create 64 }

let mk ctx node =
  let id = ctx.next_id in
  ctx.next_id <- ctx.next_id + 1;
  { id; node }

(* Hash-consing allocator: return the existing node for an identical
   (constructor, children) application, if any. *)
let hmk ctx key node =
  if not ctx.sharing then mk ctx node
  else
    match Hashtbl.find_opt ctx.table key with
    | Some t -> t
    | None ->
      let t = mk ctx node in
      Hashtbl.add ctx.table key t;
      t

let btrue = { id = 0; node = True }
let bfalse = { id = 1; node = False }
let of_bool b = if b then btrue else bfalse

(* Debug names are lazy: [Bvterm.fresh] allocates one input per bit and
   the names are only ever rendered when a human asks. *)
let fresh ?(name = lazy "b") ctx =
  let idx = ctx.next_input in
  ctx.next_input <- ctx.next_input + 1;
  ctx.inputs <- (idx, name) :: ctx.inputs;
  mk ctx (Input idx)

let input_name ctx idx =
  match List.assoc_opt idx ctx.inputs with Some n -> Lazy.force n | None -> "?"

let is_true b = b.node = True
let is_false b = b.node = False

(* Smart constructors with local simplification.  Structural-equality
   tests use ids; with hash-consing these hit far more often (e.g. two
   separately-built [bnot ctx x] are the same node, so And(x, ¬x) is
   recognized wherever it appears). *)

let rec bnot ctx a =
  match a.node with
  | True -> bfalse
  | False -> btrue
  | Not x -> x
  | _ -> hmk ctx (KNot a.id) (Not a)

and band ctx a b =
  if a.id = b.id then a
  else
    match (a.node, b.node) with
    | True, _ -> b
    | _, True -> a
    | False, _ | _, False -> bfalse
    | Not x, _ when x.id = b.id -> bfalse
    | _, Not y when y.id = a.id -> bfalse
    (* one-level absorption: a ∧ (a ∧ y) = (a ∧ y), a ∧ (a ∨ y) = a *)
    | And (x, y), _ when x.id = b.id || y.id = b.id -> a
    | _, And (x, y) when x.id = a.id || y.id = a.id -> b
    | Or (x, y), _ when x.id = b.id || y.id = b.id -> b
    | _, Or (x, y) when x.id = a.id || y.id = a.id -> a
    | _ ->
      (* canonical child order for commutative gates *)
      let a, b = if a.id <= b.id then (a, b) else (b, a) in
      hmk ctx (KAnd (a.id, b.id)) (And (a, b))

and bor ctx a b =
  if a.id = b.id then a
  else
    match (a.node, b.node) with
    | False, _ -> b
    | _, False -> a
    | True, _ | _, True -> btrue
    | Not x, _ when x.id = b.id -> btrue
    | _, Not y when y.id = a.id -> btrue
    (* one-level absorption: a ∨ (a ∨ y) = (a ∨ y), a ∨ (a ∧ y) = a *)
    | Or (x, y), _ when x.id = b.id || y.id = b.id -> a
    | _, Or (x, y) when x.id = a.id || y.id = a.id -> b
    | And (x, y), _ when x.id = b.id || y.id = b.id -> b
    | _, And (x, y) when x.id = a.id || y.id = a.id -> a
    | _ ->
      let a, b = if a.id <= b.id then (a, b) else (b, a) in
      hmk ctx (KOr (a.id, b.id)) (Or (a, b))

and bxor ctx a b =
  if a.id = b.id then bfalse
  else
    match (a.node, b.node) with
    | False, _ -> b
    | _, False -> a
    | True, _ -> bnot ctx b
    | _, True -> bnot ctx a
    (* negation normalization: Xor children are never Not nodes, so
       x⊕y, ¬x⊕y, x⊕¬y, ¬x⊕¬y all share one Xor gate *)
    | Not x, _ -> bnot ctx (bxor ctx x b)
    | _, Not y -> bnot ctx (bxor ctx a y)
    | _ ->
      let a, b = if a.id <= b.id then (a, b) else (b, a) in
      hmk ctx (KXor (a.id, b.id)) (Xor (a, b))

and bite ctx c a b =
  if a.id = b.id then a
  else
    match (c.node, a.node, b.node) with
    | True, _, _ -> a
    | False, _, _ -> b
    | _, True, False -> c
    | _, False, True -> bnot ctx c
    | _, True, _ -> bor ctx c b
    | _, False, _ -> band ctx (bnot ctx c) b
    | _, _, True -> bor ctx (bnot ctx c) a
    | _, _, False -> band ctx c a
    (* condition-negation normalization shares the two muxes *)
    | Not nc, _, _ -> bite ctx nc b a
    | _ -> hmk ctx (KIte (c.id, a.id, b.id)) (Ite (c, a, b))

let beq ctx a b = bnot ctx (bxor ctx a b)
let bimplies ctx a b = bor ctx (bnot ctx a) b

let big_and ctx = List.fold_left (band ctx) btrue
let big_or ctx = List.fold_left (bor ctx) bfalse

(* ------------------------------------------------------------------ *)
(* Tseitin CNF                                                         *)
(* ------------------------------------------------------------------ *)

module Cnf = struct
  open Ub_sat

  (* The builder is shared between the one-shot [solve] below and the
     persistent [Session] layer: variable allocation is a closure (a
     bump counter for one-shot solving, [Solver.new_var] for sessions),
     and input variables go through a memo table of their own instead of
     a fixed [1 + i] layout, because a session interleaves inputs of
     many queries with Tseitin variables.  The [vars_new] /
     [clauses_new] / [hits] counters are per-encoding: a session resets
     them before each query, so "re-encoding an identical circuit adds
     zero new clauses and variables" is a checkable property. *)
  type builder = {
    solver : Solver.t;
    node_var : (int, int) Hashtbl.t; (* circuit node id -> SAT var *)
    input_var : (int, int) Hashtbl.t; (* input index -> SAT var *)
    alloc : unit -> int; (* fresh-SAT-variable allocator *)
    mutable vars_new : int; (* variables allocated since the last reset *)
    mutable clauses_new : int; (* clauses submitted since the last reset *)
    mutable hits : int; (* node/input memo hits since the last reset *)
    mutable ok : bool; (* false once add_clause reported level-0 unsat *)
  }

  let make_builder ~(solver : Solver.t) ~(alloc : unit -> int) : builder =
    { solver; node_var = Hashtbl.create 64; input_var = Hashtbl.create 16; alloc;
      vars_new = 0; clauses_new = 0; hits = 0; ok = true }

  let reset_counters (b : builder) =
    b.vars_new <- 0;
    b.clauses_new <- 0;
    b.hits <- 0

  let add b c =
    b.clauses_new <- b.clauses_new + 1;
    if not (Solver.add_clause b.solver c) then b.ok <- false

  let fresh_var b =
    let v = b.alloc () in
    b.vars_new <- b.vars_new + 1;
    v

  let input_lit (b : builder) (i : int) : Solver.lit =
    match Hashtbl.find_opt b.input_var i with
    | Some v ->
      b.hits <- b.hits + 1;
      Solver.pos v
    | None ->
      let v = fresh_var b in
      Hashtbl.replace b.input_var i v;
      Solver.pos v

  (* Translate a node to a SAT variable, memoized. *)
  let rec lit_of (b : builder) (t : t) : Solver.lit =
    match t.node with
    | True -> Solver.pos 0 (* var 0 is pinned true *)
    | False -> Solver.neg 0
    | Input i -> input_lit b i
    | Not x -> Solver.lnot (lit_of b x)
    | _ -> (
      match Hashtbl.find_opt b.node_var t.id with
      | Some v ->
        b.hits <- b.hits + 1;
        Solver.pos v
      | None ->
        let v = fresh_var b in
        Hashtbl.replace b.node_var t.id v;
        let out = Solver.pos v in
        (match t.node with
        | And (x, y) ->
          let lx = lit_of b x and ly = lit_of b y in
          add b [ Solver.lnot out; lx ];
          add b [ Solver.lnot out; ly ];
          add b [ out; Solver.lnot lx; Solver.lnot ly ]
        | Or (x, y) ->
          let lx = lit_of b x and ly = lit_of b y in
          add b [ out; Solver.lnot lx ];
          add b [ out; Solver.lnot ly ];
          add b [ Solver.lnot out; lx; ly ]
        | Xor (x, y) ->
          let lx = lit_of b x and ly = lit_of b y in
          add b [ Solver.lnot out; lx; ly ];
          add b [ Solver.lnot out; Solver.lnot lx; Solver.lnot ly ];
          add b [ out; lx; Solver.lnot ly ];
          add b [ out; Solver.lnot lx; ly ]
        | Ite (c, x, y) ->
          let lc = lit_of b c and lx = lit_of b x and ly = lit_of b y in
          add b [ Solver.lnot out; Solver.lnot lc; lx ];
          add b [ Solver.lnot out; lc; ly ];
          add b [ out; Solver.lnot lc; Solver.lnot lx ];
          add b [ out; lc; Solver.lnot ly ]
        | True | False | Input _ | Not _ -> assert false);
        out)

  (* Read a model for the circuit inputs out of a full SAT assignment.
     An input the encoding never referenced is unconstrained; report it
     false (the zeros-bias default). *)
  let model_of_assignment (b : builder) (assignment : bool array) =
    fun i ->
      match Hashtbl.find_opt b.input_var i with
      | Some v when v < Array.length assignment -> assignment.(v)
      | _ -> false

  (* The CNF variables of [root]'s cone under this builder — every gate
     and input of the subgraph that [lit_of] assigned a variable — plus
     the circuit input indices of the cone.  A session passes the
     variables to [Solver.solve ~decision_vars] so a query against a
     long-lived solver branches only on its own encoding (everything
     else in the accumulated database is retired guards and
     always-extendable Tseitin definitions), and uses the input indices
     to materialize cached models without sweeping the whole input
     table.  Call after encoding [root] (a node outside the tables
     contributes nothing). *)
  let cone_vars (b : builder) (root : t) : int array * int array =
    let seen = Hashtbl.create 256 in
    let vars = ref [] in
    let inputs = ref [] in
    let rec go (n : t) =
      if not (Hashtbl.mem seen n.id) then begin
        Hashtbl.add seen n.id ();
        (match Hashtbl.find_opt b.node_var n.id with
        | Some v -> vars := v :: !vars
        | None -> ());
        match n.node with
        | True | False -> ()
        | Input i -> (
          match Hashtbl.find_opt b.input_var i with
          | Some v ->
            vars := v :: !vars;
            inputs := i :: !inputs
          | None -> ())
        | Not x -> go x
        | And (x, y) | Or (x, y) | Xor (x, y) ->
          go x;
          go y
        | Ite (c, x, y) ->
          go c;
          go x;
          go y
      end
    in
    go root;
    (Array.of_list !vars, Array.of_list !inputs)

  (* Forget every node→variable and input→variable memo whose variable
     [kept] rejects.  Must mirror a [Solver.simplify ~keep] eviction
     exactly: a memo surviving its definitions would make a later
     re-encode return a variable with no clauses behind it. *)
  let evict (b : builder) (kept : int -> bool) =
    let drop tbl =
      let dead = Hashtbl.fold (fun k v acc -> if kept v then acc else k :: acc) tbl [] in
      List.iter (Hashtbl.remove tbl) dead
    in
    drop b.node_var;
    drop b.input_var

  type model = { bool_of_input : int -> bool }

  type solve_result = Sat_model of model | Unsat_r

  exception Too_hard

  (* Per-query counters for the solver benchmark harness ([bench solver]).
     Filled into the [?stats] out-parameter of [solve] even when the
     query raises [Too_hard]. *)
  type stats = {
    circuit_nodes : int; (* circuit nodes allocated in the context *)
    cnf_vars : int; (* SAT variables actually used (const + inputs + Tseitin) *)
    cnf_clauses : int; (* clauses accepted by the solver *)
    conflicts : int;
    decisions : int;
    propagations : int;
    restarts : int;
    learned_peak : int; (* peak learned-clause DB size *)
    vars_new : int; (* SAT vars this query allocated (≠ cnf_vars in a session) *)
    clauses_new : int; (* clauses this query emitted *)
    shared_hits : int; (* node/input encodings reused from an earlier query *)
  }

  let no_stats =
    { circuit_nodes = 0; cnf_vars = 0; cnf_clauses = 0; conflicts = 0; decisions = 0;
      propagations = 0; restarts = 0; learned_peak = 0; vars_new = 0; clauses_new = 0;
      shared_hits = 0 }

  (* Every query also feeds the process-wide telemetry registry: run
     reports carry aggregate solver counters without any caller having
     to thread a [?stats] ref through. *)
  let observe_query (ctx : ctx) (b : builder) =
    let module Obs = Ub_obs.Obs in
    let st = Ub_sat.Solver.statistics b.solver in
    Obs.count "solver.queries";
    Obs.count ~by:st.Ub_sat.Solver.st_conflicts "solver.conflicts";
    Obs.count ~by:st.Ub_sat.Solver.st_decisions "solver.decisions";
    Obs.count ~by:st.Ub_sat.Solver.st_propagations "solver.propagations";
    Obs.count ~by:st.Ub_sat.Solver.st_restarts "solver.restarts";
    Obs.observe "smt.cnf_clauses" (float_of_int st.Ub_sat.Solver.st_clauses);
    Obs.observe "smt.cnf_vars" (float_of_int (1 + b.vars_new));
    Obs.observe "smt.circuit_nodes" (float_of_int ctx.next_id)

  let record_stats (stats_out : stats ref option) (ctx : ctx) (b : builder) =
    observe_query ctx b;
    match stats_out with
    | None -> ()
    | Some r ->
      let st = Ub_sat.Solver.statistics b.solver in
      (* one-shot builder: every used var is new, plus the pinned const *)
      let used_vars = 1 + b.vars_new in
      r :=
        { circuit_nodes = ctx.next_id;
          cnf_vars = used_vars;
          cnf_clauses = st.Ub_sat.Solver.st_clauses;
          conflicts = st.Ub_sat.Solver.st_conflicts;
          decisions = st.Ub_sat.Solver.st_decisions;
          propagations = st.Ub_sat.Solver.st_propagations;
          restarts = st.Ub_sat.Solver.st_restarts;
          learned_peak = st.Ub_sat.Solver.st_learned_peak;
          vars_new = b.vars_new;
          clauses_new = b.clauses_new;
          shared_hits = b.hits;
        }

  (* Satisfiability of [root = true].  [max_conflicts] bounds solver
     effort; raises [Too_hard] when exceeded. *)
  let solve ?(max_conflicts = 2_000_000) ?stats (ctx : ctx) (root : t) : solve_result =
    Ub_obs.Obs.with_span "smt.solve" @@ fun () ->
    (* var 0: constant true; inputs and Tseitin vars allocated on demand.
       Upper bound on vars: 1 + inputs + nodes; preallocating it avoids
       the growth path entirely on the one-shot hot path. *)
    let nvars = 1 + ctx.next_input + ctx.next_id in
    let solver = Ub_sat.Solver.create nvars in
    let next = ref 1 in
    let alloc () =
      let v = !next in
      incr next;
      v
    in
    let b = make_builder ~solver ~alloc in
    add b [ Ub_sat.Solver.pos 0 ];
    let root_lit = lit_of b root in
    add b [ root_lit ];
    if not b.ok then begin
      record_stats stats ctx b;
      Unsat_r
    end
    else begin
      match
        try
          let r = Ub_sat.Solver.solve ~max_conflicts solver in
          record_stats stats ctx b;
          r
        with Ub_sat.Solver.Budget_exceeded ->
          record_stats stats ctx b;
          raise Too_hard
      with
      | Ub_sat.Solver.Unsat -> Unsat_r
      | Ub_sat.Solver.Sat assignment ->
        Sat_model { bool_of_input = model_of_assignment b assignment }
    end
end

(* Concrete evaluation of a circuit under an input assignment — used to
   cross-check the bit-blaster against Bitvec and to validate SAT
   models.  Memoized on node ids: blasted circuits are heavily shared
   DAGs. *)
let eval (assign : int -> bool) (t : t) : bool =
  let memo : (int, bool) Hashtbl.t = Hashtbl.create 256 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
      let v =
        match t.node with
        | True -> true
        | False -> false
        | Input i -> assign i
        | Not x -> not (go x)
        | And (x, y) -> go x && go y
        | Or (x, y) -> go x || go y
        | Xor (x, y) -> go x <> go y
        | Ite (c, x, y) -> if go c then go x else go y
      in
      Hashtbl.replace memo t.id v;
      v
  in
  go t
