(* Persistent solver sessions (DESIGN.md section 13).

   A session keeps one [Ub_sat.Solver.t] alive across refinement
   queries.  Tseitin definitions are equivalences over fresh variables,
   so they are satisfiable in any context and can be added permanently;
   what makes a query a *query* is one fresh activation literal [a] and
   one guard clause [¬a ∨ root]: solving under the assumption [a] asks
   for a model of [root] against everything encoded so far, and adding
   the root unit [¬a] afterwards retracts the query for good (the next
   inprocessing pass purges every clause the retired literal guarded).
   Because the circuit context is hash-consed and the builder memoizes
   node→variable and input→variable translations, a query structurally
   close to an earlier one re-encodes as pure table hits: zero new
   clauses, zero new variables, and every learned clause the solver
   derived about the shared structure still applies.

   Reset policy.  Three events replace the solver (a "soft reset": the
   circuit context and its node ids survive, so callers' circuits stay
   valid):
   - the solver latched [root_unsat] (its database is refuted for good);
   - a size watermark tripped (variables or live clauses), bounding
     memory for long-lived serve connections;
   - the previous query was aborted mid-flight (the [dirty] flag below):
     a deadline signal can interrupt encoding or search anywhere, and a
     half-updated trail or memo table must not serve another query.
   A "hard reset" additionally replaces the circuit context and bumps
   [generation]; it only happens inside [ctx], which callers invoke at
   the start of each query, so a context is never swapped out from under
   circuits built against it.  Callers caching circuits across queries
   key their caches on [generation]. *)

open Ub_sat

type t = {
  mutable ctx : Circuit.ctx;
  mutable solver : Solver.t;
  mutable builder : Circuit.Cnf.builder;
  mutable generation : int; (* bumped on hard reset: cached circuits die *)
  mutable dirty : bool; (* an encode/solve is in flight (or was aborted) *)
  mutable queries : int;
  mutable queries_since_simplify : int;
  mutable simplifies : int; (* inprocessing passes this solver lifetime *)
  mutable clauses_at_simplify : int; (* [num_added_clauses] at the last pass *)
  mutable resets : int; (* soft resets, all causes *)
  mutable hard_resets : int;
  mutable evictions : int; (* cone-eviction passes this session lifetime *)
  cone_cache : (int, int array * int array) Hashtbl.t;
      (* root node id -> (cone CNF vars, cone circuit-input indices) *)
  result_cache : (int, Circuit.Cnf.solve_result) Hashtbl.t;
      (* root node id -> settled verdict.  A hash-consed root id names one
         circuit for the lifetime of the context, and its satisfiability
         is a property of that circuit alone (the session database never
         constrains a cone beyond its own semantics), so verdicts survive
         soft resets and eviction; only a hard reset (new context,
         recycled ids) clears this.  Sat entries hold materialized
         models — a lazy model closure would read builder memos that
         eviction or a soft reset may have dropped. *)
  mutable recent_cones : int array list; (* LRU, most recently queried first *)
  mutable live_vars : int; (* estimated un-evicted encoding vars *)
  max_vars : int; (* solver-variable watermark for soft reset *)
  max_clauses : int; (* added-problem-clause watermark for soft reset *)
  max_nodes : int; (* circuit-node watermark for hard reset *)
  max_live_vars : int; (* cone-eviction threshold, in encoding variables *)
  simplify_every : int; (* inprocessing cadence, in queries *)
}

let fresh_solver () =
  (* variable 0 is pinned true, matching the one-shot encoding *)
  let solver = Solver.create 1 in
  ignore (Solver.add_clause solver [ Solver.pos 0 ]);
  solver

let make_builder (solver : Solver.t) =
  Circuit.Cnf.make_builder ~solver ~alloc:(fun () -> Solver.new_var solver)

let create ?(max_vars = 200_000) ?(max_clauses = 400_000) ?(max_nodes = 2_000_000)
    ?(max_live_vars = 32_768) ?(simplify_every = 8) () : t =
  let solver = fresh_solver () in
  { ctx = Circuit.create_ctx ();
    solver;
    builder = make_builder solver;
    generation = 0;
    dirty = false;
    queries = 0;
    queries_since_simplify = 0;
    simplifies = 0;
    clauses_at_simplify = 0;
    resets = 0;
    hard_resets = 0;
    evictions = 0;
    cone_cache = Hashtbl.create 64;
    result_cache = Hashtbl.create 64;
    recent_cones = [];
    live_vars = 0;
    max_vars;
    max_clauses;
    max_nodes;
    max_live_vars;
    simplify_every;
  }

let generation (t : t) = t.generation
let queries (t : t) = t.queries
let resets (t : t) = t.resets
let hard_resets (t : t) = t.hard_resets
let evictions (t : t) = t.evictions

let soft_reset (t : t) =
  t.resets <- t.resets + 1;
  Ub_obs.Obs.count "session.resets";
  t.solver <- fresh_solver ();
  t.builder <- make_builder t.solver;
  t.queries_since_simplify <- 0;
  t.simplifies <- 0;
  t.clauses_at_simplify <- 0;
  Hashtbl.reset t.cone_cache; (* cached cones name the old builder's vars *)
  t.recent_cones <- [];
  t.live_vars <- 0;
  t.dirty <- false

(* The circuit context for the next query.  This is the only place a
   hard reset may happen: the caller is about to build fresh circuits,
   so no live circuit of theirs can refer to the outgoing context. *)
let ctx (t : t) : Circuit.ctx =
  if t.ctx.Circuit.next_id > t.max_nodes then begin
    t.hard_resets <- t.hard_resets + 1;
    t.generation <- t.generation + 1;
    Ub_obs.Obs.count "session.hard_resets";
    t.ctx <- Circuit.create_ctx ();
    Hashtbl.reset t.result_cache; (* node ids are about to be recycled *)
    soft_reset t
  end;
  t.ctx

(* Per-query statistics: solver counters are lifetime counters of the
   shared solver, so the per-query numbers are deltas against a snapshot
   taken at query entry. *)
let delta_stats (t : t) (st0 : Solver.statistics) : Circuit.Cnf.stats =
  let st = Solver.statistics t.solver in
  let b = t.builder in
  { Circuit.Cnf.circuit_nodes = t.ctx.Circuit.next_id;
    cnf_vars = Solver.num_vars t.solver;
    cnf_clauses = st.Solver.st_clauses;
    conflicts = st.Solver.st_conflicts - st0.Solver.st_conflicts;
    decisions = st.Solver.st_decisions - st0.Solver.st_decisions;
    propagations = st.Solver.st_propagations - st0.Solver.st_propagations;
    restarts = st.Solver.st_restarts - st0.Solver.st_restarts;
    learned_peak = st.Solver.st_learned_peak;
    vars_new = b.Circuit.Cnf.vars_new;
    clauses_new = b.Circuit.Cnf.clauses_new;
    shared_hits = b.Circuit.Cnf.hits;
  }

let observe (t : t) =
  let module Obs = Ub_obs.Obs in
  let b = t.builder in
  Obs.count "session.queries";
  Obs.count ~by:b.Circuit.Cnf.vars_new "session.vars_new";
  Obs.count ~by:b.Circuit.Cnf.hits "session.vars_shared";
  Obs.count ~by:b.Circuit.Cnf.clauses_new "session.clauses_new"

(* Cone eviction: keep the most-recently-queried cones whose union fits
   the [max_live_vars] budget (the newest always survives, even alone
   over budget), drop every clause mentioning anything older, and forget
   the matching builder memos and cached cones.  This is what keeps a
   long-lived session's per-query cost proportional to the query: the
   retired cones' Tseitin definitions share input variables with live
   queries, so until they are dropped every new assignment re-propagates
   through all of them. *)
let eviction_keep (t : t) : (int -> bool) option =
  let nvars = Solver.num_vars t.solver in
  let keep = Array.make nvars false in
  keep.(0) <- true (* the pinned-true variable anchors constant literals *);
  let marked = ref 0 in
  let budget = ref t.max_live_vars in
  let mark cone =
    Array.iter
      (fun v ->
        if v < nvars && not keep.(v) then begin
          keep.(v) <- true;
          incr marked;
          decr budget
        end)
      cone
  in
  let rec go newest = function
    | [] -> []
    | cone :: rest ->
      if (not newest) && !budget <= 0 then []
      else begin
        mark cone;
        cone :: go false rest
      end
  in
  t.recent_cones <- go true t.recent_cones;
  t.live_vars <- !marked;
  t.evictions <- t.evictions + 1;
  Ub_obs.Obs.count "session.evictions";
  let pred v = v < nvars && keep.(v) in
  Some pred

(* Retire the query's activation literal and run the between-queries
   maintenance.  Called on every exit path of [solve] that leaves the
   solver in a consistent state (the CDCL loop backtracks to level 0
   both on return and on budget exhaustion). *)
let retire (t : t) (act : int) =
  ignore (Solver.add_clause t.solver [ Solver.neg act ]);
  t.queries_since_simplify <- t.queries_since_simplify + 1;
  if not (Solver.is_root_unsat t.solver) then begin
    let evict = t.live_vars > t.max_live_vars in
    (* inprocessing is linear in the database, so only run it when there
       is enough garbage to be worth a sweep: an eviction is due, or the
       cadence came up AND the database actually grew since last time
       (a pure re-encode stream adds one guard clause per query and
       would otherwise pay a full sweep to collect eight clauses) *)
    let garbage = Solver.num_added_clauses t.solver - t.clauses_at_simplify in
    if evict || (t.queries_since_simplify >= t.simplify_every && garbage >= 256) then begin
      t.queries_since_simplify <- 0;
      t.clauses_at_simplify <- Solver.num_added_clauses t.solver;
      t.simplifies <- t.simplifies + 1;
      Ub_obs.Obs.count "session.simplifies";
      let keep = if evict then eviction_keep t else None in
      (* purge + strengthen every pass; backward subsumption spends its
         comparison budget even when nothing is subsumable, so only
         every 8th pass pays for it *)
      ignore (Solver.simplify ~subsume:(t.simplifies mod 8 = 0) ?keep t.solver);
      match keep with
      | Some pred ->
        (* the builder must forget memos for evicted variables, or a
           later hash-cons hit would hand out a variable whose defining
           clauses are gone *)
        Circuit.Cnf.evict t.builder pred;
        let dead =
          Hashtbl.fold
            (fun root (cone, _) acc -> if Array.for_all pred cone then acc else root :: acc)
            t.cone_cache []
        in
        List.iter (Hashtbl.remove t.cone_cache) dead
      | None -> ()
    end
  end;
  t.dirty <- false

(* A model snapshot over the query's cone inputs, valid after eviction
   and soft resets: [model_of_assignment] closures read the builder's
   memo tables lazily, and those tables shrink over the session's
   lifetime.  Inputs outside the cone read false, matching the
   zeros-bias default for inputs the encoding never referenced. *)
let materialized_model (b : Circuit.Cnf.builder) (inputs : int array)
    (assignment : bool array) : Circuit.Cnf.model =
  let tbl = Hashtbl.create (max 16 (Array.length inputs)) in
  Array.iter
    (fun i ->
      match Hashtbl.find_opt b.Circuit.Cnf.input_var i with
      | Some v when v < Array.length assignment -> Hashtbl.replace tbl i assignment.(v)
      | _ -> ())
    inputs;
  { Circuit.Cnf.bool_of_input =
      (fun i -> match Hashtbl.find_opt tbl i with Some b -> b | None -> false)
  }

(* Satisfiability of [root = true] against this session, mirroring the
   contract of [Circuit.Cnf.solve]: [Unsat_r] / [Sat_model] verdicts,
   [Too_hard] on budget exhaustion, [?stats] filled either way.  [root]
   must have been built against [ctx t] in the current generation. *)
let solve ?(max_conflicts = 2_000_000) ?stats (t : t) (root : Circuit.t) :
    Circuit.Cnf.solve_result =
  Ub_obs.Obs.with_span "smt.session.solve" @@ fun () ->
  if t.dirty then begin
    Ub_obs.Obs.count "session.resets_dirty";
    soft_reset t
  end;
  if Solver.is_root_unsat t.solver then soft_reset t;
  if
    Solver.num_vars t.solver > t.max_vars
    || Solver.num_added_clauses t.solver > t.max_clauses
  then begin
    Ub_obs.Obs.count "session.resets_watermark";
    soft_reset t
  end;
  match Hashtbl.find_opt t.result_cache root.Circuit.id with
  | Some r ->
    (* this exact circuit was settled earlier in the session: the verdict
       is a property of the circuit alone, so replay it without touching
       the solver *)
    t.queries <- t.queries + 1;
    Ub_obs.Obs.count "session.answer_hits";
    Circuit.Cnf.reset_counters t.builder;
    let st0 = Solver.statistics t.solver in
    observe t;
    (match stats with None -> () | Some s -> s := delta_stats t st0);
    r
  | None ->
  t.dirty <- true;
  t.queries <- t.queries + 1;
  Circuit.Cnf.reset_counters t.builder;
  let st0 = Solver.statistics t.solver in
  let root_lit = Circuit.Cnf.lit_of t.builder root in
  let root_lit =
    if t.builder.Circuit.Cnf.ok then root_lit
    else begin
      (* the shared database was refuted while encoding — impossible for
         pure Tseitin definitions, but recover by starting clean *)
      soft_reset t;
      t.dirty <- true;
      Circuit.Cnf.reset_counters t.builder;
      Circuit.Cnf.lit_of t.builder root
    end
  in
  (* The activation literal and its guard clause deliberately bypass the
     builder counters: [vars_new] / [clauses_new] measure encoding
     sharing, and the per-query guard would otherwise hide a perfect
     zero-new-clauses re-encode. *)
  let act = Solver.new_var t.solver in
  ignore (Solver.add_clause t.solver [ Solver.neg act; root_lit ]);
  (* Branching is restricted to the query's own cone: everything else in
     the shared database is retired guards and always-extendable Tseitin
     definitions, so a model over the cone proves satisfiability and the
     per-query search cost stays proportional to the query, not to the
     session.  The cone of a hash-consed root is immutable, so it is
     computed once per root node and cached for the builder's lifetime. *)
  let decision_vars, cone_inputs =
    match Hashtbl.find_opt t.cone_cache root.Circuit.id with
    | Some c -> c
    | None ->
      let c = Circuit.Cnf.cone_vars t.builder root in
      Hashtbl.replace t.cone_cache root.Circuit.id c;
      c
  in
  t.live_vars <- t.live_vars + t.builder.Circuit.Cnf.vars_new;
  (* LRU move-to-front (physical equality: cones are shared via the
     cache), so eviction keeps what the workload actually re-queries *)
  t.recent_cones <- decision_vars :: List.filter (fun c -> c != decision_vars) t.recent_cones;
  let record () =
    observe t;
    match stats with None -> () | Some r -> r := delta_stats t st0
  in
  match
    try
      let r =
        Solver.solve ~max_conflicts ~assumptions:[ Solver.pos act ] ~decision_vars t.solver
      in
      retire t act;
      record ();
      r
    with Solver.Budget_exceeded ->
      (* the solver backtracked to level 0 before re-raising, so the
         session stays usable: retire this query and report Too_hard *)
      retire t act;
      record ();
      raise Circuit.Cnf.Too_hard
  with
  | Solver.Unsat ->
    Hashtbl.replace t.result_cache root.Circuit.id Circuit.Cnf.Unsat_r;
    Circuit.Cnf.Unsat_r
  | Solver.Sat assignment ->
    let r = Circuit.Cnf.Sat_model (materialized_model t.builder cone_inputs assignment) in
    Hashtbl.replace t.result_cache root.Circuit.id r;
    r
