(* Bit-blasted bitvector arithmetic over [Circuit].  A symbolic bitvector
   is an array of circuit bits, LSB first.  Operations mirror [Bitvec]
   exactly — a qcheck property asserts agreement on random inputs. *)

open Ub_support

type t = Circuit.t array (* LSB first *)

let width (t : t) = Array.length t

let const ctx (bv : Bitvec.t) : t =
  ignore ctx;
  Array.init (Bitvec.width bv) (fun i -> Circuit.of_bool (Bitvec.get_bit bv i))

(* Debug names are formatted lazily: one closure per bit instead of one
   [sprintf] per bit — nothing reads the names on the hot path. *)
let fresh ?(name = "v") ctx ~width : t =
  Array.init width (fun i -> Circuit.fresh ~name:(lazy (Printf.sprintf "%s[%d]" name i)) ctx)

let zero _ctx ~width = Array.make width Circuit.bfalse

(* Extract the concrete value of a symbolic bitvector under a model. *)
let value_in_model (model : int -> bool) (input_index : Circuit.t -> int option) (t : t) :
    Bitvec.t =
  let bv = ref (Bitvec.zero (width t)) in
  Array.iteri
    (fun i bit ->
      let b =
        match input_index bit with
        | Some idx -> model idx
        | None -> Circuit.eval model bit
      in
      if b then bv := Bitvec.set_bit !bv i true)
    t;
  !bv

(* ------------------------------------------------------------------ *)
(* Bitwise                                                             *)
(* ------------------------------------------------------------------ *)

let map2 ctx f a b =
  if width a <> width b then invalid_arg "Bvterm: width mismatch";
  Array.init (width a) (fun i -> f ctx a.(i) b.(i))

let logand ctx = map2 ctx Circuit.band
let logor ctx = map2 ctx Circuit.bor
let logxor ctx = map2 ctx Circuit.bxor
let lognot ctx a = Array.map (Circuit.bnot ctx) a

let ite ctx c a b = map2 ctx (fun ctx x y -> Circuit.bite ctx c x y) a b

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

(* Ripple-carry adder; returns (sum, carry_out, carry_into_msb). *)
let add_full ctx a b ~carry_in =
  let w = width a in
  let sum = Array.make w Circuit.bfalse in
  let carry = ref carry_in in
  let carry_into_msb = ref carry_in in
  for i = 0 to w - 1 do
    if i = w - 1 then carry_into_msb := !carry;
    let x = a.(i) and y = b.(i) in
    sum.(i) <- Circuit.bxor ctx (Circuit.bxor ctx x y) !carry;
    carry :=
      Circuit.bor ctx (Circuit.band ctx x y) (Circuit.band ctx !carry (Circuit.bxor ctx x y))
  done;
  (sum, !carry, !carry_into_msb)

let add ctx a b =
  let s, _, _ = add_full ctx a b ~carry_in:Circuit.bfalse in
  s

let sub ctx a b =
  let s, _, _ = add_full ctx a (lognot ctx b) ~carry_in:Circuit.btrue in
  s

let neg ctx a = sub ctx (zero ctx ~width:(width a)) a

(* Unsigned overflow of a+b: carry out. *)
let add_nuw_overflows ctx a b =
  let _, cout, _ = add_full ctx a b ~carry_in:Circuit.bfalse in
  cout

(* Signed overflow of a+b: carry into MSB xor carry out of MSB. *)
let add_nsw_overflows ctx a b =
  let _, cout, cmsb = add_full ctx a b ~carry_in:Circuit.bfalse in
  Circuit.bxor ctx cout cmsb

(* a-b unsigned underflow: borrow = not carry-out of a + ~b + 1. *)
let sub_nuw_overflows ctx a b =
  let _, cout, _ = add_full ctx a (lognot ctx b) ~carry_in:Circuit.btrue in
  Circuit.bnot ctx cout

let sub_nsw_overflows ctx a b =
  let _, cout, cmsb = add_full ctx a (lognot ctx b) ~carry_in:Circuit.btrue in
  Circuit.bxor ctx cout cmsb

let zext ctx a ~width:w =
  ignore ctx;
  if w < width a then invalid_arg "Bvterm.zext";
  Array.init w (fun i -> if i < width a then a.(i) else Circuit.bfalse)

let sext ctx a ~width:w =
  ignore ctx;
  if w < width a then invalid_arg "Bvterm.sext";
  let msb = a.(width a - 1) in
  Array.init w (fun i -> if i < width a then a.(i) else msb)

let trunc _ctx a ~width:w =
  if w > width a then invalid_arg "Bvterm.trunc";
  Array.sub a 0 w

(* Shift-add multiplier.  Partial products are masked rows of [a]. *)
let mul ctx a b =
  let w = width a in
  let acc = ref (zero ctx ~width:w) in
  for i = 0 to w - 1 do
    (* row_i = (a << i) AND b.(i) *)
    let row =
      Array.init w (fun j -> if j < i then Circuit.bfalse else Circuit.band ctx a.(j - i) b.(i))
    in
    acc := add ctx !acc row
  done;
  !acc

(* Overflow checks for multiplication via widened product. *)
let mul_wide ctx a b =
  let w = width a in
  let aw = zext ctx a ~width:(2 * w) and bw = zext ctx b ~width:(2 * w) in
  mul ctx aw bw

let mul_nuw_overflows ctx a b =
  let w = width a in
  let wide = mul_wide ctx a b in
  Circuit.big_or ctx (Array.to_list (Array.sub wide w w))

let mul_nsw_overflows ctx a b =
  let w = width a in
  let aw = sext ctx a ~width:(2 * w) and bw = sext ctx b ~width:(2 * w) in
  let wide = mul ctx aw bw in
  (* overflow unless bits [w-1 .. 2w-1] all equal the sign bit wide[w-1] *)
  let sign = wide.(w - 1) in
  let ok =
    Circuit.big_and ctx
      (List.init w (fun i -> Circuit.beq ctx wide.(w + i - 1 + 1) sign))
  in
  (* note: bits w..2w-1 must equal sign *)
  Circuit.bnot ctx ok

(* ------------------------------------------------------------------ *)
(* Comparisons                                                         *)
(* ------------------------------------------------------------------ *)

let eq ctx a b =
  Circuit.big_and ctx (Array.to_list (map2 ctx Circuit.beq a b))

let ne ctx a b = Circuit.bnot ctx (eq ctx a b)

(* a < b unsigned: borrow out of a - b. *)
let ult ctx a b = sub_nuw_overflows ctx a b
let ule ctx a b = Circuit.bnot ctx (ult ctx b a)
let ugt ctx a b = ult ctx b a
let uge ctx a b = ule ctx b a

(* signed: flip sign bits and compare unsigned *)
let flip_sign ctx a =
  let w = width a in
  Array.init w (fun i -> if i = w - 1 then Circuit.bnot ctx a.(i) else a.(i))

let slt ctx a b = ult ctx (flip_sign ctx a) (flip_sign ctx b)
let sle ctx a b = Circuit.bnot ctx (slt ctx b a)
let sgt ctx a b = slt ctx b a
let sge ctx a b = sle ctx b a

let is_zero ctx a = Circuit.bnot ctx (Circuit.big_or ctx (Array.to_list a))

(* ------------------------------------------------------------------ *)
(* Shifts (barrel shifter over the log2 w low bits of the amount)      *)
(* ------------------------------------------------------------------ *)

(* [shift_oob ctx a n]: amount >= width (looking at the full amount). *)
let shift_oob ctx a n =
  let w = width a in
  let wbv = const ctx (Bitvec.of_int ~width:(width n) w) in
  uge ctx n wbv

let barrel ctx ~fill ~left a n =
  let w = width a in
  let stages = int_of_float (ceil (log (float_of_int w) /. log 2.0)) in
  let stages = max stages 1 in
  let cur = ref (Array.copy a) in
  for s = 0 to stages - 1 do
    let k = 1 lsl s in
    if s < width n then begin
      let shifted =
        Array.init w (fun i ->
            if left then if i - k >= 0 then !cur.(i - k) else fill i
            else if i + k < w then !cur.(i + k)
            else fill i)
      in
      cur := Array.init w (fun i -> Circuit.bite ctx n.(s) shifted.(i) !cur.(i))
    end
  done;
  !cur

let shl ctx a n = barrel ctx ~fill:(fun _ -> Circuit.bfalse) ~left:true a n
let lshr ctx a n = barrel ctx ~fill:(fun _ -> Circuit.bfalse) ~left:false a n

let ashr ctx a n =
  let msb = a.(width a - 1) in
  barrel ctx ~fill:(fun _ -> msb) ~left:false a n

(* shl nuw: shifted-out bits nonzero <=> lshr (shl a n) n <> a for nuw;
   nsw: ashr (shl a n) n <> a. *)
let shl_nuw_overflows ctx a n =
  let r = shl ctx a n in
  ne ctx (lshr ctx r n) a

let shl_nsw_overflows ctx a n =
  let r = shl ctx a n in
  ne ctx (ashr ctx r n) a

let lshr_exact_violated ctx a n = ne ctx (shl ctx (lshr ctx a n) n) a
let ashr_exact_violated = lshr_exact_violated

(* ------------------------------------------------------------------ *)
(* Division (restoring long division)                                  *)
(* ------------------------------------------------------------------ *)

(* Computes (quotient, remainder) of unsigned division, assuming the
   divisor is nonzero (the caller adds the UB side-condition). *)
let udiv_urem ctx a b =
  let w = width a in
  let r = ref (zero ctx ~width:w) in
  let q = Array.make w Circuit.bfalse in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a[i] *)
    r := Array.init w (fun j -> if j = 0 then a.(i) else !r.(j - 1));
    let ge = uge ctx !r b in
    let r' = sub ctx !r b in
    r := ite ctx ge r' !r;
    q.(i) <- ge
  done;
  (q, !r)

let udiv ctx a b = fst (udiv_urem ctx a b)
let urem ctx a b = snd (udiv_urem ctx a b)

(* Signed division truncating toward zero, like Bitvec.sdiv.  The
   INT_MIN/-1 case is immediate UB at the IR level; the circuit wraps
   (matching Bitvec) so the encoding stays total. *)
let sdiv_srem ctx a b =
  let w = width a in
  let sa = a.(w - 1) and sb = b.(w - 1) in
  let abs_ ctx x s = ite ctx s (neg ctx x) x in
  let qa = abs_ ctx a sa and qb = abs_ ctx b sb in
  let q, r = udiv_urem ctx qa qb in
  let qsign = Circuit.bxor ctx sa sb in
  (ite ctx qsign (neg ctx q) q, ite ctx sa (neg ctx r) r)

let sdiv ctx a b = fst (sdiv_srem ctx a b)
let srem ctx a b = snd (sdiv_srem ctx a b)

let sdiv_overflows ctx a b =
  let w = width a in
  let int_min = const ctx (Bitvec.min_signed w) in
  let all1 = const ctx (Bitvec.all_ones w) in
  Circuit.band ctx (eq ctx a int_min) (eq ctx b all1)
