(* A fork-based worker pool for embarrassingly parallel, pure tasks
   (refinement queries, corpus sweeps).  Tasks are sharded round-robin
   across [jobs] workers; each worker is a forked child that streams
   marshalled [(index, result)] records into a per-shard spool file, so

     - a worker that segfaults, is OOM-killed or raises mid-shard loses
       only the task it was on: the parent marks that one task [Crashed]
       and respawns a worker for the remainder of the shard;
     - a task that exceeds [timeout_s] is interrupted by SIGALRM inside
       the child and reported as [Timed_out] without killing the worker;
     - results are reassembled by original index, so the output array is
       deterministic and independent of scheduling or [jobs].

   With [jobs <= 1] no process is forked: tasks run in the calling
   process with the same per-task exception/timeout envelope, so the
   result array is identical to a parallel run (modulo genuine crashes,
   which in-process necessarily take down the run). *)

module Obs = Ub_obs.Obs

type 'b result = Done of 'b | Crashed of string | Timed_out

type shard_stat = {
  shard : int;
  tasks : int;
  crashed : int;
  timed_out : int;
  busy_s : float; (* sum of task run times inside the worker(s) *)
  wall_s : float; (* parent-side spawn-to-reap wall clock *)
  respawns : int; (* extra workers forked after a crash *)
}

type stats = {
  jobs : int;
  task_count : int;
  wall_s : float; (* whole-pool wall clock *)
  shards : shard_stat list;
  utilization : float; (* total busy / (jobs * wall) *)
}

let result_map f = function
  | Done v -> Done (f v)
  | Crashed m -> Crashed m
  | Timed_out -> Timed_out

(* ------------------------------------------------------------------ *)
(* The per-task envelope (used by both the child and the sequential    *)
(* path): catch exceptions, enforce the timeout with ITIMER_REAL.      *)
(* ------------------------------------------------------------------ *)

exception Task_timeout

let set_timer s =
  ignore (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.0; it_value = s })

let run_task ?timeout_s f x : _ result =
  let outcome = function
    | Done _ -> Obs.count "pool.task_done"
    | Crashed _ -> Obs.count "pool.task_crashed"
    | Timed_out -> Obs.count "pool.task_timeout"
  in
  let r =
    match timeout_s with
    | None -> ( try Done (f x) with e -> Crashed (Printexc.to_string e))
    | Some s ->
      let old_handler =
        Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Task_timeout))
      in
      let t0 = Obs.Clock.now_s () in
      (* setitimer returns the previous timer: if a caller (an enclosing
         run_task) had a deadline running, remember it so we can re-arm
         what is left of it on the way out.  Blindly zeroing the timer
         here used to cancel the outer task's timeout for good. *)
      let old_timer =
        Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.0; it_value = s }
      in
      (* The handler/timer must be restored even if an asynchronous
         Task_timeout lands outside the try (e.g. while the Crashed
         branch is formatting), hence Fun.protect rather than
         straight-line restore code. *)
      Fun.protect
        ~finally:(fun () ->
          set_timer 0.0;
          Sys.set_signal Sys.sigalrm old_handler;
          if old_timer.Unix.it_value > 0.0 then begin
            let remaining = old_timer.Unix.it_value -. Obs.Clock.elapsed_s ~since:t0 in
            (* an already-expired outer deadline still has to fire *)
            set_timer (if remaining <= 0.0 then 1e-6 else remaining)
          end)
        (fun () ->
          try Done (f x) with
          | Task_timeout -> Timed_out
          | e -> Crashed (Printexc.to_string e))
  in
  outcome r;
  r

(* ------------------------------------------------------------------ *)
(* Worker protocol: a spool file of marshalled messages.               *)
(* ------------------------------------------------------------------ *)

type 'b msg = Res of int * 'b result | Busy of float | Telemetry of Obs.payload

let worker ?timeout_s f (tasks : (int * 'a) list) (path : string) : unit =
  (* the child must not share the parent's trace channel or registry:
     record into an in-memory sink and ship it back over the spool *)
  Obs.child_begin ();
  let oc = open_out_bin path in
  let busy = ref 0.0 in
  List.iter
    (fun (idx, x) ->
      Obs.event "pool.task_dispatch" ~attrs:[ ("task", Obs.I idx) ];
      let t0 = Obs.Clock.now_s () in
      let r = Obs.with_span "pool.task" (fun () -> run_task ?timeout_s f x) in
      busy := !busy +. Obs.Clock.elapsed_s ~since:t0;
      Marshal.to_channel oc (Res (idx, r) : _ msg) [];
      Marshal.to_channel oc (Telemetry (Obs.drain ()) : _ msg) [];
      flush oc)
    tasks;
  Marshal.to_channel oc (Busy !busy : _ msg) [];
  flush oc;
  close_out oc

(* Read whatever the worker managed to write; a record truncated by a
   mid-write crash shows up as End_of_file/Failure and is dropped.
   Telemetry drained from the worker is absorbed into this process,
   tagged with the shard it came from. *)
let read_spool ~shard path (tbl : (int, 'b result) Hashtbl.t) : float =
  let busy = ref 0.0 in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    (try
       while true do
         match (Marshal.from_channel ic : 'b msg) with
         | Res (idx, r) -> Hashtbl.replace tbl idx r
         | Busy b -> busy := !busy +. b
         | Telemetry p -> Obs.absorb p ~attrs:[ ("shard", Obs.I shard) ]
       done
     with End_of_file | Failure _ -> ());
    close_in ic
  end;
  !busy

let describe_status = function
  | Unix.WEXITED n -> Printf.sprintf "worker exited with code %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

(* waitpid may be interrupted by a signal delivered to the parent (its
   own SIGALRM when pools nest under a timeout); retry, don't crash. *)
let rec waitpid_eintr pid =
  try Unix.waitpid [] pid with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_eintr pid

(* ------------------------------------------------------------------ *)
(* Live-worker registry, for signal-time cleanup                       *)
(* ------------------------------------------------------------------ *)

(* Every forked worker is registered (pid -> its spool file) for as long
   as it is alive, so a SIGINT/SIGTERM handler in the driver can reap
   the children and remove their spool files instead of orphaning both.
   The registry is keyed per owning pid: a forked child inherits the
   table but must not try to kill its siblings from a nested pool. *)
let live_workers : (int, string) Hashtbl.t = Hashtbl.create 8
let registry_owner = ref (-1)

let register_worker pid spool =
  let self = Unix.getpid () in
  if !registry_owner <> self then begin
    Hashtbl.reset live_workers;
    registry_owner := self
  end;
  Hashtbl.replace live_workers pid spool

let unregister_worker pid = Hashtbl.remove live_workers pid

(* Kill and reap every live worker and delete their spool files.  Safe
   to call from a signal handler context (OCaml runs handlers at
   safepoints, not in async-signal context) and idempotent. *)
let terminate_workers () =
  if !registry_owner = Unix.getpid () then begin
    Hashtbl.iter
      (fun pid spool ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (waitpid_eintr pid) with Unix.Unix_error _ -> ());
        try Sys.remove spool with Sys_error _ -> ())
      live_workers;
    Hashtbl.reset live_workers
  end

(* ------------------------------------------------------------------ *)
(* The pool                                                            *)
(* ------------------------------------------------------------------ *)

type ('a, 'b) shard_state = {
  id : int;
  mutable pending : (int * 'a) list; (* (index, task) not yet resolved *)
  mutable busy : float;
  mutable wall : float;
  mutable nrespawn : int;
  resolved : (int, 'b result) Hashtbl.t;
}

let sequential ?timeout_s f (xs : 'a array) : 'b result array * stats =
  let t0 = Obs.Clock.now_s () in
  let busy = ref 0.0 in
  let results =
    Array.map
      (fun x ->
        let s0 = Obs.Clock.now_s () in
        let r = Obs.with_span "pool.task" (fun () -> run_task ?timeout_s f x) in
        busy := !busy +. Obs.Clock.elapsed_s ~since:s0;
        r)
      xs
  in
  let wall = Obs.Clock.elapsed_s ~since:t0 in
  let count p = Array.fold_left (fun n r -> if p r then n + 1 else n) 0 results in
  let shard =
    { shard = 0;
      tasks = Array.length xs;
      crashed = count (function Crashed _ -> true | _ -> false);
      timed_out = count (function Timed_out -> true | _ -> false);
      busy_s = !busy;
      wall_s = wall;
      respawns = 0;
    }
  in
  ( results,
    { jobs = 1;
      task_count = Array.length xs;
      wall_s = wall;
      shards = [ shard ];
      utilization = (if wall > 0.0 then !busy /. wall else 1.0);
    } )

let map_stats ?(jobs = 1) ?timeout_s (f : 'a -> 'b) (xs : 'a array) :
    'b result array * stats =
  let n = Array.length xs in
  if jobs <= 1 || n <= 1 then sequential ?timeout_s f xs
  else begin
    let jobs = min jobs n in
    let t0 = Obs.Clock.now_s () in
    (* round-robin sharding: shard i owns indices i, i+jobs, ... *)
    let shards =
      Array.init jobs (fun i ->
          let rec idxs k = if k >= n then [] else (k, xs.(k)) :: idxs (k + jobs) in
          { id = i;
            pending = idxs i;
            busy = 0.0;
            wall = 0.0;
            nrespawn = 0;
            resolved = Hashtbl.create 64;
          })
    in
    let record_result sh idx (r : 'b result) = Hashtbl.replace sh.resolved idx r in
    (* rounds: fork one worker per unfinished shard, reap, account, and
       respawn past any crash point until every shard drains *)
    let round = ref 0 in
    while Array.exists (fun sh -> sh.pending <> []) shards do
      let active = Array.to_list shards |> List.filter (fun sh -> sh.pending <> []) in
      flush stdout;
      flush stderr;
      let spawned =
        List.map
          (fun sh ->
            let path =
              Filename.temp_file
                (Printf.sprintf "ub_pool_%d_s%d_r%d" (Unix.getpid ()) sh.id !round)
                ".spool"
            in
            let pid =
              match Unix.fork () with
              | 0 ->
                (* child: compute the shard, then exit without running
                   at_exit handlers inherited from the parent *)
                (try worker ?timeout_s f sh.pending path with _ -> Unix._exit 2);
                Unix._exit 0
              | pid ->
                register_worker pid path;
                pid
            in
            Obs.event
              (if !round = 0 then "pool.spawn" else "pool.respawn")
              ~attrs:[ ("shard", Obs.I sh.id); ("pid", Obs.I pid) ];
            (sh, path, pid, Obs.Clock.now_s ()))
          active
      in
      List.iter
        (fun (sh, path, pid, spawn_t) ->
          let _, status = waitpid_eintr pid in
          unregister_worker pid;
          sh.wall <- sh.wall +. Obs.Clock.elapsed_s ~since:spawn_t;
          let tbl : (int, 'b result) Hashtbl.t = Hashtbl.create 64 in
          sh.busy <- sh.busy +. read_spool ~shard:sh.id path tbl;
          (try Sys.remove path with Sys_error _ -> ());
          let still_pending =
            List.filter
              (fun (idx, _) ->
                match Hashtbl.find_opt tbl idx with
                | Some r ->
                  record_result sh idx r;
                  false
                | None -> true)
              sh.pending
          in
          (match (status, still_pending) with
          | Unix.WEXITED 0, [] -> sh.pending <- []
          | Unix.WEXITED 0, rest ->
            (* a clean exit must have resolved everything; if not, do not
               loop forever: fail the stragglers *)
            List.iter
              (fun (idx, _) ->
                Obs.count "pool.task_crashed";
                record_result sh idx (Crashed "worker lost the task"))
              rest;
            sh.pending <- []
          | status, (idx, _) :: rest ->
            (* the worker died by signal or exited non-zero: the first
               unresolved task is the one it was on — surface it as a
               crash verdict, never drop it silently *)
            Obs.event "pool.worker_crash"
              ~attrs:
                [ ("shard", Obs.I sh.id); ("task", Obs.I idx);
                  ("status", Obs.S (describe_status status)) ];
            Obs.count "pool.task_crashed";
            record_result sh idx (Crashed (describe_status status));
            sh.pending <- rest;
            sh.nrespawn <- sh.nrespawn + 1
          | (Unix.WSIGNALED _ | Unix.WSTOPPED _ | Unix.WEXITED _), [] ->
            (* died after resolving every task (e.g. while writing the
               trailing Busy record): no verdict is affected, but the
               crash is still an observable event *)
            Obs.event "pool.worker_crash"
              ~attrs:
                [ ("shard", Obs.I sh.id); ("status", Obs.S (describe_status status)) ];
            sh.pending <- []))
        spawned;
      incr round
    done;
    let results =
      Array.init n (fun idx ->
          let sh = shards.(idx mod jobs) in
          match Hashtbl.find_opt sh.resolved idx with
          | Some r -> r
          | None -> Crashed "task lost by the pool")
    in
    let wall = Obs.Clock.elapsed_s ~since:t0 in
    let shard_stats =
      Array.to_list
        (Array.map
           (fun sh ->
             let count p =
               Hashtbl.fold (fun _ r n -> if p r then n + 1 else n) sh.resolved 0
             in
             { shard = sh.id;
               tasks = Hashtbl.length sh.resolved;
               crashed = count (function Crashed _ -> true | _ -> false);
               timed_out = count (function Timed_out -> true | _ -> false);
               busy_s = sh.busy;
               wall_s = sh.wall;
               respawns = sh.nrespawn;
             })
           shards)
    in
    let total_busy = List.fold_left (fun a s -> a +. s.busy_s) 0.0 shard_stats in
    ( results,
      { jobs;
        task_count = n;
        wall_s = wall;
        shards = shard_stats;
        utilization =
          (if wall > 0.0 then total_busy /. (float_of_int jobs *. wall) else 1.0);
      } )
  end

let map ?jobs ?timeout_s f xs = fst (map_stats ?jobs ?timeout_s f xs)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "exec: %d worker(s), %d task(s), wall %.3fs, utilization %.1f%%"
    s.jobs s.task_count s.wall_s (100.0 *. s.utilization);
  List.iter
    (fun sh ->
      Format.fprintf ppf
        "@\n  shard %d: %d task(s), busy %.3fs, wall %.3fs, %d crashed, %d timed out, %d respawn(s)"
        sh.shard sh.tasks sh.busy_s sh.wall_s sh.crashed sh.timed_out sh.respawns)
    s.shards
