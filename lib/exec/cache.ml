(* A persistent on-disk verdict cache.  Entries are raw strings keyed by
   a canonical hash; callers (e.g. [Ub_refine.Verdict_cache]) own the
   value encoding.  Layout: one file per entry under [dir]/<k0k1>/<key>,
   two hex characters of fan-out so huge sweeps do not produce a single
   million-entry directory.  Writes go through a temp file + rename so a
   killed run never leaves a torn entry, and concurrent writers of the
   same key are idempotent (same key = same bytes). *)

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_dir dir =
  mkdir_p dir;
  { dir; hits = 0; misses = 0; stores = 0 }

(* Canonical key: length-prefixed concatenation (a la netstrings) of the
   components, hashed.  The length prefix is what makes the key
   injective: ("ab","c") and ("a","bc") must not collide. *)
let key ~(parts : string list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let path_of t k = Filename.concat (Filename.concat t.dir (String.sub k 0 2)) k

let find t k : string option =
  let path = path_of t k in
  match open_in_bin path with
  | exception Sys_error _ ->
    t.misses <- t.misses + 1;
    None
  | ic ->
    let v = In_channel.input_all ic in
    close_in ic;
    t.hits <- t.hits + 1;
    Some v

let store t k (v : string) : unit =
  let path = path_of t k in
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  output_string oc v;
  close_out oc;
  Sys.rename tmp path;
  t.stores <- t.stores + 1

let hits t = t.hits
let misses t = t.misses
let stores t = t.stores

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let pp_stats ppf t =
  Format.fprintf ppf "cache: %d hit(s), %d miss(es), %d store(s), %.1f%% hit rate" t.hits
    t.misses t.stores (100.0 *. hit_rate t)
