(* A persistent on-disk verdict cache.  Entries are raw strings keyed by
   a canonical hash; callers (e.g. [Ub_refine.Verdict_cache]) own the
   value encoding.  Two backends share one interface:

   - [open_dir]: one file per entry under [dir]/<k0k1>/<key>, two hex
     characters of fan-out so huge sweeps do not produce a single
     million-entry directory.  Writes go through a temp file + rename so
     a killed run never leaves a torn entry, and concurrent writers of
     the same key are idempotent (same key = same bytes).  Best for
     batch sweeps where the per-entry syscall cost is amortized by the
     check it memoizes.

   - [open_journal]: a single append-only log [dir]/journal.bin with an
     in-memory index.  Appends are guarded by an fcntl lock on
     [dir]/journal.lock so records from concurrent multi-process
     writers never interleave mid-record, and lookups are hashtable
     hits -- the right shape for the serve daemon, which stores
     thousands of tiny verdicts and cannot afford three syscalls per
     store.  When the log's dead weight (overwritten keys) passes a
     threshold it is compacted: under the same lock, the live index is
     rewritten to a temp file and atomically renamed onto the journal,
     so readers never observe a half-compacted log.  A reader that
     misses in its index first replays whatever other processes have
     appended since its last look (and detects a concurrent compaction
     by inode change), so cooperating processes share entries live.

   Journal record layout (little-endian-free, explicit big-endian):

     u32 key length | u32 value length | key bytes | value bytes

   A record truncated by a crash mid-append can only be the last one in
   the file (appends are serialized by the lock); replay stops at the
   truncation point and the next locked append happens at a clean
   offset only after [recover_truncation] trims the tail. *)

type journal = {
  jpath : string;
  mutable wfd : Unix.file_descr; (* O_APPEND writer, reopened after compaction *)
  lockfd : Unix.file_descr;
  index : (string, string) Hashtbl.t;
  mutable replayed : int; (* bytes of journal already folded into [index] *)
  mutable ino : int; (* inode of the replayed journal, to detect compaction *)
  mutable live : int; (* bytes of records currently live in [index] *)
}

type backend = Entries | Journal of journal

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  backend : backend;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Canonical key: length-prefixed concatenation (a la netstrings) of the
   components, hashed.  The length prefix is what makes the key
   injective: ("ab","c") and ("a","bc") must not collide. *)
let key ~(parts : string list) : string =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Per-entry backend                                                   *)
(* ------------------------------------------------------------------ *)

let open_dir dir =
  mkdir_p dir;
  { dir; hits = 0; misses = 0; stores = 0; backend = Entries }

let path_of t k = Filename.concat (Filename.concat t.dir (String.sub k 0 2)) k

let entries_find t k : string option =
  let path = path_of t k in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let v = In_channel.input_all ic in
    close_in ic;
    Some v

let entries_store t k (v : string) : unit =
  let path = path_of t k in
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  output_string oc v;
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Journal backend                                                     *)
(* ------------------------------------------------------------------ *)

let record_bytes k v = 8 + String.length k + String.length v

let put_u32 b off n =
  Bytes.set b off (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b (off + 3) (Char.chr (n land 0xFF))

let get_u32 b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let encode_record k v : Bytes.t =
  let kl = String.length k and vl = String.length v in
  let b = Bytes.create (8 + kl + vl) in
  put_u32 b 0 kl;
  put_u32 b 4 vl;
  Bytes.blit_string k 0 b 8 kl;
  Bytes.blit_string v 0 b (8 + kl) vl;
  b

(* fcntl-based whole-file lock on the sidecar lock file.  fcntl locks
   are per-process, which is exactly the granularity we need: the
   hazard is two *processes* interleaving appends or compacting over
   each other; within one process the cache is used sequentially. *)
let with_lock (j : journal) (f : unit -> 'a) : 'a =
  ignore (Unix.lseek j.lockfd 0 Unix.SEEK_SET);
  Unix.lockf j.lockfd Unix.F_LOCK 0;
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.lseek j.lockfd 0 Unix.SEEK_SET);
      Unix.lockf j.lockfd Unix.F_ULOCK 0)
    f

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

let stat_ino path = try (Unix.stat path).Unix.st_ino with Unix.Unix_error _ -> -1

(* Fold journal records from [from] into the index; returns the offset
   of the first truncated/unreadable byte (= file size when clean). *)
let replay_into (j : journal) ~(from : int) : int =
  match Unix.openfile j.jpath [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> from
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    let size = (Unix.fstat fd).Unix.st_size in
    if size <= from then from
    else begin
      ignore (Unix.lseek fd from Unix.SEEK_SET);
      let len = size - from in
      let buf = Bytes.create len in
      let rec read_all off =
        if off >= len then len
        else
          match Unix.read fd buf off (len - off) with
          | 0 -> off
          | n -> read_all (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all off
      in
      let got = read_all 0 in
      let pos = ref 0 in
      let ok = ref true in
      while !ok && !pos + 8 <= got do
        let kl = get_u32 buf !pos and vl = get_u32 buf (!pos + 4) in
        if kl < 0 || vl < 0 || !pos + 8 + kl + vl > got then ok := false
        else begin
          let k = Bytes.sub_string buf (!pos + 8) kl in
          let v = Bytes.sub_string buf (!pos + 8 + kl) vl in
          (match Hashtbl.find_opt j.index k with
          | Some old -> j.live <- j.live - record_bytes k old
          | None -> ());
          Hashtbl.replace j.index k v;
          j.live <- j.live + record_bytes k v;
          pos := !pos + 8 + kl + vl
        end
      done;
      from + !pos
    end

(* Re-read anything other processes appended since we last looked; a
   changed inode means someone compacted, so start over from scratch. *)
let refresh (j : journal) : unit =
  let ino = stat_ino j.jpath in
  if ino <> j.ino then begin
    Hashtbl.reset j.index;
    j.live <- 0;
    j.replayed <- replay_into j ~from:0;
    j.ino <- ino;
    (* the O_APPEND writer still points at the old (renamed-over) file *)
    Unix.close j.wfd;
    j.wfd <- Unix.openfile j.jpath [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  end
  else j.replayed <- replay_into j ~from:j.replayed

let open_journal dir =
  mkdir_p dir;
  let jpath = Filename.concat dir "journal.bin" in
  let wfd = Unix.openfile jpath [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  let lockfd =
    Unix.openfile (Filename.concat dir "journal.lock") [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
  in
  let j =
    { jpath; wfd; lockfd; index = Hashtbl.create 1024; replayed = 0;
      ino = stat_ino jpath; live = 0 }
  in
  j.replayed <- replay_into j ~from:0;
  { dir; hits = 0; misses = 0; stores = 0; backend = Journal j }

(* Compact: under the lock, fold in every record on disk (including a
   competitor's appends), write the live set to a temp file, rename it
   onto the journal.  The rename is the commit point: a reader either
   sees the old inode (and keeps replaying the old log it has open) or
   the new one (and restarts from offset 0 via [refresh]). *)
let journal_compact (j : journal) : unit =
  with_lock j @@ fun () ->
  refresh j;
  let tmp = Printf.sprintf "%s.tmp.%d" j.jpath (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let bytes = ref 0 in
  (try
     Hashtbl.iter
       (fun k v ->
         let b = encode_record k v in
         write_all fd b 0 (Bytes.length b);
         bytes := !bytes + Bytes.length b)
       j.index;
     Unix.close fd
   with e ->
     Unix.close fd;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp j.jpath;
  Unix.close j.wfd;
  j.wfd <- Unix.openfile j.jpath [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
  j.ino <- stat_ino j.jpath;
  j.replayed <- !bytes;
  j.live <- !bytes

(* Auto-compaction threshold: once the log tops 1 MiB, compact when
   less than half of it is live.  Checked after appends, so the
   amortized cost is one stat-free comparison per store. *)
let maybe_compact (j : journal) : unit =
  if j.replayed > 1_048_576 && j.live * 2 < j.replayed then journal_compact j

let journal_find (j : journal) k : string option =
  match Hashtbl.find_opt j.index k with
  | Some v -> Some v
  | None ->
    (* maybe another process stored it since we last replayed *)
    refresh j;
    Hashtbl.find_opt j.index k

let journal_store (j : journal) k v : unit =
  let b = encode_record k v in
  with_lock j (fun () ->
      (* fold in foreign appends first so [replayed] tracks the true end
         of file: appending while it pointed mid-way into a competitor's
         record would make every later tail-replay misparse *)
      refresh j;
      write_all j.wfd b 0 (Bytes.length b);
      (match Hashtbl.find_opt j.index k with
      | Some old -> j.live <- j.live - record_bytes k old
      | None -> ());
      Hashtbl.replace j.index k v;
      j.live <- j.live + record_bytes k v;
      j.replayed <- j.replayed + Bytes.length b);
  (* outside the lock: [journal_compact] takes it itself, and fcntl
     locks do not nest (an inner unlock would drop the outer lock) *)
  maybe_compact j

(* Read every intact record of a foreign journal file without opening a
   handle on its directory (no lock file creation, no O_APPEND writer).
   Tolerates a torn tail exactly like [replay_into]: scanning stops at
   the first record that does not fit in the file. *)
let scan_journal_file (jpath : string) (f : string -> string -> unit) : unit =
  match Unix.openfile jpath [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    let size = (Unix.fstat fd).Unix.st_size in
    if size > 0 then begin
      let buf = Bytes.create size in
      let rec read_all off =
        if off >= size then size
        else
          match Unix.read fd buf off (size - off) with
          | 0 -> off
          | n -> read_all (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_all off
      in
      let got = read_all 0 in
      let pos = ref 0 in
      let ok = ref true in
      while !ok && !pos + 8 <= got do
        let kl = get_u32 buf !pos and vl = get_u32 buf (!pos + 4) in
        if kl < 0 || vl < 0 || !pos + 8 + kl + vl > got then ok := false
        else begin
          f (Bytes.sub_string buf (!pos + 8) kl) (Bytes.sub_string buf (!pos + 8 + kl) vl);
          pos := !pos + 8 + kl + vl
        end
      done
    end

(* Replicate another shard's journal into this one: copy every record
   whose key this journal does not have.  Existing keys are left alone
   -- verdicts are deterministic functions of their cache key, so a
   present key already holds the same value and re-appending it would
   only create dead weight (and ping-pong bytes between journals on
   every merge round).  One lock covers the whole merge so a record is
   never half-visible; the appends land through the same O_APPEND
   writer as [journal_store], so concurrent shard writers interleave at
   record granularity only. *)
let journal_merge_from (j : journal) (src_dir : string) : int =
  let src_path = Filename.concat src_dir "journal.bin" in
  let copied = ref 0 in
  with_lock j (fun () ->
      refresh j;
      scan_journal_file src_path (fun k v ->
          if not (Hashtbl.mem j.index k) then begin
            let b = encode_record k v in
            write_all j.wfd b 0 (Bytes.length b);
            Hashtbl.replace j.index k v;
            j.live <- j.live + record_bytes k v;
            j.replayed <- j.replayed + Bytes.length b;
            incr copied
          end));
  (* outside the lock, same reason as [journal_store] *)
  maybe_compact j;
  !copied

(* ------------------------------------------------------------------ *)
(* The common face                                                     *)
(* ------------------------------------------------------------------ *)

let find t k : string option =
  let r = match t.backend with Entries -> entries_find t k | Journal j -> journal_find j k in
  (match r with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  r

let store t k (v : string) : unit =
  (match t.backend with Entries -> entries_store t k v | Journal j -> journal_store j k v);
  t.stores <- t.stores + 1

let compact t = match t.backend with Entries -> () | Journal j -> journal_compact j

(* Copy missing records from [src_dir]'s journal into [t]; returns how
   many were copied.  No-op for the per-entry backend. *)
let merge_from t (src_dir : string) : int =
  match t.backend with Entries -> 0 | Journal j -> journal_merge_from j src_dir

let close t =
  match t.backend with
  | Entries -> ()
  | Journal j ->
    (try Unix.close j.wfd with Unix.Unix_error _ -> ());
    (try Unix.close j.lockfd with Unix.Unix_error _ -> ())

let journal_size t =
  match t.backend with Entries -> 0 | Journal j -> j.replayed

let hits t = t.hits
let misses t = t.misses
let stores t = t.stores

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let pp_stats ppf t =
  Format.fprintf ppf "cache: %d hit(s), %d miss(es), %d store(s), %.1f%% hit rate" t.hits
    t.misses t.stores (100.0 *. hit_rate t)
