(* Delta-debugging reducer for IR functions and transform pairs.
   Given a predicate ("the checker says not-refined", "the SAT and
   enumeration verdicts disagree", "this property fails"), [minimize]
   greedily applies single reduction edits, keeping a candidate only
   when it (a) still passes the SSA validator and (b) still satisfies
   the predicate, until no edit makes progress — a 1-minimal local
   fixpoint in the ddmin sense.

   The edit catalogue (each is one [edit] value, applied atomically):
     - drop a whole block, rerouting branches around it;
     - collapse a conditional branch to one of its arms;
     - delete a dead (unused or void) instruction;
     - replace a def's uses with a constant, undef, poison, or a
       same-typed argument, deleting the def;
     - replace a def with [freeze] of a fresh function input (keeps a
       nondeterministic-but-stable value in play while deleting the
       computation that produced it);
     - strip an nsw/nuw/exact attribute;
     - set one operand to a constant;
     - simplify a return value to a constant;
     - narrow an integer width everywhere (iW -> iW');
     - shorten a vector length everywhere (<n x t> -> <n' x t>).

   Every candidate is revalidated through [Validate.check_func] before
   the oracle ever sees it, so the oracle can assume well-formed SSA.
   Candidate order is deterministic (block-level edits first, cosmetic
   ones last) and the engine is purely functional in the input, so a
   reduction is reproducible run-to-run. *)

open Ub_support
open Ub_ir

type flag = Fnsw | Fnuw | Fexact

type edit =
  | Drop_block of Instr.label
  | Flatten_cond of Instr.label * bool (* true: keep the then-arm *)
  | Drop_insn of Instr.label * int (* block label, instruction index *)
  | Rauw of Instr.var * Instr.operand (* delete the def, replace its uses *)
  | Rauw_frozen_input of Instr.var * Instr.var * Instr.var
      (* def to delete, fresh argument name, fresh freeze result name *)
  | Strip_flag of Instr.var * flag
  | Set_operand of Instr.label * int * int * Instr.operand
      (* block, instruction index, operand index, replacement *)
  | Set_ret of Instr.label * Instr.operand
  | Narrow of int * int (* rewrite iW -> iW' everywhere *)
  | Shrink_vec of int * int (* rewrite <n x t> -> <n' x t> everywhere *)

let flag_name = function Fnsw -> "nsw" | Fnuw -> "nuw" | Fexact -> "exact"

let edit_to_string = function
  | Drop_block l -> Printf.sprintf "drop-block %%%s" l
  | Flatten_cond (l, arm) ->
    Printf.sprintf "flatten-cond %%%s (%s arm)" l (if arm then "then" else "else")
  | Drop_insn (l, i) -> Printf.sprintf "drop-insn %%%s:%d" l i
  | Rauw (v, _) -> Printf.sprintf "rauw %%%s" v
  | Rauw_frozen_input (v, a, _) -> Printf.sprintf "rauw %%%s <- freeze(fresh %%%s)" v a
  | Strip_flag (v, f) -> Printf.sprintf "strip-%s %%%s" (flag_name f) v
  | Set_operand (l, i, j, _) -> Printf.sprintf "set-operand %%%s:%d#%d" l i j
  | Set_ret (l, _) -> Printf.sprintf "set-ret %%%s" l
  | Narrow (w, w') -> Printf.sprintf "narrow i%d -> i%d" w w'
  | Shrink_vec (n, n') -> Printf.sprintf "shrink-vec %d -> %d" n n'

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                  *)
(* ------------------------------------------------------------------ *)

let set_block fn (b' : Func.block) =
  { fn with
    Func.blocks =
      List.map (fun b -> if b.Func.label = b'.Func.label then b' else b) fn.Func.blocks
  }

let drop_def fn v =
  Func.map_insns fn (fun n -> if n.Instr.def = Some v then [] else [ n ])

(* After a CFG edit, phi incoming lists must be re-synchronized with the
   new predecessor sets: entries from vanished predecessors are dropped,
   and phis left with a single incoming collapse to a plain copy
   (RAUW).  Anything still ill-formed is left for the validator to
   reject. *)
let cleanup_phis (fn : Func.t) : Func.t =
  let preds = Func.predecessors fn in
  let fn =
    { fn with
      Func.blocks =
        List.map
          (fun b ->
            let ps =
              match List.assoc_opt b.Func.label preds with Some p -> p | None -> []
            in
            { b with
              Func.insns =
                List.map
                  (fun n ->
                    match n.Instr.ins with
                    | Instr.Phi (ty, inc) ->
                      { n with
                        Instr.ins =
                          Instr.Phi (ty, List.filter (fun (_, l) -> List.mem l ps) inc)
                      }
                    | _ -> n)
                  b.Func.insns
            })
          fn.Func.blocks
    }
  in
  let singles =
    List.concat_map
      (fun b ->
        List.filter_map
          (fun n ->
            match (n.Instr.def, n.Instr.ins) with
            | Some v, Instr.Phi (_, [ (op, _) ]) -> Some (v, op)
            | _ -> None)
          b.Func.insns)
      fn.Func.blocks
  in
  List.fold_left
    (fun fn (v, op) -> Func.replace_uses (drop_def fn v) ~v ~by:op)
    fn singles

(* Bottom-up type rewriting over a whole function, with the embedded
   constants retyped in lockstep (truncate / zero-extend integer
   constants, take a prefix of vector constants). *)
let rec ty_map f (t : Types.t) : Types.t =
  match t with
  | Types.Int _ -> f t
  | Types.Ptr p -> f (Types.Ptr (ty_map f p))
  | Types.Vec (n, e) -> f (Types.Vec (n, ty_map f e))

let rec const_map (fty : Types.t -> Types.t) (c : Constant.t) : Constant.t =
  match c with
  | Constant.Int bv -> (
    let w = Bitvec.width bv in
    match fty (Types.Int w) with
    | Types.Int w' when w' < w -> Constant.Int (Bitvec.trunc bv ~width:w')
    | Types.Int w' when w' > w -> Constant.Int (Bitvec.zext bv ~width:w')
    | _ -> c)
  | Constant.Null t -> Constant.Null (fty t)
  | Constant.Vec (t, cs) -> (
    let t' = fty t in
    let cs = List.map (const_map fty) cs in
    let cs =
      match t' with
      | Types.Vec (n, _) when n < List.length cs -> Util.take n cs
      | _ -> cs
    in
    Constant.Vec (t', cs))
  | Constant.Undef t -> Constant.Undef (fty t)
  | Constant.Poison t -> Constant.Poison (fty t)

let map_types (fn : Func.t) (f : Types.t -> Types.t) : Func.t =
  let fty t = ty_map f t in
  let fc = const_map fty in
  { fn with
    Func.args = List.map (fun (v, t) -> (v, fty t)) fn.Func.args;
    Func.ret_ty = Option.map fty fn.Func.ret_ty;
    Func.blocks =
      List.map
        (fun b ->
          { b with
            Func.insns =
              List.map
                (fun n -> { n with Instr.ins = Instr.map_types fty fc n.Instr.ins })
                b.Func.insns;
            Func.term = Instr.map_term_types fty fc b.Func.term;
          })
        fn.Func.blocks;
  }

(* ------------------------------------------------------------------ *)
(* Applying one edit                                                   *)
(* ------------------------------------------------------------------ *)

(* [apply e fn] is [None] when the edit does not make sense for [fn]
   (no such block/def, flag already clear, operand already that value).
   A [Some] result is *structurally* applied but not yet validated:
   callers must gate it through [Validate.check_func]. *)
let apply (e : edit) (fn : Func.t) : Func.t option =
  match e with
  | Drop_block l ->
    if (Func.entry fn).Func.label = l || Func.find_block fn l = None then None
    else begin
      let blocks = List.filter (fun b -> b.Func.label <> l) fn.Func.blocks in
      let retarget b =
        let term =
          match b.Func.term with
          | Instr.Br x when x = l -> Instr.Unreachable
          | Instr.Cond_br (_, t, e) when t = l && e = l -> Instr.Unreachable
          | Instr.Cond_br (_, t, e) when t = l -> Instr.Br e
          | Instr.Cond_br (_, t, e) when e = l -> Instr.Br t
          | t -> t
        in
        { b with Func.term }
      in
      Some (cleanup_phis { fn with Func.blocks = List.map retarget blocks })
    end
  | Flatten_cond (l, keep_then) -> (
    match Func.find_block fn l with
    | Some b -> (
      match b.Func.term with
      | Instr.Cond_br (_, t, e) ->
        let tgt = if keep_then then t else e in
        Some (cleanup_phis (set_block fn { b with Func.term = Instr.Br tgt }))
      | _ -> None)
    | None -> None)
  | Drop_insn (l, idx) -> (
    match Func.find_block fn l with
    | None -> None
    | Some b -> (
      match List.nth_opt b.Func.insns idx with
      | None -> None
      | Some n ->
        let removable =
          match n.Instr.def with None -> true | Some v -> Func.use_count fn v = 0
        in
        if not removable then None
        else
          Some
            (set_block fn
               { b with Func.insns = List.filteri (fun i _ -> i <> idx) b.Func.insns })))
  | Rauw (v, by) -> (
    match Func.find_def fn v with
    | None -> None
    | Some _ -> Some (Func.replace_uses (drop_def fn v) ~v ~by))
  | Rauw_frozen_input (v, arg, frz) -> (
    match Func.find_def fn v with
    | None -> None
    | Some n -> (
      match Instr.result_ty n.Instr.ins with
      | Some (Types.Int _ as ty) ->
        let taken = List.map fst (Func.defs fn) in
        if List.mem arg taken || List.mem frz taken || arg = frz then None
        else begin
          let fn = Func.replace_uses (drop_def fn v) ~v ~by:(Instr.Var frz) in
          let entry = Func.entry fn in
          let rec split acc = function
            | ({ Instr.ins = Instr.Phi _; _ } as p) :: rest -> split (p :: acc) rest
            | rest -> (List.rev acc, rest)
          in
          let phis, rest = split [] entry.Func.insns in
          let fr = { Instr.def = Some frz; Instr.ins = Instr.Freeze (ty, Instr.Var arg) } in
          let fn = set_block fn { entry with Func.insns = phis @ (fr :: rest) } in
          Some { fn with Func.args = fn.Func.args @ [ (arg, ty) ] }
        end
      | _ -> None))
  | Strip_flag (v, fl) -> (
    match Func.find_def fn v with
    | Some { Instr.ins = Instr.Binop (op, at, ty, a, b); _ } ->
      let at' =
        match fl with
        | Fnsw -> { at with Instr.nsw = false }
        | Fnuw -> { at with Instr.nuw = false }
        | Fexact -> { at with Instr.exact = false }
      in
      if at' = at then None
      else
        Some
          (Func.map_insns fn (fun n ->
               if n.Instr.def = Some v then
                 [ { n with Instr.ins = Instr.Binop (op, at', ty, a, b) } ]
               else [ n ]))
    | _ -> None)
  | Set_operand (l, idx, opix, by) -> (
    match Func.find_block fn l with
    | None -> None
    | Some b -> (
      match List.nth_opt b.Func.insns idx with
      | None -> None
      | Some n ->
        let cur = List.nth_opt (Instr.operands n.Instr.ins) opix in
        if cur = None || cur = Some by then None
        else begin
          let i = ref (-1) in
          let ins' =
            Instr.map_operands
              (fun o ->
                incr i;
                if !i = opix then by else o)
              n.Instr.ins
          in
          Some
            (set_block fn
               { b with
                 Func.insns =
                   List.mapi
                     (fun j m -> if j = idx then { n with Instr.ins = ins' } else m)
                     b.Func.insns
               })
        end))
  | Set_ret (l, by) -> (
    match Func.find_block fn l with
    | Some b -> (
      match b.Func.term with
      | Instr.Ret (ty, x) when x <> by ->
        Some (set_block fn { b with Func.term = Instr.Ret (ty, by) })
      | _ -> None)
    | None -> None)
  | Narrow (w, w') ->
    if w' < 1 || w' >= w then None
    else Some (map_types fn (function Types.Int x when x = w -> Types.Int w' | t -> t))
  | Shrink_vec (n, n') ->
    if n' < 1 || n' >= n then None
    else
      Some
        (map_types fn (function
          | Types.Vec (m, e) when m = n -> Types.Vec (n', e)
          | t -> t))

(* ------------------------------------------------------------------ *)
(* Candidate generation                                                *)
(* ------------------------------------------------------------------ *)

(* Expected type of each operand, aligned with [Instr.operands]; [None]
   where the type is not locally determined (pointers, indices). *)
let operand_tys (ins : Instr.t) : (Instr.operand * Types.t option) list =
  let tys =
    match ins with
    | Instr.Binop (_, _, ty, _, _) -> [ Some ty; Some ty ]
    | Instr.Icmp (_, ty, _, _) -> [ Some ty; Some ty ]
    | Instr.Select (_, ty, _, _) -> [ Some (Types.bool_shape ty); Some ty; Some ty ]
    | Instr.Conv (_, from, _, _) -> [ Some from ]
    | Instr.Bitcast (from, _, _) -> [ Some from ]
    | Instr.Freeze (ty, _) -> [ Some ty ]
    | Instr.Phi (ty, inc) -> List.map (fun _ -> Some ty) inc
    | Instr.Gep { indices; _ } -> None :: List.map (fun (t, _) -> Some t) indices
    | Instr.Load _ -> [ None ]
    | Instr.Store (ty, _, _) -> [ Some ty; None ]
    | Instr.Call (_, _, args) -> List.map (fun (t, _) -> Some t) args
    | Instr.Extractelement (vty, _, _) -> [ Some vty; None ]
    | Instr.Insertelement (vty, _, _, _) ->
      [ Some vty; Some (Types.element vty); None ]
  in
  List.combine (Instr.operands ins) tys

(* The replacement menu for a slot of type [ty]: zero, one, undef,
   poison. *)
let const_menu (ty : Types.t) : Instr.operand list =
  (match ty with
  | Types.Int w ->
    [ Instr.Const (Constant.Int (Bitvec.zero w)); Instr.Const (Constant.Int (Bitvec.one w)) ]
  | _ -> [ Instr.Const (Constant.zero ty) ])
  @ [ Instr.Const (Constant.Undef ty); Instr.Const (Constant.Poison ty) ]

let rauw_targets (fn : Func.t) (ty : Types.t) : Instr.operand list =
  const_menu ty
  @ List.filter_map
      (fun (a, t) -> if Types.equal t ty then Some (Instr.Var a) else None)
      fn.Func.args

let int_widths (fn : Func.t) : int list =
  let rec add acc t =
    match t with
    | Types.Int w -> if List.mem w acc then acc else w :: acc
    | Types.Ptr p -> add acc p
    | Types.Vec (_, e) -> add acc e
  in
  let acc = List.fold_left (fun acc (_, t) -> add acc t) [] (Func.defs fn) in
  let acc = match fn.Func.ret_ty with Some t -> add acc t | None -> acc in
  List.sort (fun a b -> compare b a) acc

let vec_lens (fn : Func.t) : int list =
  let rec add acc t =
    match t with
    | Types.Vec (n, e) -> add (if List.mem n acc then acc else n :: acc) e
    | Types.Ptr p -> add acc p
    | Types.Int _ -> acc
  in
  let acc = List.fold_left (fun acc (_, t) -> add acc t) [] (Func.defs fn) in
  let acc = match fn.Func.ret_ty with Some t -> add acc t | None -> acc in
  List.sort (fun a b -> compare b a) acc

(* All single-step edits worth trying on [fn], coarse-to-fine: whole
   blocks, then whole defs, then instructions, then operand / attribute
   cosmetics, then global type shrinks, then the freeze-of-fresh-input
   rewrite (which does not reduce the instruction count and so comes
   last).  [other] contributes its defined names to the fresh-name pool
   so the same edit stays applicable to both halves of a transform
   pair. *)
let candidate_edits ?(other : Func.t option) (fn : Func.t) : edit list =
  let entry_l = (Func.entry fn).Func.label in
  let blocks = fn.Func.blocks in
  let indexed_insns b = List.mapi (fun i n -> (i, n)) b.Func.insns in
  let drops =
    List.filter_map
      (fun b -> if b.Func.label = entry_l then None else Some (Drop_block b.Func.label))
      blocks
  in
  let flattens =
    List.concat_map
      (fun b ->
        match b.Func.term with
        | Instr.Cond_br (_, t, e) when t = e -> [ Flatten_cond (b.Func.label, true) ]
        | Instr.Cond_br _ ->
          [ Flatten_cond (b.Func.label, true); Flatten_cond (b.Func.label, false) ]
        | _ -> [])
      blocks
  in
  let rauws =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun n ->
            match (n.Instr.def, Instr.result_ty n.Instr.ins) with
            | Some v, Some ty ->
              (* forwarding a def to one of its own same-typed operands
                 comes first: it deletes the instruction while keeping
                 the dataflow, the reduction most likely to preserve a
                 failure *)
              let fwd =
                List.filter_map
                  (fun (op, t) ->
                    match t with
                    | Some t when Types.equal t ty && op <> Instr.Var v -> Some op
                    | _ -> None)
                  (operand_tys n.Instr.ins)
              in
              List.map (fun op -> Rauw (v, op)) (fwd @ rauw_targets fn ty)
            | _ -> [])
          b.Func.insns)
      blocks
  in
  let dead =
    List.concat_map
      (fun b -> List.map (fun (i, _) -> Drop_insn (b.Func.label, i)) (indexed_insns b))
      blocks
  in
  let rets =
    List.concat_map
      (fun b ->
        match b.Func.term with
        | Instr.Ret (ty, Instr.Var _) ->
          List.map (fun op -> Set_ret (b.Func.label, op)) (const_menu ty)
        | _ -> [])
      blocks
  in
  let strips =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun n ->
            match (n.Instr.def, n.Instr.ins) with
            | Some v, Instr.Binop (_, at, _, _, _) ->
              (if at.Instr.nsw then [ Strip_flag (v, Fnsw) ] else [])
              @ (if at.Instr.nuw then [ Strip_flag (v, Fnuw) ] else [])
              @ if at.Instr.exact then [ Strip_flag (v, Fexact) ] else []
            | _ -> [])
          b.Func.insns)
      blocks
  in
  let setops =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun (idx, n) ->
            List.concat_map
              (fun (opix, (cur, ty)) ->
                match (cur, ty) with
                | Instr.Var _, Some ty ->
                  List.filter_map
                    (fun op ->
                      if op = cur then None
                      else Some (Set_operand (b.Func.label, idx, opix, op)))
                    (const_menu ty)
                | _ -> [])
              (List.mapi (fun i x -> (i, x)) (operand_tys n.Instr.ins)))
          (indexed_insns b))
      blocks
  in
  let narrows =
    List.concat_map
      (fun w ->
        List.filter_map
          (fun w' -> if w' >= 1 && w' < w then Some (Narrow (w, w')) else None)
          (List.sort_uniq compare [ 1; 8; w / 2; w - 1 ]))
      (int_widths fn)
  in
  let vshrinks =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun n' -> if n' >= 1 && n' < n then Some (Shrink_vec (n, n')) else None)
          (List.sort_uniq compare [ 1; n / 2; n - 1 ]))
      (vec_lens fn)
  in
  let frozen =
    let used =
      List.map fst (Func.defs fn)
      @ (match other with Some o -> List.map fst (Func.defs o) | None -> [])
    in
    let fresh prefix =
      let rec go i =
        let c = Printf.sprintf "%s%d" prefix i in
        if List.mem c used then go (i + 1) else c
      in
      go 0
    in
    let arg = fresh "sa" and frz = fresh "sf" in
    List.concat_map
      (fun b ->
        List.filter_map
          (fun n ->
            match (n.Instr.def, Instr.result_ty n.Instr.ins) with
            | Some v, Some (Types.Int _) -> (
              match n.Instr.ins with
              (* already a freeze of an argument: rewriting again only
                 renames, so skip to guarantee progress *)
              | Instr.Freeze (_, Instr.Var a) when List.mem_assoc a fn.Func.args -> None
              | _ -> Some (Rauw_frozen_input (v, arg, frz)))
            | _ -> None)
          b.Func.insns)
      blocks
  in
  drops @ flattens @ rauws @ dead @ rets @ strips @ setops @ narrows @ vshrinks @ frozen

(* ------------------------------------------------------------------ *)
(* The greedy fixpoint engine                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  oracle_calls : int; (* candidates that reached the oracle *)
  candidates : int; (* distinct structurally-applicable candidates *)
  accepted : int; (* greedy steps taken *)
  initial_insns : int;
  final_insns : int;
}

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "%d -> %d insns in %d step(s) (%d candidate(s), %d oracle call(s))"
    s.initial_insns s.final_insns s.accepted s.candidates s.oracle_calls

(* All valid one-edit variants of [fn], deduplicated, in candidate
   order: the shrinker behind the property-test layer. *)
let shrink_candidates (fn : Func.t) : Func.t list =
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen (Printer.func_to_string fn) ();
  List.filter_map
    (fun e ->
      match (try apply e fn with _ -> None) with
      | None -> None
      | Some fn' ->
        let k = Printer.func_to_string fn' in
        if Hashtbl.mem seen k then None
        else begin
          Hashtbl.replace seen k ();
          if Validate.check_func fn' = [] then Some fn' else None
        end)
    (candidate_edits fn)

(* Greedy first-improvement descent: after every accepted edit the
   candidate list is regenerated from scratch, so coarse edits get
   another chance on the smaller function.  [seen] holds the printed
   form of every candidate ever tried, which both deduplicates work and
   guarantees termination even for edits (like the frozen-input
   rewrite) that do not shrink the instruction count.  The caller is
   expected to have established [oracle fn0] already; the engine only
   queries the oracle on candidates. *)
let minimize ?(max_steps = 1000) ~(oracle : Func.t -> bool) (fn0 : Func.t) :
    Func.t * stats =
  let seen = Hashtbl.create 512 in
  let oracle_calls = ref 0 and candidates = ref 0 and accepted = ref 0 in
  Hashtbl.replace seen (Printer.func_to_string fn0) ();
  let try_edit fn e =
    match (try apply e fn with _ -> None) with
    | None -> None
    | Some fn' ->
      let k = Printer.func_to_string fn' in
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.replace seen k ();
        incr candidates;
        if Validate.check_func fn' <> [] then None
        else begin
          incr oracle_calls;
          if oracle fn' then Some fn' else None
        end
      end
  in
  let rec fix fn =
    if !accepted >= max_steps then fn
    else
      match List.find_map (try_edit fn) (candidate_edits fn) with
      | Some fn' ->
        incr accepted;
        fix fn'
      | None -> fn
  in
  let r = fix fn0 in
  ( r,
    { oracle_calls = !oracle_calls;
      candidates = !candidates;
      accepted = !accepted;
      initial_insns = Func.num_insns fn0;
      final_insns = Func.num_insns r;
    } )

(* Reduce a transform pair in lockstep: each edit is applied to both
   sides (an edit inapplicable to one side leaves that side unchanged),
   and a candidate pair survives only if both halves validate and the
   pair still satisfies the oracle — e.g. "the checker still reports a
   counterexample for src vs tgt".  An edit that changes neither side
   is skipped via the seen-set. *)
let minimize_pair ?(max_steps = 1000) ~(oracle : Func.t -> Func.t -> bool)
    ((src0, tgt0) : Func.t * Func.t) : (Func.t * Func.t) * stats =
  let pair_key (s, t) = Printer.func_to_string s ^ "\x00" ^ Printer.func_to_string t in
  let seen = Hashtbl.create 512 in
  let oracle_calls = ref 0 and candidates = ref 0 and accepted = ref 0 in
  Hashtbl.replace seen (pair_key (src0, tgt0)) ();
  let dedup_edits es =
    let tbl = Hashtbl.create 256 in
    List.filter (fun e ->
        if Hashtbl.mem tbl e then false
        else begin
          Hashtbl.replace tbl e ();
          true
        end)
      es
  in
  let try_edit (src, tgt) e =
    let s' = try apply e src with _ -> None in
    let t' = try apply e tgt with _ -> None in
    match (s', t') with
    | None, None -> None
    | _ ->
      let src' = Option.value s' ~default:src in
      let tgt' = Option.value t' ~default:tgt in
      let k = pair_key (src', tgt') in
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.replace seen k ();
        incr candidates;
        if Validate.check_func src' <> [] || Validate.check_func tgt' <> [] then None
        else begin
          incr oracle_calls;
          if oracle src' tgt' then Some (src', tgt') else None
        end
      end
  in
  let edits (src, tgt) =
    dedup_edits (candidate_edits ~other:tgt src @ candidate_edits ~other:src tgt)
  in
  let rec fix pair =
    if !accepted >= max_steps then pair
    else
      match List.find_map (try_edit pair) (edits pair) with
      | Some pair' ->
        incr accepted;
        fix pair'
      | None -> pair
  in
  let ((rs, _) as r) = fix (src0, tgt0) in
  ( r,
    { oracle_calls = !oracle_calls;
      candidates = !candidates;
      accepted = !accepted;
      initial_insns = Func.num_insns src0;
      final_insns = Func.num_insns rs;
    } )
