(* ub_obs: a zero-dependency structured-telemetry layer.

   Three primitives, all process-local and allocation-light:

   - spans     — [with_span name f] times [f] on the monotonic clock and
                 aggregates (count, total, max) per name;
   - counters  — [count name] bumps a named integer;
   - histograms — [observe name v] records a float into log2 buckets,
                 keeping count/sum/min/max for percentile estimates.

   Aggregation is always on (a hashtable bump per call — the
   instrumentation sites are coarse: per solver query, per pooled task,
   per optimizer pass, never per propagation).  Event *emission* is off
   by default: with the default [Null] sink, [with_span] costs two
   clock reads and one hashtable update, and no I/O ever happens.
   Installing a [Jsonl] sink (the `--trace FILE` flag) additionally
   streams one JSON line per span/event to the trace file.

   Forked workers cannot share the parent's trace channel (interleaved
   writes) — they call [child_begin] after the fork, which resets the
   registry and switches to an in-memory sink; [drain] then packages
   everything into a marshal-safe [payload] that the parent [absorb]s
   over its existing result channel.  See lib/exec/pool.ml.

   The run report ([report_json]) is the machine-readable aggregation of
   everything above: counters, span totals, histogram summaries, and a
   few derived rates (cache hit rate).  `bench` embeds it in its JSON
   output and writes it next to the trace file. *)

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                     *)
(* ------------------------------------------------------------------ *)

module Clock = struct
  external monotonic_ns : unit -> int64 = "ub_obs_monotonic_ns"

  (* Nanoseconds as a native int: 2^62 ns ≈ 146 years of uptime, so the
     conversion cannot truncate in practice. *)
  let now_ns () : int = Int64.to_int (monotonic_ns ())
  let now_s () : float = Int64.to_float (monotonic_ns ()) /. 1e9

  (* The one timing idiom every harness should use: elapsed seconds on
     the monotonic clock, immune to NTP steps and manual adjustments. *)
  let elapsed_s ~(since : float) : float = now_s () -. since
end

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type attr = S of string | I of int | F of float | B of bool

type event = {
  ev : string; (* "span" | "event" *)
  name : string;
  t_ns : int; (* monotonic start time *)
  dur_ns : int; (* -1 for instantaneous events *)
  depth : int; (* span nesting depth at emission *)
  attrs : (string * attr) list;
}

(* Minimal JSON emission; the only strings we serialize are short
   telemetry names and verdicts, but escape properly anyway. *)
let json_escape (s : string) : string =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attr_to_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F f ->
    (* JSON has no nan/inf; clamp to null *)
    if Float.is_finite f then Printf.sprintf "%.9g" f else "null"
  | B b -> if b then "true" else "false"

(* A fleet-shard tag stamped into trace events and the run report so
   per-shard telemetry stays attributable after the fleet front merges
   N obs reports into one.  The JSON field is "shard" but it lives at
   the event's top level, clear of the pool's per-worker "shard"
   attr (which sits inside [attrs]). *)
let fleet_shard : string option ref = ref None
let set_shard (s : string) : unit = fleet_shard := Some s
let shard () : string option = !fleet_shard

let event_to_json (e : event) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"ev\":\"%s\",\"name\":\"%s\",\"t_ns\":%d" (json_escape e.ev)
       (json_escape e.name) e.t_ns);
  if e.dur_ns >= 0 then Buffer.add_string buf (Printf.sprintf ",\"dur_ns\":%d" e.dur_ns);
  (match !fleet_shard with
  | Some s -> Buffer.add_string buf (Printf.sprintf ",\"shard\":\"%s\"" (json_escape s))
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ",\"depth\":%d" e.depth);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" (json_escape k) (attr_to_json v)))
    e.attrs;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)
(* ------------------------------------------------------------------ *)

type sink =
  | Null
  | Jsonl of out_channel
  | Memory of event list ref (* newest first; [drain] reverses *)

let current_sink = ref Null

let emit (e : event) : unit =
  match !current_sink with
  | Null -> ()
  | Jsonl oc ->
    output_string oc (event_to_json e);
    output_char oc '\n'
  | Memory buf -> buf := e :: !buf

let tracing () = match !current_sink with Null -> false | Jsonl _ | Memory _ -> true

let set_sink s = current_sink := s

let set_trace (path : string) : unit =
  (match !current_sink with Jsonl oc -> close_out_noerr oc | _ -> ());
  current_sink := Jsonl (open_out path)

let close () : unit =
  (match !current_sink with Jsonl oc -> close_out_noerr oc | _ -> ());
  current_sink := Null

(* ------------------------------------------------------------------ *)
(* Aggregation registry                                                *)
(* ------------------------------------------------------------------ *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  buckets : int array; (* log2 buckets: index = clamp(exp2 + 30, 0, 63) *)
}

type span_agg = {
  mutable s_count : int;
  mutable s_total_ns : int;
  mutable s_max_ns : int;
}

let counters : (string, int ref) Hashtbl.t = Hashtbl.create 64
let hists : (string, hist) Hashtbl.t = Hashtbl.create 64
let spans : (string, span_agg) Hashtbl.t = Hashtbl.create 64
let span_depth = ref 0

let count ?(by = 1) (name : string) : unit =
  match Hashtbl.find_opt counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace counters name (ref by)

let counter_value (name : string) : int =
  match Hashtbl.find_opt counters name with Some r -> !r | None -> 0

let bucket_of (v : float) : int =
  if v <= 0.0 then 0
  else begin
    let e = int_of_float (Float.floor (Float.log2 v)) in
    let i = e + 30 in
    if i < 0 then 0 else if i > 63 then 63 else i
  end

let observe (name : string) (v : float) : unit =
  let h =
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
      let h =
        { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
          buckets = Array.make 64 0 }
      in
      Hashtbl.replace hists name h;
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

(* Percentile estimate from the log2 buckets: the upper bound of the
   bucket holding the q-quantile observation.  Coarse (factor-of-two
   resolution) but monotone and cheap, which is all a run report needs. *)
let hist_quantile (h : hist) (q : float) : float =
  if h.h_count = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int h.h_count)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and result = ref h.h_max in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if !acc >= rank then begin
             result := Float.pow 2.0 (float_of_int (i - 30 + 1));
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    (* never report a quantile outside the observed range *)
    if !result > h.h_max then h.h_max else if !result < h.h_min then h.h_min else !result
  end

let span_agg_of (name : string) : span_agg =
  match Hashtbl.find_opt spans name with
  | Some s -> s
  | None ->
    let s = { s_count = 0; s_total_ns = 0; s_max_ns = 0 } in
    Hashtbl.replace spans name s;
    s

let record_span (name : string) ~(dur_ns : int) : unit =
  let s = span_agg_of name in
  s.s_count <- s.s_count + 1;
  s.s_total_ns <- s.s_total_ns + dur_ns;
  if dur_ns > s.s_max_ns then s.s_max_ns <- dur_ns

let with_span ?(attrs : (string * attr) list = []) (name : string) (f : unit -> 'a) : 'a =
  let t0 = Clock.now_ns () in
  incr span_depth;
  Fun.protect
    ~finally:(fun () ->
      decr span_depth;
      let dur = Clock.now_ns () - t0 in
      record_span name ~dur_ns:dur;
      if tracing () then
        emit { ev = "span"; name; t_ns = t0; dur_ns = dur; depth = !span_depth; attrs })
    f

(* An instantaneous event (task lifecycle, worker crash, ...): counted
   always, emitted to the trace when one is active. *)
let event ?(attrs : (string * attr) list = []) (name : string) : unit =
  count name;
  if tracing () then
    emit
      { ev = "event"; name; t_ns = Clock.now_ns (); dur_ns = -1; depth = !span_depth; attrs }

(* ------------------------------------------------------------------ *)
(* Fork-safe forwarding                                                *)
(* ------------------------------------------------------------------ *)

type payload = {
  p_events : event list;
  p_counters : (string * int) list;
  p_hists : (string * (int * float * float * float * int array)) list;
  p_spans : (string * (int * int * int)) list;
}

let reset () : unit =
  Hashtbl.reset counters;
  Hashtbl.reset hists;
  Hashtbl.reset spans;
  span_depth := 0;
  (match !current_sink with Memory buf -> buf := [] | _ -> ())

(* To be called in a forked child before it runs any task: the parent's
   aggregates must not be double-counted when the child's are absorbed,
   and the parent's trace channel must not see interleaved writes. *)
let child_begin () : unit =
  current_sink := Memory (ref []);
  Hashtbl.reset counters;
  Hashtbl.reset hists;
  Hashtbl.reset spans;
  span_depth := 0

(* Package and clear everything recorded since [child_begin] (or the
   last [drain]).  The result is marshal-safe. *)
let drain () : payload =
  let evts = match !current_sink with Memory buf -> List.rev !buf | _ -> [] in
  let p =
    { p_events = evts;
      p_counters = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counters [];
      p_hists =
        Hashtbl.fold
          (fun k h acc -> (k, (h.h_count, h.h_sum, h.h_min, h.h_max, Array.copy h.buckets)) :: acc)
          hists [];
      p_spans =
        Hashtbl.fold (fun k s acc -> (k, (s.s_count, s.s_total_ns, s.s_max_ns)) :: acc)
          spans [];
    }
  in
  Hashtbl.reset counters;
  Hashtbl.reset hists;
  Hashtbl.reset spans;
  (match !current_sink with Memory buf -> buf := [] | _ -> ());
  p

(* Merge a child's payload into this process: re-emit its events into
   our sink (annotated with [attrs], e.g. the shard id) and fold its
   aggregates into the registry. *)
let absorb ?(attrs : (string * attr) list = []) (p : payload) : unit =
  if tracing () then List.iter (fun e -> emit { e with attrs = e.attrs @ attrs }) p.p_events;
  List.iter (fun (k, v) -> count ~by:v k) p.p_counters;
  List.iter
    (fun (k, (c, sum, mn, mx, buckets)) ->
      if c > 0 then begin
        let h =
          match Hashtbl.find_opt hists k with
          | Some h -> h
          | None ->
            let h =
              { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
                buckets = Array.make 64 0 }
            in
            Hashtbl.replace hists k h;
            h
        in
        h.h_count <- h.h_count + c;
        h.h_sum <- h.h_sum +. sum;
        if mn < h.h_min then h.h_min <- mn;
        if mx > h.h_max then h.h_max <- mx;
        Array.iteri (fun i n -> h.buckets.(i) <- h.buckets.(i) + n) buckets
      end)
    p.p_hists;
  List.iter
    (fun (k, (c, total, mx)) ->
      if c > 0 then begin
        let s = span_agg_of k in
        s.s_count <- s.s_count + c;
        s.s_total_ns <- s.s_total_ns + total;
        if mx > s.s_max_ns then s.s_max_ns <- mx
      end)
    p.p_spans

(* ------------------------------------------------------------------ *)
(* The run report                                                      *)
(* ------------------------------------------------------------------ *)

let sorted_bindings (tbl : (string, 'a) Hashtbl.t) : (string * 'a) list =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let report_json () : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"schema\":\"ubc-obs-report-v1\"";
  (match !fleet_shard with
  | Some s -> Buffer.add_string buf (Printf.sprintf ",\"shard\":\"%s\"" (json_escape s))
  | None -> ());
  (* counters *)
  Buffer.add_string buf ",\"counters\":{";
  List.iteri
    (fun i (k, r) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape k) !r))
    (sorted_bindings counters);
  Buffer.add_char buf '}';
  (* spans *)
  Buffer.add_string buf ",\"spans\":{";
  List.iteri
    (fun i (k, s) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":{\"count\":%d,\"total_s\":%.9g,\"max_s\":%.9g}"
           (json_escape k) s.s_count
           (float_of_int s.s_total_ns /. 1e9)
           (float_of_int s.s_max_ns /. 1e9)))
    (sorted_bindings spans);
  Buffer.add_char buf '}';
  (* histograms *)
  Buffer.add_string buf ",\"histograms\":{";
  List.iteri
    (fun i (k, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%.9g,\"min\":%.9g,\"max\":%.9g,\"p50\":%.9g,\"p90\":%.9g}"
           (json_escape k) h.h_count h.h_sum
           (if h.h_count = 0 then 0.0 else h.h_min)
           (if h.h_count = 0 then 0.0 else h.h_max)
           (hist_quantile h 0.5) (hist_quantile h 0.9)))
    (sorted_bindings hists);
  Buffer.add_char buf '}';
  (* derived rates the acceptance criteria care about *)
  let hit = counter_value "verdict_cache.hit" and miss = counter_value "verdict_cache.miss" in
  let rate = if hit + miss = 0 then 0.0 else float_of_int hit /. float_of_int (hit + miss) in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"derived\":{\"verdict_cache_hit_rate\":%.6f,\"verdict_cache_lookups\":%d,\"pool_tasks\":%d,\"pool_crashes\":%d,\"pool_timeouts\":%d,\"hunt_programs\":%d,\"hunt_findings\":%d,\"hunt_unique\":%d,\"hunt_dropped\":%d,\"tv_checked\":%d,\"tv_refined\":%d,\"tv_violations\":%d,\"tv_unsupported\":%d}"
       rate (hit + miss)
       (counter_value "pool.task_done" + counter_value "pool.task_crashed"
       + counter_value "pool.task_timeout")
       (counter_value "pool.task_crashed")
       (counter_value "pool.task_timeout")
       (counter_value "hunt.program")
       (counter_value "hunt.finding")
       (counter_value "hunt.unique")
       (counter_value "hunt.dropped")
       (counter_value "tv.checked")
       (counter_value "tv.refined")
       (counter_value "tv.violations")
       (counter_value "tv.unsupported"));
  Buffer.add_char buf '}';
  Buffer.contents buf

let write_report (path : string) : unit =
  let oc = open_out path in
  output_string oc (report_json ());
  output_char oc '\n';
  close_out oc
