/* Monotonic-clock primitive for the observability layer.
 *
 * CLOCK_MONOTONIC is immune to NTP steps and manual clock adjustments,
 * which is what makes min-of-N timing loops sound: a wall clock
 * (gettimeofday) can move backwards mid-measurement and produce
 * negative or skewed durations.  Exposed as nanoseconds in an int64 so
 * callers can subtract without float rounding. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value ub_obs_monotonic_ns(value unit)
{
    struct timespec ts;
#ifdef CLOCK_MONOTONIC
    clock_gettime(CLOCK_MONOTONIC, &ts);
#else
    clock_gettime(CLOCK_REALTIME, &ts);
#endif
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
