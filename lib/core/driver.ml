(* The end-to-end compiler driver: Mini-C -> IR -> optimizer -> backend,
   in the two configurations the paper compares:

   - [Baseline]: the LLVM the paper forked from — no freeze instruction,
     the legacy (sometimes unsound) transformations enabled, bit-field
     stores lowered without freeze.
   - [Prototype]: the paper's prototype — freeze emitted by the fixed
     passes and by Clang's bit-field lowering, unsound rewrites removed,
     CodeGenPrepare and the inliner taught about freeze.

   Alongside the compiled artifact we collect everything Section 7
   measures: compile time, peak memory, IR size, freeze counts, object
   size, and simulated run time on both machine profiles. *)

open Ub_support
open Ub_ir

type pipeline = Baseline | Prototype

let pass_config = function
  | Baseline -> Ub_opt.Pass.legacy
  | Prototype -> Ub_opt.Pass.prototype

let clang_config = function
  | Baseline -> Ub_minic.Lower.clang_legacy
  | Prototype -> Ub_minic.Lower.clang_fixed

type metrics = {
  compile_time_s : float;
  peak_heap_words : float; (* max heap words observed during compilation *)
  ir_insns : int; (* after optimization *)
  freeze_count : int;
  obj_bytes : int;
}

type compiled_program = {
  pipeline : pipeline;
  source_ir : Func.module_; (* before optimization *)
  opt_ir : Func.module_;
  compiled : (string * Ub_backend.Compile.compiled) list;
  metrics : metrics;
}

let total_insns (m : Func.module_) =
  Util.sum_int (List.map Func.num_insns m.Func.funcs)

let total_freeze (m : Func.module_) =
  Util.sum_int (List.map Func.num_freeze m.Func.funcs)

(* Compile a Mini-C source string.  The timed region spans parsing,
   lowering, optimization and code generation (what §7.2 calls
   compilation time). *)
let compile ?(pipeline = Prototype) (src : string) : compiled_program =
  Gc.compact ();
  let stat0 = Gc.quick_stat () in
  let heap0 = float_of_int stat0.Gc.heap_words in
  let t0 = Ub_obs.Obs.Clock.now_s () in
  let source_ir = Ub_minic.Lower.compile ~cfg:(clang_config pipeline) src in
  let opt_ir = Ub_opt.Pipeline.run_o2 (pass_config pipeline) source_ir in
  let compiled = Ub_backend.Compile.compile_module opt_ir in
  let dt = Ub_obs.Obs.Clock.elapsed_s ~since:t0 in
  let stat1 = Gc.quick_stat () in
  let peak =
    float_of_int stat1.Gc.heap_words +. stat1.Gc.minor_words -. stat0.Gc.minor_words
  in
  ignore heap0;
  { pipeline;
    source_ir;
    opt_ir;
    compiled;
    metrics =
      { compile_time_s = dt;
        peak_heap_words = peak;
        ir_insns = total_insns opt_ir;
        freeze_count = total_freeze opt_ir;
        obj_bytes =
          Util.sum_int (List.map (fun (_, c) -> c.Ub_backend.Compile.obj_size) compiled);
      };
  }

(* ------------------------------------------------------------------ *)
(* Pipeline translation validation                                     *)
(* ------------------------------------------------------------------ *)

(* Validate one pipeline run pass by pass: every time a function pass
   changes a function, check that the output refines its input under
   [mode].  All queries of a run go through ONE checker session — the
   before/after pairs of consecutive passes are near-identical circuits
   over the same argument symbols, which is exactly the workload the
   incremental session turns into table hits against a warm solver.
   The module-level inliner runs up front unvalidated (it has no
   per-function before/after pair); function passes are validated. *)

type pass_verdict = {
  pv_pass : string;
  pv_func : string;
  pv_verdict : Ub_refine.Checker.verdict;
}

type validation = {
  validated_ir : Func.module_; (* the pipeline's output *)
  pass_verdicts : pass_verdict list; (* one per (pass, func) that changed IR *)
  unsound : pass_verdict list; (* the counterexample subset *)
  session_queries : int;
  session_resets : int;
}

let validate_pipeline ?(pipeline = Prototype) ?(mode = Ub_sem.Mode.proposed)
    ?max_universal_bits ?max_conflicts (m : Func.module_) : validation =
  Ub_obs.Obs.with_span "driver.validate_pipeline" @@ fun () ->
  let cfg = pass_config pipeline in
  let session = Ub_refine.Checker.create_session () in
  let verdicts = ref [] in
  let m = Ub_opt.Inline.run_module cfg m in
  let funcs =
    List.map
      (fun fn ->
        List.fold_left
          (fun fn (p : Ub_opt.Pass.t) ->
            let fn' = p.Ub_opt.Pass.run cfg fn in
            if fn' <> fn then begin
              let v =
                Ub_refine.Checker.check_sat ?max_universal_bits ?max_conflicts ~session
                  mode ~src:fn ~tgt:fn'
              in
              verdicts :=
                { pv_pass = p.Ub_opt.Pass.name; pv_func = fn.Func.name; pv_verdict = v }
                :: !verdicts
            end;
            fn')
          fn Ub_opt.Pipeline.o2_function_passes)
      m.Func.funcs
  in
  let pass_verdicts = List.rev !verdicts in
  { validated_ir = { Func.funcs };
    pass_verdicts;
    unsound =
      List.filter
        (fun pv ->
          match pv.pv_verdict with Ub_refine.Checker.Counterexample _ -> true | _ -> false)
        pass_verdicts;
    session_queries = Ub_refine.Checker.session_queries session;
    session_resets = Ub_refine.Checker.session_resets session;
  }

(* Simulated run: execute the OPTIMIZED IR under the proposed semantics
   to obtain the block-level profile, then price the machine code. *)
type sim_result = {
  outcome : Ub_sem.Interp.outcome;
  cycles_m1 : float;
  cycles_m2 : float;
}

let simulate (cp : compiled_program) ~(entry : string) ~(args : Ub_sem.Value.t list) :
    sim_result =
  let fn = Func.find_func_exn cp.opt_ir entry in
  (* The baseline pipeline's output is only correct under the OLD
     semantics (it contains the legacy lowerings); profiling it under the
     proposed semantics would report the miscompilations this repository
     exists to demonstrate.  Each pipeline is therefore priced under the
     semantics it was built for — which is also what hardware does: the
     machine gives uninitialized registers concrete values. *)
  let mode =
    match cp.pipeline with
    | Baseline -> Ub_sem.Mode.old_unswitch
    | Prototype -> Ub_sem.Mode.proposed
  in
  let profile, outcome = Ub_sem.Interp.profile ~mode ~module_:cp.opt_ir fn args in
  let cycles p =
    List.fold_left
      (fun acc (name, c) ->
        match List.assoc_opt name cp.compiled with
        | Some comp ->
          let fprof =
            List.filter_map
              (fun ((f, l), n) -> if f = name then Some (l, n) else None)
              profile
          in
          ignore c;
          acc +. Ub_backend.Compile.simulate_cycles p comp ~profile:fprof
        | None -> acc)
      0.0
      (List.map (fun (n, _) -> (n, ())) cp.compiled)
  in
  { outcome;
    cycles_m1 = cycles Ub_backend.Target.machine1;
    cycles_m2 = cycles Ub_backend.Target.machine2;
  }

(* Convenience: run a source end-to-end through both pipelines and
   report the relative change, Figure-6 style. *)
type comparison = {
  name : string;
  runtime_delta_m1_pct : float; (* positive = prototype faster (paper convention) *)
  runtime_delta_m2_pct : float;
  compile_time_delta_pct : float;
  mem_delta_pct : float;
  size_delta_pct : float;
  freeze_count : int;
  freeze_fraction_pct : float;
  baseline : compiled_program;
  prototype : compiled_program;
}

let compare_pipelines ~name ~entry ~args (src : string) : comparison =
  let base = compile ~pipeline:Baseline src in
  let proto = compile ~pipeline:Prototype src in
  let sim_b = simulate base ~entry ~args in
  let sim_p = simulate proto ~entry ~args in
  (* positive % = performance improved (paper's Figure 6 convention) *)
  let delta b p = if b = 0.0 then 0.0 else (b -. p) /. b *. 100.0 in
  { name;
    runtime_delta_m1_pct = delta sim_b.cycles_m1 sim_p.cycles_m1;
    runtime_delta_m2_pct = delta sim_b.cycles_m2 sim_p.cycles_m2;
    compile_time_delta_pct =
      Util.percent_change ~base:base.metrics.compile_time_s ~now:proto.metrics.compile_time_s;
    mem_delta_pct =
      Util.percent_change ~base:base.metrics.peak_heap_words ~now:proto.metrics.peak_heap_words;
    size_delta_pct =
      Util.percent_change
        ~base:(float_of_int base.metrics.obj_bytes)
        ~now:(float_of_int proto.metrics.obj_bytes);
    freeze_count = proto.metrics.freeze_count;
    freeze_fraction_pct =
      (if proto.metrics.ir_insns = 0 then 0.0
       else float_of_int proto.metrics.freeze_count /. float_of_int proto.metrics.ir_insns *. 100.0);
    baseline = base;
    prototype = proto;
  }
