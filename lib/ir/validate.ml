(* Well-formedness checking: SSA structure, type correctness, and
   dominance of definitions over uses.  Every function built by the
   builder, emitted by a pass, produced by the fuzzer, or parsed from text
   is expected to validate; tests enforce this after every transformation. *)

open Instr

type error = string

let errf fmt = Printf.ksprintf (fun s -> s) fmt

(* -------------------- dominance (simple iterative) ----------------- *)

(* Dominator sets via the classic iterative dataflow; fine at validator
   scale.  The analysis library has the fast Cooper-Harvey-Kennedy tree. *)
let dominators (fn : Func.t) : (label, label list) Hashtbl.t =
  let labels = Func.block_labels fn in
  let entry = (Func.entry fn).label in
  let preds = Func.predecessors fn in
  (* edges from blocks unreachable from the entry carry no executions and
     must not weaken the meet (SCCP and SimplifyCFG legitimately leave
     unreachable blocks behind for DCE to collect) *)
  let reachable = Hashtbl.create 16 in
  let rec dfs l =
    if not (Hashtbl.mem reachable l) then begin
      Hashtbl.replace reachable l ();
      match Func.find_block fn l with
      | Some b -> List.iter dfs (Instr.successors b.term)
      | None -> ()
    end
  in
  dfs entry;
  let dom = Hashtbl.create 16 in
  Hashtbl.replace dom entry [ entry ];
  List.iter (fun l -> if l <> entry then Hashtbl.replace dom l labels) labels;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if l <> entry then begin
          let ps = match List.assoc_opt l preds with Some p -> p | None -> [] in
          let ps = List.filter (Hashtbl.mem reachable) ps in
          let meet =
            match ps with
            | [] -> [] (* unreachable: dominated by nothing reachable *)
            | p :: rest ->
              List.fold_left
                (fun acc q -> List.filter (fun x -> List.mem x (Hashtbl.find dom q)) acc)
                (Hashtbl.find dom p) rest
          in
          let new_dom = l :: List.filter (fun x -> x <> l) meet in
          if new_dom <> Hashtbl.find dom l then begin
            Hashtbl.replace dom l new_dom;
            changed := true
          end
        end)
      labels
  done;
  dom

(* -------------------- the checks ----------------------------------- *)

let check_func (fn : Func.t) : error list =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  (* blocks exist and labels are unique *)
  if fn.blocks = [] then err "@%s: function has no blocks" fn.name;
  let labels = Func.block_labels fn in
  let rec dup_check seen = function
    | [] -> ()
    | l :: rest ->
      if List.mem l seen then err "@%s: duplicate block label %%%s" fn.name l;
      dup_check (l :: seen) rest
  in
  dup_check [] labels;
  if fn.blocks = [] then List.rev !errors
  else begin
    let entry_label = (Func.entry fn).label in
    (* unique defs *)
    let all_defs = Func.defs fn in
    let rec dup_defs seen = function
      | [] -> ()
      | (v, _) :: rest ->
        if List.mem v seen then err "@%s: multiple definitions of %%%s" fn.name v;
        dup_defs (v :: seen) rest
    in
    dup_defs [] all_defs;
    let ty_of_var v = List.assoc_opt v all_defs in
    let ty_of_operand = function
      | Var v -> ty_of_var v
      | Const c -> Some (Constant.ty c)
    in
    let check_operand ctx expected op =
      match ty_of_operand op with
      | None -> (
        match op with
        | Var v -> err "@%s: %s: use of undefined register %%%s" fn.name ctx v
        | Const _ -> ())
      | Some got ->
        if not (Types.equal got expected) then
          err "@%s: %s: operand has type %s but %s expected" fn.name ctx (Types.to_string got)
            (Types.to_string expected)
    in
    (* per-block: phis first; terminator targets exist; typing *)
    let preds = Func.predecessors fn in
    List.iter
      (fun (b : Func.block) ->
        let ctx = Printf.sprintf "block %%%s" b.label in
        (* phis first *)
        let rec phi_prefix seen_non_phi = function
          | [] -> ()
          | { ins = Phi _; _ } :: rest ->
            if seen_non_phi then err "@%s: %s: phi after non-phi instruction" fn.name b.label;
            phi_prefix seen_non_phi rest
          | _ :: rest -> phi_prefix true rest
        in
        phi_prefix false b.insns;
        (* instruction-level checks *)
        List.iter
          (fun { def; ins } ->
            let ictx = Printf.sprintf "%s: %s" ctx (Printer.insn_to_string { def; ins }) in
            (match (def, result_ty ins) with
            | Some _, None -> err "@%s: %s: void instruction has a name" fn.name ictx
            | None, Some _ -> err "@%s: %s: value-producing instruction unnamed" fn.name ictx
            | _ -> ());
            (match ins with
            | Binop (op, attrs, ty, a, bb) ->
              if not (attrs_ok op attrs) then err "@%s: %s: bad attributes" fn.name ictx;
              if not (Types.is_integer (Types.element ty)) then
                err "@%s: %s: binop on non-integer type" fn.name ictx;
              check_operand ictx ty a;
              check_operand ictx ty bb
            | Icmp (_, ty, a, bb) ->
              check_operand ictx ty a;
              check_operand ictx ty bb
            | Select (c, ty, a, bb) ->
              check_operand ictx (Types.bool_shape ty) c;
              check_operand ictx ty a;
              check_operand ictx ty bb
            | Conv (op, from, x, to_) ->
              check_operand ictx from x;
              let fw = Types.bitwidth from and tw = Types.bitwidth to_ in
              (match op with
              | Zext | Sext ->
                if tw <= fw then err "@%s: %s: %s must widen" fn.name ictx (conv_name op)
              | Trunc -> if tw >= fw then err "@%s: %s: trunc must narrow" fn.name ictx
              | Ptrtoint ->
                if not (Types.is_pointer (Types.element from)) then
                  err "@%s: %s: ptrtoint from non-pointer type" fn.name ictx;
                if not (Types.is_integer (Types.element to_)) then
                  err "@%s: %s: ptrtoint to non-integer type" fn.name ictx
              | Inttoptr ->
                if not (Types.is_integer (Types.element from)) then
                  err "@%s: %s: inttoptr from non-integer type" fn.name ictx;
                if not (Types.is_pointer (Types.element to_)) then
                  err "@%s: %s: inttoptr to non-pointer type" fn.name ictx);
              (match (from, to_) with
              | Types.Vec (n, _), Types.Vec (m, _) when n = m -> ()
              | Types.Vec _, _ | _, Types.Vec _ ->
                err "@%s: %s: vector/scalar conversion mismatch" fn.name ictx
              | _ -> ())
            | Bitcast (from, x, to_) ->
              check_operand ictx from x;
              if not (Types.bitcast_compatible from to_) then
                err "@%s: %s: bitcast between types of different widths" fn.name ictx
            | Freeze (ty, x) -> check_operand ictx ty x
            | Phi (ty, incoming) ->
              let my_preds =
                match List.assoc_opt b.label preds with Some p -> p | None -> []
              in
              let in_labels = List.map snd incoming in
              List.iter
                (fun p ->
                  if not (List.mem p in_labels) then
                    err "@%s: %s: phi missing incoming for predecessor %%%s" fn.name ictx p)
                my_preds;
              List.iter
                (fun (v, l) ->
                  if not (List.mem l my_preds) then
                    err "@%s: %s: phi has incoming for non-predecessor %%%s" fn.name ictx l;
                  check_operand ictx ty v)
                incoming
            | Gep { pointee; base; indices; _ } ->
              check_operand ictx (Types.Ptr pointee) base;
              List.iter
                (fun (t, v) ->
                  if not (Types.is_integer t) then
                    err "@%s: %s: gep index must be an integer" fn.name ictx;
                  check_operand ictx t v)
                indices
            | Load (ty, p) -> check_operand ictx (Types.Ptr ty) p
            | Store (ty, v, p) ->
              check_operand ictx ty v;
              check_operand ictx (Types.Ptr ty) p
            | Call (_, _, args) -> List.iter (fun (t, v) -> check_operand ictx t v) args
            | Extractelement (vty, v, i) ->
              if not (Types.is_vector vty) then
                err "@%s: %s: extractelement on non-vector" fn.name ictx;
              check_operand ictx vty v;
              check_operand ictx (Types.Int 32) i
            | Insertelement (vty, v, e, i) ->
              if not (Types.is_vector vty) then
                err "@%s: %s: insertelement on non-vector" fn.name ictx;
              check_operand ictx vty v;
              check_operand ictx (Types.element vty) e;
              check_operand ictx (Types.Int 32) i))
          b.insns;
        (* terminator *)
        (match b.term with
        | Ret (ty, x) ->
          (match fn.ret_ty with
          | Some rt when Types.equal rt ty -> ()
          | Some rt ->
            err "@%s: %s: ret type %s but function returns %s" fn.name ctx (Types.to_string ty)
              (Types.to_string rt)
          | None -> err "@%s: %s: ret with value in void function" fn.name ctx);
          check_operand ctx ty x
        | Ret_void ->
          if fn.ret_ty <> None then err "@%s: %s: ret void in non-void function" fn.name ctx
        | Br l -> if not (List.mem l labels) then err "@%s: %s: branch to unknown %%%s" fn.name ctx l
        | Cond_br (c, t, e) ->
          check_operand ctx (Types.Int 1) c;
          if not (List.mem t labels) then err "@%s: %s: branch to unknown %%%s" fn.name ctx t;
          if not (List.mem e labels) then err "@%s: %s: branch to unknown %%%s" fn.name ctx e
        | Unreachable -> ());
        if List.exists (fun s -> s = entry_label) (Instr.successors b.term) then
          err "@%s: entry block %%%s must not have predecessors" fn.name entry_label)
      fn.blocks;
    (* dominance of defs over uses (reachable blocks only) *)
    let dom = dominators fn in
    let block_of_def = Hashtbl.create 16 in
    List.iter
      (fun (b : Func.block) ->
        List.iter
          (fun { def; _ } ->
            match def with Some v -> Hashtbl.replace block_of_def v b.label | None -> ())
          b.insns)
      fn.blocks;
    let dominates a b =
      match Hashtbl.find_opt dom b with Some ds -> List.mem a ds | None -> false
    in
    (* blocks unreachable from the entry are exempt from dominance checks
       (as in LLVM's verifier: unreachable code may use anything) *)
    let reachable =
      let seen = Hashtbl.create 16 in
      let rec dfs l =
        if not (Hashtbl.mem seen l) then begin
          Hashtbl.replace seen l ();
          match Func.find_block fn l with
          | Some b -> List.iter dfs (Instr.successors b.term)
          | None -> ()
        end
      in
      dfs entry_label;
      seen
    in
    let arg_names = List.map fst fn.args in
    let check_use_dominance blabel ~before_pos ins_ctx op =
      if not (Hashtbl.mem reachable blabel) then ()
      else
      match op with
      | Const _ -> ()
      | Var v ->
        if List.mem v arg_names then ()
        else begin
          match Hashtbl.find_opt block_of_def v with
          | None -> () (* undefined-register error already reported *)
          | Some dblock ->
            if dblock = blabel then begin
              (* must appear earlier in the same block *)
              if not (List.mem v before_pos) then
                err "@%s: %s: %%%s used before its definition" fn.name ins_ctx v
            end
            else if not (dominates dblock blabel) then
              err "@%s: %s: definition of %%%s does not dominate this use" fn.name ins_ctx v
        end
    in
    List.iter
      (fun (b : Func.block) ->
        let seen = ref [] in
        List.iter
          (fun { def; ins } ->
            let ictx = Printer.insn_to_string { def; ins } in
            (match ins with
            | Phi (_, incoming) ->
              (* phi uses are checked at the end of the incoming block *)
              List.iter
                (fun (v, l) ->
                  match v with
                  | Const _ -> ()
                  | Var x ->
                    if List.mem x arg_names || not (Hashtbl.mem reachable l) then ()
                    else (
                      match Hashtbl.find_opt block_of_def x with
                      | None -> ()
                      | Some dblock ->
                        if not (dblock = l || dominates dblock l) then
                          err "@%s: %s: phi operand %%%s does not dominate predecessor %%%s"
                            fn.name ictx x l))
                incoming
            | _ -> List.iter (check_use_dominance b.label ~before_pos:!seen ictx) (operands ins));
            match def with Some v -> seen := v :: !seen | None -> ())
          b.insns;
        List.iter
          (check_use_dominance b.label ~before_pos:!seen "terminator")
          (term_operands b.term))
      fn.blocks;
    List.rev !errors
  end

let check_module (m : Func.module_) : error list =
  let dup =
    let names = List.map (fun f -> f.Func.name) m.funcs in
    List.filter (fun n -> List.length (List.filter (( = ) n) names) > 1) names
  in
  let dup_errs = List.sort_uniq compare dup |> List.map (errf "duplicate function @%s") in
  dup_errs @ List.concat_map check_func m.funcs

let is_valid fn = check_func fn = []

exception Invalid of string list

let check_exn fn =
  match check_func fn with
  | [] -> ()
  | errs -> raise (Invalid errs)
