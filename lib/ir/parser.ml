(* Parser for the textual IR.  Hand-written lexer and recursive-descent
   parser accepting the syntax the printer emits (a faithful subset of
   LLVM assembly), so parse ∘ print = id — a property test relies on it.

   Comments run from ';' to end of line. *)

open Ub_support

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | LT
  | GT
  | COMMA
  | EQUALS
  | COLON
  | STAR
  | IDENT of string (* keywords, opcodes, iN types, x *)
  | LOCAL of string (* %name *)
  | GLOBAL of string (* @name *)
  | NUM of string (* integer literal, possibly negative or hex *)
  | EOF

let pp_token = function
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACK -> "[" | RBRACK -> "]" | LT -> "<" | GT -> ">"
  | COMMA -> "," | EQUALS -> "=" | COLON -> ":" | STAR -> "*"
  | IDENT s -> s
  | LOCAL s -> "%" ^ s
  | GLOBAL s -> "@" ^ s
  | NUM s -> s
  | EOF -> "<eof>"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (s : string) : (token * int) list =
  let n = String.length s in
  let toks = ref [] in
  let line = ref 1 in
  let push t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let read_while p =
    let start = !i in
    while !i < n && p s.[!i] do incr i done;
    String.sub s start (!i - start)
  in
  while !i < n do
    let c = s.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' then while !i < n && s.[!i] <> '\n' do incr i done
    else if c = '(' then begin push LPAREN; incr i end
    else if c = ')' then begin push RPAREN; incr i end
    else if c = '{' then begin push LBRACE; incr i end
    else if c = '}' then begin push RBRACE; incr i end
    else if c = '[' then begin push LBRACK; incr i end
    else if c = ']' then begin push RBRACK; incr i end
    else if c = '<' then begin push LT; incr i end
    else if c = '>' then begin push GT; incr i end
    else if c = ',' then begin push COMMA; incr i end
    else if c = '=' then begin push EQUALS; incr i end
    else if c = ':' then begin push COLON; incr i end
    else if c = '*' then begin push STAR; incr i end
    else if c = '%' then begin
      incr i;
      let name = read_while is_ident_char in
      if name = "" then fail "line %d: empty %%name" !line;
      push (LOCAL name)
    end
    else if c = '@' then begin
      incr i;
      let name = read_while is_ident_char in
      if name = "" then fail "line %d: empty @name" !line;
      push (GLOBAL name)
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      let _ = read_while (fun c -> is_digit c || c = 'x' || c = 'X'
                                   || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')) in
      push (NUM (String.sub s start (!i - start)))
    end
    else if is_ident_start c then push (IDENT (read_while is_ident_char))
    else fail "line %d: unexpected character %C" !line c
  done;
  push EOF;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token stream                                                        *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF
let peek2 st = match st.toks with _ :: (t, _) :: _ -> t | _ -> EOF
let cur_line st = match st.toks with (_, l) :: _ -> l | [] -> 0

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got = next st in
  if got <> tok then
    fail "line %d: expected '%s' but found '%s'" (cur_line st) (pp_token tok) (pp_token got)

let expect_ident st kw =
  match next st with
  | IDENT s when s = kw -> ()
  | got -> fail "line %d: expected '%s' but found '%s'" (cur_line st) kw (pp_token got)

let local st =
  match next st with
  | LOCAL v -> v
  | got -> fail "line %d: expected %%name, found '%s'" (cur_line st) (pp_token got)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let int_ty_of_ident s =
  if String.length s >= 2 && s.[0] = 'i'
     && String.for_all is_digit (String.sub s 1 (String.length s - 1))
  then
    let w = int_of_string (String.sub s 1 (String.length s - 1)) in
    if Types.valid_int_width w then Some (Types.Int w) else None
  else None

let rec parse_type st : Types.t =
  let base =
    match next st with
    | IDENT s -> (
      match int_ty_of_ident s with
      | Some t -> t
      | None -> fail "line %d: expected a type, found '%s'" (cur_line st) s)
    | LT ->
      let n =
        match next st with
        | NUM s -> int_of_string s
        | got -> fail "line %d: expected vector length, found '%s'" (cur_line st) (pp_token got)
      in
      expect_ident st "x";
      let elt = parse_type st in
      expect st GT;
      Types.Vec (n, elt)
    | got -> fail "line %d: expected a type, found '%s'" (cur_line st) (pp_token got)
  in
  parse_stars st base

and parse_stars st base =
  if peek st = STAR then begin
    advance st;
    parse_stars st (Types.Ptr base)
  end
  else base

(* ------------------------------------------------------------------ *)
(* Operands                                                            *)
(* ------------------------------------------------------------------ *)

let rec parse_operand st (ty : Types.t) : Instr.operand =
  match peek st with
  | LOCAL v ->
    advance st;
    Instr.Var v
  | NUM s ->
    advance st;
    (match ty with
    | Types.Int w -> Instr.Const (Constant.Int (Bitvec.of_string ~width:w s))
    | _ -> fail "line %d: integer literal for non-integer type" (cur_line st))
  | IDENT "undef" ->
    advance st;
    Instr.Const (Constant.Undef ty)
  | IDENT "poison" ->
    advance st;
    Instr.Const (Constant.Poison ty)
  | IDENT "null" ->
    advance st;
    Instr.Const (Constant.Null ty)
  | IDENT "true" ->
    advance st;
    Instr.Const (Constant.bool true)
  | IDENT "false" ->
    advance st;
    Instr.Const (Constant.bool false)
  | LT ->
    advance st;
    (* vector constant: < ty c, ty c, ... > *)
    let elems = ref [] in
    let rec loop () =
      let ety = parse_type st in
      let c =
        match parse_operand st ety with
        | Instr.Const c -> c
        | Instr.Var _ -> fail "line %d: vector constants must be constant" (cur_line st)
      in
      elems := c :: !elems;
      if peek st = COMMA then begin advance st; loop () end
    in
    loop ();
    expect st GT;
    Instr.Const (Constant.Vec (ty, List.rev !elems))
  | got -> fail "line %d: expected an operand, found '%s'" (cur_line st) (pp_token got)

let parse_typed_operand st =
  let ty = parse_type st in
  let op = parse_operand st ty in
  (ty, op)

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let parse_attrs st op =
  let a = ref Instr.no_attrs in
  let rec loop () =
    match peek st with
    | IDENT "nsw" -> advance st; a := { !a with Instr.nsw = true }; loop ()
    | IDENT "nuw" -> advance st; a := { !a with Instr.nuw = true }; loop ()
    | IDENT "exact" -> advance st; a := { !a with Instr.exact = true }; loop ()
    | _ -> ()
  in
  loop ();
  if not (Instr.attrs_ok op !a) then
    fail "line %d: invalid attributes for %s" (cur_line st) (Instr.binop_name op);
  !a

let parse_phi_incoming st ty =
  let incoming = ref [] in
  let rec loop () =
    expect st LBRACK;
    let v = parse_operand st ty in
    expect st COMMA;
    let l = local st in
    expect st RBRACK;
    incoming := (v, l) :: !incoming;
    if peek st = COMMA then begin advance st; loop () end
  in
  loop ();
  List.rev !incoming

let parse_label_ref st =
  expect_ident st "label";
  local st

let parse_instr_body st (opcode : string) : Instr.t =
  match opcode with
  | _ when Instr.binop_of_name opcode <> None ->
    let op = Option.get (Instr.binop_of_name opcode) in
    let attrs = parse_attrs st op in
    let ty = parse_type st in
    let a = parse_operand st ty in
    expect st COMMA;
    let b = parse_operand st ty in
    Instr.Binop (op, attrs, ty, a, b)
  | "icmp" ->
    let p =
      match next st with
      | IDENT s -> (
        match Instr.pred_of_name s with
        | Some p -> p
        | None -> fail "line %d: unknown icmp predicate '%s'" (cur_line st) s)
      | got -> fail "line %d: expected icmp predicate, found '%s'" (cur_line st) (pp_token got)
    in
    let ty = parse_type st in
    let a = parse_operand st ty in
    expect st COMMA;
    let b = parse_operand st ty in
    Instr.Icmp (p, ty, a, b)
  | "select" ->
    let _cty = parse_type st in
    let c = parse_operand st _cty in
    expect st COMMA;
    let ty = parse_type st in
    let a = parse_operand st ty in
    expect st COMMA;
    let ty2 = parse_type st in
    if not (Types.equal ty ty2) then fail "line %d: select arm types differ" (cur_line st);
    let b = parse_operand st ty in
    Instr.Select (c, ty, a, b)
  | "zext" | "sext" | "trunc" | "ptrtoint" | "inttoptr" ->
    let op =
      match opcode with
      | "zext" -> Instr.Zext
      | "sext" -> Instr.Sext
      | "ptrtoint" -> Instr.Ptrtoint
      | "inttoptr" -> Instr.Inttoptr
      | _ -> Instr.Trunc
    in
    let from = parse_type st in
    let x = parse_operand st from in
    expect_ident st "to";
    let to_ = parse_type st in
    Instr.Conv (op, from, x, to_)
  | "bitcast" ->
    let from = parse_type st in
    let x = parse_operand st from in
    expect_ident st "to";
    let to_ = parse_type st in
    Instr.Bitcast (from, x, to_)
  | "freeze" ->
    let ty = parse_type st in
    let x = parse_operand st ty in
    Instr.Freeze (ty, x)
  | "phi" ->
    let ty = parse_type st in
    Instr.Phi (ty, parse_phi_incoming st ty)
  | "getelementptr" ->
    let inbounds =
      match peek st with
      | IDENT "inbounds" -> advance st; true
      | _ -> false
    in
    let pointee = parse_type st in
    expect st COMMA;
    let pty = parse_type st in
    if not (Types.equal pty (Types.Ptr pointee)) then
      fail "line %d: getelementptr pointer type mismatch" (cur_line st);
    let base = parse_operand st pty in
    let indices = ref [] in
    while peek st = COMMA do
      advance st;
      let t = parse_type st in
      let v = parse_operand st t in
      indices := (t, v) :: !indices
    done;
    Instr.Gep { inbounds; pointee; base; indices = List.rev !indices }
  | "load" ->
    let ty = parse_type st in
    expect st COMMA;
    let pty = parse_type st in
    if not (Types.equal pty (Types.Ptr ty)) then
      fail "line %d: load pointer type mismatch" (cur_line st);
    let p = parse_operand st pty in
    Instr.Load (ty, p)
  | "store" ->
    let ty = parse_type st in
    let v = parse_operand st ty in
    expect st COMMA;
    let pty = parse_type st in
    if not (Types.equal pty (Types.Ptr ty)) then
      fail "line %d: store pointer type mismatch" (cur_line st);
    let p = parse_operand st pty in
    Instr.Store (ty, v, p)
  | "call" ->
    let ret =
      match peek st with
      | IDENT "void" -> advance st; None
      | _ -> Some (parse_type st)
    in
    let callee =
      match next st with
      | GLOBAL g -> g
      | got -> fail "line %d: expected @callee, found '%s'" (cur_line st) (pp_token got)
    in
    expect st LPAREN;
    let args = ref [] in
    if peek st <> RPAREN then begin
      let rec loop () =
        args := parse_typed_operand st :: !args;
        if peek st = COMMA then begin advance st; loop () end
      in
      loop ()
    end;
    expect st RPAREN;
    Instr.Call (ret, callee, List.rev !args)
  | "extractelement" ->
    let vty = parse_type st in
    let v = parse_operand st vty in
    expect st COMMA;
    let ity = parse_type st in
    let i = parse_operand st ity in
    Instr.Extractelement (vty, v, i)
  | "insertelement" ->
    let vty = parse_type st in
    let v = parse_operand st vty in
    expect st COMMA;
    let ety = parse_type st in
    let e = parse_operand st ety in
    expect st COMMA;
    let ity = parse_type st in
    let i = parse_operand st ity in
    Instr.Insertelement (vty, v, e, i)
  | _ -> fail "line %d: unknown opcode '%s'" (cur_line st) opcode

let parse_terminator st (opcode : string) : Instr.terminator =
  match opcode with
  | "ret" -> (
    match peek st with
    | IDENT "void" -> advance st; Instr.Ret_void
    | _ ->
      let ty = parse_type st in
      let x = parse_operand st ty in
      Instr.Ret (ty, x))
  | "br" -> (
    match peek st with
    | IDENT "label" -> Instr.Br (parse_label_ref st)
    | _ ->
      let ty = parse_type st in
      if not (Types.equal ty (Types.Int 1)) then
        fail "line %d: conditional branch needs an i1 condition" (cur_line st);
      let c = parse_operand st ty in
      expect st COMMA;
      let t = parse_label_ref st in
      expect st COMMA;
      let e = parse_label_ref st in
      Instr.Cond_br (c, t, e))
  | "unreachable" -> Instr.Unreachable
  | _ -> fail "line %d: '%s' is not a terminator" (cur_line st) opcode

let is_terminator_opcode = function
  | "ret" | "br" | "unreachable" -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Blocks, functions, modules                                          *)
(* ------------------------------------------------------------------ *)

let parse_block st : Func.block =
  let label =
    match next st with
    | IDENT l -> expect st COLON; l
    | LOCAL l -> expect st COLON; l
    | got -> fail "line %d: expected block label, found '%s'" (cur_line st) (pp_token got)
  in
  let insns = ref [] in
  let term = ref None in
  let rec loop () =
    match peek st with
    | LOCAL v when peek2 st = EQUALS ->
      advance st;
      advance st;
      let opcode =
        match next st with
        | IDENT s -> s
        | got -> fail "line %d: expected opcode, found '%s'" (cur_line st) (pp_token got)
      in
      insns := { Instr.def = Some v; ins = parse_instr_body st opcode } :: !insns;
      loop ()
    | IDENT op when is_terminator_opcode op ->
      advance st;
      term := Some (parse_terminator st op)
    | IDENT op ->
      advance st;
      insns := { Instr.def = None; ins = parse_instr_body st op } :: !insns;
      loop ()
    | got -> fail "line %d: expected instruction, found '%s'" (cur_line st) (pp_token got)
  in
  loop ();
  match !term with
  | Some t -> { Func.label; insns = List.rev !insns; term = t }
  | None -> fail "block %%%s has no terminator" label

let parse_func st : Func.t =
  expect_ident st "define";
  let ret_ty =
    match peek st with
    | IDENT "void" -> advance st; None
    | _ -> Some (parse_type st)
  in
  let name =
    match next st with
    | GLOBAL g -> g
    | got -> fail "line %d: expected @name, found '%s'" (cur_line st) (pp_token got)
  in
  expect st LPAREN;
  let args = ref [] in
  if peek st <> RPAREN then begin
    let rec loop () =
      let ty = parse_type st in
      let v = local st in
      args := (v, ty) :: !args;
      if peek st = COMMA then begin advance st; loop () end
    in
    loop ()
  end;
  expect st RPAREN;
  expect st LBRACE;
  let blocks = ref [] in
  while peek st <> RBRACE do
    blocks := parse_block st :: !blocks
  done;
  expect st RBRACE;
  { Func.name; args = List.rev !args; ret_ty; blocks = List.rev !blocks }

let parse_module_stream st : Func.module_ =
  let funcs = ref [] in
  while peek st <> EOF do
    funcs := parse_func st :: !funcs
  done;
  { Func.funcs = List.rev !funcs }

let parse_module s = parse_module_stream { toks = tokenize s }

let parse_func_string s =
  let st = { toks = tokenize s } in
  let f = parse_func st in
  expect st EOF;
  f
