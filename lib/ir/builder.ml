(* An imperative convenience API for constructing IR functions, in the
   style of LLVM's IRBuilder.  Examples and the Mini-C frontend use it. *)

open Instr

type t = {
  fname : string;
  args : (var * Types.t) list;
  ret_ty : Types.t option;
  mutable blocks : (label * named list ref * terminator option ref) list; (* reverse order *)
  mutable current : (label * named list ref * terminator option ref) option;
  mutable counter : int;
}

let create ~name ?(args = []) ?ret_ty () =
  { fname = name; args; ret_ty; blocks = []; current = None; counter = 0 }

let fresh ?(prefix = "t") b =
  let v = Printf.sprintf "%s%d" prefix b.counter in
  b.counter <- b.counter + 1;
  v

let fresh_label ?(prefix = "bb") b =
  let l = Printf.sprintf "%s%d" prefix b.counter in
  b.counter <- b.counter + 1;
  l

(* Start (and switch to) a new block with the given label. *)
let start_block b label =
  if List.exists (fun (l, _, _) -> l = label) b.blocks then
    invalid_arg (Printf.sprintf "Builder: duplicate block %%%s" label);
  let blk = (label, ref [], ref None) in
  b.blocks <- blk :: b.blocks;
  b.current <- Some blk

let switch_to b label =
  match List.find_opt (fun (l, _, _) -> l = label) b.blocks with
  | Some blk -> b.current <- Some blk
  | None -> invalid_arg (Printf.sprintf "Builder: no block %%%s" label)

let current_label b =
  match b.current with
  | Some (l, _, _) -> l
  | None -> invalid_arg "Builder: no current block"

let cur b =
  match b.current with
  | Some c -> c
  | None -> invalid_arg "Builder: no current block (call start_block first)"

let insert b ?name ins =
  let _, insns, term = cur b in
  if !term <> None then invalid_arg "Builder: block already terminated";
  let def =
    if is_void ins then None
    else Some (match name with Some n -> n | None -> fresh b)
  in
  insns := { def; ins } :: !insns;
  match def with Some v -> Var v | None -> Const (Constant.bool false) (* unused *)

let set_term b t =
  let _, _, term = cur b in
  if !term <> None then invalid_arg "Builder: block already terminated";
  term := Some t

(* -------------------- instruction helpers -------------------------- *)

let binop b ?name ?(attrs = no_attrs) op ty x y = insert b ?name (Binop (op, attrs, ty, x, y))
let add ?name ?attrs b ty x y = binop b ?name ?attrs Add ty x y
let sub ?name ?attrs b ty x y = binop b ?name ?attrs Sub ty x y
let mul ?name ?attrs b ty x y = binop b ?name ?attrs Mul ty x y
let udiv ?name ?attrs b ty x y = binop b ?name ?attrs UDiv ty x y
let sdiv ?name ?attrs b ty x y = binop b ?name ?attrs SDiv ty x y
let and_ ?name b ty x y = binop b ?name And ty x y
let or_ ?name b ty x y = binop b ?name Or ty x y
let xor ?name b ty x y = binop b ?name Xor ty x y
let shl ?name ?attrs b ty x y = binop b ?name ?attrs Shl ty x y
let lshr ?name ?attrs b ty x y = binop b ?name ?attrs LShr ty x y
let ashr ?name ?attrs b ty x y = binop b ?name ?attrs AShr ty x y

let icmp b ?name p ty x y = insert b ?name (Icmp (p, ty, x, y))
let select b ?name c ty x y = insert b ?name (Select (c, ty, x, y))
let zext b ?name ~from ~to_ x = insert b ?name (Conv (Zext, from, x, to_))
let sext b ?name ~from ~to_ x = insert b ?name (Conv (Sext, from, x, to_))
let trunc b ?name ~from ~to_ x = insert b ?name (Conv (Trunc, from, x, to_))
let bitcast b ?name ~from ~to_ x = insert b ?name (Bitcast (from, x, to_))
let ptrtoint b ?name ~from ~to_ x = insert b ?name (Conv (Ptrtoint, from, x, to_))
let inttoptr b ?name ~from ~to_ x = insert b ?name (Conv (Inttoptr, from, x, to_))
let freeze b ?name ty x = insert b ?name (Freeze (ty, x))
let phi b ?name ty incoming = insert b ?name (Phi (ty, incoming))

let gep b ?name ?(inbounds = false) ~pointee base indices =
  insert b ?name (Gep { inbounds; pointee; base; indices })

let load b ?name ty p = insert b ?name (Load (ty, p))
let store b ty v p = ignore (insert b (Store (ty, v, p)))
let call b ?name ret callee args = insert b ?name (Call (ret, callee, args))
let call_void b callee args = ignore (insert b (Call (None, callee, args)))
let extractelement b ?name vty v i = insert b ?name (Extractelement (vty, v, i))
let insertelement b ?name vty v e i = insert b ?name (Insertelement (vty, v, e, i))

let ret b ty x = set_term b (Ret (ty, x))
let ret_void b = set_term b Ret_void
let br b l = set_term b (Br l)
let cond_br b c t e = set_term b (Cond_br (c, t, e))
let unreachable b = set_term b Unreachable

(* Convenience constant operands. *)
let const_i ~width i = Const (Constant.of_int ~width i)
let const_bool v = Const (Constant.bool v)
let undef ty = Const (Constant.Undef ty)
let poison ty = Const (Constant.Poison ty)

(* Insert a phi at the START of a (possibly already filled) block; used
   by frontends that only learn the loop-carried values after lowering
   the loop body. *)
let prepend_phi b label ~name ty incoming =
  match List.find_opt (fun (l, _, _) -> l = label) b.blocks with
  | Some (_, insns, _) ->
    (* [insns] is kept in reverse order, so appending places the phi
       first in program order *)
    insns := !insns @ [ { def = Some name; ins = Phi (ty, incoming) } ]
  | None -> invalid_arg (Printf.sprintf "Builder.prepend_phi: no block %%%s" label)

(* Add an incoming edge to an existing phi (loop back edges discovered
   after the fact). *)
let patch_phi b label var incoming =
  match List.find_opt (fun (l, _, _) -> l = label) b.blocks with
  | Some (_, insns, _) ->
    insns :=
      List.map
        (fun n ->
          match (n.def, n.ins) with
          | Some d, Phi (ty, incs) when d = var -> { n with ins = Phi (ty, incs @ [ incoming ]) }
          | _ -> n)
        !insns
  | None -> invalid_arg (Printf.sprintf "Builder.patch_phi: no block %%%s" label)

(* Give every unterminated block an [unreachable]; frontends call this
   for join blocks that turned out to have no predecessors. *)
let terminate_dangling b =
  List.iter (fun (_, _, term) -> if !term = None then term := Some Unreachable) b.blocks

(* -------------------- finishing ------------------------------------ *)

let finish b : Func.t =
  let blocks =
    List.rev_map
      (fun (label, insns, term) ->
        match !term with
        | Some t -> { Func.label; insns = List.rev !insns; term = t }
        | None -> invalid_arg (Printf.sprintf "Builder: block %%%s not terminated" label))
      b.blocks
  in
  { Func.name = b.fname; args = b.args; ret_ty = b.ret_ty; blocks }

let finish_validated b =
  let fn = finish b in
  Validate.check_exn fn;
  fn
