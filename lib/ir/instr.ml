(* Instructions of the IR (Figure 4 of the paper), plus [sub], [mul],
   the remaining shifts/bitwise ops, [call], and an [inbounds] flag on
   [getelementptr] — all of which the paper's examples use or imply.

   Every instruction carries enough type annotations that its result type
   is computable locally, without an environment. *)

type var = string (* SSA register name, printed with a leading % *)
type label = string (* basic-block label *)

type operand =
  | Var of var
  | Const of Constant.t

type binop =
  | Add
  | Sub
  | Mul
  | UDiv
  | SDiv
  | URem
  | SRem
  | Shl
  | LShr
  | AShr
  | And
  | Or
  | Xor

(* Instruction attributes producing deferred UB: [nsw]/[nuw] on add/sub/
   mul/shl, [exact] on udiv/sdiv/lshr/ashr. *)
type attrs = { nsw : bool; nuw : bool; exact : bool }

let no_attrs = { nsw = false; nuw = false; exact = false }
let nsw_only = { no_attrs with nsw = true }
let nuw_only = { no_attrs with nuw = true }
let nsw_nuw = { no_attrs with nsw = true; nuw = true }
let exact_only = { no_attrs with exact = true }

type icmp_pred = Eq | Ne | Ugt | Uge | Ult | Ule | Sgt | Sge | Slt | Sle

type conv_op = Zext | Sext | Trunc | Ptrtoint | Inttoptr

type t =
  | Binop of binop * attrs * Types.t * operand * operand
  | Icmp of icmp_pred * Types.t * operand * operand
      (* operand type recorded; result is [Types.bool_shape ty] *)
  | Select of operand * Types.t * operand * operand
      (* select i1 %c, ty %a, ty %b (condition may be <n x i1> for vectors) *)
  | Conv of conv_op * Types.t * operand * Types.t (* from-type, operand, to-type *)
  | Bitcast of Types.t * operand * Types.t
  | Freeze of Types.t * operand
  | Phi of Types.t * (operand * label) list
  | Gep of { inbounds : bool; pointee : Types.t; base : operand; indices : (Types.t * operand) list }
  | Load of Types.t * operand (* loaded type, pointer operand *)
  | Store of Types.t * operand * operand (* stored type, value, pointer: no result *)
  | Call of Types.t option * string * (Types.t * operand) list
      (* return type (None = void), callee, typed arguments *)
  | Extractelement of Types.t * operand * operand (* vector type, vector, index *)
  | Insertelement of Types.t * operand * operand * operand
      (* vector type, vector, scalar element, index *)

type terminator =
  | Ret of Types.t * operand
  | Ret_void
  | Br of label
  | Cond_br of operand * label * label (* i1 condition, then-label, else-label *)
  | Unreachable

(* A named instruction: [def] is [None] exactly for void instructions
   (store, void call). *)
type named = { def : var option; ins : t }

(* ------------------------------------------------------------------ *)
(* Result types                                                        *)
(* ------------------------------------------------------------------ *)

let result_ty = function
  | Binop (_, _, ty, _, _) -> Some ty
  | Icmp (_, ty, _, _) -> Some (Types.bool_shape ty)
  | Select (_, ty, _, _) -> Some ty
  | Conv (_, _, _, to_ty) -> Some to_ty
  | Bitcast (_, _, to_ty) -> Some to_ty
  | Freeze (ty, _) -> Some ty
  | Phi (ty, _) -> Some ty
  | Gep { pointee; base = _; _ } -> Some (Types.Ptr pointee)
  | Load (ty, _) -> Some ty
  | Store _ -> None
  | Call (ret, _, _) -> ret
  | Extractelement (vty, _, _) -> Some (Types.element vty)
  | Insertelement (vty, _, _, _) -> Some vty

let is_void ins = result_ty ins = None

(* Operands of an instruction, in syntactic order. *)
let operands = function
  | Binop (_, _, _, a, b) -> [ a; b ]
  | Icmp (_, _, a, b) -> [ a; b ]
  | Select (c, _, a, b) -> [ c; a; b ]
  | Conv (_, _, x, _) -> [ x ]
  | Bitcast (_, x, _) -> [ x ]
  | Freeze (_, x) -> [ x ]
  | Phi (_, incoming) -> List.map fst incoming
  | Gep { base; indices; _ } -> base :: List.map snd indices
  | Load (_, p) -> [ p ]
  | Store (_, v, p) -> [ v; p ]
  | Call (_, _, args) -> List.map snd args
  | Extractelement (_, v, i) -> [ v; i ]
  | Insertelement (_, v, e, i) -> [ v; e; i ]

let term_operands = function
  | Ret (_, x) -> [ x ]
  | Cond_br (c, _, _) -> [ c ]
  | Ret_void | Br _ | Unreachable -> []

let successors = function
  | Br l -> [ l ]
  | Cond_br (_, a, b) -> [ a; b ]
  | Ret _ | Ret_void | Unreachable -> []

(* Map a function over the operands of an instruction (for substitution,
   renaming, RAUW).  Structure and types are preserved. *)
let map_operands f = function
  | Binop (op, at, ty, a, b) -> Binop (op, at, ty, f a, f b)
  | Icmp (p, ty, a, b) -> Icmp (p, ty, f a, f b)
  | Select (c, ty, a, b) -> Select (f c, ty, f a, f b)
  | Conv (op, from, x, to_) -> Conv (op, from, f x, to_)
  | Bitcast (from, x, to_) -> Bitcast (from, f x, to_)
  | Freeze (ty, x) -> Freeze (ty, f x)
  | Phi (ty, incoming) -> Phi (ty, List.map (fun (v, l) -> (f v, l)) incoming)
  | Gep g -> Gep { g with base = f g.base; indices = List.map (fun (t, v) -> (t, f v)) g.indices }
  | Load (ty, p) -> Load (ty, f p)
  | Store (ty, v, p) -> Store (ty, f v, f p)
  | Call (r, name, args) -> Call (r, name, List.map (fun (t, v) -> (t, f v)) args)
  | Extractelement (ty, v, i) -> Extractelement (ty, f v, f i)
  | Insertelement (ty, v, e, i) -> Insertelement (ty, f v, f e, f i)

let map_term_operands f = function
  | Ret (ty, x) -> Ret (ty, f x)
  | Cond_br (c, a, b) -> Cond_br (f c, a, b)
  | (Ret_void | Br _ | Unreachable) as t -> t

let map_term_labels f = function
  | Br l -> Br (f l)
  | Cond_br (c, a, b) -> Cond_br (c, f a, f b)
  | (Ret _ | Ret_void | Unreachable) as t -> t

(* Map the type annotations of an instruction, retyping the embedded
   constants in lockstep via [fc] (the shrink engine's width-narrowing
   and vector-shortening passes rewrite both together).  Operand
   variables are untouched. *)
let map_types fty fc ins =
  let fop = function Const c -> Const (fc c) | Var _ as v -> v in
  match ins with
  | Binop (op, at, ty, a, b) -> Binop (op, at, fty ty, fop a, fop b)
  | Icmp (p, ty, a, b) -> Icmp (p, fty ty, fop a, fop b)
  | Select (c, ty, a, b) -> Select (fop c, fty ty, fop a, fop b)
  | Conv (op, from, x, to_) -> Conv (op, fty from, fop x, fty to_)
  | Bitcast (from, x, to_) -> Bitcast (fty from, fop x, fty to_)
  | Freeze (ty, x) -> Freeze (fty ty, fop x)
  | Phi (ty, incoming) -> Phi (fty ty, List.map (fun (v, l) -> (fop v, l)) incoming)
  | Gep g ->
    Gep
      { g with
        pointee = fty g.pointee;
        base = fop g.base;
        indices = List.map (fun (t, v) -> (fty t, fop v)) g.indices
      }
  | Load (ty, p) -> Load (fty ty, fop p)
  | Store (ty, v, p) -> Store (fty ty, fop v, fop p)
  | Call (r, name, args) ->
    Call (Option.map fty r, name, List.map (fun (t, v) -> (fty t, fop v)) args)
  | Extractelement (ty, v, i) -> Extractelement (fty ty, fop v, fop i)
  | Insertelement (ty, v, e, i) -> Insertelement (fty ty, fop v, fop e, fop i)

let map_term_types fty fc = function
  | Ret (ty, x) -> Ret (fty ty, (match x with Const c -> Const (fc c) | v -> v))
  | Cond_br (c, a, b) -> Cond_br ((match c with Const cc -> Const (fc cc) | v -> v), a, b)
  | (Ret_void | Br _ | Unreachable) as t -> t

(* Does this instruction touch memory or have side effects (and hence must
   not be speculated, duplicated or removed freely)? *)
let has_side_effects = function
  | Store _ | Call _ -> true
  | Load _ -> false (* loads are movable but not removable-blind; see opt *)
  | _ -> false

(* Can this instruction be freely speculated (executed even when the
   original program would not)?  Division can trap (immediate UB on zero
   divisor); loads/stores can fault. *)
let speculatable = function
  | Binop ((UDiv | SDiv | URem | SRem), _, _, _, _) -> false
  | Load _ | Store _ | Call _ -> false
  | _ -> true

(* [freeze] instructions must not be duplicated (Section 5.5, Pitfall 1):
   each dynamic execution makes an independent choice. *)
let duplicatable = function Freeze _ -> false | ins -> not (has_side_effects ins)

(* ------------------------------------------------------------------ *)
(* Printing helpers                                                    *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | UDiv -> "udiv"
  | SDiv -> "sdiv"
  | URem -> "urem"
  | SRem -> "srem"
  | Shl -> "shl"
  | LShr -> "lshr"
  | AShr -> "ashr"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"

let binop_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "udiv" -> Some UDiv
  | "sdiv" -> Some SDiv
  | "urem" -> Some URem
  | "srem" -> Some SRem
  | "shl" -> Some Shl
  | "lshr" -> Some LShr
  | "ashr" -> Some AShr
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | _ -> None

let pred_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Ugt -> "ugt"
  | Uge -> "uge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Slt -> "slt"
  | Sle -> "sle"

let pred_of_name = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "ugt" -> Some Ugt
  | "uge" -> Some Uge
  | "ult" -> Some Ult
  | "ule" -> Some Ule
  | "sgt" -> Some Sgt
  | "sge" -> Some Sge
  | "slt" -> Some Slt
  | "sle" -> Some Sle
  | _ -> None

let conv_name = function
  | Zext -> "zext"
  | Sext -> "sext"
  | Trunc -> "trunc"
  | Ptrtoint -> "ptrtoint"
  | Inttoptr -> "inttoptr"

(* Which attributes may legally decorate which binop. *)
let attrs_ok op { nsw; nuw; exact } =
  match op with
  | Add | Sub | Mul | Shl -> not exact
  | UDiv | SDiv | LShr | AShr -> (not nsw) && not nuw
  | URem | SRem | And | Or | Xor -> (not nsw) && (not nuw) && not exact

(* Inverse / swap of icmp predicates, used by InstCombine. *)
let pred_negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Ugt -> Ule
  | Uge -> Ult
  | Ult -> Uge
  | Ule -> Ugt
  | Sgt -> Sle
  | Sge -> Slt
  | Slt -> Sge
  | Sle -> Sgt

let pred_swap = function
  | Eq -> Eq
  | Ne -> Ne
  | Ugt -> Ult
  | Uge -> Ule
  | Ult -> Ugt
  | Ule -> Uge
  | Sgt -> Slt
  | Sge -> Sle
  | Slt -> Sgt
  | Sle -> Sge

let is_div = function UDiv | SDiv | URem | SRem -> true | _ -> false

let commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | UDiv | SDiv | URem | SRem | Shl | LShr | AShr -> false
