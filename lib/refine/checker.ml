(* The refinement checker: does [tgt] refine [src] under a semantics
   mode?  This is the tool the paper uses (via Alive + opt-fuzz,
   Section 6) to validate optimizations against the proposed semantics,
   and the engine behind our Section-3 soundness matrix.

   Verification condition (counterexample search):

     exists inputs, target-choices .
       forall source-choices .
         not ( UB_src  \/  ( not UB_tgt  /\ covers ) )

   where covers = p_src \/ (not p_tgt /\ (u_src \/ (not u_tgt /\ v_src = v_tgt))).

   Source choices (undef materializations, freeze picks, nondet branch
   directions) are enumerated by bounded expansion; target choices are
   ordinary existentials in the SAT query. *)

open Ub_support
open Ub_ir
open Ub_sem
open Ub_smt

type verdict =
  | Refines
  | Counterexample of { args : Value.t list; witness : string }
  | Unknown of string

let verdict_to_string = function
  | Refines -> "refines"
  | Counterexample { args; witness } ->
    Printf.sprintf "COUNTEREXAMPLE args=(%s): %s"
      (String.concat ", " (List.map Value.to_string args))
      witness
  | Unknown r -> "unknown: " ^ r

(* Choice provider that decides and records which sites materialize
   (first pass) or replays fixed constants along the recorded decision
   trace (expansion passes).  The replay must not re-decide from its own
   circuits: substituted constants can fold a site's [cond] to false
   that the counting pass could not, and skipping that site would
   desynchronize the assignment stream (the widths no longer line up). *)
let counting_choices ctx (trace : int option list ref) : Encode.choice_fn =
  { Encode.choose =
      (fun ~width ~cond ->
        if Circuit.is_false cond then begin
          trace := None :: !trace;
          None
        end
        else begin
          trace := Some width :: !trace;
          Some (Bvterm.fresh ctx ~width)
        end)
  }

let constant_choices ctx (trace : int option list) (vals : Bitvec.t list) : Encode.choice_fn =
  let tr = ref trace in
  let rest = ref vals in
  { Encode.choose =
      (fun ~width ~cond:_ ->
        match !tr with
        | [] -> invalid_arg "Checker: choice trace exhausted"
        | None :: tl ->
          tr := tl;
          None
        | Some w :: tl -> (
          tr := tl;
          assert (w = width);
          match !rest with
          | v :: vtl ->
            rest := vtl;
            assert (Bitvec.width v = width);
            (* the site's [cond] may have folded to false under earlier
               constants — then the ite at the site folds the value away,
               which is exactly the vacuous case of the enumeration *)
            Some (Bvterm.const ctx v)
          | [] -> invalid_arg "Checker: choice list exhausted"))
  }

let fresh_choices ctx : Encode.choice_fn =
  { Encode.choose =
      (fun ~width ~cond ->
        if Circuit.is_false cond then None else Some (Bvterm.fresh ctx ~width))
  }

(* All assignments to a list of widths, as a lazy sequence of bitvec
   lists: the 2^total_bits cross-product is produced one element at a
   time, so memory stays flat right up to the max_universal_bits
   ceiling instead of materializing the whole product. *)
let rec assignments (widths : int list) : Bitvec.t list Seq.t =
  match widths with
  | [] -> Seq.return []
  | w :: rest ->
    Seq.concat_map
      (fun bv -> Seq.map (fun tail -> bv :: tail) (assignments rest))
      (List.to_seq (Bitvec.all ~width:w))

(* The stock SAT budgets.  Named so budget-aware callers (the verdict
   cache key, reduction oracles) can refer to the same numbers instead
   of restating them. *)
let default_max_universal_bits = 12
let default_max_conflicts = 300_000

(* A checker session: one persistent SMT session plus a cache of
   argument symbol triples.  Reusing the same input variables for
   arguments of the same shape is what makes consecutive queries about
   one function (a pass pipeline's before/after chain) hash-cons to the
   same circuit nodes and re-encode as pure table hits in the live
   solver.  The cache key is the argument width list plus whether undef
   inputs exist in the mode — argument *names* are debug-only.  A hard
   reset of the underlying session invalidates every cached circuit, so
   the cache is keyed on the session generation and dropped when it
   moves.

   The session also memoizes whole verdicts.  [check_sat] is a pure
   function of (mode, src, tgt) and its two budgets — the IR is
   immutable data and the search is deterministic — so a repeat query
   replays the recorded verdict without rebuilding a circuit.  Verdicts
   are semantic, not tied to any circuit context, so this cache survives
   both soft and hard resets of the underlying SMT session; it is
   dropped wholesale when it outgrows [max_verdicts]. *)
type verdict_key = Mode.t * Func.t * Func.t * int * int

(* The stock polymorphic hash inspects only ~10 nodes of a deep key, so
   distinct functions that share a prefix all collide and every probe
   degenerates into a deep structural compare.  Hash deep enough to
   separate real workloads; equality stays structural, so a rare
   collision is still answered correctly. *)
module Verdict_tbl = Hashtbl.Make (struct
  type t = verdict_key

  let equal : t -> t -> bool = ( = )
  let hash (k : t) = Hashtbl.hash_param 500 1000 k
end)

type session = {
  smt : Session.t;
  mutable syms_gen : int;
  syms : (string, Encode.sym list) Hashtbl.t;
  verdicts : verdict Verdict_tbl.t;
  max_verdicts : int;
}

let create_session ?max_vars ?max_clauses ?max_nodes ?max_live_vars ?simplify_every
    ?(max_verdicts = 8_192) () : session =
  { smt = Session.create ?max_vars ?max_clauses ?max_nodes ?max_live_vars ?simplify_every ();
    syms_gen = 0;
    syms = Hashtbl.create 8;
    verdicts = Verdict_tbl.create 64;
    max_verdicts;
  }

let session_queries (s : session) = Session.queries s.smt
let session_resets (s : session) = Session.resets s.smt

let session_ctx (s : session) : Circuit.ctx =
  let ctx = Session.ctx s.smt in
  if Session.generation s.smt <> s.syms_gen then begin
    Hashtbl.reset s.syms;
    s.syms_gen <- Session.generation s.smt
  end;
  ctx

let arg_syms (s : session) (ctx : Circuit.ctx) (mode : Mode.t)
    (args : (string * Types.t) list) : Encode.sym list =
  let key =
    String.concat ","
      (List.map (fun (_, ty) -> string_of_int (Encode.int_width ty)) args)
    ^ if mode.Mode.undef_enabled then "+u" else "-u"
  in
  match Hashtbl.find_opt s.syms key with
  | Some syms -> syms
  | None ->
    let syms =
      List.map
        (fun (v, ty) ->
          let w = Encode.int_width ty in
          { Encode.v = Bvterm.fresh ~name:("arg_" ^ v) ctx ~width:w;
            p = Circuit.fresh ~name:(lazy ("poison_" ^ v)) ctx;
            u =
              (if mode.Mode.undef_enabled then
                 Circuit.fresh ~name:(lazy ("undef_" ^ v)) ctx
               else Circuit.bfalse);
          })
        args
    in
    Hashtbl.replace s.syms key syms;
    syms

let check_sat ?(max_universal_bits = default_max_universal_bits)
    ?(max_conflicts = default_max_conflicts) ?stats ?session (mode : Mode.t)
    ~(src : Func.t) ~(tgt : Func.t) : verdict =
  Ub_obs.Obs.with_span "refine.check_sat" @@ fun () ->
  if List.map snd src.args <> List.map snd tgt.args then Unknown "argument types differ"
  else if src.ret_ty <> tgt.ret_ty then Unknown "return types differ"
  else
    let compute () =
    try
      let ctx =
        match session with None -> Circuit.create_ctx () | Some s -> session_ctx s
      in
      (* shared inputs: per argument a (value, poison, undef) triple —
         from the session's cache when one is live, so repeat queries
         over same-shaped functions reuse the same circuit inputs *)
      let syms =
        match session with
        | Some s -> arg_syms s ctx mode src.args
        | None ->
          List.map
            (fun (v, ty) ->
              let w = Encode.int_width ty in
              { Encode.v = Bvterm.fresh ~name:("arg_" ^ v) ctx ~width:w;
                p = Circuit.fresh ~name:(lazy ("poison_" ^ v)) ctx;
                u =
                  (if mode.Mode.undef_enabled then
                     Circuit.fresh ~name:(lazy ("undef_" ^ v)) ctx
                   else Circuit.bfalse);
              })
            src.args
      in
      let args_syms = List.map2 (fun (v, ty) sym -> (v, ty, sym)) src.args syms in
      let src_args = List.map (fun (v, _, s) -> (v, s)) args_syms in
      let tgt_args =
        List.map2 (fun (_, _, s) (v, _) -> (v, s)) args_syms tgt.args
      in
      (* pass 1: count source choices, recording the per-site decisions *)
      let trace = ref [] in
      let senc0 = Encode.encode ctx mode (counting_choices ctx trace) ~args:src_args src in
      let trace = List.rev !trace in
      let widths = List.filter_map Fun.id trace in
      let total_bits = Util.sum_int widths in
      if total_bits > max_universal_bits then
        Unknown
          (Printf.sprintf "source has %d bits of nondeterministic choice (max %d)" total_bits
             max_universal_bits)
      else begin
        (* encode target once, with existential choices *)
        let tenc = Encode.encode ctx mode (fresh_choices ctx) ~args:tgt_args tgt in
        let covers (s : Encode.fenc) : Circuit.t =
          match (s.ret, tenc.ret) with
          | None, None -> Circuit.btrue
          | Some rs, Some rt ->
            Circuit.bor ctx rs.Encode.p
              (Circuit.band ctx
                 (Circuit.bnot ctx rt.Encode.p)
                 (Circuit.bor ctx rs.Encode.u
                    (Circuit.band ctx
                       (Circuit.bnot ctx rt.Encode.u)
                       (Bvterm.eq ctx rs.Encode.v rt.Encode.v))))
          | _ -> Circuit.bfalse
        in
        (* encode the source once per universal assignment, folding the
           conjunction as the lazy cross-product is produced; shared
           structure across the encodings hash-conses to shared nodes.
           A choice-free source has exactly one universal assignment (the
           empty one) and its encoding is the counting pass itself. *)
        let sencs =
          if widths = [] then Seq.return senc0
          else
            Seq.map
              (fun assign ->
                Encode.encode ctx mode (constant_choices ctx trace assign) ~args:src_args src)
              (assignments widths)
        in
        let cex =
          Seq.fold_left
            (fun acc s ->
              Circuit.band ctx acc
                (Circuit.bnot ctx
                   (Circuit.bor ctx s.Encode.ub
                      (Circuit.band ctx (Circuit.bnot ctx tenc.ub) (covers s)))))
            Circuit.btrue sencs
        in
        let solve () =
          match session with
          | None -> Circuit.Cnf.solve ~max_conflicts ?stats ctx cex
          | Some s -> Session.solve ~max_conflicts ?stats s.smt cex
        in
        match solve () with
        | Circuit.Cnf.Unsat_r -> Refines
        | Circuit.Cnf.Sat_model model ->
          (* extract argument values *)
          let args =
            List.map
              (fun (_, ty, sym) ->
                let w = Encode.int_width ty in
                if Circuit.eval model.bool_of_input sym.Encode.p then
                  Value.Scalar Value.Poison
                else if
                  (not (Circuit.is_false sym.Encode.u))
                  && Circuit.eval model.bool_of_input sym.Encode.u
                then Value.Scalar Value.Undef
                else begin
                  let bv = ref (Bitvec.zero w) in
                  Array.iteri
                    (fun i bit ->
                      if Circuit.eval model.bool_of_input bit then
                        bv := Bitvec.set_bit !bv i true)
                    sym.Encode.v;
                  Value.Scalar (Value.Conc !bv)
                end)
              args_syms
          in
          Counterexample { args; witness = "SAT model of the refinement violation" }
      end
    with
    | Encode.Unsupported r -> Unknown ("not encodable: " ^ r)
    | Circuit.Cnf.Too_hard -> Unknown "SAT budget exceeded"
    in
    match session with
    | None -> compute ()
    | Some s -> (
      (* the verdict memo: [check_sat] is deterministic in its key, so a
         repeat query replays the recorded verdict.  Note the [?stats]
         out-parameter is left untouched on a hit — there is no solver
         work to report. *)
      let key = (mode, src, tgt, max_universal_bits, max_conflicts) in
      match Verdict_tbl.find_opt s.verdicts key with
      | Some v ->
        Ub_obs.Obs.count "session.verdict_hits";
        v
      | None ->
        let v = compute () in
        if Verdict_tbl.length s.verdicts >= s.max_verdicts then
          Verdict_tbl.reset s.verdicts;
        Verdict_tbl.replace s.verdicts key v;
        v)

(* Combined checker: try the SAT path, fall back to enumeration when the
   functions are outside the encodable fragment. *)
let check ?max_universal_bits ?max_conflicts ?fuel ?max_inputs ?max_runs ?module_src
    ?module_tgt ?inputs ?session (mode : Mode.t) ~(src : Func.t) ~(tgt : Func.t) : verdict =
  Ub_obs.Obs.with_span "refine.check" @@ fun () ->
  let counted (v : verdict) : verdict =
    Ub_obs.Obs.count
      (match v with
      | Refines -> "refine.verdict_refines"
      | Counterexample _ -> "refine.verdict_cex"
      | Unknown _ -> "refine.verdict_unknown");
    v
  in
  counted
  @@
  match inputs with
  | Some _ ->
    (* explicit inputs: enumeration only *)
    (match
       Enum_check.check ~mode ?fuel ?max_inputs ?max_runs ?module_src ?module_tgt ?inputs
         ~src ~tgt ()
     with
    | Enum_check.Refines -> Refines
    | Enum_check.Counterexample { args; witness } -> Counterexample { args; witness }
    | Enum_check.Unknown r -> Unknown r)
  | None -> (
    match check_sat ?max_universal_bits ?max_conflicts ?session mode ~src ~tgt with
    | (Refines | Counterexample _) as v -> v
    | Unknown sat_reason -> (
      match
        Enum_check.check ~mode ?fuel ?max_inputs ?max_runs ?module_src ?module_tgt ~src ~tgt
          ()
      with
      | Enum_check.Refines -> Refines
      | Enum_check.Counterexample { args; witness } -> Counterexample { args; witness }
      | Enum_check.Unknown enum_reason ->
        Unknown (Printf.sprintf "SAT: %s; enumeration: %s" sat_reason enum_reason)))
