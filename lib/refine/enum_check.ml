(* Refinement checking by exhaustive enumeration: compute the complete
   behaviour sets of source and target on every input (over a small input
   space) and check trace-and-result inclusion.  Slow but fully general —
   loops, memory, calls, vectors, every semantics mode — and therefore
   also the ground truth that the SAT-based checker is property-tested
   against. *)

open Ub_support
open Ub_ir
open Ub_sem

type verdict =
  | Refines
  | Counterexample of { args : Value.t list; witness : string }
  | Unknown of string

(* Does source behaviour [s] cover target behaviour [t]?  UB covers
   everything; a returned value covers by Value.covers; event traces must
   match pointwise with argument covering; memories compare byte-wise
   with poison covering anything and undef covering any defined bit.

   Memory fingerprints are ';'-separated "addr=bits[prov]" entries
   (Memory.fingerprint): 8 bit-chars, then an optional provenance suffix
   — nothing for integer bytes, "*" for wildcard pointer bytes,
   "@<base>" for bytes carrying an allocation's provenance.  A source
   wildcard byte covers any target provenance (it may hold any pointer);
   otherwise provenance must match exactly. *)
let mem_entry_covers (src : string) (tgt : string) =
  match (String.index_opt src '=', String.index_opt tgt '=') with
  | Some is_, Some it ->
    String.sub src 0 is_ = String.sub tgt 0 it
    && String.length src >= is_ + 9
    && String.length tgt >= it + 9
    && begin
      let bits_ok = ref true in
      for i = 1 to 8 do
        let cs = src.[is_ + i] and ct = tgt.[it + i] in
        if cs <> ct then
          match (cs, ct) with
          | 'p', _ -> ()
          | 'u', ('0' | '1' | 'u') -> ()
          | _ -> bits_ok := false
      done;
      let prov_s = String.sub src (is_ + 9) (String.length src - is_ - 9) in
      let prov_t = String.sub tgt (it + 9) (String.length tgt - it - 9) in
      !bits_ok && (prov_s = "*" || prov_s = prov_t)
    end
  | _ -> src = tgt

let mem_covers (src : string) (tgt : string) =
  let split s = if s = "" then [] else String.split_on_char ';' s in
  let es = split src and et = split tgt in
  List.length es = List.length et && List.for_all2 mem_entry_covers es et

let event_covers (Interp.Call_event (ns, args_s)) (Interp.Call_event (nt, args_t)) =
  ns = nt
  && List.length args_s = List.length args_t
  && List.for_all2 (fun s t -> Value.covers ~src:s ~tgt:t) args_s args_t

let behavior_covers (s : Interp.Behaviors.behavior) (t : Interp.Behaviors.behavior) =
  match s.Interp.Behaviors.b_outcome with
  | Interp.Ub _ -> true
  | outcome_s -> (
    (* events must be covered pointwise, memory bitwise *)
    List.length s.b_events = List.length t.b_events
    && List.for_all2 event_covers s.b_events t.b_events
    && mem_covers s.b_mem t.b_mem
    &&
    match (outcome_s, t.b_outcome) with
    | Interp.Returned None, Interp.Returned None -> true
    | Interp.Returned (Some vs), Interp.Returned (Some vt) -> Value.covers ~src:vs ~tgt:vt
    | Interp.Timeout, Interp.Timeout -> true (* both diverge within fuel *)
    | _, _ -> false)

(* A source behaviour that times out is treated as possibly-anything for
   prefix reasons?  No: we are conservative — if the source can time out
   we only accept a target timeout with a covered event prefix.  Programs
   in the experiments terminate well within fuel. *)

(* All argument tuples for a function over small integer types.  Poison
   and (mode-dependent) undef are included, as Alive does. *)
let input_space ~(mode : Mode.t) ~max_inputs (fn : Func.t) : Value.t list list option =
  let arg_values (ty : Types.t) : Value.t list option =
    match ty with
    | Types.Int w when w <= 8 ->
      let concs = List.map (fun bv -> Value.of_bitvec bv) (Bitvec.all ~width:w) in
      let extra =
        Value.Scalar Value.Poison
        :: (if mode.Mode.undef_enabled then [ Value.Scalar Value.Undef ] else [])
      in
      Some (concs @ extra)
    | _ -> None
  in
  let rec build = function
    | [] -> Some [ [] ]
    | (_, ty) :: rest -> (
      match (arg_values ty, build rest) with
      | Some vs, Some tails ->
        Some (List.concat_map (fun v -> List.map (fun t -> v :: t) tails) vs)
      | _ -> None)
  in
  match build fn.args with
  | Some tuples when List.length tuples <= max_inputs -> Some tuples
  | Some _ -> None
  | None -> None

(* Does the function allocate?  Only allocating programs are sensitive
   to the memory phase, so everything else is checked under the
   (default) infinite phase alone. *)
let uses_alloc (fn : Func.t) =
  List.exists
    (fun (b : Func.block) ->
      List.exists
        (fun (n : Instr.named) ->
          match n.Instr.ins with
          | Instr.Call (_, callee, _) -> Interp.is_malloc callee
          | _ -> false)
        b.Func.insns)
    fn.Func.blocks

(* The phases a pair is checked under.  Refinement must hold in *every*
   phase, with source and target run under the same phase (Beck et al.,
   arXiv 2404.16143): the finite phases refute rewrites that trade heap
   for stack or otherwise change how allocation failure surfaces.
   [Finite 0] is the degenerate machine where every allocation fails;
   [Finite 16] lets small programs allocate a little before running
   out. *)
let phases_for ~(src : Func.t) ~(tgt : Func.t) : Memory.phase list =
  if uses_alloc src || uses_alloc tgt then
    [ Memory.Infinite; Memory.Finite 0; Memory.Finite 16 ]
  else [ Memory.Infinite ]

let phase_to_string = function
  | Memory.Infinite -> "infinite"
  | Memory.Finite n -> Printf.sprintf "finite(%d)" n

let check ?(mode = Mode.proposed) ?(fuel = 5_000) ?(max_inputs = 5_000) ?(max_runs = 50_000)
    ?module_src ?module_tgt ?inputs ~(src : Func.t) ~(tgt : Func.t) () : verdict =
  Ub_obs.Obs.with_span "refine.enum_check" @@ fun () ->
  if List.map snd src.args <> List.map snd tgt.args then Unknown "argument types differ"
  else begin
    let tuples =
      match inputs with
      | Some ts -> Some ts
      | None -> input_space ~mode ~max_inputs src
    in
    match tuples with
    | None -> Unknown "input space too large or not enumerable"
    | Some tuples -> (
      let phases = phases_for ~src ~tgt in
      try
        let bad =
          List.find_map
            (fun args ->
              List.find_map
                (fun phase ->
                  let behs_src =
                    Interp.Behaviors.enumerate ~mode ~fuel ?module_:module_src ~max_runs
                      ~phase src args
                  in
                  let behs_tgt =
                    Interp.Behaviors.enumerate ~mode ~fuel ?module_:module_tgt ~max_runs
                      ~phase tgt args
                  in
                  match
                    List.find_opt
                      (fun bt -> not (List.exists (fun bs -> behavior_covers bs bt) behs_src))
                      behs_tgt
                  with
                  | Some bt ->
                    Some
                      (Counterexample
                         { args;
                           witness =
                             Printf.sprintf
                               "target behaviour not covered in %s phase: %s (source has %d \
                                behaviour(s): %s)"
                               (phase_to_string phase)
                               (Interp.Behaviors.to_string bt)
                               (List.length behs_src)
                               (String.concat " | "
                                  (List.map Interp.Behaviors.to_string
                                     (Ub_support.Util.take 4 behs_src)));
                         })
                  | None -> None)
                phases)
            tuples
        in
        match bad with Some cex -> cex | None -> Refines
      with Oracle.Exhausted -> Unknown "behaviour space too large")
  end
