(* Refinement checking by exhaustive enumeration: compute the complete
   behaviour sets of source and target on every input (over a small input
   space) and check trace-and-result inclusion.  Slow but fully general —
   loops, memory, calls, vectors, every semantics mode — and therefore
   also the ground truth that the SAT-based checker is property-tested
   against. *)

open Ub_support
open Ub_ir
open Ub_sem

type verdict =
  | Refines
  | Counterexample of { args : Value.t list; witness : string }
  | Unknown of string

(* Does source behaviour [s] cover target behaviour [t]?  UB covers
   everything; a returned value covers by Value.covers; event traces must
   match pointwise with argument covering; memories compare bit-wise with
   poison covering anything and undef covering any defined bit. *)
let mem_covers (src : string) (tgt : string) =
  String.length src = String.length tgt
  && begin
    let ok = ref true in
    String.iteri
      (fun i cs ->
        let ct = tgt.[i] in
        if cs <> ct then
          match (cs, ct) with
          | 'p', _ -> ()
          | 'u', ('0' | '1' | 'u') -> ()
          | _ -> ok := false)
      src;
    !ok
  end

let event_covers (Interp.Call_event (ns, args_s)) (Interp.Call_event (nt, args_t)) =
  ns = nt
  && List.length args_s = List.length args_t
  && List.for_all2 (fun s t -> Value.covers ~src:s ~tgt:t) args_s args_t

let behavior_covers (s : Interp.Behaviors.behavior) (t : Interp.Behaviors.behavior) =
  match s.Interp.Behaviors.b_outcome with
  | Interp.Ub _ -> true
  | outcome_s -> (
    (* events must be covered pointwise, memory bitwise *)
    List.length s.b_events = List.length t.b_events
    && List.for_all2 event_covers s.b_events t.b_events
    && mem_covers s.b_mem t.b_mem
    &&
    match (outcome_s, t.b_outcome) with
    | Interp.Returned None, Interp.Returned None -> true
    | Interp.Returned (Some vs), Interp.Returned (Some vt) -> Value.covers ~src:vs ~tgt:vt
    | Interp.Timeout, Interp.Timeout -> true (* both diverge within fuel *)
    | _, _ -> false)

(* A source behaviour that times out is treated as possibly-anything for
   prefix reasons?  No: we are conservative — if the source can time out
   we only accept a target timeout with a covered event prefix.  Programs
   in the experiments terminate well within fuel. *)

(* All argument tuples for a function over small integer types.  Poison
   and (mode-dependent) undef are included, as Alive does. *)
let input_space ~(mode : Mode.t) ~max_inputs (fn : Func.t) : Value.t list list option =
  let arg_values (ty : Types.t) : Value.t list option =
    match ty with
    | Types.Int w when w <= 8 ->
      let concs = List.map (fun bv -> Value.of_bitvec bv) (Bitvec.all ~width:w) in
      let extra =
        Value.Scalar Value.Poison
        :: (if mode.Mode.undef_enabled then [ Value.Scalar Value.Undef ] else [])
      in
      Some (concs @ extra)
    | _ -> None
  in
  let rec build = function
    | [] -> Some [ [] ]
    | (_, ty) :: rest -> (
      match (arg_values ty, build rest) with
      | Some vs, Some tails ->
        Some (List.concat_map (fun v -> List.map (fun t -> v :: t) tails) vs)
      | _ -> None)
  in
  match build fn.args with
  | Some tuples when List.length tuples <= max_inputs -> Some tuples
  | Some _ -> None
  | None -> None

let check ?(mode = Mode.proposed) ?(fuel = 5_000) ?(max_inputs = 5_000) ?(max_runs = 50_000)
    ?module_src ?module_tgt ?inputs ~(src : Func.t) ~(tgt : Func.t) () : verdict =
  Ub_obs.Obs.with_span "refine.enum_check" @@ fun () ->
  if List.map snd src.args <> List.map snd tgt.args then Unknown "argument types differ"
  else begin
    let tuples =
      match inputs with
      | Some ts -> Some ts
      | None -> input_space ~mode ~max_inputs src
    in
    match tuples with
    | None -> Unknown "input space too large or not enumerable"
    | Some tuples -> (
      try
        let bad =
          List.find_map
            (fun args ->
              let behs_src =
                Interp.Behaviors.enumerate ~mode ~fuel ?module_:module_src ~max_runs src args
              in
              let behs_tgt =
                Interp.Behaviors.enumerate ~mode ~fuel ?module_:module_tgt ~max_runs tgt args
              in
              match
                List.find_opt
                  (fun bt -> not (List.exists (fun bs -> behavior_covers bs bt) behs_src))
                  behs_tgt
              with
              | Some bt ->
                Some
                  (Counterexample
                     { args;
                       witness =
                         Printf.sprintf
                           "target behaviour not covered: %s (source has %d behaviour(s): %s)"
                           (Interp.Behaviors.to_string bt)
                           (List.length behs_src)
                           (String.concat " | "
                              (List.map Interp.Behaviors.to_string
                                 (Ub_support.Util.take 4 behs_src)));
                     })
              | None -> None)
            tuples
        in
        match bad with Some cex -> cex | None -> Refines
      with Oracle.Exhausted -> Unknown "behaviour space too large")
  end
