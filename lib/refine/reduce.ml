(* Counterexample minimization for the refinement checkers: the glue
   between the generic [Ub_shrink.Reduce] engine and this library's
   oracles.  Two predicates are provided:

   - [not_refined]: the combined checker reports a concrete
     counterexample for (src, tgt) under a mode — the opt-fuzz and
     matrix "UNSOUND" cells;
   - [sat_enum_disagree]: the SAT path and the enumeration path return
     contradictory definite verdicts — the differential-testing oracle.

   Both are exception-safe (a raising checker counts as "predicate does
   not hold", so reduction never escapes the failure class it started
   from) and both route every query through the PR 1 verdict cache when
   one is supplied, making large reductions replayable: a re-run of the
   same reduction is pure cache hits.  [minimize_corpus] fans a batch
   of reductions out over the [Ub_exec.Pool] workers. *)

open Ub_ir
open Ub_sem

(* Reduction makes hundreds of oracle calls, so the SAT path runs on a
   deliberately small budget: functions with much nondeterministic
   choice punt to enumeration immediately (the reduction corpora are
   narrow-width, so enumeration is microseconds) instead of paying for
   a universal expansion per candidate.  The budget is part of the
   cache key: a verdict reached under a small universal expansion must
   never be served to a full-budget caller.  [Unknown] is never cached
   either way. *)
let reduce_universal_bits = 6
let reduce_conflicts = 50_000

let check_cached ?cache ?inputs ?max_universal_bits ?max_conflicts (mode : Mode.t) ~src
    ~tgt : Checker.verdict =
  let run () = Checker.check ?inputs ?max_universal_bits ?max_conflicts mode ~src ~tgt in
  match cache with
  | None -> run ()
  | Some c -> (
    let k =
      Verdict_cache.key ?inputs ?max_universal_bits ?max_conflicts ~mode
        ~kind:Verdict_cache.combined_kind ~src ~tgt ()
    in
    match Verdict_cache.find c k with
    | Some v -> v
    | None ->
      let v = run () in
      Verdict_cache.store c k v;
      v)

let not_refined ?cache ?inputs ?(max_universal_bits = reduce_universal_bits)
    ?(max_conflicts = reduce_conflicts) (mode : Mode.t) ~src ~tgt : bool =
  match
    (try check_cached ?cache ?inputs ~max_universal_bits ~max_conflicts mode ~src ~tgt
     with _ -> Checker.Unknown "checker raised")
  with
  | Checker.Counterexample _ -> true
  | Checker.Refines | Checker.Unknown _ -> false

(* The two stand-alone verdicts, separately cached under their own kind
   tags so they never alias the combined checker's entries. *)
let sat_enum_disagree ?cache (mode : Mode.t) ~src ~tgt : bool =
  let get kind f =
    try
      match cache with
      | None -> f ()
      | Some c -> (
        let k = Verdict_cache.key ~mode ~kind ~src ~tgt () in
        match Verdict_cache.find c k with
        | Some v -> v
        | None ->
          let v = f () in
          Verdict_cache.store c k v;
          v)
    with _ -> Checker.Unknown "checker raised"
  in
  let sat = get Verdict_cache.sat_kind (fun () -> Checker.check_sat mode ~src ~tgt) in
  let enum =
    get Verdict_cache.enum_kind (fun () ->
        match Enum_check.check ~mode ~src ~tgt () with
        | Enum_check.Refines -> Checker.Refines
        | Enum_check.Counterexample { args; witness } ->
          Checker.Counterexample { args; witness }
        | Enum_check.Unknown r -> Checker.Unknown r)
  in
  match (sat, enum) with
  | Checker.Refines, Checker.Counterexample _
  | Checker.Counterexample _, Checker.Refines ->
    true
  | _ -> false

type reduction = {
  red_src : Func.t;
  red_tgt : Func.t;
  stats : Ub_shrink.Reduce.stats;
  verdict : Checker.verdict; (* re-check of the minimized pair *)
}

let verdict_class = function
  | Checker.Refines -> `Refines
  | Checker.Counterexample _ -> `Counterexample
  | Checker.Unknown _ -> `Unknown

(* Minimize a failing transform pair under the "still a counterexample"
   oracle.  [None] when the pair is not a counterexample to begin with
   (nothing to reduce — returning the input unchanged would let a
   reducer bug silently "fix" a report).

   [preserve] lists extra modes whose verdict *class* every candidate
   must keep: reducing a mode-specific bug can otherwise drift into a
   different bug class (e.g. an old-undef counterexample degenerating
   into a poison bug that the proposed semantics also rejects), which
   would make the witness lie about which semantics it indicts. *)
let minimize_cex ?cache ?inputs ?max_steps ?(preserve : Mode.t list = [])
    (mode : Mode.t) ~(src : Func.t) ~(tgt : Func.t) : reduction option =
  if not (not_refined ?cache ?inputs mode ~src ~tgt) then None
  else begin
    let class_under m ~src ~tgt =
      verdict_class
        (try
           check_cached ?cache ?inputs ~max_universal_bits:reduce_universal_bits
             ~max_conflicts:reduce_conflicts m ~src ~tgt
         with _ -> Checker.Unknown "checker raised")
    in
    let profile = List.map (fun m -> (m, class_under m ~src ~tgt)) preserve in
    let oracle s t =
      not_refined ?cache ?inputs mode ~src:s ~tgt:t
      && List.for_all (fun (m, cls) -> class_under m ~src:s ~tgt:t = cls) profile
    in
    let (red_src, red_tgt), stats =
      Ub_shrink.Reduce.minimize_pair ?max_steps ~oracle (src, tgt)
    in
    Some
      { red_src;
        red_tgt;
        stats;
        verdict = check_cached ?cache ?inputs mode ~src:red_src ~tgt:red_tgt;
      }
  end

(* Same engine under the differential oracle. *)
let minimize_disagreement ?cache ?max_steps (mode : Mode.t) ~(src : Func.t)
    ~(tgt : Func.t) : reduction option =
  if not (sat_enum_disagree ?cache mode ~src ~tgt) then None
  else begin
    let (red_src, red_tgt), stats =
      Ub_shrink.Reduce.minimize_pair ?max_steps
        ~oracle:(fun s t -> sat_enum_disagree ?cache mode ~src:s ~tgt:t)
        (src, tgt)
    in
    Some
      { red_src;
        red_tgt;
        stats;
        verdict = check_cached ?cache mode ~src:red_src ~tgt:red_tgt;
      }
  end

(* Batch reduction over the worker pool: one task per failing pair.
   Result order matches the input; a crashed or timed-out reduction
   degrades to [None] for its pair only. *)
let minimize_corpus ?(jobs = 1) ?timeout_s ?cache ?max_steps (mode : Mode.t)
    (pairs : (Func.t * Func.t) array) : reduction option array * Ub_exec.Pool.stats =
  let results, pool =
    Ub_exec.Pool.map_stats ~jobs ?timeout_s
      (fun (src, tgt) -> minimize_cex ?cache ?max_steps mode ~src ~tgt)
      pairs
  in
  ( Array.map
      (function Ub_exec.Pool.Done r -> r | Ub_exec.Pool.Crashed _ | Ub_exec.Pool.Timed_out -> None)
      results,
    pool )
