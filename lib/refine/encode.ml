(* SMT encoding of a loop-free, scalar-integer IR function under a
   semantics mode, in the style of Alive's VCGen (the paper validates its
   prototype exactly this way, Section 6).

   Every register is a triple (value bits, poison flag, undef flag).
   Each *use* in an arithmetic context materializes undef through a fresh
   choice; [freeze] consumes one choice per instruction; Branch_nondet
   modes consume one boolean choice per branch that can see poison.
   Whether those choices are universally or existentially quantified is
   the caller's business (source choices are expanded universally,
   target choices are plain existentials) — the encoder just calls the
   provided [choice] callback.

   Functions with loops, memory operations, calls, vectors or pointers
   are not encodable here; the enumeration checker covers those. *)

open Ub_ir
open Ub_sem
open Ub_smt
open Instr

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

type sym = {
  v : Bvterm.t; (* value bits, LSB first *)
  p : Circuit.t; (* is poison *)
  u : Circuit.t; (* is undef (old modes only) *)
}

(* A potential choice site: [cond] is the circuit under which the
   nondeterministic value is actually observable (the undef flag of a
   use, the poison flag of a branched-on condition, ...).  The provider
   returns [None] to decline materialization — the site then keeps the
   plain value.  Putting the decision in the provider (instead of an
   [is_false cond] test at the site) keeps the counting pass and the
   constant-replay passes of the checker in lockstep: replayed constants
   can fold a [cond] to false that the counting pass could not, and a
   site-local test would then skip a slot and desynchronize the
   assignment stream. *)
type choice_fn = { choose : width:int -> cond:Circuit.t -> Bvterm.t option }

type fenc = {
  ub : Circuit.t; (* the execution triggers immediate UB *)
  ret : sym option; (* muxed return value (None for ret void) *)
}

let int_width (ty : Types.t) =
  match ty with
  | Types.Int w -> w
  | _ -> unsupported "non-integer type %s" (Types.to_string ty)

(* Topological order of blocks; raises if the CFG has a cycle. *)
let topo_order (fn : Func.t) : Func.block list =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit (b : Func.block) =
    match Hashtbl.find_opt visited b.label with
    | Some `Done -> ()
    | Some `Active -> unsupported "function @%s has a loop" fn.name
    | None ->
      Hashtbl.replace visited b.label `Active;
      List.iter (fun s -> visit (Func.find_block_exn fn s)) (Instr.successors b.term);
      Hashtbl.replace visited b.label `Done;
      order := b :: !order
  in
  visit (Func.entry fn);
  !order

let encode (ctx : Circuit.ctx) (mode : Mode.t) (choice : choice_fn)
    ~(args : (var * sym) list) (fn : Func.t) : fenc =
  let blocks = topo_order fn in
  let env : (var, sym) Hashtbl.t = Hashtbl.create 32 in
  List.iter (fun (v, s) -> Hashtbl.replace env v s) args;
  let reach : (label, Circuit.t) Hashtbl.t = Hashtbl.create 16 in
  let edges : (label * label, Circuit.t) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.replace reach (Func.entry fn).label Circuit.btrue;
  let ub = ref Circuit.bfalse in
  let rets : (Circuit.t * sym option) list ref = ref [] in
  let add_ub cond reach_b = ub := Circuit.bor ctx !ub (Circuit.band ctx reach_b cond) in

  let sym_of_const (c : Constant.t) : sym =
    match c with
    | Constant.Int bv -> { v = Bvterm.const ctx bv; p = Circuit.bfalse; u = Circuit.bfalse }
    | Constant.Undef ty ->
      let w = int_width ty in
      if mode.Mode.undef_enabled then
        { v = Bvterm.zero ctx ~width:w; p = Circuit.bfalse; u = Circuit.btrue }
      else { v = Bvterm.zero ctx ~width:w; p = Circuit.btrue; u = Circuit.bfalse }
    | Constant.Poison ty ->
      let w = int_width ty in
      { v = Bvterm.zero ctx ~width:w; p = Circuit.btrue; u = Circuit.bfalse }
    | Constant.Null _ | Constant.Vec _ -> unsupported "pointer/vector constant"
  in
  let sym_of_operand (op : operand) : sym =
    match op with
    | Var v -> (
      match Hashtbl.find_opt env v with
      | Some s -> s
      | None -> invalid_arg (Printf.sprintf "Encode: unbound %%%s" v))
    | Const c -> sym_of_const c
  in
  (* One *use* of a sym in an arithmetic context: materialize undef. *)
  let use (s : sym) : Bvterm.t * Circuit.t =
    let w = Bvterm.width s.v in
    match choice.choose ~width:w ~cond:s.u with
    | None -> (s.v, s.p)
    | Some c -> (Bvterm.ite ctx s.u c s.v, s.p)
  in
  let bool_of (s : sym) : Circuit.t * Circuit.t =
    (* materialized i1 use: (bit, poison) *)
    let v, p = use s in
    (v.(0), p)
  in

  let encode_binop op (attrs : attrs) ty a b reach_b : sym =
    let w = int_width ty in
    let va, pa = use a in
    let vb, pb = use b in
    match op with
    | UDiv | SDiv | URem | SRem ->
      let div_zero = Bvterm.is_zero ctx vb in
      let sdiv_ovf =
        match op with
        | SDiv | SRem -> Bvterm.sdiv_overflows ctx va vb
        | _ -> Circuit.bfalse
      in
      let ub_local =
        if mode.Mode.div_by_poison_ub then
          Circuit.bor ctx pb
            (Circuit.band ctx (Circuit.bnot ctx pb)
               (Circuit.bor ctx div_zero (Circuit.band ctx (Circuit.bnot ctx pa) sdiv_ovf)))
        else
          Circuit.band ctx (Circuit.bnot ctx pb)
            (Circuit.bor ctx div_zero (Circuit.band ctx (Circuit.bnot ctx pa) sdiv_ovf))
      in
      add_ub ub_local reach_b;
      let p_res =
        Circuit.bor ctx pa (if mode.Mode.div_by_poison_ub then Circuit.bfalse else pb)
      in
      let exact_p =
        if attrs.exact then
          match op with
          | UDiv -> Circuit.bnot ctx (Bvterm.is_zero ctx (Bvterm.urem ctx va vb))
          | SDiv -> Circuit.bnot ctx (Bvterm.is_zero ctx (Bvterm.srem ctx va vb))
          | _ -> Circuit.bfalse
        else Circuit.bfalse
      in
      let value =
        match op with
        | UDiv -> Bvterm.udiv ctx va vb
        | SDiv -> Bvterm.sdiv ctx va vb
        | URem -> Bvterm.urem ctx va vb
        | SRem -> Bvterm.srem ctx va vb
        | _ -> assert false
      in
      { v = value; p = Circuit.bor ctx p_res exact_p; u = Circuit.bfalse }
    | Shl | LShr | AShr ->
      let oob = Bvterm.shift_oob ctx va vb in
      let value =
        match op with
        | Shl -> Bvterm.shl ctx va vb
        | LShr -> Bvterm.lshr ctx va vb
        | AShr -> Bvterm.ashr ctx va vb
        | _ -> assert false
      in
      let attr_p =
        Circuit.big_or ctx
          [ (if attrs.nsw && op = Shl then Bvterm.shl_nsw_overflows ctx va vb else Circuit.bfalse);
            (if attrs.nuw && op = Shl then Bvterm.shl_nuw_overflows ctx va vb else Circuit.bfalse);
            (if attrs.exact && op = LShr then Bvterm.lshr_exact_violated ctx va vb
             else Circuit.bfalse);
            (if attrs.exact && op = AShr then Bvterm.ashr_exact_violated ctx va vb
             else Circuit.bfalse);
          ]
      in
      let p_in = Circuit.bor ctx pa pb in
      if mode.Mode.undef_enabled then
        (* in-range: normal; out-of-range: undef *)
        { v = value;
          p = Circuit.bor ctx p_in (Circuit.band ctx (Circuit.bnot ctx oob) attr_p);
          u = Circuit.band ctx (Circuit.bnot ctx p_in) oob;
        }
      else
        { v = value;
          p = Circuit.big_or ctx [ p_in; oob; attr_p ];
          u = Circuit.bfalse;
        }
    | Add | Sub | Mul ->
      let value, ovf_nsw, ovf_nuw =
        match op with
        | Add ->
          (Bvterm.add ctx va vb, Bvterm.add_nsw_overflows ctx va vb,
           Bvterm.add_nuw_overflows ctx va vb)
        | Sub ->
          (Bvterm.sub ctx va vb, Bvterm.sub_nsw_overflows ctx va vb,
           Bvterm.sub_nuw_overflows ctx va vb)
        | Mul ->
          (Bvterm.mul ctx va vb, Bvterm.mul_nsw_overflows ctx va vb,
           Bvterm.mul_nuw_overflows ctx va vb)
        | _ -> assert false
      in
      let attr_p =
        Circuit.bor ctx
          (if attrs.nsw then ovf_nsw else Circuit.bfalse)
          (if attrs.nuw then ovf_nuw else Circuit.bfalse)
      in
      ignore w;
      { v = value; p = Circuit.big_or ctx [ pa; pb; attr_p ]; u = Circuit.bfalse }
    | And | Or | Xor ->
      let value =
        match op with
        | And -> Bvterm.logand ctx va vb
        | Or -> Bvterm.logor ctx va vb
        | Xor -> Bvterm.logxor ctx va vb
        | _ -> assert false
      in
      { v = value; p = Circuit.bor ctx pa pb; u = Circuit.bfalse }
  in

  let encode_icmp pred a b : sym =
    let va, pa = use a in
    let vb, pb = use b in
    let bit =
      match pred with
      | Eq -> Bvterm.eq ctx va vb
      | Ne -> Bvterm.ne ctx va vb
      | Ugt -> Bvterm.ugt ctx va vb
      | Uge -> Bvterm.uge ctx va vb
      | Ult -> Bvterm.ult ctx va vb
      | Ule -> Bvterm.ule ctx va vb
      | Sgt -> Bvterm.sgt ctx va vb
      | Sge -> Bvterm.sge ctx va vb
      | Slt -> Bvterm.slt ctx va vb
      | Sle -> Bvterm.sle ctx va vb
    in
    { v = [| bit |]; p = Circuit.bor ctx pa pb; u = Circuit.bfalse }
  in

  let encode_select c a b reach_b : sym =
    let sc = sym_of_operand c and sa = sym_of_operand a and sb = sym_of_operand b in
    let cbit, cp = bool_of sc in
    let mux cond =
      { v = Bvterm.ite ctx cond sa.v sb.v;
        p = Circuit.bite ctx cond sa.p sb.p;
        u = Circuit.bite ctx cond sa.u sb.u;
      }
    in
    match mode.Mode.select_sem with
    | Mode.Select_conditional ->
      let m = mux cbit in
      { m with p = Circuit.bor ctx cp m.p; u = Circuit.band ctx (Circuit.bnot ctx cp) m.u }
    | Mode.Select_nondet_cond ->
      let nd =
        match choice.choose ~width:1 ~cond:cp with
        | None -> cbit
        | Some ch -> Circuit.bite ctx cp ch.(0) cbit
      in
      mux nd
    | Mode.Select_ub_cond ->
      add_ub cp reach_b;
      mux cbit
    | Mode.Select_arith ->
      let m = mux cbit in
      { v = m.v;
        p = Circuit.big_or ctx [ cp; sa.p; sb.p ];
        u = Circuit.band ctx (Circuit.bnot ctx (Circuit.big_or ctx [ cp; sa.p; sb.p ])) m.u;
      }
  in

  (* walk blocks in topological order *)
  List.iter
    (fun (b : Func.block) ->
      let reach_b =
        match Hashtbl.find_opt reach b.label with
        | Some r -> r
        | None -> Circuit.bfalse (* unreachable from entry *)
      in
      List.iter
        (fun { def; ins } ->
          let bind s = match def with Some d -> Hashtbl.replace env d s | None -> () in
          match ins with
          | Binop (op, attrs, ty, a, b') ->
            bind (encode_binop op attrs ty (sym_of_operand a) (sym_of_operand b') reach_b)
          | Icmp (pred, _, a, b') ->
            bind (encode_icmp pred (sym_of_operand a) (sym_of_operand b'))
          | Select (c, _, a, b') -> bind (encode_select c a b' reach_b)
          | Conv ((Ptrtoint | Inttoptr), _, _, _) ->
            (* pointer/integer casts need the memory model; the
               enumeration checker handles them *)
            unsupported "pointer/integer cast"
          | Conv (op, from, x, to_) ->
            let s = sym_of_operand x in
            let vx, px = use s in
            let tw = int_width to_ in
            ignore (int_width from);
            let v =
              match op with
              | Zext -> Bvterm.zext ctx vx ~width:tw
              | Sext -> Bvterm.sext ctx vx ~width:tw
              | Trunc -> Bvterm.trunc ctx vx ~width:tw
              | Ptrtoint | Inttoptr -> assert false
            in
            bind { v; p = px; u = Circuit.bfalse }
          | Bitcast (from, x, to_) ->
            (* int->int bitcast of same width is the identity *)
            let wf = int_width from and wt = int_width to_ in
            if wf <> wt then unsupported "bitcast between different widths";
            bind (sym_of_operand x)
          | Freeze (ty, x) ->
            let s = sym_of_operand x in
            let w = int_width ty in
            let bad = Circuit.bor ctx s.p s.u in
            (match choice.choose ~width:w ~cond:bad with
            | None -> bind s
            | Some c ->
              bind { v = Bvterm.ite ctx bad c s.v; p = Circuit.bfalse; u = Circuit.bfalse })
          | Phi (ty, incoming) ->
            let w = int_width ty in
            let init =
              { v = Bvterm.zero ctx ~width:w; p = Circuit.btrue; u = Circuit.bfalse }
            in
            let s =
              List.fold_left
                (fun acc (op, l) ->
                  (* An incoming with no materialized edge can never be
                     taken — the predecessor is unreachable (e.g. left
                     behind by constant-branch folding) or not a real
                     predecessor.  Skip it *without* touching the
                     operand: its def may live in an unvisited block. *)
                  match Hashtbl.find_opt edges (l, b.label) with
                  | None -> acc
                  | Some cond ->
                    let s = sym_of_operand op in
                    { v = Bvterm.ite ctx cond s.v acc.v;
                      p = Circuit.bite ctx cond s.p acc.p;
                      u = Circuit.bite ctx cond s.u acc.u;
                    })
                init incoming
            in
            bind s
          | Gep _ -> unsupported "getelementptr"
          | Load _ | Store _ -> unsupported "memory operation"
          | Call _ -> unsupported "call"
          | Extractelement _ | Insertelement _ -> unsupported "vector operation")
        b.insns;
      (* terminator *)
      let add_edge src dst cond =
        let cond = Circuit.band ctx reach_b cond in
        let prev =
          match Hashtbl.find_opt edges (src, dst) with Some e -> e | None -> Circuit.bfalse
        in
        Hashtbl.replace edges (src, dst) (Circuit.bor ctx prev cond);
        let r = match Hashtbl.find_opt reach dst with Some r -> r | None -> Circuit.bfalse in
        Hashtbl.replace reach dst (Circuit.bor ctx r cond)
      in
      match b.term with
      | Ret (_, x) -> rets := (reach_b, Some (sym_of_operand x)) :: !rets
      | Ret_void -> rets := (reach_b, None) :: !rets
      | Br l -> add_edge b.label l Circuit.btrue
      | Cond_br (c, t, e) ->
        let sc = sym_of_operand c in
        let cbit, cp = bool_of sc in
        let dir =
          match mode.Mode.branch_on_poison with
          | Mode.Branch_ub ->
            add_ub cp reach_b;
            cbit
          | Mode.Branch_nondet -> (
            match choice.choose ~width:1 ~cond:cp with
            | None -> cbit
            | Some ch -> Circuit.bite ctx cp ch.(0) cbit)
        in
        add_edge b.label t dir;
        add_edge b.label e (Circuit.bnot ctx dir)
      | Unreachable -> add_ub Circuit.btrue reach_b)
    blocks;
  (* mux the return value over returning paths *)
  let ret =
    match !rets with
    | [] -> None
    | (_, None) :: _ -> None
    | rs ->
      let some =
        List.filter_map (fun (c, s) -> match s with Some s -> Some (c, s) | None -> None) rs
      in
      (match some with
      | [] -> None
      | (_, s0) :: _ ->
        let w = Bvterm.width s0.v in
        let init = { v = Bvterm.zero ctx ~width:w; p = Circuit.btrue; u = Circuit.bfalse } in
        Some
          (List.fold_left
             (fun acc (c, s) ->
               { v = Bvterm.ite ctx c s.v acc.v;
                 p = Circuit.bite ctx c s.p acc.p;
                 u = Circuit.bite ctx c s.u acc.u;
               })
             init some))
  in
  { ub = !ub; ret }
