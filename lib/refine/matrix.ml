(* The Section 3 soundness matrix: every problematic transformation the
   paper discusses, as a (source, target) IR pair, checked for refinement
   under every candidate semantics.  The paper's central qualitative
   claim falls out: NO single old semantics validates all of them, while
   the proposed semantics (+ the freeze-based fixes) validates the fixed
   set.

   Each entry records the paper's expectation per mode so the test suite
   can assert the whole matrix. *)

open Ub_ir

type expectation = Sound | Unsound | Either (* Either: not claimed by the paper *)

type entry = {
  id : string;
  section : string; (* where in the paper *)
  src : string; (* IR text *)
  tgt : string;
  inputs : Ub_sem.Value.t list list option; (* explicit inputs for enum-only entries *)
  expect : (string * expectation) list; (* per mode name *)
  note : string;
}

let f = Parser.parse_func_string

(* -------------------- the transformations -------------------------- *)

let mul2_to_add =
  { id = "mul2-to-add";
    section = "3.1";
    src = {|define i2 @f(i2 %x) {
e:
  %y = mul i2 %x, 2
  ret i2 %y
}|};
    tgt = {|define i2 @f(i2 %x) {
e:
  %y = add i2 %x, %x
  ret i2 %y
}|};
    inputs = None;
    expect =
      [ ("old-unswitch", Unsound); ("old-gvn", Unsound); ("old-langref", Unsound);
        ("old-simplifycfg", Unsound); ("proposed", Sound);
      ];
    note = "duplicating an SSA use of a possibly-undef value widens the result set";
  }

(* Section 3.2: hoisting 1/k above the loop guarded by k != 0.  With
   undef, the guard can pass while the hoisted division divides by a
   different materialization of k. *)
let div_hoist =
  { id = "div-hoist-guarded";
    section = "3.2";
    src = {|define i2 @f(i2 %k, i1 %c) {
e:
  %g = icmp ne i2 %k, 0
  br i1 %g, label %guarded, label %out
guarded:
  br i1 %c, label %use, label %out
use:
  %t = udiv i2 1, %k
  ret i2 %t
out:
  ret i2 0
}|};
    tgt = {|define i2 @f(i2 %k, i1 %c) {
e:
  %g = icmp ne i2 %k, 0
  br i1 %g, label %guarded, label %out
guarded:
  %t = udiv i2 1, %k
  br i1 %c, label %use, label %out
use:
  ret i2 %t
out:
  ret i2 0
}|};
    inputs = None;
    expect =
      [ ("old-unswitch", Unsound); ("old-langref", Unsound); ("old-simplifycfg", Unsound);
        (* every old mode has undef, and the guard and the hoisted use
           materialize it differently, so all of them are unsound; only
           the undef-free proposed semantics validates the hoist *)
        ("old-gvn", Unsound); ("proposed", Sound);
      ];
    note = "paper 3.2: unsound whenever undef exists (guard and use materialize differently)";
  }

(* Section 3.3, loop unswitching without freeze, distilled to its core:
   hoisting a branch to a place the original never branched.  If the loop
   never executes (c=false) and c2 is poison, the target branches on
   poison. *)
let unswitch_raw =
  { id = "loop-unswitch-raw";
    section = "3.3/5.1";
    src = {|define i2 @f(i1 %c, i1 %c2) {
e:
  br i1 %c, label %body, label %exit
body:
  br i1 %c2, label %t, label %u
t:
  ret i2 1
u:
  ret i2 2
exit:
  ret i2 0
}|};
    tgt = {|define i2 @f(i1 %c, i1 %c2) {
e:
  br i1 %c2, label %vt, label %vf
vt:
  br i1 %c, label %t, label %exit
vf:
  br i1 %c, label %u, label %exit
t:
  ret i2 1
u:
  ret i2 2
exit:
  ret i2 0
}|};
    inputs = None;
    expect =
      [ ("old-unswitch", Sound); ("old-langref", Sound); ("old-simplifycfg", Sound);
        ("old-gvn", Unsound); ("proposed", Unsound);
      ];
    note = "branch-on-poison=UB modes reject hoisting the branch; nondet modes accept";
  }

let unswitch_frozen =
  { unswitch_raw with
    id = "loop-unswitch-freeze";
    tgt = {|define i2 @f(i1 %c, i1 %c2) {
e:
  %fc2 = freeze i1 %c2
  br i1 %fc2, label %vt, label %vf
vt:
  br i1 %c, label %t, label %exit
vf:
  br i1 %c, label %u, label %exit
t:
  ret i2 1
u:
  ret i2 2
exit:
  ret i2 0
}|};
    expect =
      [ ("old-unswitch", Sound); ("old-langref", Sound); ("old-simplifycfg", Sound);
        ("old-gvn", Sound); ("proposed", Sound);
      ];
    note = "the Section 5.1 fix: freeze the hoisted condition";
  }

(* Section 3.3: GVN replacing w by y under t==y.  The call makes the
   difference observable. *)
let gvn_pred =
  { id = "gvn-predicate";
    section = "3.3";
    src = {|define void @f(i2 %x, i2 %y) {
e:
  %t = add i2 %x, 1
  %cmp = icmp eq i2 %t, %y
  br i1 %cmp, label %then, label %out
then:
  %w = add i2 %x, 1
  call void @foo(i2 %w)
  br label %out
out:
  ret void
}|};
    tgt = {|define void @f(i2 %x, i2 %y) {
e:
  %t = add i2 %x, 1
  %cmp = icmp eq i2 %t, %y
  br i1 %cmp, label %then, label %out
then:
  call void @foo(i2 %y)
  br label %out
out:
  ret void
}|};
    inputs = None;
    expect =
      [ ("old-unswitch", Unsound); ("old-langref", Unsound); ("old-simplifycfg", Unsound);
        (* branch-on-poison=UB is necessary but NOT sufficient while
           undef exists: t==y can hold for one materialization of an
           undef y while foo(y) observes another.  Only the proposed
           (undef-free) semantics validates GVN fully. *)
        ("old-gvn", Unsound); ("proposed", Sound);
      ];
    note = "needs branch-on-poison=UB AND no undef (per-use undef breaks substitution)";
  }

(* Section 3.4: SimplifyCFG phi -> select. *)
let phi_to_select =
  { id = "phi-to-select";
    section = "3.4";
    src = {|define i2 @f(i1 %c, i2 %a, i2 %b) {
e:
  br i1 %c, label %t, label %u
t:
  br label %m
u:
  br label %m
m:
  %x = phi i2 [ %a, %t ], [ %b, %u ]
  ret i2 %x
}|};
    tgt = {|define i2 @f(i1 %c, i2 %a, i2 %b) {
e:
  %x = select i1 %c, i2 %a, i2 %b
  ret i2 %x
}|};
    inputs = None;
    expect =
      [ (* Select_nondet_cond matches Branch_nondet; Select_ub_cond
           matches Branch_ub; Select_conditional returns poison where the
           branch was nondet — poison is NOT covered by a concrete
           source result, so old-simplifycfg is unsound here; arith makes
           select poison on poison arms too: also unsound vs nondet br *)
        ("old-unswitch", Sound); ("old-gvn", Sound); ("old-simplifycfg", Unsound);
        ("old-langref", Unsound); ("proposed", Sound);
      ];
    note = "needs select-on-poison to be no stronger than branch-on-poison";
  }

(* the reverse: select -> branch (Section 3.4 / 5.2) *)
let select_to_branch =
  { id = "select-to-branch";
    section = "3.4/5.2";
    src = {|define i2 @f(i1 %c, i2 %a, i2 %b) {
e:
  %x = select i1 %c, i2 %a, i2 %b
  ret i2 %x
}|};
    tgt = {|define i2 @f(i1 %c, i2 %a, i2 %b) {
e:
  br i1 %c, label %t, label %u
t:
  br label %m
u:
  br label %m
m:
  %x = phi i2 [ %a, %t ], [ %b, %u ]
  ret i2 %x
}|};
    inputs = None;
    expect =
      [ (* with Select_arith or Select_conditional the select source is
           at least as poisonous as the branch target, so all old modes
           accept this direction; the proposed mode rejects it because
           branch-on-poison is UB while select-on-poison is only poison *)
        ("old-unswitch", Sound); ("old-gvn", Sound); ("old-simplifycfg", Sound);
        ("old-langref", Sound); ("proposed", Unsound);
      ];
    note = "branch on poison must be no stronger than select on poison";
  }

let select_to_branch_frozen =
  { select_to_branch with
    id = "select-to-branch-freeze";
    tgt = {|define i2 @f(i1 %c, i2 %a, i2 %b) {
e:
  %fc = freeze i1 %c
  br i1 %fc, label %t, label %u
t:
  br label %m
u:
  br label %m
m:
  %x = phi i2 [ %a, %t ], [ %b, %u ]
  ret i2 %x
}|};
    expect =
      [ ("old-unswitch", Sound); ("old-gvn", Sound); ("old-simplifycfg", Sound);
        ("old-langref", Either); ("proposed", Sound);
      ];
    note = "the Section 5.2 reverse predication fix: freeze the condition";
  }

(* select c, true, x -> or c, x *)
let select_to_or =
  { id = "select-to-or";
    section = "3.4";
    src = {|define i1 @f(i1 %c, i1 %x) {
e:
  %r = select i1 %c, i1 true, i1 %x
  ret i1 %r
}|};
    tgt = {|define i1 @f(i1 %c, i1 %x) {
e:
  %r = or i1 %c, %x
  ret i1 %r
}|};
    inputs = None;
    expect =
      [ ("old-langref", Sound); (* select-as-arithmetic *)
        ("old-unswitch", Unsound); ("old-gvn", Unsound); ("old-simplifycfg", Unsound);
        ("proposed", Unsound);
      ];
    note = "sound only when select is poison if ANY operand is poison";
  }

(* The paper's prose says 'a safe version requires freezing %c'; the
   actually-safe version freezes the non-selected arm %x.  Both variants
   are in the matrix so the checker documents the difference. *)
let select_to_or_freeze_c =
  { select_to_or with
    id = "select-to-or-freeze-c";
    section = "6 (limitations)";
    tgt = {|define i1 @f(i1 %c, i1 %x) {
e:
  %fc = freeze i1 %c
  %r = or i1 %fc, %x
  ret i1 %r
}|};
    expect = [ ("proposed", Unsound) ];
    note = "freezing %c does NOT fix select->or: x=poison, c=true still breaks";
  }

let select_to_or_freeze_x =
  { select_to_or with
    id = "select-to-or-freeze-x";
    section = "6 (limitations)";
    tgt = {|define i1 @f(i1 %c, i1 %x) {
e:
  %fx = freeze i1 %x
  %r = or i1 %c, %fx
  ret i1 %r
}|};
    expect = [ ("proposed", Sound) ];
    note = "freezing the non-selected arm is the sound fix";
  }

(* select c, x, undef -> x (PR31633) *)
let select_undef_arm =
  { id = "select-undef-arm";
    section = "3.4";
    src = {|define i2 @f(i1 %c, i2 %x) {
e:
  %v = select i1 %c, i2 %x, i2 undef
  ret i2 %v
}|};
    tgt = {|define i2 @f(i1 %c, i2 %x) {
e:
  ret i2 %x
}|};
    inputs = None;
    expect =
      [ ("old-unswitch", Unsound); ("old-gvn", Unsound); ("old-simplifycfg", Unsound);
        (* under Select_arith a poison x already poisons the select, so
           the fold is (vacuously) sound in the LangRef reading *)
        ("old-langref", Sound);
        (* in the proposed semantics undef IS poison, so the select arm
           is poison and forwarding x refines it *)
        ("proposed", Sound);
      ];
    note = "x may be poison, and poison is stronger than undef (PR31633)";
  }

(* freeze algebra *)
let freeze_freeze =
  { id = "freeze-of-freeze";
    section = "6";
    src = {|define i2 @f(i2 %x) {
e:
  %a = freeze i2 %x
  %b = freeze i2 %a
  ret i2 %b
}|};
    tgt = {|define i2 @f(i2 %x) {
e:
  %a = freeze i2 %x
  ret i2 %a
}|};
    inputs = None;
    expect = [ ("proposed", Sound); ("old-unswitch", Sound); ("old-gvn", Sound) ];
    note = "freeze(freeze x) = freeze x";
  }

let freeze_dup =
  { id = "freeze-duplication";
    section = "5.5";
    src = {|define void @f(i2 %x, i1 %c) {
e:
  %y = freeze i2 %x
  br label %h
h:
  call void @use(i2 %y)
  call void @use(i2 %y)
  ret void
}|};
    tgt = {|define void @f(i2 %x, i1 %c) {
e:
  br label %h
h:
  %y1 = freeze i2 %x
  call void @use(i2 %y1)
  %y2 = freeze i2 %x
  call void @use(i2 %y2)
  ret void
}|};
    inputs =
      Some [ [ Ub_sem.Value.Scalar Ub_sem.Value.Poison; Ub_sem.Value.bool true ] ];
    expect = [ ("proposed", Unsound) ];
    note = "Pitfall 1: each freeze may choose differently; the trace can diverge";
  }

(* Section 2.4 / Figure 3: induction variable widening, distilled.
   sext(iv) vs widened 64-bit iv after possible nsw overflow. *)
let widen_nsw =
  { id = "indvar-widen-nsw";
    section = "2.4";
    src = {|define i4 @f(i2 %i) {
e:
  %i1 = add nsw i2 %i, 1
  %w = sext i2 %i1 to i4
  ret i4 %w
}|};
    tgt = {|define i4 @f(i2 %i) {
e:
  %iw = sext i2 %i to i4
  %w = add nsw i4 %iw, 1
  ret i4 %w
}|};
    inputs = None;
    expect =
      [ ("proposed", Sound); ("old-gvn", Sound); ("old-unswitch", Sound) ];
    note = "nsw=poison justifies widening: on overflow both sides are poison";
  }

let widen_wrap =
  { widen_nsw with
    id = "indvar-widen-wrapping";
    src = {|define i4 @f(i2 %i) {
e:
  %i1 = add i2 %i, 1
  %w = sext i2 %i1 to i4
  ret i4 %w
}|};
    expect = [ ("proposed", Unsound); ("old-unswitch", Unsound) ];
    note = "without nsw the narrow add wraps and the widened one does not";
  }

(* Section 2.4: a+b>a -> b>0 *)
let cmp_nsw =
  { id = "icmp-add-nsw";
    section = "2.4";
    src = {|define i1 @f(i2 %a, i2 %b) {
e:
  %add = add nsw i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}|};
    tgt = {|define i1 @f(i2 %a, i2 %b) {
e:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}|};
    inputs = None;
    expect = [ ("proposed", Sound); ("old-unswitch", Sound); ("old-gvn", Sound) ];
    note = "justified by nsw returning poison";
  }

let cmp_wrap =
  { cmp_nsw with
    id = "icmp-add-wrapping";
    src = {|define i1 @f(i2 %a, i2 %b) {
e:
  %add = add i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}|};
    expect = [ ("proposed", Unsound); ("old-unswitch", Unsound) ];
    note = "wrapping add does not justify the rewrite";
  }

(* Reassociation dropping vs keeping nsw (Section 10.2). *)
let reassoc_drop =
  { id = "reassociate-drop-nsw";
    section = "10.2";
    src = {|define i2 @f(i2 %x) {
e:
  %a = add nsw i2 %x, 3
  %b = add nsw i2 %a, -3
  ret i2 %b
}|};
    tgt = {|define i2 @f(i2 %x) {
e:
  ret i2 %x
}|};
    inputs = None;
    expect = [ ("proposed", Sound) ];
    note = "folding (x+3)-3 to x after DROPPING nsw is sound";
  }

let reassoc_keep =
  { id = "reassociate-keep-nsw";
    section = "10.2";
    src = {|define i2 @f(i2 %x, i2 %y) {
e:
  %a = add i2 %x, %y
  ret i2 %a
}|};
    tgt = {|define i2 @f(i2 %x, i2 %y) {
e:
  %a = add nsw i2 %x, %y
  ret i2 %a
}|};
    inputs = None;
    expect = [ ("proposed", Unsound); ("old-unswitch", Unsound) ];
    note = "ADDING (keeping stale) nsw manufactures poison: the reassociation bug";
  }

let all_entries =
  [ mul2_to_add; div_hoist; unswitch_raw; unswitch_frozen; gvn_pred; phi_to_select;
    select_to_branch; select_to_branch_frozen; select_to_or; select_to_or_freeze_c;
    select_to_or_freeze_x; select_undef_arm; freeze_freeze; freeze_dup; widen_nsw;
    widen_wrap; cmp_nsw; cmp_wrap; reassoc_drop; reassoc_keep;
  ]

(* -------------------- running the matrix --------------------------- *)

type cell = {
  mode_name : string;
  verdict : Checker.verdict;
  expected : expectation option;
  agrees : bool option; (* None when expected = Either or verdict unknown *)
}

let run_entry ?(modes = Ub_sem.Mode.all) (e : entry) : (entry * cell list) =
  let src = f e.src and tgt = f e.tgt in
  let cells =
    List.map
      (fun (mode : Ub_sem.Mode.t) ->
        let verdict = Checker.check ?inputs:e.inputs mode ~src ~tgt in
        let expected = List.assoc_opt mode.Ub_sem.Mode.name e.expect in
        let agrees =
          match (verdict, expected) with
          | _, (None | Some Either) -> None
          | Checker.Refines, Some Sound -> Some true
          | Checker.Counterexample _, Some Unsound -> Some true
          | Checker.Refines, Some Unsound | Checker.Counterexample _, Some Sound ->
            Some false
          | Checker.Unknown _, _ -> None
        in
        { mode_name = mode.Ub_sem.Mode.name; verdict; expected; agrees })
      modes
  in
  (e, cells)

let run_all ?modes () = List.map (run_entry ?modes) all_entries

(* ------------------ parallel / cached execution -------------------- *)

(* The same matrix, but the (entry x mode) cells go through the
   [Ub_exec.Pool] worker pool, with verdicts optionally memoized in a
   persistent [Ub_exec.Cache].  Cell order in the output is identical to
   [run_all] regardless of [jobs], scheduling, or cache state; a worker
   crash or per-task timeout degrades only the affected cell to
   [Checker.Unknown]. *)

type exec_report = {
  results : (entry * cell list) list;
  pool : Ub_exec.Pool.stats;
  cache_hits : int;
  cache_misses : int;
}

let cell_of_verdict (e : entry) (mode : Ub_sem.Mode.t) (verdict : Checker.verdict) : cell =
  let expected = List.assoc_opt mode.Ub_sem.Mode.name e.expect in
  let agrees =
    match (verdict, expected) with
    | _, (None | Some Either) -> None
    | Checker.Refines, Some Sound -> Some true
    | Checker.Counterexample _, Some Unsound -> Some true
    | Checker.Refines, Some Unsound | Checker.Counterexample _, Some Sound -> Some false
    | Checker.Unknown _, _ -> None
  in
  { mode_name = mode.Ub_sem.Mode.name; verdict; expected; agrees }

let run_all_exec ?(modes = Ub_sem.Mode.all) ?(jobs = 1) ?timeout_s
    ?(cache : Ub_exec.Cache.t option) () : exec_report =
  let hits0 = match cache with Some c -> Ub_exec.Cache.hits c | None -> 0 in
  let misses0 = match cache with Some c -> Ub_exec.Cache.misses c | None -> 0 in
  (* one task per (entry, mode) cell, entry-major like [run_all] *)
  let tasks =
    List.concat_map
      (fun (e : entry) ->
        let src = f e.src and tgt = f e.tgt in
        List.map (fun mode -> (e, src, tgt, mode)) modes)
      all_entries
    |> Array.of_list
  in
  (* consult the cache in the parent so cached cells never hit the pool *)
  let cached =
    Array.map
      (fun (e, src, tgt, mode) ->
        match cache with
        | None -> None
        | Some c ->
          let k = Verdict_cache.key ?inputs:e.inputs ~mode ~kind:Verdict_cache.combined_kind ~src ~tgt () in
          Verdict_cache.find c k)
      tasks
  in
  let fresh_idx =
    Array.to_list (Array.mapi (fun i c -> (i, c)) cached)
    |> List.filter_map (fun (i, c) -> if c = None then Some i else None)
    |> Array.of_list
  in
  let fresh_results, pool_stats =
    Ub_exec.Pool.map_stats ~jobs ?timeout_s
      (fun i ->
        let e, src, tgt, mode = tasks.(i) in
        Checker.check ?inputs:e.inputs mode ~src ~tgt)
      fresh_idx
  in
  let verdicts = Array.make (Array.length tasks) (Checker.Unknown "pending") in
  Array.iteri (fun i c -> match c with Some v -> verdicts.(i) <- v | None -> ()) cached;
  Array.iteri
    (fun j r ->
      let i = fresh_idx.(j) in
      let v =
        match r with
        | Ub_exec.Pool.Done v -> v
        | Ub_exec.Pool.Crashed msg -> Checker.Unknown ("worker crashed: " ^ msg)
        | Ub_exec.Pool.Timed_out -> Checker.Unknown "task timed out"
      in
      verdicts.(i) <- v;
      match cache with
      | Some c ->
        let e, src, tgt, mode = tasks.(i) in
        let k = Verdict_cache.key ?inputs:e.inputs ~mode ~kind:Verdict_cache.combined_kind ~src ~tgt () in
        Verdict_cache.store c k v
      | None -> ())
    fresh_results;
  (* reassemble in entry-major order *)
  let n_modes = List.length modes in
  let results =
    List.mapi
      (fun ei (e : entry) ->
        let cells =
          List.mapi
            (fun mi mode -> cell_of_verdict e mode verdicts.((ei * n_modes) + mi))
            modes
        in
        (e, cells))
      all_entries
  in
  { results;
    pool = pool_stats;
    cache_hits = (match cache with Some c -> Ub_exec.Cache.hits c - hits0 | None -> 0);
    cache_misses = (match cache with Some c -> Ub_exec.Cache.misses c - misses0 | None -> 0);
  }
