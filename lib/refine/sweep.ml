(* Bulk refinement checking: run an array of (source, target) pairs
   through the worker pool under one semantics mode, memoizing verdicts
   in the persistent cache.  This is the engine behind the opt-fuzz
   validation sweep (Section 6): the corpus is embarrassingly parallel
   and largely stable across runs, so re-running an enlarged sweep only
   pays for the new pairs.

   Verdict order matches the input array regardless of [jobs] or cache
   state; a crashed or timed-out worker task degrades only its own pair
   to [Checker.Unknown]. *)

open Ub_ir
open Ub_sem

type kind = Combined | Sat_only | Enum_only

let kind_tag = function
  | Combined -> Verdict_cache.combined_kind
  | Sat_only -> Verdict_cache.sat_kind
  | Enum_only -> Verdict_cache.enum_kind

let check_one ?session (kind : kind) (mode : Mode.t) ~(src : Func.t) ~(tgt : Func.t) :
    Checker.verdict =
  match kind with
  | Combined -> Checker.check ?session mode ~src ~tgt
  | Sat_only -> Checker.check_sat ?session mode ~src ~tgt
  | Enum_only -> (
    match Enum_check.check ~mode ~src ~tgt () with
    | Enum_check.Refines -> Checker.Refines
    | Enum_check.Counterexample { args; witness } -> Checker.Counterexample { args; witness }
    | Enum_check.Unknown r -> Checker.Unknown r)

type report = {
  verdicts : Checker.verdict array;
  pool : Ub_exec.Pool.stats;
  cache_hits : int;
  cache_misses : int;
}

let check_pairs ?(kind = Combined) ?(jobs = 1) ?timeout_s ?session
    ?(cache : Ub_exec.Cache.t option) (mode : Mode.t) (pairs : (Func.t * Func.t) array) :
    report =
  (* a session is single-solver mutable state: it can only serve the
     in-process pool.  With forked workers each child would warm a copy
     of the session and throw it away — run those scratch instead. *)
  let session = if jobs <= 1 then session else None in
  let hits0 = match cache with Some c -> Ub_exec.Cache.hits c | None -> 0 in
  let misses0 = match cache with Some c -> Ub_exec.Cache.misses c | None -> 0 in
  let key_of (src, tgt) =
    Verdict_cache.key ~mode ~kind:(kind_tag kind) ~src ~tgt ()
  in
  let cached =
    Array.map
      (fun pair ->
        match cache with None -> None | Some c -> Verdict_cache.find c (key_of pair))
      pairs
  in
  let fresh_idx =
    Array.to_list (Array.mapi (fun i c -> (i, c)) cached)
    |> List.filter_map (fun (i, c) -> if c = None then Some i else None)
    |> Array.of_list
  in
  let fresh, pool =
    Ub_exec.Pool.map_stats ~jobs ?timeout_s
      (fun i ->
        let src, tgt = pairs.(i) in
        check_one ?session kind mode ~src ~tgt)
      fresh_idx
  in
  let verdicts = Array.make (Array.length pairs) (Checker.Unknown "pending") in
  Array.iteri (fun i c -> match c with Some v -> verdicts.(i) <- v | None -> ()) cached;
  Array.iteri
    (fun j r ->
      let i = fresh_idx.(j) in
      let v =
        match r with
        | Ub_exec.Pool.Done v -> v
        | Ub_exec.Pool.Crashed msg -> Checker.Unknown ("worker crashed: " ^ msg)
        | Ub_exec.Pool.Timed_out -> Checker.Unknown "task timed out"
      in
      verdicts.(i) <- v;
      match cache with Some c -> Verdict_cache.store c (key_of pairs.(i)) v | None -> ())
    fresh;
  { verdicts;
    pool;
    cache_hits = (match cache with Some c -> Ub_exec.Cache.hits c - hits0 | None -> 0);
    cache_misses = (match cache with Some c -> Ub_exec.Cache.misses c - misses0 | None -> 0);
  }
