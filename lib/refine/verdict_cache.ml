(* Typed adapter between [Checker.verdict] and the raw-string
   [Ub_exec.Cache].  The cache key is the canonical hash of

     (printed source fn, printed target fn, semantics mode, checker kind,
      SAT budget [, explicit input tuples])

   where the functions are printed from their parsed form, so textual
   noise in the original IR (whitespace, comment placement) cannot split
   cache entries for the same function.  The SAT budget is part of the
   key because a verdict is only as strong as the search that produced
   it: the shrink oracles deliberately run with tiny universal-expansion
   and conflict budgets, and serving one of their entries to a
   full-budget caller (or vice versa) would silently change what a
   "Refines" means.  [Unknown] verdicts are never cached: they depend on
   resource budgets, and a later run with a bigger budget (or a fixed
   encoder) should get the chance to do better. *)

open Ub_ir
open Ub_sem

let magic = "UBVC1\n"

(* The checker-kind component of the key.  Bump when a checker's verdict
   semantics change incompatibly.  v2: the SAT budget joined the key, so
   every v1 entry (ambiguous about its budget) must be invalidated. *)
let combined_kind = "combined-v2"
let sat_kind = "sat-v2"
let enum_kind = "enum-v2"

let key ?(inputs : Value.t list list option)
    ?(max_universal_bits = Checker.default_max_universal_bits)
    ?(max_conflicts = Checker.default_max_conflicts) ~(mode : Mode.t)
    ~(kind : string) ~(src : Func.t) ~(tgt : Func.t) () : string =
  let parts =
    [ Printer.func_to_string src;
      Printer.func_to_string tgt;
      mode.Mode.name;
      kind;
      Printf.sprintf "ub=%d,mc=%d" max_universal_bits max_conflicts;
      (match inputs with
      | None -> ""
      | Some ts ->
        String.concat ";"
          (List.map (fun args -> String.concat "," (List.map Value.to_string args)) ts));
    ]
  in
  Ub_exec.Cache.key ~parts

let encode (v : Checker.verdict) : string = magic ^ Marshal.to_string v []

let decode (s : string) : Checker.verdict option =
  let m = String.length magic in
  if String.length s > m && String.sub s 0 m = magic then
    try Some (Marshal.from_string s m : Checker.verdict) with _ -> None
  else None

let cacheable = function Checker.Unknown _ -> false | Checker.Refines | Checker.Counterexample _ -> true

let find (cache : Ub_exec.Cache.t) k : Checker.verdict option =
  let module Obs = Ub_obs.Obs in
  match Ub_exec.Cache.find cache k with
  | None ->
    Obs.count "verdict_cache.miss";
    None
  | Some s -> (
    match decode s with
    | Some _ as v ->
      Obs.count "verdict_cache.hit";
      v
    | None ->
      (* present but undecodable (magic/format drift): a miss for the
         caller, but worth its own counter — a high stale rate means the
         on-disk cache is full of dead entries *)
      Obs.count "verdict_cache.stale";
      Obs.count "verdict_cache.miss";
      None)

let store (cache : Ub_exec.Cache.t) k (v : Checker.verdict) : unit =
  if cacheable v then begin
    Ub_obs.Obs.count "verdict_cache.store";
    Ub_exec.Cache.store cache k (encode v)
  end
