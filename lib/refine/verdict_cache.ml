(* Typed adapter between [Checker.verdict] and the raw-string
   [Ub_exec.Cache].  The cache key is the canonical hash of

     (printed source fn, printed target fn, semantics mode, checker kind
      [, explicit input tuples])

   where the functions are printed from their parsed form, so textual
   noise in the original IR (whitespace, comment placement) cannot split
   cache entries for the same function.  [Unknown] verdicts are never
   cached: they depend on resource budgets, and a later run with a
   bigger budget (or a fixed encoder) should get the chance to do
   better. *)

open Ub_ir
open Ub_sem

let magic = "UBVC1\n"

(* The checker-kind component of the key.  Bump when a checker's verdict
   semantics change incompatibly. *)
let combined_kind = "combined-v1"
let sat_kind = "sat-v1"
let enum_kind = "enum-v1"

let key ?(inputs : Value.t list list option) ~(mode : Mode.t) ~(kind : string)
    ~(src : Func.t) ~(tgt : Func.t) () : string =
  let parts =
    [ Printer.func_to_string src;
      Printer.func_to_string tgt;
      mode.Mode.name;
      kind;
      (match inputs with
      | None -> ""
      | Some ts ->
        String.concat ";"
          (List.map (fun args -> String.concat "," (List.map Value.to_string args)) ts));
    ]
  in
  Ub_exec.Cache.key ~parts

let encode (v : Checker.verdict) : string = magic ^ Marshal.to_string v []

let decode (s : string) : Checker.verdict option =
  let m = String.length magic in
  if String.length s > m && String.sub s 0 m = magic then
    try Some (Marshal.from_string s m : Checker.verdict) with _ -> None
  else None

let cacheable = function Checker.Unknown _ -> false | Checker.Refines | Checker.Counterexample _ -> true

let find (cache : Ub_exec.Cache.t) k : Checker.verdict option =
  match Ub_exec.Cache.find cache k with
  | None -> None
  | Some s -> decode s

let store (cache : Ub_exec.Cache.t) k (v : Checker.verdict) : unit =
  if cacheable v then Ub_exec.Cache.store cache k (encode v)
