(* A CDCL SAT solver: two-watched-literal propagation over growable
   watch vectors, first-UIP clause learning, VSIDS branching through an
   indexed binary max-heap, phase saving, Luby restarts, learned-clause
   database reduction on a geometric schedule, and incremental solving
   under assumptions.

   This is the decision-procedure substrate for the refinement checker
   (the paper uses Z3 via Alive; the container is sealed, so we carry our
   own solver — see DESIGN.md section 9).  Literal encoding: variable
   [v >= 0] maps to literals [2v] (positive) and [2v+1] (negated).

   Incremental use (DESIGN.md section 13): [new_var] grows the instance
   on demand, [solve ~assumptions] answers satisfiability under a set of
   literals forced true for that call only, and [simplify] runs bounded
   root-level inprocessing between queries (satisfied-clause purging,
   false-literal strengthening, signature-guarded subsumption).  A
   persistent caller retracts a query by adding the negation of its
   activation literal as a root unit; the next [simplify] then purges
   every clause the retired literal guarded. *)

open Ub_support

type lit = int

let pos v : lit = 2 * v
let neg v : lit = (2 * v) + 1
let lit_of ?(negated = false) v = if negated then neg v else pos v
let var_of (l : lit) = l lsr 1
let is_neg (l : lit) = l land 1 = 1
let lnot (l : lit) = l lxor 1

type result = Sat of bool array | Unsat

(* Truth values in the trail: 0 unassigned, 1 true, 2 false (of the
   positive literal). *)

type clause = {
  mutable lits : lit array; (* mutated in place by root-level strengthening *)
  mutable activity : float;
  learned : bool;
  mutable deleted : bool; (* tombstone set by DB reduction / inprocessing *)
}

let dummy_clause = { lits = [||]; activity = 0.0; learned = false; deleted = true }

type t = {
  mutable nvars : int; (* variables in use; arrays may hold spare capacity *)
  mutable clauses : clause list; (* original clauses, for debugging *)
  mutable watches : clause Vec.t array; (* watch vectors indexed by literal *)
  mutable assign : int array; (* per var: 0 / 1 (true) / 2 (false) *)
  mutable phase : bool array; (* saved polarity per var (last assigned value) *)
  mutable level : int array; (* decision level per var *)
  mutable reason : clause option array; (* antecedent clause per var *)
  mutable trail : int array; (* assigned literals in order *)
  mutable trail_len : int;
  mutable trail_lim : int array; (* trail length at each decision level *)
  mutable decision_level : int;
  mutable qhead : int; (* propagation queue head *)
  mutable activity : float array; (* VSIDS per var *)
  mutable var_inc : float;
  mutable heap : int array; (* binary max-heap of vars, ordered by activity *)
  mutable heap_pos : int array; (* var -> index in heap, -1 when absent *)
  mutable heap_len : int;
  mutable cla_inc : float; (* learned-clause activity increment *)
  learnts : clause Vec.t; (* the learned-clause database *)
  mutable max_learnts : float; (* reduction threshold (geometric) *)
  mutable seen : bool array; (* scratch for conflict analysis *)
  mutable conflicts : int;
  mutable propagations : int;
  mutable decisions : int;
  mutable num_clauses : int; (* problem clauses accepted by add_clause *)
  mutable learned_peak : int; (* peak size of the learned DB *)
  mutable db_reductions : int;
  mutable restarts : int;
  mutable simplifies : int; (* inprocessing passes run *)
  mutable purged : int; (* clauses removed as root-satisfied *)
  mutable strengthened : int; (* clauses shortened by root-false literals *)
  mutable subsumed : int; (* clauses removed by root-level subsumption *)
  mutable evicted : int; (* clauses dropped by [simplify ~keep] cone eviction *)
  mutable root_unsat : bool; (* instance refuted at level 0: final for every later solve *)
  mutable focus : bool array; (* per-solve decision mask, all-false between solves *)
  mutable focus_on : bool;
}

exception Unsat_exn

let create nvars =
  { nvars;
    clauses = [];
    watches = Array.init (2 * nvars) (fun _ -> Vec.create dummy_clause);
    assign = Array.make nvars 0;
    phase = Array.make nvars false;
    level = Array.make nvars 0;
    reason = Array.make nvars None;
    trail = Array.make (max 1 nvars) 0;
    trail_len = 0;
    trail_lim = Array.make (max 1 nvars) 0;
    decision_level = 0;
    qhead = 0;
    activity = Array.make nvars 0.0;
    var_inc = 1.0;
    heap = Array.make (max 1 nvars) 0;
    heap_pos = Array.make (max 1 nvars) (-1);
    heap_len = 0;
    cla_inc = 1.0;
    learnts = Vec.create ~capacity:64 dummy_clause;
    max_learnts = 0.0;
    seen = Array.make nvars false;
    conflicts = 0;
    propagations = 0;
    decisions = 0;
    num_clauses = 0;
    learned_peak = 0;
    db_reductions = 0;
    restarts = 0;
    simplifies = 0;
    purged = 0;
    strengthened = 0;
    subsumed = 0;
    evicted = 0;
    root_unsat = false;
    focus = Array.make nvars false;
    focus_on = false;
  }

let num_vars (s : t) = s.nvars
let is_root_unsat (s : t) = s.root_unsat
let trail_length (s : t) = s.trail_len
let num_learnts (s : t) = Vec.length s.learnts
let num_live_clauses (s : t) = List.length s.clauses
(* O(1) lifetime count of accepted problem clauses (monotone; deletions
   by inprocessing do not decrease it) — cheap enough for per-query
   watermark checks, where [num_live_clauses] would cost O(database). *)
let num_added_clauses (s : t) = s.num_clauses

(* Grow every per-variable structure to capacity [n] (geometric).  The
   fixed-size [create nvars] sizing still serves one-shot callers; a
   session allocates variables one at a time as new circuit nodes appear
   and relies on this path. *)
let ensure_capacity (s : t) (n : int) =
  let cap = Array.length s.assign in
  if n > cap then begin
    let cap' = max n (max 16 (2 * cap)) in
    let extend a fill =
      let b = Array.make cap' fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    s.assign <- extend s.assign 0;
    s.phase <- extend s.phase false;
    s.level <- extend s.level 0;
    s.reason <- extend s.reason None;
    s.activity <- extend s.activity 0.0;
    s.heap_pos <- extend s.heap_pos (-1);
    s.seen <- extend s.seen false;
    s.focus <- extend s.focus false;
    (* trail / trail_lim / heap were sized [max 1 nvars]; re-extend to
       the same invariant (capacity >= 1 even when cap' could be 0) *)
    s.trail <- extend s.trail 0;
    s.trail_lim <- extend s.trail_lim 0;
    s.heap <- extend s.heap 0;
    let w = Array.make (2 * cap') (Vec.create dummy_clause) in
    Array.blit s.watches 0 w 0 (Array.length s.watches);
    for i = Array.length s.watches to (2 * cap') - 1 do
      w.(i) <- Vec.create dummy_clause
    done;
    s.watches <- w
  end

(* Allocate a fresh variable.  Cheap enough to call once per Tseitin
   gate: growth is amortized O(1) and a fresh variable starts unassigned
   with zero activity, exactly as if it had been preallocated. *)
let new_var (s : t) : int =
  let v = s.nvars in
  ensure_capacity s (v + 1);
  s.nvars <- v + 1;
  v

let value_lit (s : t) (l : lit) =
  (* 0 unassigned, 1 true, 2 false *)
  let a = s.assign.(var_of l) in
  if a = 0 then 0 else if is_neg l then 3 - a else a

(* ------------------------------------------------------------------ *)
(* VSIDS order heap: a binary max-heap on [activity], with positions    *)
(* tracked so a bumped var can sift up in place.                        *)
(* ------------------------------------------------------------------ *)

let heap_swap (s : t) i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vi) <- j;
  s.heap_pos.(vj) <- i

let rec heap_sift_up (s : t) i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(parent)) then begin
      heap_swap s i parent;
      heap_sift_up s parent
    end
  end

let rec heap_sift_down (s : t) i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best)) then best := l;
  if r < s.heap_len && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best)) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_sift_down s !best
  end

let heap_insert (s : t) v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_sift_up s s.heap_pos.(v)
  end

let heap_pop (s : t) : int =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    let last = s.heap.(s.heap_len) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    heap_sift_down s 0
  end;
  v

(* ------------------------------------------------------------------ *)
(* Activities                                                          *)
(* ------------------------------------------------------------------ *)

let bump_var (s : t) v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    (* uniform rescale preserves the heap order *)
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_sift_up s s.heap_pos.(v)

let decay_var_activity (s : t) = s.var_inc <- s.var_inc /. 0.95

let bump_clause (s : t) (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_clause_activity (s : t) = s.cla_inc <- s.cla_inc /. 0.999

(* ------------------------------------------------------------------ *)
(* Assignment                                                           *)
(* ------------------------------------------------------------------ *)

let enqueue (s : t) (l : lit) (reason : clause option) =
  let v = var_of l in
  s.assign.(v) <- (if is_neg l then 2 else 1);
  s.phase.(v) <- not (is_neg l);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let watch (s : t) (c : clause) (l : lit) =
  (* watching literal l of c: insertion is keyed by (lnot l), the
     literal whose becoming true falsifies l and requires a visit *)
  Vec.push s.watches.(lnot l) c

(* Add a clause; returns false if the instance is already unsat at level
   0.  Duplicate literals and tautologies are simplified away with one
   int-specialized sort and a single adjacent-pair scan: sorted as ints,
   a duplicate is adjacent to its copy and a complementary pair [2v],
   [2v+1] is adjacent too.

   Once [root_unsat] is latched the solver is inert: adding more clauses
   must not touch the trail (a latched instance stays exactly as its
   refutation left it — see the session differential tests, which stream
   add/solve interleavings past a mid-stream refutation). *)
let add_clause (s : t) (lits : lit list) : bool =
  if s.root_unsat then false
  else
  let arr = Array.of_list lits in
  Array.sort (fun (a : int) b -> compare a b) arr;
  let n = Array.length arr in
  let taut = ref false in
  let out = ref [] in
  let m = ref 0 in
  for i = n - 1 downto 0 do
    let l = arr.(i) in
    if i + 1 < n && arr.(i + 1) = l lxor 1 then taut := true;
    if (i + 1 >= n || arr.(i + 1) <> l)
       (* drop literals false at level 0 *)
       && not (value_lit s l = 2 && s.level.(var_of l) = 0)
    then begin
      out := l :: !out;
      incr m
    end
  done;
  if !taut then true
  else begin
    let lits = Array.of_list !out in
    match !m with
    | 0 ->
      s.root_unsat <- true;
      false
    | 1 ->
      let l = lits.(0) in
      (match value_lit s l with
      | 1 -> true
      | 2 ->
        s.root_unsat <- true;
        false
      | _ ->
        s.num_clauses <- s.num_clauses + 1;
        enqueue s l None;
        true)
    | _ ->
      s.num_clauses <- s.num_clauses + 1;
      let c = { lits; activity = 0.0; learned = false; deleted = false } in
      s.clauses <- c :: s.clauses;
      watch s c lits.(0);
      watch s c lits.(1);
      true
  end

(* Debug/test view: the clauses currently watching literal [l]'s
   falsification (i.e. visited when [lnot l] becomes true). *)
let watchers (s : t) (l : lit) : clause list = Vec.to_list s.watches.(lnot l)

(* Propagate until fixpoint; returns the conflicting clause if any.
   Watch vectors are compacted in place: a clause keeps its slot unless
   it found a new watch (it moved lists) or was deleted by DB reduction.
   On conflict the unvisited tail is preserved verbatim, so watch lists
   survive conflicts exactly. *)
let propagate (s : t) : clause option =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* literal l became true; visit clauses watching (lnot l) *)
    let ws = s.watches.(l) in
    let n = Vec.length ws in
    let j = ref 0 in
    let i = ref 0 in
    let falsified = lnot l in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.deleted then begin
        let lits = c.lits in
        (* ensure the falsified literal is at position 1 *)
        if lits.(0) = falsified then begin
          lits.(0) <- lits.(1);
          lits.(1) <- falsified
        end;
        if value_lit s lits.(0) = 1 then begin
          (* clause already satisfied; keep watching *)
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* look for a new watch *)
          let len = Array.length lits in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if value_lit s lits.(!k) <> 2 then begin
              let w = lits.(!k) in
              lits.(!k) <- lits.(1);
              lits.(1) <- w;
              watch s c w;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            (* unit or conflict: stays on this watch list *)
            Vec.set ws !j c;
            incr j;
            match value_lit s lits.(0) with
            | 2 ->
              conflict := Some c;
              (* keep the unvisited tail on this list untouched *)
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            | 0 -> enqueue s lits.(0) (Some c)
            | _ -> ()
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

(* First-UIP conflict analysis.  Returns (learned clause, backtrack
   level); learned.(0) is the asserting literal. *)
let analyze (s : t) (confl : clause) : lit array * int =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  (* -1 marks "use all literals of confl" on first iteration *)
  let confl = ref (Some confl) in
  let idx = ref (s.trail_len - 1) in
  let continue_ = ref true in
  while !continue_ do
    (match !confl with
    | None -> assert false
    | Some c ->
      if c.learned then bump_clause s c;
      Array.iter
        (fun q ->
          if q <> !p then begin
            let v = var_of q in
            if (not s.seen.(v)) && s.level.(v) > 0 then begin
              s.seen.(v) <- true;
              bump_var s v;
              if s.level.(v) >= s.decision_level then incr counter
              else learned := q :: !learned
            end
          end)
        c.lits);
    (* find next literal on trail that is marked *)
    while not s.seen.(var_of s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    let v = var_of q in
    s.seen.(v) <- false;
    decr counter;
    decr idx;
    if !counter = 0 then begin
      (* q is the first UIP *)
      learned := lnot q :: !learned;
      continue_ := false
    end
    else begin
      p := q;
      confl := s.reason.(v)
    end
  done;
  let arr = Array.of_list !learned in
  (* move asserting literal (lnot of UIP) to front: it is the head *)
  let n = Array.length arr in
  (* asserting literal is the last added: find it — it is the only one at
     current decision level *)
  let ai = ref 0 in
  for i = 0 to n - 1 do
    if s.level.(var_of arr.(i)) = s.decision_level then ai := i
  done;
  let tmp = arr.(0) in
  arr.(0) <- arr.(!ai);
  arr.(!ai) <- tmp;
  (* backtrack level: max level among the rest *)
  let blevel = ref 0 in
  let bi = ref 1 in
  for i = 1 to n - 1 do
    if s.level.(var_of arr.(i)) > !blevel then begin
      blevel := s.level.(var_of arr.(i));
      bi := i
    end
  done;
  if n > 1 then begin
    let tmp = arr.(1) in
    arr.(1) <- arr.(!bi);
    arr.(!bi) <- tmp
  end;
  (* clear seen flags *)
  Array.iter (fun l -> s.seen.(var_of l) <- false) arr;
  (arr, !blevel)

let backtrack (s : t) (level : int) =
  if s.decision_level > level then begin
    for i = s.trail_len - 1 downto s.trail_lim.(level) do
      let v = var_of s.trail.(i) in
      s.assign.(v) <- 0;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_len <- s.trail_lim.(level);
    s.qhead <- s.trail_len;
    s.decision_level <- level
  end

(* A learned clause is locked while it is the antecedent of an
   assignment on the trail; locked clauses are never reduced away. *)
let locked (s : t) (c : clause) =
  Array.length c.lits > 0
  &&
  match s.reason.(var_of c.lits.(0)) with Some r -> r == c | None -> false

(* Learned-DB reduction: drop the low-activity half (sparing locked and
   binary clauses), then compact every watch vector.  Called on a
   geometric schedule: [max_learnts] grows 1.2x per reduction, so the
   DB stays bounded while long refutations keep their useful lemmas. *)
let reduce_db (s : t) =
  s.db_reductions <- s.db_reductions + 1;
  let n = Vec.length s.learnts in
  let arr = Array.init n (fun i -> Vec.get s.learnts i) in
  Array.sort (fun (a : clause) b -> compare a.activity b.activity) arr;
  let to_drop = ref (n / 2) in
  Array.iter
    (fun c ->
      if !to_drop > 0 && (not (locked s c)) && Array.length c.lits > 2 then begin
        c.deleted <- true;
        decr to_drop
      end)
    arr;
  Vec.filter_in_place (fun c -> not c.deleted) s.learnts;
  Array.iter (fun ws -> Vec.filter_in_place (fun c -> not c.deleted) ws) s.watches;
  s.max_learnts <- s.max_learnts *. 1.2

(* ------------------------------------------------------------------ *)
(* Root-level inprocessing                                             *)
(* ------------------------------------------------------------------ *)

(* Bounded work for the subsumption pass: the number of literal
   comparisons one [simplify] call may spend.  Inprocessing runs between
   queries, where an O(n^2) sweep would eat the very latency a session
   exists to save. *)
let subsumption_budget = 200_000

(* Only clauses this short act as subsumers; long clauses rarely subsume
   anything and their occurrence lists are expensive to walk. *)
let max_subsumer_len = 8

(* 63-bit variable signature: [sig C land lnot (sig D) <> 0] proves C
   cannot be a subset of D without looking at a single literal. *)
let signature (lits : lit array) : int =
  Array.fold_left (fun acc l -> acc lor (1 lsl (var_of l mod 63))) 0 lits

let sorted_copy (lits : lit array) : lit array =
  let a = Array.copy lits in
  Array.sort (fun (x : int) y -> compare x y) a;
  a

(* [subset a b]: sorted literal arrays, is every literal of [a] in [b]? *)
let subset (a : lit array) (b : lit array) : bool =
  let na = Array.length a and nb = Array.length b in
  let rec go i j = i >= na || (j < nb && (if a.(i) = b.(j) then go (i + 1) (j + 1) else if a.(i) > b.(j) then go i (j + 1) else false)) in
  go 0 0

(* Root-level inprocessing, to be called between queries at decision
   level 0.  Three phases:

   1. *Purge*: drop every clause satisfied by a root assignment.  This
      is what retires an activation literal for good — once the session
      adds the unit [¬a], every clause guarded by [¬a] is root-satisfied
      and leaves the database here.
   2. *Strengthen*: delete root-false literals in place (the clause can
      never be satisfied through them again).  Clauses of a retracted
      query that MENTION the retired literal positively shrink here.
   3. *Subsume*: signature-guarded backward subsumption seeded from
      short clauses, bounded by [subsumption_budget].

   Watch vectors are rebuilt wholesale at the end: simpler than patching
   them through strengthening, and the rebuild is linear in the live
   database.  [~subsume:false] skips phase 3 — purge and strengthen are
   linear in the database, while subsumption costs its full budget even
   when it finds nothing, so sessions run it on a slower cadence.

   [~keep], when given, additionally EVICTS every clause (problem or
   learned) that mentions a variable the predicate rejects.  This is the
   session's cone eviction: a long-lived solver accumulates Tseitin
   definitions of retired queries, and because their input variables are
   shared with live queries, every new assignment re-propagates through
   all of them — cost proportional to the session, not the query.  The
   caller guarantees the dropped variables are not load-bearing: for a
   session that means [keep] accepts complete encoding cones (a kept
   gate's definition never straddles the boundary), and the caller
   forgets its node→variable memos for rejected variables so the
   structure is re-encoded fresh if it ever returns.  Dropping a problem
   clause is generally unsound — with a cone-closed [keep] it only
   forgets constraints on variables no future query will read.
   Returns [false] iff the instance is (now) root-unsat. *)
let simplify ?(subsume = true) ?keep (s : t) : bool =
  if s.root_unsat then false
  else if s.decision_level <> 0 then invalid_arg "Solver.simplify: not at decision level 0"
  else begin
    match propagate s with
    | Some _ ->
      s.root_unsat <- true;
      false
    | None ->
      s.simplifies <- s.simplifies + 1;
      (* level-0 antecedents are never consulted again (conflict analysis
         stops above level 0); clearing them unlocks their clauses *)
      for i = 0 to s.trail_len - 1 do
        s.reason.(var_of s.trail.(i)) <- None
      done;
      let strengthen (c : clause) =
        if not c.deleted then begin
          if Array.exists (fun l -> value_lit s l = 1) c.lits then begin
            c.deleted <- true;
            s.purged <- s.purged + 1
          end
          else if
            match keep with
            | Some pred -> Array.exists (fun l -> not (pred (var_of l))) c.lits
            | None -> false
          then begin
            c.deleted <- true;
            s.evicted <- s.evicted + 1
          end
          else begin
            let n = Array.length c.lits in
            let live = ref 0 in
            Array.iter (fun l -> if value_lit s l <> 2 then incr live) c.lits;
            if !live < n then begin
              let keep = Array.make !live 0 in
              let j = ref 0 in
              Array.iter
                (fun l ->
                  if value_lit s l <> 2 then begin
                    keep.(!j) <- l;
                    incr j
                  end)
                c.lits;
              s.strengthened <- s.strengthened + 1;
              c.lits <- keep;
              (* after a propagation fixpoint a non-satisfied clause has
                 >= 2 non-false literals, so these cases are defensive *)
              match !live with
              | 0 ->
                s.root_unsat <- true;
                c.deleted <- true
              | 1 ->
                enqueue s keep.(0) None;
                c.deleted <- true
              | _ -> ()
            end
          end
        end
      in
      List.iter strengthen s.clauses;
      Vec.iter strengthen s.learnts;
      if (not s.root_unsat) && subsume then begin
        (* backward subsumption: short clauses kill their supersets *)
        let live = ref [] in
        List.iter (fun c -> if not c.deleted then live := c :: !live) s.clauses;
        Vec.iter (fun c -> if not c.deleted then live := c :: !live) s.learnts;
        let live = Array.of_list !live in
        let n = Array.length live in
        let sorted = Array.map (fun c -> sorted_copy c.lits) live in
        let sigs = Array.map signature sorted in
        (* occurrence lists over every live clause, indexed by literal;
           lengths are tracked separately so picking a rarest literal is
           O(clause), not O(sum of its occurrence lists) *)
        let occ : int list array = Array.make (2 * Array.length s.assign) [] in
        let occ_len = Array.make (2 * Array.length s.assign) 0 in
        Array.iteri
          (fun i c ->
            Array.iter
              (fun l ->
                occ.(l) <- i :: occ.(l);
                occ_len.(l) <- occ_len.(l) + 1)
              c.lits)
          live;
        let budget = ref subsumption_budget in
        for i = 0 to n - 1 do
          let c = live.(i) in
          if (not c.deleted) && Array.length c.lits <= max_subsumer_len && !budget > 0
          then begin
            (* walk the occurrence list of c's rarest literal *)
            let best = ref c.lits.(0) in
            Array.iter (fun l -> if occ_len.(l) < occ_len.(!best) then best := l) c.lits;
            List.iter
              (fun j ->
                let d = live.(j) in
                if
                  j <> i && (not d.deleted) && !budget > 0
                  && Array.length d.lits >= Array.length c.lits
                  && sigs.(i) land Stdlib.lnot sigs.(j) = 0
                then begin
                  budget := !budget - Array.length d.lits;
                  if subset sorted.(i) sorted.(j) then begin
                    (* never drop a problem clause for a learned copy:
                       learned clauses may be reduced away later *)
                    if (not c.learned) || d.learned then begin
                      d.deleted <- true;
                      s.subsumed <- s.subsumed + 1
                    end
                  end
                end)
              occ.(!best)
          end
        done
      end;
      (* rebuild the database and every watch vector *)
      s.clauses <- List.filter (fun c -> not c.deleted) s.clauses;
      Vec.filter_in_place (fun c -> not c.deleted) s.learnts;
      Array.iter Vec.clear s.watches;
      let rewatch (c : clause) =
        watch s c c.lits.(0);
        watch s c c.lits.(1)
      in
      List.iter rewatch s.clauses;
      Vec.iter rewatch s.learnts;
      (* strengthening may have queued fresh root units *)
      (match propagate s with Some _ -> s.root_unsat <- true | None -> ());
      not s.root_unsat
  end

let learn (s : t) (lits : lit array) : clause =
  let c = { lits; activity = 0.0; learned = true; deleted = false } in
  Vec.push s.learnts c;
  if Vec.length s.learnts > s.learned_peak then s.learned_peak <- Vec.length s.learnts;
  bump_clause s c;
  watch s c lits.(0);
  watch s c lits.(1);
  c

(* Phase-saved branching: pick the highest-activity unassigned variable
   and assign it its last saved polarity (initially false, matching the
   zeros oracle bias). *)
let pick_branch_var (s : t) : int option =
  let rec go () =
    if s.heap_len = 0 then None
    else begin
      let v = heap_pop s in
      if s.assign.(v) <> 0 then go ()
      else if s.focus_on && not s.focus.(v) then
        (* outside the caller's decision set: drop it, so the heap runs
           dry over exactly the focus variables.  Safe to lose from the
           heap: an unfocused solve reseeds every unassigned variable on
           entry and a focused one seeds its own set, and [backtrack]
           re-inserts anything that gets assigned meanwhile. *)
        go ()
      else Some v
    end
  in
  go ()

(* Luby sequence for restarts. *)
let rec luby i =
  (* find k with 2^k - 1 = i *)
  let rec pow2 k = if k = 0 then 1 else 2 * pow2 (k - 1) in
  let rec find_k k = if pow2 k - 1 >= i then k else find_k (k + 1) in
  let k = find_k 1 in
  if pow2 k - 1 = i then pow2 (k - 1) else luby (i - pow2 (k - 1) + 1)

exception Budget_exceeded

(* First assumption not currently satisfied: [`Next l] to assume, [`False]
   when one is falsified (unsat under assumptions), [`Done] when all
   hold.  Walked from the front at every decision so restarts and
   backjumps re-establish assumptions automatically. *)
let next_assumption (s : t) (assumptions : lit array) =
  let n = Array.length assumptions in
  let rec go i =
    if i >= n then `Done
    else
      match value_lit s assumptions.(i) with
      | 1 -> go (i + 1)
      | 2 -> `False
      | _ -> `Next assumptions.(i)
  in
  go 0

(* Solve under optional [assumptions] (literals forced true for this
   call only).  [Unsat] then means "unsat under these assumptions"; the
   solver backtracks to level 0 afterwards and can be re-solved with
   different assumptions without rebuilding the CNF.

   The conflict budget is per CALL, not per solver lifetime: the counter
   baseline is captured on entry, so a session issuing many queries
   against one solver gives each query the full budget instead of
   eroding it by everything earlier queries consumed.

   [decision_vars], when given, restricts *branching* to those variables
   (propagation still runs over the whole database): the search declares
   Sat once every focus variable is assigned, with unassigned variables
   defaulting to false in the returned model.  This is how a session
   keeps per-query work proportional to the query instead of to the
   accumulated database — and it is only sound under the session's
   database discipline, where every clause outside the focus cone is
   either a Tseitin definition over otherwise-unconstrained fresh
   variables (always extendable to a total model) or a retired guard
   already satisfied at the root.  The partial model is a real model of
   every clause that lives entirely inside the focus cone; callers must
   only read those variables. *)
let solve_checked ~max_conflicts ~assumptions ?decision_vars (s : t) : result =
  let assumptions = Array.of_list assumptions in
  let conflicts0 = s.conflicts in
  (* (re)seed the order heap: everything unassigned, or just the focus
     set — variables outside it cannot be branched on anyway, and a
     session's database makes the full sweep O(session), not O(query) *)
  (match decision_vars with
  | None ->
    for v = 0 to s.nvars - 1 do
      if s.assign.(v) = 0 then heap_insert s v
    done
  | Some dv ->
    s.focus_on <- true;
    Array.iter
      (fun v ->
        if v >= 0 && v < s.nvars then begin
          s.focus.(v) <- true;
          if s.assign.(v) = 0 then heap_insert s v
        end)
      dv);
  let unfocus () =
    if s.focus_on then begin
      s.focus_on <- false;
      match decision_vars with
      | Some dv -> Array.iter (fun v -> if v >= 0 && v < s.nvars then s.focus.(v) <- false) dv
      | None -> ()
    end
  in
  if s.max_learnts < Float.max 2000.0 (float_of_int s.num_clauses) then
    s.max_learnts <- Float.max 2000.0 (float_of_int s.num_clauses);
  let restart_num = ref 0 in
  let result = ref None in
  (try
     (* top-level propagation of units added by add_clause *)
     (match propagate s with
     | Some _ ->
       s.root_unsat <- true;
       result := Some Unsat
     | None -> ());
     while !result = None do
       incr restart_num;
       let budget = 100 * luby !restart_num in
       let local_conflicts = ref 0 in
       (try
          while !result = None do
            match propagate s with
            | Some confl ->
              s.conflicts <- s.conflicts + 1;
              incr local_conflicts;
              if s.conflicts - conflicts0 > max_conflicts then raise Budget_exceeded;
              if s.decision_level = 0 then begin
                s.root_unsat <- true;
                result := Some Unsat;
                raise Exit
              end;
              let learned, blevel = analyze s confl in
              backtrack s blevel;
              decay_var_activity s;
              decay_clause_activity s;
              if Array.length learned = 1 then enqueue s learned.(0) None
              else begin
                let c = learn s learned in
                enqueue s learned.(0) (Some c)
              end;
              if float_of_int (Vec.length s.learnts) >= s.max_learnts then reduce_db s;
              if !local_conflicts >= budget then begin
                (* restart *)
                s.restarts <- s.restarts + 1;
                backtrack s 0;
                raise Exit
              end
            | None -> (
              match next_assumption s assumptions with
              | `False ->
                (* a violated assumption: every trail entry below is an
                   assumption or implied, so this is final for the call *)
                result := Some Unsat;
                raise Exit
              | `Next l ->
                s.trail_lim.(s.decision_level) <- s.trail_len;
                s.decision_level <- s.decision_level + 1;
                enqueue s l None
              | `Done -> (
                match pick_branch_var s with
                | None ->
                  (* full assignment: SAT *)
                  result :=
                    Some (Sat (Array.init s.nvars (fun v -> s.assign.(v) = 1)));
                  raise Exit
                | Some v ->
                  s.decisions <- s.decisions + 1;
                  s.trail_lim.(s.decision_level) <- s.trail_len;
                  s.decision_level <- s.decision_level + 1;
                  enqueue s (lit_of ~negated:(not s.phase.(v)) v) None))
          done
        with Exit -> ())
     done
   with Budget_exceeded ->
     backtrack s 0;
     unfocus ();
     raise Budget_exceeded);
  backtrack s 0;
  unfocus ();
  match !result with Some r -> r | None -> assert false

(* [root_unsat] makes repeat calls (incremental solving under different
   assumptions) sound: a level-0 refutation consumed the propagation
   queue, so re-running the search would not rediscover the conflict. *)
let solve ?(max_conflicts = max_int) ?(assumptions = []) ?decision_vars (s : t) : result =
  if s.root_unsat then Unsat
  else solve_checked ~max_conflicts ~assumptions ?decision_vars s

(* One-shot convenience: clauses as lists of literals. *)
let solve_clauses ?max_conflicts ?assumptions ~nvars (clauses : lit list list) : result =
  let s = create nvars in
  let ok = List.for_all (fun c -> add_clause s c) clauses in
  if not ok then Unsat else solve ?max_conflicts ?assumptions s

(* Check a model against clauses (used by tests and as a runtime
   self-check). *)
let model_satisfies (model : bool array) (clauses : lit list list) =
  List.for_all
    (List.exists (fun l ->
         let v = var_of l in
         if is_neg l then not model.(v) else model.(v)))
    clauses

let stats s = (s.conflicts, s.decisions, s.propagations)

(* Full counters, for the solver benchmark harness. *)
type statistics = {
  st_conflicts : int;
  st_decisions : int;
  st_propagations : int;
  st_clauses : int; (* problem clauses accepted by add_clause *)
  st_learned_peak : int; (* peak size of the learned-clause DB *)
  st_db_reductions : int;
  st_restarts : int;
  st_simplifies : int; (* inprocessing passes run *)
  st_purged : int; (* root-satisfied clauses dropped by simplify *)
  st_strengthened : int; (* clauses shrunk by root-false literal removal *)
  st_subsumed : int; (* clauses deleted by backward subsumption *)
  st_evicted : int; (* clauses dropped by cone eviction ([simplify ~keep]) *)
}

let statistics s =
  { st_conflicts = s.conflicts;
    st_decisions = s.decisions;
    st_propagations = s.propagations;
    st_clauses = s.num_clauses;
    st_learned_peak = s.learned_peak;
    st_db_reductions = s.db_reductions;
    st_restarts = s.restarts;
    st_simplifies = s.simplifies;
    st_purged = s.purged;
    st_strengthened = s.strengthened;
    st_subsumed = s.subsumed;
    st_evicted = s.evicted;
  }
