(* A CDCL SAT solver: two-watched-literal propagation over growable
   watch vectors, first-UIP clause learning, VSIDS branching through an
   indexed binary max-heap, phase saving, Luby restarts, learned-clause
   database reduction on a geometric schedule, and incremental solving
   under assumptions.

   This is the decision-procedure substrate for the refinement checker
   (the paper uses Z3 via Alive; the container is sealed, so we carry our
   own solver — see DESIGN.md section 9).  Literal encoding: variable
   [v >= 0] maps to literals [2v] (positive) and [2v+1] (negated). *)

open Ub_support

type lit = int

let pos v : lit = 2 * v
let neg v : lit = (2 * v) + 1
let lit_of ?(negated = false) v = if negated then neg v else pos v
let var_of (l : lit) = l lsr 1
let is_neg (l : lit) = l land 1 = 1
let lnot (l : lit) = l lxor 1

type result = Sat of bool array | Unsat

(* Truth values in the trail: 0 unassigned, 1 true, 2 false (of the
   positive literal). *)

type clause = {
  lits : lit array;
  mutable activity : float;
  learned : bool;
  mutable deleted : bool; (* tombstone set by DB reduction *)
}

let dummy_clause = { lits = [||]; activity = 0.0; learned = false; deleted = true }

type t = {
  nvars : int;
  mutable clauses : clause list; (* original clauses, for debugging *)
  watches : clause Vec.t array; (* watch vectors indexed by literal *)
  assign : int array; (* per var: 0 / 1 (true) / 2 (false) *)
  phase : bool array; (* saved polarity per var (last assigned value) *)
  level : int array; (* decision level per var *)
  reason : clause option array; (* antecedent clause per var *)
  trail : int array; (* assigned literals in order *)
  mutable trail_len : int;
  trail_lim : int array; (* trail length at each decision level *)
  mutable decision_level : int;
  mutable qhead : int; (* propagation queue head *)
  activity : float array; (* VSIDS per var *)
  mutable var_inc : float;
  heap : int array; (* binary max-heap of vars, ordered by activity *)
  heap_pos : int array; (* var -> index in heap, -1 when absent *)
  mutable heap_len : int;
  mutable cla_inc : float; (* learned-clause activity increment *)
  learnts : clause Vec.t; (* the learned-clause database *)
  mutable max_learnts : float; (* reduction threshold (geometric) *)
  seen : bool array; (* scratch for conflict analysis *)
  mutable conflicts : int;
  mutable propagations : int;
  mutable decisions : int;
  mutable num_clauses : int; (* problem clauses accepted by add_clause *)
  mutable learned_peak : int; (* peak size of the learned DB *)
  mutable db_reductions : int;
  mutable restarts : int;
  mutable root_unsat : bool; (* instance refuted at level 0: final for every later solve *)
}

exception Unsat_exn

let create nvars =
  { nvars;
    clauses = [];
    watches = Array.init (2 * nvars) (fun _ -> Vec.create dummy_clause);
    assign = Array.make nvars 0;
    phase = Array.make nvars false;
    level = Array.make nvars 0;
    reason = Array.make nvars None;
    trail = Array.make (max 1 nvars) 0;
    trail_len = 0;
    trail_lim = Array.make (max 1 nvars) 0;
    decision_level = 0;
    qhead = 0;
    activity = Array.make nvars 0.0;
    var_inc = 1.0;
    heap = Array.make (max 1 nvars) 0;
    heap_pos = Array.make (max 1 nvars) (-1);
    heap_len = 0;
    cla_inc = 1.0;
    learnts = Vec.create ~capacity:64 dummy_clause;
    max_learnts = 0.0;
    seen = Array.make nvars false;
    conflicts = 0;
    propagations = 0;
    decisions = 0;
    num_clauses = 0;
    learned_peak = 0;
    db_reductions = 0;
    restarts = 0;
    root_unsat = false;
  }

let value_lit (s : t) (l : lit) =
  (* 0 unassigned, 1 true, 2 false *)
  let a = s.assign.(var_of l) in
  if a = 0 then 0 else if is_neg l then 3 - a else a

(* ------------------------------------------------------------------ *)
(* VSIDS order heap: a binary max-heap on [activity], with positions    *)
(* tracked so a bumped var can sift up in place.                        *)
(* ------------------------------------------------------------------ *)

let heap_swap (s : t) i j =
  let vi = s.heap.(i) and vj = s.heap.(j) in
  s.heap.(i) <- vj;
  s.heap.(j) <- vi;
  s.heap_pos.(vi) <- j;
  s.heap_pos.(vj) <- i

let rec heap_sift_up (s : t) i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if s.activity.(s.heap.(i)) > s.activity.(s.heap.(parent)) then begin
      heap_swap s i parent;
      heap_sift_up s parent
    end
  end

let rec heap_sift_down (s : t) i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < s.heap_len && s.activity.(s.heap.(l)) > s.activity.(s.heap.(!best)) then best := l;
  if r < s.heap_len && s.activity.(s.heap.(r)) > s.activity.(s.heap.(!best)) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_sift_down s !best
  end

let heap_insert (s : t) v =
  if s.heap_pos.(v) < 0 then begin
    s.heap.(s.heap_len) <- v;
    s.heap_pos.(v) <- s.heap_len;
    s.heap_len <- s.heap_len + 1;
    heap_sift_up s s.heap_pos.(v)
  end

let heap_pop (s : t) : int =
  let v = s.heap.(0) in
  s.heap_len <- s.heap_len - 1;
  s.heap_pos.(v) <- -1;
  if s.heap_len > 0 then begin
    let last = s.heap.(s.heap_len) in
    s.heap.(0) <- last;
    s.heap_pos.(last) <- 0;
    heap_sift_down s 0
  end;
  v

(* ------------------------------------------------------------------ *)
(* Activities                                                          *)
(* ------------------------------------------------------------------ *)

let bump_var (s : t) v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    (* uniform rescale preserves the heap order *)
    for i = 0 to s.nvars - 1 do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_sift_up s s.heap_pos.(v)

let decay_var_activity (s : t) = s.var_inc <- s.var_inc /. 0.95

let bump_clause (s : t) (c : clause) =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let decay_clause_activity (s : t) = s.cla_inc <- s.cla_inc /. 0.999

(* ------------------------------------------------------------------ *)
(* Assignment                                                           *)
(* ------------------------------------------------------------------ *)

let enqueue (s : t) (l : lit) (reason : clause option) =
  let v = var_of l in
  s.assign.(v) <- (if is_neg l then 2 else 1);
  s.phase.(v) <- not (is_neg l);
  s.level.(v) <- s.decision_level;
  s.reason.(v) <- reason;
  s.trail.(s.trail_len) <- l;
  s.trail_len <- s.trail_len + 1

let watch (s : t) (c : clause) (l : lit) =
  (* watching literal l of c: insertion is keyed by (lnot l), the
     literal whose becoming true falsifies l and requires a visit *)
  Vec.push s.watches.(lnot l) c

(* Add a clause; returns false if the instance is already unsat at level
   0.  Duplicate literals and tautologies are simplified away with one
   int-specialized sort and a single adjacent-pair scan: sorted as ints,
   a duplicate is adjacent to its copy and a complementary pair [2v],
   [2v+1] is adjacent too. *)
let add_clause (s : t) (lits : lit list) : bool =
  let arr = Array.of_list lits in
  Array.sort (fun (a : int) b -> compare a b) arr;
  let n = Array.length arr in
  let taut = ref false in
  let out = ref [] in
  let m = ref 0 in
  for i = n - 1 downto 0 do
    let l = arr.(i) in
    if i + 1 < n && arr.(i + 1) = l lxor 1 then taut := true;
    if (i + 1 >= n || arr.(i + 1) <> l)
       (* drop literals false at level 0 *)
       && not (value_lit s l = 2 && s.level.(var_of l) = 0)
    then begin
      out := l :: !out;
      incr m
    end
  done;
  if !taut then true
  else begin
    let lits = Array.of_list !out in
    match !m with
    | 0 ->
      s.root_unsat <- true;
      false
    | 1 ->
      let l = lits.(0) in
      (match value_lit s l with
      | 1 -> true
      | 2 ->
        s.root_unsat <- true;
        false
      | _ ->
        s.num_clauses <- s.num_clauses + 1;
        enqueue s l None;
        true)
    | _ ->
      s.num_clauses <- s.num_clauses + 1;
      let c = { lits; activity = 0.0; learned = false; deleted = false } in
      s.clauses <- c :: s.clauses;
      watch s c lits.(0);
      watch s c lits.(1);
      true
  end

(* Debug/test view: the clauses currently watching literal [l]'s
   falsification (i.e. visited when [lnot l] becomes true). *)
let watchers (s : t) (l : lit) : clause list = Vec.to_list s.watches.(lnot l)

(* Propagate until fixpoint; returns the conflicting clause if any.
   Watch vectors are compacted in place: a clause keeps its slot unless
   it found a new watch (it moved lists) or was deleted by DB reduction.
   On conflict the unvisited tail is preserved verbatim, so watch lists
   survive conflicts exactly. *)
let propagate (s : t) : clause option =
  let conflict = ref None in
  while !conflict = None && s.qhead < s.trail_len do
    let l = s.trail.(s.qhead) in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    (* literal l became true; visit clauses watching (lnot l) *)
    let ws = s.watches.(l) in
    let n = Vec.length ws in
    let j = ref 0 in
    let i = ref 0 in
    let falsified = lnot l in
    while !i < n do
      let c = Vec.get ws !i in
      incr i;
      if not c.deleted then begin
        let lits = c.lits in
        (* ensure the falsified literal is at position 1 *)
        if lits.(0) = falsified then begin
          lits.(0) <- lits.(1);
          lits.(1) <- falsified
        end;
        if value_lit s lits.(0) = 1 then begin
          (* clause already satisfied; keep watching *)
          Vec.set ws !j c;
          incr j
        end
        else begin
          (* look for a new watch *)
          let len = Array.length lits in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if value_lit s lits.(!k) <> 2 then begin
              let w = lits.(!k) in
              lits.(!k) <- lits.(1);
              lits.(1) <- w;
              watch s c w;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            (* unit or conflict: stays on this watch list *)
            Vec.set ws !j c;
            incr j;
            match value_lit s lits.(0) with
            | 2 ->
              conflict := Some c;
              (* keep the unvisited tail on this list untouched *)
              while !i < n do
                Vec.set ws !j (Vec.get ws !i);
                incr j;
                incr i
              done
            | 0 -> enqueue s lits.(0) (Some c)
            | _ -> ()
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !conflict

(* First-UIP conflict analysis.  Returns (learned clause, backtrack
   level); learned.(0) is the asserting literal. *)
let analyze (s : t) (confl : clause) : lit array * int =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  (* -1 marks "use all literals of confl" on first iteration *)
  let confl = ref (Some confl) in
  let idx = ref (s.trail_len - 1) in
  let continue_ = ref true in
  while !continue_ do
    (match !confl with
    | None -> assert false
    | Some c ->
      if c.learned then bump_clause s c;
      Array.iter
        (fun q ->
          if q <> !p then begin
            let v = var_of q in
            if (not s.seen.(v)) && s.level.(v) > 0 then begin
              s.seen.(v) <- true;
              bump_var s v;
              if s.level.(v) >= s.decision_level then incr counter
              else learned := q :: !learned
            end
          end)
        c.lits);
    (* find next literal on trail that is marked *)
    while not s.seen.(var_of s.trail.(!idx)) do
      decr idx
    done;
    let q = s.trail.(!idx) in
    let v = var_of q in
    s.seen.(v) <- false;
    decr counter;
    decr idx;
    if !counter = 0 then begin
      (* q is the first UIP *)
      learned := lnot q :: !learned;
      continue_ := false
    end
    else begin
      p := q;
      confl := s.reason.(v)
    end
  done;
  let arr = Array.of_list !learned in
  (* move asserting literal (lnot of UIP) to front: it is the head *)
  let n = Array.length arr in
  (* asserting literal is the last added: find it — it is the only one at
     current decision level *)
  let ai = ref 0 in
  for i = 0 to n - 1 do
    if s.level.(var_of arr.(i)) = s.decision_level then ai := i
  done;
  let tmp = arr.(0) in
  arr.(0) <- arr.(!ai);
  arr.(!ai) <- tmp;
  (* backtrack level: max level among the rest *)
  let blevel = ref 0 in
  let bi = ref 1 in
  for i = 1 to n - 1 do
    if s.level.(var_of arr.(i)) > !blevel then begin
      blevel := s.level.(var_of arr.(i));
      bi := i
    end
  done;
  if n > 1 then begin
    let tmp = arr.(1) in
    arr.(1) <- arr.(!bi);
    arr.(!bi) <- tmp
  end;
  (* clear seen flags *)
  Array.iter (fun l -> s.seen.(var_of l) <- false) arr;
  (arr, !blevel)

let backtrack (s : t) (level : int) =
  if s.decision_level > level then begin
    for i = s.trail_len - 1 downto s.trail_lim.(level) do
      let v = var_of s.trail.(i) in
      s.assign.(v) <- 0;
      s.reason.(v) <- None;
      heap_insert s v
    done;
    s.trail_len <- s.trail_lim.(level);
    s.qhead <- s.trail_len;
    s.decision_level <- level
  end

(* A learned clause is locked while it is the antecedent of an
   assignment on the trail; locked clauses are never reduced away. *)
let locked (s : t) (c : clause) =
  Array.length c.lits > 0
  &&
  match s.reason.(var_of c.lits.(0)) with Some r -> r == c | None -> false

(* Learned-DB reduction: drop the low-activity half (sparing locked and
   binary clauses), then compact every watch vector.  Called on a
   geometric schedule: [max_learnts] grows 1.2x per reduction, so the
   DB stays bounded while long refutations keep their useful lemmas. *)
let reduce_db (s : t) =
  s.db_reductions <- s.db_reductions + 1;
  let n = Vec.length s.learnts in
  let arr = Array.init n (fun i -> Vec.get s.learnts i) in
  Array.sort (fun (a : clause) b -> compare a.activity b.activity) arr;
  let to_drop = ref (n / 2) in
  Array.iter
    (fun c ->
      if !to_drop > 0 && (not (locked s c)) && Array.length c.lits > 2 then begin
        c.deleted <- true;
        decr to_drop
      end)
    arr;
  Vec.filter_in_place (fun c -> not c.deleted) s.learnts;
  Array.iter (fun ws -> Vec.filter_in_place (fun c -> not c.deleted) ws) s.watches;
  s.max_learnts <- s.max_learnts *. 1.2

let learn (s : t) (lits : lit array) : clause =
  let c = { lits; activity = 0.0; learned = true; deleted = false } in
  Vec.push s.learnts c;
  if Vec.length s.learnts > s.learned_peak then s.learned_peak <- Vec.length s.learnts;
  bump_clause s c;
  watch s c lits.(0);
  watch s c lits.(1);
  c

(* Phase-saved branching: pick the highest-activity unassigned variable
   and assign it its last saved polarity (initially false, matching the
   zeros oracle bias). *)
let pick_branch_var (s : t) : int option =
  let rec go () =
    if s.heap_len = 0 then None
    else begin
      let v = heap_pop s in
      if s.assign.(v) = 0 then Some v else go ()
    end
  in
  go ()

(* Luby sequence for restarts. *)
let rec luby i =
  (* find k with 2^k - 1 = i *)
  let rec pow2 k = if k = 0 then 1 else 2 * pow2 (k - 1) in
  let rec find_k k = if pow2 k - 1 >= i then k else find_k (k + 1) in
  let k = find_k 1 in
  if pow2 k - 1 = i then pow2 (k - 1) else luby (i - pow2 (k - 1) + 1)

exception Budget_exceeded

(* First assumption not currently satisfied: [`Next l] to assume, [`False]
   when one is falsified (unsat under assumptions), [`Done] when all
   hold.  Walked from the front at every decision so restarts and
   backjumps re-establish assumptions automatically. *)
let next_assumption (s : t) (assumptions : lit array) =
  let n = Array.length assumptions in
  let rec go i =
    if i >= n then `Done
    else
      match value_lit s assumptions.(i) with
      | 1 -> go (i + 1)
      | 2 -> `False
      | _ -> `Next assumptions.(i)
  in
  go 0

(* Solve under optional [assumptions] (literals forced true for this
   call only).  [Unsat] then means "unsat under these assumptions"; the
   solver backtracks to level 0 afterwards and can be re-solved with
   different assumptions without rebuilding the CNF. *)
let solve_checked ~max_conflicts ~assumptions (s : t) : result =
  let assumptions = Array.of_list assumptions in
  (* (re)seed the order heap with every unassigned variable *)
  for v = 0 to s.nvars - 1 do
    if s.assign.(v) = 0 then heap_insert s v
  done;
  if s.max_learnts = 0.0 then
    s.max_learnts <- Float.max 2000.0 (float_of_int s.num_clauses);
  let restart_num = ref 0 in
  let result = ref None in
  (try
     (* top-level propagation of units added by add_clause *)
     (match propagate s with
     | Some _ ->
       s.root_unsat <- true;
       result := Some Unsat
     | None -> ());
     while !result = None do
       incr restart_num;
       let budget = 100 * luby !restart_num in
       let local_conflicts = ref 0 in
       (try
          while !result = None do
            match propagate s with
            | Some confl ->
              s.conflicts <- s.conflicts + 1;
              incr local_conflicts;
              if s.conflicts > max_conflicts then raise Budget_exceeded;
              if s.decision_level = 0 then begin
                s.root_unsat <- true;
                result := Some Unsat;
                raise Exit
              end;
              let learned, blevel = analyze s confl in
              backtrack s blevel;
              decay_var_activity s;
              decay_clause_activity s;
              if Array.length learned = 1 then enqueue s learned.(0) None
              else begin
                let c = learn s learned in
                enqueue s learned.(0) (Some c)
              end;
              if float_of_int (Vec.length s.learnts) >= s.max_learnts then reduce_db s;
              if !local_conflicts >= budget then begin
                (* restart *)
                s.restarts <- s.restarts + 1;
                backtrack s 0;
                raise Exit
              end
            | None -> (
              match next_assumption s assumptions with
              | `False ->
                (* a violated assumption: every trail entry below is an
                   assumption or implied, so this is final for the call *)
                result := Some Unsat;
                raise Exit
              | `Next l ->
                s.trail_lim.(s.decision_level) <- s.trail_len;
                s.decision_level <- s.decision_level + 1;
                enqueue s l None
              | `Done -> (
                match pick_branch_var s with
                | None ->
                  (* full assignment: SAT *)
                  result :=
                    Some (Sat (Array.init s.nvars (fun v -> s.assign.(v) = 1)));
                  raise Exit
                | Some v ->
                  s.decisions <- s.decisions + 1;
                  s.trail_lim.(s.decision_level) <- s.trail_len;
                  s.decision_level <- s.decision_level + 1;
                  enqueue s (lit_of ~negated:(not s.phase.(v)) v) None))
          done
        with Exit -> ())
     done
   with Budget_exceeded ->
     backtrack s 0;
     raise Budget_exceeded);
  backtrack s 0;
  match !result with Some r -> r | None -> assert false

(* [root_unsat] makes repeat calls (incremental solving under different
   assumptions) sound: a level-0 refutation consumed the propagation
   queue, so re-running the search would not rediscover the conflict. *)
let solve ?(max_conflicts = max_int) ?(assumptions = []) (s : t) : result =
  if s.root_unsat then Unsat else solve_checked ~max_conflicts ~assumptions s

(* One-shot convenience: clauses as lists of literals. *)
let solve_clauses ?max_conflicts ?assumptions ~nvars (clauses : lit list list) : result =
  let s = create nvars in
  let ok = List.for_all (fun c -> add_clause s c) clauses in
  if not ok then Unsat else solve ?max_conflicts ?assumptions s

(* Check a model against clauses (used by tests and as a runtime
   self-check). *)
let model_satisfies (model : bool array) (clauses : lit list list) =
  List.for_all
    (List.exists (fun l ->
         let v = var_of l in
         if is_neg l then not model.(v) else model.(v)))
    clauses

let stats s = (s.conflicts, s.decisions, s.propagations)

(* Full counters, for the solver benchmark harness. *)
type statistics = {
  st_conflicts : int;
  st_decisions : int;
  st_propagations : int;
  st_clauses : int; (* problem clauses accepted by add_clause *)
  st_learned_peak : int; (* peak size of the learned-clause DB *)
  st_db_reductions : int;
  st_restarts : int;
}

let statistics s =
  { st_conflicts = s.conflicts;
    st_decisions = s.decisions;
    st_propagations = s.propagations;
    st_clauses = s.num_clauses;
    st_learned_peak = s.learned_peak;
    st_db_reductions = s.db_reductions;
    st_restarts = s.restarts;
  }
