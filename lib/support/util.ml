(* Small general-purpose helpers shared across the repository. *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: xs -> x :: take (n - 1) xs

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: xs -> drop (n - 1) xs

let sum_int = List.fold_left ( + ) 0
let sum_float = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum_float xs /. float_of_int (List.length xs)

let median xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0

let percent_change ~base ~now =
  if base = 0.0 then 0.0 else (now -. base) /. base *. 100.0

(* Cartesian product of a list of lists, in lexicographic order. *)
let rec cartesian = function
  | [] -> [ [] ]
  | xs :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun x -> List.map (fun t -> x :: t) tails) xs

let list_equal eq a b =
  try List.for_all2 eq a b with Invalid_argument _ -> false

let rec transpose = function
  | [] | [] :: _ -> []
  | rows -> List.map List.hd rows :: transpose (List.map List.tl rows)

let string_contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else begin
    let rec go i =
      if i + nl > hl then false
      else if String.sub haystack i nl = needle then true
      else go (i + 1)
    in
    go 0
  end

let with_timer f =
  let t0 = Ub_obs.Obs.Clock.now_s () in
  let r = f () in
  (r, Ub_obs.Obs.Clock.elapsed_s ~since:t0)

(* Format a signed percentage with one decimal, LLVM-nightly style. *)
let pp_pct ppf p = Fmt.pf ppf "%+.2f%%" p

let pp_list pp_elt ppf xs = Fmt.(list ~sep:(any ", ") pp_elt) ppf xs
