(* Fixed-width bitvectors, widths 1..64, with the full complement of LLVM
   integer operations including the overflow predicates needed by the
   [nsw]/[nuw]/[exact] instruction attributes.

   Representation invariant: [v] holds the unsigned value in the low
   [width] bits of an [int64]; all bits at and above [width] are zero. *)

type t = { width : int; v : int64 }

exception Width_mismatch of int * int

let max_width = 64

let mask_of_width w = if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let check_width w =
  if w < 1 || w > max_width then
    invalid_arg (Printf.sprintf "Bitvec: width %d out of range [1,64]" w)

let make ~width v =
  check_width width;
  { width; v = Int64.logand v (mask_of_width width) }

let of_int ~width i = make ~width (Int64.of_int i)
let of_int64 ~width v = make ~width v
let width t = t.width
let to_uint64 t = t.v

(* Sign-extend the low [width] bits of [v] to a full int64. *)
let sext64 t =
  if t.width = 64 then t.v
  else
    let shift = 64 - t.width in
    Int64.shift_right (Int64.shift_left t.v shift) shift

let to_sint64 = sext64

let to_uint_opt t =
  if t.width <= 62 then Some (Int64.to_int t.v)
  else if Int64.compare t.v 0L >= 0 && Int64.compare t.v (Int64.of_int max_int) <= 0
  then Some (Int64.to_int t.v)
  else None

let to_uint_exn t =
  match to_uint_opt t with
  | Some i -> i
  | None -> invalid_arg "Bitvec.to_uint_exn: does not fit in native int"

let zero width = make ~width 0L
let one width = make ~width 1L
let all_ones width = make ~width (-1L)
let min_signed width = make ~width (Int64.shift_left 1L (width - 1))
let max_signed width = make ~width (mask_of_width (width - 1))
let max_unsigned = all_ones

let is_zero t = Int64.equal t.v 0L
let is_one t = Int64.equal t.v 1L
let is_all_ones t = Int64.equal t.v (mask_of_width t.width)
let is_min_signed t = Int64.equal t.v (Int64.logand (Int64.shift_left 1L (t.width - 1)) (mask_of_width t.width))

let same_width a b = if a.width <> b.width then raise (Width_mismatch (a.width, b.width))

let equal a b = a.width = b.width && Int64.equal a.v b.v
let compare_raw a b =
  let c = compare a.width b.width in
  if c <> 0 then c else Int64.unsigned_compare a.v b.v

(* ------------------------------------------------------------------ *)
(* Arithmetic (modular)                                               *)
(* ------------------------------------------------------------------ *)

let add a b = same_width a b; make ~width:a.width (Int64.add a.v b.v)
let sub a b = same_width a b; make ~width:a.width (Int64.sub a.v b.v)
let mul a b = same_width a b; make ~width:a.width (Int64.mul a.v b.v)
let neg a = make ~width:a.width (Int64.neg a.v)

(* Division.  Callers must rule out division by zero (immediate UB at the
   IR level); we raise to catch logic errors early. *)
exception Division_by_zero

let udiv a b =
  same_width a b;
  if is_zero b then raise Division_by_zero;
  make ~width:a.width (Int64.unsigned_div a.v b.v)

let urem a b =
  same_width a b;
  if is_zero b then raise Division_by_zero;
  make ~width:a.width (Int64.unsigned_rem a.v b.v)

(* sdiv of min_signed by -1 overflows: immediate UB in LLVM.  We expose a
   predicate and make [sdiv] itself wrap like hardware would (trunc). *)
let sdiv_overflows a b = is_min_signed a && is_all_ones b

let sdiv a b =
  same_width a b;
  if is_zero b then raise Division_by_zero;
  if sdiv_overflows a b then a (* INT_MIN / -1 wraps to INT_MIN *)
  else make ~width:a.width (Int64.div (sext64 a) (sext64 b))

let srem a b =
  same_width a b;
  if is_zero b then raise Division_by_zero;
  if sdiv_overflows a b then zero a.width
  else make ~width:a.width (Int64.rem (sext64 a) (sext64 b))

(* ------------------------------------------------------------------ *)
(* Bitwise                                                            *)
(* ------------------------------------------------------------------ *)

let logand a b = same_width a b; { a with v = Int64.logand a.v b.v }
let logor a b = same_width a b; { a with v = Int64.logor a.v b.v }
let logxor a b = same_width a b; { a with v = Int64.logxor a.v b.v }
let lognot a = make ~width:a.width (Int64.lognot a.v)

(* Shifts.  Shift amounts >= width are *deferred UB* at the IR level; here
   the caller must pass an in-range amount. *)
let check_shift a n =
  if n < 0 || n >= a.width then
    invalid_arg (Printf.sprintf "Bitvec: shift amount %d out of range for i%d" n a.width)

let shl a n = check_shift a n; make ~width:a.width (Int64.shift_left a.v n)
let lshr a n = check_shift a n; { a with v = Int64.shift_right_logical a.v n }
let ashr a n = check_shift a n; make ~width:a.width (Int64.shift_right (sext64 a) n)

let shl_bv a b = shl a (to_uint_exn b)
let lshr_bv a b = lshr a (to_uint_exn b)
let ashr_bv a b = ashr a (to_uint_exn b)

let shift_in_range a b =
  (* true iff the shift amount in [b] is < width of [a] *)
  Int64.unsigned_compare b.v (Int64.of_int a.width) < 0

(* ------------------------------------------------------------------ *)
(* Width changes                                                      *)
(* ------------------------------------------------------------------ *)

let zext t ~width =
  if width < t.width then invalid_arg "Bitvec.zext: narrowing";
  make ~width t.v

let sext t ~width =
  if width < t.width then invalid_arg "Bitvec.sext: narrowing";
  make ~width (sext64 t)

let trunc t ~width =
  if width > t.width then invalid_arg "Bitvec.trunc: widening";
  make ~width t.v

(* Concatenation: [concat hi lo] has hi in the high bits. *)
let concat hi lo =
  let w = hi.width + lo.width in
  check_width w;
  make ~width:w (Int64.logor (Int64.shift_left hi.v lo.width) lo.v)

(* [extract t ~hi ~lo] keeps bits lo..hi inclusive. *)
let extract t ~hi ~lo =
  if lo < 0 || hi >= t.width || lo > hi then invalid_arg "Bitvec.extract";
  make ~width:(hi - lo + 1) (Int64.shift_right_logical t.v lo)

let get_bit t i =
  if i < 0 || i >= t.width then invalid_arg "Bitvec.get_bit";
  Int64.equal (Int64.logand (Int64.shift_right_logical t.v i) 1L) 1L

let set_bit t i b =
  if i < 0 || i >= t.width then invalid_arg "Bitvec.set_bit";
  let m = Int64.shift_left 1L i in
  if b then { t with v = Int64.logor t.v m }
  else { t with v = Int64.logand t.v (Int64.lognot m) }

let of_bits bits =
  let w = Array.length bits in
  check_width w;
  let v = ref 0L in
  for i = w - 1 downto 0 do
    v := Int64.logor (Int64.shift_left !v 1) (if bits.(i) then 1L else 0L)
  done;
  (* careful: loop above shifts in MSB-first order over reversed indices *)
  make ~width:w !v

let to_bits t = Array.init t.width (fun i -> get_bit t i)

(* ------------------------------------------------------------------ *)
(* Comparisons                                                        *)
(* ------------------------------------------------------------------ *)

let ucompare a b = same_width a b; Int64.unsigned_compare a.v b.v
let scompare a b = same_width a b; Int64.compare (sext64 a) (sext64 b)

let eq a b = same_width a b; Int64.equal a.v b.v
let ne a b = not (eq a b)
let ult a b = ucompare a b < 0
let ule a b = ucompare a b <= 0
let ugt a b = ucompare a b > 0
let uge a b = ucompare a b >= 0
let slt a b = scompare a b < 0
let sle a b = scompare a b <= 0
let sgt a b = scompare a b > 0
let sge a b = scompare a b >= 0

(* ------------------------------------------------------------------ *)
(* 128-bit helpers for overflow detection                              *)
(* ------------------------------------------------------------------ *)

(* Full 64x64 -> 128 unsigned multiply, via 32-bit limbs. *)
let umul128 (a : int64) (b : int64) : int64 * int64 =
  let lo32 = 0xFFFFFFFFL in
  let a0 = Int64.logand a lo32 and a1 = Int64.shift_right_logical a 32 in
  let b0 = Int64.logand b lo32 and b1 = Int64.shift_right_logical b 32 in
  let p00 = Int64.mul a0 b0 in
  let p01 = Int64.mul a0 b1 in
  let p10 = Int64.mul a1 b0 in
  let p11 = Int64.mul a1 b1 in
  let mid0 = Int64.add p01 p10 in
  let mid = Int64.add mid0 (Int64.shift_right_logical p00 32) in
  (* Either addition can carry out of 64 bits (p01 + p10 < 2^65 - 2^33,
     and adding p00 >> 32 < 2^32 can push a sum just below 2^64 over the
     edge); at most one of the two carries fires for any given inputs,
     so a single 2^32 correction term suffices — but both comparisons
     are needed.  Checking only the first add loses the high bit for
     operands like 0xFFFFFFFFFFFFFFFF * 0x00000002FFFFFFFF. *)
  let carry_mid =
    if Int64.unsigned_compare mid0 p01 < 0 || Int64.unsigned_compare mid mid0 < 0 then
      0x100000000L
    else 0L
  in
  let lo = Int64.logor (Int64.shift_left mid 32) (Int64.logand p00 lo32) in
  let hi =
    Int64.add (Int64.add p11 (Int64.shift_right_logical mid 32)) carry_mid
  in
  (hi, lo)

(* Signed 64x64 -> 128: adjust the unsigned product. *)
let smul128 (a : int64) (b : int64) : int64 * int64 =
  let hi, lo = umul128 a b in
  let hi = if Int64.compare a 0L < 0 then Int64.sub hi b else hi in
  let hi = if Int64.compare b 0L < 0 then Int64.sub hi a else hi in
  (hi, lo)

(* ------------------------------------------------------------------ *)
(* Overflow predicates (nsw / nuw / exact)                             *)
(* ------------------------------------------------------------------ *)

let add_nuw_overflows a b =
  same_width a b;
  if a.width < 64 then
    Int64.unsigned_compare (Int64.add a.v b.v) (mask_of_width a.width) > 0
  else Int64.unsigned_compare (Int64.add a.v b.v) a.v < 0

let add_nsw_overflows a b =
  same_width a b;
  if a.width < 64 then begin
    let s = Int64.add (sext64 a) (sext64 b) in
    Int64.compare s (sext64 (max_signed a.width)) > 0
    || Int64.compare s (sext64 (min_signed a.width)) < 0
  end
  else begin
    let sa = sext64 a and sb = sext64 b in
    let s = Int64.add sa sb in
    (Int64.compare sa 0L >= 0) = (Int64.compare sb 0L >= 0)
    && (Int64.compare s 0L >= 0) <> (Int64.compare sa 0L >= 0)
  end

let sub_nuw_overflows a b = same_width a b; Int64.unsigned_compare a.v b.v < 0

let sub_nsw_overflows a b =
  same_width a b;
  if a.width < 64 then begin
    let s = Int64.sub (sext64 a) (sext64 b) in
    Int64.compare s (sext64 (max_signed a.width)) > 0
    || Int64.compare s (sext64 (min_signed a.width)) < 0
  end
  else begin
    let sa = sext64 a and sb = sext64 b in
    let s = Int64.sub sa sb in
    (Int64.compare sa 0L >= 0) <> (Int64.compare sb 0L >= 0)
    && (Int64.compare s 0L >= 0) <> (Int64.compare sa 0L >= 0)
  end

let mul_nuw_overflows a b =
  same_width a b;
  if a.width <= 32 then
    Int64.unsigned_compare (Int64.mul a.v b.v) (mask_of_width a.width) > 0
  else begin
    let hi, lo = umul128 a.v b.v in
    if a.width = 64 then not (Int64.equal hi 0L)
    else
      (not (Int64.equal hi 0L))
      || Int64.unsigned_compare lo (mask_of_width a.width) > 0
  end

let mul_nsw_overflows a b =
  same_width a b;
  if a.width <= 32 then begin
    let s = Int64.mul (sext64 a) (sext64 b) in
    Int64.compare s (sext64 (max_signed a.width)) > 0
    || Int64.compare s (sext64 (min_signed a.width)) < 0
  end
  else begin
    let hi, lo = smul128 (sext64 a) (sext64 b) in
    if a.width = 64 then
      (* fits iff hi is the sign-extension of lo *)
      not (Int64.equal hi (Int64.shift_right lo 63))
    else begin
      (* product must lie in [-2^(w-1), 2^(w-1)-1]; since |operands| <
         2^63 the product fits in the signed 128 given by (hi,lo); check
         hi is sign extension of lo and lo within range after sext *)
      let fits64 = Int64.equal hi (Int64.shift_right lo 63) in
      fits64
      && (Int64.compare lo (sext64 (max_signed a.width)) > 0
          || Int64.compare lo (sext64 (min_signed a.width)) < 0)
      || not fits64
    end
  end

let shl_nuw_overflows a n =
  (* some one-bit shifted past the top *)
  check_shift a n;
  if n = 0 then false
  else not (is_zero (lshr a (a.width - n)))

let shl_nsw_overflows a n =
  check_shift a n;
  if n = 0 then false
  else
    (* nsw shl overflows unless all shifted-out bits plus the resulting
       sign bit equal the original sign bit *)
    let res = shl a n in
    not (equal (ashr res n) a)

let udiv_exact a b = is_zero (urem a b)
let sdiv_exact a b = if sdiv_overflows a b then false else is_zero (srem a b)

let lshr_exact a n = n = 0 || is_zero (extract a ~hi:(n - 1) ~lo:0)
let ashr_exact = lshr_exact

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let popcount t =
  let rec go acc v =
    if Int64.equal v 0L then acc
    else go (acc + 1) (Int64.logand v (Int64.sub v 1L))
  in
  go 0 t.v

let is_power_of_two t = popcount t = 1

let count_leading_zeros t =
  let rec go i = if i < 0 then t.width else if get_bit t i then t.width - 1 - i else go (i - 1) in
  go (t.width - 1)

let count_trailing_zeros t =
  let rec go i = if i >= t.width then t.width else if get_bit t i then i else go (i + 1) in
  go 0

(* ------------------------------------------------------------------ *)
(* Printing / parsing                                                  *)
(* ------------------------------------------------------------------ *)

let to_string_unsigned t = Printf.sprintf "%Lu" t.v
let to_string_signed t = Printf.sprintf "%Ld" (sext64 t)

let to_string t =
  (* Render the way LLVM prints constants: as signed decimal. *)
  to_string_signed t

let pp ppf t = Fmt.pf ppf "%s" (to_string t)
let pp_typed ppf t = Fmt.pf ppf "i%d %s" t.width (to_string t)

let of_string ~width s =
  check_width width;
  let s = String.trim s in
  let v =
    if String.length s > 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      Int64.of_string ("0x" ^ String.sub s 2 (String.length s - 2))
    else Int64.of_string s
  in
  make ~width v

(* Successor in unsigned order, for exhaustive enumeration; None on wrap. *)
let next t =
  if is_all_ones t then None else Some (add t (one t.width))

let fold_all ~width ~init ~f =
  (* Iterate all 2^width values; only sensible for small widths. *)
  if width > 24 then invalid_arg "Bitvec.fold_all: width too large";
  let n = 1 lsl width in
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := f !acc (of_int ~width i)
  done;
  !acc

let all ~width =
  if width > 24 then invalid_arg "Bitvec.all: width too large";
  List.init (1 lsl width) (fun i -> of_int ~width i)
