(* Growable arrays with amortized O(1) push, used for the SAT solver's
   watch lists and learned-clause database.  A [dummy] element fills the
   unused tail so the structure works for any element type without
   Obj.magic. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

(* Capacity 0 shares the empty-array atom: a freshly created vector
   costs one record and nothing else, which matters when a solver
   allocates two watch vectors per variable up front. *)
let create ?(capacity = 0) (dummy : 'a) : 'a t =
  { data = (if capacity <= 0 then [||] else Array.make capacity dummy); len = 0; dummy }

let length v = v.len

let get (v : 'a t) i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set (v : 'a t) i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let grow v =
  let cap = Array.length v.data in
  let data = Array.make (max 4 (2 * cap)) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push (v : 'a t) x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop (v : 'a t) : 'a =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let clear (v : 'a t) =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

(* Truncate to [len] elements (len <= length). *)
let shrink (v : 'a t) len =
  if len < 0 || len > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data len (v.len - len) v.dummy;
  v.len <- len

(* Keep only elements satisfying [p], preserving order. *)
let filter_in_place (p : 'a -> bool) (v : 'a t) =
  let j = ref 0 in
  for i = 0 to v.len - 1 do
    let x = v.data.(i) in
    if p x then begin
      v.data.(!j) <- x;
      incr j
    end
  done;
  shrink v !j

let iter f (v : 'a t) =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let exists p (v : 'a t) =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list (v : 'a t) : 'a list =
  let rec go i acc = if i < 0 then acc else go (i - 1) (v.data.(i) :: acc) in
  go (v.len - 1) []

let of_list (dummy : 'a) (xs : 'a list) : 'a t =
  let v = create ~capacity:(max 1 (List.length xs)) dummy in
  List.iter (push v) xs;
  v
