(* opt-fuzz: exhaustive enumeration of small IR functions (Section 6,
   "Testing the prototype": "all LLVM functions with three instructions
   over 2-bit integer arithmetic"), plus a seeded random generator for
   the LNT-scale corpus of Section 7.

   The exhaustive space is parameterized by the opcode set, bit width,
   instruction count and constant pool, because the full cross product is
   astronomically large; the defaults match what the validation bench can
   afford while still covering every opcode/attribute combination that
   matters for the semantics. *)

open Ub_support
open Ub_ir
open Instr

type opcode =
  | Obin of binop * attrs
  | Oicmp of icmp_pred
  | Oselect
  | Ofreeze

let default_ops =
  [ Obin (Add, no_attrs);
    Obin (Add, nsw_only);
    Obin (Sub, no_attrs);
    Obin (Mul, no_attrs);
    Obin (And, no_attrs);
    Obin (Or, no_attrs);
    Obin (Xor, no_attrs);
    Obin (Shl, no_attrs);
    Obin (UDiv, no_attrs);
    Oicmp Eq;
    Oicmp Slt;
    Oselect;
    Ofreeze;
  ]

type params = {
  width : int; (* the integer width (2 in the paper) *)
  n_insns : int; (* instructions per function (3 in the paper) *)
  n_args : int;
  ops : opcode list;
  consts : int list; (* constant pool *)
  include_undef : bool; (* old modes: undef appears as an operand *)
  include_poison : bool;
}

let default_params =
  { width = 2;
    n_insns = 3;
    n_args = 2;
    ops = default_ops;
    consts = [ 0; 1 ];
    include_undef = false;
    include_poison = true;
  }

(* All operands available at instruction index [k] (0-based): arguments,
   results %v0..%v(k-1) of integer type, constants, undef/poison. *)
let operand_universe (p : params) (k : int) ~(bool_defs : int list) ~(want_bool : bool) :
    operand list =
  let ty = Types.Int (if want_bool then 1 else p.width) in
  let vars =
    if want_bool then List.map (fun i -> Var (Printf.sprintf "v%d" i)) bool_defs
    else
      List.init k (fun i -> i)
      |> List.filter_map (fun i ->
             if List.mem i bool_defs then None else Some (Var (Printf.sprintf "v%d" i)))
  in
  let args =
    if want_bool then []
    else List.init p.n_args (fun i -> Var (Printf.sprintf "a%d" i))
  in
  let consts =
    if want_bool then [ Const (Constant.bool true); Const (Constant.bool false) ]
    else List.map (fun c -> Const (Constant.of_int ~width:p.width c)) p.consts
  in
  let extra =
    (if p.include_undef then [ Const (Constant.Undef ty) ] else [])
    @ if p.include_poison then [ Const (Constant.Poison ty) ] else []
  in
  args @ vars @ consts @ extra

(* Build the function from a list of (opcode, operand choice indices). *)
let build (p : params) (choices : (opcode * operand list) list) : Func.t =
  let ity = Types.Int p.width in
  let insns =
    List.mapi
      (fun k (op, operands) ->
        let def = Some (Printf.sprintf "v%d" k) in
        match (op, operands) with
        | Obin (bop, attrs), [ a; b ] -> { Instr.def; ins = Binop (bop, attrs, ity, a, b) }
        | Oicmp pred, [ a; b ] -> { Instr.def; ins = Icmp (pred, ity, a, b) }
        | Oselect, [ c; a; b ] -> { Instr.def; ins = Select (c, ity, a, b) }
        | Ofreeze, [ a ] -> { Instr.def; ins = Freeze (ity, a) }
        | _ -> invalid_arg "Gen.build: arity mismatch")
      choices
  in
  (* return the last width-typed def; if the last def is an icmp (i1),
     return that with i1 *)
  let last = p.n_insns - 1 in
  let last_is_bool =
    match List.nth choices last with Oicmp _, _ -> true | _ -> false
  in
  let ret_ty = if last_is_bool then Types.Int 1 else ity in
  { Func.name = "f";
    args = List.init p.n_args (fun i -> (Printf.sprintf "a%d" i, ity));
    ret_ty = Some ret_ty;
    blocks =
      [ { Func.label = "entry";
          insns;
          term = Ret (ret_ty, Var (Printf.sprintf "v%d" last));
        }
      ];
  }

(* Exhaustively enumerate; calls [f] on each function; returns the count.
   [limit] truncates the enumeration (the bench reports when it did). *)
let enumerate ?(limit = max_int) (p : params) (f : Func.t -> unit) : int * bool =
  let count = ref 0 in
  let truncated = ref false in
  (* bool_defs: indices whose result is i1 (icmp results) *)
  let rec go k (acc : (opcode * operand list) list) (bool_defs : int list) =
    if !count >= limit then truncated := true
    else if k = p.n_insns then begin
      incr count;
      f (build p (List.rev acc))
    end
    else
      List.iter
        (fun op ->
          if !count < limit then begin
            let slots =
              match op with
              | Obin _ | Oicmp _ ->
                [ operand_universe p k ~bool_defs ~want_bool:false;
                  operand_universe p k ~bool_defs ~want_bool:false;
                ]
              | Oselect ->
                [ operand_universe p k ~bool_defs ~want_bool:true;
                  operand_universe p k ~bool_defs ~want_bool:false;
                  operand_universe p k ~bool_defs ~want_bool:false;
                ]
              | Ofreeze -> [ operand_universe p k ~bool_defs ~want_bool:false ]
            in
            let bool_defs' = match op with Oicmp _ -> k :: bool_defs | _ -> bool_defs in
            let rec pick chosen = function
              | [] -> go (k + 1) ((op, List.rev chosen) :: acc) bool_defs'
              | slot :: rest ->
                List.iter (fun o -> if !count < limit then pick (o :: chosen) rest) slot
            in
            pick [] slots
          end)
        p.ops
  in
  go 0 [] [];
  (!count, !truncated)

(* ------------------------------------------------------------------ *)
(* Random corpus (the LNT stand-in)                                    *)
(* ------------------------------------------------------------------ *)

(* A random function: straight-line arithmetic regions, optional single
   counted loop, i32 types, occasional freeze-worthy idioms (select with
   constant arm, bit tests). *)
let random_func (rng : Prng.t) ~(name : string) : Func.t =
  let width = 32 in
  let ity = Types.Int width in
  let b = Builder.create ~name ~args:[ ("a", ity); ("b", ity); ("c", ity) ] ~ret_ty:ity () in
  Builder.start_block b "entry";
  let pool = ref [ Instr.Var "a"; Instr.Var "b"; Instr.Var "c" ] in
  let rand_op () =
    if Prng.chance rng ~num:1 ~den:5 then Builder.const_i ~width (Prng.int rng 64)
    else Prng.choose_list rng !pool
  in
  let emit_arith n =
    for _ = 1 to n do
      let x = rand_op () and y = rand_op () in
      let v =
        match Prng.int rng 10 with
        | 0 -> Builder.add ~attrs:Instr.nsw_only b ity x y
        | 1 -> Builder.sub b ity x y
        | 2 -> Builder.mul b ity x y
        | 3 -> Builder.and_ b ity x y
        | 4 -> Builder.or_ b ity x y
        | 5 -> Builder.xor b ity x y
        | 6 -> Builder.shl b ity x (Builder.const_i ~width (Prng.int rng 31))
        | 7 -> Builder.lshr b ity x (Builder.const_i ~width (Prng.int rng 31))
        | 8 ->
          let c = Builder.icmp b Instr.Slt ity x y in
          Builder.select b c ity x y
        | _ ->
          let c = Builder.icmp b Instr.Eq ity x (Builder.const_i ~width 0) in
          Builder.select b c ity (Builder.const_i ~width 1) y
      in
      pool := v :: !pool
    done
  in
  emit_arith (3 + Prng.int rng 8);
  (* boolean-select idioms (select c, true, d / select c, d, false): these
     are where the legacy and freeze pipelines genuinely diverge
     (Section 3.4), so a realistic corpus needs them *)
  if Prng.chance rng ~num:2 ~den:5 then begin
    let x = Prng.choose_list rng !pool and y = Prng.choose_list rng !pool in
    let c1 = Builder.icmp b Instr.Slt ity x y in
    let c2 = Builder.icmp b Instr.Ne ity y (Builder.const_i ~width 0) in
    let s =
      if Prng.bool rng then Builder.select b c1 (Types.Int 1) (Builder.const_bool true) c2
      else Builder.select b c1 (Types.Int 1) c2 (Builder.const_bool false)
    in
    pool := Builder.zext b ~from:(Types.Int 1) ~to_:ity s :: !pool
  end;
  if Prng.bool rng then begin
    (* a counted loop accumulating into one value *)
    let acc0 = Prng.choose_list rng !pool in
    let trip = 1 + Prng.int rng 15 in
    Builder.br b "loop.h";
    Builder.start_block b "loop.h";
    let i = Builder.phi b ity [ (Builder.const_i ~width 0, "entry") ] in
    let acc = Builder.phi b ity [ (acc0, "entry") ] in
    let c = Builder.icmp b Instr.Slt ity i (Builder.const_i ~width trip) in
    Builder.cond_br b c "loop.b" "loop.x";
    Builder.start_block b "loop.b";
    let acc1 =
      if Prng.bool rng then Builder.add ~attrs:Instr.nsw_only b ity acc i
      else Builder.xor b ity acc (Builder.shl b ity i (Builder.const_i ~width 1))
    in
    let i1 = Builder.add ~attrs:Instr.nsw_only b ity i (Builder.const_i ~width 1) in
    Builder.br b "loop.h";
    (* patch the phis *)
    (match (i, acc) with
    | Instr.Var iv, Instr.Var accv ->
      Builder.patch_phi b "loop.h" iv (i1, "loop.b");
      Builder.patch_phi b "loop.h" accv (acc1, "loop.b")
    | _ -> assert false);
    Builder.start_block b "loop.x";
    pool := acc :: !pool
  end;
  emit_arith (1 + Prng.int rng 4);
  Builder.ret b ity (Prng.choose_list rng !pool);
  Builder.finish b

let random_corpus ~seed ~size : Func.t list =
  let rng = Prng.create ~seed in
  List.init size (fun i -> random_func rng ~name:(Printf.sprintf "lnt_%04d" i))

(* ------------------------------------------------------------------ *)
(* Hunt corpus (the campaign engine's generator)                       *)
(* ------------------------------------------------------------------ *)

(* Small functions over narrow integers, heavily biased toward the
   idioms the injected-bug catalog (lib/opt/inject.ml) rewrites: nsw
   adds and their chains, freeze-of-nsw, mul-by-2 / shl-by-1, unsigned
   division, i1 selects with constant or undef arms, and (optionally) a
   diamond with an equality branch, arm divisions and a phi merge.
   Narrow widths keep the refinement checks fast enough to stream. *)

type hunt_params = {
  h_width : int; (* integer width (2 keeps the oracle cheap) *)
  h_insns : int; (* straight-line instruction budget *)
  h_undef : bool; (* emit undef operands (old modes only) *)
  h_cfg : bool; (* emit a branch/phi diamond *)
  h_mem : bool; (* emit allocations, loads/stores, int/ptr casts *)
  h_backend : bool; (* emit backend-hunting shapes (see [backend_func]) *)
}

let default_hunt =
  { h_width = 2;
    h_insns = 5;
    h_undef = false;
    h_cfg = false;
    h_mem = false;
    h_backend = false;
  }

(* ------------------------------------------------------------------ *)
(* Backend corpus (IRFuzzer-style lowering stressors)                  *)
(* ------------------------------------------------------------------ *)

(* Programs shaped to exercise the IR->MIR lowering rather than the IR
   optimizer: phi-heavy loop skeletons with swap cycles (parallel-move
   elimination), icmp->select chains (Test/Cmov pairs), equality
   diamonds over a widened value (protected-branch constant contexts),
   and a register-pressure region sized to force exactly the spills the
   allocator supports.  Widths are mixed through zext/sext/trunc so
   sub-register-class values with garbage high bits flow into compares,
   shifts and divisions.

   Two shape constraints matter for recall:
   - the swap loop's trip count is odd — an even number of swaps returns
     the registers to their initial assignment, and a sequentialized
     (buggy) parallel move then coincides with the correct one;
   - the pressure region keeps the verified 14-value shape: the linear
     scan allocator asserts at most two spilled intervals, so a larger
     region would crash it rather than stress it. *)
let backend_func (rng : Prng.t) ~(name : string) (p : hunt_params) : Func.t =
  let w = p.h_width in
  let ity = Types.Int w in
  let i8 = Types.Int 8 in
  let b = Builder.create ~name ~args:[ ("a0", ity); ("a1", ity) ] ~ret_ty:ity () in
  Builder.start_block b "entry";
  let pool = ref [ Var "a0"; Var "a1" ] in
  let push v = pool := v :: !pool in
  let operand () =
    if Prng.chance rng ~num:1 ~den:6 then
      Const (Constant.of_int ~width:w (Prng.int rng (1 lsl min w 4)))
    else Prng.choose_list rng !pool
  in
  let select_chain () =
    let c =
      Builder.icmp b (if Prng.bool rng then Instr.Slt else Instr.Ult) ity (operand ())
        (operand ())
    in
    push (Builder.select b c ity (operand ()) (operand ()));
    if Prng.bool rng then begin
      let c2 = Builder.icmp b Instr.Eq ity (operand ()) (operand ()) in
      push (Builder.select b c2 ity (operand ()) (operand ()))
    end
  in
  let swap_loop () =
    (* a counted loop with a swapped phi pair: x/y trade places each
       iteration, an odd number of times *)
    let i4 = Types.Int 4 in
    let x0 = operand () and y0 = operand () in
    (* the loop takes its back edge (trip - 1) times, and the swap must
       execute an odd number of times — see the shape note above *)
    let trip = if Prng.bool rng then 4 else 6 in
    Builder.br b "loop";
    Builder.start_block b "loop";
    let x = Builder.phi b ity [ (x0, "entry") ] in
    let y = Builder.phi b ity [ (y0, "entry") ] in
    let i = Builder.phi b i4 [ (Builder.const_i ~width:4 0, "entry") ] in
    let i1 = Builder.add b i4 i (Builder.const_i ~width:4 1) in
    let c = Builder.icmp b Instr.Ult i4 i1 (Builder.const_i ~width:4 trip) in
    Builder.cond_br b c "loop" "after";
    (match (x, y, i) with
    | Instr.Var xv, Instr.Var yv, Instr.Var iv ->
      Builder.patch_phi b "loop" xv (y, "loop");
      Builder.patch_phi b "loop" yv (x, "loop");
      Builder.patch_phi b "loop" iv (i1, "loop")
    | _ -> assert false);
    Builder.start_block b "after";
    (* observe both halves of the swap: x alone, and x - y *)
    push (Builder.sub b ity x y);
    push x
  in
  let diamond () =
    (* an equality-protected diamond over a widened value: both arms
       reuse the compared register, the else arm is exactly where a
       constant-propagation bug would substitute the compared constant *)
    let z = Builder.zext b ~from:ity ~to_:i8 (Prng.choose_list rng !pool) in
    let k = 1 + Prng.int rng 3 in
    let c = Builder.icmp b Instr.Eq i8 z (Builder.const_i ~width:8 k) in
    Builder.cond_br b c "t" "e";
    Builder.start_block b "t";
    let tv = Builder.add b i8 z (Builder.const_i ~width:8 (Prng.int rng 8)) in
    Builder.br b "m";
    Builder.start_block b "e";
    let ev = Builder.add b i8 z (Builder.const_i ~width:8 (1 + Prng.int rng 8)) in
    Builder.br b "m";
    Builder.start_block b "m";
    let m = Builder.phi b i8 [ (tv, "t"); (ev, "e") ] in
    push (Builder.trunc b ~from:i8 ~to_:ity m)
  in
  let pressure () =
    (* 14 simultaneously-live i8 values plus the two widened arguments:
       the verified shape that spills exactly two intervals *)
    let xa = Builder.zext b ~from:ity ~to_:i8 (Var "a0") in
    let xb = Builder.zext b ~from:ity ~to_:i8 (Var "a1") in
    let vs =
      List.init 14 (fun i ->
          Builder.add b i8
            (if i mod 2 = 0 then xa else xb)
            (Builder.const_i ~width:8 (Prng.int rng 16)))
    in
    let sum = List.fold_left (fun acc v -> Builder.add b i8 acc v) (List.hd vs) (List.tl vs) in
    push (Builder.trunc b ~from:i8 ~to_:ity sum)
  in
  let width_mix () =
    match Prng.int rng 3 with
    | 0 ->
      let s = Builder.sext b ~from:ity ~to_:i8 (Prng.choose_list rng !pool) in
      let t = Builder.add b i8 s (Builder.const_i ~width:8 (Prng.int rng 16)) in
      push (Builder.trunc b ~from:i8 ~to_:ity t)
    | 1 -> push (Builder.xor b ity (operand ()) (operand ()))
    | _ -> push (Builder.sub b ity (operand ()) (operand ()))
  in
  (match Prng.int rng 3 with
  | 0 ->
    swap_loop ();
    select_chain ();
    if Prng.bool rng then width_mix ()
  | 1 ->
    if Prng.bool rng then select_chain ();
    swap_loop ();
    diamond ()
  | _ ->
    pressure ();
    if Prng.bool rng then select_chain ());
  width_mix ();
  let r =
    let n = List.length !pool in
    List.nth !pool (Prng.int rng (min 3 n))
  in
  Builder.ret b ity r;
  Builder.finish b

let rec hunt_func (rng : Prng.t) ~(name : string) (p : hunt_params) : Func.t =
  if p.h_backend then backend_func rng ~name p
  else hunt_func_ir rng ~name p

and hunt_func_ir (rng : Prng.t) ~(name : string) (p : hunt_params) : Func.t =
  let w = p.h_width in
  let ity = Types.Int w in
  let b = Builder.create ~name ~args:[ ("a0", ity); ("a1", ity) ] ~ret_ty:ity () in
  Builder.start_block b "entry";
  let pool = ref [ Var "a0"; Var "a1" ] in
  let bools = ref [] in
  let push v = pool := v :: !pool in
  let operand () =
    match Prng.int rng 10 with
    | 0 -> Const (Constant.of_int ~width:w (Prng.int rng (1 lsl min w 4)))
    | 1 when p.h_undef -> Const (Constant.Undef ity)
    | 2 -> Const (Constant.Poison ity)
    | _ -> Prng.choose_list rng !pool
  in
  (* a boolean operand: an existing one, or a fresh icmp over the pool
     (possibly-poison operands, so i1 work is semantically interesting);
     constants only occasionally *)
  let bool_op () =
    match !bools with
    | bs when bs <> [] && Prng.chance rng ~num:2 ~den:3 -> Prng.choose_list rng bs
    | _ when Prng.chance rng ~num:1 ~den:5 -> Const (Constant.bool (Prng.bool rng))
    | _ ->
      let c =
        Builder.icmp b (if Prng.bool rng then Instr.Eq else Instr.Slt) ity (operand ())
          (operand ())
      in
      bools := c :: !bools;
      c
  in
  let emit_one () =
    match Prng.int rng 12 with
    | 0 -> push (Builder.add ~attrs:Instr.nsw_only b ity (operand ()) (operand ()))
    | 1 ->
      (* a single-use chain of nsw adds: reassoc-nsw's pattern *)
      let t = Builder.add ~attrs:Instr.nsw_only b ity (operand ()) (operand ()) in
      push (Builder.add ~attrs:Instr.nsw_only b ity t (operand ()))
    | 2 ->
      (* freeze of an nsw add: freeze-hoist-nsw's pattern *)
      let t = Builder.add ~attrs:Instr.nsw_only b ity (operand ()) (operand ()) in
      push (Builder.freeze b ity t)
    | 3 -> push (Builder.mul b ity (operand ()) (Builder.const_i ~width:w 2))
    | 4 -> push (Builder.shl b ity (operand ()) (Builder.const_i ~width:w 1))
    | 5 -> push (Builder.udiv b ity (operand ()) (operand ()))
    | 6 -> push (Builder.freeze b ity (operand ()))
    | 7 ->
      let c =
        Builder.icmp b (if Prng.bool rng then Instr.Eq else Instr.Slt) ity (operand ())
          (operand ())
      in
      bools := c :: !bools;
      push (Builder.select b c ity (operand ()) (operand ()))
    | 8 ->
      (* i1 select with a constant arm: the select->arith patterns *)
      let c = bool_op () and x = bool_op () in
      let s =
        if Prng.bool rng then Builder.select b c Types.i1 (Builder.const_bool true) x
        else Builder.select b c Types.i1 x (Builder.const_bool false)
      in
      bools := s :: !bools;
      (* usually lift the select itself into the pool — an i1 select
         that never reaches the return can't witness anything *)
      if Prng.chance rng ~num:2 ~den:3 then
        push (Builder.zext b ~from:Types.i1 ~to_:ity s)
    | 9 when p.h_undef ->
      (* select with an undef arm: select-undef-arm's pattern *)
      push (Builder.select b (bool_op ()) ity (operand ()) (Builder.undef ity))
    | 10 -> push (Builder.sub b ity (operand ()) (operand ()))
    | _ -> push (Builder.xor b ity (operand ()) (operand ()))
  in
  for _ = 1 to 1 + Prng.int rng p.h_insns do
    emit_one ()
  done;
  if p.h_mem then begin
    (* a small heap region with the idioms the memory entries rewrite:
       a 1/2/4-byte buffer, stores through it and through a
       ptrtoint/inttoptr alias (store-forward-alias), loads that flow to
       the return (load-widen-oob), a pointer-to-pointer cell
       (store-ptr-int), buffers whose result is never dereferenced
       (malloc-to-alloca under the finite phase), and the occasional
       free *)
    let i8 = Types.Int 8 in
    let pi8 = Types.Ptr i8 in
    let i32 = Types.Int 32 in
    let byte () =
      if Prng.bool rng then Builder.const_i ~width:8 (Prng.int rng 256)
      else Builder.zext b ~from:ity ~to_:i8 (Prng.choose_list rng !pool)
    in
    let size = [| 1; 2; 4 |].(Prng.int rng 3) in
    let p0 = Builder.call b (Some pi8) "malloc" [ (i32, Builder.const_i ~width:32 size) ] in
    if Prng.chance rng ~num:2 ~den:3 then Builder.store b i8 (byte ()) p0;
    if Prng.bool rng then begin
      let ia = Builder.ptrtoint b ~from:pi8 ~to_:i32 p0 in
      let q = Builder.inttoptr b ~from:i32 ~to_:pi8 ia in
      if Prng.chance rng ~num:2 ~den:3 then Builder.store b i8 (byte ()) q
      else push (Builder.trunc b ~from:i32 ~to_:ity ia)
    end;
    if Prng.chance rng ~num:1 ~den:3 then begin
      let pp =
        Builder.call b (Some (Types.Ptr pi8)) "malloc" [ (i32, Builder.const_i ~width:32 4) ]
      in
      Builder.store b pi8 p0 pp
    end;
    if Prng.chance rng ~num:2 ~den:3 then begin
      let x = Builder.load b i8 p0 in
      push (Builder.trunc b ~from:i8 ~to_:ity x)
    end;
    if Prng.chance rng ~num:1 ~den:6 then Builder.call_void b "free" [ (pi8, p0) ]
  end;
  (* lift a boolean into the pool so i1 work can reach the return *)
  (match !bools with
  | [] -> ()
  | bs when Prng.chance rng ~num:3 ~den:4 ->
    push (Builder.zext b ~from:Types.i1 ~to_:ity (Prng.choose_list rng bs))
  | _ -> ());
  if p.h_cfg then begin
    (* a diamond: the branch condition is often an equality compare
       whose right-hand side also flows into the then-arm
       (gvn-eq-propagate), arms are sometimes empty (phi-select) and
       sometimes divide (spec-div-hoist) *)
    let cy = operand () in
    let c =
      if !bools <> [] && Prng.chance rng ~num:1 ~den:3 then Prng.choose_list rng !bools
      else Builder.icmp b Instr.Eq ity (Prng.choose_list rng !pool) cy
    in
    Builder.cond_br b c "t" "e";
    Builder.start_block b "t";
    let tval =
      match Prng.int rng 4 with
      | 0 -> cy (* the "known equal" value: gvn-eq-propagate's payoff *)
      | 1 -> Builder.udiv b ity (Prng.choose_list rng !pool) (Prng.choose_list rng !pool)
      | 2 -> Builder.add ~attrs:Instr.nsw_only b ity (Prng.choose_list rng !pool) (operand ())
      | _ -> Prng.choose_list rng !pool
    in
    Builder.br b "m";
    Builder.start_block b "e";
    let eval_ =
      match Prng.int rng 3 with
      | 0 -> Builder.xor b ity (Prng.choose_list rng !pool) (operand ())
      | _ -> Prng.choose_list rng !pool
    in
    Builder.br b "m";
    Builder.start_block b "m";
    push (Builder.phi b ity [ (tval, "t"); (eval_, "e") ])
  end;
  (* return a recent value so the buggy instruction tends to be live *)
  let r =
    let n = List.length !pool in
    List.nth !pool (Prng.int rng (min 3 n))
  in
  Builder.ret b ity r;
  Builder.finish b
