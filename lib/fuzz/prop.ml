(* A small property-based testing layer: generators paired with
   shrinkers, seeded by [Ub_support.Prng] so every run is reproducible
   from its integer seed.  On failure the counterexample is greedily
   shrunk (first-improvement, like [Ub_shrink.Reduce]) and persisted to
   a corpus directory when one is given, so a red CI run leaves behind
   the minimized input that broke it.

   The [func] arbitrary ties the layer to the IR: random functions from
   [Gen.random_func], shrunk through the full reduction-edit catalogue
   of [Ub_shrink.Reduce.shrink_candidates] — which is exactly how the
   round-trip laws in test/test_prop.ml exercise every shrink pass. *)

open Ub_support

type 'a arbitrary = {
  gen : Prng.t -> 'a;
  shrink : 'a -> 'a list;
  show : 'a -> string;
}

let make ?(shrink = fun _ -> []) ~(show : 'a -> string) (gen : Prng.t -> 'a) :
    'a arbitrary =
  { gen; shrink; show }

let int_range lo hi : int arbitrary =
  if hi < lo then invalid_arg "Prop.int_range";
  { gen = (fun rng -> lo + Prng.int rng (hi - lo + 1));
    shrink =
      (fun n ->
        List.sort_uniq compare [ lo; lo + ((n - lo) / 2); n - 1 ]
        |> List.filter (fun m -> m >= lo && m < n));
    show = string_of_int;
  }

let bool : bool arbitrary =
  { gen = Prng.bool; shrink = (function true -> [ false ] | false -> []); show = string_of_bool }

let pair (a : 'a arbitrary) (b : 'b arbitrary) : ('a * 'b) arbitrary =
  { gen =
      (fun rng ->
        let x = a.gen rng in
        let y = b.gen rng in
        (x, y));
    shrink =
      (fun (x, y) ->
        List.map (fun x' -> (x', y)) (a.shrink x)
        @ List.map (fun y' -> (x, y')) (b.shrink y));
    show = (fun (x, y) -> Printf.sprintf "(%s, %s)" (a.show x) (b.show y));
  }

let list_of ?(max_len = 8) (a : 'a arbitrary) : 'a list arbitrary =
  let rec drop_one = function
    | [] -> []
    | x :: xs -> xs :: List.map (fun ys -> x :: ys) (drop_one xs)
  in
  let shrink_elem xs =
    List.concat
      (List.mapi
         (fun i x ->
           List.map (fun x' -> List.mapi (fun j y -> if j = i then x' else y) xs) (a.shrink x))
         xs)
  in
  { gen =
      (fun rng ->
        let len = Prng.int rng (max_len + 1) in
        List.init len (fun _ -> a.gen rng));
    shrink =
      (fun xs ->
        let n = List.length xs in
        (if n > 1 then [ Util.take (n / 2) xs ] else [])
        @ drop_one xs @ shrink_elem xs);
    show = (fun xs -> "[" ^ String.concat "; " (List.map a.show xs) ^ "]");
  }

(* Random IR functions, shrunk through the reduction-edit catalogue
   (every candidate is already validated by the engine). *)
let func ?(name = "pt") () : Ub_ir.Func.t arbitrary =
  { gen = (fun rng -> Gen.random_func rng ~name);
    shrink = Ub_shrink.Reduce.shrink_candidates;
    show = Ub_ir.Printer.func_to_string;
  }

(* ------------------------------------------------------------------ *)
(* Running a property                                                  *)
(* ------------------------------------------------------------------ *)

type failure = {
  attempt : int; (* 0-based index of the failing generation *)
  original : string;
  minimized : string;
  shrink_steps : int;
  error : string; (* "returned false" or the exception *)
  corpus_file : string option;
}

type 'a outcome =
  | Passed of int (* number of cases run *)
  | Failed of 'a * failure

(* [None] = property holds; [Some reason] = it does not. *)
let eval (prop : 'a -> bool) (x : 'a) : string option =
  match prop x with
  | true -> None
  | false -> Some "property returned false"
  | exception e -> Some ("raised " ^ Printexc.to_string e)

let shrink_failure (arb : 'a arbitrary) (prop : 'a -> bool) (x0 : 'a) (err0 : string)
    ?(max_steps = 500) () : 'a * string * int =
  let steps = ref 0 in
  let rec go x err =
    if !steps >= max_steps then (x, err)
    else
      match
        List.find_map
          (fun c -> match eval prop c with Some e -> Some (c, e) | None -> None)
          (arb.shrink x)
      with
      | Some (c, e) ->
        incr steps;
        go c e
      | None -> (x, err)
  in
  let x, err = go x0 err0 in
  (x, err, !steps)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Corpus files are valid IR with a ';'-comment header, so a persisted
   counterexample can be re-parsed and replayed directly. *)
let persist ~dir ~prop_name ~seed (f : failure) : string =
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "%s-seed%d.cex" prop_name seed) in
  let oc = open_out path in
  Printf.fprintf oc
    "; property: %s\n; seed: %d\n; attempt: %d\n; error: %s\n; shrink steps: %d\n%s\n"
    prop_name seed f.attempt f.error f.shrink_steps f.minimized;
  close_out oc;
  path

let run ?(count = 100) ?(seed = 1) ?corpus_dir ~(name : string) (arb : 'a arbitrary)
    (prop : 'a -> bool) : 'a outcome =
  let rng = Prng.create ~seed in
  let rec go i =
    if i >= count then Passed count
    else begin
      let x = arb.gen rng in
      match eval prop x with
      | None -> go (i + 1)
      | Some err ->
        let x', err', steps = shrink_failure arb prop x err () in
        let f =
          { attempt = i;
            original = arb.show x;
            minimized = arb.show x';
            shrink_steps = steps;
            error = err';
            corpus_file = None;
          }
        in
        let f =
          match corpus_dir with
          | Some dir -> { f with corpus_file = Some (persist ~dir ~prop_name:name ~seed f) }
          | None -> f
        in
        Failed (x', f)
    end
  in
  go 0

(* Alcotest-friendly wrapper: raises [Failure] with the minimized
   counterexample in the message. *)
let check ?count ?seed ?corpus_dir ~(name : string) (arb : 'a arbitrary)
    (prop : 'a -> bool) : unit =
  match run ?count ?seed ?corpus_dir ~name arb prop with
  | Passed _ -> ()
  | Failed (_, f) ->
    failwith
      (Printf.sprintf
         "property %s failed on attempt %d (%s)%s; minimized after %d shrink step(s):\n%s"
         name f.attempt f.error
         (match f.corpus_file with Some p -> "; saved to " ^ p | None -> "")
         f.shrink_steps f.minimized)
