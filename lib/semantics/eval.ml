(* Evaluation of individual (non-memory, non-control) instructions under a
   semantics mode.  This file is the executable rendering of Figure 5 and
   of the alternative "old" semantics of Section 3.

   Conventions:
   - [Error msg] is immediate UB.
   - Each *use* of an undef scalar in an arithmetic context materializes
     an arbitrary concrete value through the oracle (Section 3.1: "each
     use of undef can yield a different result").  phi, select's chosen
     arm, freeze and return forward values without materializing.
   - In modes without undef, the undef constant denotes poison. *)

open Ub_support
open Ub_ir
open Instr

type 'a res = ('a, string) result

let ub fmt = Printf.ksprintf (fun s -> Error s) fmt

(* Normalize a value that entered the program as a constant: in modes
   without undef, [undef] means poison. *)
let normalize (mode : Mode.t) (v : Value.t) : Value.t =
  if mode.undef_enabled then v
  else
    match v with
    | Value.Scalar Value.Undef -> Value.Scalar Value.Poison
    | Value.Vector es ->
      Value.Vector (Array.map (function Value.Undef -> Value.Poison | s -> s) es)
    | v -> v

(* Materialize one use of a scalar: undef becomes an arbitrary concrete
   value of the width; poison stays poison. *)
let materialize (oracle : Oracle.t) ~width (s : Value.scalar) : Value.scalar =
  match s with
  | Value.Undef -> Value.Conc (oracle.choose ~width)
  | s -> s

(* Lift a per-lane operation over scalar/vector values of a common
   shape. *)
let lanewise2 (ty : Types.t) f (a : Value.t) (b : Value.t) : Value.t res =
  let la = Value.lanes a and lb = Value.lanes b in
  if Array.length la <> Array.length lb then invalid_arg "Eval.lanewise2: shape mismatch";
  let out = Array.make (Array.length la) Value.Poison in
  let rec go i =
    if i >= Array.length la then Ok (Value.of_lanes ty out)
    else
      match f la.(i) lb.(i) with
      | Ok s ->
        out.(i) <- s;
        go (i + 1)
      | Error e -> Error e
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Binary operations                                                   *)
(* ------------------------------------------------------------------ *)

let is_div = function UDiv | SDiv | URem | SRem -> true | _ -> false

let eval_binop_scalar (mode : Mode.t) (oracle : Oracle.t) op (attrs : attrs) ~width a b :
    Value.scalar res =
  (* Division checks the divisor *before* the poison-propagation rule:
     dividing by poison (which "could be" zero) is immediate UB in
     div_by_poison_ub modes, and dividing by a materialized undef that
     the oracle resolves to zero is UB as well. *)
  let a = materialize oracle ~width a in
  let b = materialize oracle ~width b in
  if is_div op then begin
    match b with
    | Value.Poison ->
      if mode.div_by_poison_ub then ub "division by poison" else Ok Value.Poison
    | Value.Undef -> assert false
    | Value.Conc bv when Bitvec.is_zero bv -> ub "division by zero"
    | Value.Conc _ -> (
      match a with
      | Value.Poison -> Ok Value.Poison
      | Value.Undef -> assert false
      | Value.Conc av -> (
        let bv = match b with Value.Conc x -> x | _ -> assert false in
        match op with
        | UDiv ->
          if attrs.exact && not (Bitvec.udiv_exact av bv) then Ok Value.Poison
          else Ok (Value.Conc (Bitvec.udiv av bv))
        | SDiv ->
          if Bitvec.sdiv_overflows av bv then ub "sdiv overflow (INT_MIN / -1)"
          else if attrs.exact && not (Bitvec.sdiv_exact av bv) then Ok Value.Poison
          else Ok (Value.Conc (Bitvec.sdiv av bv))
        | URem -> Ok (Value.Conc (Bitvec.urem av bv))
        | SRem ->
          if Bitvec.sdiv_overflows av bv then ub "srem overflow (INT_MIN / -1)"
          else Ok (Value.Conc (Bitvec.srem av bv))
        | _ -> assert false))
  end
  else
    match (a, b) with
    | Value.Poison, _ | _, Value.Poison -> Ok Value.Poison
    | Value.Undef, _ | _, Value.Undef -> assert false
    | Value.Conc x, Value.Conc y -> (
      match op with
      | Add ->
        if (attrs.nsw && Bitvec.add_nsw_overflows x y)
           || (attrs.nuw && Bitvec.add_nuw_overflows x y)
        then Ok Value.Poison
        else Ok (Value.Conc (Bitvec.add x y))
      | Sub ->
        if (attrs.nsw && Bitvec.sub_nsw_overflows x y)
           || (attrs.nuw && Bitvec.sub_nuw_overflows x y)
        then Ok Value.Poison
        else Ok (Value.Conc (Bitvec.sub x y))
      | Mul ->
        if (attrs.nsw && Bitvec.mul_nsw_overflows x y)
           || (attrs.nuw && Bitvec.mul_nuw_overflows x y)
        then Ok Value.Poison
        else Ok (Value.Conc (Bitvec.mul x y))
      | Shl ->
        if not (Bitvec.shift_in_range x y) then
          (* shift past bitwidth: deferred UB — undef historically,
             poison in the proposed semantics (Section 2.2) *)
          Ok (if mode.undef_enabled then Value.Undef else Value.Poison)
        else begin
          let n = Bitvec.to_uint_exn y in
          if (attrs.nsw && Bitvec.shl_nsw_overflows x n)
             || (attrs.nuw && Bitvec.shl_nuw_overflows x n)
          then Ok Value.Poison
          else Ok (Value.Conc (Bitvec.shl x n))
        end
      | LShr ->
        if not (Bitvec.shift_in_range x y) then
          Ok (if mode.undef_enabled then Value.Undef else Value.Poison)
        else begin
          let n = Bitvec.to_uint_exn y in
          if attrs.exact && not (Bitvec.lshr_exact x n) then Ok Value.Poison
          else Ok (Value.Conc (Bitvec.lshr x n))
        end
      | AShr ->
        if not (Bitvec.shift_in_range x y) then
          Ok (if mode.undef_enabled then Value.Undef else Value.Poison)
        else begin
          let n = Bitvec.to_uint_exn y in
          if attrs.exact && not (Bitvec.ashr_exact x n) then Ok Value.Poison
          else Ok (Value.Conc (Bitvec.ashr x n))
        end
      | And -> Ok (Value.Conc (Bitvec.logand x y))
      | Or -> Ok (Value.Conc (Bitvec.logor x y))
      | Xor -> Ok (Value.Conc (Bitvec.logxor x y))
      | UDiv | SDiv | URem | SRem -> assert false)

let eval_binop mode oracle op attrs ty a b : Value.t res =
  let width = Types.scalar_bitwidth (Types.element ty) in
  lanewise2 ty (eval_binop_scalar mode oracle op attrs ~width) a b

(* ------------------------------------------------------------------ *)
(* icmp                                                                *)
(* ------------------------------------------------------------------ *)

let eval_icmp_scalar (oracle : Oracle.t) pred ~width a b : Value.scalar res =
  let a = materialize oracle ~width a in
  let b = materialize oracle ~width b in
  match (a, b) with
  | Value.Poison, _ | _, Value.Poison -> Ok Value.Poison
  | Value.Undef, _ | _, Value.Undef -> assert false
  | Value.Conc x, Value.Conc y ->
    let r =
      match pred with
      | Eq -> Bitvec.eq x y
      | Ne -> Bitvec.ne x y
      | Ugt -> Bitvec.ugt x y
      | Uge -> Bitvec.uge x y
      | Ult -> Bitvec.ult x y
      | Ule -> Bitvec.ule x y
      | Sgt -> Bitvec.sgt x y
      | Sge -> Bitvec.sge x y
      | Slt -> Bitvec.slt x y
      | Sle -> Bitvec.sle x y
    in
    Ok (Value.Conc (Bitvec.of_int ~width:1 (if r then 1 else 0)))

let eval_icmp (_mode : Mode.t) oracle pred ty a b : Value.t res =
  let width = Types.scalar_bitwidth (Types.element ty) in
  lanewise2 (Types.bool_shape ty) (eval_icmp_scalar oracle pred ~width) a b

(* ------------------------------------------------------------------ *)
(* select (the Section 3.4 battleground)                               *)
(* ------------------------------------------------------------------ *)

let eval_select_scalar (mode : Mode.t) (oracle : Oracle.t) c a b : Value.scalar res =
  let pick cond = if cond then a else b in
  match mode.select_sem with
  | Mode.Select_conditional -> (
    match c with
    | Value.Poison -> Ok Value.Poison
    | Value.Undef -> Ok (pick (Bitvec.is_one (oracle.choose ~width:1)))
    | Value.Conc bv -> Ok (pick (Bitvec.is_one bv)))
  | Mode.Select_nondet_cond -> (
    match c with
    | Value.Poison | Value.Undef -> Ok (pick (oracle.choose_bool ()))
    | Value.Conc bv -> Ok (pick (Bitvec.is_one bv)))
  | Mode.Select_ub_cond -> (
    match c with
    | Value.Poison -> ub "select on poison condition"
    | Value.Undef -> Ok (pick (Bitvec.is_one (oracle.choose ~width:1)))
    | Value.Conc bv -> Ok (pick (Bitvec.is_one bv)))
  | Mode.Select_arith -> (
    (* poison in any operand poisons the result (LangRef reading) *)
    match (c, a, b) with
    | Value.Poison, _, _ | _, Value.Poison, _ | _, _, Value.Poison -> Ok Value.Poison
    | Value.Undef, _, _ -> Ok (pick (Bitvec.is_one (oracle.choose ~width:1)))
    | Value.Conc bv, _, _ -> Ok (pick (Bitvec.is_one bv)))

let eval_select (mode : Mode.t) oracle c ty a b : Value.t res =
  let la = Value.lanes a and lb = Value.lanes b and lc = Value.lanes c in
  let n = Array.length la in
  let lc = if Array.length lc = n then lc else Array.make n lc.(0) in
  let out = Array.make n Value.Poison in
  let rec go i =
    if i >= n then Ok (Value.of_lanes ty out)
    else
      match eval_select_scalar mode oracle lc.(i) la.(i) lb.(i) with
      | Ok s ->
        out.(i) <- s;
        go (i + 1)
      | Error e -> Error e
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let eval_conv_scalar (oracle : Oracle.t) op ~from_w ~to_w s : Value.scalar =
  match materialize oracle ~width:from_w s with
  | Value.Poison -> Value.Poison
  | Value.Undef -> assert false
  | Value.Conc bv -> (
    match op with
    | Zext -> Value.Conc (Bitvec.zext bv ~width:to_w)
    | Sext -> Value.Conc (Bitvec.sext bv ~width:to_w)
    | Trunc -> Value.Conc (Bitvec.trunc bv ~width:to_w)
    | Ptrtoint | Inttoptr ->
      (* Integer <-> pointer casts reinterpret the address bits: LLVM
         zero-extends when the destination is wider, truncates when it
         is narrower.  Provenance lives at the memory-byte level, not in
         the scalar, so no further bookkeeping happens here. *)
      Value.Conc
        (if to_w >= from_w then Bitvec.zext bv ~width:to_w
         else Bitvec.trunc bv ~width:to_w))

let eval_conv (_mode : Mode.t) oracle op ~from ~to_ v : Value.t res =
  let from_w = Types.scalar_bitwidth (Types.element from) in
  let to_w = Types.scalar_bitwidth (Types.element to_) in
  let lanes = Value.lanes v in
  Ok (Value.of_lanes to_ (Array.map (eval_conv_scalar oracle op ~from_w ~to_w) lanes))

let eval_bitcast (mode : Mode.t) ~from ~to_ v : Value.t res =
  Ok (Value.bitcast ~mode ~from ~to_ v)

(* ------------------------------------------------------------------ *)
(* freeze (Section 4 / Figure 5)                                       *)
(* ------------------------------------------------------------------ *)

let eval_freeze (_mode : Mode.t) (oracle : Oracle.t) ty v : Value.t res =
  let width = Types.scalar_bitwidth (Types.element ty) in
  let fr = function
    | Value.Poison | Value.Undef -> Value.Conc (oracle.choose ~width)
    | s -> s
  in
  Ok (Value.of_lanes ty (Array.map fr (Value.lanes v)))

(* ------------------------------------------------------------------ *)
(* getelementptr                                                       *)
(* ------------------------------------------------------------------ *)

(* Pointer arithmetic: each index is sign-extended (or truncated) to the
   pointer width and scaled by the store size of the pointee (our IR has
   no aggregates, so GEP is array indexing; see DESIGN.md).  With
   [inbounds], wrapping the address space yields poison — this is what
   makes the induction-variable-widening of Figure 3 sound. *)
let eval_gep (oracle : Oracle.t) ~inbounds ~pointee base (indices : (Types.t * Value.t) list) :
    Value.t res =
  let pw = Types.pointer_bits in
  let elt_size = Types.store_size pointee in
  let base_s = materialize oracle ~width:pw (Value.as_scalar base) in
  let rec go acc = function
    | [] -> Ok (Value.Scalar acc)
    | (ity, idx) :: rest -> (
      let iw = Types.scalar_bitwidth (Types.element ity) in
      let idx_s = materialize oracle ~width:iw (Value.as_scalar idx) in
      match (acc, idx_s) with
      | Value.Poison, _ | _, Value.Poison -> Ok (Value.Scalar Value.Poison)
      | Value.Undef, _ | _, Value.Undef -> assert false
      | Value.Conc b, Value.Conc i ->
        (* 64-bit exact offset computation to detect wrapping *)
        let i64 = Bitvec.to_sint64 i in
        let off = Int64.mul i64 (Int64.of_int elt_size) in
        let b64 = Bitvec.to_uint64 b in
        let sum = Int64.add b64 off in
        let wraps =
          Int64.compare sum 0L < 0
          || Int64.unsigned_compare sum Memory.addr_space >= 0
          || Int64.compare off 0x8000_0000L >= 0
          || Int64.compare off (Int64.neg 0x8000_0000L) < 0
        in
        if inbounds && wraps then go Value.Poison rest
        else go (Value.Conc (Bitvec.of_int64 ~width:pw sum)) rest)
  in
  go base_s indices

(* ------------------------------------------------------------------ *)
(* Vector element access                                               *)
(* ------------------------------------------------------------------ *)

let eval_extractelement (oracle : Oracle.t) vty v idx : Value.t res =
  let n = match Types.vec_length vty with Some n -> n | None -> invalid_arg "extractelement" in
  match materialize oracle ~width:32 (Value.as_scalar idx) with
  | Value.Poison -> Ok (Value.Scalar Value.Poison)
  | Value.Undef -> assert false
  | Value.Conc i ->
    let i = Bitvec.to_uint_exn i in
    if i >= n then Ok (Value.Scalar Value.Poison)
    else Ok (Value.Scalar (Value.as_vector n v).(i))

let eval_insertelement (oracle : Oracle.t) vty v e idx : Value.t res =
  let n = match Types.vec_length vty with Some n -> n | None -> invalid_arg "insertelement" in
  match materialize oracle ~width:32 (Value.as_scalar idx) with
  | Value.Poison -> Ok (Value.poison_of_ty vty)
  | Value.Undef -> assert false
  | Value.Conc i ->
    let i = Bitvec.to_uint_exn i in
    if i >= n then Ok (Value.poison_of_ty vty)
    else begin
      let es = Array.copy (Value.as_vector n v) in
      es.(i) <- Value.as_scalar e;
      Ok (Value.Vector es)
    end

(* ------------------------------------------------------------------ *)
(* Branch condition resolution                                         *)
(* ------------------------------------------------------------------ *)

(* Resolve an i1 branch condition to a boolean, or UB.  This is where
   Branch_ub vs Branch_nondet (Section 3.3) bites. *)
let resolve_branch (mode : Mode.t) (oracle : Oracle.t) (c : Value.t) : bool res =
  match Value.as_scalar c with
  | Value.Conc bv -> Ok (Bitvec.is_one bv)
  | Value.Undef ->
    (* a *use* of undef: materialize — branching on undef is a
       nondeterministic choice in every old mode *)
    Ok (Bitvec.is_one (oracle.choose ~width:1))
  | Value.Poison -> (
    match mode.branch_on_poison with
    | Mode.Branch_ub -> ub "branch on poison"
    | Mode.Branch_nondet -> Ok (oracle.choose_bool ()))
