(* The memory of Section 4.2: a partial map from 32-bit addresses to
   bitwise-defined bytes (<8 x i1> with per-bit poison/undef).  On top of
   the raw map we keep an allocation table so loads and stores can be
   checked for validity — accessing outside any live allocation is
   immediate UB, as is access through a poison address.

   Two extensions beyond the paper, following the two-phase low-level
   memory model of Beck et al. (arXiv 2404.16143):

   - Bytes carry *provenance*.  A byte written by a pointer-typed store
     remembers which allocation the stored pointer pointed into
     ([Prov_alloc base]); a pointer whose address does not fall in any
     live allocation (e.g. one recovered from an integer by [inttoptr])
     stores wildcard bytes ([Prov_wild]); integer-typed stores write
     provenance-free bytes ([Prov_none]).  Provenance does not gate
     loads — validity stays address-based — but it is part of the
     observable final memory (see [fingerprint]), so rewrites that erase
     or forge provenance are distinguishable.

   - Memory runs in one of two *phases*.  The [Infinite] phase (the
     default, and the paper's semantics) never runs out of space below
     the 2^32 address-space cap.  A [Finite cap] phase models a machine
     with [cap] bytes: once the sum of allocation sizes would exceed
     [cap], [alloc] reports exhaustion ([None]) and the caller decides —
     [malloc] returns null, [alloca] is UB.  Refinement checking runs
     both sides under the *same* phase, so optimizations that trade heap
     for stack (malloc -> alloca) are refuted in the finite phase. *)

open Ub_support
open Ub_ir

type provenance =
  | Prov_none (* integer data: no provenance *)
  | Prov_wild (* pointer data not derived from a live allocation *)
  | Prov_alloc of int64 (* pointer data carrying its allocation's base *)

type byte = { bits : Value.bit array; (* length 8, LSB first *) prov : provenance }

type phase = Infinite | Finite of int (* capacity in bytes *)

type allocation = { base : int64; size : int; mutable live : bool }

type t = {
  bytes : (int64, byte) Hashtbl.t;
  mutable allocs : allocation list;
  mutable next_base : int64;
  phase : phase;
  mutable used : int; (* sum of allocation sizes charged so far *)
}

let create ?(phase = Infinite) () =
  { bytes = Hashtbl.create 64; allocs = []; next_base = 0x1000L; phase; used = 0 }

let copy t =
  { bytes = Hashtbl.copy t.bytes;
    allocs = List.map (fun a -> { a with live = a.live }) t.allocs;
    next_base = t.next_base;
    phase = t.phase;
    used = t.used;
  }

let addr_space = 0x1_0000_0000L (* 2^32 *)

(* Allocate [size] bytes; returns the base address, or [None] when the
   finite phase is out of capacity.  Contents start uninitialized (all
   Bundef, no provenance). *)
let alloc t ~size =
  if size <= 0 then invalid_arg "Memory.alloc: non-positive size";
  match t.phase with
  | Finite cap when t.used + size > cap -> None
  | Finite _ | Infinite ->
    let base = t.next_base in
    let nb = Int64.add base (Int64.of_int size) in
    if Int64.unsigned_compare nb addr_space >= 0 then
      failwith "Memory.alloc: address space exhausted";
    (* round next base up for alignment-friendly addresses *)
    t.next_base <- Int64.logand (Int64.add nb 15L) (Int64.lognot 15L);
    t.used <- t.used + size;
    t.allocs <- { base; size; live = true } :: t.allocs;
    for i = 0 to size - 1 do
      Hashtbl.replace t.bytes
        (Int64.add base (Int64.of_int i))
        { bits = Array.make 8 Value.Bundef; prov = Prov_none }
    done;
    Some (Bitvec.of_int64 ~width:Types.pointer_bits base)

type free_result =
  | Freed
  | Free_double (* the address is the base of an allocation already freed *)
  | Free_not_base (* the address is not the base of any allocation *)

(* Freeing anything but the base of a live allocation is UB in the
   paper's semantics; the caller turns these results into UB verdicts
   rather than interpreter crashes. *)
let free t addr : free_result =
  let a = Bitvec.to_uint64 addr in
  match List.find_opt (fun al -> Int64.equal al.base a) t.allocs with
  | Some al when al.live ->
    al.live <- false;
    Freed
  | Some _ -> Free_double
  | None -> Free_not_base

(* The provenance a pointer with concrete address [a] carries when
   stored to memory: the base of the live allocation containing it, or
   wildcard if it points nowhere live. *)
let prov_of_addr t addr : provenance =
  let a = Bitvec.to_uint64 addr in
  match
    List.find_opt
      (fun al ->
        al.live
        && Int64.unsigned_compare a al.base >= 0
        && Int64.unsigned_compare (Int64.sub a al.base) (Int64.of_int al.size) < 0)
      t.allocs
  with
  | Some al -> Prov_alloc al.base
  | None -> Prov_wild

(* Is the byte range [addr, addr+len) inside a single live allocation?
   Computed on offsets so that addresses near 2^64 cannot wrap past the
   end of an allocation and pass the bounds check spuriously. *)
let valid_range t addr len =
  if len < 0 then false
  else
    let a = Bitvec.to_uint64 addr in
    List.exists
      (fun al ->
        al.live
        && Int64.unsigned_compare a al.base >= 0
        &&
        let off = Int64.sub a al.base in
        let size = Int64.of_int al.size in
        Int64.unsigned_compare off size <= 0
        && Int64.unsigned_compare (Int64.of_int len) (Int64.sub size off) <= 0)
      t.allocs

(* Load [nbytes] bytes starting at [addr]; [None] if the access is
   invalid.  Result is a flat bit array, LSB of the first byte first
   (little-endian).  Provenance is not checked on load: validity is
   address-based. *)
let load_bits t addr ~nbytes : Value.bit array option =
  if not (valid_range t addr nbytes) then None
  else begin
    let a = Bitvec.to_uint64 addr in
    let out = Array.make (nbytes * 8) Value.Bundef in
    for i = 0 to nbytes - 1 do
      match Hashtbl.find_opt t.bytes (Int64.add a (Int64.of_int i)) with
      | Some byte -> Array.blit byte.bits 0 out (i * 8) 8
      | None -> () (* inside an allocation => always present *)
    done;
    Some out
  end

(* Store a flat bit array (length divisible by 8 after padding).  Bits
   beyond the value's width within the last byte are left untouched only
   if the value is not byte-aligned — we pad with Bundef to the byte
   boundary, which models LLVM's "padding is undef".  [prov] is the
   provenance the written bytes carry (pointer-typed stores tag their
   bytes; everything else writes [Prov_none]). *)
let store_bits t ?(prov = Prov_none) addr (bits : Value.bit array) : bool =
  let nbits = Array.length bits in
  let nbytes = (nbits + 7) / 8 in
  if not (valid_range t addr nbytes) then false
  else begin
    let a = Bitvec.to_uint64 addr in
    for i = 0 to nbytes - 1 do
      let byte = Array.make 8 Value.Bundef in
      for j = 0 to 7 do
        let k = (i * 8) + j in
        if k < nbits then byte.(j) <- bits.(k)
      done;
      Hashtbl.replace t.bytes (Int64.add a (Int64.of_int i)) { bits = byte; prov }
    done;
    true
  end

(* A deterministic fingerprint of the live memory contents, used to
   compare final memories across executions.  Only bytes of *live*
   allocations are folded in — freed memory is dead and must not make
   two observably-equivalent executions compare unequal.  Each entry is
   "<addr>=<8 bit chars>" plus a provenance suffix: nothing for
   [Prov_none], "*" for [Prov_wild], "@<base>" for [Prov_alloc]. *)
let fingerprint t : string =
  let bit_char = function
    | Value.B0 -> "0"
    | Value.B1 -> "1"
    | Value.Bpoison -> "p"
    | Value.Bundef -> "u"
  in
  let entries =
    List.concat_map
      (fun al ->
        if not al.live then []
        else
          List.init al.size (fun i ->
              let addr = Int64.add al.base (Int64.of_int i) in
              match Hashtbl.find_opt t.bytes addr with
              | None -> (addr, "uuuuuuuu")
              | Some byte ->
                let s =
                  String.concat "" (List.map bit_char (Array.to_list byte.bits))
                in
                let s =
                  match byte.prov with
                  | Prov_none -> s
                  | Prov_wild -> s ^ "*"
                  | Prov_alloc b -> Printf.sprintf "%s@%Lx" s b
                in
                (addr, s)))
      t.allocs
  in
  let entries = List.sort compare entries in
  String.concat ";" (List.map (fun (a, s) -> Printf.sprintf "%Lx=%s" a s) entries)
