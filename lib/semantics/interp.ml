(* A small-step-in-spirit, big-step-in-implementation interpreter for the
   IR under a semantics mode.  Deterministic given an oracle; the
   [Behaviors] module at the bottom enumerates all oracle decisions to
   compute the complete behaviour set of a (small) function, which is the
   ground truth the enumeration-based refinement checker uses. *)

open Ub_support
open Ub_ir
open Instr

(* Observable events: calls to functions not defined in the module.
   Arguments are recorded as evaluated (possibly poison/undef) — the
   refinement order on traces uses Value.covers pointwise. *)
type event = Call_event of string * Value.t list

type outcome =
  | Returned of Value.t option
  | Ub of string
  | Timeout

type run_result = {
  outcome : outcome;
  events : event list; (* chronological *)
  mem_fp : string; (* fingerprint of final memory *)
  steps : int;
  block_counts : (label * int) list; (* execution profile, for the cost model *)
}

let outcome_to_string = function
  | Returned None -> "ret void"
  | Returned (Some v) -> "ret " ^ Value.to_string v
  | Ub m -> "UB: " ^ m
  | Timeout -> "timeout"

exception Ub_exn of string
exception Out_of_fuel

type frame = { env : (var, Value.t) Hashtbl.t }

type state = {
  mode : Mode.t;
  oracle : Oracle.t;
  mem : Memory.t;
  module_ : Func.module_ option;
  mutable fuel : int;
  mutable events : event list; (* reverse chronological *)
  profile : (string * label, int) Hashtbl.t;
  externals : string -> Value.t list -> Value.t option;
      (* result for an external call; [Some v]/[None=void] *)
}

let default_external ret_ty _name _args =
  (* externals return zero of their declared type *)
  match ret_ty with
  | None -> None
  | Some ty -> (
    match ty with
    | Types.Vec (n, elt) ->
      Some (Value.Vector (Array.make n (Value.Conc (Bitvec.zero (Types.scalar_bitwidth elt)))))
    | _ -> Some (Value.Scalar (Value.Conc (Bitvec.zero (Types.scalar_bitwidth ty)))))

let spend st n =
  st.fuel <- st.fuel - n;
  if st.fuel < 0 then raise Out_of_fuel

let eval_operand (st : state) (fr : frame) (op : operand) : Value.t =
  match op with
  | Var v -> (
    match Hashtbl.find_opt fr.env v with
    | Some value -> value
    | None -> invalid_arg (Printf.sprintf "Interp: unbound register %%%s" v))
  | Const c -> Eval.normalize st.mode (Value.of_constant c)

let res_exn = function Ok v -> v | Error m -> raise (Ub_exn m)

(* Allocation builtins: [call ty* @malloc(i32 %n)] / [call ty* @alloca(i32 %n)]
   allocate n bytes; [call void @free(ty* %p)] releases an allocation.
   In the finite phase the two allocators diverge on exhaustion: malloc
   returns null, alloca has nowhere to grow the stack and is UB. *)
let is_malloc name = name = "malloc" || name = "alloca"
let is_free name = name = "free"

let null_ptr = Value.Scalar (Value.Conc (Bitvec.zero Types.pointer_bits))

let rec exec_call st fr ret_ty callee args =
  let arg_vals = List.map (fun (_, a) -> eval_operand st fr a) args in
  if is_malloc callee then begin
    match arg_vals with
    | [ Value.Scalar (Value.Conc n) ] -> (
      let size = Bitvec.to_uint_exn n in
      if size = 0 then raise (Ub_exn "malloc of zero bytes")
      else
        match Memory.alloc st.mem ~size with
        | Some base -> Some (Value.Scalar (Value.Conc base))
        | None ->
          (* finite phase, out of capacity *)
          if callee = "alloca" then raise (Ub_exn "alloca: out of memory")
          else Some null_ptr)
    | _ -> raise (Ub_exn "malloc with non-concrete size")
  end
  else if is_free callee then begin
    match arg_vals with
    | [ p ] -> (
      match Value.as_scalar p with
      | Value.Poison -> raise (Ub_exn "free of poison pointer")
      | Value.Undef -> raise (Ub_exn "free of undef pointer")
      | Value.Conc addr ->
        if Int64.equal (Bitvec.to_uint64 addr) 0L then None (* free(null) is a no-op *)
        else (
          match Memory.free st.mem addr with
          | Memory.Freed -> None
          | Memory.Free_double -> raise (Ub_exn "double free")
          | Memory.Free_not_base -> raise (Ub_exn "free of non-allocation address")))
    | _ -> raise (Ub_exn "free with wrong arity")
  end
  else begin
    match st.module_ with
    | Some m when Func.find_func m callee <> None ->
      let callee_fn = Func.find_func_exn m callee in
      run_body st callee_fn arg_vals
    | _ ->
      st.events <- Call_event (callee, arg_vals) :: st.events;
      (match st.externals callee arg_vals with
      | Some _ as r -> r
      | None -> default_external ret_ty callee arg_vals)
  end

and run_body (st : state) (fn : Func.t) (arg_vals : Value.t list) : Value.t option =
  if List.length arg_vals <> List.length fn.args then
    invalid_arg (Printf.sprintf "Interp: @%s called with wrong arity" fn.name);
  let fr = { env = Hashtbl.create 16 } in
  List.iter2
    (fun (name, _ty) v -> Hashtbl.replace fr.env name (Eval.normalize st.mode v))
    fn.args arg_vals;
  let rec run_block (prev : label option) (b : Func.block) : Value.t option =
    (match Hashtbl.find_opt st.profile (fn.name, b.label) with
    | Some c -> Hashtbl.replace st.profile (fn.name, b.label) (c + 1)
    | None -> Hashtbl.replace st.profile (fn.name, b.label) 1);
    (* phis evaluate simultaneously from the edge values *)
    let phis, rest =
      List.partition (fun n -> match n.ins with Phi _ -> true | _ -> false) b.insns
    in
    let phi_values =
      List.map
        (fun n ->
          match (n.def, n.ins) with
          | Some d, Phi (_, incoming) -> (
            match prev with
            | None -> invalid_arg "Interp: phi in entry block"
            | Some p -> (
              match List.assoc_opt p (List.map (fun (v, l) -> (l, v)) incoming) with
              | Some v -> (d, eval_operand st fr v)
              | None ->
                invalid_arg (Printf.sprintf "Interp: phi %%%s missing edge from %%%s" d p)))
          | _ -> assert false)
        phis
    in
    List.iter (fun (d, v) -> Hashtbl.replace fr.env d v) phi_values;
    spend st (List.length phis);
    (* straight-line instructions *)
    List.iter
      (fun { def; ins } ->
        spend st 1;
        let bind v = match def with Some d -> Hashtbl.replace fr.env d v | None -> () in
        match ins with
        | Phi _ -> assert false
        | Binop (op, attrs, ty, a, b') ->
          bind
            (res_exn
               (Eval.eval_binop st.mode st.oracle op attrs ty (eval_operand st fr a)
                  (eval_operand st fr b')))
        | Icmp (p, ty, a, b') ->
          bind
            (res_exn
               (Eval.eval_icmp st.mode st.oracle p ty (eval_operand st fr a)
                  (eval_operand st fr b')))
        | Select (c, ty, a, b') ->
          bind
            (res_exn
               (Eval.eval_select st.mode st.oracle (eval_operand st fr c) ty
                  (eval_operand st fr a) (eval_operand st fr b')))
        | Conv (op, from, x, to_) ->
          bind (res_exn (Eval.eval_conv st.mode st.oracle op ~from ~to_ (eval_operand st fr x)))
        | Bitcast (from, x, to_) ->
          bind (res_exn (Eval.eval_bitcast st.mode ~from ~to_ (eval_operand st fr x)))
        | Freeze (ty, x) ->
          bind (res_exn (Eval.eval_freeze st.mode st.oracle ty (eval_operand st fr x)))
        | Gep { inbounds; pointee; base; indices } ->
          let idx_vals = List.map (fun (t, v) -> (t, eval_operand st fr v)) indices in
          bind
            (res_exn
               (Eval.eval_gep st.oracle ~inbounds ~pointee (eval_operand st fr base) idx_vals))
        | Load (ty, p) -> (
          match Value.as_scalar (eval_operand st fr p) with
          | Value.Poison -> raise (Ub_exn "load from poison pointer")
          | Value.Undef -> raise (Ub_exn "load from undef pointer")
          | Value.Conc addr -> (
            match Memory.load_bits st.mem addr ~nbytes:(Types.store_size ty) with
            | None -> raise (Ub_exn "load from invalid address")
            | Some bits ->
              let w = Types.bitwidth ty in
              bind (Value.ty_up ~mode:st.mode ty (Array.sub bits 0 w))))
        | Store (ty, v, p) -> (
          match Value.as_scalar (eval_operand st fr p) with
          | Value.Poison -> raise (Ub_exn "store to poison pointer")
          | Value.Undef -> raise (Ub_exn "store to undef pointer")
          | Value.Conc addr ->
            let sv = eval_operand st fr v in
            let bits = Value.ty_down ty sv in
            (* pointer-typed stores tag their bytes with the stored
               pointer's provenance; everything else is provenance-free *)
            let prov =
              match ty with
              | Types.Ptr _ -> (
                match Value.as_scalar sv with
                | Value.Conc a -> Memory.prov_of_addr st.mem a
                | Value.Poison | Value.Undef -> Memory.Prov_none)
              | _ -> Memory.Prov_none
            in
            if not (Memory.store_bits st.mem ~prov addr bits) then
              raise (Ub_exn "store to invalid address"))
        | Call (ret_ty, callee, args) -> (
          match exec_call st fr ret_ty callee args with
          | Some v -> bind v
          | None -> ())
        | Extractelement (vty, v, i) ->
          bind
            (res_exn
               (Eval.eval_extractelement st.oracle vty (eval_operand st fr v)
                  (eval_operand st fr i)))
        | Insertelement (vty, v, e, i) ->
          bind
            (res_exn
               (Eval.eval_insertelement st.oracle vty (eval_operand st fr v)
                  (eval_operand st fr e) (eval_operand st fr i))))
      rest;
    (* terminator *)
    spend st 1;
    match b.term with
    | Ret (_, x) -> Some (eval_operand st fr x)
    | Ret_void -> None
    | Br l -> run_block (Some b.label) (Func.find_block_exn fn l)
    | Cond_br (c, t, e) ->
      let cond = res_exn (Eval.resolve_branch st.mode st.oracle (eval_operand st fr c)) in
      run_block (Some b.label) (Func.find_block_exn fn (if cond then t else e))
    | Unreachable -> raise (Ub_exn "reached unreachable")
  in
  run_block None (Func.entry fn)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run ?(mode = Mode.proposed) ?(oracle = Oracle.zeros) ?(fuel = 200_000) ?module_
    ?(externals = fun _ _ -> None) ?mem ?phase (fn : Func.t) (args : Value.t list) :
    run_result =
  let mem = match mem with Some m -> m | None -> Memory.create ?phase () in
  let st =
    { mode; oracle; mem; module_; fuel; events = []; profile = Hashtbl.create 16; externals }
  in
  let outcome =
    try Returned (run_body st fn args) with
    | Ub_exn m -> Ub m
    | Out_of_fuel -> Timeout
  in
  let block_counts =
    Hashtbl.fold (fun (f, l) c acc -> if f = fn.name then (l, c) :: acc else acc) st.profile []
    |> List.sort compare
  in
  { outcome;
    events = List.rev st.events;
    mem_fp = Memory.fingerprint mem;
    steps = st.fuel;
    block_counts;
  }

(* Full execution profile across all functions (for the cost model). *)
let profile ?(mode = Mode.proposed) ?(oracle = Oracle.zeros) ?(fuel = 2_000_000) ~module_
    (fn : Func.t) (args : Value.t list) : ((string * label) * int) list * outcome =
  let st =
    { mode; oracle; mem = Memory.create (); module_ = Some module_; fuel; events = [];
      profile = Hashtbl.create 64; externals = (fun _ _ -> None);
    }
  in
  let outcome =
    try Returned (run_body st fn args) with
    | Ub_exn m -> Ub m
    | Out_of_fuel -> Timeout
  in
  (Hashtbl.fold (fun k c acc -> (k, c) :: acc) st.profile [] |> List.sort compare, outcome)

(* ------------------------------------------------------------------ *)
(* Behaviour enumeration                                               *)
(* ------------------------------------------------------------------ *)

module Behaviors = struct
  (* One abstract behaviour of a run: the outcome together with the
     observable trace.  Memory is included via fingerprint so that
     store-visible transformations can be compared too. *)
  type behavior = {
    b_outcome : outcome;
    b_events : event list;
    b_mem : string;
  }

  let behavior_of_run (r : run_result) =
    { b_outcome = r.outcome; b_events = r.events; b_mem = r.mem_fp }

  let to_string (b : behavior) =
    Printf.sprintf "%s | events:%d | mem:%s" (outcome_to_string b.b_outcome)
      (List.length b.b_events) b.b_mem

  (* All behaviours of [fn] on [args] under [mode], by exhaustive
     exploration of oracle decisions.  [max_runs] bounds the exploration;
     raises [Oracle.Exhausted] beyond it. *)
  let enumerate ?(mode = Mode.proposed) ?(fuel = 10_000) ?module_ ?(max_runs = 200_000)
      ?max_width_bits ?phase (fn : Func.t) (args : Value.t list) : behavior list =
    let runs =
      Oracle.explore ?max_width_bits ~max_runs (fun oracle ->
          behavior_of_run (run ~mode ~oracle ~fuel ?module_ ?phase fn args))
    in
    List.sort_uniq compare runs
end
