(* Client side of the serve protocol: connect, handshake, then either
   synchronous request/reply ([rpc]) or explicit [send]/[recv] for
   pipelining (the load generator and the overload tests send bursts of
   frames before reading any reply). *)

exception Server_error of string

type t = {
  fd : Unix.file_descr;
  server : string; (* the server's self-description from hello_ok *)
  jobs : int; (* server's pool size, echoed in hello_ok (0 if unsent) *)
  queue_limit : int; (* server's admission-queue depth (0 if unsent) *)
}

let connect ?(client = "ubc") ~socket_path () : t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     Unix.close fd;
     raise e);
  Wire.send_request fd (Wire.Hello { v = Wire.version; client });
  match Wire.recv_reply fd with
  | Some (Wire.Hello_ok { server; jobs; queue_limit; _ }) -> { fd; server; jobs; queue_limit }
  | Some (Wire.Error_r { message; _ }) ->
    Unix.close fd;
    raise (Server_error message)
  | Some _ ->
    Unix.close fd;
    raise (Server_error "unexpected handshake reply")
  | None ->
    Unix.close fd;
    raise (Server_error "server closed the connection during handshake")

let close (t : t) : unit = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send (t : t) (req : Wire.request) : unit = Wire.send_request t.fd req

let recv (t : t) : Wire.reply option = Wire.recv_reply t.fd

let rpc (t : t) (req : Wire.request) : Wire.reply =
  send t req;
  match recv t with
  | Some r -> r
  | None -> raise (Server_error "server closed the connection")

let check (t : t) ?id ?deadline_s ?(enum_only = false) ~(mode : string) ~(src : string)
    ~(tgt : string) () : Wire.reply =
  let cr = { Wire.id; mode; src; tgt; deadline_s; enum_only } in
  rpc t (if enum_only then Wire.Enum_check cr else Wire.Check cr)

let check_pair (t : t) ?id ?deadline_s ~(mode : string) ~(module_text : string) () :
    Wire.reply =
  rpc t (Wire.Check_pair { id; mode; module_text; deadline_s })

(* Pipelined batch: send every Check frame up front, then collect
   exactly one reply per request.  Replies are matched to requests by
   the echoed id — the server may answer out of request order when
   coalesced batches complete together.  A reply without an id (or with
   one we did not send) fills the first unanswered slot, so a protocol
   hiccup degrades accounting but never hangs the client. *)
let check_batch (t : t) ?deadline_s ?(enum_only = false) ~(mode : string)
    (pairs : (string * string) array) : Wire.reply array =
  let n = Array.length pairs in
  Array.iteri
    (fun i (src, tgt) ->
      let cr = { Wire.id = Some i; mode; src; tgt; deadline_s; enum_only } in
      send t (if enum_only then Wire.Enum_check cr else Wire.Check cr))
    pairs;
  let replies = Array.make n None in
  let next_unfilled = ref 0 in
  for _ = 1 to n do
    match recv t with
    | None -> raise (Server_error "server closed the connection mid-batch")
    | Some r ->
      let id =
        match r with
        | Wire.Verdict { r_id; _ } | Wire.Overloaded { r_id; _ } | Wire.Error_r { r_id; _ }
          ->
          r_id
        | _ -> None
      in
      let slot =
        match id with
        | Some i when i >= 0 && i < n && replies.(i) = None -> i
        | _ ->
          while !next_unfilled < n && replies.(!next_unfilled) <> None do
            incr next_unfilled
          done;
          !next_unfilled
      in
      if slot < n then replies.(slot) <- Some r
  done;
  Array.map
    (function
      | Some r -> r
      | None -> Wire.Error_r { r_id = None; message = "no reply received" })
    replies

let stats (t : t) : Wire.stats_reply =
  match rpc t Wire.Stats with
  | Wire.Stats_r s -> s
  | Wire.Error_r { message; _ } -> raise (Server_error message)
  | _ -> raise (Server_error "unexpected stats reply")

(* Ask the server to drain and exit; resolves when the server says
   [Bye] (everything queued before the shutdown has been answered) or
   closes the socket. *)
let shutdown (t : t) : unit =
  send t Wire.Shutdown;
  let rec wait () =
    match recv t with
    | Some Wire.Bye | None -> ()
    | Some _ -> wait () (* verdicts still in flight for this connection *)
  in
  (try wait () with Wire.Protocol_error _ -> ());
  close t

let with_conn ?client ~socket_path (f : t -> 'a) : 'a =
  let t = connect ?client ~socket_path () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Fleet mode: one client over N shards                                 *)
(* ------------------------------------------------------------------ *)

(* A shard-aware client.  Each request routes to the shard owning its
   verdict-cache key on a consistent-hash ring, so identical queries
   always meet on the same shard (coalescing still works) and each
   shard's journal stays hot for its key range.  On shard failure the
   request retries on the next distinct shard in ring order, with
   bounded exponential backoff before reconnecting to a dead shard and
   the original end-to-end deadline preserved: a retried request is
   sent with only the budget it has left, and a request whose budget is
   exhausted before it can be dispatched is answered locally with a
   timeout verdict.  A request that exhausts every route is answered
   with an error reply — the fleet client never raises mid-batch and
   never hangs (a stall guard fails the remainder after a long quiet
   period), so callers can account every query as completed or
   dropped-with-reason. *)
module Fleet = struct
  type pending = {
    p_slot : int;
    p_mode : string;
    p_src : string;
    p_tgt : string;
    p_enum : bool;
    p_deadline : float option; (* original end-to-end budget *)
    p_t0 : float; (* first enqueue time; budget is measured from here *)
    p_key : string; (* routing key (verdict-cache key + deadline class) *)
    mutable p_attempts : int;
  }

  type shard = {
    s_idx : int;
    s_path : string;
    mutable s_name : string; (* display name; server's hello name once connected *)
    mutable s_fd : Unix.file_descr option;
    mutable s_window : int; (* max in-flight; bounded by the shard's queue *)
    s_waiting : pending Queue.t;
    s_inflight : (int, pending) Hashtbl.t; (* wire id -> pending *)
    mutable s_dead_until : float; (* no reconnect attempts before this *)
    mutable s_backoff : float; (* current backoff step, doubles to a cap *)
  }

  type t = {
    ring : Ring.t;
    shards : shard array;
    client_name : string;
    max_attempts : int;
    window_cfg : int;
    mutable wire_seq : int; (* fresh wire id per send attempt *)
  }

  let backoff_min = 0.05
  let backoff_max = 2.0

  let shard_display path =
    let b = Filename.basename path in
    if Filename.check_suffix b ".sock" then Filename.chop_suffix b ".sock" else b

  let make ?(client = "ubc-fleet") ?(vnodes = 64) ?max_attempts ?(window = 64)
      (sockets : string list) : t =
    if sockets = [] then invalid_arg "Fleet.make: no shard sockets";
    let shards =
      Array.of_list
        (List.mapi
           (fun i path ->
             { s_idx = i;
               s_path = path;
               s_name = shard_display path;
               s_fd = None;
               s_window = window;
               s_waiting = Queue.create ();
               s_inflight = Hashtbl.create 64;
               s_dead_until = 0.0;
               s_backoff = backoff_min;
             })
           sockets)
    in
    { ring = Ring.make ~vnodes (List.map shard_display sockets);
      shards;
      client_name = client;
      max_attempts = (match max_attempts with Some n -> n | None -> 2 * List.length sockets);
      window_cfg = window;
      wire_seq = 0;
    }

  let sockets (t : t) : string list =
    Array.to_list (Array.map (fun s -> s.s_path) t.shards)

  let shard_names (t : t) : string list =
    Array.to_list (Array.map (fun s -> s.s_name) t.shards)

  (* The routing key matches the server's coalescing key structure:
     verdict-cache key of the query plus the deadline class, so two
     identical queries under the same budget land on the same shard and
     coalesce there. *)
  let routing_key ~mode ~src ~tgt ~enum_only ~deadline_s : string =
    Ub_exec.Cache.key
      ~parts:
        [ "fleet-route"; mode; src; tgt;
          (if enum_only then "enum" else "full");
          (match deadline_s with None -> "-" | Some s -> Printf.sprintf "%.3f" s);
        ]

  let now () = Unix.gettimeofday ()

  let mark_dead (sh : shard) : unit =
    (match sh.s_fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    sh.s_fd <- None;
    sh.s_dead_until <- now () +. sh.s_backoff;
    sh.s_backoff <- Float.min backoff_max (sh.s_backoff *. 2.0)

  let connect_failed fd (sh : shard) : bool =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    sh.s_fd <- None;
    sh.s_dead_until <- now () +. sh.s_backoff;
    sh.s_backoff <- Float.min backoff_max (sh.s_backoff *. 2.0);
    false

  (* Blocking connect + handshake; Unix-domain connects either succeed
     immediately or fail fast (ECONNREFUSED / ENOENT).  On success the
     in-flight window shrinks to half the shard's advertised queue so a
     single fleet client cannot trip the shard's admission control. *)
  let try_connect (t : t) (sh : shard) : bool =
    match sh.s_fd with
    | Some _ -> true
    | None ->
      if now () < sh.s_dead_until then false
      else begin
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match
          Unix.connect fd (Unix.ADDR_UNIX sh.s_path);
          Wire.send_request fd (Wire.Hello { v = Wire.version; client = t.client_name });
          Wire.recv_reply fd
        with
        | Some (Wire.Hello_ok { server; queue_limit; _ }) ->
          sh.s_fd <- Some fd;
          sh.s_name <- server;
          sh.s_window <-
            (if queue_limit > 0 then max 1 (min t.window_cfg (queue_limit / 2))
             else t.window_cfg);
          sh.s_backoff <- backoff_min;
          true
        | _ -> connect_failed fd sh
        | exception Unix.Unix_error _ -> connect_failed fd sh
        | exception Wire.Protocol_error _ -> connect_failed fd sh
      end

  let close (t : t) : unit = Array.iter mark_dead t.shards

  (* Next shard to try for [p]: walk the ring successors of its key,
     skipping shards already tried this attempt round only implicitly
     (attempts is global, the walk restarts at the owner).  Prefer the
     first successor that is connected or out of backoff; fall back to
     the successor whose backoff expires soonest so the pump can wait
     it out rather than fail early. *)
  let choose_shard (t : t) (p : pending) : shard =
    let succs = Ring.successors t.ring p.p_key in
    (* rotate by attempts so retry k starts at the k-th successor *)
    let rec rotate k = function
      | [] -> []
      | _ :: tl as l -> if k = 0 then l else rotate (k - 1) tl
    in
    let order =
      match rotate (p.p_attempts mod Ring.size t.ring) succs with
      | [] -> succs
      | l -> l @ succs
    in
    let tnow = now () in
    let usable =
      List.find_opt
        (fun i ->
          let sh = t.shards.(i) in
          sh.s_fd <> None || tnow >= sh.s_dead_until)
        order
    in
    match usable with
    | Some i -> t.shards.(i)
    | None ->
      (* every shard is in backoff: pick the one that recovers first *)
      let best = ref t.shards.(List.hd order) in
      List.iter
        (fun i -> if t.shards.(i).s_dead_until < !best.s_dead_until then best := t.shards.(i))
        order;
      !best

  (* Tagged batch: one reply per request plus the name of the shard
     that answered it ("client" for locally synthesized replies). *)
  let check_batch_tagged (t : t) ?deadline_s ?(enum_only = false) ~(mode : string)
      (pairs : (string * string) array) : (Wire.reply * string) array =
    let n = Array.length pairs in
    let slots : (Wire.reply * string) option array = Array.make n None in
    let outstanding = ref n in
    let t0 = now () in
    let fill slot reply tag =
      if slots.(slot) = None then begin
        slots.(slot) <- Some (reply, tag);
        decr outstanding
      end
    in
    (* route every request to its primary shard *)
    Array.iteri
      (fun i (src, tgt) ->
        let key = routing_key ~mode ~src ~tgt ~enum_only ~deadline_s in
        let p =
          { p_slot = i; p_mode = mode; p_src = src; p_tgt = tgt; p_enum = enum_only;
            p_deadline = deadline_s; p_t0 = t0; p_key = key; p_attempts = 0 }
        in
        Queue.push p t.shards.(Ring.route t.ring key).s_waiting)
      pairs;
    let requeue (p : pending) : unit =
      p.p_attempts <- p.p_attempts + 1;
      if p.p_attempts > t.max_attempts then
        fill p.p_slot
          (Wire.Error_r
             { r_id = None;
               message =
                 Printf.sprintf "no shard available after %d attempts" p.p_attempts;
             })
          "client"
      else Queue.push p (choose_shard t p).s_waiting
    in
    let fail_shard (sh : shard) : unit =
      mark_dead sh;
      let stranded = Hashtbl.fold (fun _ p acc -> p :: acc) sh.s_inflight [] in
      Hashtbl.reset sh.s_inflight;
      let waiting = Queue.fold (fun acc p -> p :: acc) [] sh.s_waiting in
      Queue.clear sh.s_waiting;
      List.iter requeue (List.rev_append waiting (List.rev stranded))
    in
    let dispatch (sh : shard) : unit =
      match sh.s_fd with
      | None -> ()
      | Some fd ->
        (try
           while
             Hashtbl.length sh.s_inflight < sh.s_window
             && not (Queue.is_empty sh.s_waiting)
           do
             let p = Queue.pop sh.s_waiting in
             if slots.(p.p_slot) <> None then () (* already answered (synthesized) *)
             else begin
               let remaining =
                 match p.p_deadline with
                 | None -> None
                 | Some d -> Some (d -. (now () -. p.p_t0))
               in
               match remaining with
               | Some r when r <= 0.005 ->
                 (* budget burned before dispatch (e.g. spent in failover
                    backoff): answer locally, preserving deadline
                    semantics end-to-end *)
                 fill p.p_slot
                   (Wire.Verdict
                      { r_id = None; verdict = "timeout";
                        detail = "deadline exceeded before dispatch (fleet)";
                        args = []; cached = false; coalesced = false;
                        wall_s = now () -. p.p_t0 })
                   "client"
               | _ ->
                 let id = t.wire_seq in
                 t.wire_seq <- t.wire_seq + 1;
                 let cr =
                   { Wire.id = Some id; mode = p.p_mode; src = p.p_src; tgt = p.p_tgt;
                     deadline_s = remaining; enum_only = p.p_enum }
                 in
                 Wire.send_request fd
                   (if p.p_enum then Wire.Enum_check cr else Wire.Check cr);
                 Hashtbl.replace sh.s_inflight id p
             end
           done
         with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> fail_shard sh)
    in
    let drain_reply (sh : shard) : unit =
      match sh.s_fd with
      | None -> ()
      | Some fd -> (
        match Wire.recv_reply fd with
        | Some reply -> (
          let id =
            match reply with
            | Wire.Verdict { r_id; _ } | Wire.Overloaded { r_id; _ }
            | Wire.Error_r { r_id; _ } ->
              r_id
            | _ -> None
          in
          match Option.bind id (Hashtbl.find_opt sh.s_inflight) with
          | None -> () (* stats/bye/unmatched: ignore *)
          | Some p -> (
            Hashtbl.remove sh.s_inflight (Option.get id);
            match reply with
            | Wire.Overloaded _ ->
              (* shard admission queue is full: retry (possibly on the
                 same shard once the window logic lets it through) *)
              requeue p
            | _ -> fill p.p_slot reply sh.s_name))
        | None -> fail_shard sh
        | exception Wire.Protocol_error _ -> fail_shard sh
        | exception Unix.Unix_error _ -> fail_shard sh)
    in
    (* pump until every slot is filled *)
    let last_progress = ref (now ()) in
    let stall_limit =
      (* generous: longest request budget plus a fixed grace, or 120s *)
      match deadline_s with Some d -> Float.max 120.0 ((2.0 *. d) +. 60.0) | None -> 120.0
    in
    let before = ref (n + 1) in
    while !outstanding > 0 do
      if !outstanding < !before then begin
        before := !outstanding;
        last_progress := now ()
      end;
      Array.iter
        (fun sh ->
          (* a down shard with queued work: reconnect once its backoff
             expires; a failed reconnect reroutes the queued work to
             ring successors immediately *)
          if (not (Queue.is_empty sh.s_waiting)) && sh.s_fd = None
             && now () >= sh.s_dead_until
          then begin
            if not (try_connect t sh) then fail_shard sh
          end;
          dispatch sh)
        t.shards;
      let fds =
        Array.to_list t.shards
        |> List.filter_map (fun sh ->
               match sh.s_fd with
               | Some fd when Hashtbl.length sh.s_inflight > 0 -> Some (fd, sh)
               | _ -> None)
      in
      if fds = [] then begin
        (* nothing in flight: either waiting for backoff to expire or
           every pending just got synthesized/failed *)
        if !outstanding > 0 then ignore (Unix.select [] [] [] 0.02)
      end
      else begin
        let readable, _, _ =
          try Unix.select (List.map fst fds) [] [] 0.1
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            match List.assoc_opt fd fds with
            | Some sh -> drain_reply sh
            | None -> ())
          readable
      end;
      if now () -. !last_progress > stall_limit then begin
        (* fail everything still unanswered rather than hang forever *)
        Array.iter
          (fun sh ->
            Hashtbl.iter
              (fun _ p ->
                fill p.p_slot
                  (Wire.Error_r { r_id = None; message = "fleet client stalled" })
                  "client")
              sh.s_inflight;
            Hashtbl.reset sh.s_inflight;
            Queue.iter
              (fun p ->
                fill p.p_slot
                  (Wire.Error_r { r_id = None; message = "fleet client stalled" })
                  "client")
              sh.s_waiting;
            Queue.clear sh.s_waiting)
          t.shards
      end
    done;
    Array.map
      (function
        | Some rt -> rt
        | None -> (Wire.Error_r { r_id = None; message = "no reply received" }, "client"))
      slots

  let check_batch (t : t) ?deadline_s ?enum_only ~mode pairs : Wire.reply array =
    Array.map fst (check_batch_tagged t ?deadline_s ?enum_only ~mode pairs)

  let check (t : t) ?deadline_s ?enum_only ~mode ~src ~tgt () : Wire.reply =
    (check_batch t ?deadline_s ?enum_only ~mode [| (src, tgt) |]).(0)

  (* Which shard a query routes to (primary); exposed for tests and for
     the fleet front's diagnostics. *)
  let shard_of (t : t) ?deadline_s ?(enum_only = false) ~mode ~src ~tgt () : int =
    Ring.route t.ring (routing_key ~mode ~src ~tgt ~enum_only ~deadline_s)

  (* Fan out over fresh connections so pump state is untouched; dead
     shards are skipped, so the result lists reachable shards only. *)
  let stats (t : t) : (string * Wire.stats_reply) list =
    Array.to_list t.shards
    |> List.filter_map (fun sh ->
           match connect ~client:t.client_name ~socket_path:sh.s_path () with
           | exception _ -> None
           | c ->
             Fun.protect
               ~finally:(fun () -> try Unix.close c.fd with Unix.Unix_error _ -> ())
               (fun () ->
                 match rpc c Wire.Stats with
                 | Wire.Stats_r s ->
                   Some ((if s.Wire.server <> "" then s.Wire.server else sh.s_name), s)
                 | _ -> None
                 | exception _ -> None))

  let shutdown_all (t : t) : unit =
    close t;
    Array.iter
      (fun sh ->
        match connect ~client:t.client_name ~socket_path:sh.s_path () with
        | exception _ -> ()
        | c -> ( try shutdown c with _ -> ()))
      t.shards
end
