(* Client side of the serve protocol: connect, handshake, then either
   synchronous request/reply ([rpc]) or explicit [send]/[recv] for
   pipelining (the load generator and the overload tests send bursts of
   frames before reading any reply). *)

exception Server_error of string

type t = {
  fd : Unix.file_descr;
  server : string; (* the server's self-description from hello_ok *)
}

let connect ?(client = "ubc") ~socket_path () : t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     Unix.close fd;
     raise e);
  Wire.send_request fd (Wire.Hello { v = Wire.version; client });
  match Wire.recv_reply fd with
  | Some (Wire.Hello_ok { server; _ }) -> { fd; server }
  | Some (Wire.Error_r { message; _ }) ->
    Unix.close fd;
    raise (Server_error message)
  | Some _ ->
    Unix.close fd;
    raise (Server_error "unexpected handshake reply")
  | None ->
    Unix.close fd;
    raise (Server_error "server closed the connection during handshake")

let close (t : t) : unit = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send (t : t) (req : Wire.request) : unit = Wire.send_request t.fd req

let recv (t : t) : Wire.reply option = Wire.recv_reply t.fd

let rpc (t : t) (req : Wire.request) : Wire.reply =
  send t req;
  match recv t with
  | Some r -> r
  | None -> raise (Server_error "server closed the connection")

let check (t : t) ?id ?deadline_s ?(enum_only = false) ~(mode : string) ~(src : string)
    ~(tgt : string) () : Wire.reply =
  let cr = { Wire.id; mode; src; tgt; deadline_s; enum_only } in
  rpc t (if enum_only then Wire.Enum_check cr else Wire.Check cr)

let check_pair (t : t) ?id ?deadline_s ~(mode : string) ~(module_text : string) () :
    Wire.reply =
  rpc t (Wire.Check_pair { id; mode; module_text; deadline_s })

(* Pipelined batch: send every Check frame up front, then collect
   exactly one reply per request.  Replies are matched to requests by
   the echoed id — the server may answer out of request order when
   coalesced batches complete together.  A reply without an id (or with
   one we did not send) fills the first unanswered slot, so a protocol
   hiccup degrades accounting but never hangs the client. *)
let check_batch (t : t) ?deadline_s ?(enum_only = false) ~(mode : string)
    (pairs : (string * string) array) : Wire.reply array =
  let n = Array.length pairs in
  Array.iteri
    (fun i (src, tgt) ->
      let cr = { Wire.id = Some i; mode; src; tgt; deadline_s; enum_only } in
      send t (if enum_only then Wire.Enum_check cr else Wire.Check cr))
    pairs;
  let replies = Array.make n None in
  let next_unfilled = ref 0 in
  for _ = 1 to n do
    match recv t with
    | None -> raise (Server_error "server closed the connection mid-batch")
    | Some r ->
      let id =
        match r with
        | Wire.Verdict { r_id; _ } | Wire.Overloaded { r_id; _ } | Wire.Error_r { r_id; _ }
          ->
          r_id
        | _ -> None
      in
      let slot =
        match id with
        | Some i when i >= 0 && i < n && replies.(i) = None -> i
        | _ ->
          while !next_unfilled < n && replies.(!next_unfilled) <> None do
            incr next_unfilled
          done;
          !next_unfilled
      in
      if slot < n then replies.(slot) <- Some r
  done;
  Array.map
    (function
      | Some r -> r
      | None -> Wire.Error_r { r_id = None; message = "no reply received" })
    replies

let stats (t : t) : Wire.stats_reply =
  match rpc t Wire.Stats with
  | Wire.Stats_r s -> s
  | Wire.Error_r { message; _ } -> raise (Server_error message)
  | _ -> raise (Server_error "unexpected stats reply")

(* Ask the server to drain and exit; resolves when the server says
   [Bye] (everything queued before the shutdown has been answered) or
   closes the socket. *)
let shutdown (t : t) : unit =
  send t Wire.Shutdown;
  let rec wait () =
    match recv t with
    | Some Wire.Bye | None -> ()
    | Some _ -> wait () (* verdicts still in flight for this connection *)
  in
  (try wait () with Wire.Protocol_error _ -> ());
  close t

let with_conn ?client ~socket_path (f : t -> 'a) : 'a =
  let t = connect ?client ~socket_path () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
