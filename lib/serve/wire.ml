(* The serve wire protocol: length-prefixed, versioned JSON frames over
   a Unix-domain socket.

   Frame layout (both directions):

     +----------------+----------------------+
     | u32 big-endian |  payload (JSON text) |
     +----------------+----------------------+

   The length counts payload bytes only.  Frames above [max_frame_bytes]
   are rejected without buffering: an oversized length prefix is a
   protocol error and the connection is closed (there is no way to
   resync a framed stream after a bad prefix).

   Every connection starts with a [Hello] / [Hello_ok] handshake that
   pins [version]; a server that does not speak the client's version
   replies [Error] and closes.  Request/reply payloads are JSON objects
   whose "op" field selects the variant; unknown fields are ignored so
   the protocol can grow without a version bump, and unknown "op"s are
   [Error]s, not crashes.  Requests may carry a numeric "id" that the
   server echoes in the matching reply, so clients can pipeline
   requests and match replies out of order (coalesced batches complete
   together, so replies to one connection are not necessarily in
   request order). *)

let version = 1
let max_frame_bytes = 8 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Protocol types                                                      *)
(* ------------------------------------------------------------------ *)

(* The three checking flavours map onto the checker entry points:
   [`Combined] is [Checker.check] (SAT with enumeration fallback),
   [`Enum] is enumeration only. *)
type check_req = {
  id : int option;
  mode : string; (* semantics mode name; validated server-side *)
  src : string; (* source function, IR text *)
  tgt : string; (* target function, IR text *)
  deadline_s : float option; (* per-request wall-clock budget *)
  enum_only : bool;
}

type request =
  | Hello of { v : int; client : string }
  | Check of check_req (* src and tgt as two IR texts *)
  | Check_pair of { id : int option; mode : string; module_text : string; deadline_s : float option }
    (* one module holding both functions, source first -- the witness
       format `bench --corpus` writes and `ubc reduce` accepts *)
  | Enum_check of check_req
  | Stats
  | Shutdown

type verdict_reply = {
  r_id : int option;
  verdict : string; (* "refines" | "counterexample" | "unknown" | "timeout" | "crashed" *)
  detail : string; (* witness / reason; "" when refines *)
  args : string list; (* counterexample argument values, printed *)
  cached : bool; (* served straight from the verdict cache *)
  coalesced : bool; (* rode on another in-flight identical query *)
  wall_s : float; (* server-side queue+check wall clock *)
}

type stats_reply = {
  queue_depth : int;
  queue_limit : int;
  uptime_s : float;
  served : int;
  coalesced_total : int;
  rejected : int;
  timeouts : int;
  cache_hit_rate : float;
  cache_hits : int; (* verdict-cache lookups answered from the journal *)
  cache_misses : int; (* lookups that fell through to a real check *)
  server : string; (* server/shard name, for fleet stat aggregation *)
  verdicts : (string * int) list; (* verdict kind -> count *)
  report : Json.t; (* the full ubc-obs-report-v1 object *)
}

type reply =
  | Hello_ok of { v : int; server : string; jobs : int; queue_limit : int }
    (* jobs/queue_limit echo the server's tuning; 0 from pre-fleet
       servers that do not send them *)
  | Verdict of verdict_reply
  | Overloaded of { r_id : int option; queue_depth : int; queue_limit : int }
  | Stats_r of stats_reply
  | Error_r of { r_id : int option; message : string }
  | Bye

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let opt_id_field id rest =
  match id with None -> rest | Some i -> ("id", Json.Num (float_of_int i)) :: rest

let opt_deadline_field d rest =
  match d with None -> rest | Some s -> ("deadline_s", Json.Num s) :: rest

let check_fields ~op (c : check_req) : (string * Json.t) list =
  ("op", Json.Str op)
  :: opt_id_field c.id
       (opt_deadline_field c.deadline_s
          [ ("mode", Json.Str c.mode); ("src", Json.Str c.src); ("tgt", Json.Str c.tgt) ])

let request_to_json : request -> Json.t = function
  | Hello { v; client } ->
    Json.Obj
      [ ("op", Json.Str "hello"); ("v", Json.Num (float_of_int v)); ("client", Json.Str client) ]
  | Check c -> Json.Obj (check_fields ~op:"check" c)
  | Enum_check c -> Json.Obj (check_fields ~op:"enum_check" c)
  | Check_pair { id; mode; module_text; deadline_s } ->
    Json.Obj
      (("op", Json.Str "check_pair")
      :: opt_id_field id
           (opt_deadline_field deadline_s
              [ ("mode", Json.Str mode); ("module", Json.Str module_text) ]))
  | Stats -> Json.Obj [ ("op", Json.Str "stats") ]
  | Shutdown -> Json.Obj [ ("op", Json.Str "shutdown") ]

let reply_to_json : reply -> Json.t = function
  | Hello_ok { v; server; jobs; queue_limit } ->
    Json.Obj
      [ ("op", Json.Str "hello_ok"); ("v", Json.Num (float_of_int v));
        ("server", Json.Str server); ("jobs", Json.Num (float_of_int jobs));
        ("queue_limit", Json.Num (float_of_int queue_limit)) ]
  | Verdict r ->
    Json.Obj
      (("op", Json.Str "verdict")
      :: opt_id_field r.r_id
           [ ("verdict", Json.Str r.verdict); ("detail", Json.Str r.detail);
             ("args", Json.List (List.map (fun a -> Json.Str a) r.args));
             ("cached", Json.Bool r.cached); ("coalesced", Json.Bool r.coalesced);
             ("wall_s", Json.Num r.wall_s) ])
  | Overloaded { r_id; queue_depth; queue_limit } ->
    Json.Obj
      (("op", Json.Str "overloaded")
      :: opt_id_field r_id
           [ ("queue_depth", Json.Num (float_of_int queue_depth));
             ("queue_limit", Json.Num (float_of_int queue_limit)) ])
  | Stats_r s ->
    Json.Obj
      [ ("op", Json.Str "stats");
        ("queue_depth", Json.Num (float_of_int s.queue_depth));
        ("queue_limit", Json.Num (float_of_int s.queue_limit));
        ("uptime_s", Json.Num s.uptime_s);
        ("served", Json.Num (float_of_int s.served));
        ("coalesced", Json.Num (float_of_int s.coalesced_total));
        ("rejected", Json.Num (float_of_int s.rejected));
        ("timeouts", Json.Num (float_of_int s.timeouts));
        ("cache_hit_rate", Json.Num s.cache_hit_rate);
        ("cache_hits", Json.Num (float_of_int s.cache_hits));
        ("cache_misses", Json.Num (float_of_int s.cache_misses));
        ("server", Json.Str s.server);
        ("verdicts", Json.Obj (List.map (fun (k, n) -> (k, Json.Num (float_of_int n))) s.verdicts));
        ("report", s.report);
      ]
  | Error_r { r_id; message } ->
    Json.Obj (("op", Json.Str "error") :: opt_id_field r_id [ ("message", Json.Str message) ])
  | Bye -> Json.Obj [ ("op", Json.Str "bye") ]

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

let required what = function Some v -> Ok v | None -> Error ("missing field " ^ what)

let ( let* ) = Result.bind

let decode_check (j : Json.t) : (check_req, string) result =
  let* mode = required "mode" (Json.str_field j "mode") in
  let* src = required "src" (Json.str_field j "src") in
  let* tgt = required "tgt" (Json.str_field j "tgt") in
  Ok
    { id = Json.int_field j "id";
      mode;
      src;
      tgt;
      deadline_s = Json.num_field j "deadline_s";
      enum_only = false;
    }

let request_of_json (j : Json.t) : (request, string) result =
  match Json.str_field j "op" with
  | None -> Error "missing op"
  | Some "hello" ->
    let* v = required "v" (Json.int_field j "v") in
    Ok (Hello { v; client = Option.value ~default:"" (Json.str_field j "client") })
  | Some "check" ->
    let* c = decode_check j in
    Ok (Check c)
  | Some "enum_check" ->
    let* c = decode_check j in
    Ok (Enum_check { c with enum_only = true })
  | Some "check_pair" ->
    let* mode = required "mode" (Json.str_field j "mode") in
    let* module_text = required "module" (Json.str_field j "module") in
    Ok
      (Check_pair
         { id = Json.int_field j "id";
           mode;
           module_text;
           deadline_s = Json.num_field j "deadline_s";
         })
  | Some "stats" -> Ok Stats
  | Some "shutdown" -> Ok Shutdown
  | Some op -> Error ("unknown op " ^ op)

let reply_of_json (j : Json.t) : (reply, string) result =
  match Json.str_field j "op" with
  | None -> Error "missing op"
  | Some "hello_ok" ->
    let* v = required "v" (Json.int_field j "v") in
    let* server = required "server" (Json.str_field j "server") in
    Ok
      (Hello_ok
         { v;
           server;
           jobs = Option.value ~default:0 (Json.int_field j "jobs");
           queue_limit = Option.value ~default:0 (Json.int_field j "queue_limit");
         })
  | Some "verdict" ->
    let* verdict = required "verdict" (Json.str_field j "verdict") in
    let args =
      match Option.bind (Json.member "args" j) Json.to_list with
      | Some xs -> List.filter_map Json.to_str xs
      | None -> []
    in
    Ok
      (Verdict
         { r_id = Json.int_field j "id";
           verdict;
           detail = Option.value ~default:"" (Json.str_field j "detail");
           args;
           cached = Option.value ~default:false (Json.bool_field j "cached");
           coalesced = Option.value ~default:false (Json.bool_field j "coalesced");
           wall_s = Option.value ~default:0.0 (Json.num_field j "wall_s");
         })
  | Some "overloaded" ->
    let* queue_depth = required "queue_depth" (Json.int_field j "queue_depth") in
    let* queue_limit = required "queue_limit" (Json.int_field j "queue_limit") in
    Ok (Overloaded { r_id = Json.int_field j "id"; queue_depth; queue_limit })
  | Some "stats" ->
    let* queue_depth = required "queue_depth" (Json.int_field j "queue_depth") in
    let* queue_limit = required "queue_limit" (Json.int_field j "queue_limit") in
    let verdicts =
      match Json.member "verdicts" j with
      | Some (Json.Obj kvs) ->
        List.filter_map (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int v)) kvs
      | _ -> []
    in
    Ok
      (Stats_r
         { queue_depth;
           queue_limit;
           uptime_s = Option.value ~default:0.0 (Json.num_field j "uptime_s");
           served = Option.value ~default:0 (Json.int_field j "served");
           coalesced_total = Option.value ~default:0 (Json.int_field j "coalesced");
           rejected = Option.value ~default:0 (Json.int_field j "rejected");
           timeouts = Option.value ~default:0 (Json.int_field j "timeouts");
           cache_hit_rate = Option.value ~default:0.0 (Json.num_field j "cache_hit_rate");
           cache_hits = Option.value ~default:0 (Json.int_field j "cache_hits");
           cache_misses = Option.value ~default:0 (Json.int_field j "cache_misses");
           server = Option.value ~default:"" (Json.str_field j "server");
           verdicts;
           report = Option.value ~default:(Json.Obj []) (Json.member "report" j);
         })
  | Some "error" ->
    let* message = required "message" (Json.str_field j "message") in
    Ok (Error_r { r_id = Json.int_field j "id"; message })
  | Some "bye" -> Ok Bye
  | Some op -> Error ("unknown op " ^ op)

(* ------------------------------------------------------------------ *)
(* Framing over file descriptors (blocking helpers for clients/tests)  *)
(* ------------------------------------------------------------------ *)

exception Protocol_error of string

let frame_of_payload (payload : string) : string =
  let n = String.length payload in
  if n > max_frame_bytes then
    raise (Protocol_error (Printf.sprintf "frame too large (%d bytes)" n));
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

let decode_len (b : Bytes.t) (off : int) : int =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let rec write_all fd b off len =
  if len > 0 then begin
    let n =
      try Unix.write fd b off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd b (off + n) (len - n)
  end

let send_frame (fd : Unix.file_descr) (payload : string) : unit =
  let f = frame_of_payload payload in
  write_all fd (Bytes.of_string f) 0 (String.length f)

(* Blocking read of exactly [len] bytes; [None] on clean EOF at a frame
   boundary, [Protocol_error] on EOF mid-frame. *)
let read_exactly (fd : Unix.file_descr) (len : int) ~(what : string) : Bytes.t option =
  let b = Bytes.create len in
  let rec go off =
    if off >= len then Some b
    else begin
      let n =
        try Unix.read fd b off (len - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> -1
      in
      if n = 0 then
        if off = 0 then None
        else raise (Protocol_error (Printf.sprintf "EOF inside %s" what))
      else go (off + max 0 n)
    end
  in
  go 0

let recv_frame (fd : Unix.file_descr) : string option =
  match read_exactly fd 4 ~what:"length prefix" with
  | None -> None
  | Some hdr ->
    let len = decode_len hdr 0 in
    if len > max_frame_bytes then
      raise (Protocol_error (Printf.sprintf "oversized frame (%d bytes)" len));
    (match read_exactly fd len ~what:"frame payload" with
    | None -> raise (Protocol_error "EOF inside frame payload")
    | Some b -> Some (Bytes.to_string b))

let send_request fd (r : request) = send_frame fd (Json.to_string (request_to_json r))
let send_reply fd (r : reply) = send_frame fd (Json.to_string (reply_to_json r))

let recv_reply fd : reply option =
  match recv_frame fd with
  | None -> None
  | Some payload -> (
    match Json.of_string payload with
    | Error e -> raise (Protocol_error ("bad reply JSON: " ^ e))
    | Ok j -> (
      match reply_of_json j with
      | Error e -> raise (Protocol_error ("bad reply: " ^ e))
      | Ok r -> Some r))
