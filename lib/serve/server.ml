(* The refinement-checking daemon.

   `ubc serve --socket PATH` turns the cold-start batch checker into a
   long-lived service: one process owns the warmed solver stack, the
   verdict cache and the worker pool, and serves checking requests over
   a Unix-domain socket speaking the framed JSON protocol of
   [Wire].  The shape is a single-threaded event loop:

     accept/read ----> request queue ----> batch ----> replies
       (select)     (bounded, coalescing)   (Ub_exec.Pool)

   - *Admission control*: the queue is bounded ([queue_limit]); a
     request that arrives when it is full gets an immediate
     [Overloaded] reply instead of unbounded buffering.  Clients see
     the rejection in microseconds and can back off; the server's
     memory stays flat no matter how hard it is hammered.

   - *Coalescing*: queued requests with the same verdict-cache key (and
     deadline class) collapse into one task; the single verdict fans
     back out to every waiter.  Translation-validation traffic is
     highly repetitive (fuzzers mutate around the same seeds), so this
     converts duplicate solver work into queue bookkeeping.

   - *Deadlines*: a request's [deadline_s] rides the pool's per-task
     timeout machinery ([Pool.run_task]'s ITIMER_REAL envelope), so a
     hard query costs its own budget, never the whole batch's.

   - *Graceful drain*: SIGTERM/SIGINT (or a [Shutdown] request) stops
     intake, finishes every queued task, flushes replies, removes the
     socket file and exits 0.

   Batches run synchronously in the loop: while the pool is busy, new
   connections simply wait in the kernel backlog and new bytes sit in
   socket buffers.  [batch_max] bounds how long the loop stays away
   from [select], which both caps reply latency under load and gives
   coalescing a window to fill.

   Replies are never written blockingly: each connection carries an
   output queue of encoded frames, drained opportunistically on [send]
   and then whenever [select] reports the peer writable.  A client that
   pipelines a huge burst and does not read its replies until it has
   finished sending (a completely legal use of the protocol) therefore
   fills its own reply queue in server memory instead of wedging the
   event loop in [write] -- the mutual-send deadlock every synchronous
   server has.  Connections that must die after a final error reply
   ([closing]) are closed once their queue drains. *)

module Obs = Ub_obs.Obs
open Ub_ir

type config = {
  socket_path : string;
  jobs : int; (* pool workers per batch; 1 = in-process *)
  queue_limit : int; (* admission-control bound *)
  batch_max : int; (* max unique tasks drained per batch *)
  default_deadline_s : float option; (* applied when a request names none *)
  cache : Ub_exec.Cache.t option;
  server_name : string;
  verbose : bool;
}

let default_config ~socket_path =
  { socket_path;
    jobs = 1;
    queue_limit = 64;
    batch_max = 32;
    default_deadline_s = None;
    cache = None;
    server_name = "ubc-serve/1";
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  mutable pending : string; (* bytes read but not yet framed *)
  mutable greeted : bool;
  mutable alive : bool;
  outq : string Queue.t; (* encoded reply frames not yet written *)
  mutable out_off : int; (* bytes of the queue head already written *)
  mutable closing : bool; (* close once [outq] drains; no more reads *)
  mutable session : Ub_refine.Checker.session option;
      (* persistent checker session, created on first in-process SAT
         task from this connection.  A client streams related queries
         (a fuzzer mutating one seed, a pipeline validating pass by
         pass), so per-connection is the natural sharing scope.  The
         session's own watermark/root-unsat/dirty policy governs resets;
         dropping the connection drops the session. *)
}

type waiter = {
  w_conn : conn;
  w_id : int option;
  enqueued_at : float;
  w_coalesced : bool;
}

type task = {
  t_key : string;
  t_src : Func.t;
  t_tgt : Func.t;
  t_mode : Ub_sem.Mode.t;
  t_enum : bool;
  t_deadline : float option;
  mutable waiters : waiter list; (* reverse arrival order *)
}

type state = {
  cfg : config;
  started_at : float;
  queue : (string, task) Hashtbl.t; (* key -> task, for coalescing *)
  mutable order : string list; (* FIFO of keys, reverse order *)
  mutable queued : int; (* distinct tasks in queue *)
  mutable conns : conn list;
  mutable draining : bool;
  mutable shutdown_conns : conn list; (* protocol shutdown requesters awaiting Bye *)
}

let queue_depth st =
  (* waiters, not unique tasks: admission control must bound client
     demand, and ten coalesced copies of one query are ten clients *)
  Hashtbl.fold (fun _ t n -> n + List.length t.waiters) st.queue 0

let close_conn st c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c' -> c' != c) st.conns
  end

(* Write as much buffered output as the socket accepts right now. *)
let rec flush_conn st c : unit =
  if c.alive then
    match Queue.peek_opt c.outq with
    | None -> if c.closing then close_conn st c
    | Some head -> (
      let len = String.length head - c.out_off in
      match Unix.write_substring c.fd head c.out_off len with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_conn st c
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> close_conn st c
      | n ->
        if n = len then begin
          c.out_off <- 0;
          ignore (Queue.pop c.outq);
          flush_conn st c
        end
        else c.out_off <- c.out_off + n)

let send st c (reply : Wire.reply) : unit =
  if c.alive && not c.closing then begin
    Obs.with_span "serve.reply" @@ fun () ->
    Queue.add (Wire.frame_of_payload (Json.to_string (Wire.reply_to_json reply))) c.outq;
    flush_conn st c
  end

(* For protocol errors whose [Error] reply must still reach the peer:
   stop reading, flush what is buffered, then close. *)
let close_after_flush st c : unit =
  if c.alive then begin
    c.closing <- true;
    flush_conn st c
  end

(* ------------------------------------------------------------------ *)
(* Verdict execution                                                   *)
(* ------------------------------------------------------------------ *)

(* What the pool computes per unique task.  The inner [Pool.run_task]
   envelope maps the request deadline onto ITIMER_REAL; the outer pool
   layer only adds crash isolation when [jobs > 1]. *)
let run_check ?session (t : task) : Ub_refine.Checker.verdict Ub_exec.Pool.result =
  Ub_exec.Pool.run_task ?timeout_s:t.t_deadline
    (fun () ->
      if t.t_enum then
        match Ub_refine.Enum_check.check ~mode:t.t_mode ~src:t.t_src ~tgt:t.t_tgt () with
        | Ub_refine.Enum_check.Refines -> Ub_refine.Checker.Refines
        | Ub_refine.Enum_check.Counterexample { args; witness } ->
          Ub_refine.Checker.Counterexample { args; witness }
        | Ub_refine.Enum_check.Unknown r -> Ub_refine.Checker.Unknown r
      else Ub_refine.Checker.check ?session t.t_mode ~src:t.t_src ~tgt:t.t_tgt)
    ()

(* The session for a task, if sessions apply: only with the in-process
   pool (a forked worker's warmed solver dies with the fork) and only
   for SAT-path tasks.  The session belongs to the connection that
   FIRST enqueued the task (waiters are in reverse arrival order);
   coalesced followers just read the shared verdict.  A deadline that
   fires mid-solve leaves the session marked dirty, and its next query
   starts from a clean solver — that recovery path is exercised by the
   serve deadline tests. *)
let task_session (st : state) (t : task) : Ub_refine.Checker.session option =
  if st.cfg.jobs > 1 || t.t_enum then None
  else
    match List.rev t.waiters with
    | [] -> None
    | w :: _ -> (
      let c = w.w_conn in
      match c.session with
      | Some _ as s -> s
      | None ->
        Obs.count "serve.sessions_created";
        let s = Ub_refine.Checker.create_session () in
        c.session <- Some s;
        Some s)

let verdict_fields : Ub_refine.Checker.verdict -> string * string * string list = function
  | Ub_refine.Checker.Refines -> ("refines", "", [])
  | Ub_refine.Checker.Counterexample { args; witness } ->
    ("counterexample", witness, List.map Ub_sem.Value.to_string args)
  | Ub_refine.Checker.Unknown r -> ("unknown", r, [])

let reply_verdict st (t : task) ~(cached : bool)
    (r : Ub_refine.Checker.verdict Ub_exec.Pool.result) : unit =
  let verdict, detail, args =
    match r with
    | Ub_exec.Pool.Done v -> verdict_fields v
    | Ub_exec.Pool.Timed_out ->
      Obs.count "serve.timeouts";
      ("timeout", "deadline exceeded", [])
    | Ub_exec.Pool.Crashed m -> ("crashed", m, [])
  in
  Obs.count ("serve.verdict." ^ verdict);
  let now = Obs.Clock.now_s () in
  List.iter
    (fun w ->
      send st w.w_conn
        (Wire.Verdict
           { r_id = w.w_id;
             verdict;
             detail;
             args;
             cached;
             coalesced = w.w_coalesced;
             wall_s = now -. w.enqueued_at;
           }))
    (List.rev t.waiters)

let cache_key (t : task) : string =
  Ub_refine.Verdict_cache.key ~mode:t.t_mode
    ~kind:
      (if t.t_enum then Ub_refine.Verdict_cache.enum_kind
       else Ub_refine.Verdict_cache.combined_kind)
    ~src:t.t_src ~tgt:t.t_tgt ()

(* Drain up to [batch_max] unique tasks: cache hits answer immediately,
   the rest go through the pool in one [map] call. *)
let run_batch (st : state) : unit =
  Obs.with_span "serve.batch" @@ fun () ->
  let keys = List.rev st.order in
  let batch_keys, rest =
    let rec split n = function
      | [] -> ([], [])
      | ks when n = 0 -> ([], ks)
      | k :: tl ->
        let taken, left = split (n - 1) tl in
        (k :: taken, left)
    in
    split st.cfg.batch_max keys
  in
  st.order <- List.rev rest;
  let batch =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt st.queue k with
        | Some t ->
          Hashtbl.remove st.queue k;
          st.queued <- st.queued - 1;
          Some t
        | None -> None)
      batch_keys
  in
  (* cache pass *)
  let to_run =
    List.filter
      (fun t ->
        match st.cfg.cache with
        | None -> true
        | Some c -> (
          match Ub_refine.Verdict_cache.find c (cache_key t) with
          | Some v ->
            reply_verdict st t ~cached:true (Ub_exec.Pool.Done v);
            false
          | None -> true))
      batch
  in
  let to_run = Array.of_list to_run in
  if Array.length to_run > 0 then begin
    let results =
      Ub_exec.Pool.map ~jobs:st.cfg.jobs
        (fun t -> run_check ?session:(task_session st t) t)
        to_run
    in
    Array.iteri
      (fun i r ->
        let t = to_run.(i) in
        (* the outer pool layer never times tasks out (no ~timeout_s):
           flatten its crash isolation onto the inner envelope *)
        let flat =
          match r with
          | Ub_exec.Pool.Done inner -> inner
          | Ub_exec.Pool.Crashed m -> Ub_exec.Pool.Crashed m
          | Ub_exec.Pool.Timed_out -> Ub_exec.Pool.Timed_out
        in
        (match (flat, st.cfg.cache) with
        | Ub_exec.Pool.Done v, Some c -> Ub_refine.Verdict_cache.store c (cache_key t) v
        | _ -> ());
        reply_verdict st t ~cached:false flat)
      results
  end

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let enqueue_check (st : state) (c : conn) ~(id : int option) ~(mode : Ub_sem.Mode.t)
    ~(src : Func.t) ~(tgt : Func.t) ~(deadline_s : float option) ~(enum : bool) : unit =
  let depth = queue_depth st in
  Obs.observe "serve.queue_depth" (float_of_int depth);
  if depth >= st.cfg.queue_limit then begin
    Obs.count "serve.rejected";
    send st c (Wire.Overloaded { r_id = id; queue_depth = depth; queue_limit = st.cfg.queue_limit })
  end
  else begin
    let deadline =
      match deadline_s with Some _ as d -> d | None -> st.cfg.default_deadline_s
    in
    let t0 = Obs.Clock.now_s () in
    let base =
      { t_key = "";
        t_src = src;
        t_tgt = tgt;
        t_mode = mode;
        t_enum = enum;
        t_deadline = deadline;
        waiters = [];
      }
    in
    (* the coalescing key is the verdict-cache key plus the deadline
       class: two requests for the same query under different budgets
       must not share a timeout verdict *)
    let key =
      Printf.sprintf "%s/%s" (cache_key base)
        (match deadline with None -> "-" | Some s -> Printf.sprintf "%.3f" s)
    in
    let w = { w_conn = c; w_id = id; enqueued_at = t0; w_coalesced = false } in
    match Hashtbl.find_opt st.queue key with
    | Some t ->
      Obs.count "serve.coalesced";
      t.waiters <- { w with w_coalesced = true } :: t.waiters
    | None ->
      let t = { base with t_key = key; waiters = [ w ] } in
      Hashtbl.replace st.queue key t;
      st.order <- key :: st.order;
      st.queued <- st.queued + 1
  end

let stats_reply (st : state) : Wire.reply =
  let report =
    match Json.of_string (Obs.report_json ()) with Ok j -> j | Error _ -> Json.Obj []
  in
  let verdicts =
    List.filter_map
      (fun k ->
        let n = Obs.counter_value ("serve.verdict." ^ k) in
        if n > 0 then Some (k, n) else None)
      [ "refines"; "counterexample"; "unknown"; "timeout"; "crashed" ]
  in
  Wire.Stats_r
    { queue_depth = queue_depth st;
      queue_limit = st.cfg.queue_limit;
      uptime_s = Obs.Clock.now_s () -. st.started_at;
      served =
        Obs.counter_value "serve.verdict.refines"
        + Obs.counter_value "serve.verdict.counterexample"
        + Obs.counter_value "serve.verdict.unknown"
        + Obs.counter_value "serve.verdict.timeout"
        + Obs.counter_value "serve.verdict.crashed";
      coalesced_total = Obs.counter_value "serve.coalesced";
      rejected = Obs.counter_value "serve.rejected";
      timeouts = Obs.counter_value "serve.timeouts";
      cache_hit_rate =
        (match st.cfg.cache with Some c -> Ub_exec.Cache.hit_rate c | None -> 0.0);
      cache_hits = (match st.cfg.cache with Some c -> Ub_exec.Cache.hits c | None -> 0);
      cache_misses = (match st.cfg.cache with Some c -> Ub_exec.Cache.misses c | None -> 0);
      server = st.cfg.server_name;
      verdicts;
      report;
    }

let parse_one_func (text : string) : (Func.t, string) result =
  match Parser.parse_func_string text with
  | f -> Ok f
  | exception e -> Error (Printexc.to_string e)

let handle_request (st : state) (c : conn) (req : Wire.request) : unit =
  Obs.count "serve.requests";
  match req with
  | Wire.Hello { v; client = _ } ->
    if v <> Wire.version then begin
      send st c
        (Wire.Error_r
           { r_id = None;
             message = Printf.sprintf "unsupported protocol version %d (server speaks %d)" v Wire.version;
           });
      close_after_flush st c
    end
    else begin
      c.greeted <- true;
      send st c
        (Wire.Hello_ok
           { v = Wire.version;
             server = st.cfg.server_name;
             jobs = st.cfg.jobs;
             queue_limit = st.cfg.queue_limit;
           })
    end
  | _ when not c.greeted ->
    send st c (Wire.Error_r { r_id = None; message = "hello handshake required" })
  | Wire.Stats -> send st c (stats_reply st)
  | Wire.Shutdown ->
    st.draining <- true;
    st.shutdown_conns <- c :: st.shutdown_conns
  | Wire.Check cr | Wire.Enum_check cr -> (
    match (Ub_sem.Mode.find cr.Wire.mode, parse_one_func cr.Wire.src, parse_one_func cr.Wire.tgt) with
    | None, _, _ ->
      send st c (Wire.Error_r { r_id = cr.Wire.id; message = "unknown mode " ^ cr.Wire.mode })
    | _, Error e, _ ->
      send st c (Wire.Error_r { r_id = cr.Wire.id; message = "bad src: " ^ e })
    | _, _, Error e ->
      send st c (Wire.Error_r { r_id = cr.Wire.id; message = "bad tgt: " ^ e })
    | Some mode, Ok src, Ok tgt ->
      enqueue_check st c ~id:cr.Wire.id ~mode ~src ~tgt ~deadline_s:cr.Wire.deadline_s
        ~enum:cr.Wire.enum_only)
  | Wire.Check_pair { id; mode; module_text; deadline_s } -> (
    match Ub_sem.Mode.find mode with
    | None -> send st c (Wire.Error_r { r_id = id; message = "unknown mode " ^ mode })
    | Some m -> (
      match Parser.parse_module module_text with
      | exception e ->
        send st c (Wire.Error_r { r_id = id; message = "bad module: " ^ Printexc.to_string e })
      | { Func.funcs = src :: tgt :: _; _ } ->
        enqueue_check st c ~id ~mode:m ~src ~tgt ~deadline_s ~enum:false
      | _ ->
        send st c
          (Wire.Error_r
             { r_id = id; message = "module must hold two functions (source, then target)" })))

(* A complete frame arrived: JSON-parse it, decode it, dispatch it.
   Malformed *payloads* answer [Error] and leave the connection up (the
   framing is still in sync); malformed *frames* (oversized prefix) are
   handled by the read path, which must close. *)
let handle_payload (st : state) (c : conn) (payload : string) : unit =
  let parsed =
    Obs.with_span "serve.parse" @@ fun () ->
    match Json.of_string payload with
    | Error e -> Error ("invalid JSON: " ^ e)
    | Ok j -> Wire.request_of_json j
  in
  match parsed with
  | Error e ->
    Obs.count "serve.bad_request";
    send st c (Wire.Error_r { r_id = None; message = e })
  | Ok req -> Obs.with_span "serve.dispatch" (fun () -> handle_request st c req)

(* Extract as many complete frames as [c.pending] holds. *)
let rec drain_frames (st : state) (c : conn) : unit =
  let n = String.length c.pending in
  if c.alive && (not c.closing) && n >= 4 then begin
    let len = Wire.decode_len (Bytes.unsafe_of_string c.pending) 0 in
    if len > Wire.max_frame_bytes then begin
      (* there is no resyncing a framed stream after a bad prefix *)
      Obs.count "serve.bad_frame";
      send st c
        (Wire.Error_r
           { r_id = None; message = Printf.sprintf "oversized frame (%d bytes)" len });
      close_after_flush st c
    end
    else if n >= 4 + len then begin
      let payload = String.sub c.pending 4 len in
      c.pending <- String.sub c.pending (4 + len) (n - 4 - len);
      handle_payload st c payload;
      drain_frames st c
    end
  end

let read_conn (st : state) (c : conn) : unit =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> close_conn st c
  | 0 -> close_conn st c (* EOF: mid-frame bytes in [pending] are simply dropped *)
  | n ->
    c.pending <- c.pending ^ Bytes.sub_string buf 0 n;
    drain_frames st c

(* ------------------------------------------------------------------ *)
(* The accept loop                                                     *)
(* ------------------------------------------------------------------ *)

(* Refuse to clobber a live server's socket; silently replace a stale
   one (a previous daemon that was SIGKILLed could not unlink it). *)
let claim_socket (path : string) : unit =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) -> false
      | exception Unix.Unix_error _ -> false
    in
    Unix.close probe;
    if live then failwith (Printf.sprintf "socket %s already has a live server" path);
    try Sys.remove path with Sys_error _ -> ()
  end

let run (cfg : config) : unit =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  claim_socket cfg.socket_path;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  let st =
    { cfg;
      started_at = Obs.Clock.now_s ();
      queue = Hashtbl.create 64;
      order = [];
      queued = 0;
      conns = [];
      draining = false;
      shutdown_conns = [];
    }
  in
  let on_signal = Sys.Signal_handle (fun _ -> st.draining <- true) in
  let old_term = Sys.signal Sys.sigterm on_signal in
  let old_int = Sys.signal Sys.sigint on_signal in
  if cfg.verbose then begin
    Printf.printf "ubc serve: listening on %s (jobs=%d queue=%d)\n" cfg.socket_path cfg.jobs
      cfg.queue_limit;
    flush stdout
  end;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) st.conns;
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      (try Sys.remove cfg.socket_path with Sys_error _ -> ());
      Ub_exec.Pool.terminate_workers ();
      (match cfg.cache with Some c -> Ub_exec.Cache.close c | None -> ());
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
  @@ fun () ->
  let accept_new () =
    Obs.with_span "serve.accept" @@ fun () ->
    let rec go () =
      match Unix.accept lfd with
      | fd, _ ->
        Unix.set_nonblock fd;
        st.conns <-
          { fd;
            pending = "";
            greeted = false;
            alive = true;
            outq = Queue.create ();
            out_off = 0;
            closing = false;
            session = None;
          }
          :: st.conns;
        Obs.count "serve.accepts";
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    in
    go ()
  in
  let stop = ref false in
  while not !stop do
    if not st.draining then begin
      let rfds =
        lfd :: List.filter_map (fun c -> if c.closing then None else Some c.fd) st.conns
      in
      let wfds =
        List.filter_map
          (fun c -> if Queue.is_empty c.outq then None else Some c.fd)
          st.conns
      in
      (match Unix.select rfds wfds [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, writable, _ ->
        if List.mem lfd ready then accept_new ();
        List.iter
          (fun c ->
            if c.alive && List.mem c.fd writable then flush_conn st c;
            if c.alive && (not c.closing) && List.mem c.fd ready then read_conn st c)
          st.conns);
      if st.queued > 0 then run_batch st
    end
    else begin
      (* drain: no more intake; finish everything queued, ack pending
         shutdown requests, flush every reply queue, and leave *)
      while st.queued > 0 do
        run_batch st
      done;
      List.iter (fun c -> send st c Wire.Bye) (List.rev st.shutdown_conns);
      st.shutdown_conns <- [];
      let flush_deadline = Obs.Clock.now_s () +. 5.0 in
      let rec final_flush () =
        let pending =
          List.filter (fun c -> c.alive && not (Queue.is_empty c.outq)) st.conns
        in
        if pending <> [] && Obs.Clock.now_s () < flush_deadline then begin
          (match Unix.select [] (List.map (fun c -> c.fd) pending) [] 0.5 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | _, writable, _ ->
            List.iter
              (fun c -> if c.alive && List.mem c.fd writable then flush_conn st c)
              pending);
          final_flush ()
        end
      in
      final_flush ();
      stop := true
    end
  done
