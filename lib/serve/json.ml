(* A minimal JSON codec for the serve wire protocol.  The container has
   no JSON library, and the protocol only needs the data model itself --
   no streaming, no schemas -- so a ~150-line recursive-descent parser
   beats a dependency.  Numbers are floats (the protocol only carries
   small counters and second-resolution durations); strings are byte
   strings with \uXXXX escapes decoded to UTF-8 on the way in and
   control characters escaped on the way out, matching what
   [Ub_obs.Obs.json_escape] emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null" (* JSON has no nan/inf *)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { s : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st ("expected " ^ word)

(* Encode a Unicode code point as UTF-8 bytes. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek st with
      | Some ('0' .. '9' as c) -> Char.code c - Char.code '0'
      | Some ('a' .. 'f' as c) -> Char.code c - Char.code 'a' + 10
      | Some ('A' .. 'F' as c) -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad \\u escape"
    in
    advance st;
    v := (!v * 16) + d
  done;
  !v

let parse_string st : string =
  expect st '"';
  let buf = Buffer.create 32 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> advance st; Buffer.add_char buf '"'
      | Some '\\' -> advance st; Buffer.add_char buf '\\'
      | Some '/' -> advance st; Buffer.add_char buf '/'
      | Some 'b' -> advance st; Buffer.add_char buf '\b'
      | Some 'f' -> advance st; Buffer.add_char buf '\012'
      | Some 'n' -> advance st; Buffer.add_char buf '\n'
      | Some 'r' -> advance st; Buffer.add_char buf '\r'
      | Some 't' -> advance st; Buffer.add_char buf '\t'
      | Some 'u' ->
        advance st;
        let cp = hex4 st in
        (* surrogate pair: a high surrogate must be followed by \uDC00-\uDFFF *)
        let cp =
          if cp >= 0xD800 && cp <= 0xDBFF then begin
            if peek st = Some '\\' then begin
              advance st;
              expect st 'u';
              let lo = hex4 st in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              else fail st "unpaired surrogate"
            end
            else fail st "unpaired surrogate"
          end
          else cp
        in
        add_utf8 buf cp
      | _ -> fail st "bad escape");
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st : float =
  let start = st.pos in
  let consume pred =
    while (match peek st with Some c -> pred c | None -> false) do
      advance st
    done
  in
  if peek st = Some '-' then advance st;
  consume (function '0' .. '9' -> true | _ -> false);
  if peek st = Some '.' then begin
    advance st;
    consume (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek st with
  | Some ('e' | 'E') ->
    advance st;
    (match peek st with Some ('+' | '-') -> advance st | _ -> ());
    consume (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> fail st ("bad number " ^ text)

let rec parse_value st : t =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number st)
  | Some c -> fail st (Printf.sprintf "unexpected '%c'" c)

let of_string (s : string) : (t, string) result =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors (all total: Error-free lookup helpers for decoders)       *)
(* ------------------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_int = function Num f when Float.is_integer f -> Some (int_of_float f) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None

let str_field j k = Option.bind (member k j) to_str
let num_field j k = Option.bind (member k j) to_num
let int_field j k = Option.bind (member k j) to_int
let bool_field j k = Option.bind (member k j) to_bool
