(* The fleet front: N `ubc serve` shards behind one consistent-hash
   router.

   The front forks one daemon per shard (each with its own socket
   DIR/shard-K.sock and its own journal DIR/verdicts-K), writes a
   machine-readable spec DIR/fleet.json so clients can discover the
   shard set, and then supervises: crashed shards are reaped and (by
   default) respawned -- a respawned shard replays its journal on open,
   so it answers warm.  Every [sync_interval_s] the front runs a
   replication round over the journals: each shard's records merge into
   an aggregate journal DIR/verdicts-all, and the aggregate merges back
   into every shard.  Two rounds after any write, every shard can
   answer every key; the merge appends only missing keys (verdicts are
   deterministic per key, so existing keys are already identical) and
   compaction uses the journal's existing rename-committed path, so
   readers never observe a torn store.

   Invariants the replication scheme maintains:
   - no lost verdicts: a record in any shard journal reaches the
     aggregate in the next round, and every other shard the round after;
   - no divergence: a key is only ever appended where it is missing,
     so the first value a journal holds for a key is the one it keeps;
   - crash safety: merges run under each destination journal's fcntl
     lock and tolerate a torn source tail exactly like replay. *)

module Obs = Ub_obs.Obs

type config = {
  dir : string; (* fleet home: sockets, journals, spec file *)
  shards : int;
  jobs : int; (* pool size per shard *)
  queue_limit : int;
  batch_max : int;
  default_deadline_s : float option;
  sync_interval_s : float; (* journal replication period *)
  restart : bool; (* respawn crashed shards *)
  vnodes : int; (* ring points per shard (client-side routing) *)
  trace : bool; (* per-shard JSONL traces under dir/trace-K.jsonl *)
  verbose : bool;
}

let default_config ~dir =
  { dir;
    shards = 4;
    jobs = 1;
    queue_limit = 256;
    batch_max = 64;
    default_deadline_s = None;
    sync_interval_s = 2.0;
    restart = true;
    vnodes = 64;
    trace = false;
    verbose = false;
  }

let shard_name i = Printf.sprintf "shard-%d" i
let socket_path cfg i = Filename.concat cfg.dir (shard_name i ^ ".sock")
let journal_dir cfg i = Filename.concat cfg.dir (Printf.sprintf "verdicts-%d" i)
let aggregate_dir cfg = Filename.concat cfg.dir "verdicts-all"
let spec_path dir = Filename.concat dir "fleet.json"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Fleet spec: how clients discover the shard set                      *)
(* ------------------------------------------------------------------ *)

let write_spec (cfg : config) (pids : int array) : unit =
  let shards =
    List.init cfg.shards (fun i ->
        Json.Obj
          [ ("name", Json.Str (shard_name i));
            ("socket", Json.Str (socket_path cfg i));
            ("journal", Json.Str (journal_dir cfg i));
            ("pid", Json.Num (float_of_int pids.(i)));
          ])
  in
  let j =
    Json.Obj
      [ ("schema", Json.Str "ubc-fleet-v1");
        ("dir", Json.Str cfg.dir);
        ("shards", Json.List shards);
      ]
  in
  let tmp = Printf.sprintf "%s.tmp.%d" (spec_path cfg.dir) (Unix.getpid ()) in
  let oc = open_out tmp in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp (spec_path cfg.dir)

(* Shard sockets from a fleet spec: either a directory holding
   fleet.json, the fleet.json path itself, or a comma-separated socket
   list.  This is what `--fleet SPEC` accepts everywhere. *)
let sockets_of_spec (spec : string) : (string list, string) result =
  let from_file path =
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Error e
    | text -> (
      match Json.of_string text with
      | Error e -> Error (Printf.sprintf "%s: bad JSON: %s" path e)
      | Ok j -> (
        match Option.bind (Json.member "shards" j) Json.to_list with
        | None -> Error (path ^ ": no \"shards\" field")
        | Some shards -> (
          match List.filter_map (fun s -> Json.str_field s "socket") shards with
          | [] -> Error (path ^ ": no shard sockets")
          | sockets -> Ok sockets)))
  in
  if Sys.file_exists spec && Sys.is_directory spec then from_file (spec_path spec)
  else if Filename.check_suffix spec ".json" then from_file spec
  else
    match String.split_on_char ',' spec |> List.filter (fun s -> s <> "") with
    | [] -> Error "empty fleet spec"
    | sockets -> Ok sockets

(* ------------------------------------------------------------------ *)
(* Journal replication                                                 *)
(* ------------------------------------------------------------------ *)

(* One replication round: shard journals -> aggregate -> shard
   journals.  Stateless (opens and closes its own handles) so it can
   run from the front loop or from a one-shot `ubc fleet --sync`.
   Returns the number of records copied in either direction. *)
let replicate (cfg : config) : int =
  let copied = ref 0 in
  let agg = Ub_exec.Cache.open_journal (aggregate_dir cfg) in
  Fun.protect ~finally:(fun () -> Ub_exec.Cache.close agg) @@ fun () ->
  for i = 0 to cfg.shards - 1 do
    copied := !copied + Ub_exec.Cache.merge_from agg (journal_dir cfg i)
  done;
  for i = 0 to cfg.shards - 1 do
    let sj = Ub_exec.Cache.open_journal (journal_dir cfg i) in
    Fun.protect
      ~finally:(fun () -> Ub_exec.Cache.close sj)
      (fun () -> copied := !copied + Ub_exec.Cache.merge_from sj (aggregate_dir cfg));
  done;
  !copied

(* ------------------------------------------------------------------ *)
(* Shard processes                                                     *)
(* ------------------------------------------------------------------ *)

let spawn_shard (cfg : config) (i : int) : int =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* fresh telemetry: the child must not inherit the front's trace
       channel or counter registry *)
    Obs.child_begin ();
    Obs.set_shard (shard_name i);
    if cfg.trace then
      Obs.set_trace (Filename.concat cfg.dir (Printf.sprintf "trace-%d.jsonl" i));
    let code =
      try
        let cache = Ub_exec.Cache.open_journal (journal_dir cfg i) in
        let scfg =
          { (Server.default_config ~socket_path:(socket_path cfg i)) with
            Server.jobs = cfg.jobs;
            queue_limit = cfg.queue_limit;
            batch_max = cfg.batch_max;
            default_deadline_s = cfg.default_deadline_s;
            cache = Some cache;
            server_name = Printf.sprintf "ubc-serve/1#%s" (shard_name i);
            verbose = cfg.verbose;
          }
        in
        Server.run scfg;
        0
      with _ -> 3
    in
    (* _exit skips OCaml's at_exit flushing: close the trace sink
       explicitly or a drained shard leaves an empty trace file *)
    Obs.close ();
    Unix._exit code
  | pid -> pid

let wait_for_sockets (cfg : config) : unit =
  let deadline = 200 in
  let rec wait i n =
    if i >= cfg.shards then ()
    else if Sys.file_exists (socket_path cfg i) then wait (i + 1) 0
    else if n > deadline then
      failwith (Printf.sprintf "fleet: %s did not come up" (shard_name i))
    else begin
      Unix.sleepf 0.05;
      wait i (n + 1)
    end
  in
  wait 0 0

(* ------------------------------------------------------------------ *)
(* Local fleet handle (bench / hunt --shards / tests)                  *)
(* ------------------------------------------------------------------ *)

type handle = {
  h_cfg : config;
  mutable h_pids : int array; (* index = shard; -1 once reaped *)
}

let handle_sockets (h : handle) : string list =
  List.init h.h_cfg.shards (fun i -> socket_path h.h_cfg i)

let spawn_local (cfg : config) : handle =
  mkdir_p cfg.dir;
  let pids = Array.init cfg.shards (fun i -> spawn_shard cfg i) in
  write_spec cfg pids;
  wait_for_sockets cfg;
  { h_cfg = cfg; h_pids = pids }

let rec waitpid_retry flags pid =
  try Unix.waitpid flags pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry flags pid

(* Kill one shard hard (tests exercise failover with this). *)
let kill_shard (h : handle) (i : int) : unit =
  if h.h_pids.(i) >= 0 then begin
    (try Unix.kill h.h_pids.(i) Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (waitpid_retry [] h.h_pids.(i));
    h.h_pids.(i) <- -1;
    (try Sys.remove (socket_path h.h_cfg i) with Sys_error _ -> ())
  end

let stop_local (h : handle) : unit =
  Array.iter
    (fun pid -> if pid >= 0 then try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    h.h_pids;
  Array.iteri
    (fun i pid ->
      if pid >= 0 then begin
        ignore (waitpid_retry [] pid);
        h.h_pids.(i) <- -1
      end)
    h.h_pids

(* ------------------------------------------------------------------ *)
(* Cross-shard stats aggregation                                       *)
(* ------------------------------------------------------------------ *)

let num_or_zero j k = Option.value ~default:0.0 (Json.num_field j k)

(* Merge per-shard obs reports (ubc-obs-report-v1) into one fleet
   report: counters sum, spans sum count/total and take the max of max,
   histograms merge count/sum/min/max.  Quantiles are dropped -- they
   are not mergeable across shards without the raw buckets, and a wrong
   p50 is worse than none. *)
let merge_reports (reports : (string * Json.t) list) : Json.t =
  let merge_section name merge_entry =
    let tbl : (string, Json.t) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (_, rep) ->
        match Json.member name rep with
        | Some (Json.Obj kvs) ->
          List.iter
            (fun (k, v) ->
              match Hashtbl.find_opt tbl k with
              | None -> Hashtbl.replace tbl k v
              | Some prev -> Hashtbl.replace tbl k (merge_entry prev v))
            kvs
        | _ -> ())
      reports;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let add_num a b =
    match (a, b) with Json.Num x, Json.Num y -> Json.Num (x +. y) | _ -> a
  in
  let merge_span a b =
    Json.Obj
      [ ("count", Json.Num (num_or_zero a "count" +. num_or_zero b "count"));
        ("total_s", Json.Num (num_or_zero a "total_s" +. num_or_zero b "total_s"));
        ("max_s", Json.Num (Float.max (num_or_zero a "max_s") (num_or_zero b "max_s")));
      ]
  in
  let merge_hist a b =
    let ca = num_or_zero a "count" and cb = num_or_zero b "count" in
    let min_v =
      if ca = 0.0 then num_or_zero b "min"
      else if cb = 0.0 then num_or_zero a "min"
      else Float.min (num_or_zero a "min") (num_or_zero b "min")
    in
    Json.Obj
      [ ("count", Json.Num (ca +. cb));
        ("sum", Json.Num (num_or_zero a "sum" +. num_or_zero b "sum"));
        ("min", Json.Num min_v);
        ("max", Json.Num (Float.max (num_or_zero a "max") (num_or_zero b "max")));
      ]
  in
  Json.Obj
    [ ("schema", Json.Str "ubc-obs-report-fleet-v1");
      ("shards", Json.List (List.map (fun (name, _) -> Json.Str name) reports));
      ("counters", Json.Obj (merge_section "counters" add_num));
      ("spans", Json.Obj (merge_section "spans" merge_span));
      ("histograms", Json.Obj (merge_section "histograms" merge_hist));
    ]

(* One fleet-wide stats object from per-shard Stats_r replies: scalar
   load metrics sum, verdict tallies sum, and the obs reports merge via
   [merge_reports].  The per-shard blocks ride along under "shards" so
   nothing is lost by aggregation. *)
let merge_stats (per_shard : (string * Wire.stats_reply) list) : Json.t =
  let sum f = List.fold_left (fun acc (_, s) -> acc + f s) 0 per_shard in
  let verdicts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, s) ->
      List.iter
        (fun (k, n) ->
          Hashtbl.replace verdicts k (n + Option.value ~default:0 (Hashtbl.find_opt verdicts k)))
        s.Wire.verdicts)
    per_shard;
  let hits = sum (fun s -> s.Wire.cache_hits) and misses = sum (fun s -> s.Wire.cache_misses) in
  Json.Obj
    [ ("schema", Json.Str "ubc-fleet-stats-v1");
      ("shards_reporting", Json.Num (float_of_int (List.length per_shard)));
      ("served", Json.Num (float_of_int (sum (fun s -> s.Wire.served))));
      ("coalesced", Json.Num (float_of_int (sum (fun s -> s.Wire.coalesced_total))));
      ("rejected", Json.Num (float_of_int (sum (fun s -> s.Wire.rejected))));
      ("timeouts", Json.Num (float_of_int (sum (fun s -> s.Wire.timeouts))));
      ("queue_depth", Json.Num (float_of_int (sum (fun s -> s.Wire.queue_depth))));
      ("cache_hits", Json.Num (float_of_int hits));
      ("cache_misses", Json.Num (float_of_int misses));
      ( "cache_hit_rate",
        Json.Num
          (if hits + misses = 0 then 0.0
           else float_of_int hits /. float_of_int (hits + misses)) );
      ( "verdicts",
        Json.Obj
          (Hashtbl.fold (fun k n acc -> (k, Json.Num (float_of_int n)) :: acc) verdicts []
          |> List.sort (fun (a, _) (b, _) -> compare a b)) );
      ("report", merge_reports (List.map (fun (name, s) -> (name, s.Wire.report)) per_shard));
      ( "shards",
        Json.Obj
          (List.map
             (fun (name, s) ->
               ( name,
                 Json.Obj
                   [ ("served", Json.Num (float_of_int s.Wire.served));
                     ("coalesced", Json.Num (float_of_int s.Wire.coalesced_total));
                     ("rejected", Json.Num (float_of_int s.Wire.rejected));
                     ("timeouts", Json.Num (float_of_int s.Wire.timeouts));
                     ("queue_depth", Json.Num (float_of_int s.Wire.queue_depth));
                     ("cache_hits", Json.Num (float_of_int s.Wire.cache_hits));
                     ("cache_misses", Json.Num (float_of_int s.Wire.cache_misses));
                     ("uptime_s", Json.Num s.Wire.uptime_s);
                   ] ))
             per_shard) );
    ]

(* ------------------------------------------------------------------ *)
(* The front loop                                                      *)
(* ------------------------------------------------------------------ *)

(* Supervise a fleet until SIGTERM/SIGINT: reap crashed shards (respawn
   when [restart]), run a replication round every [sync_interval_s],
   and on shutdown drain every shard, run a final replication round,
   and compact the aggregate journal. *)
let run (cfg : config) : unit =
  mkdir_p cfg.dir;
  let pids = Array.init cfg.shards (fun i -> spawn_shard cfg i) in
  write_spec cfg pids;
  wait_for_sockets cfg;
  let draining = ref false in
  let on_signal _ = draining := true in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  if cfg.verbose then
    Printf.eprintf "[fleet] %d shard(s) up under %s\n%!" cfg.shards cfg.dir;
  let last_sync = ref (Obs.Clock.now_s ()) in
  (try
     while not !draining do
       (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
       (* reap; respawn unless we are going down anyway *)
       for i = 0 to cfg.shards - 1 do
         if pids.(i) >= 0 then
           match Unix.waitpid [ Unix.WNOHANG ] pids.(i) with
           | 0, _ -> ()
           | _, _ ->
             pids.(i) <- -1;
             Obs.count "fleet.shard_exits";
             if cfg.restart && not !draining then begin
               Obs.count "fleet.restarts";
               if cfg.verbose then
                 Printf.eprintf "[fleet] respawning %s\n%!" (shard_name i);
               (* the respawned shard replays its journal on open and
                  picks up everyone else's keys at the next sync round:
                  it answers warm *)
               pids.(i) <- spawn_shard cfg i;
               write_spec cfg pids
             end
           | exception Unix.Unix_error (Unix.ECHILD, _, _) -> pids.(i) <- -1
       done;
       if Obs.Clock.now_s () -. !last_sync >= cfg.sync_interval_s then begin
         last_sync := Obs.Clock.now_s ();
         let n = try replicate cfg with _ -> 0 in
         Obs.count "fleet.merge_rounds";
         Obs.count ~by:n "fleet.merged_records";
         if cfg.verbose && n > 0 then
           Printf.eprintf "[fleet] replicated %d record(s)\n%!" n
       end
     done
   with e ->
     Sys.set_signal Sys.sigterm old_term;
     Sys.set_signal Sys.sigint old_int;
     raise e);
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  (* drain: forward the signal, wait for graceful exits, replicate one
     last time so no shard's tail is lost, compact the aggregate *)
  if cfg.verbose then Printf.eprintf "[fleet] draining %d shard(s)\n%!" cfg.shards;
  Array.iter
    (fun pid -> if pid >= 0 then try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    pids;
  Array.iteri (fun i pid -> if pid >= 0 then begin ignore (waitpid_retry [] pid); pids.(i) <- -1 end) pids;
  ignore (try replicate cfg with _ -> 0);
  (let agg = Ub_exec.Cache.open_journal (aggregate_dir cfg) in
   Ub_exec.Cache.compact agg;
   Ub_exec.Cache.close agg);
  (try Sys.remove (spec_path cfg.dir) with Sys_error _ -> ());
  if cfg.verbose then Printf.eprintf "[fleet] down\n%!"
