(* A consistent-hash ring for routing verdict-cache keys to shards.

   Each shard contributes [vnodes] points on a 2^62 ring, placed by
   hashing "name#i"; a key routes to the owner of the first point at or
   after the key's own hash (wrapping).  Virtual nodes smooth the load:
   with 64 vnodes per shard the heaviest shard stays within a few
   percent of fair share on uniform keys.  The payoff over modular
   hashing is minimal disruption -- adding or removing one shard only
   remaps the keys that landed on its points, so the other shards'
   in-flight coalescing and journal working sets stay hot.

   [successors] yields every distinct shard in ring order starting at
   the key's owner; the fleet client walks that list on failover so a
   key has a deterministic second (third, ...) home. *)

type t = {
  names : string array; (* shard index -> display name *)
  points : (int * int) array; (* (ring position, shard index), sorted *)
}

(* First 8 hash bytes as a non-negative int.  MD5 is plenty: this is
   placement, not security, and Digest is already a dependency. *)
let hash_point (s : string) : int =
  let d = Digest.string s in
  let b i = Char.code d.[i] in
  let v =
    (b 0 lsl 56) lor (b 1 lsl 48) lor (b 2 lsl 40) lor (b 3 lsl 32)
    lor (b 4 lsl 24) lor (b 5 lsl 16) lor (b 6 lsl 8) lor b 7
  in
  v land max_int

let make ?(vnodes = 64) (names : string list) : t =
  if names = [] then invalid_arg "Ring.make: no shards";
  if vnodes < 1 then invalid_arg "Ring.make: vnodes < 1";
  let names = Array.of_list names in
  let points =
    Array.init (Array.length names * vnodes) (fun i ->
        let shard = i / vnodes and vn = i mod vnodes in
        (hash_point (Printf.sprintf "%s#%d" names.(shard) vn), shard))
  in
  Array.sort compare points;
  { names; points }

let size t = Array.length t.names
let name t i = t.names.(i)

(* Index into [points] of the first point at or after [h], wrapping. *)
let owner_point t (h : int) : int =
  let n = Array.length t.points in
  (* binary search for the leftmost point with position >= h *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route t (key : string) : int =
  snd t.points.(owner_point t (hash_point key))

(* Every distinct shard in ring order from the key's owner.  The head
   of the list is [route t key]. *)
let successors t (key : string) : int list =
  let n = Array.length t.points in
  let want = Array.length t.names in
  let seen = Array.make want false in
  let start = owner_point t (hash_point key) in
  let acc = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < want && !i < n do
    let shard = snd t.points.((start + !i) mod n) in
    if not seen.(shard) then begin
      seen.(shard) <- true;
      acc := shard :: !acc;
      incr found
    end;
    incr i
  done;
  List.rev !acc
