(* Constant folding.  Folds only deterministic cases:
   - all-concrete operands and a non-trapping operation;
   - strict operations with a poison operand fold to poison;
   - freeze of a fully-defined constant folds to the constant, and
     freeze(freeze x) to freeze x (the InstCombine additions of §6).
   Undef operands are left alone here: their folds are use-count
   sensitive and live in InstCombine where they can be gated. *)

open Ub_support
open Ub_ir
open Instr

let conc = function
  | Const (Constant.Int bv) -> Some bv
  | _ -> None

let is_poison_const = function
  | Const (Constant.Poison _) -> true
  | _ -> false

let int_const bv = Const (Constant.Int bv)

let fold_binop op (attrs : attrs) ty a b : operand option =
  match (conc a, conc b) with
  | Some x, Some y -> (
    let poison = Some (Const (Constant.Poison ty)) in
    match op with
    | Add ->
      if (attrs.nsw && Bitvec.add_nsw_overflows x y) || (attrs.nuw && Bitvec.add_nuw_overflows x y)
      then poison
      else Some (int_const (Bitvec.add x y))
    | Sub ->
      if (attrs.nsw && Bitvec.sub_nsw_overflows x y) || (attrs.nuw && Bitvec.sub_nuw_overflows x y)
      then poison
      else Some (int_const (Bitvec.sub x y))
    | Mul ->
      if (attrs.nsw && Bitvec.mul_nsw_overflows x y) || (attrs.nuw && Bitvec.mul_nuw_overflows x y)
      then poison
      else Some (int_const (Bitvec.mul x y))
    | UDiv ->
      if Bitvec.is_zero y then None (* immediate UB: must not fold away *)
      else if attrs.exact && not (Bitvec.udiv_exact x y) then poison
      else Some (int_const (Bitvec.udiv x y))
    | SDiv ->
      if Bitvec.is_zero y || Bitvec.sdiv_overflows x y then None
      else if attrs.exact && not (Bitvec.sdiv_exact x y) then poison
      else Some (int_const (Bitvec.sdiv x y))
    | URem -> if Bitvec.is_zero y then None else Some (int_const (Bitvec.urem x y))
    | SRem ->
      if Bitvec.is_zero y || Bitvec.sdiv_overflows x y then None
      else Some (int_const (Bitvec.srem x y))
    | Shl ->
      (* shift past bitwidth is undef in old modes and poison in the
         proposed one; folding it to either would be unsound under the
         other semantics, so we leave out-of-range shifts alone *)
      if not (Bitvec.shift_in_range x y) then None
      else begin
        let n = Bitvec.to_uint_exn y in
        if (attrs.nsw && Bitvec.shl_nsw_overflows x n) || (attrs.nuw && Bitvec.shl_nuw_overflows x n)
        then poison
        else Some (int_const (Bitvec.shl x n))
      end
    | LShr ->
      if not (Bitvec.shift_in_range x y) then None
      else begin
        let n = Bitvec.to_uint_exn y in
        if attrs.exact && not (Bitvec.lshr_exact x n) then poison
        else Some (int_const (Bitvec.lshr x n))
      end
    | AShr ->
      if not (Bitvec.shift_in_range x y) then None
      else begin
        let n = Bitvec.to_uint_exn y in
        if attrs.exact && not (Bitvec.ashr_exact x n) then poison
        else Some (int_const (Bitvec.ashr x n))
      end
    | And -> Some (int_const (Bitvec.logand x y))
    | Or -> Some (int_const (Bitvec.logor x y))
    | Xor -> Some (int_const (Bitvec.logxor x y)))
  | _ ->
    (* strict poison propagation, except division by poison (immediate UB
       in our default modes — leave it in place) *)
    if (is_poison_const a || is_poison_const b) && not (Instr.is_div op) then
      Some (Const (Constant.Poison ty))
    else None

let fold_icmp pred ty a b : operand option =
  ignore ty;
  match (conc a, conc b) with
  | Some x, Some y ->
    let r =
      match pred with
      | Eq -> Bitvec.eq x y
      | Ne -> Bitvec.ne x y
      | Ugt -> Bitvec.ugt x y
      | Uge -> Bitvec.uge x y
      | Ult -> Bitvec.ult x y
      | Ule -> Bitvec.ule x y
      | Sgt -> Bitvec.sgt x y
      | Sge -> Bitvec.sge x y
      | Slt -> Bitvec.slt x y
      | Sle -> Bitvec.sle x y
    in
    Some (Const (Constant.bool r))
  | _ ->
    if is_poison_const a || is_poison_const b then Some (Const (Constant.Poison (Types.Int 1)))
    else None

let fold_insn (_fn : Func.t) (named : Instr.named) : Pass.rewrite =
  match named.ins with
  | Binop (op, attrs, ty, a, b) -> (
    match fold_binop op attrs ty a b with
    | Some op' -> Pass.Replace_with op'
    | None -> Pass.Keep)
  | Icmp (pred, ty, a, b) -> (
    match fold_icmp pred ty a b with
    | Some op' -> Pass.Replace_with op'
    | None -> Pass.Keep)
  | Select (Const (Constant.Int c), _, a, b) ->
    Pass.Replace_with (if Bitvec.is_one c then a else b)
  | Select (Const (Constant.Poison _), ty, _, _) ->
    (* Select_conditional and Select_arith: poison condition => poison.
       (Under Select_ub_cond this deletes a UB — a legal refinement.) *)
    Pass.Replace_with (Const (Constant.Poison ty))
  | Conv (((Zext | Sext | Trunc) as op), _, Const (Constant.Int x), to_) ->
    (* ptrtoint/inttoptr are excluded: an integer constant cannot stand
       in for a pointer-typed result under the validator *)
    let w = Types.bitwidth to_ in
    let v =
      match op with
      | Zext -> Bitvec.zext x ~width:w
      | Sext -> Bitvec.sext x ~width:w
      | Trunc -> Bitvec.trunc x ~width:w
      | Ptrtoint | Inttoptr -> assert false
    in
    Pass.Replace_with (int_const v)
  | Conv (_, _, Const (Constant.Poison _), to_) ->
    Pass.Replace_with (Const (Constant.Poison to_))
  | Freeze (_, (Const (Constant.Int _) as c)) -> Pass.Replace_with c
  | Freeze (_, (Const (Constant.Null _) as c)) -> Pass.Replace_with c
  | _ -> Pass.Keep

let pass : Pass.t =
  { Pass.name = "constfold"; run = (fun _cfg fn -> Pass.rewrite_to_fixpoint fold_insn fn) }
