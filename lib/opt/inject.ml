(* The injected-bug catalog: named, individually switchable versions of
   the classic unsound rewrites from the paper's Section 3 (plus the
   stale-flag class of Section 10.2).  Each entry is a deliberately
   wrong transformation that old LLVM really performed; the hunting farm
   (lib/hunt) measures its own recall by enabling one entry at a time
   and asserting the campaign rediscovers it.

   Entries are enabled by name through [Pass.config.inject]; the [pass]
   below is the identity when that list is empty, so it can sit at the
   end of a pipeline unconditionally.  Every entry records:
   - [section]: where the paper discusses the bug;
   - [modes]: semantics-mode names under which the rewrite is actually
     refuted by the checker (the hunting lanes to run).  These are
     verified empirically by test_hunt's recall gate;
   - [needs_undef]/[needs_cfg]/[needs_mem]: what the generated corpus
     must contain for the bug to be observable at all. *)

open Ub_support
open Ub_ir
open Instr

type entry = {
  name : string;
  section : string; (* paper citation, e.g. "S3.1" *)
  doc : string;
  modes : string list; (* mode names the bug is discoverable under *)
  needs_undef : bool; (* corpus must contain undef operands *)
  needs_cfg : bool; (* corpus must contain branches/phis *)
  needs_mem : bool; (* corpus must contain allocations and memory ops *)
  backend : string option; (* a lib/backend/mir_inject bug name: the bug
                              lives in the lowering, not in an IR rewrite;
                              [apply] is the identity and the hunt compiles
                              each program twice instead *)
  apply : Func.t -> Func.t;
}

(* ------------------------------------------------------------------ *)
(* Pattern helpers                                                     *)
(* ------------------------------------------------------------------ *)

let conc = function Const (Constant.Int bv) -> Some bv | _ -> None
let is_one op = match conc op with Some bv -> Bitvec.is_one bv | None -> false
let is_true = is_one
let is_zero op = match conc op with Some bv -> Bitvec.is_zero bv | None -> false
let is_false = is_zero

let is_const_int n op =
  match conc op with
  | Some bv -> Bitvec.equal bv (Bitvec.of_int ~width:(Bitvec.width bv) n)
  | None -> false

let is_undef = function Const (Constant.Undef _) -> true | _ -> false

let peephole rule = Pass.rewrite_to_fixpoint rule

(* ------------------------------------------------------------------ *)
(* Peephole entries                                                    *)
(* ------------------------------------------------------------------ *)

(* shl x,1 => shl nsw x,1: a manufactured no-signed-wrap flag (the
   stale-flag bug class of Section 10.2).  Poison appears where the
   source had a value whenever the shift overflows. *)
let shl_nsw =
  peephole (fun _fn named ->
      match named.ins with
      | Binop (Shl, attrs, ty, x, one) when is_one one && not attrs.nsw ->
        Pass.Replace_ins (Binop (Shl, { attrs with nsw = true }, ty, x, one))
      | _ -> Pass.Keep)

(* udiv x,y => udiv exact x,y: claims the division has no remainder.
   (y = 1 is excluded: that one really is exact.) *)
let udiv_exact =
  peephole (fun _fn named ->
      match named.ins with
      | Binop (UDiv, attrs, ty, x, y) when (not attrs.exact) && not (is_one y) ->
        Pass.Replace_ins (Binop (UDiv, { attrs with exact = true }, ty, x, y))
      | _ -> Pass.Keep)

(* mul x,2 => add x,x without the freeze guard: duplicates an SSA use,
   so an undef x can take two different values (Section 3.1).  Only
   observable in modes where undef exists. *)
let mul2_add_dup =
  peephole (fun _fn named ->
      match named.ins with
      | Binop (Mul, attrs, ty, x, two) when is_const_int 2 two ->
        Pass.Replace_ins (Binop (Add, { attrs with exact = false }, ty, x, x))
      | _ -> Pass.Keep)

(* select c, true, x => or c, x (Section 3.4): the non-chosen arm's
   poison leaks through the or.  Sound only under the LangRef
   Select_arith reading. *)
let select_or_true =
  peephole (fun _fn named ->
      match named.ins with
      | Select (c, ty, t, x) when Types.is_bool ty && is_true t ->
        Pass.Replace_ins (Binop (Or, no_attrs, ty, c, x))
      | _ -> Pass.Keep)

(* select c, x, false => and c, x: the dual rewrite. *)
let select_and_false =
  peephole (fun _fn named ->
      match named.ins with
      | Select (c, ty, x, f) when Types.is_bool ty && is_false f ->
        Pass.Replace_ins (Binop (And, no_attrs, ty, c, x))
      | _ -> Pass.Keep)

(* select c, x, undef => x (PR31633, Section 3.4): wrong because x may
   be poison and poison is strictly stronger than undef. *)
let select_undef_arm =
  peephole (fun _fn named ->
      match named.ins with
      | Select (_, _, x, u) when is_undef u -> Pass.Replace_with x
      | Select (_, _, u, x) when is_undef u -> Pass.Replace_with x
      | _ -> Pass.Keep)

(* freeze(binop nsw/nuw x y) => binop nsw/nuw (freeze x) (freeze y):
   hoisting freeze past an instruction that *produces* poison.  The
   source is never poison (frozen); the target is poison on overflow. *)
let freeze_hoist_nsw =
  peephole (fun fn named ->
      match named.ins with
      | Freeze (_, Var v) -> (
        match Func.find_def fn v with
        | Some { Instr.ins = Binop (op, attrs, ty', x, y); _ }
          when attrs.nsw || attrs.nuw -> (
          match named.def with
          | Some def ->
            let fx = "inj.f1." ^ def and fy = "inj.f2." ^ def in
            Pass.Expand
              [ { Instr.def = Some fx; ins = Freeze (ty', x) };
                { Instr.def = Some fy; ins = Freeze (ty', y) };
                { named with ins = Binop (op, attrs, ty', Var fx, Var fy) };
              ]
          | None -> Pass.Keep)
        | _ -> Pass.Keep)
      | _ -> Pass.Keep)

(* freeze x => x: GVN treating freeze(x) as equal to x (Section 5
   "freeze" / Section 6 GVN limitation).  Reintroduces the very
   poison/undef the freeze was inserted to stop. *)
let gvn_freeze_elim =
  peephole (fun _fn named ->
      match named.ins with
      | Freeze (_, x) -> Pass.Replace_with x
      | _ -> Pass.Keep)

(* add nsw (add nsw a b) c => add nsw a (add nsw b c): reassociation
   keeping the nsw flags (Section 3.2).  The new intermediate b+c may
   overflow on inputs where the original association did not. *)
let reassoc_nsw =
  peephole (fun fn named ->
      match named.ins with
      | Binop (Add, attrs, ty, Var v, c)
        when attrs.nsw && not attrs.nuw
             (* don't re-fire on our own expansion output: the fresh
                name is derived from [named.def], so a second firing on
                the same def would collide *)
             && not (String.length v >= 7 && String.sub v 0 7 = "inj.ra.") -> (
        match Func.find_def fn v with
        | Some { Instr.ins = Binop (Add, attrs2, _, a, b); _ }
          when attrs2.nsw && Func.use_count fn v = 1 -> (
          match named.def with
          | Some def when Func.find_def fn ("inj.ra." ^ def) = None ->
            let t = "inj.ra." ^ def in
            Pass.Expand
              [ { Instr.def = Some t; ins = Binop (Add, nsw_only, ty, b, c) };
                { named with ins = Binop (Add, nsw_only, ty, a, Var t) };
              ]
          | _ -> Pass.Keep)
        | _ -> Pass.Keep)
      | _ -> Pass.Keep)

(* ------------------------------------------------------------------ *)
(* Function-level entries (need control flow)                          *)
(* ------------------------------------------------------------------ *)

(* LICM-style speculation of a trapping division (Section 3.3 / the
   hoisting family of Section 2): move the first udiv/sdiv/urem/srem
   whose operands are available in the entry block up into the entry
   block.  Executions that never reached the division now trap (or
   trip the div-by-poison UB rule) unconditionally. *)
let spec_div_hoist (fn : Func.t) : Func.t =
  match fn.Func.blocks with
  | entry :: rest when rest <> [] ->
    let entry_defs = List.filter_map (fun n -> n.Instr.def) entry.Func.insns in
    let avail = List.map fst fn.Func.args @ entry_defs in
    let ok_op = function Const _ -> true | Var v -> List.mem v avail in
    let found = ref None in
    List.iter
      (fun (b : Func.block) ->
        if !found = None then
          List.iteri
            (fun i n ->
              if !found = None then
                match n.Instr.ins with
                | Binop ((UDiv | SDiv | URem | SRem), _, _, x, y) when ok_op x && ok_op y
                  ->
                  found := Some (b.Func.label, i, n)
                | _ -> ())
            b.Func.insns)
      rest;
    (match !found with
    | None -> fn
    | Some (lbl, i, n) ->
      let rest' =
        List.map
          (fun (b : Func.block) ->
            if b.Func.label = lbl then
              { b with Func.insns = List.filteri (fun j _ -> j <> i) b.Func.insns }
            else b)
          rest
      in
      { fn with Func.blocks = { entry with Func.insns = entry.Func.insns @ [ n ] } :: rest' })
  | _ -> fn

(* GVN's equality propagation (Section 3.3): after `br (icmp eq v, w)`,
   replace uses of w by v inside the then-branch (including phi values
   arriving from it).  Under Branch_nondet a poison condition may enter
   the branch without UB, and v may be poison where w was a value. *)
let gvn_eq_propagate (fn : Func.t) : Func.t =
  match fn.Func.blocks with
  | entry :: _ -> (
    match entry.Func.term with
    | Cond_br (Var c, l_then, l_else) when l_then <> l_else -> (
      match Func.find_def fn c with
      | Some { Instr.ins = Icmp (Eq, _, (Var _ as v), w); _ } when w <> v ->
        let subst op = if op = w then v else op in
        let subst_ins ins = Instr.map_operands subst ins in
        let subst_phi ins =
          match ins with
          | Phi (ty, incoming) ->
            Phi
              (ty, List.map (fun (op, l) -> if l = l_then then (subst op, l) else (op, l)) incoming)
          | _ -> ins
        in
        let blocks =
          List.map
            (fun (b : Func.block) ->
              if b.Func.label = l_then then
                { b with
                  Func.insns =
                    List.map (fun n -> { n with Instr.ins = subst_ins n.Instr.ins }) b.Func.insns;
                  Func.term =
                    (match b.Func.term with
                    | Ret (ty, op) -> Ret (ty, subst op)
                    | Cond_br (op, a, bl) -> Cond_br (subst op, a, bl)
                    | t -> t);
                }
              else
                { b with
                  Func.insns =
                    List.map (fun n -> { n with Instr.ins = subst_phi n.Instr.ins }) b.Func.insns;
                })
            fn.Func.blocks
        in
        { fn with Func.blocks }
      | _ -> fn)
    | _ -> fn)
  | [] -> fn

(* SimplifyCFG's phi => select on an empty diamond (Section 3.4): fold
   `br c, t, e` over two empty forwarding blocks into selects in the
   join block.  Whether this is sound depends entirely on the select
   semantics chosen — the paper's point. *)
let phi_to_select (fn : Func.t) : Func.t =
  match fn.Func.blocks with
  | entry :: _ -> (
    match entry.Func.term with
    | Cond_br (c, lt, le) when lt <> le -> (
      match (Func.find_block fn lt, Func.find_block fn le) with
      | Some bt, Some be when bt.Func.insns = [] && be.Func.insns = [] -> (
        match (bt.Func.term, be.Func.term) with
        | Br xt, Br xe
          when xt = xe
               && xt <> entry.Func.label
               && Func.preds_of fn lt = [ entry.Func.label ]
               && Func.preds_of fn le = [ entry.Func.label ]
               && List.sort compare (Func.preds_of fn xt) = List.sort compare [ lt; le ] ->
          let convertible = ref true in
          let convert (n : Instr.named) =
            match n.Instr.ins with
            | Phi (ty, incoming) -> (
              match (List.assoc_opt lt (List.map (fun (o, l) -> (l, o)) incoming),
                     List.assoc_opt le (List.map (fun (o, l) -> (l, o)) incoming))
              with
              | Some a, Some b -> { n with Instr.ins = Select (c, ty, a, b) }
              | _ ->
                convertible := false;
                n)
            | _ -> n
          in
          let blocks =
            List.filter_map
              (fun (b : Func.block) ->
                if b.Func.label = lt || b.Func.label = le then None
                else if b.Func.label = entry.Func.label then
                  Some { b with Func.term = Br xt }
                else if b.Func.label = xt then
                  Some { b with Func.insns = List.map convert b.Func.insns }
                else Some b)
              fn.Func.blocks
          in
          if !convertible then { fn with Func.blocks } else fn
        | _ -> fn)
      | _ -> fn)
    | _ -> fn)
  | [] -> fn

(* ------------------------------------------------------------------ *)
(* Memory entries (need allocations and memory ops)                    *)
(* ------------------------------------------------------------------ *)

(* Store-to-load forwarding assuming syntactic noalias: replace a load
   with the value most recently stored through the *syntactically same*
   pointer, skipping an intervening store through a different SSA
   pointer.  Wrong whenever the other pointer aliases — e.g. it was
   recovered from the same address by a ptrtoint/inttoptr round-trip
   (the provenance blind spot of Section 4.2 / Beck et al.). *)
let store_forward_alias (fn : Func.t) : Func.t =
  let found = ref None in
  List.iter
    (fun (b : Func.block) ->
      if !found = None then
        List.iteri
          (fun j (n : Instr.named) ->
            if !found = None then
              match (n.Instr.def, n.Instr.ins) with
              | Some d, Load (ty, p) ->
                (* walk back to the nearest store through [p]; only fire
                   if a store through a different pointer intervenes *)
                let rec back i intervening =
                  if i >= 0 then
                    match (List.nth b.Func.insns i).Instr.ins with
                    | Store (ty2, v2, p2) ->
                      if p2 = p then begin
                        if intervening && Types.equal ty2 ty then
                          found := Some (b.Func.label, j, d, v2)
                      end
                      else back (i - 1) true
                    | _ -> back (i - 1) intervening
                in
                back (j - 1) false
              | _ -> ())
          b.Func.insns)
    fn.Func.blocks;
  match !found with
  | None -> fn
  | Some (lbl, j, d, v) ->
    let subst op = if op = Var d then v else op in
    { fn with
      Func.blocks =
        List.map
          (fun (b : Func.block) ->
            let insns =
              if b.Func.label = lbl then List.filteri (fun i _ -> i <> j) b.Func.insns
              else b.Func.insns
            in
            { b with
              Func.insns =
                List.map (fun n -> { n with Instr.ins = Instr.map_operands subst n.Instr.ins }) insns;
              Func.term = Instr.map_term_operands subst b.Func.term;
            })
          fn.Func.blocks;
    }

(* Load widening without the allocation-size guard: every i8 load
   becomes a <2 x i8> vector load plus extractelement 0.  Contrast
   lib/opt/load_widen.ml, which only widens when the underlying malloc
   is known to have >= 4 bytes left; dropping the guard reads one byte
   past a 1-byte allocation — out-of-bounds UB the source never had. *)
let load_widen_oob =
  peephole (fun fn named ->
      match named.ins with
      | Load ((Types.Int 8 as ty), p) -> (
        match named.def with
        | Some def when Func.find_def fn ("inj.lw." ^ def) = None ->
          let vty = Types.Vec (2, ty) in
          let pv = "inj.lw." ^ def and wide = "inj.lv." ^ def in
          Pass.Expand
            [ { Instr.def = Some pv; ins = Bitcast (Types.Ptr ty, p, Types.Ptr vty) };
              { Instr.def = Some wide; ins = Load (vty, Var pv) };
              { named with
                ins = Extractelement (vty, Var wide, Const (Constant.of_int ~width:32 0));
              };
            ]
        | _ -> Pass.Keep)
      | _ -> Pass.Keep)

(* Heap-to-stack promotion: call @malloc(n) => call @alloca(n).  In the
   infinite phase the two are indistinguishable, but under a finite
   memory (Beck et al.) an exhausted malloc returns null — the program
   can test and survive — while an exhausted alloca is UB.  Refuted by
   the enumeration checker's finite phases. *)
let malloc_to_alloca =
  peephole (fun _fn named ->
      match named.ins with
      | Call (Some rty, "malloc", args) -> Pass.Replace_ins (Call (Some rty, "alloca", args))
      | _ -> Pass.Keep)

(* Demote a pointer-typed store to an integer store of the cast address:
   store ty* v, pp => store i32 (ptrtoint v) through a bitcast of pp.
   The address bits are identical, but the stored bytes lose their
   provenance (Prov_alloc => Prov_none) — exactly the information the
   byte type of Beck et al. exists to preserve.  Observable through the
   memory fingerprint. *)
let store_ptr_int (fn : Func.t) : Func.t =
  let k = ref 0 in
  let expand (b : Func.block) =
    { b with
      Func.insns =
        List.concat_map
          (fun (n : Instr.named) ->
            match n.Instr.ins with
            | Store ((Types.Ptr _ as pty), v, pp) ->
              incr k;
              let i = Printf.sprintf "inj.spi.i%d" !k
              and c = Printf.sprintf "inj.spi.c%d" !k in
              let ity = Types.Int Types.pointer_bits in
              [ { Instr.def = Some i; ins = Conv (Ptrtoint, pty, v, ity) };
                { Instr.def = Some c; ins = Bitcast (Types.Ptr pty, pp, Types.Ptr ity) };
                { Instr.def = None; ins = Store (ity, Var i, Var c) };
              ]
            | _ -> [ n ])
          b.Func.insns;
    }
  in
  { fn with Func.blocks = List.map expand fn.Func.blocks }

(* ------------------------------------------------------------------ *)
(* The catalog                                                         *)
(* ------------------------------------------------------------------ *)

let all_mode_names =
  [ "proposed"; "old-unswitch"; "old-gvn"; "old-langref"; "old-simplifycfg" ]

let old_mode_names = [ "old-unswitch"; "old-gvn"; "old-langref"; "old-simplifycfg" ]

let nondet_branch_modes = [ "old-unswitch"; "old-langref"; "old-simplifycfg" ]

let all : entry list =
  [ { name = "shl-nsw";
      section = "S10.2";
      doc = "shl x,1 => shl nsw x,1 (stale flag manufactures poison)";
      modes = all_mode_names;
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = shl_nsw;
    };
    { name = "udiv-exact";
      section = "S10.2";
      doc = "udiv x,y => udiv exact x,y (stale exact flag)";
      modes = all_mode_names;
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = udiv_exact;
    };
    { name = "mul2-add-dup";
      section = "S3.1";
      doc = "mul x,2 => add x,x (duplicates a use of undef)";
      modes = old_mode_names;
      needs_undef = true;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = mul2_add_dup;
    };
    { name = "select-or-true";
      section = "S3.4";
      doc = "select c,true,x => or c,x (non-chosen arm's poison leaks)";
      modes = [ "proposed"; "old-unswitch"; "old-gvn"; "old-simplifycfg" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = select_or_true;
    };
    { name = "select-and-false";
      section = "S3.4";
      doc = "select c,x,false => and c,x (dual of select-or-true)";
      modes = [ "proposed"; "old-unswitch"; "old-gvn"; "old-simplifycfg" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = select_and_false;
    };
    { name = "select-undef-arm";
      section = "S3.4";
      doc = "select c,x,undef => x (PR31633: x may be poison)";
      modes = old_mode_names;
      needs_undef = true;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = select_undef_arm;
    };
    { name = "freeze-hoist-nsw";
      section = "S5";
      doc = "freeze(add nsw x,y) => add nsw (freeze x),(freeze y)";
      modes = all_mode_names;
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = freeze_hoist_nsw;
    };
    { name = "gvn-freeze-elim";
      section = "S6";
      doc = "freeze x => x (GVN folding freeze away)";
      modes = all_mode_names;
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = gvn_freeze_elim;
    };
    { name = "reassoc-nsw";
      section = "S3.2";
      doc = "add nsw (add nsw a,b),c => add nsw a,(add nsw b,c)";
      modes = all_mode_names;
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = None;
      apply = reassoc_nsw;
    };
    { name = "spec-div-hoist";
      section = "S3.3";
      doc = "hoist a guarded division into the entry block (LICM)";
      modes = all_mode_names;
      needs_undef = false;
      needs_cfg = true;
      needs_mem = false;
      backend = None;
      apply = spec_div_hoist;
    };
    { name = "gvn-eq-propagate";
      section = "S3.3";
      doc = "after br(icmp eq v,w), rewrite w to v in the then-branch";
      modes = nondet_branch_modes;
      needs_undef = false;
      needs_cfg = true;
      needs_mem = false;
      backend = None;
      apply = gvn_eq_propagate;
    };
    { name = "phi-select";
      section = "S3.4";
      doc = "empty diamond: phi => select in the join block";
      modes = [ "old-gvn"; "old-langref" ];
      needs_undef = false;
      needs_cfg = true;
      needs_mem = false;
      backend = None;
      apply = phi_to_select;
    };
    (* The memory family below is mode-independent (the bugs live in the
       memory model, not in poison/undef semantics), so a single
       proposed-mode lane suffices for the hunt. *)
    { name = "store-forward-alias";
      section = "S4.2";
      doc = "forward a store to a load across a store through an inttoptr alias";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = true;
      backend = None;
      apply = store_forward_alias;
    };
    { name = "load-widen-oob";
      section = "S4.2";
      doc = "widen load i8 to load <2 x i8> without the allocation-size guard";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = true;
      backend = None;
      apply = load_widen_oob;
    };
    { name = "malloc-to-alloca";
      section = "2404.16143";
      doc = "promote malloc to alloca (UB on exhaustion in the finite phase)";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = true;
      backend = None;
      apply = malloc_to_alloca;
    };
    { name = "store-ptr-int";
      section = "2404.16143";
      doc = "store a pointer as its ptrtoint integer (erases byte provenance)";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = true;
      backend = None;
      apply = store_ptr_int;
    };
    (* The backend family: miscompilations injected into the MIR rather
       than the IR (lib/backend/mir_inject), hunted by compiling each
       generated program twice and asking the lowering TV (lib/backend/tv)
       whether the buggy compile still refines.  Mode-independent — TV
       always interprets the source under the proposed semantics. *)
    { name = "drop-parallel-move-copy";
      section = "2402.05256";
      doc = "phi elimination loses one copy of a parallel move";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = Some "drop-parallel-move-copy";
      apply = Fun.id;
    };
    { name = "swap-without-temp";
      section = "2402.05256";
      doc = "parallel-move temps forward-substituted away; swap cycles break";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = Some "swap-without-temp";
      apply = Fun.id;
    };
    { name = "cmov-stale-flags";
      section = "S10.2";
      doc = "select's Test deleted; Cmov reads stale or undefined flags";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = Some "cmov-stale-flags";
      apply = Fun.id;
    };
    { name = "spill-slot-alias";
      section = "2402.05256";
      doc = "all spill slots collapse onto slot 0";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = Some "spill-slot-alias";
      apply = Fun.id;
    };
    { name = "const-prop-bad-arm";
      section = "S3.3";
      doc = "compared constant propagated into the not-equal arm of a protected branch";
      modes = [ "proposed" ];
      needs_undef = false;
      needs_cfg = false;
      needs_mem = false;
      backend = Some "const-prop-bad-arm";
      apply = Fun.id;
    };
  ]

let names = List.map (fun e -> e.name) all

let find name = List.find_opt (fun e -> e.name = name) all

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "unknown injected-bug entry %S (valid: %s)" name
         (String.concat ", " names))

(* The pass: apply every enabled entry, in catalog order.  Identity when
   [cfg.inject] is empty, so pipelines can include it unconditionally. *)
let pass : Pass.t =
  { Pass.name = "inject";
    run =
      (fun cfg fn ->
        List.fold_left
          (fun fn name -> (find_exn name).apply fn)
          fn cfg.Pass.inject);
  }
