(* Sparse conditional constant propagation over the lattice
   Top (never executed / unknown) < Const bv < Overdefined.

   Poison and undef constants go straight to Overdefined: assuming a
   value for them per-use is exactly the GCC footnote trap of Section 9
   ("optimizations like SCCP can assume multiple values for the same
   uninitialized variable"), and folding them would not be a refinement
   under every mode we support. *)

open Ub_support
open Ub_ir
open Instr

type lat = Top | Const_ of Bitvec.t | Over

let join a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Const_ x, Const_ y when Bitvec.equal x y -> a
  | _ -> Over

let run (_cfg : Pass.config) (fn : Func.t) : Func.t =
  let values : (Instr.var, lat) Hashtbl.t = Hashtbl.create 32 in
  (* arguments are unknown at compile time: Overdefined from the start *)
  List.iter (fun (a, _) -> Hashtbl.replace values a Over) fn.Func.args;
  let executable : (Instr.label, unit) Hashtbl.t = Hashtbl.create 16 in
  let edge_exec : (Instr.label * Instr.label, unit) Hashtbl.t = Hashtbl.create 16 in
  let get v = match Hashtbl.find_opt values v with Some l -> l | None -> Top in
  let lat_of_operand = function
    | Const (Constant.Int bv) -> Const_ bv
    | Const _ -> Over
    | Var v -> get v
  in
  let changed = ref true in
  let set v l =
    let old = get v in
    let nw = join old l in
    if nw <> old then begin
      Hashtbl.replace values v nw;
      changed := true
    end
  in
  let mark_block l =
    if not (Hashtbl.mem executable l) then begin
      Hashtbl.replace executable l ();
      changed := true
    end
  in
  let mark_edge f t =
    if not (Hashtbl.mem edge_exec (f, t)) then begin
      Hashtbl.replace edge_exec (f, t) ();
      changed := true
    end;
    mark_block t
  in
  mark_block (Func.entry fn).label;
  (* fixpoint *)
  let iter_limit = ref (List.length fn.blocks * 64 + 256) in
  while !changed && !iter_limit > 0 do
    changed := false;
    decr iter_limit;
    List.iter
      (fun (b : Func.block) ->
        if Hashtbl.mem executable b.label then begin
          List.iter
            (fun { Instr.def; ins } ->
              match def with
              | None -> ()
              | Some d -> (
                match ins with
                | Phi (_, incoming) ->
                  let l =
                    List.fold_left
                      (fun acc (v, from) ->
                        if Hashtbl.mem edge_exec (from, b.label) then
                          join acc (lat_of_operand v)
                        else acc)
                      Top incoming
                  in
                  set d l
                | Binop (op, attrs, ty, a, b') -> (
                  match (lat_of_operand a, lat_of_operand b') with
                  | Const_ x, Const_ y -> (
                    match
                      Constant_fold.fold_binop op attrs ty (Const (Constant.Int x))
                        (Const (Constant.Int y))
                    with
                    | Some (Const (Constant.Int r)) -> set d (Const_ r)
                    | _ -> set d Over)
                  | Over, _ | _, Over -> set d Over
                  | _ -> ())
                | Icmp (pred, ty, a, b') -> (
                  match (lat_of_operand a, lat_of_operand b') with
                  | Const_ x, Const_ y -> (
                    match
                      Constant_fold.fold_icmp pred ty (Const (Constant.Int x))
                        (Const (Constant.Int y))
                    with
                    | Some (Const (Constant.Int r)) -> set d (Const_ r)
                    | _ -> set d Over)
                  | Over, _ | _, Over -> set d Over
                  | _ -> ())
                | Select (c, _, a, b') -> (
                  match lat_of_operand c with
                  | Const_ cv ->
                    set d (lat_of_operand (if Bitvec.is_one cv then a else b'))
                  | Over -> set d (join (lat_of_operand a) (lat_of_operand b'))
                  | Top -> ())
                | Conv ((Ptrtoint | Inttoptr), _, _, _) ->
                  (* never propagated: an integer lattice constant
                     cannot replace a pointer-typed value *)
                  set d Over
                | Conv (op, _, x, to_) -> (
                  let w = Types.bitwidth to_ in
                  match lat_of_operand x with
                  | Const_ xv ->
                    let r =
                      match op with
                      | Zext -> Bitvec.zext xv ~width:w
                      | Sext -> Bitvec.sext xv ~width:w
                      | Trunc -> Bitvec.trunc xv ~width:w
                      | Ptrtoint | Inttoptr -> assert false
                    in
                    set d (Const_ r)
                  | Over -> set d Over
                  | Top -> ())
                | Freeze (_, x) -> (
                  (* freeze of a known constant is that constant *)
                  match lat_of_operand x with
                  | Const_ xv -> set d (Const_ xv)
                  | Over -> set d Over
                  | Top -> ())
                | _ -> set d Over))
            b.insns;
          match b.term with
          | Br t -> mark_edge b.label t
          | Cond_br (c, t, e) -> (
            match lat_of_operand c with
            | Const_ cv -> mark_edge b.label (if Bitvec.is_one cv then t else e)
            | Over ->
              mark_edge b.label t;
              mark_edge b.label e
            | Top -> ())
          | Ret _ | Ret_void | Unreachable -> ()
        end)
      fn.blocks
  done;
  (* rewrite: replace defs that settled on a constant; fold branches on
     constants; leave unreachable-block removal to simplifycfg *)
  let substs = ref [] in
  let fn' =
    Func.map_insns fn (fun n ->
        match n.Instr.def with
        | Some d -> (
          match get d with
          | Const_ bv when not (Instr.has_side_effects n.Instr.ins) -> (
            match n.Instr.ins with
            | Phi _ | Binop _ | Icmp _ | Select _ | Conv _ | Freeze _ ->
              substs := (d, Const (Constant.Int bv)) :: !substs;
              []
            | _ -> [ n ])
          | _ -> [ n ])
        | None -> [ n ])
  in
  let fn' = List.fold_left (fun acc (v, by) -> Func.replace_uses acc ~v ~by) fn' !substs in
  Simplifycfg.fold_constant_branches fn'

let pass : Pass.t = { Pass.name = "sccp"; run }
