(* The -O2-style pipeline, assembled the way the paper's experiments run
   it: the same pass order for the baseline and the freeze prototype,
   with behaviour differences coming only from the configuration. *)

let o2_function_passes : Pass.t list =
  [ Simplifycfg.pass;
    Sccp.pass;
    Instcombine.pass;
    Constant_fold.pass;
    Reassociate.pass;
    Gvn.pass;
    Jump_threading.pass;
    Simplifycfg.pass;
    Licm.pass;
    Loop_unswitch.pass;
    Indvar_widen.pass;
    Instcombine.pass;
    Constant_fold.pass;
    Gvn.pass;
    Load_widen.pass;
    Dce.pass;
    Simplifycfg.pass;
    Cgp.pass;
    Dce.pass;
  ]

(* A short pipeline for the opt-fuzz validation experiment (the paper
   validates InstCombine, GVN, Reassociation and SCCP individually plus
   -O2; loop passes never fire on the straight-line fuzz corpus). *)
let fuzz_passes : Pass.t list =
  [ Instcombine.pass; Gvn.pass; Reassociate.pass; Sccp.pass; Inject.pass ]

let run_o2 (cfg : Pass.config) (m : Ub_ir.Func.module_) : Ub_ir.Func.module_ =
  Ub_obs.Obs.with_span "opt.pipeline.o2" @@ fun () ->
  let m = Inline.run_module cfg m in
  Pass.run_pipeline_module cfg o2_function_passes m

let run_o2_func (cfg : Pass.config) (fn : Ub_ir.Func.t) : Ub_ir.Func.t =
  Ub_obs.Obs.with_span "opt.pipeline.o2" @@ fun () ->
  Pass.run_pipeline cfg o2_function_passes fn
