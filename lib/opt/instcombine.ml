(* InstCombine: the peephole catalog.  Every rewrite here is annotated
   with its soundness story under the proposed semantics; the ones that
   are only sound under a *different* old semantics (Section 3.4) are
   gated behind [legacy_bugs] so the miscompilation experiments can turn
   them on, and the freeze-based fixed forms are gated behind [freeze].

   The opt-fuzz experiment (bench t-optfuzz-validate) validates this pass
   against the refinement checker on every 3-instruction function. *)

open Ub_support
open Ub_ir
open Instr

let conc = function Const (Constant.Int bv) -> Some bv | _ -> None

let is_zero op = match conc op with Some bv -> Bitvec.is_zero bv | None -> false
let is_one op = match conc op with Some bv -> Bitvec.is_one bv | None -> false
let is_all_ones op = match conc op with Some bv -> Bitvec.is_all_ones bv | None -> false
let is_true = is_one
let is_false = is_zero

let is_undef = function Const (Constant.Undef _) -> true | _ -> false

let czero ty = Const (Constant.zero ty)
let cint ~width i = Const (Constant.of_int ~width i)

let def_of fn op =
  match op with
  | Var v -> Func.find_def fn v
  | Const _ -> None

(* How many uses does a register have?  freeze-folding in GVN is only
   sound when replacing all uses; single-use checks also gate the
   use-count-sensitive undef folds. *)
let use_count = Func.use_count

let rule (cfg : Pass.config) (fn : Func.t) (named : Instr.named) : Pass.rewrite =
  match named.ins with
  (* ---------------- binop identities (sound in every mode) -------- *)
  | Binop (Add, _, _, x, z) when is_zero z -> Pass.Replace_with x
  | Binop (Add, _, _, z, x) when is_zero z -> Pass.Replace_with x
  | Binop (Sub, _, _, x, z) when is_zero z -> Pass.Replace_with x
  | Binop (Mul, _, _, x, o) when is_one o -> Pass.Replace_with x
  | Binop (Mul, _, _, o, x) when is_one o -> Pass.Replace_with x
  (* x*0 -> 0: sound — poison*0 is poison in the source, and poison
     covers 0 *)
  | Binop (Mul, _, ty, _, z) when is_zero z -> Pass.Replace_with (czero ty)
  | Binop (Mul, _, ty, z, _) when is_zero z -> Pass.Replace_with (czero ty)
  | Binop (And, _, _, x, y) when x = y -> Pass.Replace_with x
  | Binop (And, _, ty, _, z) when is_zero z -> Pass.Replace_with (czero ty)
  | Binop (And, _, ty, z, _) when is_zero z -> Pass.Replace_with (czero ty)
  | Binop (And, _, _, x, m) when is_all_ones m -> Pass.Replace_with x
  | Binop (And, _, _, m, x) when is_all_ones m -> Pass.Replace_with x
  | Binop (Or, _, _, x, y) when x = y -> Pass.Replace_with x
  | Binop (Or, _, _, x, z) when is_zero z -> Pass.Replace_with x
  | Binop (Or, _, _, z, x) when is_zero z -> Pass.Replace_with x
  | Binop (Or, _, ty, _, m) when is_all_ones m ->
    Pass.Replace_with (cint ~width:(Types.bitwidth ty) (-1))
  | Binop (Or, _, ty, m, _) when is_all_ones m ->
    Pass.Replace_with (cint ~width:(Types.bitwidth ty) (-1))
  (* x^x -> 0, x-x -> 0: sound — if x is poison the source is poison *)
  | Binop (Xor, _, ty, x, y) when x = y && not (is_undef x) -> Pass.Replace_with (czero ty)
  | Binop (Sub, _, ty, x, y) when x = y && not (is_undef x) -> Pass.Replace_with (czero ty)
  | Binop (Xor, _, _, x, z) when is_zero z -> Pass.Replace_with x
  | Binop (Xor, _, _, z, x) when is_zero z -> Pass.Replace_with x
  | Binop ((Shl | LShr | AShr), _, _, x, z) when is_zero z -> Pass.Replace_with x
  | Binop (UDiv, _, _, x, o) when is_one o -> Pass.Replace_with x
  | Binop (SDiv, _, _, x, o) when is_one o -> Pass.Replace_with x
  | Binop (URem, _, ty, _, o) when is_one o -> Pass.Replace_with (czero ty)
  (* ---------------- strength reduction ---------------------------- *)
  (* add x,x -> shl x,1: one use of x each side — sound in all modes *)
  | Binop (Add, attrs, ty, x, y) when x = y && Types.bitwidth ty > 1 ->
    Pass.Replace_ins (Binop (Shl, { attrs with exact = false }, ty, x, cint ~width:(Types.bitwidth ty) 1))
  (* mul x,2 -> add x,x: duplicates an SSA use — Section 3.1's bug.
     Unsound when x can be undef; sound in the proposed semantics. *)
  | Binop (Mul, attrs, ty, x, two)
    when (match conc two with Some bv -> Bitvec.equal bv (Bitvec.of_int ~width:(Bitvec.width bv) 2) | None -> false)
         && (cfg.Pass.legacy_bugs || cfg.Pass.freeze) ->
    Pass.Replace_ins (Binop (Add, { attrs with exact = false }, ty, x, x))
  (* mul x, 2^k -> shl x, k *)
  | Binop (Mul, _, ty, x, c)
    when (match conc c with
         | Some bv -> Bitvec.is_power_of_two bv && not (Bitvec.is_one bv) && not (Bitvec.equal bv (Bitvec.of_int ~width:(Bitvec.width bv) 2))
         | None -> false) ->
    let bv = Option.get (conc c) in
    Pass.Replace_ins
      (Binop (Shl, no_attrs, ty, x, cint ~width:(Types.bitwidth ty) (Bitvec.count_trailing_zeros bv)))
  (* udiv x, 2^k -> lshr x, k  (sound: both poison iff x poison) *)
  | Binop (UDiv, attrs, ty, x, c)
    when (match conc c with Some bv -> Bitvec.is_power_of_two bv && not (Bitvec.is_one bv) | None -> false) ->
    let bv = Option.get (conc c) in
    Pass.Replace_ins
      (Binop (LShr, { no_attrs with exact = attrs.exact }, ty, x,
              cint ~width:(Types.bitwidth ty) (Bitvec.count_trailing_zeros bv)))
  (* ---------------- icmp simplifications -------------------------- *)
  (* x == x -> true: sound — poison==poison is poison and poison covers
     true; undef==undef can be true *)
  | Icmp (Eq, _, x, y) when x = y -> Pass.Replace_with (Const (Constant.bool true))
  | Icmp (Ne, _, x, y) when x = y -> Pass.Replace_with (Const (Constant.bool false))
  | Icmp (Ult, _, _, z) when is_zero z -> Pass.Replace_with (Const (Constant.bool false))
  | Icmp (Uge, _, _, z) when is_zero z -> Pass.Replace_with (Const (Constant.bool true))
  | Icmp (Ule, _, _, m) when is_all_ones m -> Pass.Replace_with (Const (Constant.bool true))
  (* a+b > a  ->  b > 0  given nsw (the Section 2.4 motivating example) *)
  | Icmp (Sgt, ty, Var s, a) -> (
    match def_of fn (Var s) with
    | Some { Instr.ins = Binop (Add, attrs, _, x, y); _ } when attrs.nsw ->
      if x = a then Pass.Replace_ins (Icmp (Sgt, ty, y, czero ty))
      else if y = a then Pass.Replace_ins (Icmp (Sgt, ty, x, czero ty))
      else Pass.Keep
    | _ -> Pass.Keep)
  (* ---------------- select ----------------------------------------- *)
  | Select (c, _, a, _b) when is_true c -> Pass.Replace_with a
  | Select (c, _, _a, b) when is_false c -> Pass.Replace_with b
  | Select (_, _, a, b) when a = b && not (is_undef a) -> Pass.Replace_with a
  (* select c, true, x -> or c, x : sound ONLY under Select_arith
     (Section 3.4); enabled as a legacy bug.  The freeze pipeline uses
     or c, freeze(x) instead (Section 6 "Limitations"; note the paper
     freezes %c in prose but the non-chosen arm is what must be frozen —
     the checker in test_matrix demonstrates both facts). *)
  | Select (c, ty, t, x) when is_true t && Types.is_bool ty && named.def <> None ->
    if cfg.Pass.legacy_bugs then Pass.Replace_ins (Binop (Or, no_attrs, ty, c, x))
    else if cfg.Pass.freeze then begin
      (* derive the freeze's name from this def (unique in SSA):
         Func.fresh_var would hand the same name to two expansions
         landing in one rewrite iteration *)
      let fx = "ic.fr." ^ Option.get named.def in
      Pass.Expand
        [ { Instr.def = Some fx; ins = Freeze (ty, x) };
          { named with Instr.ins = Binop (Or, no_attrs, ty, c, Var fx) };
        ]
    end
    else Pass.Keep
  (* select c, x, false -> and c, x : same story *)
  | Select (c, ty, x, f) when is_false f && Types.is_bool ty && named.def <> None ->
    if cfg.Pass.legacy_bugs then Pass.Replace_ins (Binop (And, no_attrs, ty, c, x))
    else if cfg.Pass.freeze then begin
      let fx = "ic.fr." ^ Option.get named.def in
      Pass.Expand
        [ { Instr.def = Some fx; ins = Freeze (ty, x) };
          { named with Instr.ins = Binop (And, no_attrs, ty, c, Var fx) };
        ]
    end
    else Pass.Keep
  (* select c, x, undef -> x : the PR31633 bug (Section 3.4) — wrong
     because x could be poison, and poison is stronger than undef *)
  | Select (_, _, x, u) when is_undef u && cfg.Pass.legacy_bugs -> Pass.Replace_with x
  | Select (_, _, u, x) when is_undef u && cfg.Pass.legacy_bugs -> Pass.Replace_with x
  (* ---------------- conversions ------------------------------------ *)
  (* trunc(zext x) / trunc(sext x) back to original width -> x *)
  | Conv (Trunc, _, Var v, to_) -> (
    match def_of fn (Var v) with
    | Some { Instr.ins = Conv ((Zext | Sext), from2, x, _); _ } when Types.equal from2 to_ ->
      Pass.Replace_with x
    | _ -> Pass.Keep)
  (* zext(zext x) -> zext x; sext(sext x) -> sext x *)
  | Conv (Zext, _, Var v, to_) -> (
    match def_of fn (Var v) with
    | Some { Instr.ins = Conv (Zext, from2, x, _); _ } ->
      Pass.Replace_ins (Conv (Zext, from2, x, to_))
    | _ -> Pass.Keep)
  | Conv (Sext, _, Var v, to_) -> (
    match def_of fn (Var v) with
    | Some { Instr.ins = Conv (Sext, from2, x, _); _ } ->
      Pass.Replace_ins (Conv (Sext, from2, x, to_))
    | _ -> Pass.Keep)
  (* ---------------- freeze ----------------------------------------- *)
  (* freeze(freeze x) -> freeze x (Section 6) *)
  | Freeze (_, Var v) -> (
    match def_of fn (Var v) with
    | Some { Instr.ins = Freeze _; _ } -> Pass.Replace_with (Var v)
    | _ ->
      (* freeze x -> x when x is guaranteed not to be undef/poison *)
      if Ub_analysis.Known_bits.not_undef_or_poison fn (Var v) then Pass.Replace_with (Var v)
      else Pass.Keep)
  | _ -> Pass.Keep

let pass : Pass.t =
  { Pass.name = "instcombine"; run = (fun cfg fn -> Pass.rewrite_to_fixpoint (rule cfg) fn) }
