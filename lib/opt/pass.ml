(* Pass framework: configuration, the pass type, a rewrite engine for
   peephole passes, and the pass manager.

   The configuration mirrors the paper's prototype-vs-baseline axes:
   - [freeze]: the pipeline may emit freeze instructions (the paper's
     fixed passes do);
   - [legacy_bugs]: enable the *unsound* legacy behaviours of Section 3
     (loop unswitching without freeze, select->arith rewrites, GVN's
     select/undef folds, LICM division hoisting on up-to-poison facts,
     reassociation keeping nsw).  Used to reproduce miscompilations and
     as the "old LLVM" baseline;
   - [*_handles_freeze]: which passes have been taught about the new
     instruction (Section 6 "Optimizations": CodeGenPrepare was, jump
     threading was not — hence the nestedloop compile-time anomaly). *)

open Ub_ir

type config = {
  freeze : bool;
  legacy_bugs : bool;
  cgp_handles_freeze : bool;
  jt_handles_freeze : bool;
  inliner_freeze_free : bool;
  scev_freeze_aware : bool;
  inject : string list;
      (* test-only: names of deliberately unsound rewrites from the
         Inject catalog to enable, so the shrink engine, the hunting
         farm and their CI smokes have known bugs to rediscover *)
}

(* The baseline: LLVM as the paper found it. *)
let legacy =
  { freeze = false;
    legacy_bugs = true;
    cgp_handles_freeze = false;
    jt_handles_freeze = false;
    inliner_freeze_free = false;
    scev_freeze_aware = false;
    inject = [];
  }

(* The paper's prototype: freeze everywhere a fix needs it, unsound
   transformations removed, CodeGenPrepare and the inliner taught about
   freeze (Section 6), jump threading and scalar evolution not (their
   documented limitations). *)
let prototype =
  { freeze = true;
    legacy_bugs = false;
    cgp_handles_freeze = true;
    jt_handles_freeze = false;
    inliner_freeze_free = true;
    scev_freeze_aware = false;
    inject = [];
  }

(* A fully freeze-aware future pipeline (Section 10 upside). *)
let future =
  { prototype with jt_handles_freeze = true; scev_freeze_aware = true }

type t = { name : string; run : config -> Func.t -> Func.t }

type module_pass = { mp_name : string; mp_run : config -> Func.module_ -> Func.module_ }

(* ------------------------------------------------------------------ *)
(* Rewrite engine                                                      *)
(* ------------------------------------------------------------------ *)

type rewrite =
  | Keep
  | Replace_with of Instr.operand (* def := operand; instruction deleted *)
  | Replace_ins of Instr.t (* same def, different instruction *)
  | Expand of Instr.named list (* replacement sequence; must end with def *)

(* Apply a peephole [rule] everywhere, to fixpoint (bounded). *)
let rewrite_to_fixpoint ?(max_iters = 8) (rule : Func.t -> Instr.named -> rewrite)
    (fn : Func.t) : Func.t =
  let changed = ref true in
  let iters = ref 0 in
  let fn = ref fn in
  while !changed && !iters < max_iters do
    changed := false;
    incr iters;
    let substs = ref [] in
    let f = !fn in
    let fn' =
      Func.map_insns f (fun named ->
          match rule f named with
          | Keep -> [ named ]
          | Replace_with op ->
            (match named.Instr.def with
            | Some d ->
              substs := (d, op) :: !substs;
              changed := true
            | None -> ());
            []
          | Replace_ins ins ->
            changed := true;
            [ { named with Instr.ins } ]
          | Expand insns ->
            changed := true;
            insns)
    in
    let fn' =
      List.fold_left (fun acc (v, by) -> Func.replace_uses acc ~v ~by) fn' !substs
    in
    fn := fn'
  done;
  !fn

(* ------------------------------------------------------------------ *)
(* Pass manager                                                        *)
(* ------------------------------------------------------------------ *)

let src_log = Logs.Src.create "ub.opt" ~doc:"optimizer pass manager"

module Log = (val Logs.src_log src_log)

let run_pass (cfg : config) (p : t) (fn : Func.t) : Func.t =
  Ub_obs.Obs.with_span ("opt.pass." ^ p.name) @@ fun () ->
  let fn' = p.run cfg fn in
  (match Validate.check_func fn' with
  | [] -> ()
  | errs ->
    invalid_arg
      (Printf.sprintf "pass %s broke function @%s:\n%s\nresult:\n%s" p.name fn.Func.name
         (String.concat "\n" errs)
         (Printer.func_to_string fn')));
  fn'

let run_pipeline (cfg : config) (passes : t list) (fn : Func.t) : Func.t =
  List.fold_left (fun fn p -> run_pass cfg p fn) fn passes

let run_pipeline_module (cfg : config) (passes : t list) (m : Func.module_) : Func.module_ =
  { Func.funcs = List.map (run_pipeline cfg passes) m.funcs }
