(* Witness fingerprints: a canonical instruction-skeleton hash used to
   dedupe the campaign's findings.  Two shrunk witnesses of the *same*
   underlying bug, found from different seeds, almost always differ only
   in register names, argument order of discovery, and the particular
   constants the generator happened to pick — so the skeleton:

   - renumbers arguments, registers and labels by first occurrence;
   - keeps opcode, attributes (nsw/nuw/exact), types and the *shape* of
     each operand: which register/argument it is (canonically), or that
     it is a constant — dropping the constant's value but keeping the
     undef/poison distinction (those are the semantic payload here);
   - includes the terminator and block structure.

   The fingerprint of a (src, tgt) pair is the hash of both skeletons —
   the bug is the *rewrite*, so both sides matter.  Distinct catalog
   entries produce different instruction shapes and therefore distinct
   fingerprints; test_hunt asserts both directions. *)

open Ub_ir
open Instr

type renamer = {
  args : (string, string) Hashtbl.t;
  vars : (string, string) Hashtbl.t;
  labels : (string, string) Hashtbl.t;
}

let canon (fn : Func.t) : renamer =
  let r =
    { args = Hashtbl.create 8; vars = Hashtbl.create 16; labels = Hashtbl.create 8 }
  in
  List.iteri (fun i (v, _) -> Hashtbl.replace r.args v (Printf.sprintf "a%d" i)) fn.Func.args;
  let nv = ref 0 and nl = ref 0 in
  List.iter
    (fun (b : Func.block) ->
      Hashtbl.replace r.labels b.Func.label (Printf.sprintf "b%d" !nl);
      incr nl;
      List.iter
        (fun (n : Instr.named) ->
          match n.Instr.def with
          | Some d ->
            Hashtbl.replace r.vars d (Printf.sprintf "v%d" !nv);
            incr nv
          | None -> ())
        b.Func.insns)
    fn.Func.blocks;
  r

let operand_kind (r : renamer) : operand -> string = function
  | Var v -> (
    match Hashtbl.find_opt r.args v with
    | Some a -> a
    | None -> (
      match Hashtbl.find_opt r.vars v with Some x -> x | None -> "x?"))
  | Const (Constant.Undef _) -> "u"
  | Const (Constant.Poison _) -> "p"
  | Const _ -> "c"

let label_kind (r : renamer) (l : label) : string =
  match Hashtbl.find_opt r.labels l with Some x -> x | None -> "b?"

let attrs_kind (a : attrs) : string =
  (if a.nsw then " nsw" else "")
  ^ (if a.nuw then " nuw" else "")
  ^ if a.exact then " exact" else ""

let ins_skeleton (r : renamer) (ins : Instr.t) : string =
  let op = operand_kind r in
  match ins with
  | Binop (b, a, ty, x, y) ->
    Printf.sprintf "%s%s %s %s,%s" (Instr.binop_name b) (attrs_kind a) (Types.to_string ty)
      (op x) (op y)
  | Icmp (p, ty, x, y) ->
    Printf.sprintf "icmp %s %s %s,%s" (Instr.pred_name p) (Types.to_string ty) (op x) (op y)
  | Select (c, ty, x, y) ->
    Printf.sprintf "select %s %s %s,%s" (op c) (Types.to_string ty) (op x) (op y)
  | Freeze (ty, x) -> Printf.sprintf "freeze %s %s" (Types.to_string ty) (op x)
  | Conv (k, from, x, to_) ->
    Printf.sprintf "%s %s %s to %s" (Instr.conv_name k) (Types.to_string from) (op x)
      (Types.to_string to_)
  | Bitcast (from, x, to_) ->
    Printf.sprintf "bitcast %s %s to %s" (Types.to_string from) (op x) (Types.to_string to_)
  | Gep { inbounds; pointee; base; indices } ->
    Printf.sprintf "gep%s %s %s%s"
      (if inbounds then " inbounds" else "")
      (Types.to_string pointee) (op base)
      (String.concat ""
         (List.map (fun (t, i) -> Printf.sprintf ",%s %s" (Types.to_string t) (op i)) indices))
  | Load (ty, p) -> Printf.sprintf "load %s %s" (Types.to_string ty) (op p)
  | Store (ty, v, p) -> Printf.sprintf "store %s %s,%s" (Types.to_string ty) (op v) (op p)
  | Call (ret, callee, args) ->
    (* callee names are semantic (malloc/alloca/free), so they stay *)
    Printf.sprintf "call %s @%s(%s)"
      (match ret with Some ty -> Types.to_string ty | None -> "void")
      callee
      (String.concat ","
         (List.map (fun (t, a) -> Printf.sprintf "%s %s" (Types.to_string t) (op a)) args))
  | Phi (ty, incoming) ->
    Printf.sprintf "phi %s %s" (Types.to_string ty)
      (String.concat ","
         (List.map (fun (o, l) -> Printf.sprintf "[%s,%s]" (op o) (label_kind r l)) incoming))
  | other ->
    (* vector instructions never appear in hunt corpora; fall back to
       the printer with registers left intact *)
    Format.asprintf "%a" Printer.pp_insn { Instr.def = None; ins = other }

let term_skeleton (r : renamer) : terminator -> string =
  let op = operand_kind r in
  function
  | Ret (ty, x) -> Printf.sprintf "ret %s %s" (Types.to_string ty) (op x)
  | Ret_void -> "ret void"
  | Br l -> "br " ^ label_kind r l
  | Cond_br (c, t, e) -> Printf.sprintf "cbr %s %s,%s" (op c) (label_kind r t) (label_kind r e)
  | Unreachable -> "unreachable"

let skeleton (fn : Func.t) : string =
  let r = canon fn in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "f(%s)" (String.concat "," (List.map (fun (_, ty) -> Types.to_string ty) fn.Func.args)));
  List.iter
    (fun (b : Func.block) ->
      Buffer.add_string buf (Printf.sprintf "\n%s:" (label_kind r b.Func.label));
      List.iter
        (fun (n : Instr.named) ->
          let d = match n.Instr.def with Some v -> operand_kind r (Var v) ^ "=" | None -> "" in
          Buffer.add_string buf (Printf.sprintf "\n  %s%s" d (ins_skeleton r n.Instr.ins)))
        b.Func.insns;
      Buffer.add_string buf ("\n  " ^ term_skeleton r b.Func.term))
    fn.Func.blocks;
  Buffer.contents buf

let pair ~(src : Func.t) ~(tgt : Func.t) : string =
  Digest.to_hex (Digest.string (skeleton src ^ "\n=>\n" ^ skeleton tgt))

(* Backend findings have no IR target — the "rewrite" is the lowering
   bug itself, so the fingerprint pairs the source skeleton with the
   bug's name. *)
let backend ~(src : Func.t) ~(bug : string) : string =
  Digest.to_hex (Digest.string (skeleton src ^ "\n=>backend:" ^ bug))
