(* The hunting farm: stream generated programs through optimization
   lanes, check refinement, shrink every failure, fingerprint the shrunk
   witness and dedupe.  The campaign's recall is itself a tested number:
   enabling one injected-bug catalog entry at a time (lib/opt/inject.ml)
   must rediscover that entry within a fixed seed/program budget.

   Two execution paths share all accounting:
   - in-process: programs run through the fork pool (lib/exec/pool);
     a crashed or timed-out program is recorded as *dropped*, never
     silently lost;
   - daemon: optimization stays local, refinement checks are pipelined
     to a `ubc serve` daemon in batches; a deadline-exceeding, crashed,
     rejected or erroring submit is likewise *dropped*.

   The report's invariant, enforced by test_hunt: every unit of work is
   either completed or dropped. *)

open Ub_support
open Ub_ir
open Ub_sem
module Obs = Ub_obs.Obs
module Json = Ub_serve.Json

(* ------------------------------------------------------------------ *)
(* Lanes                                                               *)
(* ------------------------------------------------------------------ *)

(* A lane is one (pipeline configuration, semantics mode) pair every
   generated program is pushed through.  A *backend* lane instead names
   a lib/backend/mir_inject bug: the program is compiled twice (clean
   and buggy) and the lowering TV decides whether the buggy compile
   still refines — no IR passes run. *)
type lane = {
  lane_name : string;
  lane_cfg : Ub_opt.Pass.config;
  lane_passes : Ub_opt.Pass.t list;
  lane_mode : Mode.t;
  lane_backend : string option; (* mir_inject bug name *)
}

let fuzz_lane (cfg : Ub_opt.Pass.config) (mode : Mode.t) : lane =
  { lane_name = "fuzz/" ^ mode.Mode.name;
    lane_cfg = cfg;
    lane_passes = Ub_opt.Pipeline.fuzz_passes;
    lane_mode = mode;
    lane_backend = None;
  }

(* An injection lane runs *only* the catalog entry, so every finding is
   attributable to it (the sound passes would otherwise both destroy
   injection patterns and add their own rewrites). *)
let inject_lane ~(entry : string) (mode : Mode.t) : lane =
  { lane_name = Printf.sprintf "inject[%s]/%s" entry mode.Mode.name;
    lane_cfg = { Ub_opt.Pass.prototype with Ub_opt.Pass.inject = [ entry ] };
    lane_passes = [ Ub_opt.Inject.pass ];
    lane_mode = mode;
    lane_backend = None;
  }

(* A backend lane: the injected bug lives in the lowering.  TV always
   interprets the source under the proposed semantics. *)
let backend_lane ~(bug : string) : lane =
  { lane_name = Printf.sprintf "backend[%s]/%s" bug Mode.proposed.Mode.name;
    lane_cfg = Ub_opt.Pass.prototype;
    lane_passes = [];
    lane_mode = Mode.proposed;
    lane_backend = Some bug;
  }

(* ------------------------------------------------------------------ *)
(* Campaign configuration                                              *)
(* ------------------------------------------------------------------ *)

type config = {
  seed : int;
  programs : int; (* program budget *)
  gen : Ub_fuzz.Gen.hunt_params;
  lanes : lane list;
  jobs : int;
  timeout_s : float option; (* in-process: per-program pool timeout *)
  stop_after : int option; (* stop early after this many raw findings *)
  max_universal_bits : int;
  max_conflicts : int;
  max_shrink_steps : int;
}

(* Check budgets default to the reducer's own (reduce_universal_bits /
   reduce_conflicts) so that any counterexample the campaign finds is
   one the shrinker can reproduce. *)
let default_config ~seed ~programs ~lanes =
  { seed;
    programs;
    gen = Ub_fuzz.Gen.default_hunt;
    lanes;
    jobs = 1;
    timeout_s = None;
    stop_after = None;
    max_universal_bits = Ub_refine.Reduce.reduce_universal_bits;
    max_conflicts = Ub_refine.Reduce.reduce_conflicts;
    max_shrink_steps = 600;
  }

(* The per-entry isolation campaign the recall gate and `bench hunt`
   both run: inject-only lanes over the entry's discoverable modes, a
   corpus containing whatever the entry needs to be observable. *)
let entry_config ~seed ~programs (e : Ub_opt.Inject.entry) : config =
  let lanes =
    match e.Ub_opt.Inject.backend with
    | Some bug -> [ backend_lane ~bug ]
    | None ->
      List.filter_map
        (fun m -> Option.map (inject_lane ~entry:e.Ub_opt.Inject.name) (Mode.find m))
        e.Ub_opt.Inject.modes
  in
  let cfg = default_config ~seed ~programs ~lanes in
  { cfg with
    gen =
      { Ub_fuzz.Gen.default_hunt with
        Ub_fuzz.Gen.h_undef = e.Ub_opt.Inject.needs_undef;
        Ub_fuzz.Gen.h_cfg = e.Ub_opt.Inject.needs_cfg;
        Ub_fuzz.Gen.h_mem = e.Ub_opt.Inject.needs_mem;
        Ub_fuzz.Gen.h_backend = e.Ub_opt.Inject.backend <> None;
      };
  }

(* The clean campaign (false-positive gate): the real prototype pipeline
   under the proposed semantics, where it must be sound. *)
let clean_config ~seed ~programs : config =
  let cfg =
    default_config ~seed ~programs ~lanes:[ fuzz_lane Ub_opt.Pass.prototype Mode.proposed ]
  in
  { cfg with gen = { Ub_fuzz.Gen.default_hunt with Ub_fuzz.Gen.h_cfg = true } }

(* ------------------------------------------------------------------ *)
(* Findings and reports                                                *)
(* ------------------------------------------------------------------ *)

type finding = {
  fp : string; (* skeleton fingerprint of the shrunk pair *)
  f_lane : string;
  f_mode : string;
  f_backend : string option; (* backend lanes: the mir_inject bug name *)
  f_program : int; (* index of the generated program *)
  red_src : Func.t;
  red_tgt : Func.t;
  orig_insns : int;
  final_insns : int;
  oracle_calls : int;
  f_verdict : string; (* re-check class of the shrunk pair *)
}

type report = {
  r_programs : int; (* requested budget *)
  r_completed : int; (* programs fully processed *)
  r_changed : int; (* (program, lane) pairs the pipeline changed *)
  r_checks : int; (* refinement checks answered with a verdict *)
  r_unknown : int; (* ... of which inconclusive *)
  r_findings : int; (* raw counterexamples, before dedup *)
  r_unique : int; (* distinct fingerprints *)
  r_dropped : int; (* work lost to crash/timeout/deadline/overload *)
  r_dropped_detail : (string * int) list; (* reason -> count *)
  r_cpu_s : float;
  r_wall_s : float;
  r_uniques : finding list; (* one representative per fingerprint *)
}

let dedup_ratio (r : report) : float =
  if r.r_unique = 0 then 1.0 else float_of_int r.r_findings /. float_of_int r.r_unique

let bugs_per_cpu_hour (r : report) : float =
  if r.r_cpu_s <= 0.0 then 0.0 else float_of_int r.r_unique *. 3600.0 /. r.r_cpu_s

(* ------------------------------------------------------------------ *)
(* Per-program work                                                    *)
(* ------------------------------------------------------------------ *)

type unit_result = {
  u_changed : int;
  u_checks : int;
  u_unknown : int;
  u_findings : finding list;
}

let generate (cfg : config) (idx : int) : Func.t =
  let rng = Prng.create ~seed:(cfg.seed + idx) in
  Ub_fuzz.Gen.hunt_func rng ~name:(Printf.sprintf "hunt_%06d" idx) cfg.gen

let optimize (lane : lane) (fn : Func.t) : Func.t =
  Obs.with_span "hunt.optimize" @@ fun () ->
  Ub_opt.Pass.run_pipeline lane.lane_cfg lane.lane_passes fn

let shrink_finding (cfg : config) (lane : lane) ~(program : int) ~(src : Func.t)
    ~(tgt : Func.t) : finding =
  Obs.count "hunt.finding";
  let red =
    Obs.with_span "hunt.shrink" @@ fun () ->
    Ub_refine.Reduce.minimize_cex ~max_steps:cfg.max_shrink_steps lane.lane_mode ~src ~tgt
  in
  let red_src, red_tgt, stats, verdict =
    match red with
    | Some r ->
      ( r.Ub_refine.Reduce.red_src,
        r.Ub_refine.Reduce.red_tgt,
        Some r.Ub_refine.Reduce.stats,
        Ub_refine.Checker.verdict_to_string r.Ub_refine.Reduce.verdict )
    | None ->
      (* the reducer could not reproduce the failure under its own
         budget: keep the unshrunk witness rather than lose the bug *)
      (src, tgt, None, "unreduced")
  in
  { fp = Fingerprint.pair ~src:red_src ~tgt:red_tgt;
    f_lane = lane.lane_name;
    f_mode = lane.lane_mode.Mode.name;
    f_backend = None;
    f_program = program;
    red_src;
    red_tgt;
    orig_insns = Func.num_insns src;
    final_insns = Func.num_insns red_src;
    oracle_calls =
      (match stats with Some s -> s.Ub_shrink.Reduce.oracle_calls | None -> 0);
    f_verdict =
      (match verdict with
      | v when String.length v >= 14 && String.sub v 0 14 = "COUNTEREXAMPLE" ->
        "counterexample"
      | v -> v);
  }

(* Backend lanes: compile the program clean and with the lane's bug;
   if the bug perturbed the MIR, ask the lowering TV whether the buggy
   compile still refines.  A program isel cannot lower at all is
   skipped (the backend generator does not produce such programs). *)
type backend_outcome =
  | B_skip (* bug was a no-op on this MIR, or isel refused the program *)
  | B_refined
  | B_unknown (* TV classified the function unsupported *)
  | B_finding of finding

let shrink_backend_finding (cfg : config) (lane : lane)
    ~(bug : Ub_backend.Mir_inject.bug) ~(program : int) (fn : Func.t) : finding =
  Obs.count "hunt.finding";
  let red, stats =
    Obs.with_span "hunt.shrink" @@ fun () ->
    Ub_backend.Tv.shrink ~max_steps:cfg.max_shrink_steps ~bug fn
  in
  let verdict =
    match Ub_backend.Tv.check_func ~bug red with
    | Ub_backend.Tv.Not_refined _ -> "counterexample"
    | Ub_backend.Tv.Refined | Ub_backend.Tv.Unsupported _ -> "unreduced"
  in
  { fp = Fingerprint.backend ~src:red ~bug:bug.Ub_backend.Mir_inject.b_name;
    f_lane = lane.lane_name;
    f_mode = lane.lane_mode.Mode.name;
    f_backend = Some bug.Ub_backend.Mir_inject.b_name;
    f_program = program;
    red_src = red;
    red_tgt = red;
    orig_insns = Func.num_insns fn;
    final_insns = Func.num_insns red;
    oracle_calls = stats.Ub_shrink.Reduce.oracle_calls;
    f_verdict = verdict;
  }

let check_backend_lane (cfg : config) (lane : lane) ~(bname : string) ~(program : int)
    (fn : Func.t) : backend_outcome =
  let bug = Ub_backend.Mir_inject.find_exn bname in
  let compiled =
    try
      let clean = Ub_backend.Compile.compile_func fn in
      let buggy = Ub_backend.Compile.compile_func ~bug fn in
      Some
        (Ub_backend.Mir_inject.changed clean.Ub_backend.Compile.mir
           buggy.Ub_backend.Compile.mir)
    with Ub_backend.Isel.Unsupported _ -> None
  in
  match compiled with
  | None | Some false -> B_skip
  | Some true -> (
    Obs.count "hunt.changed";
    (* tighter budgets than the CLI's: an injected bug can make the
       machine loop diverge, and the pre-drop cost of a diverging tuple
       is max_runs * 20 * fuel MIR steps *)
    let v =
      Obs.with_span "hunt.check" (fun () ->
          Ub_backend.Tv.check_func ~fuel:1_000 ~max_runs:500 ~bug fn)
    in
    Obs.count "hunt.check_done";
    match v with
    | Ub_backend.Tv.Refined -> B_refined
    | Ub_backend.Tv.Unsupported _ -> B_unknown
    | Ub_backend.Tv.Not_refined _ -> B_finding (shrink_backend_finding cfg lane ~bug ~program fn))

let process_program (cfg : config) (idx : int) : unit_result =
  Obs.count "hunt.program";
  let fn = Obs.with_span "hunt.generate" (fun () -> generate cfg idx) in
  List.fold_left
    (fun acc lane ->
      match lane.lane_backend with
      | Some bname -> (
        match check_backend_lane cfg lane ~bname ~program:idx fn with
        | B_skip -> acc
        | B_refined -> { acc with u_changed = acc.u_changed + 1; u_checks = acc.u_checks + 1 }
        | B_unknown ->
          { acc with
            u_changed = acc.u_changed + 1;
            u_checks = acc.u_checks + 1;
            u_unknown = acc.u_unknown + 1;
          }
        | B_finding f ->
          { acc with
            u_changed = acc.u_changed + 1;
            u_checks = acc.u_checks + 1;
            u_findings = acc.u_findings @ [ f ];
          })
      | None ->
      let fn' = optimize lane fn in
      if Func.equal fn' fn then acc
      else begin
        Obs.count "hunt.changed";
        let v =
          Obs.with_span "hunt.check" @@ fun () ->
          Ub_refine.Checker.check ~max_universal_bits:cfg.max_universal_bits
            ~max_conflicts:cfg.max_conflicts lane.lane_mode ~src:fn ~tgt:fn'
        in
        Obs.count "hunt.check_done";
        match v with
        | Ub_refine.Checker.Counterexample _ ->
          let f = shrink_finding cfg lane ~program:idx ~src:fn ~tgt:fn' in
          { acc with
            u_changed = acc.u_changed + 1;
            u_checks = acc.u_checks + 1;
            u_findings = acc.u_findings @ [ f ];
          }
        | Ub_refine.Checker.Unknown _ ->
          { acc with
            u_changed = acc.u_changed + 1;
            u_checks = acc.u_checks + 1;
            u_unknown = acc.u_unknown + 1;
          }
        | Ub_refine.Checker.Refines ->
          { acc with u_changed = acc.u_changed + 1; u_checks = acc.u_checks + 1 }
      end)
    { u_changed = 0; u_checks = 0; u_unknown = 0; u_findings = [] }
    cfg.lanes

(* ------------------------------------------------------------------ *)
(* Campaign driver: in-process pool                                    *)
(* ------------------------------------------------------------------ *)

type accum = {
  mutable completed : int;
  mutable changed : int;
  mutable checks : int;
  mutable unknown : int;
  mutable findings : int;
  mutable dropped : (string * int) list;
  mutable cpu_s : float;
  seen : (string, unit) Hashtbl.t;
  mutable uniques : finding list; (* reverse discovery order *)
}

let new_accum () =
  { completed = 0;
    changed = 0;
    checks = 0;
    unknown = 0;
    findings = 0;
    dropped = [];
    cpu_s = 0.0;
    seen = Hashtbl.create 32;
    uniques = [];
  }

let drop (acc : accum) reason =
  Obs.count "hunt.dropped";
  acc.dropped <-
    (match List.assoc_opt reason acc.dropped with
    | Some n -> (reason, n + 1) :: List.remove_assoc reason acc.dropped
    | None -> (reason, 1) :: acc.dropped)

let absorb_unit (acc : accum) (u : unit_result) =
  acc.completed <- acc.completed + 1;
  acc.changed <- acc.changed + u.u_changed;
  acc.checks <- acc.checks + u.u_checks;
  acc.unknown <- acc.unknown + u.u_unknown;
  acc.findings <- acc.findings + List.length u.u_findings;
  List.iter
    (fun f ->
      if not (Hashtbl.mem acc.seen f.fp) then begin
        Hashtbl.replace acc.seen f.fp ();
        Obs.count "hunt.unique";
        acc.uniques <- f :: acc.uniques
      end)
    u.u_findings

let finish (cfg : config) (acc : accum) ~wall_s : report =
  { r_programs = cfg.programs;
    r_completed = acc.completed;
    r_changed = acc.changed;
    r_checks = acc.checks;
    r_unknown = acc.unknown;
    r_findings = acc.findings;
    r_unique = Hashtbl.length acc.seen;
    r_dropped = List.fold_left (fun n (_, k) -> n + k) 0 acc.dropped;
    r_dropped_detail = List.sort compare acc.dropped;
    r_cpu_s = acc.cpu_s;
    r_wall_s = wall_s;
    r_uniques = List.rev acc.uniques;
  }

(* Programs are processed in fixed-size chunks so early stopping
   ([stop_after]) is deterministic regardless of [jobs]. *)
let chunk_size = 32

let run_local (cfg : config) : report =
  Obs.with_span "hunt.campaign" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let acc = new_accum () in
  let stop () =
    match cfg.stop_after with Some n -> acc.findings >= n | None -> false
  in
  let idx = ref 0 in
  while !idx < cfg.programs && not (stop ()) do
    let n = min chunk_size (cfg.programs - !idx) in
    let tasks = Array.init n (fun i -> !idx + i) in
    idx := !idx + n;
    let results, stats =
      Ub_exec.Pool.map_stats ~jobs:cfg.jobs ?timeout_s:cfg.timeout_s
        (process_program cfg) tasks
    in
    acc.cpu_s <-
      acc.cpu_s
      +. List.fold_left
           (fun a (s : Ub_exec.Pool.shard_stat) -> a +. s.Ub_exec.Pool.busy_s)
           0.0 stats.Ub_exec.Pool.shards;
    Array.iter
      (function
        | Ub_exec.Pool.Done u -> absorb_unit acc u
        | Ub_exec.Pool.Crashed _ -> drop acc "pool_crash"
        | Ub_exec.Pool.Timed_out -> drop acc "pool_timeout")
      results
  done;
  finish cfg acc ~wall_s:(Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Campaign driver: serve daemon                                       *)
(* ------------------------------------------------------------------ *)

(* A remote checking backend: one daemon socket, or a whole fleet (the
   batch is then routed across the shards by the fleet client, and every
   drop reason is tagged with the shard that caused it). *)
type target =
  | Socket of string
  | Fleet of string list (* shard socket paths *)

type remote = {
  target : target;
  deadline_s : float option; (* per-request server-side budget *)
  batch : int; (* pipelined requests per round trip *)
}

let default_remote ~socket = { target = Socket socket; deadline_s = None; batch = 32 }
let fleet_remote ~sockets = { target = Fleet sockets; deadline_s = None; batch = 32 }

(* Generation and optimization stay local (they are cheap); refinement
   checks are pipelined to the daemon, [batch] per lane per chunk, and
   counterexamples are shrunk locally.  Against a fleet, each batch is
   spread across the shards by cache-key routing; a shard crash
   mid-campaign surfaces as failover (and, at worst, tagged drops) --
   never as a lost batch. *)
let run_daemon (cfg : config) (r : remote) : report =
  Obs.with_span "hunt.campaign" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let acc = new_accum () in
  (* [check_batch] answers (reply, shard-tag) per pair; "" = the single
     daemon (no tag in drop reasons, as before the fleet existed) *)
  let with_backend (k : (mode:string -> (string * string) array -> (Ub_serve.Wire.reply * string) array) -> report) : report =
    match r.target with
    | Socket socket ->
      Ub_serve.Client.with_conn ~client:"ubc-hunt" ~socket_path:socket @@ fun conn ->
      k (fun ~mode pairs ->
          Array.map
            (fun rep -> (rep, ""))
            (Ub_serve.Client.check_batch conn ?deadline_s:r.deadline_s ~mode pairs))
    | Fleet sockets ->
      let fl = Ub_serve.Client.Fleet.make ~client:"ubc-hunt" sockets in
      Fun.protect ~finally:(fun () -> Ub_serve.Client.Fleet.close fl) @@ fun () ->
      k (fun ~mode pairs ->
          Ub_serve.Client.Fleet.check_batch_tagged fl ?deadline_s:r.deadline_s ~mode pairs)
  in
  with_backend @@ fun check_batch ->
  let stop () =
    match cfg.stop_after with Some n -> acc.findings >= n | None -> false
  in
  let idx = ref 0 in
  while !idx < cfg.programs && not (stop ()) do
    let n = min r.batch (cfg.programs - !idx) in
    let programs = List.init n (fun i -> !idx + i) in
    idx := !idx + n;
    (* (program, lane, src, tgt) for every lane that changed something *)
    let work =
      List.concat_map
        (fun p ->
          Obs.count "hunt.program";
          let fn = Obs.with_span "hunt.generate" (fun () -> generate cfg p) in
          List.filter_map
            (fun lane ->
              match lane.lane_backend with
              | Some bname ->
                (* backend checks cannot be shipped to the daemon (it
                   checks IR pairs); they stay local *)
                (match check_backend_lane cfg lane ~bname ~program:p fn with
                | B_skip -> ()
                | B_refined ->
                  acc.changed <- acc.changed + 1;
                  acc.checks <- acc.checks + 1
                | B_unknown ->
                  acc.changed <- acc.changed + 1;
                  acc.checks <- acc.checks + 1;
                  acc.unknown <- acc.unknown + 1
                | B_finding f ->
                  acc.changed <- acc.changed + 1;
                  acc.checks <- acc.checks + 1;
                  acc.findings <- acc.findings + 1;
                  if not (Hashtbl.mem acc.seen f.fp) then begin
                    Hashtbl.replace acc.seen f.fp ();
                    Obs.count "hunt.unique";
                    acc.uniques <- f :: acc.uniques
                  end);
                None
              | None ->
                let fn' = optimize lane fn in
                if Func.equal fn' fn then None
                else begin
                  Obs.count "hunt.changed";
                  acc.changed <- acc.changed + 1;
                  Some (p, lane, fn, fn')
                end)
            cfg.lanes)
        programs
    in
    acc.completed <- acc.completed + n;
    (* one pipelined batch per lane (a batch carries a single mode) *)
    List.iter
      (fun lane ->
        let mine = List.filter (fun (_, l, _, _) -> l == lane) work in
        if mine <> [] then begin
          let pairs =
            Array.of_list
              (List.map
                 (fun (_, _, s, t) ->
                   (Printer.func_to_string s, Printer.func_to_string t))
                 mine)
          in
          let replies =
            Obs.with_span "hunt.check" @@ fun () ->
            check_batch ~mode:lane.lane_mode.Mode.name pairs
          in
          List.iteri
            (fun i (p, lane, src, tgt) ->
              let reply, tag = replies.(i) in
              let drop_tagged reason =
                drop acc (if tag = "" then reason else reason ^ "@" ^ tag)
              in
              match reply with
              | Ub_serve.Wire.Verdict { verdict = "counterexample"; wall_s; _ } ->
                acc.checks <- acc.checks + 1;
                acc.cpu_s <- acc.cpu_s +. wall_s;
                Obs.count "hunt.check_done";
                let f = shrink_finding cfg lane ~program:p ~src ~tgt in
                acc.findings <- acc.findings + 1;
                if not (Hashtbl.mem acc.seen f.fp) then begin
                  Hashtbl.replace acc.seen f.fp ();
                  Obs.count "hunt.unique";
                  acc.uniques <- f :: acc.uniques
                end
              | Ub_serve.Wire.Verdict { verdict = "refines"; wall_s; _ } ->
                acc.checks <- acc.checks + 1;
                acc.cpu_s <- acc.cpu_s +. wall_s;
                Obs.count "hunt.check_done"
              | Ub_serve.Wire.Verdict { verdict = "unknown"; wall_s; _ } ->
                acc.checks <- acc.checks + 1;
                acc.unknown <- acc.unknown + 1;
                acc.cpu_s <- acc.cpu_s +. wall_s;
                Obs.count "hunt.check_done"
              | Ub_serve.Wire.Verdict { verdict = "timeout"; _ } ->
                drop_tagged "daemon_deadline"
              | Ub_serve.Wire.Verdict { verdict = "crashed"; _ } ->
                drop_tagged "daemon_crash"
              | Ub_serve.Wire.Verdict _ -> drop_tagged "daemon_other"
              | Ub_serve.Wire.Overloaded _ -> drop_tagged "daemon_overload"
              | Ub_serve.Wire.Error_r _ -> drop_tagged "daemon_error"
              | _ -> drop_tagged "daemon_protocol")
            mine
        end)
      cfg.lanes
  done;
  finish cfg acc ~wall_s:(Unix.gettimeofday () -. t0)

let run ?remote (cfg : config) : report =
  match remote with None -> run_local cfg | Some r -> run_daemon cfg r

(* ------------------------------------------------------------------ *)
(* Triaged corpus                                                      *)
(* ------------------------------------------------------------------ *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let sanitize name =
  String.map (fun c -> if c = '/' || c = '[' || c = ']' then '-' else c) name

(* One re-parsable .ll per unique fingerprint: metadata header (the
   lexer skips ';' lines), then the pair renamed @src/@tgt so
   `ubc check --mode <mode> <file>` replays it. *)
let write_corpus ~(dir : string) (r : report) : string list =
  mkdir_p dir;
  List.map
    (fun (f : finding) ->
      let path =
        Filename.concat dir
          (Printf.sprintf "%s-%s.ll" (sanitize f.f_lane) (String.sub f.fp 0 12))
      in
      let oc = open_out path in
      Printf.fprintf oc "; hunt witness %s\n" f.fp;
      Printf.fprintf oc "; lane: %s\n; mode: %s\n; program: %d (seed-relative)\n"
        f.f_lane f.f_mode f.f_program;
      Printf.fprintf oc "; shrink: %d -> %d insns, %d oracle call(s)\n" f.orig_insns
        f.final_insns f.oracle_calls;
      Printf.fprintf oc "; verdict: %s\n" f.f_verdict;
      (match f.f_backend with
      | Some bug ->
        (* the witness is the single source function: the "target" is
           always its own (buggy) compilation *)
        Printf.fprintf oc "; repro: ubc tv --inject %s %s\n\n" bug path;
        output_string oc (Printer.func_to_string { f.red_src with Func.name = "src" })
      | None ->
        Printf.fprintf oc "; repro: ubc check --mode %s %s\n\n" f.f_mode path;
        output_string oc (Printer.func_to_string { f.red_src with Func.name = "src" });
        output_string oc "\n";
        output_string oc (Printer.func_to_string { f.red_tgt with Func.name = "tgt" }));
      close_out oc;
      path)
    r.r_uniques

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let finding_json (f : finding) : Json.t =
  Json.Obj
    [ ("fp", Json.Str f.fp);
      ("lane", Json.Str f.f_lane);
      ("mode", Json.Str f.f_mode);
      ("backend", (match f.f_backend with Some b -> Json.Str b | None -> Json.Null));
      ("program", Json.Num (float_of_int f.f_program));
      ("orig_insns", Json.Num (float_of_int f.orig_insns));
      ("final_insns", Json.Num (float_of_int f.final_insns));
      ("verdict", Json.Str f.f_verdict);
    ]

let report_json (r : report) : Json.t =
  Json.Obj
    [ ("programs", Json.Num (float_of_int r.r_programs));
      ("completed", Json.Num (float_of_int r.r_completed));
      ("changed", Json.Num (float_of_int r.r_changed));
      ("checks", Json.Num (float_of_int r.r_checks));
      ("unknown", Json.Num (float_of_int r.r_unknown));
      ("findings", Json.Num (float_of_int r.r_findings));
      ("unique", Json.Num (float_of_int r.r_unique));
      ("dropped", Json.Num (float_of_int r.r_dropped));
      ( "dropped_detail",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) r.r_dropped_detail)
      );
      ("cpu_s", Json.Num r.r_cpu_s);
      ("wall_s", Json.Num r.r_wall_s);
      ("dedup_ratio", Json.Num (dedup_ratio r));
      ("bugs_per_cpu_hour", Json.Num (bugs_per_cpu_hour r));
      ("uniques", Json.List (List.map finding_json r.r_uniques));
    ]

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "programs %d/%d, changed %d, checks %d (%d unknown), findings %d, unique %d, dropped \
     %d%s, cpu %.2fs, wall %.2fs"
    r.r_completed r.r_programs r.r_changed r.r_checks r.r_unknown r.r_findings r.r_unique
    r.r_dropped
    (if r.r_dropped_detail = [] then ""
     else
       Printf.sprintf " (%s)"
         (String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) r.r_dropped_detail)))
    r.r_cpu_s r.r_wall_s
