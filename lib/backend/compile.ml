(* The end of the pipeline: IR function -> allocated MIR, plus the
   measurements the evaluation needs (object size, simulated cycles). *)

open Ub_ir

type compiled = {
  pre_ra : Mir.func; (* virtual-register MIR, straight out of isel *)
  mir : Mir.func; (* physical-register MIR, after allocation *)
  arg_locs : Mir.arg_loc list; (* where each argument vreg landed *)
  asm : string;
  obj_size : int; (* bytes *)
}

(* Arguments get the first virtual registers, one per lane. *)
let arg_vregs (fn : Func.t) =
  List.fold_left
    (fun acc (_, ty) -> acc + (match ty with Types.Vec (n, _) -> n | _ -> 1))
    0 fn.Func.args

(* Compile with an optional injected backend bug ([Mir_inject]), applied
   either to the virtual-register form (pre-RA) or the allocated form
   (post-RA) depending on the bug's declared stage. *)
let compile_func ?bug (fn : Func.t) : compiled =
  let nargs = arg_vregs fn in
  let pre_ra = Ub_obs.Obs.with_span "backend.isel" (fun () -> Isel.lower_func fn) in
  let pre_ra =
    match bug with
    | Some (b : Mir_inject.bug) when b.Mir_inject.b_stage = Mir_inject.Pre_ra ->
      b.Mir_inject.b_apply pre_ra
    | _ -> pre_ra
  in
  let mir, arg_locs =
    Ub_obs.Obs.with_span "backend.regalloc" (fun () -> Regalloc.run pre_ra ~nargs)
  in
  let mir =
    match bug with
    | Some (b : Mir_inject.bug) when b.Mir_inject.b_stage = Mir_inject.Post_ra ->
      b.Mir_inject.b_apply mir
    | _ -> mir
  in
  { pre_ra; mir; arg_locs; asm = Emit.func_str mir; obj_size = Emit.func_size mir }

let compile_module (m : Func.module_) : (string * compiled) list =
  List.map (fun (f : Func.t) -> (f.Func.name, compile_func f)) m.Func.funcs

(* Simulated running time: profile the IR (block execution counts), then
   price the compiled blocks.  [fn] must be the same function the MIR was
   compiled from. *)
let simulate_cycles (p : Target.profile) (c : compiled) ~(profile : (string * int) list) : float =
  Cost.simulate p c.mir profile
