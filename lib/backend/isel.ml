(* Instruction selection: IR -> MIR over virtual registers.

   Design notes mirroring Section 6:
   - [freeze] selects to a register copy;
   - [poison]/[undef] constants select to a pinned undef register
     ([Undef_def]), live for the duration of their uses;
   - vector values are legalized to one virtual register per lane (LLVM's
     backend scalarizes small vectors the same way), so the vector load
     widening of Section 5.4 ends up as the same scalar loads it started
     from — "at assembly level it is still the same load";
   - a compare whose single use is the block's terminator fuses with the
     branch (Cmp+Jcc, no Setcc) — but ONLY if it is the last instruction
     of the block, which is what CodeGenPrepare's compare sinking buys;
   - phi elimination inserts parallel-safe copies in predecessors. *)

open Ub_support
open Ub_ir
open Instr

exception Unsupported of string

type env = {
  mutable vmap : (Instr.var * Mir.reg array) list;
  func : Mir.func;
  ir : Func.t;
}

let fresh_vreg (f : Mir.func) =
  let r = Mir.Vreg f.Mir.nvregs in
  f.Mir.nvregs <- f.Mir.nvregs + 1;
  r

let width_of_ty ty = Mir.width_of_bits (Types.bitwidth (Types.element ty))

let class_bits = function Mir.W8 -> 8 | Mir.W16 -> 16 | Mir.W32 -> 32 | Mir.W64 -> 64

let is_signed_pred = function
  | Sgt | Sge | Slt | Sle -> true
  | Eq | Ne | Ugt | Uge | Ult | Ule -> false

let lanes_of_ty = function
  | Types.Vec (n, _) -> n
  | _ -> 1

let lookup env v =
  match List.assoc_opt v env.vmap with
  | Some rs -> rs
  | None -> raise (Unsupported (Printf.sprintf "isel: unbound %%%s" v))

let bind env v rs = env.vmap <- (v, rs) :: env.vmap

(* Lower an operand to registers (one per lane), emitting code for
   constants.  Poison/undef become pinned undef registers. *)
let operand_regs env emit (op : operand) : Mir.reg array =
  match op with
  | Var v -> lookup env v
  | Const c ->
    let rec regs_of_const (c : Constant.t) : Mir.reg array =
      match c with
      | Constant.Int bv ->
        let r = fresh_vreg env.func in
        emit (Mir.Mov (Mir.width_of_bits (Bitvec.width bv), r, Mir.Imm (Bitvec.to_uint64 bv)));
        [| r |]
      | Constant.Null _ ->
        let r = fresh_vreg env.func in
        emit (Mir.Mov (Mir.W32, r, Mir.Imm 0L));
        [| r |]
      | Constant.Undef _ | Constant.Poison _ ->
        let n = lanes_of_ty (Constant.ty c) in
        Array.init n (fun _ ->
            let r = fresh_vreg env.func in
            emit (Mir.Undef_def r);
            r)
      | Constant.Vec (_, cs) ->
        Array.concat (List.map regs_of_const cs)
    in
    regs_of_const c

let operand_val env emit (op : operand) : Mir.operand =
  match op with
  | Const (Constant.Int bv) -> Mir.Imm (Bitvec.to_uint64 bv)
  | _ -> Mir.Reg (operand_regs env emit op).(0)

let binkind_of = function
  | Add -> Some Mir.BAdd
  | Sub -> Some Mir.BSub
  | Mul -> Some Mir.BImul
  | And -> Some Mir.BAnd
  | Or -> Some Mir.BOr
  | Xor -> Some Mir.BXor
  | Shl -> Some Mir.BShl
  | LShr -> Some Mir.BShr
  | AShr -> Some Mir.BSar
  | UDiv | SDiv | URem | SRem -> None

(* Is [v]'s single use the terminator of [b]?  Then its icmp can fuse. *)
let only_use_is_terminator (fn : Func.t) (b : Func.block) (v : Instr.var) =
  Func.use_count fn v = 1
  &&
  match b.term with
  | Cond_br (Var c, _, _) -> c = v
  | _ -> false

let lower_func (fn : Func.t) : Mir.func =
  let mf = { Mir.mname = fn.Func.name; blocks = []; nvregs = 0; nslots = 0 } in
  let env = { vmap = []; func = mf; ir = fn } in
  (* Narrow-integer legalization.  An iN value whose width N is below its
     register class keeps garbage bits above bit N-1 — two-address ops
     only maintain the low N bits.  Consumers whose result depends on the
     full class-width value (compares, divisions, shift inputs and
     counts, extensions, addresses, allocation sizes) re-normalize their
     inputs: [zext_reg] masks the high bits to zero, [sext_reg]
     replicates bit N-1. *)
  let zext_reg emit w bits r =
    if bits >= class_bits w then r
    else begin
      let t = fresh_vreg mf in
      emit (Mir.Mov (w, t, Mir.Reg r));
      emit (Mir.Bin (Mir.BAnd, w, t, Mir.Imm (Bitvec.mask_of_width bits)));
      t
    end
  in
  let sext_reg emit w bits r =
    if bits >= class_bits w then r
    else begin
      let t = fresh_vreg mf in
      let sh = Int64.of_int (class_bits w - bits) in
      emit (Mir.Mov (w, t, Mir.Reg r));
      emit (Mir.Bin (Mir.BShl, w, t, Mir.Imm sh));
      emit (Mir.Bin (Mir.BSar, w, t, Mir.Imm sh));
      t
    end
  in
  let norm_reg emit ~signed w bits r =
    if signed then sext_reg emit w bits r else zext_reg emit w bits r
  in
  (* An i1 condition register holds exactly 0/1 only when it comes from a
     Setcc or a constant; truncs, phis, selects and arguments may carry
     garbage above bit 0 and must be masked before a full-byte Test. *)
  let cond_reg emit (c : operand) r =
    let exact =
      match c with
      | Const _ -> true
      | Var v ->
        List.exists
          (fun (b : Func.block) ->
            List.exists
              (fun n ->
                n.Instr.def = Some v
                && (match n.Instr.ins with Icmp _ -> true | _ -> false))
              b.Func.insns)
          fn.Func.blocks
    in
    if exact then r else zext_reg emit Mir.W8 1 r
  in
  (* arguments get the first vregs *)
  List.iter
    (fun (a, ty) ->
      let n = lanes_of_ty ty in
      bind env a (Array.init n (fun _ -> fresh_vreg mf)))
    fn.Func.args;
  (* pre-assign result registers to every instruction def so that phis
     and forward refs work *)
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun n ->
          match (n.Instr.def, Instr.result_ty n.Instr.ins) with
          | Some d, Some ty -> bind env d (Array.init (lanes_of_ty ty) (fun _ -> fresh_vreg mf))
          | _ -> ())
        b.insns)
    fn.Func.blocks;
  (* lower each block *)
  let mblocks =
    List.map
      (fun (b : Func.block) ->
        let code = ref [] in
        let emit i = code := i :: !code in
        let fused_cmp = ref None in
        let n_insns = List.length b.insns in
        List.iteri
          (fun idx { Instr.def; ins } ->
            let dst () = (lookup env (Option.get def)).(0) in
            match ins with
            | Phi _ -> () (* handled via predecessor copies *)
            | Binop (op, _, ty, a, b') -> (
              let w = width_of_ty ty in
              let lanes = lanes_of_ty ty in
              let ra = operand_regs env emit a in
              match binkind_of op with
              | Some k ->
                let rb =
                  match b' with
                  | Const (Constant.Int _) when lanes = 1 -> [||]
                  | _ -> operand_regs env emit b'
                in
                let bits = Types.bitwidth (Types.element ty) in
                for l = 0 to lanes - 1 do
                  let d = (lookup env (Option.get def)).(l) in
                  let lhs =
                    match k with
                    | Mir.BShr -> zext_reg emit w bits ra.(l)
                    | Mir.BSar -> sext_reg emit w bits ra.(l)
                    | _ -> ra.(l)
                  in
                  emit (Mir.Mov (w, d, Mir.Reg lhs));
                  let src =
                    match b' with
                    | Const (Constant.Int bv) -> Mir.Imm (Bitvec.to_uint64 bv)
                    | _ -> Mir.Reg rb.(l)
                  in
                  let src =
                    match (k, src) with
                    | (Mir.BShl | Mir.BShr | Mir.BSar), Mir.Reg r ->
                      Mir.Reg (zext_reg emit w bits r)
                    | _ -> src
                  in
                  emit (Mir.Bin (k, w, d, src))
                done
              | None ->
                (* division: quotient in one reg, remainder in another *)
                let rb = operand_regs env emit b' in
                let bits = Types.bitwidth (Types.element ty) in
                let signed = op = SDiv || op = SRem in
                for l = 0 to lanes - 1 do
                  let d = (lookup env (Option.get def)).(l) in
                  let other = fresh_vreg mf in
                  let quot, rem =
                    match op with
                    | UDiv | SDiv -> (d, other)
                    | URem | SRem -> (other, d)
                    | _ -> assert false
                  in
                  emit
                    (Mir.Div
                       { signed;
                         width = w;
                         dst_quot = quot;
                         dst_rem = rem;
                         lhs = norm_reg emit ~signed w bits ra.(l);
                         rhs = norm_reg emit ~signed w bits rb.(l);
                       })
                done)
            | Icmp (pred, ty, a, b') ->
              let w = width_of_ty ty in
              let bits = Types.bitwidth (Types.element ty) in
              let signed = is_signed_pred pred in
              let norm_val (op : operand) : Mir.operand =
                match op with
                | Const (Constant.Int bv) ->
                  let bv = if signed then Bitvec.sext bv ~width:(class_bits w) else bv in
                  Mir.Imm (Bitvec.to_uint64 bv)
                | _ -> Mir.Reg (norm_reg emit ~signed w bits (operand_regs env emit op).(0))
              in
              let d = Option.get def in
              if idx = n_insns - 1 && only_use_is_terminator fn b d then begin
                (* fuse with the terminator: emit nothing now *)
                let ra = norm_reg emit ~signed w bits (operand_regs env emit a).(0) in
                let vb = norm_val b' in
                fused_cmp := Some (d, Mir.cond_of_pred pred, w, ra, vb)
              end
              else begin
                let ra = norm_reg emit ~signed w bits (operand_regs env emit a).(0) in
                let vb = norm_val b' in
                emit (Mir.Cmp (w, ra, vb));
                emit (Mir.Setcc (Mir.cond_of_pred pred, dst ()))
              end
            | Select (c, ty, a, b') ->
              let w = width_of_ty ty in
              let lanes = lanes_of_ty ty in
              let rc = operand_regs env emit c in
              let ra = operand_regs env emit a in
              let rb = operand_regs env emit b' in
              for l = 0 to lanes - 1 do
                let d = (lookup env (Option.get def)).(l) in
                let cl = rc.(if Array.length rc = lanes then l else 0) in
                let cl = cond_reg emit c cl in
                emit (Mir.Mov (w, d, Mir.Reg rb.(l)));
                emit (Mir.Test (Mir.W8, cl, cl));
                emit (Mir.Cmov (Mir.CNe, w, d, ra.(l)))
              done
            | Conv (op, from, x, to_) ->
              let fw = width_of_ty from and tw = width_of_ty to_ in
              let fbits = Types.bitwidth (Types.element from) in
              let rx = operand_regs env emit x in
              Array.iteri
                (fun l d ->
                  match op with
                  | Sext ->
                    let s = sext_reg emit fw fbits rx.(l) in
                    if fw = tw then emit (Mir.Copy (tw, d, s))
                    else emit (Mir.Movsx { dst = d; src = s; from_w = fw; to_w = tw })
                  | Zext ->
                    let s = zext_reg emit fw fbits rx.(l) in
                    if fw = tw then emit (Mir.Copy (tw, d, s))
                    else emit (Mir.Movzx { dst = d; src = s; from_w = fw; to_w = tw })
                  | Trunc -> emit (Mir.Copy (tw, d, rx.(l)))
                  | Ptrtoint | Inttoptr ->
                    (* address bits move unchanged: zero-extend when
                       widening, plain copy otherwise *)
                    let s = zext_reg emit fw fbits rx.(l) in
                    if tw > fw then emit (Mir.Movzx { dst = d; src = s; from_w = fw; to_w = tw })
                    else emit (Mir.Copy (tw, d, s)))
                (lookup env (Option.get def))
            | Bitcast (_, x, to_) ->
              (* same-width reinterpretation: lane-wise copies when the
                 lane structure matches, else unsupported *)
              let rx = operand_regs env emit x in
              let dsts = lookup env (Option.get def) in
              if Array.length rx <> Array.length dsts then
                raise (Unsupported "isel: bitcast changing lane structure");
              Array.iteri (fun l d -> emit (Mir.Copy (width_of_ty to_, d, rx.(l)))) dsts
            | Freeze (ty, x) ->
              (* THE lowering of the paper: freeze = register copy *)
              let rx = operand_regs env emit x in
              Array.iteri
                (fun l d -> emit (Mir.Copy (width_of_ty ty, d, rx.(l))))
                (lookup env (Option.get def))
            | Gep { pointee; base; indices; _ } -> (
              let rb = (operand_regs env emit base).(0) in
              let d = dst () in
              let size = Types.store_size pointee in
              match indices with
              | [ (_, idx) ] when size = 1 || size = 2 || size = 4 || size = 8 -> (
                match idx with
                | Const (Constant.Int bv) ->
                  emit
                    (Mir.Lea
                       { dst = d;
                         addr =
                           { Mir.base = rb; index = None; scale = 1;
                             disp = (match Bitvec.to_uint_opt bv with Some i -> i * size | None -> 0);
                           };
                       })
                | _ ->
                  let ity = fst (List.hd indices) in
                  let ri = (operand_regs env emit idx).(0) in
                  let ri = zext_reg emit (width_of_ty ity) (Types.bitwidth (Types.element ity)) ri in
                  emit
                    (Mir.Lea
                       { dst = d;
                         addr = { Mir.base = rb; index = Some ri; scale = size; disp = 0 };
                       }))
              | _ ->
                (* general case: mul + add per index *)
                emit (Mir.Mov (Mir.W32, d, Mir.Reg rb));
                List.iter
                  (fun (ity, idx) ->
                    let ri = (operand_regs env emit idx).(0) in
                    let ri = zext_reg emit (width_of_ty ity) (Types.bitwidth (Types.element ity)) ri in
                    let tmp = fresh_vreg mf in
                    emit (Mir.Mov (Mir.W32, tmp, Mir.Reg ri));
                    emit (Mir.Bin (Mir.BImul, Mir.W32, tmp, Mir.Imm (Int64.of_int size)));
                    emit (Mir.Bin (Mir.BAdd, Mir.W32, d, Mir.Reg tmp)))
                  indices)
            | Load (ty, p) ->
              let rp = (operand_regs env emit p).(0) in
              let lanes = lanes_of_ty ty in
              let lane_bytes = Types.store_size (Types.element ty) in
              Array.iteri
                (fun l d ->
                  emit
                    (Mir.Load
                       ( width_of_ty ty,
                         d,
                         { Mir.base = rp; index = None; scale = 1; disp = l * lane_bytes } )))
                (Array.init lanes (fun l -> (lookup env (Option.get def)).(l)))
            | Store (ty, v, p) ->
              let rp = (operand_regs env emit p).(0) in
              let rv = operand_regs env emit v in
              let lanes = lanes_of_ty ty in
              let lane_bytes = Types.store_size (Types.element ty) in
              for l = 0 to lanes - 1 do
                emit
                  (Mir.Store
                     ( width_of_ty ty,
                       { Mir.base = rp; index = None; scale = 1; disp = l * lane_bytes },
                       Mir.Reg rv.(l) ))
              done
            | Call (_, callee, args) ->
              let arg_regs =
                List.map
                  (fun (ty, a) ->
                    let r = (operand_regs env emit a).(0) in
                    zext_reg emit (width_of_ty ty) (Types.bitwidth (Types.element ty)) r)
                  args
              in
              let res = Option.map (fun d -> (lookup env d).(0)) def in
              emit (Mir.Call (callee, arg_regs, res))
            | Extractelement (vty, v, i) -> (
              let rv = operand_regs env emit v in
              match i with
              | Const (Constant.Int bv) ->
                let idx = Bitvec.to_uint_exn bv in
                let idx = if idx < Array.length rv then idx else 0 in
                emit (Mir.Copy (width_of_ty (Types.element vty), dst (), rv.(idx)))
              | _ -> raise (Unsupported "isel: extractelement with variable index"))
            | Insertelement (vty, v, e, i) -> (
              let rv = operand_regs env emit v in
              let re = (operand_regs env emit e).(0) in
              let dsts = lookup env (Option.get def) in
              match i with
              | Const (Constant.Int bv) ->
                let idx = Bitvec.to_uint_exn bv in
                Array.iteri
                  (fun l d ->
                    emit
                      (Mir.Copy
                         (width_of_ty (Types.element vty), d, if l = idx then re else rv.(l))))
                  dsts
              | _ -> raise (Unsupported "isel: insertelement with variable index")))
          b.insns;
        (* terminator *)
        (match b.term with
        | Ret (_, x) ->
          let r = (operand_regs env emit x).(0) in
          emit (Mir.Ret (Some r))
        | Ret_void -> emit (Mir.Ret None)
        | Br l -> emit (Mir.Jmp l)
        | Cond_br (c, t, e) -> (
          match !fused_cmp with
          | Some (cv, cond, w, ra, vb) when c = Var cv ->
            emit (Mir.Cmp (w, ra, vb));
            emit (Mir.Jcc (cond, t));
            emit (Mir.Jmp e)
          | _ ->
            let rc = (operand_regs env emit c).(0) in
            let rc = cond_reg emit c rc in
            emit (Mir.Test (Mir.W8, rc, rc));
            emit (Mir.Jcc (Mir.CNe, t));
            emit (Mir.Jmp e))
        | Unreachable -> emit (Mir.Ret None));
        { Mir.mlabel = b.Func.label; insts = List.rev !code })
      fn.Func.blocks
  in
  mf.Mir.blocks <- mblocks;
  (* phi elimination: copies in predecessors, with temporaries to make
     the parallel-copy semantics safe.  Copies must execute only when
     the edge is actually taken: a predecessor with a single successor
     takes them inline before its terminator, but a critical edge (the
     predecessor branches) gets a dedicated edge block — splicing the
     copies before a conditional branch would run them on the *other*
     edge too (and clobber any phi destination the fused compare
     reads). *)
  List.iter
    (fun (b : Func.block) ->
      let phis =
        List.filter_map
          (fun n ->
            match (n.Instr.def, n.Instr.ins) with
            | Some d, Phi (ty, inc) -> Some (d, ty, inc)
            | _ -> None)
          b.insns
      in
      if phis <> [] then
        List.iter
          (fun (pred : Func.block) ->
            if List.mem b.Func.label (Instr.successors pred.Func.term) then begin
              let mb = List.find (fun mb -> mb.Mir.mlabel = pred.Func.label) mf.Mir.blocks in
              let copies_in = ref [] and copies_out = ref [] in
              List.iter
                (fun (d, ty, inc) ->
                  match List.assoc_opt pred.Func.label (List.map (fun (v, l) -> (l, v)) inc) with
                  | Some src ->
                    let w = width_of_ty ty in
                    let lanes = lanes_of_ty ty in
                    let emit_tmp i = copies_in := i :: !copies_in in
                    let srcs = operand_regs env emit_tmp src in
                    for l = 0 to lanes - 1 do
                      let tmp = fresh_vreg mf in
                      copies_in := Mir.Copy (w, tmp, srcs.(l)) :: !copies_in;
                      copies_out := Mir.Copy (w, (lookup env d).(l), tmp) :: !copies_out
                    done
                  | None -> ())
                phis;
              let copies = List.rev !copies_in @ List.rev !copies_out in
              match Instr.successors pred.Func.term with
              | [] | [ _ ] ->
                (* single successor: splice before the terminator group *)
                let rec split_term acc = function
                  | [] -> (List.rev acc, [])
                  | rest
                    when (match rest with
                         | Mir.Cmp _ :: Mir.Jcc _ :: _ -> true
                         | Mir.Test _ :: Mir.Jcc _ :: _ -> true
                         | Mir.Jcc _ :: _ | Mir.Jmp _ :: _ | Mir.Ret _ :: _ -> true
                         | _ -> false) ->
                    (List.rev acc, rest)
                  | i :: rest -> split_term (i :: acc) rest
                in
                let body, term = split_term [] mb.Mir.insts in
                mb.Mir.insts <- body @ copies @ term
              | _ ->
                (* critical edge: copies go in their own block *)
                let elabel = pred.Func.label ^ "$" ^ b.Func.label in
                let eb = { Mir.mlabel = elabel; insts = copies @ [ Mir.Jmp b.Func.label ] } in
                mf.Mir.blocks <- mf.Mir.blocks @ [ eb ];
                mb.Mir.insts <-
                  List.map
                    (function
                      | Mir.Jcc (c, l) when l = b.Func.label -> Mir.Jcc (c, elabel)
                      | Mir.Jmp l when l = b.Func.label -> Mir.Jmp elabel
                      | i -> i)
                    mb.Mir.insts
            end)
          fn.Func.blocks)
    fn.Func.blocks;
  mf
