(* Injected backend bugs: small, realistic miscompilations applied to
   the MIR, either before register allocation (phi-elimination and
   isel-level bugs) or after (spill bugs).  Each is the seeded ground
   truth for the hunting farm's recall benchmark, mirroring the IR-level
   catalog in [Ub_opt.Inject] — the IR entry declares the bug by name,
   the hunt lane compiles each generated program twice (clean and with
   [b_apply]) and asks [Tv] whether the buggy compile still refines.

   A bug that does not change the MIR of a given function is simply a
   no-op there; the backend generator is shaped so each bug's trigger
   pattern (parallel-move cycles, selects, spills, protected branches)
   occurs with high probability. *)

type stage = Pre_ra | Post_ra

type bug = {
  b_name : string;
  b_doc : string;
  b_stage : stage;
  b_apply : Mir.func -> Mir.func;
}

let map_blocks f (fn : Mir.func) =
  { fn with Mir.blocks = List.map (fun (b : Mir.block) -> { b with Mir.insts = f b.Mir.insts }) fn.Mir.blocks }

(* Split a block's instruction list into (body, terminator group), the
   same grouping isel uses when splicing phi copies. *)
let split_term insts =
  let rec go acc = function
    | [] -> (List.rev acc, [])
    | rest
      when (match rest with
           | Mir.Cmp _ :: Mir.Jcc _ :: _ | Mir.Test _ :: Mir.Jcc _ :: _ -> true
           | Mir.Jcc _ :: _ | Mir.Jmp _ :: _ | Mir.Ret _ :: _ -> true
           | _ -> false) ->
      (List.rev acc, rest)
    | i :: rest -> go (i :: acc) rest
  in
  go [] insts

(* The trailing run of [Copy] instructions at the end of the body — the
   parallel-move sequence phi elimination inserted. *)
let split_copies body =
  let rec take copies = function
    | (Mir.Copy _ as c) :: rest -> take (c :: copies) rest
    | rest -> (List.rev rest, copies)
  in
  take [] (List.rev body)

(* Drop the last copy of the first parallel-move run with at least two
   copies: the phi destination it fed keeps whatever the register held
   before the edge was taken. *)
let drop_parallel_move_copy fn =
  let done_ = ref false in
  map_blocks
    (fun insts ->
      if !done_ then insts
      else begin
        let body, term = split_term insts in
        let prefix, copies = split_copies body in
        if List.length copies < 2 then insts
        else begin
          done_ := true;
          let n = List.length copies in
          prefix @ List.filteri (fun i _ -> i < n - 1) copies @ term
        end
      end)
    fn

(* Forward-substitute the parallel-move temporaries away: rewrite
   [t := s; ...; d := t] into the direct [d := s] and delete the
   temporary copy.  Correct for straight-line renames, wrong for swap
   and lost-copy cycles: the now-sequential copies overwrite a source
   before it is read. *)
let swap_without_temp fn =
  map_blocks
    (fun insts ->
      let body, term = split_term insts in
      let prefix, copies = split_copies body in
      if copies = [] then insts
      else begin
        (* substitute away temps that are written once and read exactly
           once later in the run *)
        let arr = Array.of_list copies in
        let n = Array.length arr in
        let removed = Array.make n false in
        for i = 0 to n - 1 do
          match arr.(i) with
          | Mir.Copy (_, t, s) ->
            let readers = ref [] and redefined = ref false in
            for j = i + 1 to n - 1 do
              match arr.(j) with
              | Mir.Copy (w', d', s') ->
                if s' = t then readers := (j, w', d') :: !readers;
                if d' = t then redefined := true
              | _ -> ()
            done;
            (match !readers with
            | [ (j, w, d) ] when not !redefined ->
              arr.(j) <- Mir.Copy (w, d, s);
              removed.(i) <- true
            | _ -> ())
          | _ -> ()
        done;
        let copies' = List.filteri (fun i _ -> not removed.(i)) (Array.to_list arr) in
        prefix @ copies' @ term
      end)
    fn

(* Delete the flag-materializing [Test] in front of a [Cmov]: the cmov
   then consumes whatever stale flags the last arithmetic instruction
   left behind (or undefined flags), instead of testing the select's
   condition register. *)
let cmov_stale_flags fn =
  let done_ = ref false in
  map_blocks
    (fun insts ->
      let rec go = function
        | Mir.Test _ :: (Mir.Cmov _ :: _ as rest) when not !done_ ->
          done_ := true;
          rest
        | i :: rest -> i :: go rest
        | [] -> []
      in
      go insts)
    fn

(* Collapse every spill slot onto slot 0: two spilled values alias the
   same stack location, so the second spill store clobbers the first. *)
let spill_slot_alias fn =
  if fn.Mir.nslots < 2 then fn
  else
    map_blocks
      (List.map (function
        | Mir.Spill_store (_, r) -> Mir.Spill_store (0, r)
        | Mir.Spill_load (_, r) -> Mir.Spill_load (0, r)
        | i -> i))
      fn

(* Propagate the compared-against constant into the *wrong* arm of a
   protected branch: after [cmp r, #c; je t; jmp e], the fall-through
   block e is exactly where r ≠ c, yet r's uses there are rewritten
   to #c. *)
let const_prop_bad_arm fn =
  let target = ref None in
  List.iter
    (fun (b : Mir.block) ->
      if !target = None then
        match snd (split_term b.Mir.insts) with
        | [ Mir.Cmp (_, r, Mir.Imm c); Mir.Jcc (Mir.CEq, _); Mir.Jmp e ] ->
          target := Some (r, c, e)
        | _ -> ())
    fn.Mir.blocks;
  match !target with
  | None -> fn
  | Some (r, c, e) ->
    { fn with
      Mir.blocks =
        List.map
          (fun (b : Mir.block) ->
            if b.Mir.mlabel <> e then b
            else
              let subst = function Mir.Reg r' when r' = r -> Mir.Imm c | op -> op in
              { b with
                Mir.insts =
                  List.map
                    (function
                      | Mir.Mov (w, d, s) -> Mir.Mov (w, d, subst s)
                      | Mir.Bin (k, w, d, s) -> Mir.Bin (k, w, d, subst s)
                      | Mir.Cmp (w, a, s) -> Mir.Cmp (w, a, subst s)
                      | Mir.Store (w, a, s) -> Mir.Store (w, a, subst s)
                      | i -> i)
                    b.Mir.insts;
              })
          fn.Mir.blocks;
    }

let all : bug list =
  [ { b_name = "drop-parallel-move-copy";
      b_doc = "phi elimination loses one copy of a parallel move";
      b_stage = Pre_ra;
      b_apply = drop_parallel_move_copy;
    };
    { b_name = "swap-without-temp";
      b_doc = "parallel-move temporaries forward-substituted away; swap/lost-copy cycles break";
      b_stage = Pre_ra;
      b_apply = swap_without_temp;
    };
    { b_name = "cmov-stale-flags";
      b_doc = "select's Test deleted; Cmov reads stale or undefined flags";
      b_stage = Pre_ra;
      b_apply = cmov_stale_flags;
    };
    { b_name = "spill-slot-alias";
      b_doc = "all spill slots collapse onto slot 0";
      b_stage = Post_ra;
      b_apply = spill_slot_alias;
    };
    { b_name = "const-prop-bad-arm";
      b_doc = "compared constant propagated into the not-equal arm of a protected branch";
      b_stage = Pre_ra;
      b_apply = const_prop_bad_arm;
    };
  ]

let find name = List.find_opt (fun b -> b.b_name = name) all
let find_exn name =
  match find name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Mir_inject.find_exn: unknown bug %s" name)

(* Structural change detection: the hunt only checks pairs the bug
   actually perturbed. *)
let changed (a : Mir.func) (b : Mir.func) =
  let shape (f : Mir.func) =
    List.map (fun (bl : Mir.block) -> (bl.Mir.mlabel, bl.Mir.insts)) f.Mir.blocks
  in
  shape a <> shape b
