(* Linear-scan register allocation with block-level liveness, interval
   construction, furthest-end spilling, and reload-around-use spill code.

   The paper's Queens anomaly lives here: adding one freeze (one COPY,
   one extra interval) shifts which physical register later intervals
   receive — in particular whether a hot loop's LEA base lands on r13
   (slow on the modelled machines) or r14. *)

type interval = { vreg : int; start : int; stop : int; mutable preg : int option; mutable slot : int option }

(* block-level liveness over virtual registers *)
let liveness (f : Mir.func) : (string, (int, unit) Hashtbl.t) Hashtbl.t =
  let live_in : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  let live_out : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (b : Mir.block) ->
      Hashtbl.replace live_in b.Mir.mlabel (Hashtbl.create 8);
      Hashtbl.replace live_out b.Mir.mlabel (Hashtbl.create 8))
    f.Mir.blocks;
  let succs_of (b : Mir.block) =
    List.concat_map
      (function Mir.Jmp l -> [ l ] | Mir.Jcc (_, l) -> [ l ] | _ -> [])
      b.Mir.insts
  in
  let vregs_of rs = List.filter_map (function Mir.Vreg v -> Some v | Mir.Preg _ -> None) rs in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (b : Mir.block) ->
        let out = Hashtbl.find live_out b.Mir.mlabel in
        List.iter
          (fun s ->
            match Hashtbl.find_opt live_in s with
            | Some inset ->
              Hashtbl.iter
                (fun v () ->
                  if not (Hashtbl.mem out v) then begin
                    Hashtbl.replace out v ();
                    changed := true
                  end)
                inset
            | None -> ())
          (succs_of b);
        (* in = (out - defs) + uses, backwards *)
        let cur = Hashtbl.copy out in
        List.iter
          (fun i ->
            List.iter (Hashtbl.remove cur) (vregs_of (Mir.defs i));
            List.iter (fun v -> Hashtbl.replace cur v ()) (vregs_of (Mir.uses i)))
          (List.rev b.Mir.insts);
        let inset = Hashtbl.find live_in b.Mir.mlabel in
        Hashtbl.iter
          (fun v () ->
            if not (Hashtbl.mem inset v) then begin
              Hashtbl.replace inset v ();
              changed := true
            end)
          cur)
      (List.rev f.Mir.blocks)
  done;
  live_out

(* Build intervals over the linearized function. *)
let intervals (f : Mir.func) (args : int list) : interval list =
  let live_out = liveness f in
  let tbl : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch v pos =
    match Hashtbl.find_opt tbl v with
    | Some iv ->
      if pos < iv.start then Hashtbl.replace tbl v { iv with start = pos }
      else if pos > iv.stop then Hashtbl.replace tbl v { iv with stop = pos }
    | None -> Hashtbl.replace tbl v { vreg = v; start = pos; stop = pos; preg = None; slot = None }
  in
  List.iter (fun a -> touch a 0) args;
  let pos = ref 0 in
  List.iter
    (fun (b : Mir.block) ->
      let block_start = !pos in
      List.iter
        (fun i ->
          incr pos;
          let vregs rs = List.filter_map (function Mir.Vreg v -> Some v | _ -> None) rs in
          List.iter (fun v -> touch v !pos) (vregs (Mir.uses i));
          List.iter (fun v -> touch v !pos) (vregs (Mir.defs i)))
        b.Mir.insts;
      (* vregs live out of this block extend to the block end; vregs live
         around a loop extend from block start *)
      let out = Hashtbl.find live_out b.Mir.mlabel in
      Hashtbl.iter
        (fun v () ->
          touch v !pos;
          touch v block_start)
        out)
    f.Mir.blocks;
  Hashtbl.fold (fun _ iv acc -> iv :: acc) tbl []
  |> List.sort (fun a b -> compare (a.start, a.vreg) (b.start, b.vreg))

let allocate (f : Mir.func) ~(nargs : int) ~(num_alloc : int) : Mir.func * Mir.arg_loc list =
  let args = List.init nargs (fun i -> i) in
  let ivs = intervals f args in
  (* linear scan over the first [num_alloc] physical registers *)
  let active : interval list ref = ref [] in
  let free : bool array = Array.make num_alloc true in
  let assign iv =
    (* expire old intervals and recompute the free set *)
    active := List.filter (fun a -> a.stop >= iv.start) !active;
    Array.fill free 0 num_alloc true;
    List.iter (fun a -> match a.preg with Some p -> free.(p) <- false | None -> ()) !active;
    let rec first_free i = if i >= num_alloc then None else if free.(i) then Some i else first_free (i + 1) in
    match first_free 0 with
    | Some p ->
      iv.preg <- Some p;
      active := iv :: !active
    | None ->
      (* spill the active interval with the furthest end *)
      let victim =
        List.fold_left (fun acc a -> if a.stop > acc.stop then a else acc) iv !active
      in
      if victim == iv then begin
        iv.slot <- Some f.Mir.nslots;
        f.Mir.nslots <- f.Mir.nslots + 1
      end
      else begin
        iv.preg <- victim.preg;
        victim.preg <- None;
        victim.slot <- Some f.Mir.nslots;
        f.Mir.nslots <- f.Mir.nslots + 1;
        (* drop the victim from the active list: leaving it there lets a
           later interval pick it as victim again and inherit its (now
           cleared) register, ending up neither allocated nor spilled —
           a silent clobber the TV sweep over spill-pressure shapes
           caught *)
        active := iv :: List.filter (fun a -> a != victim) !active
      end
  in
  List.iter assign ivs;
  let preg_of = Hashtbl.create 64 in
  let slot_of = Hashtbl.create 8 in
  List.iter
    (fun iv ->
      match (iv.preg, iv.slot) with
      | Some p, _ -> Hashtbl.replace preg_of iv.vreg p
      | None, Some s -> Hashtbl.replace slot_of iv.vreg s
      | None, None -> Hashtbl.replace preg_of iv.vreg 0 (* dead vreg: anything *))
    ivs;
  (* Rewrite: spilled vregs reload into / store from scratch registers
     around each use/def.  Two scratch registers (the last two physical
     registers) cover instructions with two spilled operands; instructions
     with three register operands never have all three spilled at our
     sizes (asserted). *)
  let scratch0 = Target.num_regs - 1 and scratch1 = Target.num_regs - 2 in
  let blocks =
    List.map
      (fun (b : Mir.block) ->
        let insts =
          List.concat_map
            (fun i ->
              let spilled rs =
                List.sort_uniq compare
                  (List.filter_map
                     (function Mir.Vreg v when Hashtbl.mem slot_of v -> Some v | _ -> None)
                     rs)
              in
              let spilled_uses = spilled (Mir.uses i) in
              let spilled_defs = spilled (Mir.defs i) in
              let all_spilled = List.sort_uniq compare (spilled_uses @ spilled_defs) in
              if all_spilled = [] then begin
                let subst = function
                  | Mir.Vreg v -> Mir.Preg (match Hashtbl.find_opt preg_of v with Some p -> p | None -> scratch0)
                  | r -> r
                in
                [ Mir.map_regs subst i ]
              end
              else begin
                assert (List.length all_spilled <= 2);
                let scratch_of =
                  List.mapi (fun k v -> (v, if k = 0 then scratch0 else scratch1)) all_spilled
                in
                let subst = function
                  | Mir.Vreg v -> (
                    match List.assoc_opt v scratch_of with
                    | Some s -> Mir.Preg s
                    | None ->
                      Mir.Preg (match Hashtbl.find_opt preg_of v with Some p -> p | None -> scratch0))
                  | r -> r
                in
                let loads =
                  List.map
                    (fun v -> Mir.Spill_load (Hashtbl.find slot_of v, Mir.Preg (List.assoc v scratch_of)))
                    spilled_uses
                in
                let stores =
                  List.map
                    (fun v -> Mir.Spill_store (Hashtbl.find slot_of v, Mir.Preg (List.assoc v scratch_of)))
                    spilled_defs
                in
                loads @ [ Mir.map_regs subst i ] @ stores
              end)
            b.Mir.insts
        in
        { b with Mir.insts })
      f.Mir.blocks
  in
  (* Argument vregs are 0..nargs-1 by isel's numbering; record where each
     one ended up so the physical form can be executed. *)
  let arg_locs =
    List.map
      (fun v ->
        match Hashtbl.find_opt slot_of v with
        | Some s -> Mir.Loc_slot s
        | None ->
          Mir.Loc_reg (match Hashtbl.find_opt preg_of v with Some p -> p | None -> scratch0))
      args
  in
  ({ f with Mir.blocks }, arg_locs)

(* The spill rewrite claims the last two physical registers as scratch,
   so they must not hold live values across a spilled use/def.  Rather
   than always reserving them (which would perturb the allocation — and
   the Queens anomaly — for the common no-spill case), allocate
   optimistically over the full register file and redo the scan with the
   scratch pair reserved only when the first pass actually spilled.
   The first translation-validation sweep over spill-pressure shapes
   caught exactly this clobber: a 15-deep sum chain allocated a live
   interval to r15 and then reloaded a spilled value through it. *)
let run (f : Mir.func) ~nargs =
  let nslots0 = f.Mir.nslots in
  let mf, locs = allocate f ~nargs ~num_alloc:Target.num_regs in
  if f.Mir.nslots = nslots0 then (mf, locs)
  else begin
    f.Mir.nslots <- nslots0;
    allocate f ~nargs ~num_alloc:(Target.num_regs - 2)
  end
