(* An executable semantics for MIR, in both its virtual-register form
   (straight out of isel) and its physical-register form (after
   allocation).  This is the "machine" side of translation validation:
   [Tv] runs an IR function under [Ub_sem.Interp] and its compiled MIR
   under this module on the same inputs and checks behaviour inclusion.

   Design notes:

   - The register file holds 64-bit machine words.  A register is either
     [Concrete] or [Vundef] — machine garbage, which is what an
     [Undef_def] (the pinned undef register of Section 6) produces, and
     what every register and spill slot starts as.  *Any* read of a
     [Vundef] register resolves it through the oracle and pins the
     result, modelling the fact that a real machine register holds one
     stable (if unknown) value.  This makes freeze-lowering faithful: a
     [Copy] out of an undef register reads it, so the copy observes one
     fixed value ever after.

   - Width semantics follow x86-64: 32-bit writes zero the upper half,
     8/16-bit writes merge into the low bits, shift counts are masked to
     the operand size, and division by zero (or quotient overflow) is a
     machine trap, reported as [Ub].  Partial writes into a [Vundef]
     register take the undisturbed high bits to be zero rather than
     consuming an oracle choice — one fixed garbage value is a subset of
     machine behaviour, and keeping the choice out of the oracle keeps
     behaviour enumeration small.  Under-enumeration of target behaviour
     is sound for refinement checking (it can only miss violations,
     never invent them).

   - Flags are a four-bit record or [Fundef].  Add/sub/cmp compute the
     full ZF/SF/CF/OF set; logic ops and [Test] clear CF/OF; multiply,
     shifts and division leave the flags undefined, which a conditional
     read resolves through the oracle — so code that consumes stale
     flags (an injected backend bug) exhibits genuinely nondeterministic
     branching.

   - Memory is the provenance-carrying two-phase memory of the IR
     semantics, shared bit-level representation and all.  Effective
     addresses are computed at 64 bits and wrap to the 32-bit address
     space, matching the IR's 32-bit pointers.  Loads that observe
     undef/poison bits resolve them through the oracle and pin the
     resolved bytes back (a machine byte holds one value), losing any
     provenance those bytes carried.

   - Calls are modelled through the same intrinsic table as the IR
     interpreter — malloc/alloca/free with identical UB and exhaustion
     rules.  Any other callee raises [Unsupported]: translation
     validation *never* silently treats an unmodelled construct as
     refined; [Tv] counts these as drops. *)

open Ub_support
open Ub_sem

exception Unsupported of string
exception Ub_exn of string
exception Out_of_fuel

type value = Concrete of int64 | Vundef

type flagset = { zf : bool; sf : bool; cf : bool; of_ : bool }
type flags = Flags of flagset | Fundef

(* How to address the register file and where the arguments live. *)
type form =
  | Virtual (* vreg-indexed; argument i is vreg i (lane-expanded) *)
  | Physical of Mir.arg_loc list (* Target.num_regs registers; args per regalloc *)

type outcome =
  | Returned of Bitvec.t option (* the returned register, as a 64-bit word *)
  | Ub of string
  | Timeout

let outcome_to_string = function
  | Returned None -> "ret void"
  | Returned (Some bv) -> Printf.sprintf "ret 0x%Lx" (Bitvec.to_uint64 bv)
  | Ub m -> "UB: " ^ m
  | Timeout -> "timeout"

type run_result = { outcome : outcome; mem_fp : string; steps : int }

type state = {
  regs : value array;
  slots : value array;
  mutable flags : flags;
  mem : Memory.t;
  oracle : Oracle.t;
  mutable fuel : int;
  reg_index : Mir.reg -> int;
  blocks : (string, Mir.inst list) Hashtbl.t;
}

let wbits = function Mir.W8 -> 8 | Mir.W16 -> 16 | Mir.W32 -> 32 | Mir.W64 -> 64
let wmask w = Bitvec.mask_of_width (wbits w)

(* Resolve a register to one stable concrete 64-bit value. *)
let resolve st i =
  match st.regs.(i) with
  | Concrete v -> v
  | Vundef ->
    let v = Bitvec.to_uint64 (st.oracle.Oracle.choose ~width:64) in
    st.regs.(i) <- Concrete v;
    v

let resolve_slot st s =
  match st.slots.(s) with
  | Concrete v -> v
  | Vundef ->
    let v = Bitvec.to_uint64 (st.oracle.Oracle.choose ~width:64) in
    st.slots.(s) <- Concrete v;
    v

let read_reg st r w = Int64.logand (resolve st (st.reg_index r)) (wmask w)
let read_reg64 st r = resolve st (st.reg_index r)

let write_reg st r w v =
  let i = st.reg_index r in
  let v = Int64.logand v (wmask w) in
  match w with
  | Mir.W64 | Mir.W32 -> st.regs.(i) <- Concrete v (* 32-bit writes zero the upper half *)
  | Mir.W8 | Mir.W16 ->
    (* partial write: merge into the low bits; an undisturbed-garbage
       high part is canonically zero (see module comment) *)
    let old = match st.regs.(i) with Concrete o -> o | Vundef -> 0L in
    st.regs.(i) <- Concrete (Int64.logor (Int64.logand old (Int64.lognot (wmask w))) v)

let operand st w = function
  | Mir.Imm v -> Int64.logand v (wmask w)
  | Mir.Reg r -> read_reg st r w

(* Sign-extend the low [wbits w] bits of [v] to 64 bits. *)
let sext64 w v =
  let sh = 64 - wbits w in
  Int64.shift_right (Int64.shift_left v sh) sh

let sign_bit w = Int64.shift_left 1L (wbits w - 1)
let is_neg w v = not (Int64.equal (Int64.logand v (sign_bit w)) 0L)

let flags_addsub w ~a ~b ~res ~is_sub =
  let res = Int64.logand res (wmask w) in
  let zf = Int64.equal res 0L in
  let sf = is_neg w res in
  let cf =
    if is_sub then Int64.unsigned_compare a b < 0 (* borrow *)
    else Int64.unsigned_compare res a < 0 (* carry *)
  in
  let of_ =
    let x = if is_sub then Int64.logand (Int64.logxor a b) (Int64.logxor a res)
            else Int64.logand (Int64.lognot (Int64.logxor a b)) (Int64.logxor a res)
    in
    not (Int64.equal (Int64.logand x (sign_bit w)) 0L)
  in
  Flags { zf; sf; cf; of_ }

let flags_logic w res =
  let res = Int64.logand res (wmask w) in
  Flags { zf = Int64.equal res 0L; sf = is_neg w res; cf = false; of_ = false }

(* Read the flags, resolving undefined flags to one stable set. *)
let read_flags st =
  match st.flags with
  | Flags f -> f
  | Fundef ->
    let bv = st.oracle.Oracle.choose ~width:4 in
    let bit i = Bitvec.get_bit bv i in
    let f = { zf = bit 0; sf = bit 1; cf = bit 2; of_ = bit 3 } in
    st.flags <- Flags f;
    f

let cond_holds st (c : Mir.cond) =
  let f = read_flags st in
  match c with
  | Mir.CEq -> f.zf
  | Mir.CNe -> not f.zf
  | Mir.CUgt -> (not f.cf) && not f.zf
  | Mir.CUge -> not f.cf
  | Mir.CUlt -> f.cf
  | Mir.CUle -> f.cf || f.zf
  | Mir.CSgt -> (not f.zf) && f.sf = f.of_
  | Mir.CSge -> f.sf = f.of_
  | Mir.CSlt -> f.sf <> f.of_
  | Mir.CSle -> f.zf || f.sf <> f.of_

(* Effective address: full 64-bit computation, wrapped to the 32-bit
   address space (the IR's pointers are 32-bit and wrap the same way). *)
let eff_addr st (a : Mir.addr) =
  let base = read_reg64 st a.Mir.base in
  let idx =
    match a.Mir.index with
    | None -> 0L
    | Some r -> Int64.mul (read_reg64 st r) (Int64.of_int a.Mir.scale)
  in
  Int64.logand (Int64.add (Int64.add base idx) (Int64.of_int a.Mir.disp)) 0xFFFF_FFFFL

let addr_bv ea = Bitvec.of_int64 ~width:Ub_ir.Types.pointer_bits ea

(* Load [nbytes] from memory, resolving any undef/poison bits through
   the oracle and pinning the resolved bytes back (a machine byte holds
   one stable value; resolved bytes lose their provenance). *)
let load_concrete st ea ~nbytes : int64 =
  match Memory.load_bits st.mem (addr_bv ea) ~nbytes with
  | None -> raise (Ub_exn "invalid load address")
  | Some bits ->
    let unknown = ref [] in
    Array.iteri
      (fun i b -> match b with Value.B0 | Value.B1 -> () | _ -> unknown := i :: !unknown)
      bits;
    let unknown = List.rev !unknown in
    (match unknown with
    | [] -> ()
    | ps ->
      let k = List.length ps in
      let bv = st.oracle.Oracle.choose ~width:k in
      List.iteri
        (fun j p -> bits.(p) <- (if Bitvec.get_bit bv j then Value.B1 else Value.B0))
        ps;
      (* pin the resolved bytes back, byte by byte *)
      let dirty = Array.make nbytes false in
      List.iter (fun p -> dirty.(p / 8) <- true) ps;
      Array.iteri
        (fun byte d ->
          if d then
            ignore
              (Memory.store_bits st.mem
                 (addr_bv (Int64.add ea (Int64.of_int byte)))
                 (Array.sub bits (byte * 8) 8)))
        dirty);
    let v = ref 0L in
    Array.iteri
      (fun i b -> if b = Value.B1 then v := Int64.logor !v (Int64.shift_left 1L i))
      bits;
    !v

let store_concrete st ea v ~nbits =
  let bits =
    Array.init nbits (fun i ->
        if Int64.equal (Int64.logand (Int64.shift_right_logical v i) 1L) 1L then Value.B1
        else Value.B0)
  in
  if not (Memory.store_bits st.mem (addr_bv ea) bits) then
    raise (Ub_exn "invalid store address")

(* The same allocation intrinsics as [Interp.exec_call], with identical
   UB and exhaustion behaviour.  Any other callee is unsupported. *)
let exec_call st callee (args : Mir.reg list) (res : Mir.reg option) =
  if Interp.is_malloc callee then begin
    match args with
    | [ sz ] -> (
      let size = Int64.to_int (Int64.logand (read_reg64 st sz) 0xFFFF_FFFFL) in
      if size = 0 then raise (Ub_exn "malloc of zero bytes")
      else
        match Memory.alloc st.mem ~size with
        | Some base ->
          Option.iter (fun d -> write_reg st d Mir.W64 (Bitvec.to_uint64 base)) res
        | None ->
          if callee = "alloca" then raise (Ub_exn "alloca: out of memory")
          else Option.iter (fun d -> write_reg st d Mir.W64 0L) res)
    | _ -> raise (Ub_exn "malloc with wrong arity")
  end
  else if Interp.is_free callee then begin
    match args with
    | [ p ] ->
      let a = Int64.logand (read_reg64 st p) 0xFFFF_FFFFL in
      if Int64.equal a 0L then () (* free(null) is a no-op *)
      else (
        match Memory.free st.mem (addr_bv a) with
        | Memory.Freed -> ()
        | Memory.Free_double -> raise (Ub_exn "double free")
        | Memory.Free_not_base -> raise (Ub_exn "free of non-allocation address"))
    | _ -> raise (Ub_exn "free with wrong arity")
  end
  else raise (Unsupported (Printf.sprintf "call to @%s" callee))

let jump st l =
  match Hashtbl.find_opt st.blocks l with
  | Some insts -> insts
  | None -> raise (Unsupported (Printf.sprintf "jump to unknown label %s" l))

let rec step st (insts : Mir.inst list) : Bitvec.t option =
  match insts with
  | [] -> raise (Unsupported "fell off the end of a block")
  | i :: rest ->
    st.fuel <- st.fuel - 1;
    if st.fuel < 0 then raise Out_of_fuel;
    (match i with
    | Mir.Mov (w, d, src) ->
      write_reg st d w (operand st w src);
      step st rest
    | Mir.Bin (k, w, d, src) -> (
      let a = read_reg st d w in
      let b = operand st w src in
      match k with
      | Mir.BAdd ->
        let res = Int64.add a b in
        st.flags <- flags_addsub w ~a ~b ~res ~is_sub:false;
        write_reg st d w res;
        step st rest
      | Mir.BSub ->
        let res = Int64.sub a b in
        st.flags <- flags_addsub w ~a ~b ~res ~is_sub:true;
        write_reg st d w res;
        step st rest
      | Mir.BImul ->
        st.flags <- Fundef;
        write_reg st d w (Int64.mul a b);
        step st rest
      | Mir.BAnd | Mir.BOr | Mir.BXor ->
        let res =
          match k with
          | Mir.BAnd -> Int64.logand a b
          | Mir.BOr -> Int64.logor a b
          | _ -> Int64.logxor a b
        in
        st.flags <- flags_logic w res;
        write_reg st d w res;
        step st rest
      | Mir.BShl | Mir.BShr | Mir.BSar ->
        (* x86 masks the count to the operand size *)
        let count = Int64.to_int (Int64.logand b (if w = Mir.W64 then 63L else 31L)) in
        if count = 0 then step st rest (* count 0: no flag update, value unchanged *)
        else begin
          let res =
            match k with
            | Mir.BShl -> Int64.shift_left a count
            | Mir.BShr -> Int64.shift_right_logical a count
            | _ -> Int64.shift_right (sext64 w a) count
          in
          st.flags <- Fundef;
          write_reg st d w res;
          step st rest
        end)
    | Mir.Neg (w, r) ->
      let a = read_reg st r w in
      let res = Int64.neg a in
      st.flags <- flags_addsub w ~a:0L ~b:a ~res ~is_sub:true;
      write_reg st r w res;
      step st rest
    | Mir.Not (w, r) ->
      (* NOT does not affect flags *)
      write_reg st r w (Int64.lognot (read_reg st r w));
      step st rest
    | Mir.Div { signed; width = w; dst_quot; dst_rem; lhs; rhs } ->
      let a = read_reg st lhs w in
      let b = read_reg st rhs w in
      if Int64.equal b 0L then raise (Ub_exn "division by zero trap");
      let q, r =
        if signed then begin
          let sa = sext64 w a and sb = sext64 w b in
          if Int64.equal sa (sext64 w (sign_bit w)) && Int64.equal sb (-1L) then
            raise (Ub_exn "division overflow trap");
          (Int64.div sa sb, Int64.rem sa sb)
        end
        else (Int64.unsigned_div a b, Int64.unsigned_rem a b)
      in
      st.flags <- Fundef;
      write_reg st dst_quot w q;
      write_reg st dst_rem w r;
      step st rest
    | Mir.Cmp (w, a, b) ->
      let va = read_reg st a w in
      let vb = operand st w b in
      st.flags <- flags_addsub w ~a:va ~b:vb ~res:(Int64.sub va vb) ~is_sub:true;
      step st rest
    | Mir.Test (w, a, b) ->
      st.flags <- flags_logic w (Int64.logand (read_reg st a w) (read_reg st b w));
      step st rest
    | Mir.Setcc (c, d) ->
      write_reg st d Mir.W8 (if cond_holds st c then 1L else 0L);
      step st rest
    | Mir.Cmov (c, w, d, s) ->
      if cond_holds st c then write_reg st d w (read_reg st s w)
      else if w = Mir.W32 then
        (* a 32-bit cmov zero-extends even when the move is suppressed *)
        write_reg st d w (read_reg st d w);
      step st rest
    | Mir.Movsx { dst; src; from_w; to_w } ->
      write_reg st dst to_w (sext64 from_w (read_reg st src from_w));
      step st rest
    | Mir.Movzx { dst; src; from_w; to_w } ->
      write_reg st dst to_w (read_reg st src from_w);
      step st rest
    | Mir.Lea { dst; addr } ->
      (* LEA computes the full 64-bit address expression, no flags *)
      let base = read_reg64 st addr.Mir.base in
      let idx =
        match addr.Mir.index with
        | None -> 0L
        | Some r -> Int64.mul (read_reg64 st r) (Int64.of_int addr.Mir.scale)
      in
      write_reg st dst Mir.W64 (Int64.add (Int64.add base idx) (Int64.of_int addr.Mir.disp));
      step st rest
    | Mir.Load (w, d, addr) ->
      let nbytes = wbits w / 8 in
      write_reg st d w (load_concrete st (eff_addr st addr) ~nbytes);
      step st rest
    | Mir.Store (w, addr, src) ->
      store_concrete st (eff_addr st addr) (operand st w src) ~nbits:(wbits w);
      step st rest
    | Mir.Copy (w, d, s) ->
      (* a copy out of an undef register freezes it: reading resolves *)
      write_reg st d w (read_reg st s w);
      step st rest
    | Mir.Undef_def r ->
      st.regs.(st.reg_index r) <- Vundef;
      step st rest
    | Mir.Call (callee, args, res) ->
      exec_call st callee args res;
      st.flags <- Fundef;
      step st rest
    | Mir.Push _ | Mir.Pop _ -> raise (Unsupported "push/pop")
    | Mir.Jmp l -> step st (jump st l)
    | Mir.Jcc (c, l) -> if cond_holds st c then step st (jump st l) else step st rest
    | Mir.Ret None -> None
    | Mir.Ret (Some r) -> Some (Bitvec.of_int64 ~width:64 (read_reg64 st r))
    | Mir.Spill_store (s, r) ->
      st.slots.(s) <- Concrete (read_reg64 st r);
      step st rest
    | Mir.Spill_load (s, r) ->
      st.regs.(st.reg_index r) <- Concrete (resolve_slot st s);
      step st rest)

(* Seed an argument register/slot from an IR value: concretes are
   zero-extended to the machine word, poison/undef become machine
   garbage (which any read pins). *)
let value_of_ir (v : Value.t) : value =
  match v with
  | Value.Scalar (Value.Conc bv) -> Concrete (Bitvec.to_uint64 bv)
  | Value.Scalar (Value.Poison | Value.Undef) -> Vundef
  | Value.Vector _ -> raise (Unsupported "vector argument")

let run ?(fuel = 50_000) ?(oracle = Oracle.zeros) ?mem ?phase ~(form : form) (f : Mir.func)
    (args : Value.t list) : run_result =
  let mem = match mem with Some m -> m | None -> Memory.create ?phase () in
  let nregs, reg_index =
    match form with
    | Virtual ->
      ( max f.Mir.nvregs (List.length args),
        function
        | Mir.Vreg v -> v
        | Mir.Preg _ -> raise (Unsupported "physical register in virtual form") )
    | Physical _ ->
      ( Target.num_regs,
        function
        | Mir.Preg p -> p
        | Mir.Vreg _ -> raise (Unsupported "virtual register in physical form") )
  in
  let st =
    { regs = Array.make (max nregs 1) Vundef;
      slots = Array.make (max f.Mir.nslots 1) Vundef;
      flags = Fundef;
      mem;
      oracle;
      fuel;
      reg_index;
      blocks = Hashtbl.create 16;
    }
  in
  List.iter (fun (b : Mir.block) -> Hashtbl.replace st.blocks b.Mir.mlabel b.Mir.insts) f.Mir.blocks;
  (match form with
  | Virtual -> List.iteri (fun i v -> st.regs.(i) <- value_of_ir v) args
  | Physical locs ->
    if List.length locs <> List.length args then
      raise (Unsupported "argument count does not match recorded locations");
    List.iter2
      (fun loc v ->
        match loc with
        | Mir.Loc_reg p -> st.regs.(p) <- value_of_ir v
        | Mir.Loc_slot s ->
          if s >= Array.length st.slots then raise (Unsupported "argument slot out of range")
          else st.slots.(s) <- value_of_ir v)
      locs args);
  let entry =
    match f.Mir.blocks with
    | b :: _ -> b.Mir.insts
    | [] -> raise (Unsupported "function with no blocks")
  in
  let outcome =
    try Returned (step st entry) with
    | Ub_exn m -> Ub m
    | Out_of_fuel -> Timeout
  in
  { outcome; mem_fp = Memory.fingerprint mem; steps = fuel - st.fuel }

(* All behaviours of [f] on [args] by exhaustive oracle exploration,
   mirroring [Interp.Behaviors.enumerate].  Outcome plus final-memory
   fingerprint; MIR has no observable events (external calls are
   unsupported, intrinsics are silent on both sides). *)
type behavior = { b_outcome : outcome; b_mem : string }

let enumerate ?(fuel = 50_000) ?(max_runs = 200_000) ?max_width_bits ?phase ~form f args :
    behavior list =
  let runs =
    Oracle.explore ?max_width_bits ~max_runs (fun oracle ->
        let r = run ~fuel ~oracle ?phase ~form f args in
        { b_outcome = r.outcome; b_mem = r.mem_fp })
  in
  List.sort_uniq compare runs
