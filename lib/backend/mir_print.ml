(* Human-readable MIR, covering both the virtual-register form (which
   [Emit] cannot print) and the allocated form.  Used by `ubc compile`
   and by TV counterexample reports. *)

let reg = function
  | Mir.Vreg v -> Printf.sprintf "v%d" v
  | Mir.Preg p -> Target.name_of p

let operand = function
  | Mir.Reg r -> reg r
  | Mir.Imm v -> Printf.sprintf "$%Ld" v

let width = function Mir.W8 -> "b" | Mir.W16 -> "w" | Mir.W32 -> "l" | Mir.W64 -> "q"

let binkind = function
  | Mir.BAdd -> "add"
  | Mir.BSub -> "sub"
  | Mir.BImul -> "imul"
  | Mir.BAnd -> "and"
  | Mir.BOr -> "or"
  | Mir.BXor -> "xor"
  | Mir.BShl -> "shl"
  | Mir.BShr -> "shr"
  | Mir.BSar -> "sar"

let addr (a : Mir.addr) =
  let idx =
    match a.Mir.index with
    | None -> ""
    | Some r -> Printf.sprintf "+%s*%d" (reg r) a.Mir.scale
  in
  Printf.sprintf "[%s%s%+d]" (reg a.Mir.base) idx a.Mir.disp

let inst (i : Mir.inst) =
  match i with
  | Mir.Mov (w, d, s) -> Printf.sprintf "mov%s %s, %s" (width w) (reg d) (operand s)
  | Mir.Bin (k, w, d, s) -> Printf.sprintf "%s%s %s, %s" (binkind k) (width w) (reg d) (operand s)
  | Mir.Neg (w, r) -> Printf.sprintf "neg%s %s" (width w) (reg r)
  | Mir.Not (w, r) -> Printf.sprintf "not%s %s" (width w) (reg r)
  | Mir.Div { signed; width = w; dst_quot; dst_rem; lhs; rhs } ->
    Printf.sprintf "%sdiv%s %s, %s -> q:%s r:%s"
      (if signed then "i" else "u")
      (width w) (reg lhs) (reg rhs) (reg dst_quot) (reg dst_rem)
  | Mir.Cmp (w, a, b) -> Printf.sprintf "cmp%s %s, %s" (width w) (reg a) (operand b)
  | Mir.Test (w, a, b) -> Printf.sprintf "test%s %s, %s" (width w) (reg a) (reg b)
  | Mir.Setcc (c, d) -> Printf.sprintf "set%s %s" (Mir.cond_name c) (reg d)
  | Mir.Cmov (c, w, d, s) ->
    Printf.sprintf "cmov%s%s %s, %s" (Mir.cond_name c) (width w) (reg d) (reg s)
  | Mir.Movsx { dst; src; from_w; to_w } ->
    Printf.sprintf "movsx%s%s %s, %s" (width from_w) (width to_w) (reg dst) (reg src)
  | Mir.Movzx { dst; src; from_w; to_w } ->
    Printf.sprintf "movzx%s%s %s, %s" (width from_w) (width to_w) (reg dst) (reg src)
  | Mir.Lea { dst; addr = a } -> Printf.sprintf "lea %s, %s" (reg dst) (addr a)
  | Mir.Load (w, d, a) -> Printf.sprintf "mov%s %s, %s" (width w) (reg d) (addr a)
  | Mir.Store (w, a, s) -> Printf.sprintf "mov%s %s, %s" (width w) (addr a) (operand s)
  | Mir.Copy (w, d, s) -> Printf.sprintf "copy%s %s, %s" (width w) (reg d) (reg s)
  | Mir.Undef_def r -> Printf.sprintf "undef %s" (reg r)
  | Mir.Call (callee, args, res) ->
    Printf.sprintf "call @%s(%s)%s" callee
      (String.concat ", " (List.map reg args))
      (match res with Some r -> " -> " ^ reg r | None -> "")
  | Mir.Push r -> Printf.sprintf "push %s" (reg r)
  | Mir.Pop r -> Printf.sprintf "pop %s" (reg r)
  | Mir.Jmp l -> Printf.sprintf "jmp %s" l
  | Mir.Jcc (c, l) -> Printf.sprintf "j%s %s" (Mir.cond_name c) l
  | Mir.Ret (Some r) -> Printf.sprintf "ret %s" (reg r)
  | Mir.Ret None -> "ret"
  | Mir.Spill_store (s, r) -> Printf.sprintf "movq [slot%d], %s" s (reg r)
  | Mir.Spill_load (s, r) -> Printf.sprintf "movq %s, [slot%d]" (reg r) s

let func (f : Mir.func) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s:  ; vregs=%d slots=%d\n" f.Mir.mname f.Mir.nvregs f.Mir.nslots);
  List.iter
    (fun (b : Mir.block) ->
      Buffer.add_string buf (Printf.sprintf ".%s:\n" b.Mir.mlabel);
      List.iter (fun i -> Buffer.add_string buf ("  " ^ inst i ^ "\n")) b.Mir.insts)
    f.Mir.blocks;
  Buffer.contents buf

let arg_locs (locs : Mir.arg_loc list) : string =
  String.concat ", "
    (List.mapi
       (fun i -> function
         | Mir.Loc_reg p -> Printf.sprintf "arg%d:%s" i (Target.name_of p)
         | Mir.Loc_slot s -> Printf.sprintf "arg%d:slot%d" i s)
       locs)
