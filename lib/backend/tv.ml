(* Translation validation across the lowering boundary: run an IR
   function under [Ub_sem.Interp] and its compiled MIR under [Mir_sem]
   on the same enumerated inputs and memory phases (shared with
   [Ub_refine.Enum_check]), and check that every target behaviour is
   covered by some source behaviour.

   Refinement at the MIR level:
   - source UB covers any target behaviour;
   - a returned source value covers the target's 64-bit result register
     truncated to the IR return width, by [Value.covers] (so a source
     poison/undef return covers any machine word — poison lowers to a
     pinned undef register, and the machine may hold anything);
   - final memories compare byte-wise with poison/undef covering, but
     with provenance stripped: MIR stores are provenance-free and loads
     pin bytes, so the lowering legitimately erases provenance.

   Anything the MIR semantics cannot model — calls beyond the
   malloc/alloca/free intrinsic table, vector returns, non-enumerable
   input spaces, oracle or fuel exhaustion — classifies as [Unsupported]
   with a reason, never as silently refined.  [Tv] mirrors the hunt's
   completed-or-dropped accounting through the tv.* counters. *)

open Ub_support
open Ub_ir
open Ub_sem
open Ub_refine

type verdict =
  | Refined
  | Not_refined of { nr_args : Value.t list; nr_phase : string; nr_detail : string }
  | Unsupported of string

let verdict_to_string = function
  | Refined -> "refined"
  | Not_refined { nr_detail; _ } -> "NOT refined: " ^ nr_detail
  | Unsupported r -> "unsupported: " ^ r

(* Strip the provenance suffix from a fingerprint entry
   ("addr=bbbbbbbb[*|@hex]" -> "addr=bbbbbbbb"). *)
let strip_prov entry =
  match String.index_opt entry '=' with
  | Some i when String.length entry >= i + 9 -> String.sub entry 0 (i + 9)
  | _ -> entry

let mem_covers_noprov src tgt =
  let split s = if s = "" then [] else String.split_on_char ';' s in
  let es = List.map strip_prov (split src) and et = List.map strip_prov (split tgt) in
  List.length es = List.length et && List.for_all2 Enum_check.mem_entry_covers es et

(* The IR return width, for truncating the machine result register. *)
let ret_width (fn : Func.t) : int option =
  List.find_map
    (fun (b : Func.block) ->
      match b.Func.term with Instr.Ret (ty, _) -> Some (Types.bitwidth ty) | _ -> None)
    fn.Func.blocks

exception Drop of string

(* Static pre-scan for constructs the MIR semantics does not model. *)
let prescan (fn : Func.t) =
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun (n : Instr.named) ->
          match n.Instr.ins with
          | Instr.Call (_, callee, _)
            when not (Interp.is_malloc callee || Interp.is_free callee) ->
            raise (Drop (Printf.sprintf "call to @%s" callee))
          | _ -> ())
        b.Func.insns)
    fn.Func.blocks;
  match
    List.find_map
      (fun (b : Func.block) ->
        match b.Func.term with Instr.Ret (ty, _) -> Some ty | _ -> None)
      fn.Func.blocks
  with
  | Some (Types.Vec _) -> raise (Drop "vector return")
  | _ -> ()

(* Does source behaviour [s] cover machine behaviour [t]? *)
let covers ~ret_w (s : Interp.Behaviors.behavior) (t : Mir_sem.behavior) =
  match s.Interp.Behaviors.b_outcome with
  | Interp.Ub _ -> true
  | outcome_s ->
    s.Interp.Behaviors.b_events = []
    && mem_covers_noprov s.Interp.Behaviors.b_mem t.Mir_sem.b_mem
    &&
    (match (outcome_s, t.Mir_sem.b_outcome) with
    | Interp.Returned None, Mir_sem.Returned None -> true
    | Interp.Returned (Some vs), Mir_sem.Returned (Some bv) -> (
      match ret_w with
      | Some w when w <= 64 ->
        Value.covers ~src:vs ~tgt:(Value.Scalar (Value.Conc (Bitvec.trunc bv ~width:w)))
      | _ -> false)
    | _, _ -> false)

let check_func ?(mode = Mode.proposed) ?(fuel = 5_000) ?(max_inputs = 5_000)
    ?(max_runs = 50_000) ?bug (fn : Func.t) : verdict =
  Ub_obs.Obs.with_span "backend.tv" @@ fun () ->
  Ub_obs.Obs.count "tv.checked";
  let result =
    try
      prescan fn;
      let compiled =
        try Compile.compile_func ?bug fn
        with Isel.Unsupported r -> raise (Drop ("isel: " ^ r))
      in
      let form = Mir_sem.Physical compiled.Compile.arg_locs in
      let tuples =
        match Enum_check.input_space ~mode ~max_inputs fn with
        | Some ts -> ts
        | None -> raise (Drop "input space too large or not enumerable")
      in
      let phases = Enum_check.phases_for ~src:fn ~tgt:fn in
      let ret_w = ret_width fn in
      let violation =
        List.find_map
          (fun args ->
            List.find_map
              (fun phase ->
                let src_behs =
                  try Interp.Behaviors.enumerate ~mode ~fuel ~max_runs ~phase fn args
                  with Oracle.Exhausted -> raise (Drop "source behaviour space too large")
                in
                if
                  List.exists
                    (fun (b : Interp.Behaviors.behavior) -> b.b_outcome = Interp.Timeout)
                    src_behs
                then raise (Drop "source timeout");
                let tgt_behs =
                  try
                    Mir_sem.enumerate ~fuel:(20 * fuel) ~max_runs ~phase ~form
                      compiled.Compile.mir args
                  with
                  | Oracle.Exhausted -> raise (Drop "target behaviour space too large")
                  | Mir_sem.Unsupported r -> raise (Drop r)
                in
                if
                  List.exists
                    (fun (b : Mir_sem.behavior) -> b.b_outcome = Mir_sem.Timeout)
                    tgt_behs
                then raise (Drop "target timeout");
                match
                  List.find_opt
                    (fun bt -> not (List.exists (fun bs -> covers ~ret_w bs bt) src_behs))
                    tgt_behs
                with
                | Some bt ->
                  Some
                    (Not_refined
                       { nr_args = args;
                         nr_phase = Enum_check.phase_to_string phase;
                         nr_detail =
                           Printf.sprintf
                             "machine behaviour not covered in %s phase on (%s): %s | mem:%s \
                              (source has %d behaviour(s))"
                             (Enum_check.phase_to_string phase)
                             (String.concat ", " (List.map Value.to_string args))
                             (Mir_sem.outcome_to_string bt.Mir_sem.b_outcome)
                             bt.Mir_sem.b_mem (List.length src_behs);
                       })
                | None -> None)
              phases)
          tuples
      in
      match violation with Some v -> v | None -> Refined
    with Drop reason -> Unsupported reason
  in
  (match result with
  | Refined -> Ub_obs.Obs.count "tv.refined"
  | Not_refined _ -> Ub_obs.Obs.count "tv.violations"
  | Unsupported _ -> Ub_obs.Obs.count "tv.unsupported");
  result

(* Shrink a violating function with the generic IR reducer: a candidate
   is accepted while TV (with the same injected bug, if any) still
   reports a violation.  The reduced function *is* the witness — the
   "target" is always its own compilation. *)
let shrink ?mode ?(fuel = 250) ?(max_inputs = 400) ?(max_runs = 100)
    ?(max_steps = 600) ?(budget_s = 2.0) ?bug (fn : Func.t) :
    Func.t * Ub_shrink.Reduce.stats =
  (* The oracle runs a full TV check per candidate, so its budgets are
     much tighter than [check_func]'s defaults: a candidate whose input
     space grows past [max_inputs] (the reducer likes to promote values
     to fresh arguments) classifies Unsupported and is rejected without
     being enumerated, and [fuel]/[max_runs] are sized so a candidate
     whose machine loop diverges costs one bounded sweep, not minutes
     (the worst case per candidate is max_runs * 20 * fuel MIR steps).
     [budget_s] bounds the whole descent: once the budget is spent the
     oracle rejects every further candidate without checking and the
     reducer stops at the current (still-violating) function. *)
  let deadline = Unix.gettimeofday () +. budget_s in
  let oracle fn' =
    Unix.gettimeofday () < deadline
    &&
    match check_func ?mode ~fuel ~max_inputs ~max_runs ?bug fn' with
    | Not_refined _ -> true
    | Refined | Unsupported _ -> false
  in
  Ub_shrink.Reduce.minimize ~max_steps ~oracle fn
